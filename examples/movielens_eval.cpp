// Evaluation walkthrough on MovieLens-style data: load (or synthesize) a
// ratings dataset, threshold to implicit feedback (>= 3 stars), split
// 75/25, train OCuLaR and the wALS baseline, and report recall@M / MAP@M —
// the Section VII evaluation protocol end to end.
//
// With real data:
//   ./movielens_eval --ml100k=/path/to/u.data
//   ./movielens_eval --ml1m=/path/to/ratings.dat

#include <cstdio>
#include <string>

#include "baselines/wals.h"
#include "common/strings.h"
#include "core/ocular_recommender.h"
#include "data/loaders.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace ocular;

  Dataset dataset;
  std::string path;
  bool is_1m = false;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (StartsWith(arg, "--ml100k=")) path = arg.substr(9);
    if (StartsWith(arg, "--ml1m=")) {
      path = arg.substr(7);
      is_1m = true;
    }
  }
  if (!path.empty()) {
    auto loaded = is_1m ? LoadMovieLens1M(path) : LoadMovieLens100K(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded).value();
  } else {
    std::printf("(no --ml100k/--ml1m path given; using the shape-calibrated "
                "synthetic MovieLens stand-in)\n");
    Rng rng(5);
    auto synth = MakeMovieLensLike(/*scale=*/0.08, &rng);
    if (!synth.ok()) {
      std::fprintf(stderr, "%s\n", synth.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(synth).value().dataset;
  }
  std::printf("%s\n\n", dataset.Summary().c_str());

  Rng split_rng(42);
  auto split_result =
      SplitInteractions(dataset.interactions(), 0.75, &split_rng);
  if (!split_result.ok()) {
    std::fprintf(stderr, "%s\n", split_result.status().ToString().c_str());
    return 1;
  }
  auto split = std::move(split_result).value();
  std::printf("split: %zu train / %zu test positives\n\n",
              split.train.nnz(), split.test.nnz());

  OcularConfig ocfg;
  ocfg.k = 12;
  ocfg.lambda = 0.5;
  ocfg.max_sweeps = 40;
  OcularRecommender ocular(ocfg);
  WalsConfig wcfg;
  wcfg.k = 12;
  wcfg.b = 0.1;     // unknown-cell weight suited to dense implicit data
  wcfg.lambda = 0.05;
  wcfg.iterations = 12;
  WalsRecommender wals(wcfg);

  const std::vector<uint32_t> cutoffs{10, 25, 50};
  std::printf("%-10s", "algorithm");
  for (uint32_t m : cutoffs) std::printf("  recall@%-3u  MAP@%-3u", m, m);
  std::printf("\n");
  for (Recommender* rec : {static_cast<Recommender*>(&ocular),
                           static_cast<Recommender*>(&wals)}) {
    Status st = rec->Fit(split.train);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", rec->name().c_str(),
                   st.ToString().c_str());
      continue;
    }
    auto rows = EvaluateRanking(*rec, split.train, split.test, cutoffs);
    if (!rows.ok()) {
      std::fprintf(stderr, "%s\n", rows.status().ToString().c_str());
      continue;
    }
    std::printf("%-10s", rec->name().c_str());
    for (const auto& row : *rows) {
      std::printf("  %9.4f  %7.4f", row.recall, row.map);
    }
    std::printf("\n");
  }
  return 0;
}
