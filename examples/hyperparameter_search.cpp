// Hyper-parameter search walkthrough (Sections IV-B, VI, VII-C): pick
// (K, lambda) by cross-validated grid search using the parallel trainer,
// then refit on the full training data with the winning pair and report
// held-out performance — the practical recipe behind Figure 9.

#include <cstdio>
#include <memory>

#include "common/strings.h"
#include "core/ocular_recommender.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/grid_search.h"
#include "eval/metrics.h"

int main() {
  using namespace ocular;

  Rng rng(77);
  auto synth = MakeB2BLike(/*scale=*/0.02, &rng);
  if (!synth.ok()) {
    std::fprintf(stderr, "%s\n", synth.status().ToString().c_str());
    return 1;
  }
  Dataset dataset = std::move(synth).value().dataset;
  std::printf("%s\n\n", dataset.Summary().c_str());

  // Outer split: keep a final test set untouched by model selection.
  Rng split_rng(78);
  auto outer =
      SplitInteractions(dataset.interactions(), 0.8, &split_rng).value();
  // Inner split: carve validation data out of the training set.
  auto inner = SplitInteractions(outer.train, 0.8, &split_rng).value();

  auto factory = [](const GridPoint& p) -> std::unique_ptr<Recommender> {
    OcularConfig cfg;
    cfg.k = p.k;
    cfg.lambda = p.lambda;
    cfg.max_sweeps = 30;
    return std::make_unique<OcularRecommender>(cfg);
  };
  const std::vector<uint32_t> ks{4, 8, 12, 16};
  const std::vector<double> lambdas{0.1, 0.5, 2.0, 10.0};
  auto grid =
      GridSearch(factory, ks, lambdas, inner.train, inner.test, 50);
  if (!grid.ok()) {
    std::fprintf(stderr, "%s\n", grid.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", RenderGridHeatmap(*grid).c_str());

  // Refit with the winner on the full outer training data.
  OcularConfig best;
  best.k = grid->best().point.k;
  best.lambda = grid->best().point.lambda;
  best.max_sweeps = 60;
  OcularRecommender final_model(best);
  Status st = final_model.Fit(outer.train);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto metrics =
      EvaluateRankingAtM(final_model, outer.train, outer.test, 50).value();
  std::printf("final model (K=%u, lambda=%s): held-out recall@50=%.4f "
              "MAP@50=%.4f over %u users\n",
              best.k, FormatDouble(best.lambda, 2).c_str(), metrics.recall,
              metrics.map, metrics.num_users);
  return 0;
}
