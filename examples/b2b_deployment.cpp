// B2B deployment scenario (Section VIII / Figure 10): generate
// recommendations for sales teams on a business-to-business
// client-product dataset, with the full co-cluster rationale a
// salesperson would review, plus a price estimate derived from the
// historical purchases of co-cluster peers.
//
// Run on synthetic B2B-like data by default; point --data at a
// tab-separated "client<TAB>product" file to use your own.

#include <cstdio>
#include <string>

#include "common/strings.h"
#include "core/coclusters.h"
#include "core/explain.h"
#include "core/ocular_recommender.h"
#include "data/loaders.h"
#include "data/synthetic.h"
#include "serving/batch.h"

namespace {

/// Mock deal-size table: in the real deployment this is the historical
/// transaction value of each product; here it is a deterministic synthetic
/// price per product id.
double ProductListPrice(uint32_t item) {
  return 5000.0 + 1000.0 * (item % 37) + 250.0 * (item % 11);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ocular;

  // --- Load or synthesize the client-product matrix. ---
  Dataset dataset;
  std::string data_path;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (StartsWith(arg, "--data=")) data_path = arg.substr(7);
  }
  if (!data_path.empty()) {
    CsvOptions opts;
    opts.delimiter = '\t';
    auto loaded = LoadCsv(data_path, opts);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", data_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded).value();
  } else {
    Rng rng(2024);
    auto synth = MakeB2BLike(/*scale=*/0.02, &rng);
    if (!synth.ok()) {
      std::fprintf(stderr, "%s\n", synth.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(synth).value().dataset;
    // Business-flavoured labels for the rationale text.
    std::vector<std::string> clients, products;
    for (uint32_t u = 0; u < dataset.num_users(); ++u) {
      clients.push_back("Client-" + std::to_string(1000 + u));
    }
    static const char* kFamilies[] = {"Storage", "Cloud", "Analytics",
                                      "Security", "Consulting", "Network"};
    for (uint32_t i = 0; i < dataset.num_items(); ++i) {
      products.push_back(std::string(kFamilies[i % 6]) + "-Suite-" +
                         std::to_string(i));
    }
    dataset.set_user_labels(std::move(clients));
    dataset.set_item_labels(std::move(products));
  }
  std::printf("%s\n\n", dataset.Summary().c_str());

  // --- Train OCuLaR. ---
  OcularConfig config;
  config.k = 16;
  config.lambda = 0.5;
  config.max_sweeps = 40;
  OcularRecommender rec(config);
  Status st = rec.Fit(dataset.interactions());
  if (!st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // --- Produce seller-facing opportunity sheets for a few clients. ---
  // The real deployment regenerates everyone's list per model refresh
  // (Section VIII) — run the bulk blocked-scoring engine once, with the
  // confidence bar pushed into selection, then review the top hits.
  const CsrMatrix& r = dataset.interactions();
  BatchOptions bopts;
  bopts.m = 1;
  bopts.min_score = 0.4;
  auto batch = RecommendForAllUsers(rec, r, bopts);
  if (!batch.ok()) {
    std::fprintf(stderr, "%s\n", batch.status().ToString().c_str());
    return 1;
  }
  int sheets = 0;
  for (uint32_t u = 0; u < dataset.num_users() && sheets < 3; ++u) {
    const auto& top = batch->recommendations[u];
    if (top.empty()) continue;
    ++sheets;
    const uint32_t item = top[0].item;

    std::printf("================ SALES OPPORTUNITY %d ================\n",
                sheets);
    auto expl = ExplainRecommendation(rec.model(), r, u, item);
    if (!expl.ok()) continue;
    std::printf("%s", RenderExplanationText(*expl, dataset).c_str());

    // Price estimate from co-cluster peers' historical purchases of the
    // product (Figure 10's "price estimate of the potential deal").
    double price_sum = 0.0;
    int buyers = 0;
    for (const auto& clause : expl->clauses) {
      for (uint32_t peer : clause.supporting_users) {
        (void)peer;
        price_sum += ProductListPrice(item);
        ++buyers;
      }
    }
    if (buyers > 0) {
      std::printf("  estimated deal size (from %d similar purchases): "
                  "$%.0f\n\n", buyers, price_sum / buyers);
    }
  }
  if (sheets == 0) {
    std::printf("no high-confidence opportunities at this scale; "
                "raise --scale or lower the confidence bar.\n");
  }
  return 0;
}
