// Quickstart: the complete OCuLaR pipeline on the paper's Figure 1 toy
// example — train, print the fitted probability matrix (Figure 3),
// recommend, and render the textual rationale of Section IV-C.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/coclusters.h"
#include "core/explain.h"
#include "core/ocular_recommender.h"
#include "data/synthetic.h"

int main() {
  using namespace ocular;

  // 1. The dataset: a binary user-item matrix. Here, the 12x12 toy
  //    example of the paper with three overlapping co-clusters.
  Dataset toy = MakePaperToyDataset();
  std::printf("%s\n\n", toy.Summary().c_str());

  // 2. Configure and train OCuLaR. K and lambda are the two
  //    hyper-parameters (Section IV-B); for real data pick them by grid
  //    search (see examples/hyperparameter_search.cpp).
  OcularConfig config;
  config.k = 3;          // number of co-clusters
  config.lambda = 0.05;  // l2 regularization
  config.max_sweeps = 200;
  config.tolerance = 1e-8;
  config.seed = 1;
  OcularRecommender rec(config);
  Status st = rec.Fit(toy.interactions());
  if (!st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("trained %u sweeps, converged=%s\n\n",
              static_cast<unsigned>(rec.trace().size()),
              rec.converged() ? "yes" : "no");

  // 3. The fitted probability matrix P[r_ui = 1] = 1 - e^{-<f_u,f_i>}
  //    (compare with Figure 3 of the paper: gray cells are training
  //    positives, bracketed cells the co-cluster holes).
  std::printf("fitted probabilities (%%); * marks training positives:\n   ");
  for (uint32_t i = 0; i < toy.num_items(); ++i) std::printf("%5u", i);
  std::printf("\n");
  for (uint32_t u = 0; u < toy.num_users(); ++u) {
    std::printf("%3u", u);
    for (uint32_t i = 0; i < toy.num_items(); ++i) {
      const int pct = static_cast<int>(rec.Score(u, i) * 100 + 0.5);
      if (toy.interactions().HasEntry(u, i)) {
        std::printf("  %2d*", pct);
      } else {
        std::printf("  %2d ", pct);
      }
    }
    std::printf("\n");
  }

  // 4. Top recommendation for user 6 — the paper's worked example.
  auto top = rec.Recommend(6, 3, toy.interactions());
  std::printf("\ntop-3 recommendations for %s:\n",
              toy.UserLabel(6).c_str());
  for (const auto& si : top) {
    std::printf("  %-8s  P = %.3f\n", toy.ItemLabel(si.item).c_str(),
                si.score);
  }

  // 5. Why? The co-clusters behind the score (Figures 3 and 10).
  auto explanation =
      ExplainRecommendation(rec.model(), toy.interactions(), 6, top[0].item);
  if (explanation.ok()) {
    std::printf("\n%s",
                RenderExplanationText(*explanation, toy).c_str());
  }

  // 6. The co-clusters themselves, for visual inspection.
  CoClusterOptions copts;
  copts.threshold = 0.5;
  auto clusters = ExtractCoClusters(rec.model(), copts);
  std::printf("\ndiscovered co-clusters (threshold %.1f):\n",
              copts.threshold);
  for (const auto& cc : clusters) {
    std::printf("  #%u: users {", cc.index);
    for (uint32_t u : cc.users) std::printf(" %u", u);
    std::printf(" } x items {");
    for (uint32_t i : cc.items) std::printf(" %u", i);
    std::printf(" }\n");
  }
  return 0;
}
