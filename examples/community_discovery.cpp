// Community discovery with OCuLaR — the application the paper's
// conclusion proposes ("the algorithm presented can be used for solving
// large co-clustering problems in other disciplines as well, including
// community discovery in social networks").
//
// A unipartite friendship graph is fed to OCuLaR as a (symmetric) binary
// matrix whose rows AND columns are people; the overlapping co-clusters
// it finds are the social circles, and people belonging to several
// circles (the interesting case BIGCLAM targets) appear in several
// co-clusters. We plant two overlapping circles and check that the model
// recovers the bridge members.

#include <cstdio>
#include <set>

#include "common/rng.h"
#include "core/coclusters.h"
#include "core/ocular_recommender.h"
#include "graph/bigclam.h"
#include "serving/render.h"
#include "sparse/coo.h"

int main() {
  using namespace ocular;

  // Plant: circle A = people 0..11, circle B = people 8..19 (8..11 are in
  // both). Edge probability 0.8 within a circle, 0.02 elsewhere.
  const uint32_t n = 20;
  Rng rng(7);
  CooBuilder coo;
  auto in_circle = [](uint32_t p, uint32_t lo, uint32_t hi) {
    return p >= lo && p <= hi;
  };
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = a + 1; b < n; ++b) {
      const bool both_a = in_circle(a, 0, 11) && in_circle(b, 0, 11);
      const bool both_b = in_circle(a, 8, 19) && in_circle(b, 8, 19);
      const double p = (both_a || both_b) ? 0.8 : 0.02;
      if (rng.Bernoulli(p)) {
        coo.Add(a, b);
        coo.Add(b, a);
      }
    }
  }
  CsrMatrix adj = CsrMatrix::FromCoo(coo.Finalize(n, n).value());
  std::printf("friendship graph: %u people, %zu directed edges\n\n", n,
              adj.nnz());

  // OCuLaR on the adjacency matrix (rows = columns = people).
  OcularConfig cfg;
  cfg.k = 2;
  cfg.lambda = 0.1;
  cfg.max_sweeps = 200;
  cfg.seed = 3;
  OcularRecommender rec(cfg);
  Status st = rec.Fit(adj);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  CoClusterOptions copts;
  copts.threshold = 0.5;
  auto circles = ExtractCoClusters(rec.model(), copts);
  std::printf("OCuLaR found %zu circles:\n", circles.size());
  std::set<uint32_t> overlap_found;
  for (const auto& circle : circles) {
    std::printf("  circle %u: {", circle.index);
    for (uint32_t p : circle.users) std::printf(" %u", p);
    std::printf(" }\n");
  }
  // People in both discovered circles (row side).
  if (circles.size() >= 2) {
    std::set<uint32_t> first(circles[0].users.begin(),
                             circles[0].users.end());
    for (uint32_t p : circles[1].users) {
      if (first.count(p)) overlap_found.insert(p);
    }
    std::printf("  bridge members (in both circles): {");
    for (uint32_t p : overlap_found) std::printf(" %u", p);
    std::printf(" }  — planted bridge was {8..11}\n");
  }

  std::printf("\nadjacency with predicted missing friendships ('o'):\n%s",
              RenderInteractionMatrix(adj, &rec.model()).c_str());

  // Reference: BIGCLAM on the same graph.
  Graph g = Graph::FromEdges(n, adj.ToPairs()).value();
  BigClamConfig bc;
  bc.k = 2;
  bc.max_iterations = 200;
  auto bigclam = RunBigClam(g, bc);
  if (bigclam.ok()) {
    std::printf("\nBIGCLAM reference: communities of size");
    for (const auto& comm : bigclam->communities) {
      std::printf(" %zu", comm.size());
    }
    std::printf("\n");
  }
  return 0;
}
