#!/usr/bin/env python3
"""Fault-point catalog checker.

Every `fault::Maybe("<point>")` call compiled into src/ must have a row
in the fault-injection point catalog table in docs/ARCHITECTURE.md, and
every cataloged point must still exist in code — an undocumented point
is a chaos drill nobody can discover, and a stale row documents a drill
that can no longer run. Usage:

    python3 docs/check_fault_points.py [repo_root]

Exit code 0 = catalog and code agree, 1 = they drifted.
"""

import re
import sys
from pathlib import Path

MAYBE_RE = re.compile(r'fault::Maybe\("([a-z._]+)"')
# A catalog row: a table line whose first cell is a backticked point name.
ROW_RE = re.compile(r"^\|\s*`([a-z._]+)`\s*\|")


def code_points(src_dir):
    points = {}
    for path in sorted(src_dir.rglob("*")):
        if path.suffix not in (".cc", ".h", ".cpp"):
            continue
        text = path.read_text(encoding="utf-8")
        for match in MAYBE_RE.finditer(text):
            points.setdefault(match.group(1), path)
    # The doc-comment example in fault.h is usage, not a point.
    points.pop("point", None)
    return points


def doc_points(arch_md):
    points = set()
    for line in arch_md.read_text(encoding="utf-8").splitlines():
        match = ROW_RE.match(line)
        if match:
            points.add(match.group(1))
    return points


def main(argv):
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parents[1]
    src = root / "src"
    arch = root / "docs" / "ARCHITECTURE.md"
    if not src.is_dir() or not arch.is_file():
        print(f"cannot find src/ and docs/ARCHITECTURE.md under {root}",
              file=sys.stderr)
        return 2
    in_code = code_points(src)
    in_docs = doc_points(arch)
    undocumented = sorted(set(in_code) - in_docs)
    stale = sorted(in_docs - set(in_code))
    print(f"{len(in_code)} fault points in code, {len(in_docs)} cataloged "
          f"in {arch.relative_to(root)}")
    for point in undocumented:
        print(f"UNDOCUMENTED: {point} ({in_code[point].relative_to(root)}) — "
              f"add a catalog row to docs/ARCHITECTURE.md", file=sys.stderr)
    for point in stale:
        print(f"STALE: {point} is cataloged but no fault::Maybe call "
              f"remains in src/", file=sys.stderr)
    return 1 if undocumented or stale else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
