#!/usr/bin/env python3
"""Markdown link checker for the repo docs.

Scans the given markdown files for inline links and fails if a relative
link points at a file (or file#anchor) that does not exist. External
(http/https/mailto) links are not fetched — CI has no business hitting
the network — only recorded. Usage:

    python3 docs/check_links.py README.md docs/*.md

Exit code 0 = all relative links resolve, 1 = at least one is broken.
"""

import re
import sys
from pathlib import Path

# Inline markdown links [text](target); images ![alt](target) share the
# suffix. Reference-style links are rare in this repo and out of scope.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Fenced code blocks must not contribute false links.
FENCE_RE = re.compile(r"^(```|~~~)")


def iter_links(text):
    in_fence = False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield match.group(1)


def slugify(heading):
    """GitHub-style anchor slug for a markdown heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path):
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence and line.startswith("#"):
            anchors.add(slugify(line.lstrip("#")))
    return anchors


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    broken = []
    external = 0
    checked = 0
    for md in argv[1:]:
        md_path = Path(md)
        if not md_path.is_file():
            broken.append((md, "<file itself missing>"))
            continue
        text = md_path.read_text(encoding="utf-8")
        for target in iter_links(text):
            if target.startswith(("http://", "https://", "mailto:")):
                external += 1
                continue
            checked += 1
            if target.startswith("#"):  # same-document anchor
                if slugify(target[1:]) not in anchors_of(md_path):
                    broken.append((md, target))
                continue
            rel, _, anchor = target.partition("#")
            dest = (md_path.parent / rel).resolve()
            if not dest.exists():
                broken.append((md, target))
            elif anchor and dest.suffix == ".md":
                if slugify(anchor) not in anchors_of(dest):
                    broken.append((md, target))
    print(f"checked {checked} relative links ({external} external skipped) "
          f"across {len(argv) - 1} files")
    for src, target in broken:
        print(f"BROKEN: {src}: {target}", file=sys.stderr)
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
