// Hot-path training benchmark: measures per-sweep wall clock of the
// OCuLaR block-coordinate sweep, new (workspace + dot-caching + fused
// objective) vs legacy (the pre-refactor kernel, reproduced below), on a
// synthetic two-block workload at K=50.
//
//   bench_train_hot [--scale=1.0] [--k=50] [--sweeps=8] [--warmup=3]
//                   [--seed=1] [--json] [--out=BENCH_train.json]
//                   [--min-speedup=X] [--baseline=path/to/BENCH.json]
//
// Each path runs --warmup untimed sweeps followed by --sweeps timed ones
// (training runs 40-60 sweeps in practice, so the steady-state per-sweep
// cost is the number that matters; the first sweeps, where both line
// searches walk the step size down from initial_step, are identical noise).
//
// --json writes a machine-readable record (see README "Performance") to
// --out. --min-speedup fails (exit 2) if the measured speedup is below X.
// --baseline fails (exit 2) if the measured speedup regresses more than
// 25% below the "speedup" recorded in the given BENCH_*.json — the CI
// regression gate against the checked-in baseline.
//
// Both code paths run the same math from the same initial model. The
// warm-started boundary search may pick a different (equally valid) Armijo
// step where acceptance is non-monotone, so trajectories can drift
// slightly; the bench aborts if the final objectives disagree beyond that
// drift (1e-2 relative), and separately verifies the fused tracked Q
// against the ObjectiveQ oracle at 1e-9 relative.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/timer.h"
#include "core/ocular_model.h"
#include "core/ocular_trainer.h"
#include "sparse/coo.h"
#include "sparse/csr.h"
#include "sparse/dense.h"

namespace ocular {
namespace bench {
namespace {

// ----------------------------------------------------------- workload

/// Two disjoint dense user-item blocks with random holes — the easiest
/// co-clustering instance, sized so one sweep is dominated by the
/// O(nnz·K) block updates. `scale` multiplies the row/column counts.
CsrMatrix TwoBlockWorkload(double scale, uint64_t seed) {
  const auto dim = [scale](uint32_t base) {
    return std::max(8u, static_cast<uint32_t>(base * scale));
  };
  const uint32_t users_per_block = dim(600);
  const uint32_t items_per_block = dim(400);
  const double fill = 0.7;
  Rng rng(seed);
  CooBuilder coo;
  for (uint32_t b = 0; b < 2; ++b) {
    const uint32_t u0 = b * users_per_block;
    const uint32_t i0 = b * items_per_block;
    for (uint32_t u = 0; u < users_per_block; ++u) {
      for (uint32_t i = 0; i < items_per_block; ++i) {
        if (rng.Uniform(0.0, 1.0) < fill) coo.Add(u0 + u, i0 + i);
      }
    }
  }
  return CsrMatrix::FromCoo(
      coo.Finalize(2 * users_per_block, 2 * items_per_block).value());
}

// ------------------------------------------------------- legacy kernel
// Faithful reproduction of the pre-refactor training inner loop (the
// before side of the before/after table): per-call heap allocations for
// complement/grad/trial, a separate BlockObjective pass for the Armijo q0,
// per-sweep re-gather of nothing (absolute variant), and a full ObjectiveQ
// pass per sweep for tracking.

constexpr double kAffinityFloor = 1e-12;
constexpr double kProbFloor = 1e-12;

double LegacyBlockObjective(std::span<const double> f,
                            std::span<const uint32_t> neighbors,
                            const DenseMatrix& other,
                            std::span<const double> complement_sum,
                            double lambda) {
  double q = 0.0;
  for (size_t n = 0; n < neighbors.size(); ++n) {
    const double dot = vec::Dot(other.Row(neighbors[n]), f);
    const double p = std::max(-std::expm1(-dot), kProbFloor);
    q -= std::log(p);
  }
  q += vec::Dot(f, complement_sum);
  q += lambda * vec::SquaredNorm(f);
  return q;
}

int LegacyArmijoStep(std::span<double> f, std::span<const double> grad,
                     std::span<const uint32_t> neighbors,
                     const DenseMatrix& other,
                     std::span<const double> complement_sum, double lambda,
                     const OcularConfig& config) {
  const size_t k = f.size();
  const double q0 =
      LegacyBlockObjective(f, neighbors, other, complement_sum, lambda);
  std::vector<double> trial(k);
  double alpha = config.initial_step;
  for (uint32_t t = 0; t <= config.max_backtracks; ++t) {
    for (size_t c = 0; c < k; ++c) {
      trial[c] = std::max(0.0, f[c] - alpha * grad[c]);
    }
    const double q1 =
        LegacyBlockObjective(trial, neighbors, other, complement_sum, lambda);
    double descent = 0.0;
    for (size_t c = 0; c < k; ++c) descent += grad[c] * (trial[c] - f[c]);
    if (q1 - q0 <= config.armijo_sigma * descent) {
      std::copy(trial.begin(), trial.end(), f.begin());
      return static_cast<int>(t);
    }
    alpha *= config.armijo_beta;
  }
  return -1;
}

void LegacyProjectedGradientStep(std::span<double> f,
                                 std::span<const uint32_t> neighbors,
                                 const DenseMatrix& other,
                                 std::span<const double> other_sums,
                                 double lambda, const OcularConfig& config) {
  const size_t k = f.size();
  std::vector<double> complement(other_sums.begin(), other_sums.end());
  for (uint32_t n : neighbors) {
    auto row = other.Row(n);
    for (size_t c = 0; c < k; ++c) complement[c] -= row[c];
  }
  std::vector<double> grad(complement.begin(), complement.end());
  for (size_t c = 0; c < k; ++c) grad[c] += 2.0 * lambda * f[c];
  for (size_t n = 0; n < neighbors.size(); ++n) {
    auto row = other.Row(neighbors[n]);
    const double dot = std::max(vec::Dot(row, f), kAffinityFloor);
    const double coef = 1.0 / std::expm1(dot);
    for (size_t c = 0; c < k; ++c) grad[c] -= coef * row[c];
  }
  LegacyArmijoStep(f, grad, neighbors, other, complement, lambda, config);
}

/// One legacy sweep (item phase, user phase, tracked ObjectiveQ pass).
/// Returns the tracked Q.
double LegacySweep(const CsrMatrix& r, const CsrMatrix& rt, OcularModel* model,
                   const OcularConfig& config) {
  DenseMatrix& fu = *model->mutable_user_factors();
  DenseMatrix& fi = *model->mutable_item_factors();
  const std::vector<double> user_sums = fu.ColumnSums();
  for (uint32_t i = 0; i < r.num_cols(); ++i) {
    LegacyProjectedGradientStep(fi.Row(i), rt.Row(i), fu, user_sums,
                                config.lambda, config);
  }
  const std::vector<double> item_sums = fi.ColumnSums();
  for (uint32_t u = 0; u < r.num_rows(); ++u) {
    LegacyProjectedGradientStep(fu.Row(u), r.Row(u), fi, item_sums,
                                config.lambda, config);
  }
  return ObjectiveQ(*model, r, config.lambda);
}

// ------------------------------------------------------------ benchmark

struct HotBenchResult {
  double legacy_seconds_per_sweep = 0.0;
  double fused_seconds_per_sweep = 0.0;
  double speedup = 0.0;
  double legacy_final_q = 0.0;
  double fused_final_q = 0.0;
  double final_q_rel_err = 0.0;
  double fused_oracle_rel_err = 0.0;  // fused tracked Q vs ObjectiveQ
  uint32_t sweeps = 0;
  uint32_t warmup = 0;
};

HotBenchResult RunHotBench(const CsrMatrix& r, const OcularConfig& config,
                           uint32_t sweeps, uint32_t warmup, uint64_t seed) {
  // Common initial model so both paths perform the same math.
  Rng rng(seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(config.k));
  DenseMatrix fu(r.num_rows(), config.k);
  DenseMatrix fi(r.num_cols(), config.k);
  fu.FillUniform(&rng, 0.0, scale);
  fi.FillUniform(&rng, 0.0, scale);
  const OcularModel initial(std::move(fu), std::move(fi));

  HotBenchResult out;
  out.sweeps = sweeps;
  out.warmup = warmup;

  // Legacy path: `warmup` untimed sweeps, then `sweeps` timed ones.
  {
    OcularModel model = initial;
    const CsrMatrix rt = r.Transpose();
    double q = 0.0;
    for (uint32_t s = 0; s < warmup; ++s) q = LegacySweep(r, rt, &model, config);
    Stopwatch watch;
    for (uint32_t s = 0; s < sweeps; ++s) q = LegacySweep(r, rt, &model, config);
    out.legacy_seconds_per_sweep = watch.ElapsedSeconds() / sweeps;
    out.legacy_final_q = q;
  }

  // Fused path: the production serial trainer (workspace kernels, cached
  // dots, warm-started line searches, fused objective tracking). One
  // continuous fit — the per-sweep trace timestamps give the steady-state
  // window exactly, without resetting the adaptive step state.
  {
    OcularConfig cfg = config;
    cfg.max_sweeps = warmup + sweeps;
    cfg.tolerance = 0.0;  // stops only if Q stops decreasing entirely
    cfg.track_objective = true;
    OcularTrainer trainer(cfg);
    auto fit = trainer.FitFrom(r, initial).value();
    // tolerance 0 still declares convergence if Q plateaus to within
    // floating-point noise (rel_drop < 0), so the trace may be shorter
    // than requested; time whatever steady-state sweeps actually ran.
    const uint32_t timed = fit.sweeps_run > warmup ? fit.sweeps_run - warmup
                                                   : 0;
    if (timed == 0) {
      std::fprintf(stderr,
                   "train_hot: converged within the %u warmup sweeps — "
                   "reduce --warmup or the workload is degenerate\n", warmup);
      std::exit(1);
    }
    const double t0 = warmup == 0 ? 0.0 : fit.trace[warmup - 1].seconds_elapsed;
    out.fused_seconds_per_sweep =
        (fit.trace.back().seconds_elapsed - t0) / timed;
    out.fused_final_q = fit.trace.back().objective;
    const double oracle = ObjectiveQ(fit.model, r, cfg.lambda);
    out.fused_oracle_rel_err = std::abs(out.fused_final_q - oracle) /
                               std::max(1.0, std::abs(oracle));
  }

  out.speedup = out.legacy_seconds_per_sweep /
                std::max(out.fused_seconds_per_sweep, 1e-12);
  out.final_q_rel_err =
      std::abs(out.fused_final_q - out.legacy_final_q) /
      std::max(1.0, std::abs(out.legacy_final_q));
  return out;
}

std::string ToJson(const HotBenchResult& res, const CsrMatrix& r,
                   const OcularConfig& config, double scale) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("train_hot");
  w.Key("workload");
  w.BeginObject();
  w.Key("kind");
  w.String("two_block");
  w.Key("scale");
  w.Double(scale);
  w.Key("users");
  w.UInt(r.num_rows());
  w.Key("items");
  w.UInt(r.num_cols());
  w.Key("nnz");
  w.UInt(r.nnz());
  w.Key("k");
  w.UInt(config.k);
  w.Key("lambda");
  w.Double(config.lambda);
  w.Key("sweeps");
  w.UInt(res.sweeps);
  w.Key("warmup");
  w.UInt(res.warmup);
  w.EndObject();
  w.Key("legacy");
  w.BeginObject();
  w.Key("seconds_per_sweep");
  w.Double(res.legacy_seconds_per_sweep);
  w.Key("final_q");
  w.Double(res.legacy_final_q);
  w.EndObject();
  w.Key("fused");
  w.BeginObject();
  w.Key("seconds_per_sweep");
  w.Double(res.fused_seconds_per_sweep);
  w.Key("final_q");
  w.Double(res.fused_final_q);
  w.EndObject();
  w.Key("speedup");
  w.Double(res.speedup);
  w.Key("final_q_rel_err");
  w.Double(res.final_q_rel_err);
  w.Key("fused_oracle_rel_err");
  w.Double(res.fused_oracle_rel_err);
  w.EndObject();
  return w.str();
}

int Main(int argc, char** argv) {
  const double scale = FlagDouble(argc, argv, "scale", 1.0);
  const uint32_t k = static_cast<uint32_t>(FlagDouble(argc, argv, "k", 50));
  const uint32_t sweeps =
      static_cast<uint32_t>(FlagDouble(argc, argv, "sweeps", 8));
  const uint32_t warmup =
      static_cast<uint32_t>(FlagDouble(argc, argv, "warmup", 3));
  const uint64_t seed =
      static_cast<uint64_t>(FlagDouble(argc, argv, "seed", 1));

  OcularConfig config;
  config.k = k;
  config.lambda = 1.0;

  const CsrMatrix r = TwoBlockWorkload(scale, seed);
  std::printf(
      "train_hot: %u users x %u items, nnz=%zu, K=%u, %u sweeps (+%u warmup)\n",
      r.num_rows(), r.num_cols(), r.nnz(), k, sweeps, warmup);

  const HotBenchResult res = RunHotBench(r, config, sweeps, warmup, seed + 1);

  std::printf("  legacy : %8.2f ms/sweep  (final Q %.6e)\n",
              1e3 * res.legacy_seconds_per_sweep, res.legacy_final_q);
  std::printf("  fused  : %8.2f ms/sweep  (final Q %.6e)\n",
              1e3 * res.fused_seconds_per_sweep, res.fused_final_q);
  std::printf("  speedup: %8.2fx          (|dQ|/|Q| = %.2e, oracle %.2e)\n",
              res.speedup, res.final_q_rel_err, res.fused_oracle_rel_err);

  // The fused tracked Q must reproduce the ObjectiveQ oracle on the final
  // model — this is the correctness contract of fused tracking.
  if (res.fused_oracle_rel_err > 1e-9) {
    std::fprintf(stderr, "FAIL: fused Q vs ObjectiveQ oracle rel err %.3e\n",
                 res.fused_oracle_rel_err);
    return 1;
  }
  // Both paths optimize the same objective from the same start; they may
  // pick different (equally valid) Armijo steps where acceptance is
  // non-monotone, so allow small trajectory drift — more means a bug.
  if (res.final_q_rel_err > 1e-2) {
    std::fprintf(stderr,
                 "FAIL: legacy/fused objective mismatch (rel err %.3e)\n",
                 res.final_q_rel_err);
    return 1;
  }

  if (FlagBool(argc, argv, "json")) {
    const std::string out_path =
        FlagString(argc, argv, "out", "BENCH_train.json");
    const std::string json = ToJson(res, r, config, scale);
    if (!WriteTextFile(out_path, json + "\n")) return 1;
    std::printf("  wrote %s\n", out_path.c_str());
  }

  const double min_speedup = FlagDouble(argc, argv, "min-speedup", 0.0);
  if (min_speedup > 0.0 && res.speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below floor %.2fx\n",
                 res.speedup, min_speedup);
    return 2;
  }

  const std::string baseline_path = FlagString(argc, argv, "baseline", "");
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    std::stringstream buf;
    buf << in.rdbuf();
    double baseline_speedup = 0.0;
    if (!in || !FindJsonNumber(buf.str(), "speedup", &baseline_speedup)) {
      std::fprintf(stderr, "FAIL: cannot read speedup from baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    // The ratio only transfers between runs of the SAME workload — refuse
    // to gate against a baseline recorded at a different scale/K/nnz.
    double base_scale = 0.0, base_k = 0.0, base_nnz = 0.0;
    if (!FindJsonNumber(buf.str(), "scale", &base_scale) ||
        !FindJsonNumber(buf.str(), "k", &base_k) ||
        !FindJsonNumber(buf.str(), "nnz", &base_nnz) ||
        std::abs(base_scale - scale) > 1e-12 ||
        static_cast<uint32_t>(base_k) != k ||
        static_cast<size_t>(base_nnz) != r.nnz()) {
      std::fprintf(stderr,
                   "FAIL: baseline %s records a different workload "
                   "(scale=%g k=%g nnz=%.0f vs scale=%g k=%u nnz=%zu) — "
                   "regenerate it with the current bench flags\n",
                   baseline_path.c_str(), base_scale, base_k, base_nnz,
                   scale, k, r.nnz());
      return 2;
    }
    // >25% regression against the checked-in baseline fails the gate. The
    // speedup is a same-machine ratio, so it transfers across runners far
    // better than absolute wall clock.
    const double floor = 0.75 * baseline_speedup;
    if (res.speedup < floor) {
      std::fprintf(stderr,
                   "FAIL: speedup %.2fx regressed >25%% vs baseline %.2fx "
                   "(floor %.2fx)\n",
                   res.speedup, baseline_speedup, floor);
      return 2;
    }
    std::printf("  baseline gate ok: %.2fx vs recorded %.2fx (floor %.2fx)\n",
                res.speedup, baseline_speedup, floor);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ocular

int main(int argc, char** argv) { return ocular::bench::Main(argc, argv); }
