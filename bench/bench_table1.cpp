// Reproduces Table I: MAP@50 and recall@50 of OCuLaR, R-OCuLaR, wALS, BPR,
// user-based and item-based CF on MovieLens-like, CiteULike-like and
// B2B-like datasets (75/25 split, best hyper-parameters per method,
// averaged over independent instances).
//
// Paper values (for shape comparison; our substrate is synthetic):
//   Movielens  MAP@50: OCuLaR .1809  R-OCuLaR .1805  wALS .1513  BPR .1434
//              user .1639  item .1329 | recall@50 .4021/.4086/.3982/.3587/...
//   CiteULike  wALS and item-based competitive with OCuLaR.
//   B2B-DB     OCuLaR .1801 ~ wALS .1749 > BPR .1325.
// Expected shape: OCuLaR/R-OCuLaR best or tied-best with wALS; BPR and
// item-based trail; user-based in between.

#include <cstdio>

#include "bench/bench_util.h"

namespace ocular {
namespace {

void RunDataset(const char* label, const PlantedCoClusterData& data,
                uint32_t k_hint, int instances) {
  std::printf("\n%s  (%s)\n", label, data.dataset.Summary().c_str());
  std::printf("%-12s %10s %10s\n", "algorithm", "MAP@50", "recall@50");
  auto results = bench::RunComparison(data.dataset.interactions(), 50, k_hint,
                                      instances, /*seed=*/1234);
  for (const auto& r : results) {
    std::printf("%-12s %10.4f %10.4f\n", r.algorithm.c_str(), r.map,
                r.recall);
  }
}

}  // namespace
}  // namespace ocular

int main(int argc, char** argv) {
  using namespace ocular;
  const double scale = bench::FlagDouble(argc, argv, "scale", 0.06);
  const int instances =
      static_cast<int>(bench::FlagDouble(argc, argv, "instances", 2));
  std::printf("=== Table I: comparison with baseline one-class algorithms "
              "(synthetic stand-ins, scale=%.3f) ===\n", scale);

  Rng rng(99);
  auto ml = MakeMovieLensLike(scale, &rng).value();
  RunDataset("Movielens", ml, /*k_hint=*/8, instances);

  auto cul = MakeCiteULikeLike(scale, &rng).value();
  RunDataset("CiteULike", cul, /*k_hint=*/8, instances);

  auto b2b = MakeB2BLike(scale, &rng).value();
  RunDataset("B2B-DB", b2b, /*k_hint=*/8, instances);

  std::printf("\nShape check vs paper: OCuLaR/R-OCuLaR should be best or "
              "tied with wALS; BPR and item-based should trail.\n");
  return 0;
}
