// Reproduces Figure 2: non-overlapping (Modularity/Louvain) and
// overlapping (BIGCLAM) community detection both fail to recover the
// co-cluster structure of the Figure 1 toy example, while OCuLaR finds all
// three candidate recommendations.
//
// Candidate recommendations (white squares inside the planted co-clusters):
//   (user 1, item 6), (user 6, item 4), and (users 4/5 already own 1-4, so
//   the third hole is user 6's second-cluster view of item 4 — counted via
//   the two-cluster justification). We score each method by how many of
//   the in-cluster holes it can justify: a method justifies (u, i) if some
//   discovered community/co-cluster contains both u and i.

#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "core/coclusters.h"
#include "graph/bigclam.h"
#include "graph/louvain.h"

namespace ocular {
namespace {

struct Hole {
  uint32_t user;
  uint32_t item;
};

}  // namespace
}  // namespace ocular

int main() {
  using namespace ocular;
  std::printf("=== Figure 2: community detection vs OCuLaR on the toy "
              "example ===\n");
  Dataset toy = MakePaperToyDataset();
  const CsrMatrix& r = toy.interactions();
  Graph g = Graph::FromBipartite(r);
  const uint32_t offset = g.bipartite_offset();

  // Holes we evaluate: unknown cells inside planted co-clusters.
  const std::vector<Hole> holes = {{1, 6}, {6, 4}};

  // --- Louvain / Modularity ---
  auto louvain = DetectCommunitiesLouvain(g);
  std::printf("\nModularity (Louvain): %u communities, Q=%.3f\n",
              louvain.num_communities, louvain.modularity);
  for (uint32_t c = 0; c < louvain.num_communities; ++c) {
    std::printf("  community %u: users {", c);
    for (uint32_t v = 0; v < offset; ++v) {
      if (louvain.community[v] == c) std::printf(" %u", v);
    }
    std::printf(" } items {");
    for (uint32_t v = offset; v < g.num_nodes(); ++v) {
      if (louvain.community[v] == c) std::printf(" %u", v - offset);
    }
    std::printf(" }\n");
  }
  int louvain_hits = 0;
  for (const auto& h : holes) {
    if (louvain.community[h.user] == louvain.community[offset + h.item]) {
      ++louvain_hits;
    }
  }

  // --- BIGCLAM (unregularized overlapping model; seed-sensitive) ---
  // The paper's Figure 2 shows one BIGCLAM run recovering the wrong
  // boundaries. A single run can get lucky either way, so we report
  // robustness across restarts: how many of the candidate recommendations
  // each restart can justify.
  const int kRestarts = 10;
  int bigclam_total = 0;
  int bigclam_perfect = 0;
  for (int seed = 1; seed <= kRestarts; ++seed) {
    BigClamConfig bc;
    bc.k = 3;
    bc.max_iterations = 200;
    bc.seed = static_cast<uint64_t>(seed);
    auto bigclam = RunBigClam(g, bc).value();
    int hits = 0;
    for (const auto& h : holes) {
      bool justified = false;
      for (const auto& comm : bigclam.communities) {
        std::set<uint32_t> s(comm.begin(), comm.end());
        if (s.count(h.user) && s.count(offset + h.item)) justified = true;
      }
      hits += justified;
    }
    bigclam_total += hits;
    if (hits == static_cast<int>(holes.size())) ++bigclam_perfect;
  }
  std::printf("\nBIGCLAM (%d restarts): avg %.1f/%zu candidates justified, "
              "%d/%d restarts justify all\n",
              kRestarts, static_cast<double>(bigclam_total) / kRestarts,
              holes.size(), bigclam_perfect, kRestarts);

  // --- OCuLaR (regularized; same restart protocol) ---
  int ocular_total = 0;
  int ocular_perfect = 0;
  for (int seed = 1; seed <= kRestarts; ++seed) {
    OcularConfig cfg;
    cfg.k = 3;
    cfg.lambda = 0.05;
    cfg.max_sweeps = 200;
    cfg.seed = static_cast<uint64_t>(seed);
    OcularRecommender rec(cfg);
    Status st = rec.Fit(r);
    OCULAR_CHECK(st.ok()) << st.ToString();
    CoClusterOptions copts;
    copts.threshold = 0.5;
    auto coclusters = ExtractCoClusters(rec.model(), copts);
    int hits = 0;
    for (const auto& h : holes) {
      bool justified = false;
      for (const auto& cc : coclusters) {
        std::set<uint32_t> us(cc.users.begin(), cc.users.end());
        std::set<uint32_t> is(cc.items.begin(), cc.items.end());
        if (us.count(h.user) && is.count(h.item)) justified = true;
      }
      hits += justified;
    }
    ocular_total += hits;
    if (hits == static_cast<int>(holes.size())) ++ocular_perfect;
    if (seed == 1) {
      std::printf("\nOCuLaR (seed 1): %zu co-clusters; P[r(1,6)=1]=%.3f, "
                  "P[r(6,4)=1]=%.3f\n",
                  coclusters.size(), rec.Score(1, 6), rec.Score(6, 4));
    }
  }
  std::printf("OCuLaR (%d restarts): avg %.1f/%zu candidates justified, "
              "%d/%d restarts justify all\n",
              kRestarts, static_cast<double>(ocular_total) / kRestarts,
              holes.size(), ocular_perfect, kRestarts);

  std::printf("\nsummary: Modularity justifies %d/%zu (structurally capped: "
              "one community per node); BIGCLAM perfect in %d/%d restarts; "
              "OCuLaR perfect in %d/%d restarts\n",
              louvain_hits, holes.size(), bigclam_perfect, kRestarts,
              ocular_perfect, kRestarts);
  std::printf("Shape check vs paper (Fig. 2): non-overlapping Modularity "
              "cannot represent user 6's dual membership; unregularized "
              "BIGCLAM is restart-fragile; regularized OCuLaR is robust.\n");
  return 0;
}
