// Ablation bench for the design choices behind OCuLaR:
//
//  A. One projected-gradient step per block per sweep (Section IV-B:
//     "solving the subproblems exactly may slow down convergence ...
//     performing only one gradient descent step significantly speeds up
//     the algorithm") — compares objective-vs-wall-clock for
//     block_steps in {1, 5, 20}.
//  B. The Σf complement-sum trick (Section IV-D) — times one item-gradient
//     pass with the trick vs the naive sum over all unknown cells.
//  C. User/item bias terms (Section IV-A: "fitting the corresponding
//     model does not increase the recommendation performance") —
//     recall@50 with and without biases.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "baselines/coclust.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "parallel/gradient_kernel.h"

namespace ocular {
namespace {

/// Naive item gradient: forms Σ_{u: r_ui = 0} f_u by iterating ALL users
/// per item — the O(n_u · n_i · K) computation the paper's trick avoids.
void NaiveItemGradients(const CsrMatrix& r, const DenseMatrix& fu,
                        const DenseMatrix& fi, double lambda,
                        DenseMatrix* gradients) {
  const uint32_t k = fu.cols();
  *gradients = DenseMatrix(fi.rows(), k);
  const CsrMatrix rt = r.Transpose();
  for (uint32_t i = 0; i < fi.rows(); ++i) {
    auto g = gradients->Row(i);
    auto fi_row = fi.Row(i);
    for (uint32_t d = 0; d < k; ++d) g[d] = 2.0 * lambda * fi_row[d];
    for (uint32_t u = 0; u < fu.rows(); ++u) {
      auto fu_row = fu.Row(u);
      if (r.HasEntry(u, i)) {
        // Positive: contributes -f_u / (e^{<f_u,f_i>} - 1)  (eq. 6).
        const double dot = std::max(vec::Dot(fu_row, fi_row), 1e-12);
        const double coef = 1.0 / std::expm1(dot);
        for (uint32_t d = 0; d < k; ++d) g[d] -= coef * fu_row[d];
      } else {
        for (uint32_t d = 0; d < k; ++d) g[d] += fu_row[d];
      }
    }
  }
}

}  // namespace
}  // namespace ocular

int main(int argc, char** argv) {
  using namespace ocular;
  const double scale = bench::FlagDouble(argc, argv, "scale", 0.04);
  std::printf("=== Ablations: block steps, complement trick, biases "
              "(MovieLens-like, scale=%.3f) ===\n", scale);

  Rng rng(51);
  auto data = MakeMovieLensLike(scale, &rng).value();
  const CsrMatrix& r = data.dataset.interactions();
  std::printf("%s\n", data.dataset.Summary().c_str());
  Rng split_rng(52);
  auto split = SplitInteractions(r, 0.75, &split_rng).value();

  // ---- A. block_steps: progress vs wall clock. ----
  std::printf("\n[A] projected-gradient steps per block per sweep\n");
  std::printf("%-12s %10s %10s %16s %14s\n", "block_steps", "sweeps",
              "time(s)", "final Q", "recall@50");
  for (uint32_t steps : {1u, 5u, 20u}) {
    OcularConfig cfg;
    cfg.k = 12;
    cfg.lambda = 0.5;
    cfg.block_steps = steps;
    cfg.max_sweeps = 60;
    cfg.tolerance = 1e-5;
    OcularRecommender rec(cfg);
    Stopwatch watch;
    Status st = rec.Fit(split.train);
    const double seconds = watch.ElapsedSeconds();
    if (!st.ok()) {
      OCULAR_LOG(kWarning) << st.ToString();
      continue;
    }
    auto metrics =
        EvaluateRankingAtM(rec, split.train, split.test, 50).value();
    std::printf("%-12u %10zu %10.3f %16.2f %14.4f\n", steps,
                rec.trace().size(), seconds,
                rec.trace().back().objective, metrics.recall);
  }
  std::printf("Shape check: block_steps=1 reaches comparable Q and recall "
              "in the least wall-clock time (the paper's choice).\n");

  // ---- B. complement trick vs naive unknowns sum. ----
  std::printf("\n[B] Σf complement trick vs naive unknowns sum "
              "(one item-gradient pass)\n");
  {
    OcularConfig cfg;
    cfg.k = 12;
    cfg.lambda = 0.5;
    // Train to convergence so every positive has non-negligible affinity;
    // otherwise the clamped 1/(e^x - 1) terms reach ~1e12 and the
    // trick-vs-naive comparison drowns in float cancellation.
    cfg.max_sweeps = 40;
    OcularTrainer trainer(cfg);
    auto fit = trainer.Fit(split.train).value();
    const CsrMatrix rt = split.train.Transpose();
    DenseMatrix g_trick, g_naive;
    Stopwatch w1;
    ComputeItemGradientsSerial(rt, fit.model.user_factors(),
                               fit.model.item_factors(), cfg.lambda,
                               &g_trick);
    const double t_trick = w1.ElapsedSeconds();
    Stopwatch w2;
    NaiveItemGradients(split.train, fit.model.user_factors(),
                       fit.model.item_factors(), cfg.lambda, &g_naive);
    const double t_naive = w2.ElapsedSeconds();
    double max_rel_err = 0.0;
    for (uint32_t i = 0; i < g_trick.rows(); ++i) {
      for (uint32_t c = 0; c < g_trick.cols(); ++c) {
        const double a = g_trick.At(i, c);
        const double b = g_naive.At(i, c);
        max_rel_err = std::max(
            max_rel_err, std::abs(a - b) / (1.0 + std::abs(a) + std::abs(b)));
      }
    }
    std::printf("  trick %.4fs, naive %.4fs -> %.1fx speedup "
                "(max relative gradient disagreement %.2e)\n",
                t_trick, t_naive, t_naive / t_trick, max_rel_err);
  }

  // ---- C. biases on/off. ----
  std::printf("\n[C] user/item bias terms (Section IV-A extension)\n");
  std::printf("%-10s %12s %12s\n", "biases", "recall@50", "MAP@50");
  for (bool biases : {false, true}) {
    OcularConfig cfg;
    cfg.k = 12;
    cfg.lambda = 0.5;
    cfg.use_biases = biases;
    cfg.max_sweeps = 40;
    OcularRecommender rec(cfg);
    Status st = rec.Fit(split.train);
    if (!st.ok()) {
      OCULAR_LOG(kWarning) << st.ToString();
      continue;
    }
    auto metrics =
        EvaluateRankingAtM(rec, split.train, split.test, 50).value();
    std::printf("%-10s %12.4f %12.4f\n", biases ? "on" : "off",
                metrics.recall, metrics.map);
  }
  std::printf("Shape check: biases give no material improvement — the "
              "paper's reason for dropping them.\n");

  // ---- D. overlapping vs non-overlapping co-clustering. ----
  // Section II's core claim: restricting co-clusters to be non-overlapping
  // (George & Merugu-style CF) loses accuracy on data whose users have
  // several interests.
  std::printf("\n[D] overlapping (OCuLaR) vs non-overlapping (coclust) "
              "co-clustering\n");
  std::printf("%-10s %12s %12s\n", "model", "recall@50", "MAP@50");
  {
    OcularConfig cfg;
    cfg.k = 12;
    cfg.lambda = 0.5;
    cfg.max_sweeps = 40;
    OcularRecommender ocular(cfg);
    Status st = ocular.Fit(split.train);
    OCULAR_CHECK(st.ok()) << st.ToString();
    auto m = EvaluateRankingAtM(ocular, split.train, split.test, 50).value();
    std::printf("%-10s %12.4f %12.4f\n", "OCuLaR", m.recall, m.map);

    // Same co-cluster budget, grid over (g, h) splits of ~12 clusters.
    double best_recall = 0.0, best_map = 0.0;
    for (uint32_t g : {3u, 4u, 6u}) {
      CoclustConfig cc;
      cc.user_clusters = g;
      cc.item_clusters = 12 / g;
      cc.iterations = 25;
      CoclustRecommender coclust(cc);
      st = coclust.Fit(split.train);
      OCULAR_CHECK(st.ok()) << st.ToString();
      auto cm =
          EvaluateRankingAtM(coclust, split.train, split.test, 50).value();
      if (cm.map > best_map) {
        best_map = cm.map;
        best_recall = cm.recall;
      }
    }
    std::printf("%-10s %12.4f %12.4f\n", "coclust", best_recall, best_map);
  }
  std::printf("Shape check: the overlapping model wins — the motivation "
              "for OCuLaR over classic co-clustering CF.\n");
  return 0;
}
