// Reproduces Figure 9: fine (K, lambda) grid search for the B2B-like
// dataset, rendered as a recall@50 heatmap. The paper distributed 625
// parameter pairs over 8 GPUs with Spark; we run a scaled-down grid
// through the same GridSearch driver on one node.
// Expected shape: a hot band at moderate K and lambda, cooling toward the
// extremes — and the best cell typically OUTSIDE a naive small search
// range, which is the paper's argument for fast hyper-parameter search.

#include <cstdio>

#include "bench/bench_util.h"
#include "eval/grid_search.h"

int main(int argc, char** argv) {
  using namespace ocular;
  const double scale = bench::FlagDouble(argc, argv, "scale", 0.03);
  std::printf("=== Figure 9: (K, lambda) grid search heatmap "
              "(B2B-like, scale=%.3f) ===\n", scale);

  Rng rng(41);
  auto data = MakeB2BLike(scale, &rng).value();
  std::printf("%s\n\n", data.dataset.Summary().c_str());
  Rng split_rng(43);
  auto split =
      SplitInteractions(data.dataset.interactions(), 0.75, &split_rng)
          .value();

  auto factory = [](const GridPoint& p) -> std::unique_ptr<Recommender> {
    OcularConfig cfg;
    cfg.k = p.k;
    cfg.lambda = p.lambda;
    cfg.max_sweeps = 30;
    return std::make_unique<OcularRecommender>(cfg);
  };

  const std::vector<uint32_t> ks{4, 6, 8, 12, 16, 24, 32};
  const std::vector<double> lambdas{0.0, 0.1, 0.5, 1.0, 5.0, 20.0, 100.0};
  auto result =
      GridSearch(factory, ks, lambdas, split.train, split.test, 50).value();

  std::printf("%s\n", RenderGridHeatmap(result).c_str());

  double total_seconds = 0.0;
  for (const auto& cell : result.cells) total_seconds += cell.train_seconds;
  std::printf("grid of %zu points trained in %.2fs total on one core "
              "(paper: 625 points, 8 GPUs, ~8 minutes; >2 days on one "
              "CPU at full scale)\n",
              result.cells.size(), total_seconds);
  return 0;
}
