// Reproduces Figure 5: recall@M and MAP@M versus M for the six algorithms
// on the MovieLens-like dataset. Expected shape: all recall curves increase
// with M; OCuLaR / R-OCuLaR on top (or tied with wALS) across the range;
// MAP curves flatten after small M.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace ocular;
  const double scale = bench::FlagDouble(argc, argv, "scale", 0.06);
  std::printf("=== Figure 5: recall@M and MAP@M vs M (MovieLens-like, "
              "scale=%.3f) ===\n", scale);

  Rng rng(7);
  auto data = MakeMovieLensLike(scale, &rng).value();
  std::printf("%s\n", data.dataset.Summary().c_str());
  Rng split_rng(11);
  auto split =
      SplitInteractions(data.dataset.interactions(), 0.75, &split_rng)
          .value();

  const std::vector<uint32_t> cutoffs{5, 10, 20, 30, 50, 75, 100};

  // One representative configuration per algorithm (Fig. 5 shows curves,
  // not a hyper-parameter sweep).
  std::vector<bench::Candidate> roster;
  {
    OcularConfig c;
    c.k = 12;
    c.lambda = 0.5;
    c.max_sweeps = 40;
    roster.push_back({"OCuLaR", std::make_unique<OcularRecommender>(c)});
    OcularConfig rc = c;
    rc.variant = OcularVariant::kRelative;
    rc.lambda = 0.5 * bench::MeanRelativeWeight(split.train);
    roster.push_back({"R-OCuLaR", std::make_unique<OcularRecommender>(rc)});
    WalsConfig w;
    w.k = 12;
    w.b = 0.1;  // best unknown-weight at this density (see bench_table1)
    w.lambda = 0.05;
    w.iterations = 12;
    roster.push_back({"wALS", std::make_unique<WalsRecommender>(w)});
    BprConfig b;
    b.k = 12;
    b.epochs = 20;
    roster.push_back({"BPR", std::make_unique<BprRecommender>(b)});
    KnnConfig kc;
    kc.num_neighbors = 40;
    roster.push_back({"user-based", std::make_unique<UserKnnRecommender>(kc)});
    roster.push_back({"item-based", std::make_unique<ItemKnnRecommender>(kc)});
  }

  std::map<std::string, std::vector<MetricsAtM>> curves;
  for (auto& cand : roster) {
    Status st = cand.recommender->Fit(split.train);
    if (!st.ok()) {
      OCULAR_LOG(kWarning) << cand.algorithm << ": " << st.ToString();
      continue;
    }
    curves[cand.algorithm] =
        EvaluateRanking(*cand.recommender, split.train, split.test, cutoffs)
            .value();
  }

  for (const char* metric : {"recall", "MAP"}) {
    std::printf("\n%s@M items\n%-12s", metric, "M");
    for (uint32_t m : cutoffs) std::printf("%9u", m);
    std::printf("\n");
    for (const auto& [algo, rows] : curves) {
      std::printf("%-12s", algo.c_str());
      for (const auto& row : rows) {
        std::printf("%9.4f",
                    std::string(metric) == "recall" ? row.recall : row.map);
      }
      std::printf("\n");
    }
  }
  std::printf("\nShape check vs paper: curves monotone in M (recall); "
              "OCuLaR variants consistently at/near the top.\n");
  return 0;
}
