// Connection-core robustness benchmark: the epoll daemon under an idle
// keep-alive flood and a slowloris swarm. The numbers this PR's claim
// hangs on are not the hot-path throughput (BENCH_daemon owns that) but
// what survives hostile connection shapes: 5k idle keep-alive clients
// must be HELD (zero sheds, zero drops — each costs the daemon one fd,
// never a worker), hot traffic bursting through the flood must stay
// bit-identical to the offline oracle, and a 100-writer slowloris swarm
// must leave the hot clients' p99 within a small factor of the
// swarm-free tail.
//
//   bench_conn [--scale=0.25] [--k=16] [--m=10] [--sweeps=4] [--seed=1]
//              [--clients=4] [--requests=400] [--pipeline=8]
//              [--workers=2] [--idle-conns=5000] [--slow-writers=100]
//              [--duration-ms=1500] [--reps=2] [--warmup=1]
//              [--json] [--out=BENCH_conn.json]
//              [--baseline=path/to/BENCH.json] [--max-loris-p99-ratio=2.0]
//
// Phases (in-process RequestServer, workers=2 by default so the worker
// pool is tiny next to the connection count — the point of the epoll
// core):
//   1. validated hot pass — every reply checked against the
//      RecommendForAllUsers oracle (abort on any mismatch);
//   2. hot-only passes — swarm-free req/s and p50/p99 over --reps runs;
//   3. idle flood — --idle-conns held connections with the same hot
//      burst running through them, every burst reply oracle-checked;
//      hard-fails unless every idle connection is still healthy at the
//      end AND the server counted zero sheds / zero EMFILE parachutes;
//   4. slowloris swarm — --slow-writers dribbling connections with the
//      hot burst through them; p99 averaged over --reps runs;
//   5. fork/exec SIGKILL drill — a real ocular_served child is flooded,
//      SIGKILLed mid-flood, restarted on the same port, and must serve a
//      bit-identical reply again (restart-to-first-reply clocked).
//
// The JSON records hot/flood/loris rates and tails plus the two derived
// ratios. --baseline gates on throughput retention under the flood
// (floor = 0.5x the recorded flood_rps_over_hot — scheduler noise folds
// in) and on the loris tail ratio (ceiling = 2x recorded + the absolute
// --max-loris-p99-ratio, whichever is larger); the held/shed/identical
// requirements are unconditional hard failures, never baseline-relative.

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/timer.h"
#include "core/model_store.h"
#include "core/ocular_recommender.h"
#include "serving/batch.h"
#include "serving/daemon.h"
#include "serving/loadgen.h"
#include "serving/net_util.h"
#include "serving/registry.h"
#include "sparse/coo.h"
#include "sparse/csr.h"

#ifndef OCULAR_SERVED_PATH
#define OCULAR_SERVED_PATH "ocular_served"
#endif

namespace ocular {
namespace bench {
namespace {

/// Two disjoint dense user-item blocks with random holes — the same
/// generator as bench_daemon_hot/bench_fleet, so records are comparable
/// across the serve-side benches.
CsrMatrix TwoBlockWorkload(double scale, uint64_t seed) {
  const auto dim = [scale](uint32_t base) {
    return std::max(8u, static_cast<uint32_t>(base * scale));
  };
  const uint32_t users_per_block = dim(600);
  const uint32_t items_per_block = dim(400);
  const double fill = 0.7;
  Rng rng(seed);
  CooBuilder coo;
  for (uint32_t b = 0; b < 2; ++b) {
    const uint32_t u0 = b * users_per_block;
    const uint32_t i0 = b * items_per_block;
    for (uint32_t u = 0; u < users_per_block; ++u) {
      for (uint32_t i = 0; i < items_per_block; ++i) {
        if (rng.Uniform(0.0, 1.0) < fill) coo.Add(u0 + u, i0 + i);
      }
    }
  }
  return CsrMatrix::FromCoo(
      coo.Finalize(2 * users_per_block, 2 * items_per_block).value());
}

uint16_t FreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  OCULAR_CHECK(fd >= 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  OCULAR_CHECK(::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)) == 0);
  socklen_t len = sizeof(addr);
  OCULAR_CHECK(::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                             &len) == 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

/// One ocular_served child for the SIGKILL drill (move-only: the
/// destructor SIGKILLs whatever it still owns).
struct Served {
  pid_t pid = -1;

  Served() = default;
  Served(const Served&) = delete;
  Served& operator=(const Served&) = delete;
  Served(Served&& other) noexcept : pid(other.pid) { other.pid = -1; }
  Served& operator=(Served&& other) noexcept {
    if (this != &other) {
      KillHard();
      pid = other.pid;
      other.pid = -1;
    }
    return *this;
  }
  ~Served() { KillHard(); }

  static Served Spawn(const std::string& model_path,
                      const std::string& dataset_path, uint16_t port,
                      size_t workers) {
    std::vector<std::string> args = {
        OCULAR_SERVED_PATH,
        "--models=default=" + model_path,
        "--datasets=default=" + dataset_path,
        "--port=" + std::to_string(port),
        "--journal=0",
        "--workers=" + std::to_string(workers),
    };
    Served s;
    s.pid = ::fork();
    OCULAR_CHECK(s.pid >= 0);
    if (s.pid == 0) {
      const int null = ::open("/dev/null", O_WRONLY);
      if (null >= 0) {
        ::dup2(null, 2);
        ::close(null);
      }
      std::vector<char*> argv;
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(OCULAR_SERVED_PATH, argv.data());
      ::_exit(127);
    }
    return s;
  }

  void KillHard() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
  }
};

bool WaitForPort(uint16_t port, int timeout_ms = 20000) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0 && ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                             sizeof(addr)) == 0) {
      ::close(fd);
      return true;
    }
    if (fd >= 0) ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// One request/one reply over a fresh connection; empty string on any
/// failure (used only by the kill drill, where failure = not serving).
std::string RoundTrip(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string line = request + "\n";
  if (!net::SendAll(fd, line.data(), line.size())) {
    ::close(fd);
    return "";
  }
  std::string reply;
  char chunk[4096];
  while (reply.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    reply.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply.substr(0, reply.find('\n'));
}

struct ConnBenchResult {
  double hot_rps = 0.0;
  double hot_p50_us = 0.0;
  double hot_p99_us = 0.0;
  uint64_t flood_held = 0;
  uint64_t flood_dropped = 0;
  double flood_rps = 0.0;
  double flood_p99_us = 0.0;
  uint64_t flood_shed = 0;
  uint64_t flood_emfile = 0;
  double flood_rps_over_hot = 0.0;
  double loris_rps = 0.0;
  double loris_p99_us = 0.0;
  double loris_p99_over_hot = 0.0;
  double restart_ms = 0.0;
  bool post_restart_identical = false;
  bool lists_identical = false;
  uint64_t mismatches = 0;
  std::string first_mismatch;
};

std::string ToJson(const ConnBenchResult& res, const CsrMatrix& r,
                   uint32_t k, uint32_t m, double scale,
                   const LoadGenOptions& load, uint32_t idle_conns,
                   uint32_t slow_writers, size_t workers, uint32_t reps,
                   uint32_t warmup) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("conn");
  w.Key("workload");
  w.BeginObject();
  w.Key("kind");
  w.String("two_block");
  w.Key("scale");
  w.Double(scale);
  w.Key("users");
  w.UInt(r.num_rows());
  w.Key("items");
  w.UInt(r.num_cols());
  w.Key("nnz");
  w.UInt(r.nnz());
  w.Key("k");
  w.UInt(k);
  w.Key("m");
  w.UInt(m);
  w.Key("clients");
  w.UInt(load.clients);
  w.Key("requests_per_client");
  w.UInt(load.requests_per_client);
  w.Key("pipeline");
  w.UInt(load.pipeline);
  w.Key("idle_conns");
  w.UInt(idle_conns);
  w.Key("slow_writers");
  w.UInt(slow_writers);
  w.Key("workers");
  w.UInt(workers);
  w.Key("hardware_concurrency");
  w.UInt(std::thread::hardware_concurrency());
  w.Key("reps");
  w.UInt(reps);
  w.Key("warmup");
  w.UInt(warmup);
  w.EndObject();
  w.Key("hot");
  w.BeginObject();
  w.Key("requests_per_second");
  w.Double(res.hot_rps);
  w.Key("p50_latency_us");
  w.Double(res.hot_p50_us);
  w.Key("p99_latency_us");
  w.Double(res.hot_p99_us);
  w.EndObject();
  w.Key("flood");
  w.BeginObject();
  w.Key("connections_held");
  w.UInt(res.flood_held);
  w.Key("connections_dropped");
  w.UInt(res.flood_dropped);
  w.Key("connections_shed");
  w.UInt(res.flood_shed);
  w.Key("accept_emfile");
  w.UInt(res.flood_emfile);
  w.Key("requests_per_second");
  w.Double(res.flood_rps);
  w.Key("p99_latency_us");
  w.Double(res.flood_p99_us);
  w.EndObject();
  w.Key("flood_rps_over_hot");
  w.Double(res.flood_rps_over_hot);
  w.Key("loris");
  w.BeginObject();
  w.Key("requests_per_second");
  w.Double(res.loris_rps);
  w.Key("p99_latency_us");
  w.Double(res.loris_p99_us);
  w.EndObject();
  w.Key("loris_p99_over_hot");
  w.Double(res.loris_p99_over_hot);
  w.Key("kill_drill");
  w.BeginObject();
  w.Key("restart_ms");
  w.Double(res.restart_ms);
  w.Key("post_restart_identical");
  w.Bool(res.post_restart_identical);
  w.EndObject();
  w.Key("lists_identical");
  w.Bool(res.lists_identical);
  w.EndObject();
  return w.str();
}

int Main(int argc, char** argv) {
  const double scale = FlagDouble(argc, argv, "scale", 0.25);
  const uint32_t k = static_cast<uint32_t>(FlagDouble(argc, argv, "k", 16));
  const uint32_t m = static_cast<uint32_t>(FlagDouble(argc, argv, "m", 10));
  const uint32_t sweeps =
      static_cast<uint32_t>(FlagDouble(argc, argv, "sweeps", 4));
  const uint64_t seed =
      static_cast<uint64_t>(FlagDouble(argc, argv, "seed", 1));
  const uint32_t reps =
      static_cast<uint32_t>(FlagDouble(argc, argv, "reps", 2));
  const uint32_t warmup =
      static_cast<uint32_t>(FlagDouble(argc, argv, "warmup", 1));
  const size_t workers =
      static_cast<size_t>(FlagDouble(argc, argv, "workers", 2));
  const uint32_t idle_conns =
      static_cast<uint32_t>(FlagDouble(argc, argv, "idle-conns", 5000));
  const uint32_t slow_writers =
      static_cast<uint32_t>(FlagDouble(argc, argv, "slow-writers", 100));
  const uint32_t duration_ms =
      static_cast<uint32_t>(FlagDouble(argc, argv, "duration-ms", 1500));

  LoadGenOptions load;
  load.clients = static_cast<uint32_t>(FlagDouble(argc, argv, "clients", 4));
  load.requests_per_client =
      static_cast<uint64_t>(FlagDouble(argc, argv, "requests", 400));
  load.pipeline =
      static_cast<uint32_t>(FlagDouble(argc, argv, "pipeline", 8));
  load.m = m;

  const CsrMatrix r = TwoBlockWorkload(scale, seed);
  load.num_users = r.num_rows();
  std::printf(
      "conn: %u users x %u items, nnz=%zu, K=%u, top-%u — %u idle conns, "
      "%u slowloris, %u burst clients x %llu requests, pipeline %u, "
      "%zu workers, %u reps (+%u warmup)\n",
      r.num_rows(), r.num_cols(), r.nnz(), k, m, idle_conns, slow_writers,
      load.clients, static_cast<unsigned long long>(load.requests_per_client),
      load.pipeline, workers, reps, warmup);

  OcularConfig config;
  config.k = k;
  config.lambda = 1.0;
  config.max_sweeps = sweeps;
  config.seed = seed + 1;
  OcularRecommender rec(config);
  OCULAR_CHECK(rec.Fit(r).ok());

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string base =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/ocular_bench_conn";
  const std::string model_path = base + ".oclr";
  const std::string dataset_path = base + ".tsv";
  OCULAR_CHECK(SaveModelBinary(rec.model(), config, model_path).ok());
  {
    std::ofstream out(dataset_path);
    for (auto [u, i] : r.ToPairs()) out << u << '\t' << i << '\n';
  }

  ModelRegistry registry;
  {
    auto train = std::make_shared<const CsrMatrix>(r);
    OCULAR_CHECK(registry.Load("default", model_path, train).ok());
  }

  BatchOptions batch;
  batch.m = m;
  batch.skip_cold_users = false;
  const auto oracle = RecommendForAllUsers(rec, r, batch).value();

  ConnBenchResult res;
  std::mutex mismatch_mu;
  const auto check_reply = [&](uint32_t user, const std::string& line) {
    if (!ReplyMatchesRanked(line, oracle.recommendations[user])) {
      std::lock_guard<std::mutex> lock(mismatch_mu);
      ++res.mismatches;
      if (res.first_mismatch.empty()) {
        res.first_mismatch = "user " + std::to_string(user) + ": " + line;
      }
    }
  };

  // In-process epoll daemon. idle_timeout 0: the bench's idle fleet must
  // be HELD for the whole run — reaping policies have their own tests
  // (conn_flood_test) — while io_timeout keeps the sweep (and the
  // slow-consumer deadline) live.
  RequestServer::Options server_options;
  server_options.serve.m = m;
  server_options.num_workers = workers;
  server_options.idle_timeout_ms = 0;
  server_options.io_timeout_ms = 1000;
  {
    RequestServer server(&registry, server_options);
    std::thread serve_thread(
        [&server] { OCULAR_CHECK(server.RunTcpLoop(0, 0).ok()); });
    uint16_t port = 0;
    for (int ms = 0; ms < 10000 && (port = server.bound_port()) == 0; ++ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    OCULAR_CHECK(port != 0);
    load.port = port;

    // Phase 1: validated hot pass — the bit-identical contract first.
    LoadGenOptions validate = load;
    validate.on_reply = check_reply;
    {
      auto validated = RunLoadGen(validate);
      OCULAR_CHECK(validated.ok());
      res.lists_identical =
          res.mismatches == 0 && validated->error_replies == 0;
    }

    const auto fail_out = [&](const char* why) {
      std::fprintf(stderr, "FAIL: %s\n", why);
      RequestServer::RequestShutdown();
      serve_thread.join();
      std::remove(model_path.c_str());
      std::remove(dataset_path.c_str());
      return 1;
    };
    if (!res.lists_identical) {
      std::fprintf(stderr, "  first mismatch: %s\n",
                   res.first_mismatch.c_str());
      return fail_out("hot replies differ from the oracle");
    }

    // Phase 2: swarm-free hot passes.
    double rps_sum = 0.0, p50_sum = 0.0, p99_sum = 0.0;
    for (uint32_t run = 0; run < warmup + reps; ++run) {
      auto pass = RunLoadGen(load);
      OCULAR_CHECK(pass.ok());
      OCULAR_CHECK(pass->error_replies == 0);
      if (run >= warmup) {
        rps_sum += pass->requests_per_second;
        p50_sum += pass->p50_latency_us;
        p99_sum += pass->p99_latency_us;
      }
    }
    res.hot_rps = rps_sum / reps;
    res.hot_p50_us = p50_sum / reps;
    res.hot_p99_us = p99_sum / reps;

    // Phase 3: the idle flood, burst replies oracle-checked throughout.
    {
      IdleFloodOptions flood;
      flood.port = port;
      flood.idle_conns = idle_conns;
      flood.burst_clients = load.clients;
      flood.requests_per_client = load.requests_per_client;
      flood.pipeline = load.pipeline;
      flood.m = m;
      flood.num_users = r.num_rows();
      flood.zipf_skew = 3.0;
      flood.duration_ms = duration_ms;
      flood.on_burst_reply = check_reply;
      auto f = RunIdleFlood(flood);
      OCULAR_CHECK(f.ok());
      res.flood_held = f->connections_held;
      res.flood_dropped = f->connections_dropped;
      res.flood_rps = f->burst_rps;
      res.flood_p99_us = f->burst_p99_us;
      const DaemonStatsSnapshot stats = server.Stats();
      res.flood_shed = stats.connections_shed;
      res.flood_emfile = stats.accept_emfile;
      if (f->burst_errors != 0) return fail_out("burst errors under flood");
      if (res.mismatches != 0) {
        std::fprintf(stderr, "  first mismatch: %s\n",
                     res.first_mismatch.c_str());
        return fail_out("replies under the flood differ from the oracle");
      }
      if (res.flood_held != idle_conns || res.flood_dropped != 0) {
        std::fprintf(stderr, "  held %llu / %u, dropped %llu\n",
                     static_cast<unsigned long long>(res.flood_held),
                     idle_conns,
                     static_cast<unsigned long long>(res.flood_dropped));
        return fail_out("idle connections were not all held");
      }
      if (res.flood_shed != 0 || res.flood_emfile != 0) {
        return fail_out("server shed connections during the flood");
      }
    }
    res.flood_rps_over_hot = res.flood_rps / std::max(res.hot_rps, 1e-12);

    // Phase 4: slowloris swarm, averaged like the hot passes.
    double loris_rps_sum = 0.0, loris_p99_sum = 0.0;
    for (uint32_t run = 0; run < warmup + reps; ++run) {
      IdleFloodOptions loris;
      loris.port = port;
      loris.idle_conns = 0;
      loris.burst_clients = load.clients;
      loris.requests_per_client = load.requests_per_client;
      loris.pipeline = load.pipeline;
      loris.m = m;
      loris.num_users = r.num_rows();
      loris.zipf_skew = 3.0;
      loris.slow_writers = slow_writers;
      loris.slow_writer_interval_ms = 50;
      loris.duration_ms = duration_ms;
      auto l = RunIdleFlood(loris);
      OCULAR_CHECK(l.ok());
      if (l->burst_errors != 0) {
        return fail_out("burst errors under the slowloris swarm");
      }
      if (run >= warmup) {
        loris_rps_sum += l->burst_rps;
        loris_p99_sum += l->burst_p99_us;
      }
    }
    res.loris_rps = loris_rps_sum / reps;
    res.loris_p99_us = loris_p99_sum / reps;
    res.loris_p99_over_hot = res.loris_p99_us / std::max(res.hot_p99_us, 1e-12);

    RequestServer::RequestShutdown();
    serve_thread.join();
  }

  // Phase 5: SIGKILL a real daemon mid-flood, restart it on the same
  // port, require a bit-identical reply again.
  {
    const uint16_t port = FreePort();
    Served daemon = Served::Spawn(model_path, dataset_path, port, workers);
    OCULAR_CHECK(WaitForPort(port));
    std::thread flood_thread([&] {
      IdleFloodOptions flood;
      flood.port = port;
      flood.idle_conns = 200;
      flood.burst_clients = 2;
      flood.requests_per_client = 100000;  // deliberately unfinishable
      flood.pipeline = 8;
      flood.m = m;
      flood.num_users = r.num_rows();
      flood.duration_ms = 100;
      (void)RunIdleFlood(flood);  // dies with the SIGKILL — unasserted
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    daemon.KillHard();
    flood_thread.join();

    Stopwatch watch;
    daemon = Served::Spawn(model_path, dataset_path, port, workers);
    OCULAR_CHECK(WaitForPort(port));
    const uint32_t probe_user = std::min(7u, r.num_rows() - 1);
    std::string reply;
    for (int waited = 0; waited < 20000 && reply.empty(); waited += 20) {
      reply = RoundTrip(port, "{\"cmd\":\"recommend\",\"user\":" +
                                  std::to_string(probe_user) +
                                  ",\"m\":" + std::to_string(m) + "}");
      if (reply.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    res.restart_ms = watch.ElapsedSeconds() * 1000.0;
    res.post_restart_identical =
        !reply.empty() &&
        ReplyMatchesRanked(reply, oracle.recommendations[probe_user]);
  }

  std::remove(model_path.c_str());
  std::remove(dataset_path.c_str());

  std::printf("  hot       : %10.0f req/s  p99 %7.0f us (no flood)\n",
              res.hot_rps, res.hot_p99_us);
  std::printf(
      "  flood     : %10.0f req/s  p99 %7.0f us (%llu idle held, 0 shed, "
      "%.2fx of hot)\n",
      res.flood_rps, res.flood_p99_us,
      static_cast<unsigned long long>(res.flood_held),
      res.flood_rps_over_hot);
  std::printf(
      "  slowloris : %10.0f req/s  p99 %7.0f us (%u writers, p99 %.2fx of "
      "hot)\n",
      res.loris_rps, res.loris_p99_us, slow_writers, res.loris_p99_over_hot);
  std::printf("  kill drill: %10.0f ms restart-to-reply, identical=%s\n",
              res.restart_ms, res.post_restart_identical ? "yes" : "no");

  if (!res.post_restart_identical) {
    std::fprintf(stderr,
                 "FAIL: restarted daemon did not serve a bit-identical "
                 "reply\n");
    return 1;
  }

  if (FlagBool(argc, argv, "json")) {
    const std::string out_path =
        FlagString(argc, argv, "out", "BENCH_conn.json");
    const std::string json = ToJson(res, r, k, m, scale, load, idle_conns,
                                    slow_writers, workers, reps, warmup);
    if (!WriteTextFile(out_path, json + "\n")) return 1;
    std::printf("  wrote %s\n", out_path.c_str());
  }

  // Absolute tail gate: the ISSUE's claim is hot-client p99 within 2x of
  // the swarm-free tail while 100 slowloris writers dribble.
  const double max_loris_ratio =
      FlagDouble(argc, argv, "max-loris-p99-ratio", 2.0);
  if (max_loris_ratio > 0.0 && res.loris_p99_over_hot > max_loris_ratio) {
    std::fprintf(stderr,
                 "FAIL: slowloris p99 ratio %.2f above ceiling %.2f\n",
                 res.loris_p99_over_hot, max_loris_ratio);
    return 2;
  }

  const std::string baseline_path = FlagString(argc, argv, "baseline", "");
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    std::stringstream buf;
    buf << in.rdbuf();
    double base_retention = 0.0, base_loris = 0.0;
    if (!in ||
        !FindJsonNumber(buf.str(), "flood_rps_over_hot", &base_retention) ||
        !FindJsonNumber(buf.str(), "loris_p99_over_hot", &base_loris)) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    double base_scale = 0.0, base_nnz = 0.0, base_idle = 0.0;
    double base_clients = 0.0, base_pipeline = 0.0, base_workers = 0.0;
    if (!FindJsonNumber(buf.str(), "scale", &base_scale) ||
        !FindJsonNumber(buf.str(), "nnz", &base_nnz) ||
        !FindJsonNumber(buf.str(), "idle_conns", &base_idle) ||
        !FindJsonNumber(buf.str(), "clients", &base_clients) ||
        !FindJsonNumber(buf.str(), "pipeline", &base_pipeline) ||
        !FindJsonNumber(buf.str(), "workers", &base_workers) ||
        std::abs(base_scale - scale) > 1e-12 ||
        static_cast<size_t>(base_nnz) != r.nnz() ||
        static_cast<uint32_t>(base_idle) != idle_conns ||
        static_cast<uint32_t>(base_clients) != load.clients ||
        static_cast<uint32_t>(base_pipeline) != load.pipeline ||
        static_cast<size_t>(base_workers) != workers) {
      std::fprintf(stderr,
                   "FAIL: baseline %s records a different workload/shape — "
                   "regenerate it with the current bench flags\n",
                   baseline_path.c_str());
      return 2;
    }
    // Retention is a throughput ratio (scheduler noise folds in): floor
    // at half the recorded value. The loris tail ratio gets a ceiling of
    // 2x recorded or the absolute flag, whichever is looser — a real
    // regression (the swarm starving the hot clients again) blows past
    // both.
    const double retention_floor = 0.5 * base_retention;
    if (res.flood_rps_over_hot < retention_floor) {
      std::fprintf(stderr,
                   "FAIL: flood/hot throughput %.2f below floor %.2f "
                   "(baseline %.2f)\n",
                   res.flood_rps_over_hot, retention_floor, base_retention);
      return 2;
    }
    const double loris_ceiling =
        std::max(2.0 * base_loris, max_loris_ratio);
    if (res.loris_p99_over_hot > loris_ceiling) {
      std::fprintf(stderr,
                   "FAIL: slowloris p99 ratio %.2f above ceiling %.2f "
                   "(baseline %.2f)\n",
                   res.loris_p99_over_hot, loris_ceiling, base_loris);
      return 2;
    }
    std::printf(
        "  baseline gate ok: retention %.2f (floor %.2f), loris p99 ratio "
        "%.2f (ceiling %.2f)\n",
        res.flood_rps_over_hot, retention_floor, res.loris_p99_over_hot,
        loris_ceiling);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ocular

int main(int argc, char** argv) { return ocular::bench::Main(argc, argv); }
