// Reproduces Figure 8: distance to the optimal training likelihood versus
// wall-clock time for the serial ("CPU") trainer and the parallel
// executor that stands in for the paper's GPU implementation (Section VI).
// Also reports the memory-footprint accounting of Section VI
// (O(max(nnz, n_u*K, n_i*K))).
//
// Substitution note (DESIGN.md): the paper measured a 57x speedup on a
// GeForce TITAN X vs a Xeon core. This container exposes a single CPU
// core, so the parallel path cannot show wall-clock gains here; the bench
// demonstrates (a) identical convergence trajectories in sweep space and
// (b) the per-positive-example kernel decomposition cost, which is the
// GPU-portable part.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "parallel/gradient_kernel.h"
#include "parallel/kernel_trainer.h"
#include "parallel/parallel_trainer.h"

int main(int argc, char** argv) {
  using namespace ocular;
  const double scale = bench::FlagDouble(argc, argv, "scale", 0.01);
  const uint32_t k =
      static_cast<uint32_t>(bench::FlagDouble(argc, argv, "k", 50));
  std::printf("=== Figure 8: distance to optimal likelihood vs time, "
              "serial vs parallel (Netflix-like, scale=%.4f, K=%u) ===\n",
              scale, k);

  Rng rng(37);
  auto data = MakeNetflixLike(scale, &rng).value();
  const CsrMatrix& r = data.dataset.interactions();
  std::printf("%s\n", data.dataset.Summary().c_str());

  OcularConfig cfg;
  cfg.k = k;
  cfg.lambda = 0.5;
  cfg.max_sweeps = 25;
  cfg.tolerance = 1e-7;

  OcularTrainer serial(cfg);
  auto fit_serial = serial.Fit(r).value();
  ParallelOcularTrainer parallel(cfg, 0);
  auto fit_parallel = parallel.Fit(r).value();

  // "Optimal" likelihood = the best objective reached by either run.
  double q_opt = fit_serial.trace.back().objective;
  for (const auto& s : fit_parallel.trace) {
    if (s.objective < q_opt) q_opt = s.objective;
  }

  std::printf("\nworkers (parallel executor): %zu\n",
              parallel.num_threads());
  std::printf("%-8s %16s %16s %18s %18s\n", "sweep", "serial t(s)",
              "parallel t(s)", "serial Q-Q*", "parallel Q-Q*");
  const size_t rows =
      std::max(fit_serial.trace.size(), fit_parallel.trace.size());
  for (size_t s = 0; s < rows; ++s) {
    auto cell = [&](const std::vector<SweepStats>& t, bool time) {
      if (s >= t.size()) return std::string("-");
      return FormatDouble(time ? t[s].seconds_elapsed
                               : t[s].objective - q_opt, 4);
    };
    std::printf("%-8zu %16s %16s %18s %18s\n", s,
                cell(fit_serial.trace, true).c_str(),
                cell(fit_parallel.trace, true).c_str(),
                cell(fit_serial.trace, false).c_str(),
                cell(fit_parallel.trace, false).c_str());
  }

  // Full kernel-structured training run (gradients by per-positive
  // decomposition + bulk Armijo updates — the closest analogue of the
  // CUDA execution plan).
  KernelOcularTrainer kernel_trainer(cfg, 0);
  Stopwatch kw;
  auto fit_kernel = kernel_trainer.Fit(r).value();
  std::printf("\nkernel-structured trainer: %u sweeps in %.2fs, "
              "final Q-Q* = %s (serial: %s)\n",
              fit_kernel.sweeps_run, kw.ElapsedSeconds(),
              FormatDouble(fit_kernel.trace.back().objective - q_opt, 4)
                  .c_str(),
              FormatDouble(fit_serial.trace.back().objective - q_opt, 4)
                  .c_str());

  // GPU-kernel micro-benchmark: per-positive-example decomposition with
  // atomic accumulation vs the serial reference.
  const CsrMatrix rt = r.Transpose();
  DenseMatrix grads;
  Stopwatch w1;
  ComputeItemGradientsSerial(rt, fit_serial.model.user_factors(),
                             fit_serial.model.item_factors(), cfg.lambda,
                             &grads);
  const double t_serial = w1.ElapsedSeconds();
  ThreadPool pool(0);
  Stopwatch w2;
  ComputeItemGradientsKernel(rt, fit_serial.model.user_factors(),
                             fit_serial.model.item_factors(), cfg.lambda,
                             &pool, &grads);
  const double t_kernel = w2.ElapsedSeconds();
  std::printf("\nitem-gradient pass: serial %.4fs, per-positive kernel "
              "(%zu workers) %.4fs, speedup %.2fx\n",
              t_serial, pool.num_threads(), t_kernel, t_serial / t_kernel);

  // Section VI memory accounting.
  const size_t nnz_bytes = r.nnz() * sizeof(uint32_t) +
                           (r.num_rows() + 1) * sizeof(uint64_t);
  const size_t fu_bytes =
      static_cast<size_t>(r.num_rows()) * k * sizeof(double);
  const size_t fi_bytes =
      static_cast<size_t>(r.num_cols()) * k * sizeof(double);
  std::printf("\nmemory model O(max(nnz, nu*K, ni*K)): data %s B, "
              "user factors %s B, item factors %s B\n",
              FormatCount(nnz_bytes).c_str(), FormatCount(fu_bytes).c_str(),
              FormatCount(fi_bytes).c_str());
  std::printf("(paper: Netflix at K=200 fits in ~2.7 GB of GPU memory; "
              "extrapolating our accounting to full Netflix gives %.2f GB)\n",
              (56.0e6 * 4 + 480189.0 * 200 * 8 + 17770.0 * 200 * 8) / 1e9);
  return 0;
}
