// Micro-benchmark (google-benchmark) of the Section IV-D complexity claim:
// one block-coordinate sweep costs O(nnz * K). The two suites sweep nnz
// (at fixed K) and K (at fixed nnz); reported time should grow linearly
// with each. Complements bench_fig7_scaling, which measures the same claim
// end-to-end on the Netflix-like dataset.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/rng.h"
#include "core/ocular_recommender.h"
#include "core/ocular_trainer.h"
#include "data/synthetic.h"

namespace ocular {
namespace {

CsrMatrix MakeMatrix(uint32_t users, uint32_t items, uint64_t seed) {
  PlantedCoClusterConfig cfg;
  cfg.num_users = users;
  cfg.num_items = items;
  cfg.num_clusters = 6;
  cfg.user_membership_prob = 0.2;
  cfg.item_membership_prob = 0.2;
  Rng rng(seed);
  return GeneratePlantedCoClusters(cfg, &rng)
      .value()
      .dataset.interactions();
}

void BM_SweepVsNnz(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  CsrMatrix r = MakeMatrix(n, n / 2, 7);
  OcularConfig cfg;
  cfg.k = 16;
  cfg.max_sweeps = 1;
  cfg.tolerance = 0.0;
  cfg.track_objective = false;
  OcularTrainer trainer(cfg);
  for (auto _ : state) {
    auto fit = trainer.Fit(r);
    benchmark::DoNotOptimize(fit);
  }
  state.counters["nnz"] = static_cast<double>(r.nnz());
  state.counters["ns_per_nnz"] = benchmark::Counter(
      static_cast<double>(r.nnz()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}
BENCHMARK(BM_SweepVsNnz)->Arg(100)->Arg(200)->Arg(400)->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_SweepVsK(benchmark::State& state) {
  CsrMatrix r = MakeMatrix(300, 150, 7);
  OcularConfig cfg;
  cfg.k = static_cast<uint32_t>(state.range(0));
  cfg.max_sweeps = 1;
  cfg.tolerance = 0.0;
  cfg.track_objective = false;
  OcularTrainer trainer(cfg);
  for (auto _ : state) {
    auto fit = trainer.Fit(r);
    benchmark::DoNotOptimize(fit);
  }
  state.counters["K"] = static_cast<double>(cfg.k);
}
BENCHMARK(BM_SweepVsK)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_ObjectiveEvaluation(benchmark::State& state) {
  CsrMatrix r = MakeMatrix(400, 200, 9);
  OcularConfig cfg;
  cfg.k = 16;
  cfg.max_sweeps = 3;
  OcularTrainer trainer(cfg);
  auto fit = trainer.Fit(r).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ObjectiveQ(fit.model, r, 0.5));
  }
}
BENCHMARK(BM_ObjectiveEvaluation)->Unit(benchmark::kMicrosecond);

void BM_TopMRecommendation(benchmark::State& state) {
  CsrMatrix r = MakeMatrix(400, 200, 11);
  OcularConfig cfg;
  cfg.k = 16;
  cfg.max_sweeps = 5;
  OcularRecommender rec(cfg);
  OCULAR_CHECK(rec.Fit(r).ok());
  uint32_t u = 0;
  for (auto _ : state) {
    auto top = rec.Recommend(u, 50, r);
    benchmark::DoNotOptimize(top);
    u = (u + 1) % r.num_rows();
  }
}
BENCHMARK(BM_TopMRecommendation)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace ocular

BENCHMARK_MAIN();
