// Fold-in serving benchmark: recommend-by-history for users outside the
// trained model, the live-catalog path PR 6 moved from the per-pair
// ScoreFoldedUser loop onto the blocked scoring engine.
//
//   bench_foldin [--scale=1.0] [--k=50] [--m=50] [--sweeps=6] [--seed=1]
//                [--histories=64] [--history-len=8]
//                [--reps=50] [--warmup=5]
//                [--clients=4] [--requests=200] [--pipeline=8]
//                [--daemon-reps=3] [--daemon-warmup=1]
//                [--json] [--out=BENCH_foldin.json]
//                [--min-speedup=X] [--baseline=path/to/BENCH.json]
//
// Three measurements over one trained model:
//
//  1. Scoring speedup (the gated number). Each history is folded in ONCE
//     up front; the timed region ranks that fixed factor against the
//     catalog, so the ratio isolates what changed — per-pair
//     ScoreFoldedUser + TopM (n_i dense dots, expm1 on every item)
//     versus FoldedUserRecommender through RecommendBlockedInto
//     (AffinityBlock skipping the folded factor's zero coordinates,
//     expm1 only on selection survivors). Both sides are checked
//     bit-identical on every history before any timing.
//
//  2. Daemon fold-in service (informational): a RequestServer over the
//     saved binary model, driven by the load generator with all-history
//     traffic (unsorted ids with duplicates, exercising the wire
//     sanitization). A validated pass first checks every reply against
//     the offline RecommendForHistoryInto oracle.
//
//  3. Update publish latency (informational): one in-daemon `update`
//     request appending a new user, timed end to end (retrain + binary
//     save + atomic rename + registry swap).
//
// --min-speedup fails (exit 2) below an absolute floor; --baseline fails
// (exit 2) on a >40% regression of the scoring speedup after checking
// the baseline ran the same workload shape. The ratio is algorithmic
// (in-process, no sockets), but a fold-in request is only a few
// microseconds, so per-request timing noise is proportionally larger
// than in the train/serve benches — hence a margin between their 25%
// and the daemon bench's 75% (observed same-machine spread: ~1.4x
// between the slowest and fastest of repeated runs).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/timer.h"
#include "core/fold_in.h"
#include "core/model_store.h"
#include "core/ocular_recommender.h"
#include "eval/recommender.h"
#include "serving/daemon.h"
#include "serving/loadgen.h"
#include "serving/registry.h"
#include "sparse/coo.h"
#include "sparse/csr.h"

namespace ocular {
namespace bench {
namespace {

/// Two disjoint dense user-item blocks with random holes — the same
/// generator as bench_serve_hot / bench_daemon_hot, so records are
/// comparable across the serve-side benches.
CsrMatrix TwoBlockWorkload(double scale, uint64_t seed) {
  const auto dim = [scale](uint32_t base) {
    return std::max(8u, static_cast<uint32_t>(base * scale));
  };
  const uint32_t users_per_block = dim(600);
  const uint32_t items_per_block = dim(400);
  const double fill = 0.7;
  Rng rng(seed);
  CooBuilder coo;
  for (uint32_t b = 0; b < 2; ++b) {
    const uint32_t u0 = b * users_per_block;
    const uint32_t i0 = b * items_per_block;
    for (uint32_t u = 0; u < users_per_block; ++u) {
      for (uint32_t i = 0; i < items_per_block; ++i) {
        if (rng.Uniform(0.0, 1.0) < fill) coo.Add(u0 + u, i0 + i);
      }
    }
  }
  return CsrMatrix::FromCoo(
      coo.Finalize(2 * users_per_block, 2 * items_per_block).value());
}

/// Per-item interaction counts of the training matrix — the popularity
/// ranking the daemon's registry builds for the fallback path, mirrored
/// here so the offline oracle matches the served context exactly.
std::vector<double> TrainPopularity(const CsrMatrix& r) {
  std::vector<double> pop(r.num_cols(), 0.0);
  for (uint32_t col : r.col_idx()) pop[col] += 1.0;
  return pop;
}

struct FoldinBenchResult {
  double perpair_us = 0.0;  ///< per-request, per-pair reference
  double blocked_us = 0.0;  ///< per-request, blocked engine
  double speedup = 0.0;
  double daemon_rps = 0.0;
  double daemon_p50_us = 0.0;
  double daemon_p99_us = 0.0;
  double update_total_us = 0.0;
  double update_publish_us = 0.0;
  bool lists_identical = false;
  uint64_t mismatches = 0;
  std::string first_mismatch;
};

std::string ToJson(const FoldinBenchResult& res, const CsrMatrix& r,
                   uint32_t k, uint32_t m, double scale, uint32_t histories,
                   uint32_t history_len, uint32_t reps, uint32_t warmup,
                   const LoadGenOptions& load) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("foldin");
  w.Key("workload");
  w.BeginObject();
  w.Key("kind");
  w.String("two_block");
  w.Key("scale");
  w.Double(scale);
  w.Key("users");
  w.UInt(r.num_rows());
  w.Key("items");
  w.UInt(r.num_cols());
  w.Key("nnz");
  w.UInt(r.nnz());
  w.Key("k");
  w.UInt(k);
  w.Key("m");
  w.UInt(m);
  w.Key("histories");
  w.UInt(histories);
  w.Key("history_len");
  w.UInt(history_len);
  w.Key("reps");
  w.UInt(reps);
  w.Key("warmup");
  w.UInt(warmup);
  w.Key("clients");
  w.UInt(load.clients);
  w.Key("pipeline");
  w.UInt(load.pipeline);
  w.EndObject();
  w.Key("scoring");
  w.BeginObject();
  w.Key("perpair_us_per_request");
  w.Double(res.perpair_us);
  w.Key("blocked_us_per_request");
  w.Double(res.blocked_us);
  w.EndObject();
  w.Key("speedup");
  w.Double(res.speedup);
  w.Key("daemon");
  w.BeginObject();
  w.Key("requests_per_second");
  w.Double(res.daemon_rps);
  w.Key("p50_latency_us");
  w.Double(res.daemon_p50_us);
  w.Key("p99_latency_us");
  w.Double(res.daemon_p99_us);
  w.EndObject();
  w.Key("update");
  w.BeginObject();
  w.Key("total_us");
  w.Double(res.update_total_us);
  w.Key("publish_us");
  w.Double(res.update_publish_us);
  w.EndObject();
  w.Key("lists_identical");
  w.Bool(res.lists_identical);
  w.EndObject();
  return w.str();
}

int Main(int argc, char** argv) {
  const double scale = FlagDouble(argc, argv, "scale", 1.0);
  const uint32_t k = static_cast<uint32_t>(FlagDouble(argc, argv, "k", 50));
  const uint32_t m = static_cast<uint32_t>(FlagDouble(argc, argv, "m", 50));
  const uint32_t sweeps =
      static_cast<uint32_t>(FlagDouble(argc, argv, "sweeps", 6));
  const uint64_t seed =
      static_cast<uint64_t>(FlagDouble(argc, argv, "seed", 1));
  const uint32_t histories =
      static_cast<uint32_t>(FlagDouble(argc, argv, "histories", 64));
  const uint32_t history_len =
      static_cast<uint32_t>(FlagDouble(argc, argv, "history-len", 8));
  const uint32_t reps =
      static_cast<uint32_t>(FlagDouble(argc, argv, "reps", 50));
  const uint32_t warmup =
      static_cast<uint32_t>(FlagDouble(argc, argv, "warmup", 5));
  const uint32_t daemon_reps =
      static_cast<uint32_t>(FlagDouble(argc, argv, "daemon-reps", 3));
  const uint32_t daemon_warmup =
      static_cast<uint32_t>(FlagDouble(argc, argv, "daemon-warmup", 1));

  const CsrMatrix r = TwoBlockWorkload(scale, seed);
  std::printf(
      "foldin: %u users x %u items, nnz=%zu, K=%u, top-%u — %u histories "
      "of %u, %u reps (+%u warmup)\n",
      r.num_rows(), r.num_cols(), r.nnz(), k, m, histories, history_len,
      reps, warmup);

  OcularConfig config;
  config.k = k;
  config.lambda = 1.0;
  config.max_sweeps = sweeps;
  config.seed = seed + 1;
  OcularRecommender rec(config);
  {
    Stopwatch watch;
    OCULAR_CHECK(rec.Fit(r).ok());
    std::printf("  trained %u sweeps in %.2f s\n",
                static_cast<unsigned>(rec.trace().size()),
                watch.ElapsedSeconds());
  }

  const std::vector<double> popularity = TrainPopularity(r);
  auto ctx = MakeFoldInContext(rec.model(), config, popularity);
  OCULAR_CHECK(ctx.ok());

  // ---------------------------------------------- fold the cohort once
  // Histories are the load generator's own deterministic traffic
  // (unsorted, duplicated), sanitized exactly as the daemon does, then
  // solved once; the timed loops below rank these fixed factors.
  std::vector<std::vector<uint32_t>> cohort(histories);
  std::vector<std::vector<double>> factors(histories);
  FoldInOptions fold_options;
  FoldInWorkspace fold_ws;
  fold_ws.Reserve(ctx->dims(), history_len);
  for (uint32_t h = 0; h < histories; ++h) {
    cohort[h] = LoadGenHistory(h, history_len, r.num_cols());
    SanitizeHistory(&cohort[h], r.num_cols());
    OCULAR_CHECK(
        FoldInUserInto(*ctx, cohort[h], fold_options, &fold_ws).ok());
    factors[h].assign(fold_ws.f.begin(), fold_ws.f.end());
  }

  FoldinBenchResult res;
  const double neg_inf = -std::numeric_limits<double>::infinity();
  const uint32_t block_items = 2048;

  // ------------------------------------- parity check before any timing
  {
    std::vector<double> tile;
    std::vector<ScoredItem> selection;
    std::vector<double> scores(r.num_cols());
    res.lists_identical = true;
    for (uint32_t h = 0; h < histories && res.lists_identical; ++h) {
      for (uint32_t i = 0; i < r.num_cols(); ++i) {
        scores[i] = ScoreFoldedUser(rec.model(), factors[h], i);
      }
      const std::vector<ScoredItem> expect = TopM(scores, m, cohort[h]);
      FoldedUserRecommender folded(&*ctx, factors[h]);
      RecommendBlockedInto(folded, 0, m, cohort[h], neg_inf, block_items,
                           &tile, &selection);
      bool same = selection.size() == expect.size();
      for (size_t p = 0; same && p < expect.size(); ++p) {
        same = selection[p].item == expect[p].item &&
               selection[p].score == expect[p].score;
      }
      if (!same) {
        res.lists_identical = false;
        ++res.mismatches;
        res.first_mismatch =
            "history " + std::to_string(h) +
            ": blocked ranking differs from the per-pair reference";
      }
    }
    if (!res.lists_identical) {
      std::fprintf(stderr, "FAIL: %s\n", res.first_mismatch.c_str());
      return 1;
    }
  }

  // ------------------------------------------------- timed scoring race
  {
    std::vector<double> scores(r.num_cols());
    std::vector<ScoredItem> sink;
    double perpair_seconds = 0.0;
    for (uint32_t run = 0; run < warmup + reps; ++run) {
      Stopwatch watch;
      for (uint32_t h = 0; h < histories; ++h) {
        for (uint32_t i = 0; i < r.num_cols(); ++i) {
          scores[i] = ScoreFoldedUser(rec.model(), factors[h], i);
        }
        sink = TopM(scores, m, cohort[h]);
      }
      if (run >= warmup) perpair_seconds += watch.ElapsedSeconds();
    }
    std::vector<double> tile;
    std::vector<ScoredItem> selection;
    double blocked_seconds = 0.0;
    for (uint32_t run = 0; run < warmup + reps; ++run) {
      Stopwatch watch;
      for (uint32_t h = 0; h < histories; ++h) {
        FoldedUserRecommender folded(&*ctx, factors[h]);
        RecommendBlockedInto(folded, 0, m, cohort[h], neg_inf, block_items,
                             &tile, &selection);
      }
      if (run >= warmup) blocked_seconds += watch.ElapsedSeconds();
    }
    const double requests = static_cast<double>(reps) * histories;
    res.perpair_us = perpair_seconds * 1e6 / requests;
    res.blocked_us = blocked_seconds * 1e6 / requests;
    res.speedup = perpair_seconds / std::max(blocked_seconds, 1e-12);
  }
  std::printf("  per-pair : %10.1f us/request  (ScoreFoldedUser + TopM)\n",
              res.perpair_us);
  std::printf("  blocked  : %10.1f us/request  (engine, zero-coord "
              "skipping, lazy expm1)\n",
              res.blocked_us);
  std::printf("  speedup  : %10.2fx         (identical lists)\n",
              res.speedup);

  // ----------------------------------------- daemon fold-in (informational)
  LoadGenOptions load;
  load.clients = static_cast<uint32_t>(FlagDouble(argc, argv, "clients", 4));
  load.requests_per_client =
      static_cast<uint64_t>(FlagDouble(argc, argv, "requests", 200));
  load.pipeline =
      static_cast<uint32_t>(FlagDouble(argc, argv, "pipeline", 8));
  load.m = m;
  load.num_users = r.num_rows();
  load.history_every = 1;  // all-history traffic
  load.history_len = history_len;
  load.num_items = r.num_cols();

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string model_path =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
      "/ocular_bench_foldin.oclr";
  OCULAR_CHECK(SaveModelBinary(rec.model(), config, model_path).ok());
  ModelRegistry registry;
  {
    auto train = std::make_shared<const CsrMatrix>(r);
    OCULAR_CHECK(registry.Load("default", model_path, train).ok());
  }
  RequestServer::Options server_options;
  server_options.serve.m = m;
  RequestServer server(&registry, server_options);
  {
    const uint64_t total_connections =
        static_cast<uint64_t>(daemon_warmup + daemon_reps + 1) * load.clients;
    std::thread serve_thread([&server, total_connections] {
      OCULAR_CHECK(server.RunTcpLoop(0, total_connections).ok());
    });
    uint16_t port = 0;
    for (int ms = 0; ms < 10000 && (port = server.bound_port()) == 0; ++ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    OCULAR_CHECK(port != 0);

    // Validated pass: every daemon reply checked against the offline
    // fold-in oracle over the same context (wire-exact score compare).
    std::mutex oracle_mu;
    std::vector<uint32_t> oracle_history;
    FoldInWorkspace oracle_ws;
    std::vector<double> oracle_tile;
    std::vector<ScoredItem> oracle_selection;
    LoadGenOptions validate = load;
    validate.port = port;
    validate.on_history_reply = [&](std::span<const uint32_t> history,
                                    const std::string& line) {
      std::lock_guard<std::mutex> lock(oracle_mu);
      oracle_history.assign(history.begin(), history.end());
      SanitizeHistory(&oracle_history, r.num_cols());
      auto expect = RecommendForHistoryInto(
          *ctx, oracle_history, m, /*min_score=*/0.0, block_items,
          fold_options, &oracle_ws, &oracle_tile, &oracle_selection);
      OCULAR_CHECK(expect.ok());
      if (!ReplyMatchesRanked(line, expect->items)) {
        ++res.mismatches;
        if (res.first_mismatch.empty()) {
          res.first_mismatch =
              "daemon fold-in reply differs from the offline oracle: " +
              line;
        }
      }
    };
    {
      auto validated = RunLoadGen(validate);
      OCULAR_CHECK(validated.ok());
      res.lists_identical =
          res.mismatches == 0 && validated->error_replies == 0;
    }
    double rps_sum = 0.0, p50_sum = 0.0, p99_sum = 0.0;
    for (uint32_t run = 0;
         run < daemon_warmup + daemon_reps && res.lists_identical; ++run) {
      LoadGenOptions pass = load;
      pass.port = port;
      auto result = RunLoadGen(pass);
      OCULAR_CHECK(result.ok());
      OCULAR_CHECK(result->error_replies == 0);
      if (run >= daemon_warmup) {
        rps_sum += result->requests_per_second;
        p50_sum += result->p50_latency_us;
        p99_sum += result->p99_latency_us;
      }
    }
    if (res.lists_identical) {
      res.daemon_rps = rps_sum / daemon_reps;
      res.daemon_p50_us = p50_sum / daemon_reps;
      res.daemon_p99_us = p99_sum / daemon_reps;
    } else {
      for (uint64_t c = 0; c < static_cast<uint64_t>(daemon_warmup +
                                                     daemon_reps) *
                                   load.clients;
           ++c) {
        LoadGenOptions drain = load;
        drain.port = port;
        drain.clients = 1;
        drain.requests_per_client = 1;
        drain.pipeline = 1;
        (void)RunLoadGen(drain);
      }
    }
    serve_thread.join();
  }
  if (!res.lists_identical) {
    std::fprintf(stderr,
                 "FAIL: %llu daemon fold-in replies differ from the "
                 "offline oracle; first: %s\n",
                 static_cast<unsigned long long>(res.mismatches),
                 res.first_mismatch.c_str());
    std::remove(model_path.c_str());
    return 1;
  }
  std::printf("  daemon   : %10.0f req/s all-history traffic  p50 %.0f us  "
              "p99 %.0f us\n",
              res.daemon_rps, res.daemon_p50_us, res.daemon_p99_us);

  // -------------------------------------- update publish (informational)
  {
    const uint32_t new_user = r.num_rows();
    std::string update = "{\"cmd\":\"update\",\"model\":\"default\","
                         "\"sweeps\":2,\"adds\":[";
    for (uint32_t j = 0; j < std::min(history_len, r.num_cols()); ++j) {
      if (j > 0) update += ',';
      update += "[" + std::to_string(new_user) + "," + std::to_string(j) +
                "]";
    }
    update += "]}";
    Stopwatch watch;
    const std::string reply = server.HandleLine(update);
    res.update_total_us = watch.ElapsedSeconds() * 1e6;
    OCULAR_CHECK(reply.rfind("{\"ok\":true", 0) == 0);
    (void)FindJsonNumber(reply, "publish_us", &res.update_publish_us);
  }
  std::remove(model_path.c_str());
  std::printf("  update   : %10.0f us end-to-end (publish %.0f us)\n",
              res.update_total_us, res.update_publish_us);

  if (FlagBool(argc, argv, "json")) {
    const std::string out_path =
        FlagString(argc, argv, "out", "BENCH_foldin.json");
    const std::string json = ToJson(res, r, k, m, scale, histories,
                                    history_len, reps, warmup, load);
    if (!WriteTextFile(out_path, json + "\n")) return 1;
    std::printf("  wrote %s\n", out_path.c_str());
  }

  const double min_speedup = FlagDouble(argc, argv, "min-speedup", 0.0);
  if (min_speedup > 0.0 && res.speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below floor %.2fx\n",
                 res.speedup, min_speedup);
    return 2;
  }

  const std::string baseline_path = FlagString(argc, argv, "baseline", "");
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    std::stringstream buf;
    buf << in.rdbuf();
    double baseline_speedup = 0.0;
    if (!in || !FindJsonNumber(buf.str(), "speedup", &baseline_speedup)) {
      std::fprintf(stderr, "FAIL: cannot read speedup from baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    // The ratio only transfers between runs of the same workload shape —
    // refuse to gate otherwise.
    double base_scale = 0.0, base_k = 0.0, base_m = 0.0, base_nnz = 0.0;
    double base_histories = 0.0, base_len = 0.0;
    if (!FindJsonNumber(buf.str(), "scale", &base_scale) ||
        !FindJsonNumber(buf.str(), "k", &base_k) ||
        !FindJsonNumber(buf.str(), "m", &base_m) ||
        !FindJsonNumber(buf.str(), "nnz", &base_nnz) ||
        !FindJsonNumber(buf.str(), "histories", &base_histories) ||
        !FindJsonNumber(buf.str(), "history_len", &base_len) ||
        std::abs(base_scale - scale) > 1e-12 ||
        static_cast<uint32_t>(base_k) != k ||
        static_cast<uint32_t>(base_m) != m ||
        static_cast<size_t>(base_nnz) != r.nnz() ||
        static_cast<uint32_t>(base_histories) != histories ||
        static_cast<uint32_t>(base_len) != history_len) {
      std::fprintf(stderr,
                   "FAIL: baseline %s records a different workload shape "
                   "(scale=%g k=%g m=%g nnz=%.0f histories=%g "
                   "history_len=%g vs scale=%g k=%u m=%u nnz=%zu "
                   "histories=%u history_len=%u) — regenerate it with the "
                   "current bench flags\n",
                   baseline_path.c_str(), base_scale, base_k, base_m,
                   base_nnz, base_histories, base_len, scale, k, m, r.nnz(),
                   histories, history_len);
      return 2;
    }
    const double floor = 0.60 * baseline_speedup;
    if (res.speedup < floor) {
      std::fprintf(stderr,
                   "FAIL: speedup %.2fx regressed >25%% vs baseline %.2fx "
                   "(floor %.2fx)\n",
                   res.speedup, baseline_speedup, floor);
      return 2;
    }
    std::printf("  baseline gate ok: %.2fx vs recorded %.2fx (floor %.2fx)\n",
                res.speedup, baseline_speedup, floor);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ocular

int main(int argc, char** argv) { return ocular::bench::Main(argc, argv); }
