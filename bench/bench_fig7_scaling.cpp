// Reproduces Figure 7: training time per sweep of OCuLaR on increasing
// fractions of the Netflix-like dataset, for K in {10, 50, 100}.
// Expected shape: time per sweep is LINEAR in the number of positive
// examples and LINEAR in K (Section IV-D complexity analysis).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"

namespace ocular {
namespace {

double SecondsPerSweep(const CsrMatrix& r, uint32_t k, uint32_t sweeps) {
  OcularConfig cfg;
  cfg.k = k;
  cfg.lambda = 0.5;
  cfg.max_sweeps = sweeps;
  cfg.tolerance = 0.0;        // never early-stop
  cfg.track_objective = false;  // pure sweep cost, like the paper's sec/it
  OcularTrainer trainer(cfg);
  Stopwatch watch;
  auto fit = trainer.Fit(r).value();
  return watch.ElapsedSeconds() / fit.sweeps_run;
}

}  // namespace
}  // namespace ocular

int main(int argc, char** argv) {
  using namespace ocular;
  // Netflix is 480k x 17.8k with ~56M positives; default scale keeps the
  // single-core run in seconds. Raise --scale to stress.
  const double scale = bench::FlagDouble(argc, argv, "scale", 0.015);
  std::printf("=== Figure 7: running time per sweep vs dataset fraction "
              "(Netflix-like, scale=%.4f) ===\n", scale);

  Rng rng(23);
  auto data = MakeNetflixLike(scale, &rng).value();
  std::printf("%s\n\n", data.dataset.Summary().c_str());

  const std::vector<double> fractions{0.2, 0.4, 0.6, 0.8, 1.0};
  const std::vector<uint32_t> ks{10, 50, 100};

  std::printf("%-10s %14s", "fraction", "positives");
  for (uint32_t k : ks) std::printf("   K=%-3u (s/sweep)", k);
  std::printf("\n");

  std::vector<std::vector<double>> times(ks.size());
  std::vector<double> nnzs;
  for (double frac : fractions) {
    Rng sample_rng(31);
    CsrMatrix sub =
        SampleFraction(data.dataset.interactions(), frac, &sample_rng)
            .value();
    nnzs.push_back(static_cast<double>(sub.nnz()));
    std::printf("%-10.2f %14s", frac, FormatCount(sub.nnz()).c_str());
    for (size_t ki = 0; ki < ks.size(); ++ki) {
      const double sps = SecondsPerSweep(sub, ks[ki], 3);
      times[ki].push_back(sps);
      std::printf("   %16.4f", sps);
    }
    std::printf("\n");
  }

  // Linearity check: time(f=1.0)/time(f=0.2) should be ~nnz ratio, and
  // time should scale ~K.
  std::printf("\nLinearity diagnostics (paper claims O(nnz * K)):\n");
  for (size_t ki = 0; ki < ks.size(); ++ki) {
    const double ratio = times[ki].back() / times[ki].front();
    const double nnz_ratio = nnzs.back() / nnzs.front();
    std::printf("  K=%-3u  time ratio (full/0.2) = %.2f  vs nnz ratio %.2f\n",
                ks[ki], ratio, nnz_ratio);
  }
  // At K=10 the per-neighbor loop overhead is comparable to the K
  // multiply-adds themselves, so the clean ∝K regime shows between the
  // larger K values.
  const double k_ratio_small = times[2].back() / times[0].back();
  const double k_ratio_large = times[2].back() / times[1].back();
  std::printf("  K ratio 100/10 -> time ratio = %.2f (expect <10: small-K "
              "runs are loop-overhead bound)\n", k_ratio_small);
  std::printf("  K ratio 100/50 -> time ratio = %.2f (expect ~2)\n",
              k_ratio_large);
  return 0;
}
