// Sharded-store serving benchmark: the numbers the sharding PR hangs on.
//
//   bench_shard [--users=200000] [--items=128] [--k=8] [--shards=8]
//               [--m=10] [--clients=4] [--requests=2000] [--pipeline=8]
//               [--workers=4] [--reps=5] [--update-reps=5]
//               [--json] [--out=BENCH_shard.json]
//               [--baseline=path/to/BENCH.json]
//
// Phases:
//   1. open     — mmap + validate the same catalog as one monolithic
//                 .oclr vs an N-shard shardset (manifest + fingerprints +
//                 per-member headers). Sharding must not make opening a
//                 catalog meaningfully slower.
//   2. steady   — req/s through a real TCP RequestServer answering from
//                 the sharded binding (routing + shared items file on the
//                 hot path).
//   3. update   — wall clock of one online update that touches a single
//                 shard: fold-in refresh, rewrite of that shard file,
//                 fingerprint + manifest republish, registry swap. This
//                 is the operation sharding exists to make cheap — the
//                 other N-1 shards are not rewritten, not remapped, not
//                 even re-read.
//
// The catalog is the deterministic scale generator (data/scale.h), so
// records are comparable across machines at equal --users. --baseline
// cross-checks the workload shape and gates sharded open time and
// update-publish wall clock with generous ceilings (5x + slack) that
// absorb runner noise but catch an accidental "reopen the world" or
// "rewrite every shard" regression.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/timer.h"
#include "core/model_shard.h"
#include "core/model_store.h"
#include "data/scale.h"
#include "serving/daemon.h"
#include "serving/loadgen.h"
#include "serving/registry.h"
#include "sparse/coo.h"
#include "sparse/csr.h"

namespace ocular {
namespace bench {
namespace {

struct ShardBenchResult {
  double mono_open_ms = 0.0;
  double sharded_open_ms = 0.0;
  double sharded_over_mono = 0.0;
  double steady_rps = 0.0;
  double update_publish_ms = 0.0;
  uint64_t errors = 0;
};

std::string ToJson(const ShardBenchResult& res, const ScaleCatalogSpec& spec,
                   uint32_t shards, uint32_t m, const LoadGenOptions& load,
                   size_t workers, uint32_t reps, uint32_t update_reps) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("shard");
  w.Key("workload");
  w.BeginObject();
  w.Key("kind");
  w.String("scale_catalog");
  w.Key("users");
  w.UInt(spec.num_users);
  w.Key("items");
  w.UInt(spec.num_items);
  w.Key("k");
  w.UInt(spec.k);
  w.Key("seed");
  w.UInt(spec.seed);
  w.Key("shards");
  w.UInt(shards);
  w.Key("m");
  w.UInt(m);
  w.Key("clients");
  w.UInt(load.clients);
  w.Key("requests_per_client");
  w.UInt(load.requests_per_client);
  w.Key("pipeline");
  w.UInt(load.pipeline);
  w.Key("workers");
  w.UInt(workers);
  w.Key("hardware_concurrency");
  w.UInt(std::thread::hardware_concurrency());
  w.Key("reps");
  w.UInt(reps);
  w.Key("update_reps");
  w.UInt(update_reps);
  w.EndObject();
  w.Key("mono_open_ms");
  w.Double(res.mono_open_ms);
  w.Key("sharded_open_ms");
  w.Double(res.sharded_open_ms);
  w.Key("sharded_over_mono");
  w.Double(res.sharded_over_mono);
  w.Key("steady_requests_per_second");
  w.Double(res.steady_rps);
  w.Key("update_publish_ms");
  w.Double(res.update_publish_ms);
  w.Key("client_visible_errors");
  w.UInt(res.errors);
  w.EndObject();
  return w.str();
}

int Main(int argc, char** argv) {
  ScaleCatalogSpec spec;
  spec.num_users =
      static_cast<uint32_t>(FlagDouble(argc, argv, "users", 200000));
  spec.num_items =
      static_cast<uint32_t>(FlagDouble(argc, argv, "items", 128));
  spec.k = static_cast<uint32_t>(FlagDouble(argc, argv, "k", 8));
  spec.seed = static_cast<uint64_t>(FlagDouble(argc, argv, "seed", 7));
  const uint32_t shards =
      static_cast<uint32_t>(FlagDouble(argc, argv, "shards", 8));
  const uint32_t m = static_cast<uint32_t>(FlagDouble(argc, argv, "m", 10));
  const uint32_t reps =
      static_cast<uint32_t>(FlagDouble(argc, argv, "reps", 5));
  const uint32_t update_reps =
      static_cast<uint32_t>(FlagDouble(argc, argv, "update-reps", 5));
  const size_t workers =
      static_cast<size_t>(FlagDouble(argc, argv, "workers", 4));

  LoadGenOptions load;
  load.clients = static_cast<uint32_t>(FlagDouble(argc, argv, "clients", 4));
  load.requests_per_client =
      static_cast<uint64_t>(FlagDouble(argc, argv, "requests", 2000));
  load.pipeline =
      static_cast<uint32_t>(FlagDouble(argc, argv, "pipeline", 8));
  load.m = m;
  load.num_users = spec.num_users;

  std::printf(
      "shard: %u users x %u items, K=%u, %u shards, top-%u — %u clients x "
      "%llu requests, pipeline %u, %u open reps, %u update reps\n",
      spec.num_users, spec.num_items, spec.k, shards, m, load.clients,
      static_cast<unsigned long long>(load.requests_per_client),
      load.pipeline, reps, update_reps);

  // ---- materialize the catalog once; write it both ways.
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string base =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/ocular_bench_shard";
  const std::string mono_path = base + ".oclr";
  const std::string manifest_path = base + ".shardset";

  BinaryModelMeta meta;
  meta.k = spec.k;
  meta.lambda = 0.5;
  DenseMatrix users(spec.num_users, spec.k);
  for (uint32_t u = 0; u < spec.num_users; ++u) {
    ScaleUserRow(spec, u, users.Row(u));
  }
  const DenseMatrix items = ScaleItemFactors(spec);
  const DenseMatrix items_t = ScaleItemFactorsTransposed(spec);
  OCULAR_CHECK(
      SaveFactorSectionsBinary(meta, users, items, items_t, mono_path).ok());
  OCULAR_CHECK(
      SaveModelSharded(meta, users, items, items_t, shards, manifest_path)
          .ok());

  ShardBenchResult res;

  // ---- phase 1: open time, monolithic vs sharded.
  {
    double mono_sum = 0.0, sharded_sum = 0.0;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      Stopwatch watch;
      auto mono = ModelStore::Open(mono_path);
      OCULAR_CHECK(mono.ok());
      mono_sum += watch.ElapsedMillis();
      watch.Restart();
      auto set = OpenShardSet(manifest_path);
      OCULAR_CHECK(set.ok());
      sharded_sum += watch.ElapsedMillis();
    }
    res.mono_open_ms = mono_sum / reps;
    res.sharded_open_ms = sharded_sum / reps;
    res.sharded_over_mono =
        res.sharded_open_ms / std::max(res.mono_open_ms, 1e-9);
  }

  // ---- phase 2: steady-state req/s from the sharded binding over TCP.
  // The empty train matrix enables the update verb (phase 3) without
  // changing any recommendation (no exclusions).
  auto empty_train = std::make_shared<CsrMatrix>(CsrMatrix::FromCoo(
      CooBuilder().Finalize(spec.num_users, spec.num_items).value()));
  ModelRegistry registry;
  OCULAR_CHECK(registry.Load("default", manifest_path, empty_train).ok());
  RequestServer::Options server_options;
  server_options.num_workers = workers;
  server_options.update_journal = false;
  RequestServer server(&registry, server_options);
  std::thread server_thread(
      [&server] { OCULAR_CHECK(server.RunTcpLoop(0, 0).ok()); });
  uint16_t port = 0;
  for (int ms = 0; ms < 10000 && (port = server.bound_port()) == 0; ++ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  OCULAR_CHECK(port != 0);
  load.port = port;
  {
    auto warm = RunLoadGen(load);
    OCULAR_CHECK(warm.ok());
    res.errors += warm->error_replies;
    auto pass = RunLoadGen(load);
    OCULAR_CHECK(pass.ok());
    res.errors += pass->error_replies;
    res.steady_rps = pass->requests_per_second;
  }

  // ---- phase 3: single-shard update-publish wall clock. Each rep adds
  // one interaction for one user, which folds in that user, rewrites
  // exactly one shard file, republishes the manifest, and swaps the
  // binding; the reply must confirm shards_touched == 1.
  {
    double publish_sum = 0.0;
    for (uint32_t rep = 0; rep < update_reps; ++rep) {
      const uint32_t user = (rep * 7919u) % spec.num_users;
      const uint32_t item = rep % spec.num_items;
      const std::string request = R"({"cmd":"update","adds":[[)" +
                                  std::to_string(user) + "," +
                                  std::to_string(item) + "]]}";
      Stopwatch watch;
      const std::string reply = server.HandleLine(request);
      publish_sum += watch.ElapsedMillis();
      double touched = 0.0;
      if (reply.find("\"ok\":true") == std::string::npos ||
          !FindJsonNumber(reply, "shards_touched", &touched) ||
          static_cast<uint32_t>(touched) != 1) {
        std::fprintf(stderr, "FAIL: update rep %u did not touch exactly one "
                     "shard: %s\n", rep, reply.c_str());
        ++res.errors;
        break;
      }
    }
    res.update_publish_ms = publish_sum / std::max(update_reps, 1u);
  }

  RequestServer::RequestShutdown();
  server_thread.join();
  std::remove(mono_path.c_str());
  // Leave no shardset members behind either.
  {
    auto set = LoadShardSetManifest(manifest_path);
    if (set.ok()) {
      std::remove(ShardSetResolve(manifest_path, set->items_file).c_str());
      for (const auto& e : set->shards) {
        std::remove(ShardSetResolve(manifest_path, e.file).c_str());
      }
    }
    std::remove(manifest_path.c_str());
  }

  std::printf("  open mono    : %8.2f ms\n", res.mono_open_ms);
  std::printf("  open sharded : %8.2f ms  (%.2fx of mono, %u members)\n",
              res.sharded_open_ms, res.sharded_over_mono, shards + 1);
  std::printf("  steady       : %8.0f req/s  (sharded binding)\n",
              res.steady_rps);
  std::printf("  update       : %8.2f ms     (single-shard publish)\n",
              res.update_publish_ms);

  if (res.errors != 0) {
    std::fprintf(stderr, "FAIL: %llu errors during the bench\n",
                 static_cast<unsigned long long>(res.errors));
    return 1;
  }

  if (FlagBool(argc, argv, "json")) {
    const std::string out_path =
        FlagString(argc, argv, "out", "BENCH_shard.json");
    const std::string json = ToJson(res, spec, shards, m, load, workers,
                                    reps, update_reps);
    if (!WriteTextFile(out_path, json + "\n")) return 1;
    std::printf("  wrote %s\n", out_path.c_str());
  }

  const std::string baseline_path = FlagString(argc, argv, "baseline", "");
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    std::stringstream buf;
    buf << in.rdbuf();
    double base_open = 0.0, base_update = 0.0;
    if (!in || !FindJsonNumber(buf.str(), "sharded_open_ms", &base_open) ||
        !FindJsonNumber(buf.str(), "update_publish_ms", &base_update)) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    double base_users = 0.0, base_items = 0.0, base_k = 0.0;
    double base_shards = 0.0, base_clients = 0.0, base_pipeline = 0.0;
    if (!FindJsonNumber(buf.str(), "users", &base_users) ||
        !FindJsonNumber(buf.str(), "items", &base_items) ||
        !FindJsonNumber(buf.str(), "k", &base_k) ||
        !FindJsonNumber(buf.str(), "shards", &base_shards) ||
        !FindJsonNumber(buf.str(), "clients", &base_clients) ||
        !FindJsonNumber(buf.str(), "pipeline", &base_pipeline) ||
        static_cast<uint32_t>(base_users) != spec.num_users ||
        static_cast<uint32_t>(base_items) != spec.num_items ||
        static_cast<uint32_t>(base_k) != spec.k ||
        static_cast<uint32_t>(base_shards) != shards ||
        static_cast<uint32_t>(base_clients) != load.clients ||
        static_cast<uint32_t>(base_pipeline) != load.pipeline) {
      std::fprintf(stderr,
                   "FAIL: baseline %s records a different workload/shape — "
                   "regenerate it with the current bench flags\n",
                   baseline_path.c_str());
      return 2;
    }
    // Both gated numbers are wall-clock on a shared CI runner: 5x the
    // recorded value plus absolute slack absorbs noisy neighbors while
    // still catching an O(catalog) regression (reopening or rewriting
    // every member would blow past 5x at any realistic shard count).
    const double open_ceiling = 5.0 * base_open + 200.0;
    if (res.sharded_open_ms > open_ceiling) {
      std::fprintf(stderr,
                   "FAIL: sharded open %.2f ms above ceiling %.2f ms "
                   "(baseline %.2f ms)\n",
                   res.sharded_open_ms, open_ceiling, base_open);
      return 2;
    }
    const double update_ceiling = 5.0 * base_update + 500.0;
    if (res.update_publish_ms > update_ceiling) {
      std::fprintf(stderr,
                   "FAIL: update publish %.2f ms above ceiling %.2f ms "
                   "(baseline %.2f ms)\n",
                   res.update_publish_ms, update_ceiling, base_update);
      return 2;
    }
    std::printf(
        "  baseline gate ok: open %.2f ms (ceiling %.2f), update %.2f ms "
        "(ceiling %.2f)\n",
        res.sharded_open_ms, open_ceiling, res.update_publish_ms,
        update_ceiling);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ocular

int main(int argc, char** argv) { return ocular::bench::Main(argc, argv); }
