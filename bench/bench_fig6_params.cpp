// Reproduces Figure 6: impact of K and lambda on recall@50 and on
// co-cluster properties (users per co-cluster, items per co-cluster,
// co-cluster density) for the MovieLens-like dataset.
//
// Expected shape: recall peaks at moderate lambda (both lambda=0 and very
// large lambda hurt); co-cluster sizes shrink as K grows; densities rise
// as clusters get smaller/tighter.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/coclusters.h"

int main(int argc, char** argv) {
  using namespace ocular;
  const double scale = bench::FlagDouble(argc, argv, "scale", 0.06);
  std::printf("=== Figure 6: recall and co-cluster metrics vs (K, lambda) "
              "(MovieLens-like, scale=%.3f) ===\n", scale);

  Rng rng(13);
  auto data = MakeMovieLensLike(scale, &rng).value();
  std::printf("%s\n", data.dataset.Summary().c_str());
  Rng split_rng(17);
  auto split =
      SplitInteractions(data.dataset.interactions(), 0.75, &split_rng)
          .value();

  // The paper sweeps K in [~50, 300] and lambda in {0, 30, 100} at
  // Netflix/B2B scale; at our reduced scale the equivalent ranges are
  // smaller.
  const std::vector<uint32_t> ks{4, 8, 12, 16, 24};
  const std::vector<double> lambdas{0.0, 0.5, 5.0, 50.0, 500.0};

  std::printf("\n%-8s %-8s %10s %12s %12s %10s %12s\n", "K", "lambda",
              "recall@50", "users/cc", "items/cc", "density", "cc-count");
  for (double lambda : lambdas) {
    for (uint32_t k : ks) {
      OcularConfig cfg;
      cfg.k = k;
      cfg.lambda = lambda;
      cfg.max_sweeps = 40;
      OcularRecommender rec(cfg);
      Status st = rec.Fit(split.train);
      if (!st.ok()) {
        OCULAR_LOG(kWarning) << st.ToString();
        continue;
      }
      auto metrics =
          EvaluateRankingAtM(rec, split.train, split.test, 50).value();
      auto clusters = ExtractCoClusters(rec.model());
      auto stats = ComputeCoClusterStats(clusters, split.train);
      std::printf("%-8u %-8.1f %10.4f %12.1f %12.1f %10.3f %12u\n", k,
                  lambda, metrics.recall, stats.mean_users, stats.mean_items,
                  stats.mean_density, stats.num_clusters);
    }
    std::printf("\n");
  }
  std::printf("Shape check vs paper: recall worst at the lambda extremes; "
              "co-clusters shrink and densify as K grows.\n");
  return 0;
}
