// Replicated-fleet robustness benchmark: throughput through the
// FleetServer front tier over 3 real ocular_served replicas, with a
// SIGKILL of one replica mid-run — the number this PR's robustness claim
// hangs on is not the steady rate but what survives the kill: the
// kill-run must finish with ZERO client-visible errors (failover absorbs
// the corpse), the degraded fleet keeps serving, and the restarted
// replica is readmitted within a bounded recovery time.
//
//   bench_fleet [--scale=0.25] [--k=16] [--m=10] [--sweeps=4] [--seed=1]
//               [--clients=4] [--requests=200] [--pipeline=8]
//               [--workers=4] [--reps=2] [--warmup=1]
//               [--json] [--out=BENCH_fleet.json]
//               [--baseline=path/to/BENCH.json] [--max-recovery-ms=N]
//
// Phases: one validated pass (every reply checked against the offline
// RecommendForAllUsers oracle — the proxy relays replica bytes verbatim,
// so the bit-identical contract must survive the extra hop), steady
// passes over the full fleet, a kill pass (replica 1 SIGKILLed after a
// quarter of the replies), degraded passes over the surviving two
// replicas, then a restart with the readmission clock running.
//
// The JSON records steady/kill/degraded/recovered req/s, the
// degraded-over-steady retention ratio, and recovery_ms (replica exec to
// health readmission). --baseline gates on retention (floor = 0.5x the
// recorded ratio — it folds in scheduler noise) and on recovery_ms
// (ceiling = 5x recorded + 1000 ms — dominated by configured probe and
// reopen delays, so it transfers across machines); --max-recovery-ms
// adds an absolute ceiling. Any client-visible error anywhere fails the
// bench outright.

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/timer.h"
#include "core/model_store.h"
#include "core/ocular_recommender.h"
#include "serving/batch.h"
#include "serving/fleet.h"
#include "serving/loadgen.h"
#include "sparse/coo.h"
#include "sparse/csr.h"

#ifndef OCULAR_SERVED_PATH
#define OCULAR_SERVED_PATH "ocular_served"
#endif

namespace ocular {
namespace bench {
namespace {

/// Two disjoint dense user-item blocks with random holes — the same
/// generator as bench_serve_hot/bench_daemon_hot, so records are
/// comparable across the serve-side benches.
CsrMatrix TwoBlockWorkload(double scale, uint64_t seed) {
  const auto dim = [scale](uint32_t base) {
    return std::max(8u, static_cast<uint32_t>(base * scale));
  };
  const uint32_t users_per_block = dim(600);
  const uint32_t items_per_block = dim(400);
  const double fill = 0.7;
  Rng rng(seed);
  CooBuilder coo;
  for (uint32_t b = 0; b < 2; ++b) {
    const uint32_t u0 = b * users_per_block;
    const uint32_t i0 = b * items_per_block;
    for (uint32_t u = 0; u < users_per_block; ++u) {
      for (uint32_t i = 0; i < items_per_block; ++i) {
        if (rng.Uniform(0.0, 1.0) < fill) coo.Add(u0 + u, i0 + i);
      }
    }
  }
  return CsrMatrix::FromCoo(
      coo.Finalize(2 * users_per_block, 2 * items_per_block).value());
}

uint16_t FreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  OCULAR_CHECK(fd >= 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  OCULAR_CHECK(::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)) == 0);
  socklen_t len = sizeof(addr);
  OCULAR_CHECK(::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                             &len) == 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

/// One ocular_served replica as a child process (move-only: the
/// destructor SIGKILLs whatever it still owns).
struct Replica {
  pid_t pid = -1;

  Replica() = default;
  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;
  Replica(Replica&& other) noexcept : pid(other.pid) { other.pid = -1; }
  Replica& operator=(Replica&& other) noexcept {
    if (this != &other) {
      KillHard();
      pid = other.pid;
      other.pid = -1;
    }
    return *this;
  }
  ~Replica() { KillHard(); }

  static Replica Spawn(const std::string& model_path,
                       const std::string& dataset_path, uint16_t port,
                       size_t workers) {
    std::vector<std::string> args = {
        OCULAR_SERVED_PATH,
        "--models=default=" + model_path,
        "--datasets=default=" + dataset_path,
        "--port=" + std::to_string(port),
        "--journal=0",
        "--workers=" + std::to_string(workers),
    };
    Replica r;
    r.pid = ::fork();
    OCULAR_CHECK(r.pid >= 0);
    if (r.pid == 0) {
      const int null = ::open("/dev/null", O_WRONLY);
      if (null >= 0) {
        ::dup2(null, 2);
        ::close(null);
      }
      std::vector<char*> argv;
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(OCULAR_SERVED_PATH, argv.data());
      ::_exit(127);
    }
    return r;
  }

  void KillHard() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
  }
};

bool WaitForPort(uint16_t port, int timeout_ms = 20000) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0 && ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                             sizeof(addr)) == 0) {
      ::close(fd);
      return true;
    }
    if (fd >= 0) ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

struct FleetBenchResult {
  double steady_rps = 0.0;
  double kill_run_rps = 0.0;
  double degraded_rps = 0.0;
  double recovered_rps = 0.0;
  double degraded_over_steady = 0.0;
  double recovery_ms = 0.0;
  uint64_t errors = 0;
  uint64_t failovers = 0;
  uint64_t mismatches = 0;
  bool lists_identical = false;
  std::string first_mismatch;
};

std::string ToJson(const FleetBenchResult& res, const CsrMatrix& r,
                   uint32_t k, uint32_t m, double scale,
                   const LoadGenOptions& load, size_t replicas,
                   size_t workers, uint32_t reps, uint32_t warmup) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("fleet");
  w.Key("workload");
  w.BeginObject();
  w.Key("kind");
  w.String("two_block");
  w.Key("scale");
  w.Double(scale);
  w.Key("users");
  w.UInt(r.num_rows());
  w.Key("items");
  w.UInt(r.num_cols());
  w.Key("nnz");
  w.UInt(r.nnz());
  w.Key("k");
  w.UInt(k);
  w.Key("m");
  w.UInt(m);
  w.Key("clients");
  w.UInt(load.clients);
  w.Key("requests_per_client");
  w.UInt(load.requests_per_client);
  w.Key("pipeline");
  w.UInt(load.pipeline);
  w.Key("replicas");
  w.UInt(replicas);
  w.Key("workers");
  w.UInt(workers);
  w.Key("hardware_concurrency");
  w.UInt(std::thread::hardware_concurrency());
  w.Key("reps");
  w.UInt(reps);
  w.Key("warmup");
  w.UInt(warmup);
  w.EndObject();
  w.Key("steady_requests_per_second");
  w.Double(res.steady_rps);
  w.Key("kill_run_requests_per_second");
  w.Double(res.kill_run_rps);
  w.Key("degraded_requests_per_second");
  w.Double(res.degraded_rps);
  w.Key("recovered_requests_per_second");
  w.Double(res.recovered_rps);
  w.Key("degraded_over_steady");
  w.Double(res.degraded_over_steady);
  w.Key("recovery_ms");
  w.Double(res.recovery_ms);
  w.Key("client_visible_errors");
  w.UInt(res.errors);
  w.Key("failovers");
  w.UInt(res.failovers);
  w.Key("lists_identical");
  w.Bool(res.lists_identical);
  w.EndObject();
  return w.str();
}

int Main(int argc, char** argv) {
  const double scale = FlagDouble(argc, argv, "scale", 0.25);
  const uint32_t k = static_cast<uint32_t>(FlagDouble(argc, argv, "k", 16));
  const uint32_t m = static_cast<uint32_t>(FlagDouble(argc, argv, "m", 10));
  const uint32_t sweeps =
      static_cast<uint32_t>(FlagDouble(argc, argv, "sweeps", 4));
  const uint64_t seed =
      static_cast<uint64_t>(FlagDouble(argc, argv, "seed", 1));
  const uint32_t reps =
      static_cast<uint32_t>(FlagDouble(argc, argv, "reps", 2));
  const uint32_t warmup =
      static_cast<uint32_t>(FlagDouble(argc, argv, "warmup", 1));
  const size_t workers =
      static_cast<size_t>(FlagDouble(argc, argv, "workers", 4));
  constexpr size_t kReplicas = 3;

  LoadGenOptions load;
  load.clients = static_cast<uint32_t>(FlagDouble(argc, argv, "clients", 4));
  load.requests_per_client =
      static_cast<uint64_t>(FlagDouble(argc, argv, "requests", 200));
  load.pipeline =
      static_cast<uint32_t>(FlagDouble(argc, argv, "pipeline", 8));
  load.m = m;
  load.reconnect_on_close = true;  // fleet mode: ride through resets

  const CsrMatrix r = TwoBlockWorkload(scale, seed);
  load.num_users = r.num_rows();
  std::printf(
      "fleet: %u users x %u items, nnz=%zu, K=%u, top-%u — %zu replicas, "
      "%u clients x %llu requests, pipeline %u, %u reps (+%u warmup)\n",
      r.num_rows(), r.num_cols(), r.nnz(), k, m, kReplicas, load.clients,
      static_cast<unsigned long long>(load.requests_per_client),
      load.pipeline, reps, warmup);

  OcularConfig config;
  config.k = k;
  config.lambda = 1.0;
  config.max_sweeps = sweeps;
  config.seed = seed + 1;
  OcularRecommender rec(config);
  OCULAR_CHECK(rec.Fit(r).ok());

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string base =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/ocular_bench_fleet";
  const std::string model_path = base + ".oclr";
  const std::string dataset_path = base + ".tsv";
  OCULAR_CHECK(SaveModelBinary(rec.model(), config, model_path).ok());
  {
    std::ofstream out(dataset_path);
    for (auto [u, i] : r.ToPairs()) out << u << '\t' << i << '\n';
  }

  BatchOptions batch;
  batch.m = m;
  batch.skip_cold_users = false;
  const auto oracle = RecommendForAllUsers(rec, r, batch).value();

  // Replica workers must exceed the fleet's pinned keep-alive
  // connections (workers + prober + inline) — a daemon worker owns its
  // connection until close.
  const size_t replica_workers = workers + 4;
  uint16_t ports[kReplicas];
  std::vector<Replica> replicas;
  for (size_t i = 0; i < kReplicas; ++i) {
    ports[i] = FreePort();
    replicas.push_back(
        Replica::Spawn(model_path, dataset_path, ports[i], replica_workers));
  }
  for (size_t i = 0; i < kReplicas; ++i) OCULAR_CHECK(WaitForPort(ports[i]));

  FleetServer::Options fleet_options;
  fleet_options.replicas = {ports[0], ports[1], ports[2]};
  fleet_options.num_workers = workers;
  fleet_options.io_timeout_ms = 2000;
  fleet_options.probe_interval_ms = 100;
  fleet_options.health.fail_threshold = 3;
  fleet_options.health.reopen_after_ms = 300;
  FleetServer fleet(fleet_options);
  std::thread fleet_thread(
      [&fleet] { OCULAR_CHECK(fleet.RunLoop(0, 0).ok()); });
  uint16_t fleet_port = 0;
  for (int ms = 0; ms < 10000 && (fleet_port = fleet.bound_port()) == 0;
       ++ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  OCULAR_CHECK(fleet_port != 0);
  load.port = fleet_port;

  FleetBenchResult res;

  // Validated pass: the bit-identical contract through the front tier.
  std::mutex mismatch_mu;
  LoadGenOptions validate = load;
  validate.on_reply = [&](uint32_t user, const std::string& line) {
    if (!ReplyMatchesRanked(line, oracle.recommendations[user])) {
      std::lock_guard<std::mutex> lock(mismatch_mu);
      ++res.mismatches;
      if (res.first_mismatch.empty()) {
        res.first_mismatch = "user " + std::to_string(user) + ": " + line;
      }
    }
  };
  {
    auto validated = RunLoadGen(validate);
    OCULAR_CHECK(validated.ok());
    res.errors += validated->error_replies;
    res.lists_identical = res.mismatches == 0 && validated->error_replies == 0;
  }
  if (!res.lists_identical) {
    std::fprintf(stderr,
                 "FAIL: %llu fleet replies differ from the oracle; first: "
                 "%s\n",
                 static_cast<unsigned long long>(res.mismatches),
                 res.first_mismatch.c_str());
    fleet.Stop();
    fleet_thread.join();
    std::remove(model_path.c_str());
    std::remove(dataset_path.c_str());
    return 1;
  }

  const auto timed_pass = [&](const LoadGenOptions& options) {
    auto pass = RunLoadGen(options);
    OCULAR_CHECK(pass.ok());
    res.errors += pass->error_replies;
    return pass->requests_per_second;
  };

  // Steady state: the full fleet.
  double steady_sum = 0.0;
  for (uint32_t run = 0; run < warmup + reps; ++run) {
    const double rps = timed_pass(load);
    if (run >= warmup) steady_sum += rps;
  }
  res.steady_rps = steady_sum / reps;

  // Kill run: replica 1 SIGKILLed after a quarter of the replies — the
  // pass must still complete with zero client-visible errors.
  const uint64_t total =
      static_cast<uint64_t>(load.clients) * load.requests_per_client;
  std::atomic<uint64_t> replies{0};
  std::atomic<bool> killed{false};
  LoadGenOptions kill_pass = load;
  kill_pass.on_reply = [&](uint32_t, const std::string&) {
    if (replies.fetch_add(1, std::memory_order_relaxed) + 1 == total / 4 &&
        !killed.exchange(true)) {
      ::kill(replicas[1].pid, SIGKILL);
    }
  };
  {
    auto pass = RunLoadGen(kill_pass);
    OCULAR_CHECK(pass.ok());
    res.errors += pass->error_replies;
    res.kill_run_rps = pass->requests_per_second;
  }
  OCULAR_CHECK(killed.load());
  ::waitpid(replicas[1].pid, nullptr, 0);
  replicas[1].pid = -1;

  // Degraded state: two survivors carry the load.
  double degraded_sum = 0.0;
  for (uint32_t run = 0; run < warmup + reps; ++run) {
    const double rps = timed_pass(load);
    if (run >= warmup) degraded_sum += rps;
  }
  res.degraded_rps = degraded_sum / reps;
  res.degraded_over_steady = res.degraded_rps / std::max(res.steady_rps, 1e-12);

  // Recovery: restart the replica on its port and clock the readmission
  // (process exec through half-open probe back to healthy).
  {
    Stopwatch watch;
    replicas[1] =
        Replica::Spawn(model_path, dataset_path, ports[1], replica_workers);
    OCULAR_CHECK(WaitForPort(ports[1]));
    bool readmitted = false;
    for (int waited = 0; waited < 30000; waited += 20) {
      const FleetStatsSnapshot snapshot = fleet.Stats();
      if (snapshot.replicas[1].readmissions >= 1) {
        readmitted = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    OCULAR_CHECK(readmitted);
    res.recovery_ms = watch.ElapsedSeconds() * 1000.0;
  }
  res.recovered_rps = timed_pass(load);

  const FleetStatsSnapshot snapshot = fleet.Stats();
  res.failovers = snapshot.failovers;
  fleet.Stop();
  fleet_thread.join();
  std::remove(model_path.c_str());
  std::remove(dataset_path.c_str());

  std::printf("  steady    : %10.0f req/s  (%zu replicas)\n", res.steady_rps,
              kReplicas);
  std::printf("  kill run  : %10.0f req/s  (replica 1 SIGKILLed mid-run, "
              "%llu failovers, %llu client errors)\n",
              res.kill_run_rps,
              static_cast<unsigned long long>(res.failovers),
              static_cast<unsigned long long>(res.errors));
  std::printf("  degraded  : %10.0f req/s  (%.2fx of steady)\n",
              res.degraded_rps, res.degraded_over_steady);
  std::printf("  recovery  : %10.0f ms     (restart to readmission)\n",
              res.recovery_ms);
  std::printf("  recovered : %10.0f req/s\n", res.recovered_rps);

  if (res.errors != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu client-visible errors — the failover story "
                 "did not hold\n",
                 static_cast<unsigned long long>(res.errors));
    return 1;
  }

  if (FlagBool(argc, argv, "json")) {
    const std::string out_path =
        FlagString(argc, argv, "out", "BENCH_fleet.json");
    const std::string json = ToJson(res, r, k, m, scale, load, kReplicas,
                                    workers, reps, warmup);
    if (!WriteTextFile(out_path, json + "\n")) return 1;
    std::printf("  wrote %s\n", out_path.c_str());
  }

  const double max_recovery_ms =
      FlagDouble(argc, argv, "max-recovery-ms", 0.0);
  if (max_recovery_ms > 0.0 && res.recovery_ms > max_recovery_ms) {
    std::fprintf(stderr, "FAIL: recovery %.0f ms above ceiling %.0f ms\n",
                 res.recovery_ms, max_recovery_ms);
    return 2;
  }

  const std::string baseline_path = FlagString(argc, argv, "baseline", "");
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    std::stringstream buf;
    buf << in.rdbuf();
    double base_ratio = 0.0, base_recovery = 0.0;
    if (!in ||
        !FindJsonNumber(buf.str(), "degraded_over_steady", &base_ratio) ||
        !FindJsonNumber(buf.str(), "recovery_ms", &base_recovery)) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    double base_scale = 0.0, base_nnz = 0.0, base_clients = 0.0;
    double base_pipeline = 0.0, base_replicas = 0.0;
    if (!FindJsonNumber(buf.str(), "scale", &base_scale) ||
        !FindJsonNumber(buf.str(), "nnz", &base_nnz) ||
        !FindJsonNumber(buf.str(), "clients", &base_clients) ||
        !FindJsonNumber(buf.str(), "pipeline", &base_pipeline) ||
        !FindJsonNumber(buf.str(), "replicas", &base_replicas) ||
        std::abs(base_scale - scale) > 1e-12 ||
        static_cast<size_t>(base_nnz) != r.nnz() ||
        static_cast<uint32_t>(base_clients) != load.clients ||
        static_cast<uint32_t>(base_pipeline) != load.pipeline ||
        static_cast<size_t>(base_replicas) != kReplicas) {
      std::fprintf(stderr,
                   "FAIL: baseline %s records a different workload/shape — "
                   "regenerate it with the current bench flags\n",
                   baseline_path.c_str());
      return 2;
    }
    // Retention is a throughput ratio (scheduler noise folds in): floor
    // at half the recorded ratio. Recovery is configuration-dominated
    // (probe interval + reopen delay + replica startup): ceiling at 5x
    // recorded + 1 s absorbs a slow runner without masking a real
    // regression (a lost readmission path would blow past 30 s).
    const double ratio_floor = 0.5 * base_ratio;
    if (res.degraded_over_steady < ratio_floor) {
      std::fprintf(stderr,
                   "FAIL: degraded/steady %.2f below floor %.2f "
                   "(baseline %.2f)\n",
                   res.degraded_over_steady, ratio_floor, base_ratio);
      return 2;
    }
    const double recovery_ceiling = 5.0 * base_recovery + 1000.0;
    if (res.recovery_ms > recovery_ceiling) {
      std::fprintf(stderr,
                   "FAIL: recovery %.0f ms above ceiling %.0f ms "
                   "(baseline %.0f ms)\n",
                   res.recovery_ms, recovery_ceiling, base_recovery);
      return 2;
    }
    std::printf(
        "  baseline gate ok: retention %.2f (floor %.2f), recovery %.0f ms "
        "(ceiling %.0f ms)\n",
        res.degraded_over_steady, ratio_floor, res.recovery_ms,
        recovery_ceiling);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ocular

int main(int argc, char** argv) { return ocular::bench::Main(argc, argv); }
