// Hot-path daemon benchmark: online serving throughput over loopback TCP
// with C concurrent clients, the PR 4 serial accept loop vs the PR 5
// worker-pool daemon (listener + shared-nothing workers + pipelined
// batched replies), on a trained OCuLaR model over the synthetic
// two-block workload at K=50.
//
//   bench_daemon_hot [--scale=1.0] [--k=50] [--m=50] [--sweeps=6] [--seed=1]
//                    [--clients=8] [--requests=500] [--pipeline=16]
//                    [--workers=0] [--reps=3] [--warmup=1]
//                    [--json] [--out=BENCH_daemon.json]
//                    [--min-speedup=X] [--baseline=path/to/BENCH.json]
//
// The serial side is a faithful in-binary reproduction of the pre-PR 5
// TCP loop: one thread accepts one connection at a time and serves it to
// completion — every other client waits in the backlog — writing every
// reply with its own write(2) and never touching TCP_NODELAY. The pooled
// side is RequestServer::RunTcpLoop: listener + --workers shared-nothing
// worker threads behind a bounded accept queue, replies batched into one
// write per pipelined burst.
//
// Both sides serve the *same* RequestServer request handler over the
// same mmapped model, driven by the same load generator (C clients, each
// pipelining bursts of --pipeline recommend requests over a persistent
// connection, users round-robin over the catalog). Before any timing,
// one validated pass checks every pooled-daemon reply against the
// offline RecommendForAllUsers oracle: identical items, identical scores
// after the %.12g wire rendering — the bench aborts on any mismatch.
//
// Throughput is requests/second averaged over --reps runs (after
// --warmup discarded runs); speedup = pooled / serial. NOTE the pooled
// gain has two components: request pipelining with batched replies
// (realized even on one core — this container) and true multi-core
// concurrency (scales with min(clients, cores); the JSON records
// hardware_concurrency so a reader can tell which regime a record is
// from). --min-speedup fails (exit 2) below an absolute floor;
// --baseline fails (exit 2) on a >25% regression against the recorded
// speedup after checking the baseline ran the same workload shape AND
// worker count.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/timer.h"
#include "core/model_store.h"
#include "core/ocular_recommender.h"
#include "serving/batch.h"
#include "serving/daemon.h"
#include "serving/loadgen.h"
#include "serving/net_util.h"
#include "serving/registry.h"
#include "sparse/coo.h"
#include "sparse/csr.h"

namespace ocular {
namespace bench {
namespace {

// ----------------------------------------------------------- workload

/// Two disjoint dense user-item blocks with random holes — the same
/// generator as bench_serve_hot, so records are comparable across the
/// serve-side benches.
CsrMatrix TwoBlockWorkload(double scale, uint64_t seed) {
  const auto dim = [scale](uint32_t base) {
    return std::max(8u, static_cast<uint32_t>(base * scale));
  };
  const uint32_t users_per_block = dim(600);
  const uint32_t items_per_block = dim(400);
  const double fill = 0.7;
  Rng rng(seed);
  CooBuilder coo;
  for (uint32_t b = 0; b < 2; ++b) {
    const uint32_t u0 = b * users_per_block;
    const uint32_t i0 = b * items_per_block;
    for (uint32_t u = 0; u < users_per_block; ++u) {
      for (uint32_t i = 0; i < items_per_block; ++i) {
        if (rng.Uniform(0.0, 1.0) < fill) coo.Add(u0 + u, i0 + i);
      }
    }
  }
  return CsrMatrix::FromCoo(
      coo.Finalize(2 * users_per_block, 2 * items_per_block).value());
}

// ------------------------------------------------- legacy serial loop
// Faithful reproduction of the pre-PR 5 RunTcpLoop/ServeConnection pair
// (the before side of the before/after table): one thread, one
// connection served to completion at a time, one write(2) per reply,
// listen backlog 16, no TCP_NODELAY.

void LegacyServeConnection(RequestServer* server, int fd) {
  std::string buffer;
  char chunk[4096];
  bool connection_quit = false;
  while (!connection_quit) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    const size_t old_size = buffer.size();
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    size_t newline = buffer.find('\n', old_size);
    for (; newline != std::string::npos && !connection_quit;
         newline = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string reply = server->HandleLine(line);
      reply.push_back('\n');
      // net::SendAll's MSG_NOSIGNAL guards the bench harness only (same
      // syscall cost as the legacy write); the clients always drain
      // their replies, so it never fires.
      if (!net::SendAll(fd, reply.data(), reply.size())) {
        connection_quit = true;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

/// Runs the legacy loop on an ephemeral port until `max_connections`
/// connections have been served; publishes the bound port through
/// `*port_out` once listening.
void LegacySerialTcpLoop(RequestServer* server, uint64_t max_connections,
                         std::atomic<uint16_t>* port_out) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  OCULAR_CHECK(listener >= 0);
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  OCULAR_CHECK(::bind(listener, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)) == 0);
  OCULAR_CHECK(::listen(listener, 16) == 0);
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  OCULAR_CHECK(::getsockname(listener,
                             reinterpret_cast<struct sockaddr*>(&bound),
                             &len) == 0);
  port_out->store(ntohs(bound.sin_port), std::memory_order_release);
  for (uint64_t served = 0; served < max_connections; ++served) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        --served;
        continue;
      }
      break;
    }
    LegacyServeConnection(server, conn);
  }
  ::close(listener);
}

// ------------------------------------------------------------ benchmark

struct DaemonBenchResult {
  double serial_rps = 0.0;
  double pooled_rps = 0.0;
  double speedup = 0.0;
  // Strict request/response (pipeline=1) reference numbers: isolates the
  // multi-core concurrency component from the pipelining/batching one
  // (on a single-core host pooled ping-pong ~= serial ping-pong).
  double pingpong_serial_rps = 0.0;
  double pingpong_pooled_rps = 0.0;
  double pooled_p50_us = 0.0;
  double pooled_p99_us = 0.0;
  double serial_p50_us = 0.0;
  double serial_p99_us = 0.0;
  uint64_t requests_per_run = 0;
  bool lists_identical = false;
  uint64_t mismatches = 0;
  std::string first_mismatch;
};

/// Validates one reply line against the oracle's ranked list for `user`
/// with the shared wire-exactness check (serving/loadgen.h). Returns an
/// empty string on success, a description on mismatch.
std::string CheckReply(const std::vector<std::vector<ScoredItem>>& oracle,
                       uint32_t user, const std::string& line) {
  if (ReplyMatchesRanked(line, oracle[user])) return "";
  return "user " + std::to_string(user) +
         ": reply differs from the RecommendForAllUsers oracle (" +
         std::to_string(oracle[user].size()) + " items expected): " + line;
}

/// One timed load-generator pass; returns requests/second.
LoadGenResult RunOnePass(uint16_t port, const LoadGenOptions& base) {
  LoadGenOptions options = base;
  options.port = port;
  auto result = RunLoadGen(options);
  OCULAR_CHECK(result.ok());
  OCULAR_CHECK(result->error_replies == 0);
  return *result;
}

std::string ToJson(const DaemonBenchResult& res, const CsrMatrix& r,
                   uint32_t k, uint32_t m, double scale,
                   const LoadGenOptions& load, size_t workers, uint32_t reps,
                   uint32_t warmup) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("daemon_hot");
  w.Key("workload");
  w.BeginObject();
  w.Key("kind");
  w.String("two_block");
  w.Key("scale");
  w.Double(scale);
  w.Key("users");
  w.UInt(r.num_rows());
  w.Key("items");
  w.UInt(r.num_cols());
  w.Key("nnz");
  w.UInt(r.nnz());
  w.Key("k");
  w.UInt(k);
  w.Key("m");
  w.UInt(m);
  w.Key("clients");
  w.UInt(load.clients);
  w.Key("requests_per_client");
  w.UInt(load.requests_per_client);
  w.Key("pipeline");
  w.UInt(load.pipeline);
  w.Key("workers");
  w.UInt(workers);
  w.Key("hardware_concurrency");
  w.UInt(std::thread::hardware_concurrency());
  w.Key("reps");
  w.UInt(reps);
  w.Key("warmup");
  w.UInt(warmup);
  w.EndObject();
  w.Key("serial");
  w.BeginObject();
  w.Key("requests_per_second");
  w.Double(res.serial_rps);
  w.Key("p50_latency_us");
  w.Double(res.serial_p50_us);
  w.Key("p99_latency_us");
  w.Double(res.serial_p99_us);
  w.EndObject();
  w.Key("pooled");
  w.BeginObject();
  w.Key("requests_per_second");
  w.Double(res.pooled_rps);
  w.Key("p50_latency_us");
  w.Double(res.pooled_p50_us);
  w.Key("p99_latency_us");
  w.Double(res.pooled_p99_us);
  w.EndObject();
  w.Key("speedup");
  w.Double(res.speedup);
  w.Key("pingpong");
  w.BeginObject();
  w.Key("serial_requests_per_second");
  w.Double(res.pingpong_serial_rps);
  w.Key("pooled_requests_per_second");
  w.Double(res.pingpong_pooled_rps);
  w.Key("speedup");
  w.Double(res.pingpong_pooled_rps /
           std::max(res.pingpong_serial_rps, 1e-12));
  w.EndObject();
  w.Key("lists_identical");
  w.Bool(res.lists_identical);
  w.EndObject();
  return w.str();
}

int Main(int argc, char** argv) {
  const double scale = FlagDouble(argc, argv, "scale", 1.0);
  const uint32_t k = static_cast<uint32_t>(FlagDouble(argc, argv, "k", 50));
  const uint32_t m = static_cast<uint32_t>(FlagDouble(argc, argv, "m", 50));
  const uint32_t sweeps =
      static_cast<uint32_t>(FlagDouble(argc, argv, "sweeps", 6));
  const uint64_t seed =
      static_cast<uint64_t>(FlagDouble(argc, argv, "seed", 1));
  const uint32_t reps =
      static_cast<uint32_t>(FlagDouble(argc, argv, "reps", 3));
  const uint32_t warmup =
      static_cast<uint32_t>(FlagDouble(argc, argv, "warmup", 1));

  LoadGenOptions load;
  load.clients = static_cast<uint32_t>(FlagDouble(argc, argv, "clients", 8));
  load.requests_per_client =
      static_cast<uint64_t>(FlagDouble(argc, argv, "requests", 500));
  load.pipeline =
      static_cast<uint32_t>(FlagDouble(argc, argv, "pipeline", 16));
  const size_t workers =
      static_cast<size_t>(FlagDouble(argc, argv, "workers", 0));
  load.m = m;

  const CsrMatrix r = TwoBlockWorkload(scale, seed);
  load.num_users = r.num_rows();
  std::printf(
      "daemon_hot: %u users x %u items, nnz=%zu, K=%u, top-%u — %u clients "
      "x %llu requests, pipeline %u, %u reps (+%u warmup)\n",
      r.num_rows(), r.num_cols(), r.nnz(), k, m, load.clients,
      static_cast<unsigned long long>(load.requests_per_client),
      load.pipeline, reps, warmup);

  OcularConfig config;
  config.k = k;
  config.lambda = 1.0;
  config.max_sweeps = sweeps;
  config.seed = seed + 1;
  OcularRecommender rec(config);
  {
    Stopwatch watch;
    OCULAR_CHECK(rec.Fit(r).ok());
    std::printf("  trained %u sweeps in %.2f s\n",
                static_cast<unsigned>(rec.trace().size()),
                watch.ElapsedSeconds());
  }

  // The deployable artifact + registry, exactly as ocular_served runs it.
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string model_path =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
      "/ocular_bench_daemon.oclr";
  OCULAR_CHECK(SaveModelBinary(rec.model(), config, model_path).ok());
  ModelRegistry registry;
  {
    auto train = std::make_shared<const CsrMatrix>(r);
    OCULAR_CHECK(registry.Load("default", model_path, train).ok());
  }

  // Offline oracle on the same model + exclusions (the bit-identical
  // contract the daemon must uphold from every worker).
  BatchOptions batch;
  batch.m = m;
  batch.skip_cold_users = false;
  const auto oracle = RecommendForAllUsers(rec, r, batch).value();

  RequestServer::Options server_options;
  server_options.serve.m = m;
  server_options.num_workers = workers;

  DaemonBenchResult res;
  res.requests_per_run = static_cast<uint64_t>(load.clients) *
                         load.requests_per_client;

  // ------------------------------------------------ pooled (PR 5) side
  size_t resolved_workers = 0;
  {
    RequestServer server(&registry, server_options);
    resolved_workers = server.num_workers();
    // warmup + reps pipelined passes, 1 validated pass, 2 ping-pong
    // passes (1 warmup + 1 measured).
    const uint64_t total_connections =
        static_cast<uint64_t>(warmup + reps + 3) * load.clients;
    std::thread serve_thread([&server, total_connections] {
      OCULAR_CHECK(server.RunTcpLoop(0, total_connections).ok());
    });
    uint16_t port = 0;
    for (int ms = 0; ms < 10000 && (port = server.bound_port()) == 0; ++ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    OCULAR_CHECK(port != 0);

    // Validated pass first: every reply checked against the oracle.
    std::mutex mismatch_mu;
    LoadGenOptions validate = load;
    validate.port = port;
    validate.on_reply = [&](uint32_t user, const std::string& line) {
      const std::string err = CheckReply(oracle.recommendations, user, line);
      if (!err.empty()) {
        std::lock_guard<std::mutex> lock(mismatch_mu);
        ++res.mismatches;
        if (res.first_mismatch.empty()) res.first_mismatch = err;
      }
    };
    {
      auto validated = RunLoadGen(validate);
      OCULAR_CHECK(validated.ok());
      res.lists_identical =
          res.mismatches == 0 && validated->error_replies == 0;
    }

    double rps_sum = 0.0;
    double p50_sum = 0.0;
    double p99_sum = 0.0;
    for (uint32_t run = 0; run < warmup + reps && res.lists_identical;
         ++run) {
      const LoadGenResult pass = RunOnePass(port, load);
      if (run >= warmup) {
        rps_sum += pass.requests_per_second;
        p50_sum += pass.p50_latency_us;
        p99_sum += pass.p99_latency_us;
      }
    }
    if (res.lists_identical) {
      // Like rps, latency percentiles are averaged over the measured
      // reps so one noisy pass cannot skew the published record.
      res.pooled_rps = rps_sum / reps;
      res.pooled_p50_us = p50_sum / reps;
      res.pooled_p99_us = p99_sum / reps;
      LoadGenOptions pingpong = load;
      pingpong.pipeline = 1;
      (void)RunOnePass(port, pingpong);  // warmup
      res.pingpong_pooled_rps = RunOnePass(port, pingpong).requests_per_second;
    } else {
      // Unblock the accept loop if validation failed early: drain the
      // remaining connection budget with empty connects.
      for (uint64_t c = 0; c < static_cast<uint64_t>(warmup + reps + 2) *
                                   load.clients;
           ++c) {
        LoadGenOptions drain = load;
        drain.port = port;
        drain.clients = 1;
        drain.requests_per_client = 1;
        drain.pipeline = 1;
        (void)RunLoadGen(drain);
      }
    }
    serve_thread.join();
  }
  if (!res.lists_identical) {
    std::fprintf(stderr,
                 "FAIL: %llu daemon replies differ from the "
                 "RecommendForAllUsers oracle; first: %s\n",
                 static_cast<unsigned long long>(res.mismatches),
                 res.first_mismatch.c_str());
    std::remove(model_path.c_str());
    return 1;
  }

  // ------------------------------------------- serial (PR 4) baseline
  {
    RequestServer legacy_server(&registry, server_options);
    const uint64_t total_connections =
        static_cast<uint64_t>(warmup + reps + 2) * load.clients;
    std::atomic<uint16_t> port_slot{0};
    std::thread serial_thread(LegacySerialTcpLoop, &legacy_server,
                              total_connections, &port_slot);
    uint16_t port = 0;
    while ((port = port_slot.load(std::memory_order_acquire)) == 0) {
      std::this_thread::yield();
    }
    double rps_sum = 0.0;
    double p50_sum = 0.0;
    double p99_sum = 0.0;
    for (uint32_t run = 0; run < warmup + reps; ++run) {
      const LoadGenResult pass = RunOnePass(port, load);
      if (run >= warmup) {
        rps_sum += pass.requests_per_second;
        p50_sum += pass.p50_latency_us;
        p99_sum += pass.p99_latency_us;
      }
    }
    res.serial_p50_us = p50_sum / reps;
    res.serial_p99_us = p99_sum / reps;
    {
      LoadGenOptions pingpong = load;
      pingpong.pipeline = 1;
      (void)RunOnePass(port, pingpong);  // warmup
      res.pingpong_serial_rps = RunOnePass(port, pingpong).requests_per_second;
    }
    serial_thread.join();
    res.serial_rps = rps_sum / reps;
  }
  std::remove(model_path.c_str());

  res.speedup = res.pooled_rps / std::max(res.serial_rps, 1e-12);

  std::printf("  serial   : %10.0f req/s  (one connection at a time, "
              "write per reply)  p50 %.0f us  p99 %.0f us\n",
              res.serial_rps, res.serial_p50_us, res.serial_p99_us);
  std::printf("  pooled   : %10.0f req/s  (%zu workers, pipelined batched "
              "replies)          p50 %.0f us  p99 %.0f us\n",
              res.pooled_rps, resolved_workers, res.pooled_p50_us,
              res.pooled_p99_us);
  std::printf("  speedup  : %10.2fx         (identical lists vs oracle)\n",
              res.speedup);
  std::printf("  pingpong : %10.0f vs %.0f req/s serial (pipeline=1 "
              "reference, %.2fx)\n",
              res.pingpong_pooled_rps, res.pingpong_serial_rps,
              res.pingpong_pooled_rps /
                  std::max(res.pingpong_serial_rps, 1e-12));

  if (FlagBool(argc, argv, "json")) {
    const std::string out_path =
        FlagString(argc, argv, "out", "BENCH_daemon.json");
    const std::string json =
        ToJson(res, r, k, m, scale, load, resolved_workers, reps, warmup);
    if (!WriteTextFile(out_path, json + "\n")) return 1;
    std::printf("  wrote %s\n", out_path.c_str());
  }

  const double min_speedup = FlagDouble(argc, argv, "min-speedup", 0.0);
  if (min_speedup > 0.0 && res.speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below floor %.2fx\n",
                 res.speedup, min_speedup);
    return 2;
  }

  const std::string baseline_path = FlagString(argc, argv, "baseline", "");
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    std::stringstream buf;
    buf << in.rdbuf();
    double baseline_speedup = 0.0;
    if (!in || !FindJsonNumber(buf.str(), "speedup", &baseline_speedup)) {
      std::fprintf(stderr, "FAIL: cannot read speedup from baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    // The ratio only transfers between runs of the same workload AND the
    // same worker/client/pipeline shape — refuse to gate otherwise.
    // (Unlike the train/serve benches, this ratio also grows with core
    // count; a baseline recorded on fewer cores is a conservative floor.)
    double base_scale = 0.0, base_k = 0.0, base_m = 0.0, base_nnz = 0.0;
    double base_clients = 0.0, base_pipeline = 0.0, base_workers = 0.0;
    if (!FindJsonNumber(buf.str(), "scale", &base_scale) ||
        !FindJsonNumber(buf.str(), "k", &base_k) ||
        !FindJsonNumber(buf.str(), "m", &base_m) ||
        !FindJsonNumber(buf.str(), "nnz", &base_nnz) ||
        !FindJsonNumber(buf.str(), "clients", &base_clients) ||
        !FindJsonNumber(buf.str(), "pipeline", &base_pipeline) ||
        !FindJsonNumber(buf.str(), "workers", &base_workers) ||
        std::abs(base_scale - scale) > 1e-12 ||
        static_cast<uint32_t>(base_k) != k ||
        static_cast<uint32_t>(base_m) != m ||
        static_cast<size_t>(base_nnz) != r.nnz() ||
        static_cast<uint32_t>(base_clients) != load.clients ||
        static_cast<uint32_t>(base_pipeline) != load.pipeline ||
        static_cast<size_t>(base_workers) != resolved_workers) {
      std::fprintf(stderr,
                   "FAIL: baseline %s records a different workload/shape "
                   "(scale=%g k=%g m=%g nnz=%.0f clients=%g pipeline=%g "
                   "workers=%g vs scale=%g k=%u m=%u nnz=%zu clients=%u "
                   "pipeline=%u workers=%zu) — regenerate it with the "
                   "current bench flags\n",
                   baseline_path.c_str(), base_scale, base_k, base_m,
                   base_nnz, base_clients, base_pipeline, base_workers,
                   scale, k, m, r.nnz(), load.clients, load.pipeline,
                   resolved_workers);
      return 2;
    }
    // Wider margin than the train/serve gates (75% vs 25%): this ratio
    // folds in kernel socket behavior (Nagle/delayed-ACK stalls of the
    // legacy per-reply writes) and core count, both of which vary across
    // runners far more than the algorithmic ratios do. A genuine
    // regression — losing pipelining or the batched write — is an order
    // of magnitude, which this still catches; pair with --min-speedup
    // for an absolute floor.
    const double floor = 0.25 * baseline_speedup;
    if (res.speedup < floor) {
      std::fprintf(stderr,
                   "FAIL: speedup %.2fx regressed >75%% vs baseline %.2fx "
                   "(floor %.2fx)\n",
                   res.speedup, baseline_speedup, floor);
      return 2;
    }
    std::printf("  baseline gate ok: %.2fx vs recorded %.2fx (floor %.2fx)\n",
                res.speedup, baseline_speedup, floor);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ocular

int main(int argc, char** argv) { return ocular::bench::Main(argc, argv); }
