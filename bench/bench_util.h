#ifndef OCULAR_BENCH_BENCH_UTIL_H_
#define OCULAR_BENCH_BENCH_UTIL_H_

// Shared helpers for the table/figure reproduction binaries.
//
// Every binary regenerates one table or figure of the ICDE'17 OCuLaR paper
// on a shape-calibrated synthetic stand-in of the paper's dataset (see
// DESIGN.md §2 "Substitutions"), scaled down so it runs on a single core in
// seconds-to-minutes. Pass --scale=<x> to change the dataset scale.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/bpr.h"
#include "baselines/knn.h"
#include "baselines/wals.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/ocular_recommender.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace ocular {
namespace bench {

/// Parses "--flag=value" style doubles from argv, with a default.
inline double FlagDouble(int argc, char** argv, const std::string& name,
                         double def) {
  const std::string prefix = "--" + name + "=";
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (StartsWith(arg, prefix)) {
      auto parsed = ParseDouble(arg.substr(prefix.size()));
      if (parsed.ok()) return parsed.value();
    }
  }
  return def;
}

/// True when "--flag" (or "--flag=true"/"--flag=1") is on the command line.
/// Used for mode switches like --json.
inline bool FlagBool(int argc, char** argv, const std::string& name) {
  const std::string bare = "--" + name;
  const std::string prefix = bare + "=";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == bare || arg == prefix + "true" || arg == prefix + "1") {
      return true;
    }
  }
  return false;
}

/// Parses "--flag=value" strings from argv, with a default.
inline std::string FlagString(int argc, char** argv, const std::string& name,
                              const std::string& def) {
  const std::string prefix = "--" + name + "=";
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (StartsWith(arg, prefix)) return arg.substr(prefix.size());
  }
  return def;
}

/// Writes `content` to `path`; returns false (with a log line) on failure.
/// The --json benches emit their machine-readable records through this.
inline bool WriteTextFile(const std::string& path,
                          const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    OCULAR_LOG(kError) << "cannot open " << path << " for writing";
    return false;
  }
  out << content;
  return out.good();
}

/// Extracts the first numeric value of `"key": <number>` from a JSON text.
/// Good enough for reading back our own BENCH_*.json records (the baseline
/// regression gate); NOT a general JSON parser.
inline bool FindJsonNumber(const std::string& json, const std::string& key,
                           double* value) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  const size_t colon = json.find(':', at + needle.size());
  if (colon == std::string::npos) return false;
  const char* start = json.c_str() + colon + 1;
  char* end = nullptr;
  const double parsed = std::strtod(start, &end);
  if (end == start) return false;
  *value = parsed;
  return true;
}

/// A named recommender candidate (one hyper-parameter setting).
struct Candidate {
  std::string algorithm;
  std::unique_ptr<Recommender> recommender;
};

/// Mean R-OCuLaR weight w_u = |unknowns| / |positives| over users with at
/// least one positive. R-OCuLaR's objective scales the positive terms by
/// ~this factor, so its lambda must scale with it to regularize comparably.
inline double MeanRelativeWeight(const CsrMatrix& interactions) {
  double sum = 0.0;
  uint32_t n = 0;
  for (uint32_t u = 0; u < interactions.num_rows(); ++u) {
    const double deg = interactions.RowDegree(u);
    if (deg > 0) {
      sum += (interactions.num_cols() - deg) / deg;
      ++n;
    }
  }
  return n > 0 ? sum / n : 1.0;
}

/// Builds the contestant roster of Table I / Figure 5: OCuLaR, R-OCuLaR,
/// wALS, BPR, user-based, item-based — each with a small hyper-parameter
/// sweep ("for each technique we test a number of hyper-parameters and
/// report only the best results", Section VII-B.2). `k_hint` scales the
/// latent dimensions to the dataset size; `mean_weight` feeds the
/// R-OCuLaR lambda scaling (MeanRelativeWeight of the training matrix).
inline std::vector<Candidate> MakeRoster(uint32_t k_hint,
                                         double mean_weight = 10.0) {
  std::vector<Candidate> roster;
  for (double lambda : {0.2, 1.0}) {
    for (uint32_t k : {k_hint, k_hint * 2}) {
      OcularConfig c;
      c.k = k;
      c.lambda = lambda;
      c.max_sweeps = 40;
      roster.push_back({"OCuLaR", std::make_unique<OcularRecommender>(c)});
      // R-OCuLaR's w_u weights inflate the positive terms by ~mean_weight;
      // sweep lambdas scaled accordingly.
      for (double boost : {0.3 * mean_weight, mean_weight}) {
        OcularConfig rc = c;
        rc.variant = OcularVariant::kRelative;
        rc.lambda = lambda * boost;
        roster.push_back(
            {"R-OCuLaR", std::make_unique<OcularRecommender>(rc)});
      }
    }
  }
  // wALS: the paper fixes b = 0.01, lambda = 0.01 and sweeps the latent
  // dimension; at our reduced scale the unknown-weight also needs a sweep
  // to stay competitive across densities.
  for (uint32_t k : {k_hint, k_hint * 2}) {
    for (double b : {0.01, 0.1}) {
      WalsConfig w;
      w.k = k;
      w.b = b;
      w.lambda = 0.05;
      w.iterations = 12;
      roster.push_back({"wALS", std::make_unique<WalsRecommender>(w)});
    }
    BprConfig b;
    b.k = k;
    b.epochs = 20;
    b.lambda = 0.01;
    roster.push_back({"BPR", std::make_unique<BprRecommender>(b)});
  }
  for (uint32_t n : {20u, 60u}) {
    KnnConfig kc;
    kc.num_neighbors = n;
    roster.push_back({"user-based", std::make_unique<UserKnnRecommender>(kc)});
    roster.push_back({"item-based", std::make_unique<ItemKnnRecommender>(kc)});
  }
  return roster;
}

/// Best MAP@m and recall@m per algorithm across its candidates, averaged
/// over `num_instances` independent 75/25 splits.
struct AlgoResult {
  std::string algorithm;
  double map = 0.0;
  double recall = 0.0;
};

inline std::vector<AlgoResult> RunComparison(const CsrMatrix& interactions,
                                             uint32_t m, uint32_t k_hint,
                                             int num_instances,
                                             uint64_t seed) {
  // algorithm -> best (map, recall) summed over instances.
  std::vector<std::string> names = {"OCuLaR", "R-OCuLaR",   "wALS",
                                    "BPR",    "user-based", "item-based"};
  std::vector<AlgoResult> totals;
  for (const auto& n : names) totals.push_back({n, 0.0, 0.0});

  for (int inst = 0; inst < num_instances; ++inst) {
    Rng rng(seed + static_cast<uint64_t>(inst) * 7919);
    auto split = SplitInteractions(interactions, 0.75, &rng).value();
    auto roster = MakeRoster(k_hint, MeanRelativeWeight(split.train));
    std::vector<AlgoResult> best;
    for (const auto& n : names) best.push_back({n, -1.0, -1.0});
    for (auto& cand : roster) {
      Status st = cand.recommender->Fit(split.train);
      if (!st.ok()) {
        OCULAR_LOG(kWarning) << cand.algorithm << ": " << st.ToString();
        continue;
      }
      auto metrics =
          EvaluateRankingAtM(*cand.recommender, split.train, split.test, m)
              .value();
      for (auto& b : best) {
        if (b.algorithm == cand.algorithm && metrics.map > b.map) {
          b.map = metrics.map;
          b.recall = metrics.recall;
        }
      }
    }
    for (size_t a = 0; a < names.size(); ++a) {
      totals[a].map += best[a].map;
      totals[a].recall += best[a].recall;
    }
  }
  for (auto& t : totals) {
    t.map /= num_instances;
    t.recall /= num_instances;
  }
  return totals;
}

}  // namespace bench
}  // namespace ocular

#endif  // OCULAR_BENCH_BENCH_UTIL_H_
