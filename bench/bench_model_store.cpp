// bench_model_store — cold-open and steady-state latency of the binary v2
// model path against the v1 text path.
//
//   ./bench_model_store [--scale=1] [--k=50] [--reps=200] [--opens=20]
//                       [--json] [--out=BENCH_store.json]
//
// Measures, on one trained OCuLaR model written in both formats:
//   cold open   — v1 LoadModel (full parse + copy) vs v2 ModelStore::Open
//                 with and without checksum verification (mmap, O(header)),
//   steady state— per-request ServeTopM latency through the mmapped
//                 StoreRecommender vs the in-memory OcularModelRecommender,
//                 with an identical-ranking cross-check.
//
// The open-time ratio is the headline: it is what bounds how fast a
// serving daemon can hot-reload or cold-start a large catalog model.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/model_io.h"
#include "core/model_store.h"
#include "serving/score_engine.h"
#include "serving/store_recommender.h"

namespace ocular {
namespace bench {
namespace {

double MedianSeconds(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples.empty() ? 0.0 : samples[samples.size() / 2];
}

int Main(int argc, char** argv) {
  const double scale = FlagDouble(argc, argv, "scale", 1.0);
  const uint32_t k = static_cast<uint32_t>(FlagDouble(argc, argv, "k", 50));
  const int reps = static_cast<int>(FlagDouble(argc, argv, "reps", 200));
  const int opens = static_cast<int>(FlagDouble(argc, argv, "opens", 20));
  const bool json = FlagBool(argc, argv, "json");
  const std::string out_path =
      FlagString(argc, argv, "out", "BENCH_store.json");

  // One trained model at the bench's standard two-block scale.
  const uint32_t users = static_cast<uint32_t>(1200 * scale);
  const uint32_t items = static_cast<uint32_t>(800 * scale);
  Rng rng(1);
  CooBuilder coo;
  for (uint32_t u = 0; u < users; ++u) {
    const uint32_t lo = (u < users / 2) ? 0 : items / 2;
    const uint32_t hi = (u < users / 2) ? items / 2 : items;
    for (uint32_t i = lo; i < hi; ++i) {
      if (rng.Uniform() < 0.7) coo.Add(u, i);
    }
  }
  const CsrMatrix train =
      CsrMatrix::FromCoo(coo.Finalize(users, items).value());
  OcularConfig cfg;
  cfg.k = k;
  cfg.lambda = 1.0;
  cfg.max_sweeps = 5;
  OcularRecommender rec(cfg);
  if (!rec.Fit(train).ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  const std::string text_path = "/tmp/bench_store_model.txt";
  const std::string bin_path = "/tmp/bench_store_model.oclr";
  if (!SaveModel(rec.model(), cfg, text_path).ok() ||
      !SaveModelBinary(rec.model(), cfg, bin_path).ok()) {
    std::fprintf(stderr, "save failed\n");
    return 1;
  }

  // ---- cold opens (medians over `opens` runs; page cache warm for all,
  // which is the hot-reload scenario).
  std::vector<double> text_open, bin_open_verify, bin_open_trusting;
  for (int r = 0; r < opens; ++r) {
    {
      Stopwatch t;
      auto loaded = LoadModel(text_path);
      if (!loaded.ok()) return 1;
      text_open.push_back(t.ElapsedSeconds());
    }
    {
      Stopwatch t;
      auto store = ModelStore::Open(bin_path);
      if (!store.ok()) return 1;
      bin_open_verify.push_back(t.ElapsedSeconds());
    }
    {
      ModelStoreOptions trusting;
      trusting.verify_checksums = false;
      Stopwatch t;
      auto store = ModelStore::Open(bin_path, trusting);
      if (!store.ok()) return 1;
      bin_open_trusting.push_back(t.ElapsedSeconds());
    }
  }
  const double text_s = MedianSeconds(text_open);
  const double verify_s = MedianSeconds(bin_open_verify);
  const double trusting_s = MedianSeconds(bin_open_trusting);

  // ---- steady-state serving: mmapped vs in-memory, identical rankings.
  auto store = ModelStore::Open(bin_path).value();
  StoreRecommender store_rec(store);
  OcularModelRecommender memory_rec(rec.model());
  ServeOptions serve;
  serve.m = 50;
  ServeWorkspace ws_store, ws_memory;
  ws_store.Reserve(serve.m, serve.block_items);
  ws_memory.Reserve(serve.m, serve.block_items);

  size_t mismatches = 0;
  for (uint32_t u = 0; u < std::min<uint32_t>(users, 200); ++u) {
    auto a = ServeTopM(store_rec, u, train.Row(u), serve, &ws_store);
    auto b = ServeTopM(memory_rec, u, train.Row(u), serve, &ws_memory);
    if (a.size() != b.size() ||
        !std::equal(a.begin(), a.end(), b.begin())) {
      ++mismatches;
    }
  }

  Stopwatch t_store;
  for (int r = 0; r < reps; ++r) {
    const uint32_t u = static_cast<uint32_t>(r) % users;
    (void)ServeTopM(store_rec, u, train.Row(u), serve, &ws_store);
  }
  const double store_us = t_store.ElapsedSeconds() * 1e6 / reps;
  Stopwatch t_memory;
  for (int r = 0; r < reps; ++r) {
    const uint32_t u = static_cast<uint32_t>(r) % users;
    (void)ServeTopM(memory_rec, u, train.Row(u), serve, &ws_memory);
  }
  const double memory_us = t_memory.ElapsedSeconds() * 1e6 / reps;

  std::printf("model: %u x %u, K=%u (%zu factor bytes)\n", users, items, k,
              rec.model().MemoryBytes());
  std::printf("cold open:   v1 text parse %9.3f ms\n", text_s * 1e3);
  std::printf("             v2 mmap+verify %8.3f ms   (%.0fx)\n",
              verify_s * 1e3, text_s / verify_s);
  std::printf("             v2 mmap only  %9.3f ms   (%.0fx)\n",
              trusting_s * 1e3, text_s / trusting_s);
  std::printf("serve top-%u: mmapped %7.1f us/req, in-memory %7.1f us/req\n",
              serve.m, store_us, memory_us);
  std::printf("ranking cross-check: %zu mismatching users (expect 0)\n",
              mismatches);
  if (mismatches != 0) return 1;

  if (json) {
    std::ostringstream record;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"bench\":\"model_store\",\"users\":%u,\"items\":%u,"
                  "\"k\":%u,", users, items, k);
    record << buf;
    std::snprintf(
        buf, sizeof(buf),
        "\"open_text_ms\":%.6f,\"open_mmap_verify_ms\":%.6f,"
        "\"open_mmap_ms\":%.6f,\"open_speedup_verify\":%.2f,"
        "\"open_speedup\":%.2f,",
        text_s * 1e3, verify_s * 1e3, trusting_s * 1e3, text_s / verify_s,
        text_s / trusting_s);
    record << buf;
    std::snprintf(buf, sizeof(buf),
                  "\"serve_store_us\":%.3f,\"serve_memory_us\":%.3f,"
                  "\"ranking_mismatches\":%zu}",
                  store_us, memory_us, mismatches);
    record << buf;
    if (!WriteTextFile(out_path, record.str() + "\n")) return 1;
    std::printf("wrote %s\n", out_path.c_str());
  }
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ocular

int main(int argc, char** argv) { return ocular::bench::Main(argc, argv); }
