// Hot-path serving benchmark: all-users top-M generation (the paper's
// Section VIII bulk regeneration job), legacy per-pair path vs the blocked
// scoring engine, on a trained OCuLaR model over the synthetic two-block
// workload at K=50.
//
//   bench_serve_hot [--scale=1.0] [--k=50] [--m=50] [--reps=3] [--warmup=1]
//                   [--sweeps=6] [--seed=1] [--json] [--out=BENCH_serve.json]
//                   [--min-speedup=X] [--baseline=path/to/BENCH.json]
//                   [--candidate-threshold=0.6] [--candidate-relative=0.5]
//
// The legacy side is a faithful reproduction of the pre-refactor bulk
// path: per user, a freshly heap-allocated score vector filled through the
// virtual per-pair Score() (a serial-dependency K-dot plus expm1 per
// call), ranked with TopM, min_score applied as a post-filter. The engine
// side is RecommendForAllUsers (serial — the speedup is algorithmic, not
// thread count): tiled user-row x Vᵀ-block products, reusable per-worker
// ServeWorkspace, threshold-pruned heap selection.
//
// Both paths must produce identical ranked lists (item-exact, scores to
// 1e-12) — the bench aborts otherwise. Candidate mode (co-cluster pruning)
// is timed and its exact-vs-candidate overlap reported for information; it
// is approximate and takes no part in the speedup gate. Membership uses
// the relative row-max rule by default (--candidate-relative; the absolute
// --candidate-threshold floor alone collapses at K=50 — overlap 0.25).
//
// --json writes a machine-readable record (see README "Performance") to
// --out. --min-speedup fails (exit 2) below the floor; --baseline fails
// (exit 2) on a >25% regression against the recorded speedup, after
// checking the baseline records the same workload.

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/timer.h"
#include "core/ocular_recommender.h"
#include "serving/batch.h"
#include "serving/score_engine.h"
#include "sparse/coo.h"
#include "sparse/csr.h"

namespace ocular {
namespace bench {
namespace {

// ----------------------------------------------------------- workload

/// Two disjoint dense user-item blocks with random holes (the same
/// generator as bench_train_hot): the bulk-serving cost is dominated by
/// the n_users x n_items x K scoring sweep, which is what this measures.
CsrMatrix TwoBlockWorkload(double scale, uint64_t seed) {
  const auto dim = [scale](uint32_t base) {
    return std::max(8u, static_cast<uint32_t>(base * scale));
  };
  const uint32_t users_per_block = dim(600);
  const uint32_t items_per_block = dim(400);
  const double fill = 0.7;
  Rng rng(seed);
  CooBuilder coo;
  for (uint32_t b = 0; b < 2; ++b) {
    const uint32_t u0 = b * users_per_block;
    const uint32_t i0 = b * items_per_block;
    for (uint32_t u = 0; u < users_per_block; ++u) {
      for (uint32_t i = 0; i < items_per_block; ++i) {
        if (rng.Uniform(0.0, 1.0) < fill) coo.Add(u0 + u, i0 + i);
      }
    }
  }
  return CsrMatrix::FromCoo(
      coo.Finalize(2 * users_per_block, 2 * items_per_block).value());
}

// -------------------------------------------------------- legacy path
// Faithful reproduction of the pre-engine bulk loop (the before side of
// the before/after table): per user, a fresh heap-allocated score vector
// filled through the virtual per-pair Score, the pre-refactor TopM (heap
// insert attempted for every non-excluded item, no selection bar), and
// min_score applied as a post-ranking filter.

std::vector<ScoredItem> LegacyTopM(const std::vector<double>& scores,
                                   uint32_t m,
                                   std::span<const uint32_t> exclude_sorted) {
  std::vector<ScoredItem> heap;  // min-heap of the current best m
  heap.reserve(m + 1);
  auto worse = [](const ScoredItem& a, const ScoredItem& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.item < b.item;
  };
  size_t ex = 0;
  for (uint32_t i = 0; i < scores.size(); ++i) {
    while (ex < exclude_sorted.size() && exclude_sorted[ex] < i) ++ex;
    if (ex < exclude_sorted.size() && exclude_sorted[ex] == i) continue;
    ScoredItem cand{i, scores[i]};
    if (heap.size() < m) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), worse);
    } else if (!heap.empty() && worse(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), worse);
  return heap;
}

std::vector<std::vector<ScoredItem>> LegacyRecommendAll(
    const Recommender& rec, const CsrMatrix& train, uint32_t m,
    double min_score) {
  std::vector<std::vector<ScoredItem>> out(rec.num_users());
  for (uint32_t u = 0; u < rec.num_users(); ++u) {
    if (train.RowDegree(u) == 0) continue;
    std::vector<double> scores(rec.num_items());
    for (uint32_t i = 0; i < scores.size(); ++i) scores[i] = rec.Score(u, i);
    auto ranked = LegacyTopM(scores, m, train.Row(u));
    if (min_score > 0.0) {
      size_t keep = 0;
      while (keep < ranked.size() && ranked[keep].score >= min_score) ++keep;
      ranked.resize(keep);
    }
    out[u] = std::move(ranked);
  }
  return out;
}

// ------------------------------------------------------------ benchmark

struct ServeBenchResult {
  double legacy_seconds_per_pass = 0.0;
  double engine_seconds_per_pass = 0.0;
  double speedup = 0.0;
  double candidate_seconds_per_pass = 0.0;
  double candidate_overlap = 0.0;
  double max_score_abs_err = 0.0;
  bool lists_identical = false;
  uint32_t reps = 0;
  uint32_t warmup = 0;
};

/// Item-exact list equality with a 1e-12 score tolerance; records the
/// worst score deviation.
bool SameLists(const std::vector<std::vector<ScoredItem>>& a,
               const BatchRecommendations& b, double* max_abs_err) {
  if (a.size() != b.recommendations.size()) return false;
  for (size_t u = 0; u < a.size(); ++u) {
    const auto& bu = b.recommendations[u];
    if (a[u].size() != bu.size()) return false;
    for (size_t r = 0; r < a[u].size(); ++r) {
      if (a[u][r].item != bu[r].item) return false;
      const double err = std::abs(a[u][r].score - bu[r].score);
      *max_abs_err = std::max(*max_abs_err, err);
      if (err > 1e-12 * std::max(1.0, std::abs(a[u][r].score))) return false;
    }
  }
  return true;
}

ServeBenchResult RunServeBench(const OcularRecommender& rec,
                               const CsrMatrix& r, uint32_t m, uint32_t reps,
                               uint32_t warmup,
                               const CandidateIndexOptions& candidates) {
  BatchOptions opts;
  opts.m = m;
  ServeBenchResult out;
  out.reps = reps;
  out.warmup = warmup;

  // Correctness first: one run of each path, lists must agree.
  {
    const auto legacy = LegacyRecommendAll(rec, r, m, opts.min_score);
    const auto engine = RecommendForAllUsers(rec, r, opts).value();
    out.lists_identical = SameLists(legacy, engine, &out.max_score_abs_err);
    if (!out.lists_identical) return out;
  }

  {
    for (uint32_t w = 0; w < warmup; ++w) LegacyRecommendAll(rec, r, m, 0.0);
    Stopwatch watch;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      LegacyRecommendAll(rec, r, m, 0.0);
    }
    out.legacy_seconds_per_pass = watch.ElapsedSeconds() / reps;
  }
  {
    for (uint32_t w = 0; w < warmup; ++w) {
      (void)RecommendForAllUsers(rec, r, opts).value();
    }
    Stopwatch watch;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      (void)RecommendForAllUsers(rec, r, opts).value();
    }
    out.engine_seconds_per_pass = watch.ElapsedSeconds() / reps;
  }
  out.speedup = out.legacy_seconds_per_pass /
                std::max(out.engine_seconds_per_pass, 1e-12);

  // Candidate mode, for information: pruned serving time + exact overlap.
  // Membership is RELATIVE (entry >= fraction * row max) rather than the
  // old absolute 0.6 floor: with the affinity mass spread over K=50
  // dimensions every entry is small, and the absolute rule dropped most
  // rows out of every co-cluster (overlap@50 was 0.25 on this workload;
  // see CandidateIndexOptions).
  {
    const auto index =
        BuildCoClusterCandidateIndex(rec.model(), candidates).value();
    BatchOptions copts = opts;
    copts.candidates = &index;
    (void)RecommendForAllUsers(rec, r, copts).value();  // warmup
    Stopwatch watch;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      (void)RecommendForAllUsers(rec, r, copts).value();
    }
    out.candidate_seconds_per_pass = watch.ElapsedSeconds() / reps;
    ServeOptions serve;
    serve.m = m;
    auto overlap = CandidateOverlapAtM(rec, r, index, serve);
    out.candidate_overlap = overlap.ok() ? *overlap : 0.0;
  }
  return out;
}

std::string ToJson(const ServeBenchResult& res, const CsrMatrix& r,
                   uint32_t k, uint32_t m, double scale,
                   const CandidateIndexOptions& candidates) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("serve_hot");
  w.Key("workload");
  w.BeginObject();
  w.Key("kind");
  w.String("two_block");
  w.Key("scale");
  w.Double(scale);
  w.Key("users");
  w.UInt(r.num_rows());
  w.Key("items");
  w.UInt(r.num_cols());
  w.Key("nnz");
  w.UInt(r.nnz());
  w.Key("k");
  w.UInt(k);
  w.Key("m");
  w.UInt(m);
  w.Key("reps");
  w.UInt(res.reps);
  w.Key("warmup");
  w.UInt(res.warmup);
  w.EndObject();
  w.Key("legacy");
  w.BeginObject();
  w.Key("seconds_per_pass");
  w.Double(res.legacy_seconds_per_pass);
  w.EndObject();
  w.Key("engine");
  w.BeginObject();
  w.Key("seconds_per_pass");
  w.Double(res.engine_seconds_per_pass);
  w.EndObject();
  w.Key("speedup");
  w.Double(res.speedup);
  w.Key("lists_identical");
  w.Bool(res.lists_identical);
  w.Key("max_score_abs_err");
  w.Double(res.max_score_abs_err);
  w.Key("candidate");
  w.BeginObject();
  w.Key("seconds_per_pass");
  w.Double(res.candidate_seconds_per_pass);
  w.Key("overlap");
  w.Double(res.candidate_overlap);
  w.Key("threshold");
  w.Double(candidates.threshold);
  w.Key("relative");
  w.Double(candidates.relative);
  w.EndObject();
  w.EndObject();
  return w.str();
}

int Main(int argc, char** argv) {
  const double scale = FlagDouble(argc, argv, "scale", 1.0);
  const uint32_t k = static_cast<uint32_t>(FlagDouble(argc, argv, "k", 50));
  const uint32_t m = static_cast<uint32_t>(FlagDouble(argc, argv, "m", 50));
  const uint32_t reps =
      static_cast<uint32_t>(FlagDouble(argc, argv, "reps", 3));
  const uint32_t warmup =
      static_cast<uint32_t>(FlagDouble(argc, argv, "warmup", 1));
  const uint32_t sweeps =
      static_cast<uint32_t>(FlagDouble(argc, argv, "sweeps", 6));
  const uint64_t seed =
      static_cast<uint64_t>(FlagDouble(argc, argv, "seed", 1));

  const CsrMatrix r = TwoBlockWorkload(scale, seed);
  std::printf(
      "serve_hot: %u users x %u items, nnz=%zu, K=%u, top-%u, %u reps "
      "(+%u warmup)\n",
      r.num_rows(), r.num_cols(), r.nnz(), k, m, reps, warmup);

  OcularConfig config;
  config.k = k;
  config.lambda = 1.0;
  config.max_sweeps = sweeps;
  config.seed = seed + 1;
  OcularRecommender rec(config);
  {
    Stopwatch watch;
    OCULAR_CHECK(rec.Fit(r).ok());
    std::printf("  trained %u sweeps in %.2f s\n",
                static_cast<unsigned>(rec.trace().size()),
                watch.ElapsedSeconds());
  }

  CandidateIndexOptions candidates;
  candidates.threshold =
      FlagDouble(argc, argv, "candidate-threshold", 0.6);
  candidates.relative = FlagDouble(argc, argv, "candidate-relative", 0.5);

  const ServeBenchResult res =
      RunServeBench(rec, r, m, reps, warmup, candidates);
  if (!res.lists_identical) {
    std::fprintf(stderr,
                 "FAIL: engine ranked lists differ from the per-pair path "
                 "(max |dscore| %.3e)\n",
                 res.max_score_abs_err);
    return 1;
  }

  std::printf("  legacy   : %8.2f ms/pass  (per-pair Score + TopM)\n",
              1e3 * res.legacy_seconds_per_pass);
  std::printf("  engine   : %8.2f ms/pass  (blocked ScoreBlock engine)\n",
              1e3 * res.engine_seconds_per_pass);
  std::printf("  speedup  : %8.2fx          (identical lists, max |ds| %.1e)\n",
              res.speedup, res.max_score_abs_err);
  std::printf("  candidate: %8.2f ms/pass  (co-cluster pruning, overlap "
              "%.3f)\n",
              1e3 * res.candidate_seconds_per_pass, res.candidate_overlap);

  if (FlagBool(argc, argv, "json")) {
    const std::string out_path =
        FlagString(argc, argv, "out", "BENCH_serve.json");
    const std::string json = ToJson(res, r, k, m, scale, candidates);
    if (!WriteTextFile(out_path, json + "\n")) return 1;
    std::printf("  wrote %s\n", out_path.c_str());
  }

  const double min_speedup = FlagDouble(argc, argv, "min-speedup", 0.0);
  if (min_speedup > 0.0 && res.speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below floor %.2fx\n",
                 res.speedup, min_speedup);
    return 2;
  }

  const std::string baseline_path = FlagString(argc, argv, "baseline", "");
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    std::stringstream buf;
    buf << in.rdbuf();
    double baseline_speedup = 0.0;
    if (!in || !FindJsonNumber(buf.str(), "speedup", &baseline_speedup)) {
      std::fprintf(stderr, "FAIL: cannot read speedup from baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    // The ratio only transfers between runs of the SAME workload — refuse
    // to gate against a baseline recorded at a different scale/K/m/nnz.
    double base_scale = 0.0, base_k = 0.0, base_m = 0.0, base_nnz = 0.0;
    if (!FindJsonNumber(buf.str(), "scale", &base_scale) ||
        !FindJsonNumber(buf.str(), "k", &base_k) ||
        !FindJsonNumber(buf.str(), "m", &base_m) ||
        !FindJsonNumber(buf.str(), "nnz", &base_nnz) ||
        std::abs(base_scale - scale) > 1e-12 ||
        static_cast<uint32_t>(base_k) != k ||
        static_cast<uint32_t>(base_m) != m ||
        static_cast<size_t>(base_nnz) != r.nnz()) {
      std::fprintf(stderr,
                   "FAIL: baseline %s records a different workload "
                   "(scale=%g k=%g m=%g nnz=%.0f vs scale=%g k=%u m=%u "
                   "nnz=%zu) — regenerate it with the current bench flags\n",
                   baseline_path.c_str(), base_scale, base_k, base_m,
                   base_nnz, scale, k, m, r.nnz());
      return 2;
    }
    // >25% regression against the checked-in baseline fails the gate. The
    // speedup is a same-machine ratio, so it transfers across runners far
    // better than absolute wall clock.
    const double floor = 0.75 * baseline_speedup;
    if (res.speedup < floor) {
      std::fprintf(stderr,
                   "FAIL: speedup %.2fx regressed >25%% vs baseline %.2fx "
                   "(floor %.2fx)\n",
                   res.speedup, baseline_speedup, floor);
      return 2;
    }
    std::printf("  baseline gate ok: %.2fx vs recorded %.2fx (floor %.2fx)\n",
                res.speedup, baseline_speedup, floor);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ocular

int main(int argc, char** argv) { return ocular::bench::Main(argc, argv); }
