// Tests for the replicated-serving front tier (serving/fleet.h) and the
// shared retry discipline (serving/retry.h): the backoff math under
// hostile retry_after_ms hints (the loadgen overflow regression), the
// half-open health state machine in isolation (table-driven, no
// sockets), rendezvous routing properties, the fleet's own verbs and
// bit-identical forwarding over in-process replicas, the
// no-healthy-replica 503 contract, and fork/exec chaos drills that
// SIGKILL a real ocular_served replica mid-burst — directly and inside
// a daemon.handle kill window — plus a hedged-request drill against a
// replica stalled through the same fault point.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/json.h"
#include "core/ocular_recommender.h"
#include "data/loaders.h"
#include "serving/batch.h"
#include "serving/daemon.h"
#include "serving/fleet.h"
#include "serving/journal.h"
#include "serving/loadgen.h"
#include "serving/net_util.h"
#include "serving/registry.h"
#include "serving/retry.h"
#include "test_util.h"

// The chaos drills fork/exec the real daemon binary; CMake injects its
// path the same way daemon_fault_test gets it.
#ifndef OCULAR_SERVED_PATH
#define OCULAR_SERVED_PATH "ocular_served"
#endif

// fork() + SIGKILL drills and ThreadSanitizer do not mix; the in-process
// tests still run under TSan and carry the concurrency coverage.
#if defined(__SANITIZE_THREAD__)
#define OCULAR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OCULAR_TSAN 1
#endif
#endif

namespace ocular {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// --------------------------------------------------- retry discipline

TEST(RetryTest, ClampBoundsHostileHints) {
  EXPECT_EQ(retry::ClampRetryAfterMs(0), 1u);
  EXPECT_EQ(retry::ClampRetryAfterMs(1), 1u);
  EXPECT_EQ(retry::ClampRetryAfterMs(250), 250u);
  EXPECT_EQ(retry::ClampRetryAfterMs(retry::kMaxRetryAfterHintMs),
            retry::kMaxRetryAfterHintMs);
  EXPECT_EQ(retry::ClampRetryAfterMs(retry::kMaxRetryAfterHintMs + 1),
            retry::kMaxRetryAfterHintMs);
  EXPECT_EQ(retry::ClampRetryAfterMs(uint64_t{1} << 62),
            retry::kMaxRetryAfterHintMs);
}

TEST(RetryTest, BackoffIsDeterministicBoundedAndCapped) {
  // Deterministic per (hint, salt, attempt): a fleet of clients can be
  // replayed, and distinct salts de-lockstep the herd.
  EXPECT_EQ(retry::BackoffMs(50, 1, 2), retry::BackoffMs(50, 1, 2));
  EXPECT_NE(retry::BackoffMs(50, 1, 2), retry::BackoffMs(50, 2, 2));

  // The first attempt waits at least the server's hint.
  EXPECT_GE(retry::BackoffMs(50, 0, 0), 50u);

  // Every attempt is bounded by cap + jitter span regardless of attempt
  // number — the shift saturates instead of wrapping.
  for (uint32_t attempt = 0; attempt < 70; ++attempt) {
    const uint64_t delay = retry::BackoffMs(50, 3, attempt);
    EXPECT_LE(delay, retry::kDefaultBackoffCapMs + 26u) << attempt;
  }
}

TEST(RetryTest, AbsurdHintCannotOverflowTheDelay) {
  // The loadgen regression: a hostile or corrupt retry_after_ms of 2^62
  // used to wrap under `base << attempt` and produce a bogus delay (or a
  // multi-year sleep). The shared discipline clamps the base before the
  // shift, so even the worst case stays near the cap.
  const uint64_t kAbsurd = uint64_t{1} << 62;
  for (uint32_t attempt = 0; attempt < 70; ++attempt) {
    const uint64_t delay = retry::BackoffMs(kAbsurd, 7, attempt);
    EXPECT_LE(delay, retry::kDefaultBackoffCapMs +
                         std::min<uint64_t>(retry::kMaxRetryAfterHintMs,
                                            retry::kDefaultBackoffCapMs) /
                             2 +
                         1)
        << attempt;
    EXPECT_GE(delay, 1u) << attempt;
  }
}

TEST(RetryTest, ParseShedReplyClampsAbsurdWireHints) {
  uint64_t hint = 0;
  ASSERT_TRUE(retry::ParseShedReply(
      R"({"ok":false,"error":"overloaded","code":503,"retry_after_ms":40})",
      &hint));
  EXPECT_EQ(hint, 40u);

  // A hostile server advertising a 10^18 ms backoff gets the cap.
  ASSERT_TRUE(retry::ParseShedReply(
      R"({"ok":false,"code":503,"retry_after_ms":1e18})", &hint));
  EXPECT_EQ(hint, retry::kMaxRetryAfterHintMs);

  // Missing hint: still a shed, with the floor delay.
  ASSERT_TRUE(retry::ParseShedReply(R"({"ok":false,"code":503})", &hint));
  EXPECT_GE(hint, 1u);

  // Not sheds: ok replies, other codes, garbage.
  EXPECT_FALSE(retry::ParseShedReply(R"({"ok":true,"items":[]})", &hint));
  EXPECT_FALSE(retry::ParseShedReply(R"({"ok":false,"code":413})", &hint));
  EXPECT_FALSE(retry::ParseShedReply("not json at all", &hint));
}

// --------------------------------------- health state machine, no sockets

TEST(HealthPolicyTest, TableDrivenTransitions) {
  HealthOptions options;
  options.fail_threshold = 3;
  options.reopen_after_ms = 100;
  options.reopen_cap_ms = 400;

  enum Op { kFail, kOk, kShed, kTryHalfOpen };
  struct Step {
    Op op;
    int64_t now;
    uint64_t arg;  // kShed: retry_after_ms; kTryHalfOpen: expected bool
    ReplicaState want_state;
    bool want_routable;
  };
  struct Scenario {
    const char* name;
    std::vector<Step> steps;
    uint64_t want_ejections;
    uint64_t want_readmissions;
  };
  const Scenario scenarios[] = {
      {"blips below threshold never eject (successes reset the count)",
       {{kFail, 0, 0, ReplicaState::kHealthy, true},
        {kFail, 1, 0, ReplicaState::kHealthy, true},
        {kOk, 2, 0, ReplicaState::kHealthy, true},
        {kFail, 3, 0, ReplicaState::kHealthy, true},
        {kFail, 4, 0, ReplicaState::kHealthy, true}},
       0,
       0},
      {"threshold ejects; reopen gates the half-open probe",
       {{kFail, 0, 0, ReplicaState::kHealthy, true},
        {kFail, 1, 0, ReplicaState::kHealthy, true},
        {kFail, 2, 0, ReplicaState::kEjected, false},
        // Stale events while ejected change nothing.
        {kFail, 3, 0, ReplicaState::kEjected, false},
        {kOk, 4, 0, ReplicaState::kEjected, false},
        // Too early for the probe; due at 2 + 100.
        {kTryHalfOpen, 50, false, ReplicaState::kEjected, false},
        {kTryHalfOpen, 102, true, ReplicaState::kHalfOpen, false},
        {kOk, 103, 0, ReplicaState::kHealthy, true}},
       1,
       1},
      {"failed half-open probes re-eject without a new ejection, "
       "doubling the reopen delay up to the cap",
       {{kFail, 0, 0, ReplicaState::kHealthy, true},
        {kFail, 0, 0, ReplicaState::kHealthy, true},
        {kFail, 0, 0, ReplicaState::kEjected, false},  // reopen at 100
        {kTryHalfOpen, 100, true, ReplicaState::kHalfOpen, false},
        {kFail, 100, 0, ReplicaState::kEjected, false},  // reopen at 300
        {kTryHalfOpen, 250, false, ReplicaState::kEjected, false},
        {kTryHalfOpen, 300, true, ReplicaState::kHalfOpen, false},
        {kFail, 300, 0, ReplicaState::kEjected, false},  // capped: at 700
        {kTryHalfOpen, 650, false, ReplicaState::kEjected, false},
        {kTryHalfOpen, 700, true, ReplicaState::kHalfOpen, false},
        {kOk, 701, 0, ReplicaState::kHealthy, true}},
       1,
       1},
      {"flapping: each full outage counts one ejection and one readmission",
       {{kFail, 0, 0, ReplicaState::kHealthy, true},
        {kFail, 0, 0, ReplicaState::kHealthy, true},
        {kFail, 0, 0, ReplicaState::kEjected, false},
        {kTryHalfOpen, 100, true, ReplicaState::kHalfOpen, false},
        {kOk, 101, 0, ReplicaState::kHealthy, true},
        // Second outage: the backoff starts over at the base delay.
        {kFail, 200, 0, ReplicaState::kHealthy, true},
        {kFail, 200, 0, ReplicaState::kHealthy, true},
        {kFail, 200, 0, ReplicaState::kEjected, false},
        {kTryHalfOpen, 299, false, ReplicaState::kEjected, false},
        {kTryHalfOpen, 300, true, ReplicaState::kHalfOpen, false},
        {kOk, 301, 0, ReplicaState::kHealthy, true}},
       2,
       2},
      {"a shed is soft: routed around for its window, state untouched",
       {{kShed, 0, 50, ReplicaState::kHealthy, false},
        // A longer window extends, a shorter one never shrinks it.
        {kShed, 10, 100, ReplicaState::kHealthy, false},
        {kShed, 20, 1, ReplicaState::kHealthy, false},
        // Shed windows do not advance the failure count.
        {kFail, 30, 0, ReplicaState::kHealthy, false},
        {kFail, 40, 0, ReplicaState::kHealthy, false}},
       0,
       0},
  };

  for (const Scenario& s : scenarios) {
    SCOPED_TRACE(s.name);
    ReplicaHealth h(options);
    for (size_t i = 0; i < s.steps.size(); ++i) {
      SCOPED_TRACE("step " + std::to_string(i));
      const Step& step = s.steps[i];
      switch (step.op) {
        case kFail:
          h.OnFailure(step.now);
          break;
        case kOk:
          h.OnSuccess(step.now);
          break;
        case kShed:
          h.OnShed(step.now, step.arg);
          break;
        case kTryHalfOpen:
          EXPECT_EQ(h.MaybeHalfOpen(step.now), step.arg != 0);
          break;
      }
      EXPECT_EQ(h.state(), step.want_state);
      EXPECT_EQ(h.Routable(step.now), step.want_routable);
    }
    EXPECT_EQ(h.ejections(), s.want_ejections);
    EXPECT_EQ(h.readmissions(), s.want_readmissions);
  }

  // The soft-shed window ends on its own: routable again at soft_until.
  ReplicaHealth h(options);
  h.OnShed(0, 50);
  EXPECT_FALSE(h.Routable(49));
  EXPECT_TRUE(h.Routable(50));
  // And hostile shed hints are clamped before entering the window.
  h.OnShed(100, uint64_t{1} << 62);
  EXPECT_FALSE(h.Routable(100 + retry::kMaxRetryAfterHintMs - 1));
  EXPECT_TRUE(h.Routable(100 + retry::kMaxRetryAfterHintMs));
}

// ------------------------------------------------- stats snapshot/merge

TEST(FleetStatsTest, SumReplicaTotalsMergesRows) {
  struct Case {
    const char* name;
    std::vector<std::pair<uint64_t, uint64_t>> rows;  // ejections, readmits
    uint64_t want_ejections;
    uint64_t want_readmissions;
  };
  const Case cases[] = {
      {"no replicas", {}, 0, 0},
      {"one quiet replica", {{0, 0}}, 0, 0},
      {"one flapping replica", {{3, 2}}, 3, 2},
      {"totals sum across the fleet", {{1, 1}, {0, 0}, {4, 3}}, 5, 4},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    FleetStatsSnapshot s;
    // Pre-poisoned totals prove the merge recomputes rather than
    // accumulates — calling it twice must not double the counts.
    s.ejections = 99;
    s.readmissions = 99;
    for (const auto& [ej, re] : c.rows) {
      FleetReplicaStats rs;
      rs.ejections = ej;
      rs.readmissions = re;
      s.replicas.push_back(rs);
    }
    SumReplicaTotals(&s);
    EXPECT_EQ(s.ejections, c.want_ejections);
    EXPECT_EQ(s.readmissions, c.want_readmissions);
    SumReplicaTotals(&s);
    EXPECT_EQ(s.ejections, c.want_ejections);
    EXPECT_EQ(s.readmissions, c.want_readmissions);
  }
}

TEST(FleetStatsTest, RenderCarriesEveryCounterAndReplicaRow) {
  // Socket-free coverage of the `stats` verb's reply shape: build the
  // snapshot by hand, render, parse back, and check field by field — the
  // same merge/render code the live FleetServer::FleetStatsReply() runs.
  FleetStatsSnapshot s;
  s.requests_proxied = 1000;
  s.failovers = 7;
  s.hedges_sent = 42;
  s.hedges_won = 11;
  s.no_healthy_503s = 3;
  s.rejected_verbs = 2;
  s.probes_sent = 500;
  s.probe_failures = 9;
  s.connections_shed = 1;
  FleetReplicaStats a;
  a.port = 7001;
  a.state = ReplicaState::kHealthy;
  a.forwards = 600;
  a.failures = 1;
  a.ejections = 0;
  a.readmissions = 0;
  FleetReplicaStats b;
  b.port = 7002;
  b.state = ReplicaState::kEjected;
  b.forwards = 400;
  b.failures = 12;
  b.ejections = 2;
  b.readmissions = 1;
  s.replicas = {a, b};
  SumReplicaTotals(&s);

  auto parsed = JsonValue::Parse(RenderFleetStats(s));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->Find("ok")->boolean());
  EXPECT_TRUE(parsed->Find("fleet")->boolean());
  EXPECT_EQ(parsed->Find("requests_proxied")->number(), 1000.0);
  EXPECT_EQ(parsed->Find("failovers")->number(), 7.0);
  EXPECT_EQ(parsed->Find("hedges_sent")->number(), 42.0);
  EXPECT_EQ(parsed->Find("hedges_won")->number(), 11.0);
  EXPECT_EQ(parsed->Find("no_healthy_503s")->number(), 3.0);
  EXPECT_EQ(parsed->Find("rejected_verbs")->number(), 2.0);
  EXPECT_EQ(parsed->Find("probes_sent")->number(), 500.0);
  EXPECT_EQ(parsed->Find("probe_failures")->number(), 9.0);
  EXPECT_EQ(parsed->Find("connections_shed")->number(), 1.0);
  EXPECT_EQ(parsed->Find("ejections")->number(), 2.0);
  EXPECT_EQ(parsed->Find("readmissions")->number(), 1.0);
  const auto& replicas = parsed->Find("replicas")->array();
  ASSERT_EQ(replicas.size(), 2u);
  EXPECT_EQ(replicas[0].Find("port")->number(), 7001.0);
  EXPECT_EQ(std::string(replicas[0].Find("state")->string()), "healthy");
  EXPECT_EQ(replicas[0].Find("forwards")->number(), 600.0);
  EXPECT_EQ(replicas[1].Find("port")->number(), 7002.0);
  EXPECT_EQ(std::string(replicas[1].Find("state")->string()), "ejected");
  EXPECT_EQ(replicas[1].Find("failures")->number(), 12.0);
  EXPECT_EQ(replicas[1].Find("ejections")->number(), 2.0);
  EXPECT_EQ(replicas[1].Find("readmissions")->number(), 1.0);
}

// ------------------------------------------------- rendezvous routing

TEST(FleetRouteOrderTest, DeterministicPermutationPerKey) {
  for (uint64_t key : {uint64_t{0}, uint64_t{1}, uint64_t{42},
                       uint64_t{1} << 40}) {
    std::vector<uint32_t> a, b;
    FleetRouteOrder(key, 5, &a);
    FleetRouteOrder(key, 5, &b);
    EXPECT_EQ(a, b) << key;
    std::vector<uint32_t> sorted = a;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<uint32_t>{0, 1, 2, 3, 4})) << key;
  }
}

TEST(FleetRouteOrderTest, BalancedAndMinimallyDisruptive) {
  constexpr uint32_t kReplicas = 4;
  constexpr uint64_t kKeys = 4000;
  std::vector<uint32_t> first_counts(kReplicas, 0);
  uint64_t moved = 0;
  for (uint64_t key = 0; key < kKeys; ++key) {
    std::vector<uint32_t> order;
    FleetRouteOrder(key, kReplicas, &order);
    ++first_counts[order[0]];
    // Ejecting replica 2 must only move the keys it owned: every other
    // key's first healthy choice is unchanged (the order is a filter,
    // not a reshuffle).
    if (order[0] == 2) {
      ++moved;
      EXPECT_NE(order[1], 2u);
    }
  }
  for (uint32_t r = 0; r < kReplicas; ++r) {
    EXPECT_GT(first_counts[r], kKeys / kReplicas / 2) << r;
    EXPECT_LT(first_counts[r], kKeys / kReplicas * 2) << r;
  }
  // Roughly 1/kReplicas of the keyspace moves on one ejection.
  EXPECT_GT(moved, kKeys / kReplicas / 2);
  EXPECT_LT(moved, kKeys / kReplicas * 2);
}

// ------------------------------------------- in-process fleet serving

/// Same deterministic fixture the daemon tests use.
struct DaemonFixture {
  CsrMatrix train;
  OcularConfig config;
  OcularModel model;
  std::string model_path;

  static DaemonFixture Make(const std::string& file, uint64_t seed = 11,
                            uint32_t sweeps = 6) {
    DaemonFixture f;
    f.train = test::RandomCsr(50, 30, 400, 11);
    f.config.k = 5;
    f.config.lambda = 0.5;
    f.config.max_sweeps = sweeps;
    f.config.seed = seed;
    OcularTrainer trainer(f.config);
    f.model = trainer.Fit(f.train).value().model;
    f.model_path = TempPath(file);
    std::remove(UpdateJournal::PathFor(f.model_path).c_str());
    EXPECT_TRUE(SaveModelBinary(f.model, f.config, f.model_path).ok());
    return f;
  }

  std::shared_ptr<const CsrMatrix> shared_train() const {
    return std::make_shared<const CsrMatrix>(train);
  }

  void Cleanup() const {
    std::remove(model_path.c_str());
    std::remove(UpdateJournal::PathFor(model_path).c_str());
  }
};

/// The offline oracle for `model` under `train` exclusions at top-`m`.
std::vector<std::vector<ScoredItem>> Oracle(const OcularModel& model,
                                            const CsrMatrix& train,
                                            uint32_t m) {
  OcularModelRecommender rec(model);
  BatchOptions batch;
  batch.m = m;
  batch.skip_cold_users = false;
  return RecommendForAllUsers(rec, train, batch).value().recommendations;
}

struct RawClient {
  int fd = -1;
  std::string buffer;

  bool Connect(uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }
  bool Send(const std::string& line) {
    const std::string framed = line + "\n";
    return net::SendAll(fd, framed.data(), framed.size());
  }
  bool ReadLine(std::string* line) { return net::ReadLine(fd, &buffer, line); }
  void Close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
};

/// One in-process ocular_served replica: registry + RequestServer on a
/// kernel-assigned loopback port, its TCP loop on a private thread.
struct InProcessReplica {
  ModelRegistry registry;
  std::unique_ptr<RequestServer> server;
  std::thread thread;
  uint16_t port = 0;

  bool Start(const DaemonFixture& f) {
    if (!registry.Load("default", f.model_path, f.shared_train()).ok()) {
      return false;
    }
    RequestServer::Options options;
    options.num_workers = 2;
    options.io_timeout_ms = 100;
    options.update_journal = false;
    server = std::make_unique<RequestServer>(&registry, options);
    thread = std::thread([this] {
      EXPECT_TRUE(server->RunTcpLoop(0, 0).ok());
    });
    for (int ms = 0; ms < 10000; ++ms) {
      port = server->bound_port();
      if (port != 0) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }

  /// The shutdown latch is process-global: one RequestShutdown can stop
  /// every in-process loop that observes it before anyone consumes it, so
  /// callers must ConsumeShutdownRequest() after the last Drain or the
  /// leftover latch kills the next test's server on arrival.
  void Drain() {
    if (!thread.joinable()) return;
    RequestServer::RequestShutdown();
    thread.join();
  }
};

uint16_t WaitForFleetPort(const FleetServer& fleet) {
  for (int ms = 0; ms < 10000; ++ms) {
    const uint16_t port = fleet.bound_port();
    if (port != 0) return port;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return 0;
}

TEST(FleetServerTest, FrontTierVerbsAndBitIdenticalForwarding) {
  DaemonFixture f = DaemonFixture::Make("fleet_inproc.oclr");
  const auto expect = Oracle(f.model, f.train, 5);

  InProcessReplica replicas[2];
  ASSERT_TRUE(replicas[0].Start(f));
  ASSERT_TRUE(replicas[1].Start(f));

  FleetServer::Options options;
  options.replicas = {replicas[0].port, replicas[1].port};
  options.num_workers = 2;
  options.io_timeout_ms = 2000;
  options.probe_interval_ms = 100;
  FleetServer fleet(options);
  std::thread fleet_thread([&fleet] {
    EXPECT_TRUE(fleet.RunLoop(0, 0).ok());
  });
  const uint16_t port = WaitForFleetPort(fleet);
  ASSERT_NE(port, 0);

  RawClient c;
  ASSERT_TRUE(c.Connect(port));
  std::string line;

  // ping answers for the fleet itself, not a replica.
  ASSERT_TRUE(c.Send(R"({"cmd":"ping"})"));
  ASSERT_TRUE(c.ReadLine(&line));
  auto ping = JsonValue::Parse(line);
  ASSERT_TRUE(ping.ok()) << line;
  EXPECT_TRUE(ping->Find("ok")->boolean());
  ASSERT_NE(ping->Find("fleet"), nullptr);
  EXPECT_TRUE(ping->Find("fleet")->boolean());
  EXPECT_EQ(ping->Find("replicas")->number(), 2.0);
  EXPECT_EQ(ping->Find("healthy")->number(), 2.0);

  // Mutating verbs are refused, not forwarded: routing them to one
  // replica would fork the fleet's models.
  for (const char* verb : {R"({"cmd":"update","adds":[[50,0]]})",
                           R"({"cmd":"reload"})"}) {
    ASSERT_TRUE(c.Send(verb));
    ASSERT_TRUE(c.ReadLine(&line));
    auto reply = JsonValue::Parse(line);
    ASSERT_TRUE(reply.ok()) << line;
    EXPECT_FALSE(reply->Find("ok")->boolean());
    ASSERT_NE(reply->Find("code"), nullptr);
    EXPECT_EQ(reply->Find("code")->number(), 501.0);
  }

  // Every user's recommend through the fleet is bit-identical to the
  // offline oracle — the proxy relays replica bytes verbatim, so the
  // single-daemon serving contract survives the extra hop.
  for (uint32_t u = 0; u < f.train.num_rows(); ++u) {
    ASSERT_TRUE(c.Send(R"({"cmd":"recommend","user":)" + std::to_string(u) +
                       R"(,"m":5})"));
    ASSERT_TRUE(c.ReadLine(&line)) << "u=" << u;
    EXPECT_TRUE(ReplyMatchesRanked(line, expect[u])) << "u=" << u << " " << line;
  }

  // A user-less verb (models) round-robins and still answers.
  ASSERT_TRUE(c.Send(R"({"cmd":"models"})"));
  ASSERT_TRUE(c.ReadLine(&line));
  auto models = JsonValue::Parse(line);
  ASSERT_TRUE(models.ok()) << line;
  EXPECT_TRUE(models->Find("ok")->boolean());
  EXPECT_EQ(models->Find("models")->array().size(), 1u);

  // Garbage is forwarded so the replica's parser owns the error shape.
  ASSERT_TRUE(c.Send("this is not json"));
  ASSERT_TRUE(c.ReadLine(&line));
  auto err = JsonValue::Parse(line);
  ASSERT_TRUE(err.ok()) << line;
  EXPECT_FALSE(err->Find("ok")->boolean());
  ASSERT_NE(err->Find("error"), nullptr);

  // The fleet's stats verb reports the proxy counters.
  ASSERT_TRUE(c.Send(R"({"cmd":"stats"})"));
  ASSERT_TRUE(c.ReadLine(&line));
  auto stats = JsonValue::Parse(line);
  ASSERT_TRUE(stats.ok()) << line;
  EXPECT_TRUE(stats->Find("fleet")->boolean());
  EXPECT_GE(stats->Find("requests_proxied")->number(), 50.0);
  EXPECT_EQ(stats->Find("rejected_verbs")->number(), 2.0);
  EXPECT_EQ(stats->Find("failovers")->number(), 0.0);
  EXPECT_EQ(stats->Find("no_healthy_503s")->number(), 0.0);
  ASSERT_EQ(stats->Find("replicas")->array().size(), 2u);
  double forwards = 0;
  for (const JsonValue& r : stats->Find("replicas")->array()) {
    EXPECT_EQ(r.Find("state")->string(), "healthy");
    forwards += r.Find("forwards")->number();
  }
  EXPECT_GE(forwards, 51.0);  // 50 recommends + models (+ probes)

  // quit ends the connection with a bye.
  ASSERT_TRUE(c.Send(R"({"cmd":"quit"})"));
  ASSERT_TRUE(c.ReadLine(&line));
  auto bye = JsonValue::Parse(line);
  ASSERT_TRUE(bye.ok());
  EXPECT_TRUE(bye->Find("bye")->boolean());
  EXPECT_FALSE(c.ReadLine(&line));
  c.Close();

  const FleetStatsSnapshot snapshot = fleet.Stats();
  EXPECT_EQ(snapshot.ejections, 0u);
  EXPECT_EQ(snapshot.hedges_sent, 0u);

  fleet.Stop();
  fleet_thread.join();
  replicas[0].Drain();
  replicas[1].Drain();
  RequestServer::ConsumeShutdownRequest();
  EXPECT_FALSE(RequestServer::ShutdownRequested());
  f.Cleanup();
}

TEST(FleetServerTest, NoHealthyReplicaAnswers503InsteadOfHanging) {
  // A fleet whose only replica never existed: the first request pays the
  // failed forward and still gets a prompt 503 with a retry hint; once
  // the prober ejects the corpse, requests shed without even trying.
  FleetServer::Options options;
  options.replicas = {1};  // port 1: connect refused immediately
  options.num_workers = 1;
  options.io_timeout_ms = 300;
  options.probe_interval_ms = 50;
  options.retry_after_ms = 70;
  options.health.fail_threshold = 2;
  options.health.reopen_after_ms = 5000;  // stays ejected for the test
  FleetServer fleet(options);
  std::thread fleet_thread([&fleet] {
    EXPECT_TRUE(fleet.RunLoop(0, 0).ok());
  });
  const uint16_t port = WaitForFleetPort(fleet);
  ASSERT_NE(port, 0);

  const auto start = std::chrono::steady_clock::now();
  RawClient c;
  ASSERT_TRUE(c.Connect(port));
  std::string line;
  ASSERT_TRUE(c.Send(R"({"cmd":"recommend","user":3,"m":4})"));
  ASSERT_TRUE(c.ReadLine(&line)) << "the fleet must answer, not hang";
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 2000) << "503 must be prompt";
  auto reply = JsonValue::Parse(line);
  ASSERT_TRUE(reply.ok()) << line;
  EXPECT_FALSE(reply->Find("ok")->boolean());
  ASSERT_NE(reply->Find("code"), nullptr);
  EXPECT_EQ(reply->Find("code")->number(), 503.0);
  ASSERT_NE(reply->Find("retry_after_ms"), nullptr);
  EXPECT_GE(reply->Find("retry_after_ms")->number(), 1.0);
  EXPECT_LE(reply->Find("retry_after_ms")->number(),
            static_cast<double>(retry::kMaxRetryAfterHintMs));

  // The prober ejects the dead replica (exactly once), and ejected-state
  // requests shed without a forward attempt.
  FleetStatsSnapshot snapshot;
  for (int waited = 0; waited < 10000; waited += 20) {
    snapshot = fleet.Stats();
    if (snapshot.replicas[0].state == ReplicaState::kEjected) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(snapshot.replicas[0].state, ReplicaState::kEjected);
  EXPECT_EQ(snapshot.replicas[0].ejections, 1u);

  ASSERT_TRUE(c.Send(R"({"cmd":"recommend","user":4,"m":4})"));
  ASSERT_TRUE(c.ReadLine(&line));
  reply = JsonValue::Parse(line);
  ASSERT_TRUE(reply.ok()) << line;
  EXPECT_EQ(reply->Find("code")->number(), 503.0);
  c.Close();

  EXPECT_GE(fleet.Stats().no_healthy_503s, 2u);
  fleet.Stop();
  fleet_thread.join();
}

// ------------------------------------------------ fork/exec chaos drills

#ifndef OCULAR_TSAN

/// A free loopback port: bind 0, read the assignment, close.
uint16_t FreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof(addr);
  uint16_t port = 0;
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) ==
      0) {
    port = ntohs(addr.sin_port);
  }
  ::close(fd);
  return port;
}

/// The real daemon binary as a child process, stderr captured, faults
/// injected through OCULAR_FAULTS.
struct ServedProcess {
  pid_t pid = -1;
  std::string stderr_path;

  ServedProcess() = default;
  // The destructor SIGKILLs: a copied temporary (e.g. through
  // make_unique) would kill the replica it just started, so this type
  // is move-only and a moved-from instance owns nothing.
  ServedProcess(const ServedProcess&) = delete;
  ServedProcess& operator=(const ServedProcess&) = delete;
  ServedProcess(ServedProcess&& other) noexcept
      : pid(other.pid), stderr_path(std::move(other.stderr_path)) {
    other.pid = -1;
  }
  ServedProcess& operator=(ServedProcess&& other) noexcept {
    if (this != &other) {
      KillHard();
      pid = other.pid;
      stderr_path = std::move(other.stderr_path);
      other.pid = -1;
    }
    return *this;
  }

  static ServedProcess Start(const std::vector<std::string>& args,
                             const std::string& faults,
                             const std::string& stderr_path) {
    ServedProcess p;
    p.stderr_path = stderr_path;
    p.pid = ::fork();
    if (p.pid == 0) {
      if (faults.empty()) {
        ::unsetenv("OCULAR_FAULTS");
      } else {
        ::setenv("OCULAR_FAULTS", faults.c_str(), 1);
      }
      const int err =
          ::open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (err >= 0) {
        ::dup2(err, 2);
        ::close(err);
      }
      const int null = ::open("/dev/null", O_RDONLY);
      if (null >= 0) {
        ::dup2(null, 0);
        ::close(null);
      }
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(OCULAR_SERVED_PATH));
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(OCULAR_SERVED_PATH, argv.data());
      ::_exit(127);
    }
    return p;
  }

  int Wait(int timeout_ms = 30000) {
    for (int waited = 0; waited < timeout_ms; waited += 10) {
      int status = 0;
      const pid_t done = ::waitpid(pid, &status, WNOHANG);
      if (done == pid) {
        pid = -1;
        return status;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return -1;
  }

  void KillHard() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      Wait();
    }
  }
  ~ServedProcess() { KillHard(); }
};

bool WaitForServing(uint16_t port, ServedProcess* served,
                    int timeout_ms = 20000) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    RawClient probe;
    if (probe.Connect(port)) {
      probe.Close();
      return true;
    }
    probe.Close();
    int status = 0;
    if (served->pid > 0 &&
        ::waitpid(served->pid, &status, WNOHANG) == served->pid) {
      served->pid = -1;
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// Writes `train` as the daemon's dataset and returns the loader's view.
CsrMatrix WriteAndReloadDataset(const CsrMatrix& train,
                                const std::string& path) {
  std::ofstream out(path);
  for (auto [u, i] : train.ToPairs()) out << u << '\t' << i << '\n';
  out.close();
  CsvOptions opts;
  opts.delimiter = '\t';
  opts.compact_ids = false;
  auto ds = LoadCsv(path, opts);
  EXPECT_TRUE(ds.ok()) << ds.status().ToString();
  return ds->interactions();
}

std::vector<std::string> ReplicaArgs(const DaemonFixture& f,
                                     const std::string& dataset_path,
                                     uint16_t port) {
  return {
      "--models=default=" + f.model_path,
      "--datasets=default=" + dataset_path,
      "--port=" + std::to_string(port),
      "--io-timeout-ms=100",
      "--journal=0",  // replicas share the artifact; no journal races
      // The epoll core multiplexes every connection on one IO thread:
      // the fleet's pinned keep-alive sockets and the health prober cost
      // no worker while idle, so two workers serve them all — the
      // SIGKILL drill below doubles as the regression test that probes
      // are never starved into false ejections by slim replicas.
      "--workers=2",
  };
}

TEST(FleetChaosTest, SigkillOneReplicaMidBurstIsInvisibleToClients) {
  DaemonFixture f = DaemonFixture::Make("fleet_kill.oclr");
  const std::string dataset_path = TempPath("fleet_kill.tsv");
  const CsrMatrix train = WriteAndReloadDataset(f.train, dataset_path);
  const auto expect = Oracle(f.model, train, 5);

  uint16_t ports[3] = {FreePort(), FreePort(), FreePort()};
  std::unique_ptr<ServedProcess> replicas[3];
  for (int r = 0; r < 3; ++r) {
    ASSERT_NE(ports[r], 0);
    replicas[r] = std::make_unique<ServedProcess>(ServedProcess::Start(
        ReplicaArgs(f, dataset_path, ports[r]), "",
        TempPath("fleet_kill_stderr" + std::to_string(r) + ".log")));
    ASSERT_TRUE(WaitForServing(ports[r], replicas[r].get())) << r;
  }

  FleetServer::Options options;
  options.replicas = {ports[0], ports[1], ports[2]};
  options.num_workers = 4;
  options.io_timeout_ms = 2000;
  options.probe_interval_ms = 100;
  options.health.fail_threshold = 3;
  options.health.reopen_after_ms = 200;
  FleetServer fleet(options);
  std::thread fleet_thread([&fleet] {
    EXPECT_TRUE(fleet.RunLoop(0, 0).ok());
  });
  const uint16_t fleet_port = WaitForFleetPort(fleet);
  ASSERT_NE(fleet_port, 0);

  // 4 pipelined clients; after 100 replies the kill thread SIGKILLs
  // replica 1 mid-burst. Every reply must still arrive, ok, and
  // bit-identical to the offline oracle.
  std::atomic<uint64_t> replies{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<bool> killed{false};
  LoadGenOptions load;
  load.port = fleet_port;
  load.clients = 4;
  load.requests_per_client = 150;
  load.pipeline = 8;
  load.m = 5;
  load.num_users = 50;
  load.reconnect_on_close = true;
  load.on_reply = [&](uint32_t user, const std::string& line) {
    if (!ReplyMatchesRanked(line, expect[user])) {
      mismatches.fetch_add(1, std::memory_order_relaxed);
    }
    if (replies.fetch_add(1, std::memory_order_relaxed) + 1 == 100 &&
        !killed.exchange(true)) {
      ::kill(replicas[1]->pid, SIGKILL);
    }
  };
  auto result = RunLoadGen(load);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(killed.load()) << "the drill never reached the kill trigger";
  EXPECT_EQ(result->requests, 600u);
  EXPECT_EQ(result->ok_replies, 600u);
  EXPECT_EQ(result->error_replies, 0u) << "zero client-visible errors";
  EXPECT_EQ(mismatches.load(), 0u) << "every reply bit-identical";
  replicas[1]->Wait();

  // The dead replica is ejected exactly once (failed reopen probes of the
  // same outage must not inflate the counter).
  FleetStatsSnapshot snapshot;
  for (int waited = 0; waited < 15000; waited += 50) {
    snapshot = fleet.Stats();
    if (snapshot.replicas[1].state == ReplicaState::kEjected) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_EQ(snapshot.replicas[1].state, ReplicaState::kEjected);
  EXPECT_EQ(snapshot.replicas[1].ejections, 1u);
  EXPECT_EQ(snapshot.replicas[1].readmissions, 0u);
  EXPECT_GE(snapshot.failovers, 1u)
      << "requests in flight against the corpse must have failed over";
  EXPECT_EQ(snapshot.no_healthy_503s, 0u);

  // Restart the replica on its port: the half-open probe readmits it,
  // exactly once.
  replicas[1] = std::make_unique<ServedProcess>(ServedProcess::Start(
      ReplicaArgs(f, dataset_path, ports[1]), "",
      TempPath("fleet_kill_stderr1b.log")));
  ASSERT_TRUE(WaitForServing(ports[1], replicas[1].get()));
  for (int waited = 0; waited < 20000; waited += 50) {
    snapshot = fleet.Stats();
    if (snapshot.replicas[1].readmissions == 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(snapshot.replicas[1].state, ReplicaState::kHealthy);
  EXPECT_EQ(snapshot.replicas[1].ejections, 1u);
  EXPECT_EQ(snapshot.replicas[1].readmissions, 1u);

  // A post-recovery pass is clean: full fleet, no failures, no sheds.
  replies.store(0);
  const uint64_t failovers_before = snapshot.failovers;
  load.on_reply = [&](uint32_t user, const std::string& line) {
    if (!ReplyMatchesRanked(line, expect[user])) {
      mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  };
  result = RunLoadGen(load);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->error_replies, 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  snapshot = fleet.Stats();
  EXPECT_EQ(snapshot.failovers, failovers_before);
  EXPECT_EQ(snapshot.replicas[1].ejections, 1u);

  fleet.Stop();
  fleet_thread.join();
  std::remove(dataset_path.c_str());
  f.Cleanup();
}

TEST(FleetChaosTest, DaemonHandleKillWindowIsAbsorbedByFailover) {
  // The nastier kill: the replica dies *inside* HandleLine, after the
  // fleet has sent the request — the forward sees EOF mid-reply, not a
  // refused connect, and must fail over without the client noticing.
  DaemonFixture f = DaemonFixture::Make("fleet_killwin.oclr");
  const std::string dataset_path = TempPath("fleet_killwin.tsv");
  const CsrMatrix train = WriteAndReloadDataset(f.train, dataset_path);
  const auto expect = Oracle(f.model, train, 5);

  uint16_t ports[2] = {FreePort(), FreePort()};
  ASSERT_NE(ports[0], 0);
  ASSERT_NE(ports[1], 0);
  ServedProcess healthy = ServedProcess::Start(
      ReplicaArgs(f, dataset_path, ports[0]), "",
      TempPath("fleet_killwin_stderr0.log"));
  ASSERT_TRUE(WaitForServing(ports[0], &healthy));
  // The 40th handled request (fleet probes included) SIGKILLs mid-handle.
  ServedProcess doomed = ServedProcess::Start(
      ReplicaArgs(f, dataset_path, ports[1]), "daemon.handle=kill@40",
      TempPath("fleet_killwin_stderr1.log"));
  ASSERT_TRUE(WaitForServing(ports[1], &doomed));

  FleetServer::Options options;
  options.replicas = {ports[0], ports[1]};
  options.num_workers = 4;
  options.io_timeout_ms = 2000;
  options.probe_interval_ms = 100;
  FleetServer fleet(options);
  std::thread fleet_thread([&fleet] {
    EXPECT_TRUE(fleet.RunLoop(0, 0).ok());
  });
  const uint16_t fleet_port = WaitForFleetPort(fleet);
  ASSERT_NE(fleet_port, 0);

  std::atomic<uint64_t> mismatches{0};
  LoadGenOptions load;
  load.port = fleet_port;
  load.clients = 4;
  load.requests_per_client = 100;
  load.pipeline = 4;
  load.m = 5;
  load.num_users = 50;
  load.reconnect_on_close = true;
  load.on_reply = [&](uint32_t user, const std::string& line) {
    if (!ReplyMatchesRanked(line, expect[user])) {
      mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  };
  auto result = RunLoadGen(load);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->requests, 400u);
  EXPECT_EQ(result->ok_replies, 400u);
  EXPECT_EQ(result->error_replies, 0u);
  EXPECT_EQ(mismatches.load(), 0u);

  // The armed replica did die by SIGKILL inside the window.
  const int status = doomed.Wait();
  ASSERT_NE(status, -1) << "the kill window never fired";
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  FleetStatsSnapshot snapshot;
  for (int waited = 0; waited < 15000; waited += 50) {
    snapshot = fleet.Stats();
    if (snapshot.replicas[1].state == ReplicaState::kEjected) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(snapshot.replicas[1].state, ReplicaState::kEjected);
  EXPECT_EQ(snapshot.replicas[1].ejections, 1u);
  EXPECT_GE(snapshot.failovers, 1u);

  fleet.Stop();
  fleet_thread.join();
  std::remove(dataset_path.c_str());
  f.Cleanup();
}

TEST(FleetChaosTest, HedgeWinsAgainstAStalledReplica) {
  // A replica that is alive but wedged: every HandleLine stalls 1000 ms
  // (the daemon.handle fault point in stall mode). With --hedge-after-ms
  // the fleet issues a copy to the second replica at 100 ms and takes its
  // reply — the client sees sub-stall latency and a bit-identical answer.
  DaemonFixture f = DaemonFixture::Make("fleet_hedge.oclr");
  const std::string dataset_path = TempPath("fleet_hedge.tsv");
  const CsrMatrix train = WriteAndReloadDataset(f.train, dataset_path);
  const auto expect = Oracle(f.model, train, 5);

  uint16_t ports[2] = {FreePort(), FreePort()};
  ASSERT_NE(ports[0], 0);
  ASSERT_NE(ports[1], 0);
  ServedProcess fast = ServedProcess::Start(
      ReplicaArgs(f, dataset_path, ports[0]), "",
      TempPath("fleet_hedge_stderr0.log"));
  ASSERT_TRUE(WaitForServing(ports[0], &fast));
  // Stall mode: the point fires on (practically) every call, each one a
  // 1000 ms sleep inside HandleLine.
  ServedProcess stalled = ServedProcess::Start(
      ReplicaArgs(f, dataset_path, ports[1]), "daemon.handle=1000000",
      TempPath("fleet_hedge_stderr1.log"));
  ASSERT_TRUE(WaitForServing(ports[1], &stalled));

  FleetServer::Options options;
  options.replicas = {ports[0], ports[1]};
  options.num_workers = 2;
  options.io_timeout_ms = 3000;   // > the stall: never counts a failure
  options.hedge_after_ms = 100;
  options.probe_interval_ms = 30000;    // probes stay out of the way
  options.health.fail_threshold = 1000;  // hedging, not ejection
  FleetServer fleet(options);
  std::thread fleet_thread([&fleet] {
    EXPECT_TRUE(fleet.RunLoop(0, 0).ok());
  });
  const uint16_t fleet_port = WaitForFleetPort(fleet);
  ASSERT_NE(fleet_port, 0);

  // Users whose rendezvous primary is the stalled replica exercise the
  // hedge; there must be one among the first handful of users.
  std::vector<uint32_t> stalled_primary_users;
  for (uint32_t u = 0; u < 50 && stalled_primary_users.size() < 3; ++u) {
    std::vector<uint32_t> order;
    FleetRouteOrder(u, 2, &order);
    if (order[0] == 1) stalled_primary_users.push_back(u);
  }
  ASSERT_FALSE(stalled_primary_users.empty());

  RawClient c;
  ASSERT_TRUE(c.Connect(fleet_port));
  for (const uint32_t u : stalled_primary_users) {
    const auto start = std::chrono::steady_clock::now();
    std::string line;
    ASSERT_TRUE(c.Send(R"({"cmd":"recommend","user":)" + std::to_string(u) +
                       R"(,"m":5})"));
    ASSERT_TRUE(c.ReadLine(&line)) << "u=" << u;
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    EXPECT_TRUE(ReplyMatchesRanked(line, expect[u])) << "u=" << u << " " << line;
    // The stall is 1000 ms; a won hedge answers in ~hedge_after_ms plus
    // one fast replica round trip.
    EXPECT_LT(elapsed.count(), 900) << "u=" << u
                                    << ": hedge should beat the stall";
  }
  c.Close();

  const FleetStatsSnapshot snapshot = fleet.Stats();
  EXPECT_GE(snapshot.hedges_sent, stalled_primary_users.size());
  EXPECT_GE(snapshot.hedges_won, stalled_primary_users.size());
  EXPECT_EQ(snapshot.replicas[1].ejections, 0u)
      << "a stalled-but-alive replica must not be ejected by hedging";

  fleet.Stop();
  fleet_thread.join();
  std::remove(dataset_path.c_str());
  f.Cleanup();
}

#endif  // OCULAR_TSAN

}  // namespace
}  // namespace ocular
