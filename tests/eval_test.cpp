// Unit tests for src/eval: TopM selection, ranking metrics (hand-checked
// values + properties), the evaluation harness, and grid search plumbing.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.h"
#include "eval/grid_search.h"
#include "eval/metrics.h"
#include "eval/recommender.h"

namespace ocular {
namespace {

// ------------------------------------------------------------------ TopM

TEST(TopMTest, SelectsHighestScores) {
  std::vector<double> scores{0.1, 0.9, 0.5, 0.7};
  auto top = TopM(scores, 2, {});
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 1u);
  EXPECT_EQ(top[1].item, 3u);
}

TEST(TopMTest, ExcludesGivenItems) {
  std::vector<double> scores{0.1, 0.9, 0.5, 0.7};
  std::vector<uint32_t> exclude{1, 3};
  auto top = TopM(scores, 2, exclude);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 2u);
  EXPECT_EQ(top[1].item, 0u);
}

TEST(TopMTest, TieBreaksByLowerIndex) {
  std::vector<double> scores{0.5, 0.5, 0.5};
  auto top = TopM(scores, 3, {});
  EXPECT_EQ(top[0].item, 0u);
  EXPECT_EQ(top[1].item, 1u);
  EXPECT_EQ(top[2].item, 2u);
}

TEST(TopMTest, MLargerThanCandidates) {
  std::vector<double> scores{0.3, 0.1};
  auto top = TopM(scores, 10, {});
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 0u);
}

TEST(TopMTest, MatchesFullSortOnRandomInput) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> scores(100);
    for (auto& s : scores) s = rng.Uniform();
    std::vector<uint32_t> exclude;
    for (uint32_t i = 0; i < 100; ++i) {
      if (rng.Bernoulli(0.2)) exclude.push_back(i);
    }
    const uint32_t m = 1 + static_cast<uint32_t>(rng.UniformInt(uint64_t{20}));
    auto fast = TopM(scores, m, exclude);

    // Brute-force reference.
    std::vector<ScoredItem> all;
    for (uint32_t i = 0; i < 100; ++i) {
      if (!std::binary_search(exclude.begin(), exclude.end(), i)) {
        all.push_back({i, scores[i]});
      }
    }
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.item < b.item;
    });
    all.resize(std::min<size_t>(m, all.size()));
    ASSERT_EQ(fast.size(), all.size());
    for (size_t r = 0; r < all.size(); ++r) {
      EXPECT_EQ(fast[r].item, all[r].item) << "rank " << r;
    }
  }
}

// --------------------------------------------------------------- Metrics

std::vector<ScoredItem> Ranked(std::initializer_list<uint32_t> items) {
  std::vector<ScoredItem> out;
  double score = 1.0;
  for (uint32_t i : items) out.push_back({i, score -= 0.01});
  return out;
}

TEST(MetricsTest, RecallHandChecked) {
  auto ranked = Ranked({10, 20, 30, 40});
  std::vector<uint32_t> relevant{20, 40, 99};
  EXPECT_DOUBLE_EQ(RecallAtM(ranked, 4, relevant), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtM(ranked, 1, relevant), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtM(ranked, 2, relevant), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtM(ranked, 4, {}), 0.0);
}

TEST(MetricsTest, PrecisionHandChecked) {
  auto ranked = Ranked({10, 20, 30, 40});
  std::vector<uint32_t> relevant{20, 40};
  EXPECT_DOUBLE_EQ(PrecisionAtM(ranked, 2, relevant), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtM(ranked, 4, relevant), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtM(ranked, 0, relevant), 0.0);
}

TEST(MetricsTest, AveragePrecisionHandChecked) {
  // Ranks: 1 -> relevant, 2 -> not, 3 -> relevant. relevant total = 2.
  auto ranked = Ranked({5, 6, 7});
  std::vector<uint32_t> relevant{5, 7};
  // AP@3 = (1/1 + 2/3) / min(2, 3) = (1 + 0.666..) / 2.
  EXPECT_NEAR(AveragePrecisionAtM(ranked, 3, relevant), (1.0 + 2.0 / 3.0) / 2,
              1e-12);
  // AP@1 = (1/1) / min(2, 1) = 1.
  EXPECT_DOUBLE_EQ(AveragePrecisionAtM(ranked, 1, relevant), 1.0);
}

TEST(MetricsTest, ApIsOneForPerfectRanking) {
  auto ranked = Ranked({1, 2, 3});
  std::vector<uint32_t> relevant{1, 2, 3};
  EXPECT_DOUBLE_EQ(AveragePrecisionAtM(ranked, 3, relevant), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtM(ranked, 3, relevant), 1.0);
  EXPECT_DOUBLE_EQ(HitRateAtM(ranked, 3, relevant), 1.0);
}

TEST(MetricsTest, ZeroWhenNothingRelevantRanked) {
  auto ranked = Ranked({1, 2, 3});
  std::vector<uint32_t> relevant{7, 8};
  EXPECT_DOUBLE_EQ(AveragePrecisionAtM(ranked, 3, relevant), 0.0);
  EXPECT_DOUBLE_EQ(NdcgAtM(ranked, 3, relevant), 0.0);
  EXPECT_DOUBLE_EQ(HitRateAtM(ranked, 3, relevant), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtM(ranked, 3, relevant), 0.0);
}

TEST(MetricsTest, NdcgPositionDiscounting) {
  // Hit at rank 1 beats hit at rank 2 for a single relevant item.
  std::vector<uint32_t> relevant{5};
  EXPECT_GT(NdcgAtM(Ranked({5, 6}), 2, relevant),
            NdcgAtM(Ranked({6, 5}), 2, relevant));
}

// Property: recall is non-decreasing in M; AP, precision in [0,1].
class MetricMonotonicityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricMonotonicityTest, RecallMonotoneApBounded) {
  Rng rng(GetParam());
  std::vector<ScoredItem> ranked;
  for (uint32_t i = 0; i < 50; ++i) ranked.push_back({i, rng.Uniform()});
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.score > b.score; });
  std::vector<uint32_t> relevant;
  for (uint32_t i = 0; i < 50; ++i) {
    if (rng.Bernoulli(0.25)) relevant.push_back(i);
  }
  if (relevant.empty()) relevant.push_back(7);
  double prev_recall = 0.0;
  for (uint32_t m = 1; m <= 50; ++m) {
    const double recall = RecallAtM(ranked, m, relevant);
    EXPECT_GE(recall, prev_recall);
    prev_recall = recall;
    const double ap = AveragePrecisionAtM(ranked, m, relevant);
    EXPECT_GE(ap, 0.0);
    EXPECT_LE(ap, 1.0);
    EXPECT_LE(PrecisionAtM(ranked, m, relevant), 1.0);
    EXPECT_LE(NdcgAtM(ranked, m, relevant), 1.0);
  }
  EXPECT_DOUBLE_EQ(prev_recall, 1.0);  // everything retrieved at M=50
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricMonotonicityTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------ Evaluate harness

/// Oracle recommender that knows the test matrix: scores test positives
/// highest. Gives recall/MAP == 1 when the harness is correct.
class OracleRecommender : public Recommender {
 public:
  explicit OracleRecommender(const CsrMatrix& test) : test_(test) {}
  std::string name() const override { return "oracle"; }
  Status Fit(const CsrMatrix&) override { return Status::OK(); }
  double Score(uint32_t u, uint32_t i) const override {
    return test_.HasEntry(u, i) ? 1.0 : 0.0;
  }
  uint32_t num_users() const override { return test_.num_rows(); }
  uint32_t num_items() const override { return test_.num_cols(); }

 private:
  CsrMatrix test_;
};

/// Adversarial recommender: scores everything identically (worst case for
/// tie handling).
class ConstantRecommender : public Recommender {
 public:
  ConstantRecommender(uint32_t nu, uint32_t ni) : nu_(nu), ni_(ni) {}
  std::string name() const override { return "constant"; }
  Status Fit(const CsrMatrix&) override { return Status::OK(); }
  double Score(uint32_t, uint32_t) const override { return 0.5; }
  uint32_t num_users() const override { return nu_; }
  uint32_t num_items() const override { return ni_; }

 private:
  uint32_t nu_, ni_;
};

TEST(EvaluateRankingTest, OracleGetsPerfectScores) {
  CsrMatrix train = CsrMatrix::FromPairs({{0, 0}, {1, 1}}, 3, 6).value();
  CsrMatrix test =
      CsrMatrix::FromPairs({{0, 2}, {0, 3}, {1, 4}}, 3, 6).value();
  OracleRecommender oracle(test);
  auto rows = EvaluateRanking(oracle, train, test, {2, 5}).value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].recall, 1.0);
  EXPECT_DOUBLE_EQ(rows[0].map, 1.0);
  EXPECT_DOUBLE_EQ(rows[1].recall, 1.0);
  EXPECT_EQ(rows[0].num_users, 2u);  // user 2 has no test positives
}

TEST(EvaluateRankingTest, TrainPositivesAreExcluded) {
  // If train positives leaked into the candidate list, the oracle's test
  // items would be displaced. Put a train positive that the constant
  // recommender would otherwise rank first.
  CsrMatrix train = CsrMatrix::FromPairs({{0, 0}, {0, 1}}, 1, 4).value();
  CsrMatrix test = CsrMatrix::FromPairs({{0, 2}}, 1, 4).value();
  ConstantRecommender rec(1, 4);
  // Candidates are items 2, 3 (0 and 1 excluded); with ties broken by
  // index, top-1 = item 2 = the test positive.
  auto row = EvaluateRankingAtM(rec, train, test, 1).value();
  EXPECT_DOUBLE_EQ(row.recall, 1.0);
}

TEST(EvaluateRankingTest, RejectsBadArguments) {
  CsrMatrix a = CsrMatrix::FromPairs({{0, 0}}, 2, 2).value();
  CsrMatrix b = CsrMatrix::FromPairs({{0, 0}}, 3, 2).value();
  ConstantRecommender rec(2, 2);
  EXPECT_TRUE(EvaluateRanking(rec, a, b, {5}).status().IsInvalidArgument());
  EXPECT_TRUE(EvaluateRanking(rec, a, a, {}).status().IsInvalidArgument());
  EXPECT_TRUE(
      EvaluateRanking(rec, a, a, {5, 2}).status().IsInvalidArgument());
  EXPECT_TRUE(
      EvaluateRanking(rec, a, a, {0, 5}).status().IsInvalidArgument());
}

TEST(EvaluateRankingTest, SkipsUsersWithoutTestPositives) {
  CsrMatrix train = CsrMatrix::FromPairs({{0, 0}, {1, 1}}, 2, 3).value();
  CsrMatrix test = CsrMatrix::FromPairs({{1, 2}}, 2, 3).value();
  OracleRecommender oracle(test);
  auto row = EvaluateRankingAtM(oracle, train, test, 2).value();
  EXPECT_EQ(row.num_users, 1u);
  EXPECT_DOUBLE_EQ(row.recall, 1.0);
}

// ------------------------------------------------------------ GridSearch

TEST(GridSearchTest, FindsBestCellAndRendersHeatmap) {
  CsrMatrix train = CsrMatrix::FromPairs({{0, 0}, {1, 1}}, 2, 4).value();
  CsrMatrix test = CsrMatrix::FromPairs({{0, 2}, {1, 3}}, 2, 4).value();
  // Factory returns the oracle only for (k=2, lambda=1.0), a dud otherwise.
  auto factory = [&](const GridPoint& p) -> std::unique_ptr<Recommender> {
    if (p.k == 2 && p.lambda == 1.0) {
      return std::make_unique<OracleRecommender>(test);
    }
    return std::make_unique<ConstantRecommender>(2, 4);
  };
  auto result =
      GridSearch(factory, {1, 2}, {0.0, 1.0}, train, test, 1).value();
  EXPECT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.best().point.k, 2u);
  EXPECT_DOUBLE_EQ(result.best().point.lambda, 1.0);
  EXPECT_DOUBLE_EQ(result.best().recall, 1.0);
  const std::string heatmap = RenderGridHeatmap(result);
  EXPECT_NE(heatmap.find("best: K=2"), std::string::npos);
}

TEST(GridSearchTest, RejectsEmptyGridAndNullFactory) {
  CsrMatrix m = CsrMatrix::FromPairs({{0, 0}}, 1, 2).value();
  auto factory = [](const GridPoint&) -> std::unique_ptr<Recommender> {
    return nullptr;
  };
  EXPECT_TRUE(
      GridSearch(factory, {}, {1.0}, m, m, 5).status().IsInvalidArgument());
  EXPECT_TRUE(GridSearch(RecommenderFactory{}, {1}, {1.0}, m, m, 5)
                  .status()
                  .IsInvalidArgument());
  // Factory returning null is an Internal error.
  EXPECT_FALSE(GridSearch(factory, {1}, {1.0}, m, m, 5).ok());
}

}  // namespace
}  // namespace ocular
