// Connection-core stress tests for the event-driven (epoll) daemon: an
// idle keep-alive flood that must be held with zero sheds while bursty
// traffic rides through, a slowloris swarm the 408 reaper must cut
// loose, never-reading consumers the slow-consumer policy must
// disconnect, and fork/exec drills for fd exhaustion (EMFILE under a
// lowered RLIMIT_NOFILE — the reserve-fd parachute must keep shedding
// with clean 503s) and SIGKILL mid-flood (a restart on the same port
// must serve, bit-identical). The CI conn-chaos job runs this binary
// under AddressSanitizer.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "core/model_store.h"
#include "core/ocular_recommender.h"
#include "serving/batch.h"
#include "serving/daemon.h"
#include "serving/journal.h"
#include "serving/loadgen.h"
#include "serving/net_util.h"
#include "serving/registry.h"
#include "test_util.h"

#ifndef OCULAR_SERVED_PATH
#define OCULAR_SERVED_PATH "ocular_served"
#endif

// fork() drills and ThreadSanitizer do not mix; the in-process flood,
// slowloris, and slow-consumer tests still run under TSan and carry the
// concurrency coverage.
#if defined(__SANITIZE_THREAD__)
#define OCULAR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OCULAR_TSAN 1
#endif
#endif

namespace ocular {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// A small trained model saved as a binary v2 artifact, with the
/// in-memory fit kept for oracle comparisons.
struct DaemonFixture {
  CsrMatrix train;
  OcularConfig config;
  OcularModel model;
  std::string model_path;

  static DaemonFixture Make(const std::string& file) {
    DaemonFixture f;
    f.train = test::RandomCsr(50, 30, 400, 11);
    f.config.k = 5;
    f.config.lambda = 0.5;
    f.config.max_sweeps = 6;
    f.config.seed = 11;
    OcularTrainer trainer(f.config);
    f.model = trainer.Fit(f.train).value().model;
    f.model_path = TempPath(file);
    std::remove(UpdateJournal::PathFor(f.model_path).c_str());
    EXPECT_TRUE(SaveModelBinary(f.model, f.config, f.model_path).ok());
    return f;
  }

  std::shared_ptr<const CsrMatrix> shared_train() const {
    return std::make_shared<const CsrMatrix>(train);
  }

  void Cleanup() const {
    std::remove(model_path.c_str());
    std::remove(UpdateJournal::PathFor(model_path).c_str());
  }
};

struct RawClient {
  int fd = -1;
  std::string buffer;

  bool Connect(uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }
  bool Send(const std::string& line) {
    const std::string framed = line + "\n";
    return net::SendAll(fd, framed.data(), framed.size());
  }
  bool ReadLine(std::string* line) { return net::ReadLine(fd, &buffer, line); }
  void Close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
};

uint16_t WaitForPort(const RequestServer& server, std::thread* serve_thread) {
  for (int ms = 0; ms < 10000; ++ms) {
    const uint16_t port = server.bound_port();
    if (port != 0) return port;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (serve_thread->joinable()) serve_thread->join();
  return 0;
}

/// One `stats` counter read over an already-established connection (the
/// EMFILE drill cannot open a new one).
double StatOver(RawClient* c, const std::string& key) {
  if (!c->Send(R"({"cmd":"stats"})")) return -1.0;
  std::string line;
  if (!c->ReadLine(&line)) return -1.0;
  auto parsed = JsonValue::Parse(line);
  if (!parsed.ok()) return -1.0;
  const JsonValue* value = parsed->Find(key);
  return value == nullptr ? -1.0 : value->number();
}

TEST(ConnFloodTest, IdleFloodIsHeldWithZeroShedsWhileBurstsServe) {
  DaemonFixture f = DaemonFixture::Make("flood_idle.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer::Options options;
  options.num_workers = 2;
  options.io_timeout_ms = 100;
  options.idle_timeout_ms = 0;  // idle keep-alive is the point, not abuse
  RequestServer server(&registry, options);

  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, 0).ok());
  });
  const uint16_t port = WaitForPort(server, &serve_thread);
  ASSERT_NE(port, 0);

  // The exact-gauge check first, while the connection count is small and
  // fully controlled: 20 idle connections + the stats connection itself.
  {
    std::vector<RawClient> idle(20);
    for (RawClient& c : idle) ASSERT_TRUE(c.Connect(port));
    RawClient probe;
    ASSERT_TRUE(probe.Connect(port));
    EXPECT_EQ(StatOver(&probe, "connections_open"), 21.0);
    for (RawClient& c : idle) c.Close();
    probe.Close();
  }

  // Hundreds of idle keep-alive connections, Zipf-bursty senders through
  // the middle: every idle connection held, every burst request answered,
  // nothing shed. (bench_conn scales this same workload to 5k+.)
  IdleFloodOptions flood;
  flood.port = port;
  flood.idle_conns = 300;
  flood.burst_clients = 2;
  flood.requests_per_client = 200;
  flood.pipeline = 8;
  flood.m = 5;
  flood.num_users = 50;
  flood.duration_ms = 200;
  auto result = RunIdleFlood(flood);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->connections_held, 300u);
  EXPECT_EQ(result->connections_dropped, 0u);
  EXPECT_EQ(result->burst_requests, 400u);
  EXPECT_EQ(result->burst_ok, 400u);
  EXPECT_EQ(result->burst_errors, 0u);

  RequestServer::RequestShutdown();
  serve_thread.join();
  EXPECT_FALSE(RequestServer::ShutdownRequested());
  const DaemonStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.connections_shed, 0u);
  EXPECT_EQ(stats.connections_slow_closed, 0u);
  EXPECT_EQ(stats.accept_emfile, 0u);
  EXPECT_EQ(stats.connections_open, 0u);
  f.Cleanup();
}

TEST(ConnFloodTest, SlowlorisSwarmIsReapedWhileHotTrafficServes) {
  DaemonFixture f = DaemonFixture::Make("flood_loris.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer::Options options;
  options.num_workers = 1;
  options.io_timeout_ms = 50;    // the reaper's sweep tick
  options.idle_timeout_ms = 200;  // dribblers die fast, bursts never idle
  RequestServer server(&registry, options);

  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, 0).ok());
  });
  const uint16_t port = WaitForPort(server, &serve_thread);
  ASSERT_NE(port, 0);

  // 20 dribblers writing one byte at a time never complete a request, so
  // the idle clock never advances for them: all reaped with 408 while the
  // burst client's completed requests keep its own connection alive.
  IdleFloodOptions flood;
  flood.port = port;
  flood.idle_conns = 0;
  flood.burst_clients = 1;
  flood.requests_per_client = 200;
  flood.pipeline = 4;
  flood.m = 5;
  flood.num_users = 50;
  flood.slow_writers = 20;
  flood.slow_writer_interval_ms = 20;
  flood.duration_ms = 700;  // > idle_timeout + sweep: every loris reaped
  auto result = RunIdleFlood(flood);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->burst_ok, 200u);
  EXPECT_EQ(result->burst_errors, 0u);
  EXPECT_GE(result->slow_writers_reaped, 1u)
      << "the server never cut a dribbler loose";

  RequestServer::RequestShutdown();
  serve_thread.join();
  EXPECT_FALSE(RequestServer::ShutdownRequested());
  const DaemonStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.connections_timed_out, 20u)
      << "every slowloris connection must be 408-reaped";
  EXPECT_EQ(stats.connections_shed, 0u);
  f.Cleanup();
}

TEST(ConnFloodTest, NeverReadingConsumersAreDisconnectedIdleFleetSurvives) {
  DaemonFixture f = DaemonFixture::Make("flood_mute.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer::Options options;
  options.num_workers = 1;
  options.io_timeout_ms = 50;
  options.idle_timeout_ms = 0;
  // A small outbound bound so the drill does not need to out-write the
  // kernel's 4 MB autotuned send buffer per abuser to build a backlog.
  options.max_outbound_bytes = 16 << 10;
  RequestServer server(&registry, options);

  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, 0).ok());
  });
  const uint16_t port = WaitForPort(server, &serve_thread);
  ASSERT_NE(port, 0);

  // Two consumers pipeline ~6 MB of replies and never read a byte; the
  // idle fleet and the burst traffic must not notice.
  IdleFloodOptions flood;
  flood.port = port;
  flood.idle_conns = 50;
  flood.burst_clients = 1;
  flood.requests_per_client = 200;
  flood.pipeline = 4;
  flood.m = 30;
  flood.num_users = 50;
  flood.never_readers = 2;
  flood.never_reader_requests = 8000;
  flood.duration_ms = 1500;
  auto result = RunIdleFlood(flood);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->connections_held, 50u);
  EXPECT_EQ(result->burst_ok, 200u);
  EXPECT_EQ(result->burst_errors, 0u);
  EXPECT_EQ(result->never_readers_closed, 2u)
      << "the slow-consumer policy must disconnect both mute consumers";

  RequestServer::RequestShutdown();
  serve_thread.join();
  EXPECT_FALSE(RequestServer::ShutdownRequested());
  const DaemonStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.connections_slow_closed, 2u);
  EXPECT_EQ(stats.connections_shed, 0u);
  EXPECT_GT(stats.peak_outbound_bytes, uint64_t{16} << 10);
  f.Cleanup();
}

// ------------------------------------------------ fork/exec chaos drills

#ifndef OCULAR_TSAN

uint16_t FreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof(addr);
  uint16_t port = 0;
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) ==
      0) {
    port = ntohs(addr.sin_port);
  }
  ::close(fd);
  return port;
}

/// The real daemon binary as a child, optionally under a lowered
/// RLIMIT_NOFILE (the fd-exhaustion drill), stderr captured to a file.
struct ServedProcess {
  pid_t pid = -1;
  std::string stderr_path;

  ServedProcess() = default;
  // Move-only: the destructor SIGKILLs `pid`, so a copied temporary
  // (e.g. through make_unique) would kill the child it just started.
  ServedProcess(const ServedProcess&) = delete;
  ServedProcess& operator=(const ServedProcess&) = delete;
  ServedProcess(ServedProcess&& other) noexcept
      : pid(other.pid), stderr_path(std::move(other.stderr_path)) {
    other.pid = -1;
  }
  ServedProcess& operator=(ServedProcess&& other) noexcept {
    if (this != &other) {
      KillHard();
      pid = other.pid;
      stderr_path = std::move(other.stderr_path);
      other.pid = -1;
    }
    return *this;
  }

  static ServedProcess Start(const std::vector<std::string>& args,
                             const std::string& stderr_path,
                             rlim_t nofile_limit = 0) {
    ServedProcess p;
    p.stderr_path = stderr_path;
    p.pid = ::fork();
    if (p.pid == 0) {
      ::unsetenv("OCULAR_FAULTS");
      if (nofile_limit > 0) {
        struct rlimit lim;
        lim.rlim_cur = nofile_limit;
        lim.rlim_max = nofile_limit;
        if (::setrlimit(RLIMIT_NOFILE, &lim) != 0) ::_exit(126);
      }
      const int err =
          ::open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (err >= 0) {
        ::dup2(err, 2);
        ::close(err);
      }
      const int null = ::open("/dev/null", O_RDONLY);
      if (null >= 0) {
        ::dup2(null, 0);
        ::close(null);
      }
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(OCULAR_SERVED_PATH));
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(OCULAR_SERVED_PATH, argv.data());
      ::_exit(127);
    }
    return p;
  }

  void KillHard() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      for (int waited = 0; waited < 30000; waited += 10) {
        const pid_t done = ::waitpid(pid, nullptr, WNOHANG);
        if (done == pid || done < 0) break;  // reaped, or already gone
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      pid = -1;
    }
  }
  ~ServedProcess() { KillHard(); }
};

bool WaitForServing(uint16_t port, ServedProcess* served,
                    int timeout_ms = 20000) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    RawClient probe;
    if (probe.Connect(port)) {
      probe.Close();
      return true;
    }
    int status = 0;
    if (served->pid > 0 &&
        ::waitpid(served->pid, &status, WNOHANG) == served->pid) {
      served->pid = -1;
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

std::string RoundTrip(uint16_t port, const std::string& request) {
  RawClient c;
  if (!c.Connect(port)) return "";
  std::string line;
  if (!c.Send(request) || !c.ReadLine(&line)) line.clear();
  c.Close();
  return line;
}

/// Writes `train` as the `user<TAB>item` dataset the daemon loads.
void WriteDataset(const CsrMatrix& train, const std::string& path) {
  std::ofstream out(path);
  for (auto [u, i] : train.ToPairs()) out << u << '\t' << i << '\n';
}

TEST(ConnChaosTest, FdExhaustionShedsWith503AndKeepsServing) {
  DaemonFixture f = DaemonFixture::Make("flood_emfile.oclr");
  const std::string dataset_path = TempPath("flood_emfile.tsv");
  WriteDataset(f.train, dataset_path);
  const uint16_t port = FreePort();
  ASSERT_NE(port, 0);

  // 40 fds total for the child: after stdio, listener, epoll, eventfd,
  // the reserve fd, and the model mapping, a few dozen connections
  // exhaust the table — the parachute must shed the overflow with real
  // 503 replies instead of leaving SYNs to rot in the backlog.
  ServedProcess served = ServedProcess::Start(
      {
          "--models=default=" + f.model_path,
          "--datasets=default=" + dataset_path,
          "--port=" + std::to_string(port),
          "--workers=1",
          "--io-timeout-ms=100",
          "--idle-timeout-ms=0",
          "--journal=0",
      },
      TempPath("flood_emfile_stderr.log"), /*nofile_limit=*/40);
  ASSERT_TRUE(WaitForServing(port, &served));

  RawClient healthy;
  ASSERT_TRUE(healthy.Connect(port));
  std::string line;
  ASSERT_TRUE(healthy.Send(R"({"user":1,"m":3})"));
  ASSERT_TRUE(healthy.ReadLine(&line));

  // Hold enough idle connections to blow through the child's fd table.
  std::vector<RawClient> fillers(60);
  for (RawClient& c : fillers) {
    if (!c.Connect(port)) break;  // kernel may refuse once backlog fills
  }
  // The sweep above triggered at least one EMFILE accept; confirm via the
  // healthy connection (poll: the last filler connects asynchronously
  // with respect to the server's accept burst).
  double emfile = 0.0;
  for (int tick = 0; tick < 200 && emfile <= 0.0; ++tick) {
    emfile = StatOver(&healthy, "accept_emfile");
    ASSERT_GE(emfile, 0.0) << "healthy connection died during the flood";
    if (emfile <= 0.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_GE(emfile, 1.0) << "fd exhaustion never hit the accept path";
  EXPECT_GE(StatOver(&healthy, "connections_shed"), 1.0);

  // A fresh arrival while the table is exhausted gets the parachute 503
  // (accept, one structured line, close) — not a hang, not a reset.
  {
    RawClient shed;
    ASSERT_TRUE(shed.Connect(port));
    ASSERT_TRUE(shed.ReadLine(&line)) << "parachute must answer, not hang";
    auto parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_FALSE(parsed->Find("ok")->boolean());
    ASSERT_NE(parsed->Find("code"), nullptr);
    EXPECT_EQ(parsed->Find("code")->number(), 503.0);
    EXPECT_NE(parsed->Find("retry_after_ms"), nullptr);
    EXPECT_FALSE(shed.ReadLine(&line));
    shed.Close();
  }

  // The established connections rode through the whole exhaustion.
  ASSERT_TRUE(healthy.Send(R"({"user":1,"m":3})"));
  ASSERT_TRUE(healthy.ReadLine(&line));
  auto parsed = JsonValue::Parse(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Find("ok")->boolean());

  healthy.Close();
  for (RawClient& c : fillers) c.Close();
  served.KillHard();
  std::remove(dataset_path.c_str());
  f.Cleanup();
}

TEST(ConnChaosTest, SigkillMidFloodThenRestartServesBitIdentically) {
  DaemonFixture f = DaemonFixture::Make("flood_kill.oclr");
  const std::string dataset_path = TempPath("flood_kill.tsv");
  WriteDataset(f.train, dataset_path);
  const uint16_t port = FreePort();
  ASSERT_NE(port, 0);
  const auto daemon_args = [&](uint16_t p) {
    return std::vector<std::string>{
        "--models=default=" + f.model_path,
        "--datasets=default=" + dataset_path,
        "--port=" + std::to_string(p),
        "--workers=2",
        "--io-timeout-ms=100",
        "--idle-timeout-ms=0",
        "--journal=0",
    };
  };
  auto served = std::make_unique<ServedProcess>(ServedProcess::Start(
      daemon_args(port), TempPath("flood_kill_stderr1.log")));
  ASSERT_TRUE(WaitForServing(port, served.get()));

  // Flood + burst in flight when the SIGKILL lands. The generator run
  // itself is expected to report the carnage (dropped idles, a dead
  // burst connection) — the drill's contract is about the *restart*.
  std::thread flood_thread([port] {
    IdleFloodOptions flood;
    flood.port = port;
    flood.idle_conns = 200;
    flood.burst_clients = 2;
    flood.requests_per_client = 100000;  // far more than pre-kill time allows
    flood.pipeline = 8;
    flood.m = 5;
    flood.num_users = 50;
    flood.duration_ms = 100;
    auto result = RunIdleFlood(flood);
    // Either outcome is fine: an error (burst connection died mid-batch)
    // or a result full of dropped connections. No assert — the kill races
    // the run's phases.
    (void)result;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  served->KillHard();
  flood_thread.join();

  // Restart on the same port: the listener must bind (SO_REUSEADDR —
  // thousands of just-killed sockets sit in TIME_WAIT) and serve replies
  // bit-identical to the oracle.
  served = std::make_unique<ServedProcess>(ServedProcess::Start(
      daemon_args(port), TempPath("flood_kill_stderr2.log")));
  ASSERT_TRUE(WaitForServing(port, served.get()));
  OcularModelRecommender rec(f.model);
  BatchOptions batch;
  batch.m = 5;
  batch.skip_cold_users = false;
  const auto oracle = RecommendForAllUsers(rec, f.train, batch).value();
  const std::string reply =
      RoundTrip(port, R"({"cmd":"recommend","user":7,"m":5})");
  ASSERT_FALSE(reply.empty());
  EXPECT_TRUE(ReplyMatchesRanked(reply, oracle.recommendations[7])) << reply;

  served->KillHard();
  std::remove(dataset_path.c_str());
  f.Cleanup();
}

#endif  // OCULAR_TSAN

}  // namespace
}  // namespace ocular
