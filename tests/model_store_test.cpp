// Tests for the binary model format v2 and the mmap-backed zero-copy
// ModelStore: exact round trips, corruption/truncation rejection, v1 -> v2
// conversion equivalence, serving parity of StoreRecommender against the
// in-memory recommenders (bit-identical), and the zero-copy guarantee
// (operator-new byte accounting across ModelStore::Open).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>

#include "baselines/wals.h"
#include "core/model_io.h"
#include "core/model_store.h"
#include "core/ocular_recommender.h"
#include "serving/score_engine.h"
#include "serving/store_recommender.h"
#include "sparse/linalg.h"
#include "test_util.h"

// --------------------------------------------- allocation byte accounting
// Same operator-new hook pattern as tests/perf_kernel_test.cpp and
// tests/score_engine_test.cpp, extended to count BYTES: the zero-copy test
// asserts that opening a megabyte-scale model allocates only header-scale
// heap (the factor matrices stay in the mapping).

namespace {
std::atomic<uint64_t> g_alloc_bytes{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ocular {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// A small fitted OCuLaR model + config, deterministic.
struct TrainedModel {
  OcularModel model;
  OcularConfig config;
};

TrainedModel TrainSmallModel(bool use_biases = false, uint64_t seed = 7) {
  OcularConfig cfg;
  cfg.k = 6;
  cfg.lambda = 0.5;
  cfg.max_sweeps = 6;
  cfg.seed = seed;
  cfg.use_biases = use_biases;
  OcularTrainer trainer(cfg);
  auto fit = trainer.Fit(test::RandomCsr(60, 40, 600, seed)).value();
  return {std::move(fit.model), cfg};
}

bool SameMatrix(ConstMatrixView view, const DenseMatrix& m) {
  return view.rows() == m.rows() && view.cols() == m.cols() &&
         std::memcmp(view.data(), m.data(), m.size() * sizeof(double)) == 0;
}

TEST(ModelStoreTest, BinaryRoundTripIsExact) {
  TrainedModel t = TrainSmallModel();
  const std::string path = TempPath("round_trip.oclr");
  ASSERT_TRUE(SaveModelBinary(t.model, t.config, path).ok());
  ASSERT_TRUE(IsBinaryModelFile(path));

  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->num_users(), t.model.num_users());
  EXPECT_EQ(store->num_items(), t.model.num_items());
  EXPECT_EQ(store->k(), t.model.k());
  EXPECT_EQ(store->meta().kind, BinaryModelKind::kOcularProbability);
  EXPECT_EQ(store->meta().algorithm, "OCuLaR");
  EXPECT_DOUBLE_EQ(store->meta().lambda, t.config.lambda);
  EXPECT_FALSE(store->meta().use_biases);
  EXPECT_FALSE(store->meta().relative_variant);

  EXPECT_TRUE(SameMatrix(store->user_factors(), t.model.user_factors()));
  EXPECT_TRUE(SameMatrix(store->item_factors(), t.model.item_factors()));
  // The serving-layout section equals the in-memory transposed copy the
  // recommenders build — the basis of bit-identical serving.
  EXPECT_TRUE(SameMatrix(store->item_factors_t(),
                         TransposedCopy(t.model.item_factors())));
  EXPECT_TRUE(store->VerifyChecksums().ok());
  std::remove(path.c_str());
}

TEST(ModelStoreTest, BiasAndRelativeVariantSurviveTheHeader) {
  TrainedModel t = TrainSmallModel(/*use_biases=*/true);
  t.config.variant = OcularVariant::kRelative;
  const std::string path = TempPath("bias_model.oclr");
  ASSERT_TRUE(SaveModelBinary(t.model, t.config, path).ok());
  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(store->meta().use_biases);
  EXPECT_TRUE(store->meta().relative_variant);
  EXPECT_EQ(store->meta().algorithm, "R-OCuLaR");
  EXPECT_EQ(store->k(), t.config.TotalDims());

  auto loaded = store->MaterializeOcular();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->config.k, t.config.k);
  EXPECT_TRUE(loaded->config.use_biases);
  EXPECT_EQ(loaded->config.variant, OcularVariant::kRelative);
  EXPECT_EQ(loaded->model.user_factors(), t.model.user_factors());
  EXPECT_EQ(loaded->model.item_factors(), t.model.item_factors());
  std::remove(path.c_str());
}

TEST(ModelStoreTest, StoreServingIsBitIdenticalToInMemory) {
  TrainedModel t = TrainSmallModel();
  const CsrMatrix train = test::RandomCsr(60, 40, 600, 7);
  const std::string path = TempPath("parity.oclr");
  ASSERT_TRUE(SaveModelBinary(t.model, t.config, path).ok());
  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok());

  OcularModelRecommender memory_rec(t.model);
  StoreRecommender store_rec(*store);
  ASSERT_EQ(store_rec.name(), "OCuLaR");
  ASSERT_EQ(store_rec.num_users(), memory_rec.num_users());
  ASSERT_EQ(store_rec.num_items(), memory_rec.num_items());

  // Per-pair and blocked scores: exactly equal, not just close.
  std::vector<double> mem_tile(store_rec.num_items());
  std::vector<double> store_tile(store_rec.num_items());
  for (uint32_t u = 0; u < store_rec.num_users(); ++u) {
    memory_rec.ScoreBlock(u, 0, memory_rec.num_items(), mem_tile);
    store_rec.ScoreBlock(u, 0, store_rec.num_items(), store_tile);
    for (uint32_t i = 0; i < store_rec.num_items(); ++i) {
      ASSERT_EQ(mem_tile[i], store_tile[i]) << "u=" << u << " i=" << i;
      ASSERT_EQ(memory_rec.Score(u, i), store_rec.Score(u, i));
    }
  }

  // Served rankings: identical items AND scores.
  ServeOptions options;
  options.m = 10;
  ServeWorkspace mem_ws, store_ws;
  mem_ws.Reserve(options.m, options.block_items);
  store_ws.Reserve(options.m, options.block_items);
  for (uint32_t u = 0; u < store_rec.num_users(); ++u) {
    auto mem_top = ServeTopM(memory_rec, u, train.Row(u), options, &mem_ws);
    auto store_top =
        ServeTopM(store_rec, u, train.Row(u), options, &store_ws);
    ASSERT_EQ(mem_top.size(), store_top.size()) << "u=" << u;
    for (size_t r = 0; r < mem_top.size(); ++r) {
      ASSERT_EQ(mem_top[r].item, store_top[r].item) << "u=" << u;
      ASSERT_EQ(mem_top[r].score, store_top[r].score) << "u=" << u;
    }
  }
  std::remove(path.c_str());
}

TEST(ModelStoreTest, TextToBinaryConversionIsEquivalent) {
  TrainedModel t = TrainSmallModel();
  const std::string text_path = TempPath("convert.txt");
  const std::string bin_path = TempPath("convert.oclr");
  ASSERT_TRUE(SaveModel(t.model, t.config, text_path).ok());
  ASSERT_TRUE(ConvertTextModelToBinary(text_path, bin_path).ok());

  auto from_text = LoadModel(text_path);
  auto store = ModelStore::Open(bin_path);
  ASSERT_TRUE(from_text.ok());
  ASSERT_TRUE(store.ok());
  // "%.17g" text round-trips doubles exactly, so text -> binary equals the
  // original model bit for bit.
  EXPECT_TRUE(
      SameMatrix(store->user_factors(), from_text->model.user_factors()));
  EXPECT_TRUE(
      SameMatrix(store->item_factors(), from_text->model.item_factors()));
  EXPECT_TRUE(SameMatrix(store->user_factors(), t.model.user_factors()));

  // LoadModelAuto sniffs both formats and agrees with itself.
  auto auto_text = LoadModelAuto(text_path);
  auto auto_bin = LoadModelAuto(bin_path);
  ASSERT_TRUE(auto_text.ok());
  ASSERT_TRUE(auto_bin.ok());
  EXPECT_EQ(auto_text->model.user_factors(), auto_bin->model.user_factors());
  EXPECT_EQ(auto_text->model.item_factors(), auto_bin->model.item_factors());
  EXPECT_EQ(auto_text->config.k, auto_bin->config.k);
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(ModelStoreTest, RejectsForeignAndTruncatedFiles) {
  const std::string path = TempPath("bad.oclr");
  // Not a model file at all.
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a model";
  }
  EXPECT_TRUE(ModelStore::Open(path).status().IsParseError());

  // A valid file truncated at various points.
  TrainedModel t = TrainSmallModel();
  const std::string good_path = TempPath("good.oclr");
  ASSERT_TRUE(SaveModelBinary(t.model, t.config, good_path).ok());
  std::ifstream in(good_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  for (size_t keep : {size_t{10}, size_t{100}, bytes.size() / 2,
                      bytes.size() - 1}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_TRUE(ModelStore::Open(path).status().IsParseError())
        << "truncated to " << keep << " of " << bytes.size() << " bytes";
  }

  // Unsupported future version.
  {
    std::string v3 = bytes;
    v3[4] = 3;  // version field
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(v3.data(), static_cast<std::streamsize>(v3.size()));
  }
  EXPECT_TRUE(ModelStore::Open(path).status().IsParseError());

  // Hostile header: dimensions whose byte product would wrap a size_t
  // (n_u = 2^30, k = 2^31 -> 2^64 bytes) must be rejected up front, not
  // pass the per-section length checks via overflow.
  {
    std::string hostile = bytes;
    const uint32_t huge_k = 1u << 31;
    const uint32_t huge_users = 1u << 30;
    std::memcpy(&hostile[16], &huge_k, sizeof(huge_k));
    std::memcpy(&hostile[20], &huge_users, sizeof(huge_users));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(hostile.data(), static_cast<std::streamsize>(hostile.size()));
  }
  EXPECT_TRUE(ModelStore::Open(path).status().IsParseError());

  // Missing file -> IOError, not ParseError.
  EXPECT_TRUE(ModelStore::Open("/nonexistent/model.oclr").status().IsIOError());
  std::remove(path.c_str());
  std::remove(good_path.c_str());
}

TEST(ModelStoreTest, ChecksumMismatchIsDetected) {
  TrainedModel t = TrainSmallModel();
  const std::string path = TempPath("corrupt.oclr");
  ASSERT_TRUE(SaveModelBinary(t.model, t.config, path).ok());

  // Flip one byte deep inside a factor section.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(-17, std::ios::end);
    char b;
    f.read(&b, 1);
    f.seekp(-17, std::ios::end);
    b = static_cast<char>(b ^ 0x40);
    f.write(&b, 1);
  }
  // Default open verifies checksums and rejects.
  EXPECT_TRUE(ModelStore::Open(path).status().IsParseError());

  // A trusting open succeeds in O(header); the explicit verify still
  // catches the corruption.
  ModelStoreOptions trusting;
  trusting.verify_checksums = false;
  auto store = ModelStore::Open(path, trusting);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(store->VerifyChecksums().IsParseError());
  std::remove(path.c_str());
}

TEST(ModelStoreTest, OpenIsZeroCopy) {
  // Large enough that an accidental factor copy dwarfs the bound: three
  // sections of 2000x32, 1200x32 and 32x1200 doubles ~= 1.1 MB.
  OcularConfig cfg;
  cfg.k = 32;
  cfg.lambda = 1.0;
  Rng rng = test::MakeRng();
  DenseMatrix fu(2000, 32), fi(1200, 32);
  fu.FillUniform(&rng, 0.0, 1.0);
  fi.FillUniform(&rng, 0.0, 1.0);
  OcularModel model(std::move(fu), std::move(fi));
  const std::string path = TempPath("zero_copy.oclr");
  ASSERT_TRUE(SaveModelBinary(model, cfg, path).ok());

  const uint64_t before = g_alloc_bytes.load(std::memory_order_relaxed);
  auto store = ModelStore::Open(path);  // checksum verify on: reads, no copies
  const uint64_t allocated =
      g_alloc_bytes.load(std::memory_order_relaxed) - before;
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const size_t factor_bytes =
      (model.user_factors().size() + 2 * model.item_factors().size()) *
      sizeof(double);
  ASSERT_GT(factor_bytes, 1000000u);
  // O(header) heap: path strings and the Result plumbing, nowhere near a
  // factor section. (A single copied matrix would trip this by 10x+.)
  EXPECT_LT(allocated, 64 * 1024u)
      << "ModelStore::Open allocated " << allocated
      << " bytes for a model with " << factor_bytes << " factor bytes";

  // Serving out of the store allocates nothing once the workspace is warm.
  StoreRecommender rec(*store);
  ServeOptions options;
  options.m = 10;
  ServeWorkspace ws;
  ws.Reserve(options.m, options.block_items);
  (void)ServeTopM(rec, 0, {}, options, &ws);  // warm-up
  const uint64_t serve_before = g_alloc_bytes.load(std::memory_order_relaxed);
  for (uint32_t u = 1; u < 40; ++u) {
    (void)ServeTopM(rec, u, {}, options, &ws);
  }
  EXPECT_EQ(g_alloc_bytes.load(std::memory_order_relaxed), serve_before)
      << "steady-state mmap serving must not allocate";
  std::remove(path.c_str());
}

TEST(ModelStoreTest, BaselineFactorsServeThroughTheSameStore) {
  const CsrMatrix train = test::TinyBlocksCsr();
  WalsConfig cfg;
  cfg.k = 4;
  cfg.iterations = 3;
  WalsRecommender wals(cfg);
  ASSERT_TRUE(wals.Fit(train).ok());

  const std::string path = TempPath("wals.oclr");
  ASSERT_TRUE(wals.SaveBinary(path).ok());
  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->meta().kind, BinaryModelKind::kDotProduct);
  EXPECT_EQ(store->meta().algorithm, "wALS");

  StoreRecommender store_rec(*store);
  EXPECT_EQ(store_rec.name(), "wALS");
  ServeOptions options;
  options.m = 5;
  ServeWorkspace ws_a, ws_b;
  ws_a.Reserve(options.m, options.block_items);
  ws_b.Reserve(options.m, options.block_items);
  for (uint32_t u = 0; u < wals.num_users(); ++u) {
    auto direct = ServeTopM(wals, u, train.Row(u), options, &ws_a);
    auto mapped = ServeTopM(store_rec, u, train.Row(u), options, &ws_b);
    ASSERT_EQ(direct.size(), mapped.size());
    for (size_t r = 0; r < direct.size(); ++r) {
      EXPECT_EQ(direct[r].item, mapped[r].item);
      EXPECT_EQ(direct[r].score, mapped[r].score);
    }
  }
  // Dot-product models cannot materialize as OCuLaR.
  EXPECT_TRUE(store->MaterializeOcular().status().IsFailedPrecondition());
  std::remove(path.c_str());
}

TEST(ModelStoreTest, SaveValidation) {
  TrainedModel t = TrainSmallModel();
  // Config/model dim mismatch (lost use_biases flag) is rejected.
  OcularConfig wrong = t.config;
  wrong.k = t.config.k + 1;
  EXPECT_TRUE(SaveModelBinary(t.model, wrong, TempPath("never.oclr"))
                  .IsInvalidArgument());
  // Overlong algorithm tag.
  BinaryModelMeta meta;
  meta.k = 2;
  meta.algorithm = "a-very-long-algorithm-tag";
  EXPECT_TRUE(SaveFactorsBinary(meta, DenseMatrix(2, 2, 0.5),
                                DenseMatrix(2, 2, 0.5), TempPath("never.oclr"))
                  .IsInvalidArgument());
  // Factor/k mismatch.
  meta.algorithm = "x";
  meta.k = 3;
  EXPECT_TRUE(SaveFactorsBinary(meta, DenseMatrix(2, 2, 0.5),
                                DenseMatrix(2, 2, 0.5), TempPath("never.oclr"))
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace ocular
