// Property-based suites: invariants swept over seeds, dimensions, and
// hyper-parameters with parameterized gtest. These complement the
// example-based unit tests with broad input coverage.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "common/rng.h"
#include "core/fold_in.h"
#include "core/ocular_trainer.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "parallel/parallel_trainer.h"
#include "test_util.h"

namespace ocular {
namespace {

// Shared builder from test_util.h; `density`-parameterized random matrix.
constexpr auto RandomInteractions = test::RandomCsrDense;

// -------- Trainer invariants across (seed, K, lambda, variant, biases) --

class TrainerInvariantTest
    : public ::testing::TestWithParam<
          std::tuple<uint64_t, uint32_t, double, bool, bool>> {};

TEST_P(TrainerInvariantTest, ObjectiveMonotoneFactorsNonNegative) {
  const auto [seed, k, lambda, relative, biases] = GetParam();
  CsrMatrix r = RandomInteractions(40, 30, 0.1, seed);
  OcularConfig cfg;
  cfg.k = k;
  cfg.lambda = lambda;
  cfg.variant = relative ? OcularVariant::kRelative : OcularVariant::kAbsolute;
  cfg.use_biases = biases;
  cfg.max_sweeps = 12;
  cfg.tolerance = 0.0;
  cfg.seed = seed + 1;
  OcularTrainer trainer(cfg);
  auto fit = trainer.Fit(r).value();

  // Q never increases (within fp slack).
  for (size_t s = 1; s < fit.trace.size(); ++s) {
    EXPECT_LE(fit.trace[s].objective,
              fit.trace[s - 1].objective +
                  1e-9 * std::abs(fit.trace[s - 1].objective))
        << "sweep " << s;
  }
  // Factors stay in the non-negative orthant and finite.
  EXPECT_TRUE(fit.model.Validate().ok());
  // Probabilities are proper.
  for (uint32_t u = 0; u < 5; ++u) {
    for (uint32_t i = 0; i < 5; ++i) {
      const double p = fit.model.Probability(u, i);
      EXPECT_GE(p, 0.0);
      EXPECT_LT(p, 1.0);
    }
  }
  // Elapsed times in the trace are non-decreasing.
  for (size_t s = 1; s < fit.trace.size(); ++s) {
    EXPECT_GE(fit.trace[s].seconds_elapsed,
              fit.trace[s - 1].seconds_elapsed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TrainerInvariantTest,
    ::testing::Combine(::testing::Values(1, 2, 3),          // seed
                       ::testing::Values(2u, 5u),           // K
                       ::testing::Values(0.0, 0.5, 10.0),   // lambda
                       ::testing::Bool(),                   // R-OCuLaR
                       ::testing::Bool()));                 // biases

// ------------- Parallel/serial equivalence across the same config axes --

class ParallelInvariantTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(ParallelInvariantTest, BitwiseEquivalence) {
  const auto [seed, biases] = GetParam();
  CsrMatrix r = RandomInteractions(50, 35, 0.08, seed);
  OcularConfig cfg;
  cfg.k = 4;
  cfg.lambda = 0.3;
  cfg.use_biases = biases;
  cfg.max_sweeps = 4;
  cfg.tolerance = 0.0;
  OcularTrainer serial(cfg);
  ParallelOcularTrainer parallel(cfg, 3);
  auto a = serial.Fit(r).value();
  auto b = parallel.Fit(r).value();
  EXPECT_EQ(a.model.user_factors(), b.model.user_factors());
  EXPECT_EQ(a.model.item_factors(), b.model.item_factors());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParallelInvariantTest,
                         ::testing::Combine(::testing::Values(4, 5, 6),
                                            ::testing::Bool()));

// ------------------------- Fold-in solves the user block to optimality --

class FoldInInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FoldInInvariantTest, FoldedFactorIsBlockOptimal) {
  CsrMatrix r = RandomInteractions(30, 25, 0.15, GetParam());
  OcularConfig cfg;
  cfg.k = 3;
  cfg.lambda = 0.5;
  cfg.max_sweeps = 50;
  OcularTrainer trainer(cfg);
  auto fit = trainer.Fit(r).value();

  // Fold in an arbitrary history and verify no further projected-gradient
  // step improves the block objective materially (stationarity).
  std::vector<uint32_t> history{0, 3, 7};
  auto f = FoldInUser(fit.model, cfg, history).value();

  const DenseMatrix& items = fit.model.item_factors();
  auto sums = items.ColumnSums();
  std::vector<double> complement(sums.begin(), sums.end());
  for (uint32_t i : history) {
    auto row = items.Row(i);
    for (uint32_t c = 0; c < 3; ++c) complement[c] -= row[c];
  }
  const double q_before = internal::BlockObjective(
      f, history, items, complement, cfg.lambda, 1.0, {});
  internal::BlockWorkspace ws;
  ws.Reserve(cfg.k, history.size());
  internal::ProjectedGradientStep(f, history, items, sums, cfg.lambda, 1.0,
                                  {}, cfg, /*frozen_coord=*/-1, &ws);
  const double q_after = internal::BlockObjective(
      f, history, items, complement, cfg.lambda, 1.0, {});
  EXPECT_NEAR(q_after, q_before, 1e-6 * std::max(1.0, std::abs(q_before)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldInInvariantTest,
                         ::testing::Range<uint64_t>(10, 15));

// ------------------------------------ Evaluation harness sanity sweeps --

class EvalInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvalInvariantTest, OracleDominatesAndMetricsBounded) {
  CsrMatrix all = RandomInteractions(40, 30, 0.12, GetParam());
  Rng rng(GetParam() * 13 + 1);
  auto split = SplitInteractions(all, 0.7, &rng).value();

  class Oracle : public Recommender {
   public:
    explicit Oracle(const CsrMatrix& t) : t_(t) {}
    std::string name() const override { return "oracle"; }
    Status Fit(const CsrMatrix&) override { return Status::OK(); }
    double Score(uint32_t u, uint32_t i) const override {
      return t_.HasEntry(u, i) ? 1.0 : 0.0;
    }
    uint32_t num_users() const override { return t_.num_rows(); }
    uint32_t num_items() const override { return t_.num_cols(); }
    CsrMatrix t_;
  };
  class Anti : public Oracle {
   public:
    using Oracle::Oracle;
    double Score(uint32_t u, uint32_t i) const override {
      return -Oracle::Score(u, i);
    }
  };
  Oracle oracle(split.test);
  Anti anti(split.test);
  for (uint32_t m : {1u, 5u, 20u}) {
    auto good = EvaluateRankingAtM(oracle, split.train, split.test, m).value();
    auto bad = EvaluateRankingAtM(anti, split.train, split.test, m).value();
    EXPECT_GE(good.recall, bad.recall);
    EXPECT_GE(good.map, bad.map);
    for (const MetricsAtM* row : {&good, &bad}) {
      EXPECT_GE(row->recall, 0.0);
      EXPECT_LE(row->recall, 1.0);
      EXPECT_GE(row->map, 0.0);
      EXPECT_LE(row->map, 1.0);
      EXPECT_GE(row->ndcg, 0.0);
      EXPECT_LE(row->ndcg, 1.0);
      EXPECT_LE(row->mrr, 1.0);
      EXPECT_LE(row->hit_rate, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalInvariantTest,
                         ::testing::Range<uint64_t>(20, 26));

// -------------------------------------- Split algebra across densities --

class SplitInvariantTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(SplitInvariantTest, PartitionAlgebra) {
  const auto [seed, fraction] = GetParam();
  CsrMatrix all = RandomInteractions(35, 35, 0.1, seed);
  Rng rng(seed + 99);
  auto split = SplitInteractions(all, fraction, &rng).value();
  EXPECT_EQ(split.train.nnz() + split.test.nnz(), all.nnz());
  // No overlap; union equals original.
  for (auto [u, i] : split.train.ToPairs()) {
    EXPECT_TRUE(all.HasEntry(u, i));
    EXPECT_FALSE(split.test.HasEntry(u, i));
  }
  for (auto [u, i] : all.ToPairs()) {
    EXPECT_TRUE(split.train.HasEntry(u, i) || split.test.HasEntry(u, i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitInvariantTest,
    ::testing::Combine(::testing::Values(30, 31, 32),
                       ::testing::Values(0.25, 0.5, 0.75)));

// ----------------------------- Objective consistency: trick == naive  --

class ObjectiveInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ObjectiveInvariantTest, ComplementTrickMatchesNaiveEverywhere) {
  Rng rng(GetParam());
  CsrMatrix r = RandomInteractions(20, 15, 0.2, GetParam() + 7);
  DenseMatrix fu(20, 3), fi(15, 3);
  fu.FillUniform(&rng, 0.0, 1.5);
  fi.FillUniform(&rng, 0.0, 1.5);
  OcularModel model(std::move(fu), std::move(fi));
  const double lambda = rng.Uniform(0.0, 2.0);

  double naive = 0.0;
  for (uint32_t u = 0; u < 20; ++u) {
    for (uint32_t i = 0; i < 15; ++i) {
      const double dot = model.Affinity(u, i);
      if (r.HasEntry(u, i)) {
        naive -= std::log(std::max(1.0 - std::exp(-dot), 1e-12));
      } else {
        naive += dot;
      }
    }
  }
  naive += lambda * (model.user_factors().SquaredFrobeniusNorm() +
                     model.item_factors().SquaredFrobeniusNorm());
  EXPECT_NEAR(ObjectiveQ(model, r, lambda), naive,
              1e-9 * std::max(1.0, std::abs(naive)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjectiveInvariantTest,
                         ::testing::Range<uint64_t>(40, 48));

}  // namespace
}  // namespace ocular
