// Unit tests for src/data: dataset, loaders (with failure injection),
// splitters, synthetic generators.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/loaders.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "test_util.h"

namespace ocular {
namespace {

/// Writes `content` to a unique temp file; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& content) {
    static int counter = 0;
    path_ = ::testing::TempDir() + "/ocular_data_test_" +
            std::to_string(counter++) + ".txt";
    std::ofstream out(path_);
    out << content;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// --------------------------------------------------------------- Dataset

TEST(DatasetTest, LabelsAndSummary) {
  CsrMatrix m = CsrMatrix::FromPairs({{0, 1}, {1, 0}}, 2, 2).value();
  Dataset ds("demo", m);
  EXPECT_EQ(ds.UserLabel(0), "user 0");
  EXPECT_EQ(ds.ItemLabel(1), "item 1");
  ds.set_user_labels({"Alice", "Bob"});
  ds.set_item_labels({"Hammer", "Nails"});
  EXPECT_EQ(ds.UserLabel(1), "Bob");
  EXPECT_EQ(ds.ItemLabel(0), "Hammer");
  EXPECT_TRUE(ds.Validate().ok());
  EXPECT_NE(ds.Summary().find("demo"), std::string::npos);
  EXPECT_NE(ds.Summary().find("2 users"), std::string::npos);
}

TEST(DatasetTest, ValidateRejectsLabelMismatch) {
  CsrMatrix m = CsrMatrix::FromPairs({{0, 1}}, 2, 2).value();
  Dataset ds("bad", m);
  ds.set_user_labels({"only-one"});
  EXPECT_TRUE(ds.Validate().IsInvalidArgument());
}

// --------------------------------------------------------------- Loaders

TEST(LoadersTest, MovieLens100KThresholdAndCompaction) {
  TempFile f(
      "10\t100\t5\t881250949\n"
      "10\t200\t2\t881250950\n"   // below threshold -> dropped
      "20\t100\t3\t881250951\n"
      "20\t300\t4\t881250952\n");
  auto ds = LoadMovieLens100K(f.path()).value();
  EXPECT_EQ(ds.num_users(), 2u);   // ids 10, 20 compacted
  EXPECT_EQ(ds.num_items(), 2u);   // items 100, 300 (200 dropped entirely)
  EXPECT_EQ(ds.num_interactions(), 3u);
}

TEST(LoadersTest, MovieLens1MFormat) {
  TempFile f(
      "1::1193::5::978300760\n"
      "1::661::3::978302109\n"
      "2::1193::1::978298413\n");
  auto ds = LoadMovieLens1M(f.path()).value();
  EXPECT_EQ(ds.num_users(), 1u);  // user 2's only rating is below threshold
  EXPECT_EQ(ds.num_interactions(), 2u);
}

TEST(LoadersTest, NetflixPerMovieFormat) {
  TempFile f(
      "1:\n"
      "6,3,2005-09-06\n"
      "7,5,2005-05-13\n"
      "8,2,2005-10-19\n"
      "2:\n"
      "6,4,2005-09-06\n");
  auto ds = LoadNetflix({f.path()}).value();
  EXPECT_EQ(ds.num_interactions(), 3u);  // user 8 dropped (rating 2)
  EXPECT_EQ(ds.num_users(), 2u);
  EXPECT_EQ(ds.num_items(), 2u);
}

TEST(LoadersTest, NetflixRejectsRatingBeforeHeader) {
  TempFile f("6,3,2005-09-06\n");
  EXPECT_TRUE(LoadNetflix({f.path()}).status().IsParseError());
}

TEST(LoadersTest, CsvPairsWithComments) {
  TempFile f(
      "# comment line\n"
      "0 5\n"
      "1 5\n"
      "1 6\n");
  CsvOptions opts;
  opts.compact_ids = false;
  auto ds = LoadCsv(f.path(), opts).value();
  EXPECT_EQ(ds.num_users(), 2u);
  EXPECT_EQ(ds.num_items(), 7u);  // raw ids preserved
  EXPECT_EQ(ds.num_interactions(), 3u);
  EXPECT_TRUE(ds.interactions().HasEntry(1, 6));
}

TEST(LoadersTest, CsvLinePerUserCiteULikeStyle) {
  // First token = item count (CiteULike users.dat convention).
  TempFile f(
      "2 13 17\n"
      "1 5\n"
      "3 1 2 3\n");
  CsvOptions opts;
  opts.line_per_user = true;
  auto ds = LoadCsv(f.path(), opts).value();
  EXPECT_EQ(ds.num_users(), 3u);
  EXPECT_EQ(ds.num_interactions(), 6u);
  EXPECT_TRUE(ds.interactions().HasEntry(0, 13));
  EXPECT_TRUE(ds.interactions().HasEntry(2, 3));
}

TEST(LoadersTest, CsvWithRatingColumn) {
  TempFile f(
      "0,10,4.0\n"
      "0,11,2.0\n"
      "1,10,3.0\n");
  CsvOptions opts;
  opts.delimiter = ',';
  opts.rating_column = 2;
  auto ds = LoadCsv(f.path(), opts).value();
  EXPECT_EQ(ds.num_interactions(), 2u);  // 2.0 dropped
}

TEST(LoadersTest, MissingFileIsIOError) {
  EXPECT_TRUE(LoadMovieLens100K("/nonexistent/file").status().IsIOError());
  EXPECT_TRUE(LoadCsv("/nonexistent/file").status().IsIOError());
}

TEST(LoadersTest, MalformedLinesAreParseErrors) {
  TempFile bad_fields("1\t2\n");  // too few fields for ml-100k
  EXPECT_TRUE(LoadMovieLens100K(bad_fields.path()).status().IsParseError());
  TempFile bad_int("a\tb\t3\t0\n");
  EXPECT_TRUE(LoadMovieLens100K(bad_int.path()).status().IsParseError());
  TempFile bad_rating("1\t2\tx\t0\n");
  EXPECT_TRUE(LoadMovieLens100K(bad_rating.path()).status().IsParseError());
}

TEST(LoadersTest, GarbageBytesAreParseErrorsNotCrashes) {
  // Binary junk, partial lines, embedded NULs: every loader must return a
  // clean ParseError (or succeed on the benign prefix), never crash.
  std::string junk;
  Rng rng(97);
  for (int b = 0; b < 512; ++b) {
    junk.push_back(static_cast<char>(rng.UniformInt(uint64_t{256})));
  }
  TempFile f(junk);
  auto ml = LoadMovieLens100K(f.path());
  EXPECT_TRUE(!ml.ok() || ml->num_interactions() == 0);
  auto ml1m = LoadMovieLens1M(f.path());
  EXPECT_TRUE(!ml1m.ok() || ml1m->num_interactions() == 0);
  auto nf = LoadNetflix({f.path()});
  EXPECT_TRUE(!nf.ok() || nf->num_interactions() == 0);
  auto csv = LoadCsv(f.path());
  EXPECT_TRUE(!csv.ok() || csv->num_interactions() == 0);
  CsvOptions lpu;
  lpu.line_per_user = true;
  auto cul = LoadCsv(f.path(), lpu);
  EXPECT_TRUE(!cul.ok() || cul->num_interactions() == 0);
}

TEST(LoadersTest, SaveCsvRoundTrips) {
  CsrMatrix m =
      CsrMatrix::FromPairs({{0, 1}, {0, 3}, {2, 0}}, 3, 4).value();
  Dataset ds("rt", m);
  const std::string path = ::testing::TempDir() + "/ocular_roundtrip.tsv";
  ASSERT_TRUE(SaveCsv(ds, path).ok());
  CsvOptions opts;
  opts.delimiter = '\t';
  opts.compact_ids = false;
  auto loaded = LoadCsv(path, opts).value();
  EXPECT_EQ(loaded.num_interactions(), 3u);
  EXPECT_TRUE(loaded.interactions().HasEntry(2, 0));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- Splits

using test::RandomCsr;

TEST(SplitTest, PartitionIsDisjointAndComplete) {
  CsrMatrix m = RandomCsr(50, 40, 800, 1);
  Rng rng(2);
  auto split = SplitInteractions(m, 0.75, &rng).value();
  EXPECT_EQ(split.train.num_rows(), m.num_rows());
  EXPECT_EQ(split.test.num_cols(), m.num_cols());
  EXPECT_EQ(split.train.nnz() + split.test.nnz(), m.nnz());
  for (auto [u, i] : split.test.ToPairs()) {
    EXPECT_TRUE(m.HasEntry(u, i));
    EXPECT_FALSE(split.train.HasEntry(u, i));
  }
  // ~75% in train (binomial, generous tolerance).
  const double frac =
      static_cast<double>(split.train.nnz()) / static_cast<double>(m.nnz());
  EXPECT_NEAR(frac, 0.75, 0.08);
}

TEST(SplitTest, ExtremeFractions) {
  CsrMatrix m = RandomCsr(20, 20, 100, 3);
  Rng rng(4);
  auto all_train = SplitInteractions(m, 1.0, &rng).value();
  EXPECT_EQ(all_train.train.nnz(), m.nnz());
  EXPECT_EQ(all_train.test.nnz(), 0u);
  auto all_test = SplitInteractions(m, 0.0, &rng).value();
  EXPECT_EQ(all_test.test.nnz(), m.nnz());
}

TEST(SplitTest, InvalidArguments) {
  CsrMatrix m = RandomCsr(5, 5, 10, 5);
  Rng rng(6);
  EXPECT_TRUE(SplitInteractions(m, 1.5, &rng).status().IsInvalidArgument());
  EXPECT_TRUE(SplitInteractions(m, -0.1, &rng).status().IsInvalidArgument());
  EXPECT_TRUE(SplitInteractions(m, 0.5, nullptr).status().IsInvalidArgument());
}

TEST(SplitTest, LeaveKOutHoldsExactlyK) {
  CsrMatrix m = RandomCsr(30, 60, 900, 7);
  Rng rng(8);
  auto split = LeaveKOut(m, 2, &rng).value();
  EXPECT_EQ(split.train.nnz() + split.test.nnz(), m.nnz());
  for (uint32_t u = 0; u < m.num_rows(); ++u) {
    if (m.RowDegree(u) > 2) {
      EXPECT_EQ(split.test.RowDegree(u), 2u) << "user " << u;
    } else {
      EXPECT_EQ(split.test.RowDegree(u), 0u) << "user " << u;
    }
  }
}

TEST(SplitTest, KFoldCoversEachEntryExactlyOnce) {
  CsrMatrix m = RandomCsr(25, 25, 300, 9);
  Rng rng(10);
  auto folds = KFoldSplits(m, 4, &rng).value();
  ASSERT_EQ(folds.size(), 4u);
  size_t total_test = 0;
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.nnz() + fold.test.nnz(), m.nnz());
    total_test += fold.test.nnz();
  }
  EXPECT_EQ(total_test, m.nnz());  // each entry tests in exactly one fold
}

TEST(SplitTest, KFoldRejectsBadArgs) {
  CsrMatrix m = RandomCsr(5, 5, 10, 11);
  Rng rng(12);
  EXPECT_TRUE(KFoldSplits(m, 1, &rng).status().IsInvalidArgument());
}

TEST(SplitTest, SampleFractionSizes) {
  CsrMatrix m = RandomCsr(40, 40, 600, 13);
  Rng rng(14);
  auto half = SampleFraction(m, 0.5, &rng).value();
  EXPECT_NEAR(static_cast<double>(half.nnz()),
              static_cast<double>(m.nnz()) * 0.5, 1.0);
  for (auto [u, i] : half.ToPairs()) EXPECT_TRUE(m.HasEntry(u, i));
  EXPECT_EQ(SampleFraction(m, 1.0, &rng).value().nnz(), m.nnz());
  EXPECT_EQ(SampleFraction(m, 0.0, &rng).value().nnz(), 0u);
}

// ------------------------------------------------------------- Synthetic

TEST(SyntheticTest, PlantedShapeAndValidity) {
  PlantedCoClusterConfig cfg;
  cfg.num_users = 80;
  cfg.num_items = 60;
  cfg.num_clusters = 5;
  Rng rng(15);
  auto data = GeneratePlantedCoClusters(cfg, &rng).value();
  EXPECT_EQ(data.dataset.num_users(), 80u);
  EXPECT_EQ(data.dataset.num_items(), 60u);
  EXPECT_GT(data.dataset.num_interactions(), 0u);
  EXPECT_EQ(data.user_factors.rows(), 80u);
  EXPECT_EQ(data.user_factors.cols(), 5u);
  EXPECT_EQ(data.cluster_users.size(), 5u);
}

TEST(SyntheticTest, TrueProbabilityMatchesFactors) {
  PlantedCoClusterConfig cfg;
  cfg.num_users = 10;
  cfg.num_items = 10;
  cfg.num_clusters = 2;
  Rng rng(16);
  auto data = GeneratePlantedCoClusters(cfg, &rng).value();
  for (uint32_t u = 0; u < 10; ++u) {
    for (uint32_t i = 0; i < 10; ++i) {
      const double p = data.TrueProbability(u, i);
      EXPECT_GE(p, 0.0);
      EXPECT_LT(p, 1.0);
    }
  }
}

TEST(SyntheticTest, EdgesConcentrateInsideClusters) {
  PlantedCoClusterConfig cfg;
  cfg.num_users = 200;
  cfg.num_items = 150;
  cfg.num_clusters = 4;
  cfg.noise = 0.0;
  Rng rng(17);
  auto data = GeneratePlantedCoClusters(cfg, &rng).value();
  // Without noise every edge must be inside at least one planted cluster,
  // i.e. its true probability is positive.
  for (auto [u, i] : data.dataset.interactions().ToPairs()) {
    EXPECT_GT(data.TrueProbability(u, i), 0.0);
  }
}

TEST(SyntheticTest, RejectsBadConfig) {
  Rng rng(18);
  PlantedCoClusterConfig cfg;
  cfg.num_users = 0;
  EXPECT_TRUE(GeneratePlantedCoClusters(cfg, &rng).status()
                  .IsInvalidArgument());
  cfg.num_users = 10;
  cfg.num_clusters = 0;
  EXPECT_TRUE(GeneratePlantedCoClusters(cfg, &rng).status()
                  .IsInvalidArgument());
  cfg.num_clusters = 2;
  cfg.strength_min = 2.0;
  cfg.strength_max = 1.0;
  EXPECT_TRUE(GeneratePlantedCoClusters(cfg, &rng).status()
                  .IsInvalidArgument());
  cfg.strength_min = 1.0;
  EXPECT_TRUE(GeneratePlantedCoClusters(cfg, nullptr).status()
                  .IsInvalidArgument());
}

TEST(SyntheticTest, PaperToyMatchesFigureOne) {
  Dataset toy = MakePaperToyDataset();
  EXPECT_EQ(toy.num_users(), 12u);
  EXPECT_EQ(toy.num_items(), 12u);
  const CsrMatrix& m = toy.interactions();
  // User 6 has items 1-3 and 5-9 but NOT 4 (the headline recommendation).
  for (uint32_t i : {1u, 2u, 3u, 5u, 6u, 7u, 8u, 9u}) {
    EXPECT_TRUE(m.HasEntry(6, i)) << i;
  }
  EXPECT_FALSE(m.HasEntry(6, 4));
  // Users 4, 5 bought items 1-4.
  for (uint32_t i : {1u, 2u, 3u, 4u}) {
    EXPECT_TRUE(m.HasEntry(4, i));
    EXPECT_TRUE(m.HasEntry(5, i));
  }
  // Users 7-9 bought items 4-9.
  for (uint32_t u : {7u, 8u, 9u}) {
    for (uint32_t i : {4u, 5u, 6u, 7u, 8u, 9u}) EXPECT_TRUE(m.HasEntry(u, i));
  }
  // Rows 3, 10, 11 and columns 0, 10, 11 are empty.
  EXPECT_EQ(m.RowDegree(3), 0u);
  EXPECT_EQ(m.RowDegree(10), 0u);
  EXPECT_EQ(m.RowDegree(11), 0u);
  auto col_deg = m.ColumnDegrees();
  EXPECT_EQ(col_deg[0], 0u);
  EXPECT_EQ(col_deg[10], 0u);
  EXPECT_EQ(col_deg[11], 0u);
  EXPECT_TRUE(toy.has_user_labels());
  EXPECT_EQ(toy.UserLabel(6), "Client 6");
}

TEST(SyntheticTest, ShapedGeneratorsScale) {
  Rng rng(19);
  auto ml = MakeMovieLensLike(0.02, &rng).value();
  // Users scale linearly; items by sqrt(scale) (see MakeShaped).
  EXPECT_NEAR(ml.dataset.num_users(), 6040 * 0.02, 2);
  EXPECT_NEAR(ml.dataset.num_items(), 3706 * std::sqrt(0.02), 2);
  EXPECT_GT(ml.dataset.num_interactions(), 100u);
  EXPECT_EQ(ml.dataset.name(), "movielens-like");
  // Mean positives-per-user tracks the real dataset's ~95 (within noise;
  // some users are idiosyncratic/empty by design).
  const double deg = static_cast<double>(ml.dataset.num_interactions()) /
                     ml.dataset.num_users();
  EXPECT_GT(deg, 40.0);
  EXPECT_LT(deg, 200.0);

  auto b2b = MakeB2BLike(0.005, &rng).value();
  EXPECT_EQ(b2b.dataset.name(), "b2b-like");
  EXPECT_GT(b2b.dataset.num_interactions(), 0u);

  EXPECT_TRUE(MakeMovieLensLike(0.0, &rng).status().IsInvalidArgument());
  EXPECT_TRUE(MakeMovieLensLike(1.5, &rng).status().IsInvalidArgument());
}

TEST(SyntheticTest, GeneratorIsDeterministicGivenSeed) {
  PlantedCoClusterConfig cfg;
  cfg.num_users = 50;
  cfg.num_items = 50;
  cfg.num_clusters = 3;
  Rng rng1(42), rng2(42);
  auto d1 = GeneratePlantedCoClusters(cfg, &rng1).value();
  auto d2 = GeneratePlantedCoClusters(cfg, &rng2).value();
  EXPECT_EQ(d1.dataset.interactions(), d2.dataset.interactions());
}

}  // namespace
}  // namespace ocular
