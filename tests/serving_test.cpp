// Tests for the serving layer: batch recommendation and ASCII renderers.

#include <gtest/gtest.h>

#include "baselines/knn.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/ocular_recommender.h"
#include "data/synthetic.h"
#include "serving/batch.h"
#include "serving/render.h"

namespace ocular {
namespace {

OcularRecommender TrainedToy() {
  OcularConfig cfg;
  cfg.k = 3;
  cfg.lambda = 0.05;
  cfg.max_sweeps = 150;
  cfg.seed = 1;
  OcularRecommender rec(cfg);
  OCULAR_CHECK(rec.Fit(MakePaperToyDataset().interactions()).ok());
  return rec;
}

TEST(BatchTest, MatchesPerUserRecommend) {
  Dataset toy = MakePaperToyDataset();
  OcularRecommender rec = TrainedToy();
  BatchOptions opts;
  opts.m = 3;
  opts.skip_cold_users = false;
  auto batch =
      RecommendForAllUsers(rec, toy.interactions(), opts).value();
  ASSERT_EQ(batch.recommendations.size(), 12u);
  for (uint32_t u = 0; u < 12; ++u) {
    auto direct = rec.Recommend(u, 3, toy.interactions());
    ASSERT_EQ(batch.recommendations[u].size(), direct.size()) << u;
    for (size_t r = 0; r < direct.size(); ++r) {
      EXPECT_EQ(batch.recommendations[u][r].item, direct[r].item);
      EXPECT_DOUBLE_EQ(batch.recommendations[u][r].score, direct[r].score);
    }
  }
}

TEST(BatchTest, ParallelMatchesSerial) {
  Dataset toy = MakePaperToyDataset();
  OcularRecommender rec = TrainedToy();
  BatchOptions opts;
  opts.m = 5;
  auto serial = RecommendForAllUsers(rec, toy.interactions(), opts).value();
  ThreadPool pool(3);
  auto parallel =
      RecommendForAllUsers(rec, toy.interactions(), opts, &pool).value();
  ASSERT_EQ(serial.recommendations.size(), parallel.recommendations.size());
  for (size_t u = 0; u < serial.recommendations.size(); ++u) {
    ASSERT_EQ(serial.recommendations[u].size(),
              parallel.recommendations[u].size());
    for (size_t r = 0; r < serial.recommendations[u].size(); ++r) {
      EXPECT_EQ(serial.recommendations[u][r].item,
                parallel.recommendations[u][r].item);
    }
  }
  EXPECT_EQ(serial.users_scored, parallel.users_scored);
  EXPECT_EQ(serial.total_items, parallel.total_items);
}

TEST(BatchTest, SkipsColdUsersAndFiltersByScore) {
  Dataset toy = MakePaperToyDataset();
  OcularRecommender rec = TrainedToy();
  BatchOptions opts;
  opts.m = 5;
  opts.skip_cold_users = true;
  opts.min_score = 0.5;
  auto batch = RecommendForAllUsers(rec, toy.interactions(), opts).value();
  // Users 3, 10, 11 have no history -> no lists.
  EXPECT_TRUE(batch.recommendations[3].empty());
  EXPECT_TRUE(batch.recommendations[10].empty());
  EXPECT_TRUE(batch.recommendations[11].empty());
  // Every surviving recommendation respects the score floor.
  for (const auto& list : batch.recommendations) {
    for (const auto& si : list) EXPECT_GE(si.score, 0.5);
  }
  // User 6's hole (item 4, ~0.82) survives.
  ASSERT_FALSE(batch.recommendations[6].empty());
  EXPECT_EQ(batch.recommendations[6][0].item, 4u);
  EXPECT_GT(batch.users_scored, 0u);
}

TEST(BatchTest, ValidatesArguments) {
  Dataset toy = MakePaperToyDataset();
  OcularRecommender rec = TrainedToy();
  BatchOptions opts;
  opts.m = 0;
  EXPECT_TRUE(RecommendForAllUsers(rec, toy.interactions(), opts)
                  .status()
                  .IsInvalidArgument());
  opts.m = 5;
  CsrMatrix wrong = CsrMatrix::FromPairs({{0, 0}}, 3, 3).value();
  EXPECT_TRUE(
      RecommendForAllUsers(rec, wrong, opts).status().IsInvalidArgument());
}

TEST(RenderTest, MatrixGlyphs) {
  Dataset toy = MakePaperToyDataset();
  OcularRecommender rec = TrainedToy();
  const std::string art =
      RenderInteractionMatrix(toy.interactions(), &rec.model());
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('o'), std::string::npos);  // the (6,4) hole
  EXPECT_NE(art.find('.'), std::string::npos);
  // 12 data rows + header + legend.
  size_t lines = std::count(art.begin(), art.end(), '\n');
  EXPECT_EQ(lines, 14u);
}

TEST(RenderTest, TruncatesLargeMatrices) {
  Rng rng(5);
  PlantedCoClusterConfig cfg;
  cfg.num_users = 100;
  cfg.num_items = 100;
  cfg.num_clusters = 3;
  auto data = GeneratePlantedCoClusters(cfg, &rng).value();
  RenderOptions opts;
  opts.max_users = 10;
  opts.max_items = 20;
  const std::string art =
      RenderInteractionMatrix(data.dataset.interactions(), nullptr, opts);
  EXPECT_NE(art.find("..."), std::string::npos);
  size_t lines = std::count(art.begin(), art.end(), '\n');
  EXPECT_EQ(lines, 13u);  // header + 10 rows + ellipsis + legend
}

TEST(RenderTest, CoClusterBlock) {
  Dataset toy = MakePaperToyDataset();
  OcularRecommender rec = TrainedToy();
  CoClusterOptions copts;
  copts.threshold = 0.5;
  auto clusters = ExtractCoClusters(rec.model(), copts);
  ASSERT_FALSE(clusters.empty());
  const std::string art =
      RenderCoClusterBlock(clusters[0], toy.interactions());
  EXPECT_NE(art.find("co-cluster"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace ocular
