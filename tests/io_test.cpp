// Tests for the I/O-adjacent extensions: command-line flag parsing, the
// JSON writer, model persistence, and dataset statistics.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/flags.h"
#include "common/json.h"
#include "common/rng.h"
#include "core/model_io.h"
#include "data/stats.h"
#include "data/synthetic.h"

namespace ocular {
namespace {

// ----------------------------------------------------------------- Flags

Flags ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags::Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, EqualsSyntax) {
  Flags f = ParseArgs({"--k=16", "--lambda=0.5", "--name=hello world"});
  EXPECT_EQ(f.GetInt("k", 0), 16);
  EXPECT_DOUBLE_EQ(f.GetDouble("lambda", 0), 0.5);
  EXPECT_EQ(f.GetString("name"), "hello world");
}

TEST(FlagsTest, SpaceSyntaxAndBareBooleans) {
  Flags f = ParseArgs({"--k", "8", "--verbose", "--path", "/tmp/x"});
  EXPECT_EQ(f.GetInt("k", 0), 8);
  EXPECT_TRUE(f.GetBool("verbose"));
  EXPECT_EQ(f.GetString("path"), "/tmp/x");
  EXPECT_FALSE(f.GetBool("absent"));
}

TEST(FlagsTest, PositionalArguments) {
  Flags f = ParseArgs({"train", "--k=4", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "train");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(FlagsTest, DefaultsAndMalformedValues) {
  Flags f = ParseArgs({"--k=notanumber"});
  EXPECT_EQ(f.GetInt("k", 7), 7);  // malformed -> default
  EXPECT_EQ(f.GetInt("missing", 9), 9);
  EXPECT_TRUE(f.Has("k"));
  EXPECT_FALSE(f.Has("missing"));
}

TEST(FlagsTest, RequireVariants) {
  Flags f = ParseArgs({"--k=5"});
  EXPECT_EQ(f.RequireInt("k").value(), 5);
  EXPECT_TRUE(f.RequireInt("absent").status().IsInvalidArgument());
  EXPECT_TRUE(f.RequireString("absent").status().IsInvalidArgument());
}

TEST(FlagsTest, BoolSpellings) {
  Flags f = ParseArgs({"--a=true", "--b=0", "--c=yes", "--d=false"});
  EXPECT_TRUE(f.GetBool("a"));
  EXPECT_FALSE(f.GetBool("b", true));
  EXPECT_TRUE(f.GetBool("c"));
  EXPECT_FALSE(f.GetBool("d", true));
}

TEST(FlagsTest, LaterDuplicateWins) {
  Flags f = ParseArgs({"--k=1", "--k=2"});
  EXPECT_EQ(f.GetInt("k", 0), 2);
}

// ------------------------------------------------------------------ JSON

TEST(JsonWriterTest, NestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("user");
  w.Int(6);
  w.Key("scores");
  w.BeginArray();
  w.Double(0.5);
  w.Double(1.0);
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.EndObject();
  w.Key("nothing");
  w.Null();
  w.EndObject();
  EXPECT_EQ(w.str(),
            R"({"user":6,"scores":[0.5,1],"nested":{"ok":true},"nothing":null})");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.String("a\"b\\c\nd\te\x01");
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(2.5);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,2.5]");
}

TEST(JsonWriterTest, ArrayOfObjects) {
  JsonWriter w;
  w.BeginArray();
  for (int i = 0; i < 2; ++i) {
    w.BeginObject();
    w.Key("i");
    w.Int(i);
    w.EndObject();
  }
  w.EndArray();
  EXPECT_EQ(w.str(), R"([{"i":0},{"i":1}])");
}

// ------------------------------------------------------------ JSON parse

TEST(JsonValueTest, ParsesNestedDocument) {
  auto v = JsonValue::Parse(
      R"({"cmd":"recommend","user":3,"m":10,"opts":{"min_score":0.5},)"
      R"("exclude":[1,2,3],"fast":true,"note":null})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->Find("cmd")->string(), "recommend");
  EXPECT_EQ(v->Find("user")->number(), 3.0);
  EXPECT_DOUBLE_EQ(v->Find("opts")->Find("min_score")->number(), 0.5);
  ASSERT_TRUE(v->Find("exclude")->is_array());
  EXPECT_EQ(v->Find("exclude")->array().size(), 3u);
  EXPECT_EQ(v->Find("exclude")->array()[2].number(), 3.0);
  EXPECT_TRUE(v->Find("fast")->boolean());
  EXPECT_TRUE(v->Find("note")->is_null());
  EXPECT_EQ(v->Find("absent"), nullptr);
}

TEST(JsonValueTest, RoundTripsWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Key("label");
  w.String("a\"b\\c\nd\te");
  w.Key("scores");
  w.BeginArray();
  w.Double(0.25);
  w.Double(-1.5e-3);
  w.EndArray();
  w.EndObject();
  auto v = JsonValue::Parse(w.str());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Find("label")->string(), "a\"b\\c\nd\te");
  EXPECT_DOUBLE_EQ(v->Find("scores")->array()[0].number(), 0.25);
  EXPECT_DOUBLE_EQ(v->Find("scores")->array()[1].number(), -1.5e-3);
}

TEST(JsonValueTest, ParsesNumbersAndEscapes) {
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-0.5e2")->number(), -50.0);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("0")->number(), 0.0);
  EXPECT_EQ(JsonValue::Parse(R"("\u0041\u00e9")")->string(), "A\xc3\xa9");
  EXPECT_EQ(JsonValue::Parse(R"("\/")")->string(), "/");
  EXPECT_TRUE(JsonValue::Parse("  true  ")->boolean());
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",           "{",         "[1,2",        "{\"a\":}",  "{\"a\" 1}",
      "{'a':1}",    "01",        "1.",          "--1",       "1e",
      "tru",        "nul",       "\"unterminated", "\"bad\\q\"",
      "{\"a\":1}x", "[1,,2]",    "\"\\u12\"",   "[1] []",
  };
  for (const char* doc : bad) {
    EXPECT_TRUE(JsonValue::Parse(doc).status().IsParseError())
        << "accepted: " << doc;
  }
  // Nesting bomb is bounded, not stack-overflowed.
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_TRUE(JsonValue::Parse(deep).status().IsParseError());
}

TEST(JsonValueTest, DuplicateKeysFirstWins) {
  auto v = JsonValue::Parse(R"({"a":1,"a":2})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("a")->number(), 1.0);
  EXPECT_EQ(v->members().size(), 2u);
}

// -------------------------------------------------------------- Model IO

TEST(ModelIoTest, RoundTripsExactly) {
  Rng rng(3);
  DenseMatrix fu(7, 4), fi(5, 4);
  fu.FillUniform(&rng, 0.0, 2.0);
  fi.FillUniform(&rng, 0.0, 2.0);
  OcularModel model(fu, fi);
  OcularConfig cfg;
  cfg.k = 4;
  cfg.lambda = 0.125;
  cfg.variant = OcularVariant::kRelative;

  const std::string path = ::testing::TempDir() + "/ocular_model_rt.txt";
  ASSERT_TRUE(SaveModel(model, cfg, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->config.k, 4u);
  EXPECT_DOUBLE_EQ(loaded->config.lambda, 0.125);
  EXPECT_EQ(loaded->config.variant, OcularVariant::kRelative);
  // "%.17g" round-trips doubles exactly.
  EXPECT_EQ(loaded->model.user_factors(), model.user_factors());
  EXPECT_EQ(loaded->model.item_factors(), model.item_factors());
  std::remove(path.c_str());
}

TEST(ModelIoTest, BiasModelRoundTrips) {
  // Regression test: models trained with use_biases carry k+2 factor
  // columns; the file format must record the flag or reloading fails.
  Dataset toy = MakePaperToyDataset();
  OcularConfig cfg;
  cfg.k = 3;
  cfg.use_biases = true;
  cfg.max_sweeps = 10;
  OcularTrainer trainer(cfg);
  auto fit = trainer.Fit(toy.interactions()).value();
  const std::string path = ::testing::TempDir() + "/ocular_bias_model.txt";
  ASSERT_TRUE(SaveModel(fit.model, cfg, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->config.use_biases);
  EXPECT_EQ(loaded->config.TotalDims(), 5u);
  EXPECT_EQ(loaded->model.user_factors(), fit.model.user_factors());
  std::remove(path.c_str());
}

TEST(ModelIoTest, SaveRejectsConfigModelDimMismatch) {
  // A bias model saved with a bias-less config must be rejected loudly.
  OcularModel model(DenseMatrix(2, 5, 0.5), DenseMatrix(2, 5, 0.5));
  OcularConfig cfg;
  cfg.k = 3;  // TotalDims 3 != model.k() 5
  EXPECT_TRUE(SaveModel(model, cfg,
                        ::testing::TempDir() + "/never_written2.txt")
                  .IsInvalidArgument());
}

TEST(ModelIoTest, AcceptsLegacyConfigLineWithoutBiasesField) {
  const std::string path = ::testing::TempDir() + "/ocular_legacy_model.txt";
  {
    std::ofstream out(path);
    out << "ocular-model v1\n"
        << "k 2 lambda 0.5 variant absolute\n"
        << "users 1\n0.25 0.75\n"
        << "items 1\n0.5 0.125\n";
  }
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->config.use_biases);
  EXPECT_DOUBLE_EQ(loaded->model.user_factors().At(0, 1), 0.75);
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsCorruptFiles) {
  const std::string path = ::testing::TempDir() + "/ocular_model_bad.txt";
  auto write = [&](const std::string& content) {
    std::ofstream out(path);
    out << content;
  };
  write("not a model\n");
  EXPECT_TRUE(LoadModel(path).status().IsParseError());
  write("ocular-model v1\nk 2 lambda x variant absolute\n");
  EXPECT_TRUE(LoadModel(path).status().IsParseError());
  write("ocular-model v1\nk 2 lambda 1 variant weird\n");
  EXPECT_TRUE(LoadModel(path).status().IsParseError());
  write("ocular-model v1\nk 2 lambda 1 variant absolute\nusers 1\n0.5\n");
  EXPECT_TRUE(LoadModel(path).status().IsParseError());  // wrong arity
  write("ocular-model v1\nk 2 lambda 1 variant absolute\nusers 1\n"
        "0.5 -0.25\nitems 0\n");
  EXPECT_TRUE(LoadModel(path).status().IsParseError());  // negative factor
  EXPECT_TRUE(LoadModel("/nonexistent/model").status().IsIOError());
  std::remove(path.c_str());
}

TEST(ModelIoTest, SaveRejectsInvalidModel) {
  DenseMatrix fu(1, 1, -1.0);  // negative factor: invalid
  OcularModel model(fu, DenseMatrix(1, 1, 0.5));
  OcularConfig cfg;
  cfg.k = 1;
  EXPECT_FALSE(SaveModel(model, cfg,
                         ::testing::TempDir() + "/never_written.txt")
                   .ok());
}

// ----------------------------------------------------------------- Stats

TEST(StatsTest, DegreeSummaryHandChecked) {
  auto s = SummarizeDegrees({0, 1, 2, 3, 4});
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_EQ(s.zeros, 1u);
  // Gini of {0,1,2,3,4}: 2*(0*1+1*2+2*3+3*4+4*5)/(5*10) - 6/5 = 0.4.
  EXPECT_NEAR(s.gini, 0.4, 1e-12);
}

TEST(StatsTest, UniformDegreesHaveZeroGini) {
  auto s = SummarizeDegrees({5, 5, 5, 5});
  EXPECT_NEAR(s.gini, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
}

TEST(StatsTest, EmptyInput) {
  auto s = SummarizeDegrees({});
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.gini, 0.0);
}

TEST(StatsTest, DatasetStatsEndToEnd) {
  CsrMatrix m =
      CsrMatrix::FromPairs({{0, 0}, {0, 1}, {1, 0}, {2, 2}}, 4, 3).value();
  auto stats = ComputeDatasetStats(m);
  EXPECT_EQ(stats.num_users, 4u);
  EXPECT_EQ(stats.num_items, 3u);
  EXPECT_EQ(stats.num_positives, 4u);
  EXPECT_EQ(stats.user_degrees.zeros, 1u);  // user 3
  EXPECT_EQ(stats.item_degrees.max, 2u);    // item 0
  const std::string report = RenderDatasetStats(stats);
  EXPECT_NE(report.find("users 4"), std::string::npos);
  EXPECT_NE(report.find("gini"), std::string::npos);
}

TEST(StatsTest, ZipfItemsHaveHigherGiniThanUniform) {
  Rng rng(21);
  PlantedCoClusterConfig cfg;
  cfg.num_users = 150;
  cfg.num_items = 200;
  cfg.num_clusters = 6;
  cfg.item_popularity_zipf = 1.0;
  auto skewed = GeneratePlantedCoClusters(cfg, &rng).value();
  cfg.item_popularity_zipf = 0.0;
  auto flat = GeneratePlantedCoClusters(cfg, &rng).value();
  const double gini_skewed =
      ComputeDatasetStats(skewed.dataset.interactions()).item_degrees.gini;
  const double gini_flat =
      ComputeDatasetStats(flat.dataset.interactions()).item_degrees.gini;
  EXPECT_GT(gini_skewed, gini_flat);
}

}  // namespace
}  // namespace ocular
