// Integration tests: end-to-end train -> evaluate -> explain flows across
// modules, on planted data with known structure.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/knn.h"
#include "baselines/wals.h"
#include "common/rng.h"
#include "core/explain.h"
#include "core/ocular_recommender.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/grid_search.h"
#include "eval/metrics.h"
#include "graph/louvain.h"

namespace ocular {
namespace {

PlantedCoClusterData MediumPlanted(uint64_t seed) {
  PlantedCoClusterConfig cfg;
  cfg.num_users = 150;
  cfg.num_items = 100;
  cfg.num_clusters = 5;
  cfg.user_membership_prob = 0.2;
  cfg.item_membership_prob = 0.2;
  cfg.noise = 1e-3;
  Rng rng(seed);
  return GeneratePlantedCoClusters(cfg, &rng).value();
}

TEST(IntegrationTest, OcularBeatsPopularityOnPlantedData) {
  auto data = MediumPlanted(1);
  Rng rng(2);
  auto split =
      SplitInteractions(data.dataset.interactions(), 0.75, &rng).value();

  OcularConfig cfg;
  cfg.k = 8;
  cfg.lambda = 0.5;
  cfg.max_sweeps = 40;
  OcularRecommender ocular(cfg);
  ASSERT_TRUE(ocular.Fit(split.train).ok());
  const auto ocular_metrics =
      EvaluateRankingAtM(ocular, split.train, split.test, 20).value();

  PopularityRecommender pop;
  ASSERT_TRUE(pop.Fit(split.train).ok());
  const auto pop_metrics =
      EvaluateRankingAtM(pop, split.train, split.test, 20).value();

  EXPECT_GT(ocular_metrics.recall, pop_metrics.recall);
  EXPECT_GT(ocular_metrics.map, pop_metrics.map);
  EXPECT_GT(ocular_metrics.recall, 0.3)
      << "planted structure should be highly recoverable";
}

TEST(IntegrationTest, OcularRecoversPlantedProbabilities) {
  // Model-recovery check: the fitted P[r_ui=1] should correlate with the
  // planted generative probabilities — in-cluster unknown cells must score
  // far above out-of-cluster cells.
  auto data = MediumPlanted(3);
  OcularConfig cfg;
  cfg.k = 8;
  cfg.lambda = 0.3;
  cfg.max_sweeps = 60;
  OcularRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(data.dataset.interactions()).ok());

  Rng rng(4);
  double in_sum = 0.0, out_sum = 0.0;
  int in_n = 0, out_n = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    const uint32_t u =
        static_cast<uint32_t>(rng.UniformInt(data.dataset.num_users()));
    const uint32_t i =
        static_cast<uint32_t>(rng.UniformInt(data.dataset.num_items()));
    if (data.dataset.interactions().HasEntry(u, i)) continue;  // unknowns only
    if (data.TrueProbability(u, i) > 0.3) {
      in_sum += rec.Score(u, i);
      ++in_n;
    } else if (data.TrueProbability(u, i) == 0.0) {
      out_sum += rec.Score(u, i);
      ++out_n;
    }
  }
  ASSERT_GT(in_n, 10);
  ASSERT_GT(out_n, 10);
  EXPECT_GT(in_sum / in_n, 3.0 * (out_sum / out_n));
}

TEST(IntegrationTest, ExplanationsAreConsistentWithRecommendations) {
  auto data = MediumPlanted(5);
  OcularConfig cfg;
  cfg.k = 8;
  cfg.lambda = 0.5;
  cfg.max_sweeps = 40;
  OcularRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(data.dataset.interactions()).ok());
  const CsrMatrix& train = data.dataset.interactions();
  int explained = 0;
  for (uint32_t u = 0; u < 20; ++u) {
    auto top = rec.Recommend(u, 3, train);
    for (const auto& si : top) {
      if (si.score < 0.2) continue;
      auto expl = ExplainRecommendation(rec.model(), train, u, si.item);
      ASSERT_TRUE(expl.ok());
      EXPECT_NEAR(expl->confidence, si.score, 1e-9);
      if (!expl->clauses.empty()) {
        ++explained;
        // Contributions must sum to at most the total affinity.
        double total = 0.0;
        for (const auto& clause : expl->clauses) {
          total += clause.contribution;
        }
        EXPECT_LE(total, rec.model().Affinity(u, si.item) + 1e-9);
      }
    }
  }
  EXPECT_GT(explained, 5) << "confident recs should come with evidence";
}

TEST(IntegrationTest, GridSearchSelectsReasonableLambda) {
  auto data = MediumPlanted(6);
  Rng rng(7);
  auto split =
      SplitInteractions(data.dataset.interactions(), 0.75, &rng).value();
  auto factory = [](const GridPoint& p) -> std::unique_ptr<Recommender> {
    OcularConfig cfg;
    cfg.k = p.k;
    cfg.lambda = p.lambda;
    cfg.max_sweeps = 25;
    return std::make_unique<OcularRecommender>(cfg);
  };
  auto result =
      GridSearch(factory, {4, 8}, {0.1, 1.0, 100.0}, split.train, split.test,
                 20)
          .value();
  ASSERT_EQ(result.cells.size(), 6u);
  // Extreme over-regularization should not win (Fig. 6: too much
  // regularization hurts).
  EXPECT_LT(result.best().point.lambda, 100.0);
  for (const auto& cell : result.cells) {
    EXPECT_GE(cell.train_seconds, 0.0);
  }
}

TEST(IntegrationTest, WalsAndOcularAgreeOnPlantedStructure) {
  // Not a horse race (Table I is the bench's job) — a consistency check
  // that two very different objectives rank the same planted holes highly.
  auto data = MediumPlanted(8);
  Rng rng(9);
  auto split =
      SplitInteractions(data.dataset.interactions(), 0.75, &rng).value();

  OcularConfig ocfg;
  ocfg.k = 8;
  ocfg.lambda = 0.5;
  ocfg.max_sweeps = 40;
  OcularRecommender ocular(ocfg);
  ASSERT_TRUE(ocular.Fit(split.train).ok());

  WalsConfig wcfg;
  wcfg.k = 8;
  wcfg.iterations = 10;
  WalsRecommender wals(wcfg);
  ASSERT_TRUE(wals.Fit(split.train).ok());

  const auto o = EvaluateRankingAtM(ocular, split.train, split.test, 20)
                     .value();
  const auto w =
      EvaluateRankingAtM(wals, split.train, split.test, 20).value();
  EXPECT_GT(o.recall, 0.25);
  EXPECT_GT(w.recall, 0.25);
  EXPECT_NEAR(o.recall, w.recall, 0.35);  // same ballpark, per Table I
}

TEST(IntegrationTest, ToyEndToEndMatchesPaperNarrative) {
  // Full Figure 1 -> Figure 3 pipeline: train, verify the probability
  // matrix shape, extract the three co-clusters, render the rationale.
  Dataset toy = MakePaperToyDataset();
  OcularConfig cfg;
  cfg.k = 3;
  cfg.lambda = 0.05;
  cfg.max_sweeps = 200;
  cfg.tolerance = 1e-8;
  cfg.seed = 1;
  OcularRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(toy.interactions()).ok());

  // Empty rows/columns get ~zero probability everywhere.
  for (uint32_t i = 0; i < 12; ++i) {
    EXPECT_LT(rec.Score(3, i), 0.05);
    EXPECT_LT(rec.Score(10, i), 0.05);
  }
  // The three planted blocks are found (allowing threshold wiggle).
  CoClusterOptions copts;
  copts.threshold = 0.5;
  copts.min_users = 2;
  copts.min_items = 2;
  auto clusters = ExtractCoClusters(rec.model(), copts);
  EXPECT_GE(clusters.size(), 2u);
  EXPECT_LE(clusters.size(), 3u);

  auto stats = ComputeCoClusterStats(clusters, toy.interactions());
  EXPECT_GT(stats.mean_density, 0.5)
      << "discovered co-clusters should be dense";

  auto expl =
      ExplainRecommendation(rec.model(), toy.interactions(), 6, 4).value();
  const std::string text = RenderExplanationText(expl, toy);
  EXPECT_NE(text.find("Client 6"), std::string::npos);
}

TEST(IntegrationTest, LouvainMissesOverlapThatOcularFinds) {
  // The Figure 2 story, quantified: of the toy example's candidate
  // recommendations, OCuLaR's co-clusters can justify (user 6, item 4),
  // while a non-overlapping partition must place user 6 in only one of
  // the two clusters that justify it.
  Dataset toy = MakePaperToyDataset();
  auto louvain =
      DetectCommunitiesLouvain(Graph::FromBipartite(toy.interactions()));
  const uint32_t user6 = 6;
  const uint32_t item4_node = 12 + 4;
  // user 6 gets exactly one community; check whether it shares with item 4.
  // Regardless of sharing, it cannot ALSO share a (different) community
  // covering its second interest — that is structural.
  EXPECT_LT(louvain.community[user6], louvain.num_communities);
  EXPECT_LT(louvain.community[item4_node], louvain.num_communities);

  OcularConfig cfg;
  cfg.k = 3;
  cfg.lambda = 0.05;
  cfg.max_sweeps = 200;
  cfg.seed = 1;
  OcularRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(toy.interactions()).ok());
  auto expl =
      ExplainRecommendation(rec.model(), toy.interactions(), 6, 4).value();
  EXPECT_GE(expl.clauses.size(), 2u)
      << "OCuLaR justifies the rec with BOTH overlapping co-clusters";
}

}  // namespace
}  // namespace ocular
