# Smoke test: drive the ocular CLI end-to-end (synth -> train -> evaluate).
# Run by ctest as:  cmake -DOCULAR_CLI=... -DWORK_DIR=... -P cli_smoke.cmake

file(MAKE_DIRECTORY ${WORK_DIR})
set(DATA ${WORK_DIR}/smoke.tsv)
set(MODEL ${WORK_DIR}/smoke.model)

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    list(JOIN ARGV " " cmdline)
    message(FATAL_ERROR "smoke step failed (exit ${rc}): ${cmdline}")
  endif()
endfunction()

run_step(${OCULAR_CLI} synth --dataset=b2b --scale=0.02 --seed=42 --output=${DATA})
run_step(${OCULAR_CLI} stats --input=${DATA})
run_step(${OCULAR_CLI} train --input=${DATA} --model=${MODEL} --k=8 --lambda=0.5 --sweeps=5)
run_step(${OCULAR_CLI} recommend --model=${MODEL} --input=${DATA} --user=0 --m=5)
run_step(${OCULAR_CLI} evaluate --input=${DATA} --k=8 --lambda=0.5 --m=10 --sweeps=5)
