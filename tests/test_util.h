// Shared test fixtures: a seeded RNG factory and tiny deterministic
// synthetic interaction matrices, so individual test files stop
// re-implementing the same builders.

#ifndef OCULAR_TESTS_TEST_UTIL_H_
#define OCULAR_TESTS_TEST_UTIL_H_

#include <cstdint>

#include "common/rng.h"
#include "sparse/coo.h"
#include "sparse/csr.h"

namespace ocular {
namespace test {

/// Default seed for tests that just need "some" deterministic randomness.
inline constexpr uint64_t kDefaultSeed = 42;

/// Seeded RNG factory — one call site to change if Rng's constructor or
/// seeding scheme ever evolves.
inline Rng MakeRng(uint64_t seed = kDefaultSeed) { return Rng(seed); }

/// Random sparse interaction matrix with `nnz` draws (duplicates collapse,
/// so the realized nnz may be slightly lower). Deterministic in `seed`.
inline CsrMatrix RandomCsr(uint32_t rows, uint32_t cols, size_t nnz,
                           uint64_t seed = kDefaultSeed) {
  Rng rng = MakeRng(seed);
  CooBuilder coo;
  for (size_t e = 0; e < nnz; ++e) {
    coo.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{rows})),
            static_cast<uint32_t>(rng.UniformInt(uint64_t{cols})));
  }
  return CsrMatrix::FromCoo(coo.Finalize(rows, cols).value());
}

/// Random matrix parameterized by density instead of an absolute count.
inline CsrMatrix RandomCsrDense(uint32_t rows, uint32_t cols, double density,
                                uint64_t seed = kDefaultSeed) {
  return RandomCsr(rows, cols, static_cast<size_t>(rows * cols * density),
                   seed);
}

/// Two disjoint dense blocks (users 0-9 x items 0-7, users 10-19 x items
/// 8-15) with a few holes: the easiest co-clustering instance — any
/// co-clustering method must nail it. Fully deterministic.
inline CsrMatrix TinyBlocksCsr() {
  CooBuilder coo;
  for (uint32_t u = 0; u < 10; ++u) {
    for (uint32_t i = 0; i < 8; ++i) {
      if ((u + i) % 9 != 0) coo.Add(u, i);  // block 1 with holes
    }
  }
  for (uint32_t u = 10; u < 20; ++u) {
    for (uint32_t i = 8; i < 16; ++i) {
      if ((u + i) % 9 != 0) coo.Add(u, i);  // block 2 with holes
    }
  }
  return CsrMatrix::FromCoo(coo.Finalize(20, 16).value());
}

}  // namespace test
}  // namespace ocular

#endif  // OCULAR_TESTS_TEST_UTIL_H_
