// Unit tests for src/common: Status/Result, Rng, strings, thread pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <set>

#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace ocular {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotImplemented),
            "NotImplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
}

Status FailingHelper() { return Status::Internal("boom"); }
Status PropagatingHelper() {
  OCULAR_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = PropagatingHelper();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "boom");
}

// ---------------------------------------------------------------- Result

Result<int> ParseOrFail(bool fail) {
  if (fail) return Status::ParseError("nope");
  return 42;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParseOrFail(false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = ParseOrFail(true);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> UsesAssignOrReturn(bool fail) {
  OCULAR_ASSIGN_OR_RETURN(int v, ParseOrFail(fail));
  return v + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(UsesAssignOrReturn(false).value(), 43);
  EXPECT_TRUE(UsesAssignOrReturn(true).status().IsParseError());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(uint64_t{10})];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(RngTest, UniformIntSignedRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(int64_t{-5}, int64_t{5});
    EXPECT_GE(v, -5);
    EXPECT_LT(v, 5);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, ZipfFavorsLowIndices) {
  Rng rng(23);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.Zipf(100, 1.0)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(29);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.Zipf(10, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(RngTest, SampleWithoutReplacementProperties) {
  Rng rng(31);
  for (uint64_t n : {10ULL, 100ULL, 1000ULL}) {
    for (uint64_t k : std::initializer_list<uint64_t>{0, 1, 5, n / 2, n}) {
      auto sample = rng.SampleWithoutReplacement(n, k);
      ASSERT_EQ(sample.size(), k);
      EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
      std::set<uint64_t> uniq(sample.begin(), sample.end());
      EXPECT_EQ(uniq.size(), k) << "duplicates in sample";
      for (uint64_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.Shuffle(&v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng a(41);
  Rng b = a.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

// --------------------------------------------------------------- strings

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitAnyDropsEmpties) {
  auto parts = SplitAny("  a \t b\t\tc ", " \t");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitSeparatorMultiChar) {
  auto parts = SplitSeparator("1::2::3", "::");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "2");
  // Separator absent -> whole string.
  EXPECT_EQ(SplitSeparator("abc", "::").size(), 1u);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StringsTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64(" -7 ").value(), -7);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("4.5").ok());
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringsTest, JoinAndFormat) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(0), "0");
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(),
                   [&](size_t i) { hits[i].fetch_add(1); }, 1);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(5, 5, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForChunkedSumsCorrectly) {
  ThreadPool pool(4);
  std::atomic<long long> total{0};
  pool.ParallelForChunked(1, 10001, [&](size_t lo, size_t hi) {
    long long local = 0;
    for (size_t i = lo; i < hi; ++i) local += static_cast<long long>(i);
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), 10000LL * 10001 / 2);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(0, 64, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

// ----------------------------------------------------------------- timer

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch w;
  // A trivial spin so elapsed > 0 on any clock resolution.
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(w.ElapsedSeconds(), 0.0);
  EXPECT_GE(w.ElapsedMicros(), 0);
  w.Restart();
  EXPECT_LT(w.ElapsedSeconds(), 1.0);
}

// --------------------------------------------------------------- logging

TEST(LoggingTest, LevelThresholdRoundTrips) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  OCULAR_LOG(kInfo) << "should be filtered";
  SetLogLevel(prev);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  OCULAR_CHECK(1 + 1 == 2) << "never shown";
  OCULAR_CHECK_EQ(4, 4);
  OCULAR_CHECK_LT(1, 2);
  OCULAR_CHECK_GE(2, 2);
}

}  // namespace
}  // namespace ocular
