// Tests for the non-overlapping co-clustering recommender (George &
// Merugu style) and implicit-feedback ALS (Hu-Koren-Volinsky).

#include <gtest/gtest.h>

#include <set>

#include "baselines/coclust.h"
#include "baselines/ials.h"
#include "baselines/knn.h"
#include "common/rng.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "sparse/coo.h"
#include "test_util.h"

namespace ocular {
namespace {

// Shared deterministic two-block instance from test_util.h.
CsrMatrix DisjointBlocks() { return test::TinyBlocksCsr(); }

TEST(CoclustTest, ConfigValidation) {
  CoclustConfig c;
  EXPECT_TRUE(c.Validate().ok());
  c.user_clusters = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = CoclustConfig{};
  c.iterations = 0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(CoclustTest, RecoversDisjointBlocks) {
  CoclustConfig cfg;
  cfg.user_clusters = 2;
  cfg.item_clusters = 2;
  cfg.iterations = 30;
  cfg.seed = 3;
  CoclustRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(DisjointBlocks()).ok());
  // Users 0-9 end in one cluster, 10-19 in the other.
  const auto& uc = rec.user_clusters();
  for (uint32_t u = 1; u < 10; ++u) EXPECT_EQ(uc[u], uc[0]);
  for (uint32_t u = 11; u < 20; ++u) EXPECT_EQ(uc[u], uc[10]);
  EXPECT_NE(uc[0], uc[10]);
  // Same for items.
  const auto& ic = rec.item_clusters();
  for (uint32_t i = 1; i < 8; ++i) EXPECT_EQ(ic[i], ic[0]);
  for (uint32_t i = 9; i < 16; ++i) EXPECT_EQ(ic[i], ic[8]);
  EXPECT_NE(ic[0], ic[8]);
  // In-block holes score above out-of-block cells.
  EXPECT_GT(rec.Score(0, 0), rec.Score(0, 12));
  // Dense block means are high, cross-block means ~0.
  const uint32_t a = uc[0], b = ic[0];
  EXPECT_GT(rec.BlockMean(a, b), 0.7);
  EXPECT_LT(rec.BlockMean(a, ic[8]), 0.1);
}

TEST(CoclustTest, RejectsEmptyMatrix) {
  CoclustConfig cfg;
  CoclustRecommender rec(cfg);
  CsrMatrix empty = CsrMatrix::FromPairs({}, 4, 4).value();
  EXPECT_TRUE(rec.Fit(empty).IsInvalidArgument());
}

TEST(CoclustTest, BeatsNothingButLosesToOverlapAwareOnOverlappingData) {
  // On planted OVERLAPPING data, the non-overlapping model is handicapped
  // by construction. Verify it is still far better than random (sane
  // implementation) — the OCuLaR-vs-coclust gap itself is measured in
  // bench_ablation.
  PlantedCoClusterConfig pc;
  pc.num_users = 150;
  pc.num_items = 100;
  pc.num_clusters = 4;
  pc.user_membership_prob = 0.3;  // heavy overlap
  pc.item_membership_prob = 0.3;
  Rng rng(7);
  auto data = GeneratePlantedCoClusters(pc, &rng).value();
  Rng split_rng(8);
  auto split =
      SplitInteractions(data.dataset.interactions(), 0.75, &split_rng)
          .value();
  CoclustConfig cfg;
  cfg.user_clusters = 4;
  cfg.item_clusters = 4;
  cfg.iterations = 25;
  CoclustRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(split.train).ok());
  Rng auc_rng(9);
  const double auc =
      SampledAuc(rec, split.train, split.test, 3, &auc_rng).value();
  EXPECT_GT(auc, 0.65);
}

TEST(CoclustTest, DeterministicGivenSeed) {
  CoclustConfig cfg;
  cfg.user_clusters = 3;
  cfg.item_clusters = 3;
  cfg.seed = 11;
  CoclustRecommender a(cfg), b(cfg);
  CsrMatrix m = DisjointBlocks();
  ASSERT_TRUE(a.Fit(m).ok());
  ASSERT_TRUE(b.Fit(m).ok());
  EXPECT_EQ(a.user_clusters(), b.user_clusters());
  EXPECT_EQ(a.item_clusters(), b.item_clusters());
}

// ------------------------------------------------------------------ iALS

TEST(IalsTest, ConfigValidation) {
  IalsConfig c;
  EXPECT_TRUE(c.Validate().ok());
  c.k = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = IalsConfig{};
  c.alpha = -1;
  EXPECT_FALSE(c.Validate().ok());
  c = IalsConfig{};
  c.iterations = 0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(IalsTest, RanksHeldOutPositivesHighly) {
  PlantedCoClusterConfig pc;
  pc.num_users = 120;
  pc.num_items = 80;
  pc.num_clusters = 4;
  pc.user_membership_prob = 0.25;
  pc.item_membership_prob = 0.25;
  Rng rng(13);
  auto data = GeneratePlantedCoClusters(pc, &rng).value();
  Rng split_rng(14);
  auto split =
      SplitInteractions(data.dataset.interactions(), 0.75, &split_rng)
          .value();
  IalsConfig cfg;
  cfg.k = 8;
  cfg.iterations = 10;
  IalsRecommender ials(cfg);
  ASSERT_TRUE(ials.Fit(split.train).ok());
  EXPECT_EQ(ials.name(), "iALS");
  Rng auc_rng(15);
  const double auc =
      SampledAuc(ials, split.train, split.test, 3, &auc_rng).value();
  EXPECT_GT(auc, 0.8);

  // And it beats popularity on recall@20.
  PopularityRecommender pop;
  ASSERT_TRUE(pop.Fit(split.train).ok());
  const double ials_recall =
      EvaluateRankingAtM(ials, split.train, split.test, 20).value().recall;
  const double pop_recall =
      EvaluateRankingAtM(pop, split.train, split.test, 20).value().recall;
  EXPECT_GT(ials_recall, pop_recall);
}

TEST(IalsTest, RejectsEmptyMatrix) {
  IalsConfig cfg;
  IalsRecommender ials(cfg);
  CsrMatrix empty = CsrMatrix::FromPairs({}, 4, 4).value();
  EXPECT_TRUE(ials.Fit(empty).IsInvalidArgument());
}

TEST(IalsTest, AlphaZeroDegradesGracefully) {
  // With alpha = 0, positives and unknowns get equal confidence (targets
  // 1 vs 0): the solution approaches the trivial regression. The solver
  // must still run without numerical failure.
  IalsConfig cfg;
  cfg.k = 4;
  cfg.alpha = 0.0;
  cfg.iterations = 3;
  IalsRecommender ials(cfg);
  CsrMatrix m = DisjointBlocks();
  EXPECT_TRUE(ials.Fit(m).ok());
}

}  // namespace
}  // namespace ocular
