// Catalog-scale end-to-end proof for sharded serving: a deterministic
// 2M+-user factor catalog is streamed to disk as an 8-shard shardset
// (peak memory: one shard), served by three fork/exec ocular_served
// replicas behind an in-process FleetServer, and every sampled reply —
// including users at every shard boundary — must be byte-identical to an
// offline oracle answering from the same shardset in-process. The
// generator's purity (any row regenerable in O(k)) is what lets the
// verifier check mmapped bytes without ever holding the full matrix.
//
// Registered with LABELS scale: this runs in a dedicated Release CI job,
// not in the sanitizer lanes.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "core/model_shard.h"
#include "core/model_store.h"
#include "data/scale.h"
#include "serving/daemon.h"
#include "serving/fleet.h"
#include "serving/net_util.h"
#include "serving/registry.h"

#ifndef OCULAR_SERVED_PATH
#define OCULAR_SERVED_PATH "ocular_served"
#endif

namespace ocular {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ------------------------------------------------- generator properties

TEST(ScaleGeneratorTest, RowsArePureAndOrderIndependent) {
  ScaleCatalogSpec spec;
  spec.num_users = 1000;
  spec.num_items = 32;
  spec.k = 8;
  spec.seed = 123;

  // Regenerating a row — later, out of order, repeatedly — yields the
  // exact same doubles: the oracle property the scale test leans on.
  std::vector<double> a(spec.k), b(spec.k);
  ScaleUserRow(spec, 999, a);
  ScaleUserRow(spec, 0, b);  // interleave another user
  ScaleUserRow(spec, 999, b);
  EXPECT_EQ(a, b);

  // Distinct users and distinct seeds diverge.
  ScaleUserRow(spec, 998, b);
  EXPECT_NE(a, b);
  ScaleCatalogSpec other = spec;
  other.seed = 124;
  ScaleUserRow(other, 999, b);
  EXPECT_NE(a, b);

  // Values live in [min_affinity, max_affinity).
  for (uint32_t u = 0; u < spec.num_users; u += 97) {
    ScaleUserRow(spec, u, a);
    for (double v : a) {
      EXPECT_GE(v, spec.min_affinity);
      EXPECT_LT(v, spec.max_affinity);
    }
  }

  // The transposed item layout is exactly the transpose.
  const DenseMatrix items = ScaleItemFactors(spec);
  const DenseMatrix items_t = ScaleItemFactorsTransposed(spec);
  ASSERT_EQ(items.rows(), spec.num_items);
  ASSERT_EQ(items_t.rows(), spec.k);
  ASSERT_EQ(items_t.cols(), spec.num_items);
  for (uint32_t i = 0; i < spec.num_items; ++i) {
    for (uint32_t d = 0; d < spec.k; ++d) {
      EXPECT_EQ(items.At(i, d), items_t.At(d, i));
    }
  }
}

// ------------------------------------------ fork/exec replica harness

uint16_t FreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof(addr);
  uint16_t port = 0;
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) ==
      0) {
    port = ntohs(addr.sin_port);
  }
  ::close(fd);
  return port;
}

struct ServedProcess {
  pid_t pid = -1;

  ServedProcess() = default;
  ServedProcess(const ServedProcess&) = delete;
  ServedProcess& operator=(const ServedProcess&) = delete;
  ServedProcess(ServedProcess&& other) noexcept : pid(other.pid) {
    other.pid = -1;
  }

  static ServedProcess Start(const std::vector<std::string>& args,
                             const std::string& stderr_path) {
    ServedProcess p;
    p.pid = ::fork();
    if (p.pid == 0) {
      ::unsetenv("OCULAR_FAULTS");
      const int err =
          ::open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (err >= 0) {
        ::dup2(err, 2);
        ::close(err);
      }
      const int null = ::open("/dev/null", O_RDONLY);
      if (null >= 0) {
        ::dup2(null, 0);
        ::close(null);
      }
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(OCULAR_SERVED_PATH));
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(OCULAR_SERVED_PATH, argv.data());
      ::_exit(127);
    }
    return p;
  }

  void KillHard() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
      pid = -1;
    }
  }
  ~ServedProcess() { KillHard(); }
};

struct RawClient {
  int fd = -1;
  std::string buffer;

  bool Connect(uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }
  bool Send(const std::string& line) {
    const std::string framed = line + "\n";
    return net::SendAll(fd, framed.data(), framed.size());
  }
  bool ReadLine(std::string* line) { return net::ReadLine(fd, &buffer, line); }
  void Close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  ~RawClient() { Close(); }
};

bool WaitForServing(uint16_t port, ServedProcess* served,
                    int timeout_ms = 60000) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    RawClient probe;
    if (probe.Connect(port)) return true;
    int status = 0;
    if (served->pid > 0 &&
        ::waitpid(served->pid, &status, WNOHANG) == served->pid) {
      served->pid = -1;
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

// ------------------------------------------------- the scale end-to-end

TEST(ScaleShardSetTest, TwoMillionUsersServedBitIdenticalThroughFleet) {
  // An odd user count exercises the uneven EvenSplit (the first
  // num_users % num_shards shards carry one extra user).
  ScaleCatalogSpec spec;
  spec.num_users = 2'000'003;
  spec.num_items = 128;
  spec.k = 8;
  spec.seed = 7;
  const uint32_t kShards = 8;
  const std::string manifest_path = TempPath("scale_catalog.shardset");

  // ---- stream the catalog to disk; peak memory is one shard block.
  BinaryModelMeta meta;
  meta.k = spec.k;
  meta.lambda = 0.5;
  auto map = ShardMap::EvenSplit(spec.num_users, kShards);
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  const DenseMatrix items = ScaleItemFactors(spec);
  const DenseMatrix items_t = ScaleItemFactorsTransposed(spec);
  const auto write_start = std::chrono::steady_clock::now();
  Status written = WriteShardSetStreaming(
      meta, *map, items, items_t,
      [&spec](uint32_t user, std::span<double> out) {
        ScaleUserRow(spec, user, out);
      },
      manifest_path);
  ASSERT_TRUE(written.ok()) << written.ToString();
  const auto write_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - write_start)
                            .count();
  std::fprintf(stderr, "streamed %u users x K=%u into %u shards in %lld ms\n",
               spec.num_users, spec.k, kShards,
               static_cast<long long>(write_ms));

  // ---- sample users at every shard edge plus a scattered sweep.
  std::vector<uint32_t> sample = {0, spec.num_users - 1};
  for (uint32_t s = 0; s < map->num_shards(); ++s) {
    sample.push_back(map->begin(s));
    if (map->begin(s) > 0) sample.push_back(map->begin(s) - 1);
    sample.push_back(map->end(s) - 1);
  }
  for (uint64_t i = 1; i <= 32; ++i) {
    sample.push_back(static_cast<uint32_t>((i * 2654435761ULL) %
                                           spec.num_users));
  }
  std::sort(sample.begin(), sample.end());
  sample.erase(std::unique(sample.begin(), sample.end()), sample.end());

  // ---- the streamed bytes ARE the generator's rows (mmap vs regenerate).
  {
    auto set = OpenShardSet(manifest_path);
    ASSERT_TRUE(set.ok()) << set.status().ToString();
    ASSERT_EQ(set->map, *map) << "manifest round-trips the routing table";
    std::vector<double> expect(spec.k);
    for (uint32_t u : sample) {
      const uint32_t s = set->map.shard_of(u);
      ScaleUserRow(spec, u, expect);
      const std::span<const double> got =
          set->shards[s]->user_factors().Row(u - set->map.begin(s));
      ASSERT_TRUE(std::equal(expect.begin(), expect.end(), got.begin(),
                             got.end()))
          << "user " << u << " shard " << s;
    }
  }

  // ---- offline oracle: the same shardset answered in-process.
  ModelRegistry oracle_registry;
  ASSERT_TRUE(oracle_registry.Load("default", manifest_path).ok());
  RequestServer oracle(&oracle_registry);

  // ---- three real replicas + fleet front tier.
  uint16_t ports[3] = {FreePort(), FreePort(), FreePort()};
  std::unique_ptr<ServedProcess> replicas[3];
  for (int r = 0; r < 3; ++r) {
    ASSERT_NE(ports[r], 0);
    replicas[r] = std::make_unique<ServedProcess>(ServedProcess::Start(
        {"--models=default=" + manifest_path,
         "--port=" + std::to_string(ports[r]), "--io-timeout-ms=100",
         "--journal=0", "--workers=8"},
        TempPath("scale_replica" + std::to_string(r) + ".log")));
    ASSERT_TRUE(WaitForServing(ports[r], replicas[r].get())) << r;
  }

  FleetServer::Options options;
  options.replicas = {ports[0], ports[1], ports[2]};
  options.num_workers = 4;
  options.io_timeout_ms = 2000;
  options.probe_interval_ms = 200;
  FleetServer fleet(options);
  std::thread fleet_thread([&fleet] {
    EXPECT_TRUE(fleet.RunLoop(0, 0).ok());
  });
  uint16_t fleet_port = 0;
  for (int ms = 0; ms < 10000 && fleet_port == 0; ++ms) {
    fleet_port = fleet.bound_port();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(fleet_port, 0);

  // ---- every sampled reply through the fleet is byte-identical to the
  // oracle, and routes to the shard the pure map says it should.
  RawClient client;
  ASSERT_TRUE(client.Connect(fleet_port));
  for (uint32_t u : sample) {
    const std::string request = R"({"cmd":"recommend","user":)" +
                                std::to_string(u) + R"(,"m":10})";
    const std::string expect = oracle.HandleLine(request);
    ASSERT_TRUE(client.Send(request)) << u;
    std::string got;
    ASSERT_TRUE(client.ReadLine(&got)) << u;
    EXPECT_EQ(got, expect) << "user " << u;

    auto parsed = JsonValue::Parse(got);
    ASSERT_TRUE(parsed.ok()) << got;
    ASSERT_NE(parsed->Find("shard"), nullptr)
        << "sharded replies must carry the shard field: " << got;
    EXPECT_EQ(static_cast<uint32_t>(parsed->Find("shard")->number()),
              map->shard_of(u))
        << "user " << u;
  }
  client.Close();

  // The fleet saw only healthy replicas: nothing shed, nothing 503'd.
  const FleetStatsSnapshot snapshot = fleet.Stats();
  EXPECT_EQ(snapshot.no_healthy_503s, 0u);
  EXPECT_GE(snapshot.requests_proxied, sample.size());

  fleet.Stop();
  fleet_thread.join();
}

}  // namespace
}  // namespace ocular
