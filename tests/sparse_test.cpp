// Unit tests for src/sparse: COO builder, CSR matrix, dense matrix,
// vector kernels, Cholesky solver.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "sparse/coo.h"
#include "sparse/csr.h"
#include "sparse/dense.h"
#include "sparse/linalg.h"

namespace ocular {
namespace {

// ----------------------------------------------------------------- COO

TEST(CooBuilderTest, SortsAndDeduplicates) {
  CooBuilder coo;
  coo.Add(1, 2);
  coo.Add(0, 5);
  coo.Add(1, 2);  // duplicate
  coo.Add(0, 1);
  auto entries = coo.Finalize().value();
  ASSERT_EQ(entries.rows.size(), 3u);
  EXPECT_EQ(entries.rows, (std::vector<uint32_t>{0, 0, 1}));
  EXPECT_EQ(entries.cols, (std::vector<uint32_t>{1, 5, 2}));
  EXPECT_EQ(entries.num_rows, 2u);
  EXPECT_EQ(entries.num_cols, 6u);
}

TEST(CooBuilderTest, ExplicitShapeMustCover) {
  CooBuilder coo;
  coo.Add(3, 3);
  EXPECT_FALSE(coo.Finalize(2, 10).ok());
  CooBuilder coo2;
  coo2.Add(3, 3);
  auto entries = coo2.Finalize(10, 10).value();
  EXPECT_EQ(entries.num_rows, 10u);
  EXPECT_EQ(entries.num_cols, 10u);
}

TEST(CooBuilderTest, EmptyBuilder) {
  CooBuilder coo;
  auto entries = coo.Finalize(4, 4).value();
  EXPECT_TRUE(entries.rows.empty());
  CsrMatrix m = CsrMatrix::FromCoo(entries);
  EXPECT_EQ(m.num_rows(), 4u);
  EXPECT_EQ(m.nnz(), 0u);
}

// ----------------------------------------------------------------- CSR

CsrMatrix SmallMatrix() {
  // 3x4:
  //   row0: 1 0 1 0
  //   row1: 0 0 0 0
  //   row2: 0 1 1 1
  return CsrMatrix::FromPairs({{0, 0}, {0, 2}, {2, 1}, {2, 2}, {2, 3}}, 3, 4)
      .value();
}

TEST(CsrMatrixTest, BasicAccessors) {
  CsrMatrix m = SmallMatrix();
  EXPECT_EQ(m.num_rows(), 3u);
  EXPECT_EQ(m.num_cols(), 4u);
  EXPECT_EQ(m.nnz(), 5u);
  EXPECT_DOUBLE_EQ(m.Density(), 5.0 / 12.0);
  EXPECT_EQ(m.RowDegree(0), 2u);
  EXPECT_EQ(m.RowDegree(1), 0u);
  EXPECT_EQ(m.RowDegree(2), 3u);
  auto row2 = m.Row(2);
  EXPECT_EQ(std::vector<uint32_t>(row2.begin(), row2.end()),
            (std::vector<uint32_t>{1, 2, 3}));
}

TEST(CsrMatrixTest, HasEntry) {
  CsrMatrix m = SmallMatrix();
  EXPECT_TRUE(m.HasEntry(0, 0));
  EXPECT_TRUE(m.HasEntry(2, 3));
  EXPECT_FALSE(m.HasEntry(0, 1));
  EXPECT_FALSE(m.HasEntry(1, 0));
  EXPECT_FALSE(m.HasEntry(99, 0));  // out-of-range row is just "absent"
}

TEST(CsrMatrixTest, TransposeRoundTrip) {
  CsrMatrix m = SmallMatrix();
  CsrMatrix t = m.Transpose();
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.nnz(), m.nnz());
  for (uint32_t r = 0; r < m.num_rows(); ++r) {
    for (uint32_t c = 0; c < m.num_cols(); ++c) {
      EXPECT_EQ(m.HasEntry(r, c), t.HasEntry(c, r));
    }
  }
  EXPECT_EQ(t.Transpose(), m);
}

TEST(CsrMatrixTest, TransposeRowsSorted) {
  Rng rng(5);
  CooBuilder coo;
  for (int e = 0; e < 500; ++e) {
    coo.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{40})),
            static_cast<uint32_t>(rng.UniformInt(uint64_t{30})));
  }
  CsrMatrix m = CsrMatrix::FromCoo(coo.Finalize(40, 30).value());
  CsrMatrix t = m.Transpose();
  for (uint32_t r = 0; r < t.num_rows(); ++r) {
    auto row = t.Row(r);
    EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
  }
}

TEST(CsrMatrixTest, SelectRows) {
  CsrMatrix m = SmallMatrix();
  CsrMatrix s = m.SelectRows({2, 0});
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.num_cols(), 4u);
  EXPECT_TRUE(s.HasEntry(0, 1));  // old row 2
  EXPECT_TRUE(s.HasEntry(1, 0));  // old row 0
  EXPECT_FALSE(s.HasEntry(1, 1));
}

TEST(CsrMatrixTest, ColumnDegrees) {
  CsrMatrix m = SmallMatrix();
  EXPECT_EQ(m.ColumnDegrees(), (std::vector<uint32_t>{1, 1, 2, 1}));
}

TEST(CsrMatrixTest, ToPairsRoundTrip) {
  CsrMatrix m = SmallMatrix();
  auto pairs = m.ToPairs();
  CsrMatrix m2 = CsrMatrix::FromPairs(pairs, 3, 4).value();
  EXPECT_EQ(m, m2);
}

TEST(CsrMatrixTest, EmptyMatrix) {
  CsrMatrix m;
  EXPECT_EQ(m.num_rows(), 0u);
  EXPECT_EQ(m.num_cols(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_DOUBLE_EQ(m.Density(), 0.0);
}

// Property check over random matrices: transpose twice is identity and
// degrees are preserved.
class CsrRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(CsrRandomTest, TransposeInvolutionAndDegreeConservation) {
  Rng rng(GetParam());
  CooBuilder coo;
  const uint32_t rows = 20 + GetParam() * 13;
  const uint32_t cols = 15 + GetParam() * 7;
  const int nnz = 50 + GetParam() * 100;
  for (int e = 0; e < nnz; ++e) {
    coo.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{rows})),
            static_cast<uint32_t>(rng.UniformInt(uint64_t{cols})));
  }
  CsrMatrix m = CsrMatrix::FromCoo(coo.Finalize(rows, cols).value());
  CsrMatrix t = m.Transpose();
  EXPECT_EQ(t.Transpose(), m);
  // Total degree is conserved.
  size_t row_total = 0, col_total = 0;
  for (uint32_t r = 0; r < m.num_rows(); ++r) row_total += m.RowDegree(r);
  for (uint32_t c : m.ColumnDegrees()) col_total += c;
  EXPECT_EQ(row_total, m.nnz());
  EXPECT_EQ(col_total, m.nnz());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrRandomTest, ::testing::Range(1, 8));

// --------------------------------------------------------------- Dense

TEST(DenseMatrixTest, FillAndAccess) {
  DenseMatrix m(3, 2, 1.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 1.5);
  m.At(1, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m.Row(1)[0], -2.0);
  m.Fill(0.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.0);
}

TEST(DenseMatrixTest, ColumnSums) {
  DenseMatrix m(2, 3);
  m.At(0, 0) = 1;
  m.At(0, 1) = 2;
  m.At(0, 2) = 3;
  m.At(1, 0) = 4;
  m.At(1, 1) = 5;
  m.At(1, 2) = 6;
  EXPECT_EQ(m.ColumnSums(), (std::vector<double>{5, 7, 9}));
}

TEST(DenseMatrixTest, SquaredFrobeniusNorm) {
  DenseMatrix m(2, 2);
  m.At(0, 0) = 3;
  m.At(1, 1) = 4;
  EXPECT_DOUBLE_EQ(m.SquaredFrobeniusNorm(), 25.0);
}

TEST(DenseMatrixTest, FillUniformRespectsBounds) {
  Rng rng(3);
  DenseMatrix m(10, 10);
  m.FillUniform(&rng, 0.5, 1.5);
  for (uint32_t r = 0; r < 10; ++r) {
    for (uint32_t c = 0; c < 10; ++c) {
      EXPECT_GE(m.At(r, c), 0.5);
      EXPECT_LT(m.At(r, c), 1.5);
    }
  }
}

TEST(VecTest, DotAxpyScaleNorm) {
  std::vector<double> a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(vec::Dot(a, b), 32.0);
  vec::Axpy(2.0, a, b);  // b = {6, 9, 12}
  EXPECT_EQ(b, (std::vector<double>{6, 9, 12}));
  vec::Scale(0.5, b);
  EXPECT_EQ(b, (std::vector<double>{3, 4.5, 6}));
  EXPECT_DOUBLE_EQ(vec::SquaredNorm(a), 14.0);
  EXPECT_DOUBLE_EQ(vec::SquaredDistance(a, a), 0.0);
}

TEST(VecTest, ProjectNonNegative) {
  std::vector<double> v{-1.0, 0.0, 2.5, -0.001};
  vec::ProjectNonNegative(v);
  EXPECT_EQ(v, (std::vector<double>{0.0, 0.0, 2.5, 0.0}));
}

// -------------------------------------------------------------- linalg

TEST(CholeskyTest, SolvesIdentity) {
  const uint32_t k = 4;
  std::vector<double> a(k * k, 0.0);
  for (uint32_t d = 0; d < k; ++d) a[d * k + d] = 1.0;
  std::vector<double> b{1, 2, 3, 4}, x;
  ASSERT_TRUE(CholeskySolveInPlace(&a, k, b, &x).ok());
  for (uint32_t d = 0; d < k; ++d) EXPECT_NEAR(x[d], b[d], 1e-12);
}

TEST(CholeskyTest, SolvesRandomSpdSystem) {
  Rng rng(11);
  const uint32_t k = 12;
  // A = M^T M + I is SPD.
  DenseMatrix m(k, k);
  m.FillUniform(&rng, -1.0, 1.0);
  std::vector<double> a = GramMatrix(m);
  for (uint32_t d = 0; d < k; ++d) a[d * k + d] += 1.0;
  std::vector<double> a_copy = a;

  std::vector<double> x_true(k);
  for (auto& v : x_true) v = rng.Uniform(-2.0, 2.0);
  // b = A x_true.
  std::vector<double> b(k, 0.0);
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t j = 0; j < k; ++j) b[i] += a_copy[i * k + j] * x_true[j];
  }
  std::vector<double> x;
  ASSERT_TRUE(CholeskySolveInPlace(&a, k, b, &x).ok());
  for (uint32_t d = 0; d < k; ++d) EXPECT_NEAR(x[d], x_true[d], 1e-8);
}

TEST(CholeskyTest, RejectsIndefinite) {
  std::vector<double> a{1.0, 2.0, 2.0, 1.0};  // eigenvalues 3, -1
  std::vector<double> b{1.0, 1.0}, x;
  Status s = CholeskySolveInPlace(&a, 2, b, &x);
  EXPECT_TRUE(s.IsFailedPrecondition());
}

TEST(CholeskyTest, RejectsShapeMismatch) {
  std::vector<double> a(9, 0.0);
  std::vector<double> b{1.0, 1.0}, x;  // b has wrong length for k=3
  EXPECT_TRUE(CholeskySolveInPlace(&a, 3, b, &x).IsInvalidArgument());
}

TEST(GramMatrixTest, MatchesManual) {
  DenseMatrix f(3, 2);
  f.At(0, 0) = 1;
  f.At(0, 1) = 2;
  f.At(1, 0) = 3;
  f.At(1, 1) = 4;
  f.At(2, 0) = 5;
  f.At(2, 1) = 6;
  auto g = GramMatrix(f);
  // F^T F = [[35, 44], [44, 56]].
  EXPECT_DOUBLE_EQ(g[0], 35.0);
  EXPECT_DOUBLE_EQ(g[1], 44.0);
  EXPECT_DOUBLE_EQ(g[2], 44.0);
  EXPECT_DOUBLE_EQ(g[3], 56.0);
}

TEST(AddOuterProductTest, MatchesManual) {
  std::vector<double> a(4, 0.0);
  std::vector<double> v{2.0, 3.0};
  AddOuterProduct(&a, 2, 0.5, v);
  EXPECT_DOUBLE_EQ(a[0], 2.0);   // 0.5 * 2 * 2
  EXPECT_DOUBLE_EQ(a[1], 3.0);   // 0.5 * 2 * 3
  EXPECT_DOUBLE_EQ(a[2], 3.0);
  EXPECT_DOUBLE_EQ(a[3], 4.5);
}

}  // namespace
}  // namespace ocular
