// Tests for the core extensions: fold-in inference, bias terms
// (Section IV-A optional model), multi-step block solves (Section IV-B
// discussion), cross-validation, AUC/MRR metrics, explanation JSON.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/early_stopping.h"
#include "core/explain.h"
#include "core/fold_in.h"
#include "core/ocular_recommender.h"
#include "data/synthetic.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "parallel/parallel_trainer.h"

namespace ocular {
namespace {

OcularFitResult TrainToy(OcularConfig config) {
  Dataset toy = MakePaperToyDataset();
  OcularTrainer trainer(config);
  return trainer.Fit(toy.interactions()).value();
}

// ---------------------------------------------------------------- FoldIn

TEST(FoldInTest, MatchesTrainedUserFactor) {
  // Folding in the history of a user that WAS in training should land
  // near that user's trained factor (both solve the same strongly convex
  // block problem against the same item factors).
  Dataset toy = MakePaperToyDataset();
  OcularConfig cfg;
  cfg.k = 3;
  cfg.lambda = 0.05;
  cfg.max_sweeps = 300;
  cfg.tolerance = 1e-10;
  auto fit = TrainToy(cfg);

  auto history = toy.interactions().Row(6);
  auto folded = FoldInUser(fit.model, cfg, history).value();
  ASSERT_EQ(folded.size(), 3u);
  // Compare predictions, not raw factors (factor permutation-invariant).
  for (uint32_t i = 0; i < toy.num_items(); ++i) {
    const double trained = fit.model.Probability(6, i);
    const double fold = ScoreFoldedUser(fit.model, folded, i);
    EXPECT_NEAR(trained, fold, 0.08) << "item " << i;
  }
}

TEST(FoldInTest, RecommendsTheToyHole) {
  Dataset toy = MakePaperToyDataset();
  OcularConfig cfg;
  cfg.k = 3;
  cfg.lambda = 0.05;
  cfg.max_sweeps = 200;
  auto fit = TrainToy(cfg);
  // A NEW client with user 6's purchase pattern should be recommended
  // item 4 without retraining.
  std::vector<uint32_t> history{1, 2, 3, 5, 6, 7, 8, 9};
  auto recs = RecommendForHistory(fit.model, cfg, history, 1).value();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].item, 4u);
  EXPECT_GT(recs[0].score, 0.5);
}

TEST(FoldInTest, EmptyHistoryScoresZero) {
  OcularConfig cfg;
  cfg.k = 3;
  cfg.max_sweeps = 20;
  auto fit = TrainToy(cfg);
  auto folded = FoldInUser(fit.model, cfg, {}).value();
  for (double v : folded) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(ScoreFoldedUser(fit.model, folded, 0), 0.0);
}

TEST(FoldInTest, ValidatesInput) {
  OcularConfig cfg;
  cfg.k = 3;
  cfg.max_sweeps = 10;
  auto fit = TrainToy(cfg);
  std::vector<uint32_t> out_of_range{99};
  EXPECT_TRUE(FoldInUser(fit.model, cfg, out_of_range)
                  .status()
                  .IsInvalidArgument());
  std::vector<uint32_t> unsorted{5, 3};
  EXPECT_TRUE(
      FoldInUser(fit.model, cfg, unsorted).status().IsInvalidArgument());
  OcularConfig wrong_k = cfg;
  wrong_k.k = 7;
  std::vector<uint32_t> ok_history{1};
  EXPECT_TRUE(FoldInUser(fit.model, wrong_k, ok_history)
                  .status()
                  .IsInvalidArgument());
}

TEST(FoldInTest, SanitizeHistoryNormalizesClientInput) {
  // Unsorted, duplicated, and partly out-of-catalog — the wire shape.
  std::vector<uint32_t> history{9, 2, 9, 30, 0, 2, 31};
  const HistorySanitizeResult res = SanitizeHistory(&history, 30);
  EXPECT_EQ(history, (std::vector<uint32_t>{0, 2, 9}));
  EXPECT_EQ(res.dropped_out_of_range, 2u);

  std::vector<uint32_t> empty;
  EXPECT_EQ(SanitizeHistory(&empty, 30).dropped_out_of_range, 0u);
  EXPECT_TRUE(empty.empty());

  std::vector<uint32_t> all_out{100, 200};
  EXPECT_EQ(SanitizeHistory(&all_out, 30).dropped_out_of_range, 2u);
  EXPECT_TRUE(all_out.empty());
}

TEST(FoldInTest, BlockedRecommendMatchesPerPairLoop) {
  // RecommendForHistory now ranks through the blocked engine; the
  // straightforward per-pair loop it replaced is the oracle — item ids
  // and scores must stay bit-identical.
  Dataset toy = MakePaperToyDataset();
  OcularConfig cfg;
  cfg.k = 3;
  cfg.lambda = 0.05;
  cfg.max_sweeps = 200;
  auto fit = TrainToy(cfg);
  const std::vector<uint32_t> history{1, 3, 5, 7};
  const uint32_t m = 5;

  auto folded = FoldInUser(fit.model, cfg, history).value();
  std::vector<double> scores(toy.num_items());
  for (uint32_t i = 0; i < toy.num_items(); ++i) {
    scores[i] = ScoreFoldedUser(fit.model, folded, i);
  }
  const std::vector<ScoredItem> expect = TopM(scores, m, history);

  auto recs = RecommendForHistory(fit.model, cfg, history, m).value();
  ASSERT_EQ(recs.size(), expect.size());
  for (size_t r = 0; r < expect.size(); ++r) {
    EXPECT_EQ(recs[r].item, expect[r].item) << "rank " << r;
    EXPECT_EQ(recs[r].score, expect[r].score) << "rank " << r;
  }
}

TEST(FoldInTest, EmptyHistoryFallsBackToDeterministicPopularity) {
  // A history with no signal must not return an arbitrary tie-broken
  // prefix of an all-zero score vector: the fallback ranks by expected
  // affinity <sum_u f_u, f_i> (no training matrix offline), and two
  // calls agree exactly.
  OcularConfig cfg;
  cfg.k = 3;
  cfg.max_sweeps = 40;
  auto fit = TrainToy(cfg);

  auto first = RecommendForHistory(fit.model, cfg, {}, 4).value();
  auto second = RecommendForHistory(fit.model, cfg, {}, 4).value();
  ASSERT_EQ(first.size(), 4u);
  for (size_t r = 0; r < first.size(); ++r) {
    EXPECT_EQ(first[r].item, second[r].item);
    EXPECT_EQ(first[r].score, second[r].score);
  }
  // The ranking is the hand-computed expected-affinity TopM.
  const std::vector<double> user_sums =
      ColumnSums(ConstMatrixView(fit.model.user_factors()));
  std::vector<double> expected_affinity(fit.model.num_items(), 0.0);
  for (uint32_t i = 0; i < fit.model.num_items(); ++i) {
    for (uint32_t c = 0; c < fit.model.item_factors().cols(); ++c) {
      expected_affinity[i] +=
          user_sums[c] * fit.model.item_factors().At(i, c);
    }
  }
  const std::vector<ScoredItem> expect = TopM(expected_affinity, 4, {});
  for (size_t r = 0; r < expect.size(); ++r) {
    EXPECT_EQ(first[r].item, expect[r].item) << "rank " << r;
    EXPECT_EQ(first[r].score, expect[r].score) << "rank " << r;
  }
  // A fully out-of-range history is rejected by the strict offline
  // contract (serving sanitizes first; the core API stays strict).
  std::vector<uint32_t> out_of_range{99};
  EXPECT_TRUE(RecommendForHistory(fit.model, cfg, out_of_range, 4)
                  .status()
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------- Biases

TEST(BiasTest, TotalDimsAccounting) {
  OcularConfig cfg;
  cfg.k = 5;
  EXPECT_EQ(cfg.TotalDims(), 5u);
  cfg.use_biases = true;
  EXPECT_EQ(cfg.TotalDims(), 7u);
}

TEST(BiasTest, FrozenCoordinatesStayPinned) {
  Dataset toy = MakePaperToyDataset();
  OcularConfig cfg;
  cfg.k = 3;
  cfg.lambda = 0.05;
  cfg.use_biases = true;
  cfg.max_sweeps = 50;
  OcularTrainer trainer(cfg);
  auto fit = trainer.Fit(toy.interactions()).value();
  const DenseMatrix& fu = fit.model.user_factors();
  const DenseMatrix& fi = fit.model.item_factors();
  ASSERT_EQ(fu.cols(), 5u);
  for (uint32_t u = 0; u < fu.rows(); ++u) {
    EXPECT_DOUBLE_EQ(fu.At(u, 4), 1.0) << "user " << u;  // item-bias dim
  }
  for (uint32_t i = 0; i < fi.rows(); ++i) {
    EXPECT_DOUBLE_EQ(fi.At(i, 3), 1.0) << "item " << i;  // user-bias dim
  }
  EXPECT_TRUE(fit.model.Validate().ok());
}

TEST(BiasTest, StillSolvesToyAndObjectiveDecreases) {
  Dataset toy = MakePaperToyDataset();
  OcularConfig cfg;
  cfg.k = 3;
  cfg.lambda = 0.05;
  cfg.use_biases = true;
  cfg.max_sweeps = 200;
  cfg.seed = 1;
  OcularRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(toy.interactions()).ok());
  for (size_t s = 1; s < rec.trace().size(); ++s) {
    EXPECT_LE(rec.trace()[s].objective,
              rec.trace()[s - 1].objective +
                  1e-6 * std::abs(rec.trace()[s - 1].objective));
  }
  auto top = rec.Recommend(6, 1, toy.interactions());
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].item, 4u);
}

TEST(BiasTest, ParallelTrainerMatchesSerialWithBiases) {
  Dataset toy = MakePaperToyDataset();
  OcularConfig cfg;
  cfg.k = 3;
  cfg.use_biases = true;
  cfg.max_sweeps = 5;
  cfg.tolerance = 0.0;
  OcularTrainer serial(cfg);
  ParallelOcularTrainer parallel(cfg, 2);
  auto a = serial.Fit(toy.interactions()).value();
  auto b = parallel.Fit(toy.interactions()).value();
  EXPECT_EQ(a.model.user_factors(), b.model.user_factors());
  EXPECT_EQ(a.model.item_factors(), b.model.item_factors());
}

TEST(BiasTest, CoClusterExtractionCanSkipBiasDims) {
  Dataset toy = MakePaperToyDataset();
  OcularConfig cfg;
  cfg.k = 3;
  cfg.lambda = 0.05;
  cfg.use_biases = true;
  cfg.max_sweeps = 100;
  OcularTrainer trainer(cfg);
  auto fit = trainer.Fit(toy.interactions()).value();
  CoClusterOptions opts;
  opts.threshold = 0.5;
  opts.max_dims = cfg.k;  // exclude the two bias dimensions
  auto clusters = ExtractCoClusters(fit.model, opts);
  for (const auto& cc : clusters) EXPECT_LT(cc.index, cfg.k);
}

TEST(BiasTest, FoldInWorksWithBiases) {
  Dataset toy = MakePaperToyDataset();
  OcularConfig cfg;
  cfg.k = 3;
  cfg.lambda = 0.05;
  cfg.use_biases = true;
  cfg.max_sweeps = 100;
  OcularTrainer trainer(cfg);
  auto fit = trainer.Fit(toy.interactions()).value();
  std::vector<uint32_t> history{1, 2, 3};
  auto folded = FoldInUser(fit.model, cfg, history).value();
  ASSERT_EQ(folded.size(), 5u);
  EXPECT_DOUBLE_EQ(folded[4], 1.0);  // pinned item-bias coordinate
}

// ----------------------------------------------------------- block_steps

TEST(BlockStepsTest, ValidatedAndConvergesFasterPerSweep) {
  OcularConfig cfg;
  cfg.block_steps = 0;
  EXPECT_FALSE(cfg.Validate().ok());

  // More inner steps -> at least as much progress per sweep (same count
  // of sweeps, lower or equal objective).
  Dataset toy = MakePaperToyDataset();
  OcularConfig one;
  one.k = 3;
  one.lambda = 0.1;
  one.max_sweeps = 5;
  one.tolerance = 0.0;
  OcularConfig five = one;
  five.block_steps = 5;
  auto fit1 = OcularTrainer(one).Fit(toy.interactions()).value();
  auto fit5 = OcularTrainer(five).Fit(toy.interactions()).value();
  EXPECT_LE(fit5.trace.back().objective,
            fit1.trace.back().objective * 1.001);
}

// ------------------------------------------------------- CrossValidation

class FixedQualityRecommender : public Recommender {
 public:
  FixedQualityRecommender(uint32_t ni, bool good) : ni_(ni), good_(good) {}
  std::string name() const override { return "fixed"; }
  Status Fit(const CsrMatrix& m) override {
    train_ = m;
    return Status::OK();
  }
  double Score(uint32_t u, uint32_t i) const override {
    // "good" = item popularity in train; "bad" = anti-popularity.
    double s = 0.0;
    for (uint32_t v = 0; v < train_.num_rows(); ++v) {
      if (train_.HasEntry(v, i)) s += 1.0;
    }
    (void)u;
    return good_ ? s : -s;
  }
  uint32_t num_users() const override { return train_.num_rows(); }
  uint32_t num_items() const override { return ni_; }

 private:
  uint32_t ni_;
  bool good_;
  CsrMatrix train_;
};

TEST(CrossValidationTest, PrefersTheBetterConfiguration) {
  Rng data_rng(31);
  PlantedCoClusterConfig pc;
  pc.num_users = 60;
  pc.num_items = 40;
  pc.num_clusters = 3;
  auto data = GeneratePlantedCoClusters(pc, &data_rng).value();
  const CsrMatrix& r = data.dataset.interactions();

  // Encode "good vs bad" in the lambda axis: lambda 1 -> popularity,
  // lambda 2 -> anti-popularity.
  auto factory = [&](const GridPoint& p) -> std::unique_ptr<Recommender> {
    return std::make_unique<FixedQualityRecommender>(r.num_cols(),
                                                     p.lambda < 1.5);
  };
  Rng rng(32);
  auto result =
      CrossValidatedGridSearch(factory, {1}, {1.0, 2.0}, r, 3, 10, &rng)
          .value();
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_DOUBLE_EQ(result.best().point.lambda, 1.0);
  EXPECT_GT(result.best().recall, result.cells[1].recall);
}

TEST(CrossValidationTest, FoldMetricsShapeAndBounds) {
  Rng data_rng(33);
  PlantedCoClusterConfig pc;
  pc.num_users = 50;
  pc.num_items = 30;
  pc.num_clusters = 3;
  auto data = GeneratePlantedCoClusters(pc, &data_rng).value();
  auto factory = [&](const GridPoint&) -> std::unique_ptr<Recommender> {
    return std::make_unique<FixedQualityRecommender>(
        data.dataset.num_items(), true);
  };
  Rng rng(34);
  auto fm = CrossValidate(factory, GridPoint{1, 0.0},
                          data.dataset.interactions(), 4, 10, &rng)
                .value();
  EXPECT_EQ(fm.recalls.size(), 4u);
  for (double r : fm.recalls) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
  EXPECT_GE(fm.stddev_recall, 0.0);
}

TEST(CrossValidationTest, RejectsBadArgs) {
  CsrMatrix m = CsrMatrix::FromPairs({{0, 0}, {1, 1}}, 2, 2).value();
  Rng rng(35);
  EXPECT_TRUE(CrossValidatedGridSearch(RecommenderFactory{}, {1}, {1.0}, m,
                                       2, 5, &rng)
                  .status()
                  .IsInvalidArgument());
}

// ----------------------------------------------------------- AUC and MRR

TEST(MetricsExtensionTest, ReciprocalRank) {
  std::vector<ScoredItem> ranked{{9, .9}, {5, .8}, {7, .7}};
  std::vector<uint32_t> relevant{5, 7};
  EXPECT_DOUBLE_EQ(ReciprocalRankAtM(ranked, 3, relevant), 0.5);
  EXPECT_DOUBLE_EQ(ReciprocalRankAtM(ranked, 1, relevant), 0.0);
  std::vector<uint32_t> first{9};
  EXPECT_DOUBLE_EQ(ReciprocalRankAtM(ranked, 3, first), 1.0);
}

TEST(MetricsExtensionTest, AucOfOracleAndOfRandom) {
  Rng data_rng(41);
  PlantedCoClusterConfig pc;
  pc.num_users = 80;
  pc.num_items = 60;
  pc.num_clusters = 4;
  auto data = GeneratePlantedCoClusters(pc, &data_rng).value();
  Rng split_rng(42);
  auto split =
      SplitInteractions(data.dataset.interactions(), 0.75, &split_rng)
          .value();

  // Oracle: scores test positives 1. AUC must be ~1.
  class Oracle : public Recommender {
   public:
    explicit Oracle(const CsrMatrix& t) : t_(t) {}
    std::string name() const override { return "oracle"; }
    Status Fit(const CsrMatrix&) override { return Status::OK(); }
    double Score(uint32_t u, uint32_t i) const override {
      return t_.HasEntry(u, i) ? 1.0 : 0.0;
    }
    uint32_t num_users() const override { return t_.num_rows(); }
    uint32_t num_items() const override { return t_.num_cols(); }
    CsrMatrix t_;
  };
  Oracle oracle(split.test);
  Rng rng(43);
  EXPECT_DOUBLE_EQ(
      SampledAuc(oracle, split.train, split.test, 4, &rng).value(), 1.0);

  // Constant scores: AUC = 0.5 exactly (tie handling).
  class Constant : public Recommender {
   public:
    explicit Constant(const CsrMatrix& t) : t_(t) {}
    std::string name() const override { return "const"; }
    Status Fit(const CsrMatrix&) override { return Status::OK(); }
    double Score(uint32_t, uint32_t) const override { return 0.5; }
    uint32_t num_users() const override { return t_.num_rows(); }
    uint32_t num_items() const override { return t_.num_cols(); }
    CsrMatrix t_;
  };
  Constant constant(split.test);
  EXPECT_DOUBLE_EQ(
      SampledAuc(constant, split.train, split.test, 4, &rng).value(), 0.5);

  EXPECT_TRUE(SampledAuc(oracle, split.train, split.test, 0, &rng)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SampledAuc(oracle, split.train, split.test, 4, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST(MetricsExtensionTest, MrrReportedByHarness) {
  CsrMatrix train = CsrMatrix::FromPairs({{0, 0}}, 1, 4).value();
  CsrMatrix test = CsrMatrix::FromPairs({{0, 2}}, 1, 4).value();
  class Fixed : public Recommender {
   public:
    std::string name() const override { return "fixed"; }
    Status Fit(const CsrMatrix&) override { return Status::OK(); }
    double Score(uint32_t, uint32_t i) const override {
      // Candidates 1, 2, 3 (0 is train-excluded); make item 2 rank 2nd.
      return i == 1 ? 1.0 : (i == 2 ? 0.9 : 0.1);
    }
    uint32_t num_users() const override { return 1; }
    uint32_t num_items() const override { return 4; }
  };
  Fixed rec;
  auto row = EvaluateRankingAtM(rec, train, test, 3).value();
  EXPECT_DOUBLE_EQ(row.mrr, 0.5);
}

// ---------------------------------------------------------- EarlyStopping

TEST(EarlyStoppingTest, OptionsValidation) {
  EarlyStoppingOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.check_every = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = EarlyStoppingOptions{};
  o.max_sweeps = 1;
  o.check_every = 5;
  EXPECT_FALSE(o.Validate().ok());
  o = EarlyStoppingOptions{};
  o.m = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(EarlyStoppingTest, StopsAndReturnsBestSnapshot) {
  Rng data_rng(61);
  PlantedCoClusterConfig pc;
  pc.num_users = 100;
  pc.num_items = 70;
  pc.num_clusters = 4;
  pc.user_membership_prob = 0.25;
  pc.item_membership_prob = 0.25;
  auto data = GeneratePlantedCoClusters(pc, &data_rng).value();
  Rng split_rng(62);
  auto split =
      SplitInteractions(data.dataset.interactions(), 0.8, &split_rng)
          .value();

  OcularConfig cfg;
  cfg.k = 6;
  cfg.lambda = 0.5;
  EarlyStoppingOptions opts;
  opts.check_every = 4;
  opts.patience = 2;
  opts.max_sweeps = 80;
  opts.m = 20;
  auto fit =
      FitWithEarlyStopping(cfg, split.train, split.test, opts).value();
  EXPECT_GT(fit.best_recall, 0.2);
  EXPECT_GE(fit.sweeps_run, opts.check_every);
  EXPECT_LE(fit.sweeps_run, opts.max_sweeps);
  EXPECT_LE(fit.best_sweep, fit.sweeps_run);
  ASSERT_FALSE(fit.validation_curve.empty());
  // The reported best equals the curve maximum, and the snapshot actually
  // achieves it.
  double curve_max = 0.0;
  for (double r : fit.validation_curve) curve_max = std::max(curve_max, r);
  EXPECT_DOUBLE_EQ(fit.best_recall, curve_max);
  EXPECT_TRUE(fit.model.Validate().ok());
}

TEST(EarlyStoppingTest, RejectsBadInputs) {
  OcularConfig cfg;
  cfg.k = 2;
  CsrMatrix train = CsrMatrix::FromPairs({{0, 0}}, 2, 2).value();
  CsrMatrix wrong = CsrMatrix::FromPairs({{0, 0}}, 3, 2).value();
  EXPECT_TRUE(FitWithEarlyStopping(cfg, train, wrong)
                  .status()
                  .IsInvalidArgument());
  CsrMatrix empty = CsrMatrix::FromPairs({}, 2, 2).value();
  EXPECT_TRUE(FitWithEarlyStopping(cfg, train, empty)
                  .status()
                  .IsInvalidArgument());
}

// ------------------------------------------------------ Explanation JSON

TEST(ExplainJsonTest, WellFormedAndComplete) {
  Dataset toy = MakePaperToyDataset();
  OcularConfig cfg;
  cfg.k = 3;
  cfg.lambda = 0.05;
  cfg.max_sweeps = 150;
  cfg.seed = 1;
  OcularRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(toy.interactions()).ok());
  auto expl =
      ExplainRecommendation(rec.model(), toy.interactions(), 6, 4).value();
  const std::string json = ExplanationToJson(expl, toy);
  EXPECT_NE(json.find("\"user\":6"), std::string::npos);
  EXPECT_NE(json.find("\"item\":4"), std::string::npos);
  EXPECT_NE(json.find("\"user_label\":\"Client 6\""), std::string::npos);
  EXPECT_NE(json.find("\"clauses\":["), std::string::npos);
  EXPECT_NE(json.find("\"supporting_users\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  int depth = 0;
  bool in_string = false;
  for (size_t idx = 0; idx < json.size(); ++idx) {
    const char ch = json[idx];
    if (ch == '"' && (idx == 0 || json[idx - 1] != '\\')) {
      in_string = !in_string;
    }
    if (in_string) continue;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace ocular
