// Seeded, deterministic fuzz sweep over the daemon's untrusted wire
// surface: byte-noise, truncation, splicing, oversized fields, and deep
// nesting against (1) the JSON parser alone, (2) RequestServer::HandleLine,
// and (3) the full TCP line protocol. The contract under fuzz: never
// crash, never hang, answer every non-empty line with one well-formed
// {"ok":...} object, and keep serving correct replies afterwards. The CI
// chaos job runs this binary under AddressSanitizer so an out-of-bounds
// parse is a hard failure, not luck.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "core/model_store.h"
#include "core/ocular_recommender.h"
#include "serving/batch.h"
#include "serving/daemon.h"
#include "serving/loadgen.h"
#include "serving/net_util.h"
#include "serving/registry.h"
#include "test_util.h"

namespace ocular {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// splitmix64: the whole sweep is reproducible from the seed constants
// below — a failure prints its iteration index, which pins the input.
uint64_t SplitMix(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Seed corpus: well-formed requests of every verb the daemon speaks
/// (except quit — a mutant surviving as a literal quit would end a fuzz
/// connection early) plus already-hostile shapes.
const std::vector<std::string>& Corpus() {
  static const std::vector<std::string>* corpus = new std::vector<std::string>{
      R"({"cmd":"recommend","user":3,"m":10})",
      R"({"cmd":"recommend","model":"default","user":0,"m":1})",
      R"({"cmd":"recommend","user":7,"exclude":[1,5,9],"m":4})",
      R"({"cmd":"recommend","history":[5,1,5,9],"m":6})",
      R"({"cmd":"update","adds":[[12,3],[99,7]],"sweeps":2})",
      R"({"cmd":"update","adds":[[0,0]],"num_users":64,"num_items":64})",
      R"({"cmd":"models"})",
      R"({"cmd":"stats"})",
      R"({"user":1e9,"m":-3})",
      R"({"user":0,"m":1.5,"min_score":"high"})",
      R"({"cmd":42,"user":[],"m":{}})",
      R"([{"user":0}])",
      R"("just a string")",
      R"({"user":0,"exclude":[999999999,-1,3.14]})",
      R"({"history":["a",null,true,-7]})",
      std::string("{\"u\0ser\":0,\"m\":\"\\ud800\"}", 27),
      R"({{{{]]]]}}}})",
      std::string("nul\0byte{\"user\":0}", 18),
      "{\"user\":0,\"m\":4}   trailing garbage",
  };
  return *corpus;
}

/// One deterministic mutant: pick a seed line, apply 1-3 mutations, and
/// sanitize so the line stays a single wire line (no '\n') that the
/// daemon will actually answer (non-empty, not a lone '\r').
std::string Mutant(uint64_t* rng) {
  const auto& corpus = Corpus();
  std::string line = corpus[SplitMix(rng) % corpus.size()];
  const uint64_t mutations = 1 + SplitMix(rng) % 3;
  for (uint64_t m = 0; m < mutations; ++m) {
    switch (SplitMix(rng) % 5) {
      case 0: {  // flip a byte
        if (line.empty()) break;
        line[SplitMix(rng) % line.size()] =
            static_cast<char>(1 + SplitMix(rng) % 255);
        break;
      }
      case 1: {  // truncate
        if (line.empty()) break;
        line.resize(SplitMix(rng) % line.size());
        break;
      }
      case 2: {  // insert noise bytes
        const size_t at = line.empty() ? 0 : SplitMix(rng) % line.size();
        std::string noise;
        for (uint64_t n = 1 + SplitMix(rng) % 8; n > 0; --n) {
          noise.push_back(static_cast<char>(1 + SplitMix(rng) % 255));
        }
        line.insert(at, noise);
        break;
      }
      case 3: {  // duplicate a slice
        if (line.empty()) break;
        const size_t from = SplitMix(rng) % line.size();
        const size_t len = 1 + SplitMix(rng) % (line.size() - from);
        line.insert(SplitMix(rng) % line.size(), line.substr(from, len));
        break;
      }
      case 4: {  // splice the head of another seed onto the tail
        const std::string& other = corpus[SplitMix(rng) % corpus.size()];
        const size_t keep = SplitMix(rng) % (line.size() + 1);
        line = line.substr(0, keep) +
               other.substr(other.size() - SplitMix(rng) % (other.size() + 1));
        break;
      }
    }
  }
  for (char& c : line) {
    if (c == '\n') c = ' ';
  }
  if (line.empty() || line == "\r") line = "x";
  return line;
}

/// Structured hostile inputs the random mutator is unlikely to produce:
/// deep nesting (the parser's depth cap must answer, not smash the
/// stack), oversized scalars, and wide containers.
std::vector<std::string> StructuredHostiles() {
  std::vector<std::string> lines;
  lines.push_back(std::string(2000, '['));
  lines.push_back(std::string(2000, '[') + "0" + std::string(2000, ']'));
  {
    std::string nested;
    for (int d = 0; d < 500; ++d) nested += "{\"a\":";
    nested += "1";
    nested.append(500, '}');
    lines.push_back(nested);
  }
  lines.push_back("{\"user\":" + std::string(400, '9') + "}");
  lines.push_back("{\"user\":1" + std::string(400, '0') + ".5e308}");
  lines.push_back("{\"m\":4,\"user\":0,\"pad\":\"" + std::string(100000, 'a') +
                  "\"}");
  {
    std::string wide = "{\"user\":0,\"exclude\":[";
    for (int i = 0; i < 20000; ++i) {
      wide += std::to_string(i);
      wide.push_back(',');
    }
    wide.back() = ']';
    wide.push_back('}');
    lines.push_back(wide);
  }
  return lines;
}

TEST(WireFuzzTest, JsonParserSurvivesByteNoiseAndHostileShapes) {
  uint64_t rng = 0x0c01a201ull;
  size_t parsed_ok = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::string line = Mutant(&rng);
    auto value = JsonValue::Parse(line);  // must not crash or hang
    if (value.ok()) ++parsed_ok;
  }
  // The mutator is gentle enough that some mutants stay valid JSON —
  // proof the sweep exercises the accept path too, not just rejection.
  EXPECT_GT(parsed_ok, 0u);

  for (const std::string& line : StructuredHostiles()) {
    auto value = JsonValue::Parse(line);
    (void)value;  // deep nesting must come back as an error, never UB
  }
  // The depth cap specifically: nested far past kMaxDepth is an error.
  EXPECT_FALSE(
      JsonValue::Parse(std::string(2000, '[') + std::string(2000, ']')).ok());
}

/// A tiny served model shared by the HandleLine and TCP sweeps.
struct FuzzFixture {
  CsrMatrix train;
  OcularModel model;
  std::string model_path;
  std::unique_ptr<ModelRegistry> registry;

  static FuzzFixture Make(const std::string& file) {
    FuzzFixture f;
    f.train = test::RandomCsr(40, 24, 300, 7);
    OcularConfig config;
    config.k = 4;
    config.lambda = 0.5;
    config.max_sweeps = 5;
    config.seed = 13;
    OcularTrainer trainer(config);
    f.model = trainer.Fit(f.train).value().model;
    f.model_path = TempPath(file);
    EXPECT_TRUE(SaveModelBinary(f.model, config, f.model_path).ok());
    f.registry = std::make_unique<ModelRegistry>();
    // No dataset bound during the sweep: a mutant that happens to stay a
    // valid update command must fail cleanly (FailedPrecondition) instead
    // of retraining and republishing the model mid-fuzz.
    EXPECT_TRUE(f.registry->Load("default", f.model_path, nullptr).ok());
    return f;
  }

  /// Binds the training matrix (hot-swap, same as SIGHUP reload) so the
  /// post-sweep exact-ranking check runs with real exclusions.
  void BindDataset() {
    EXPECT_TRUE(registry
                    ->Load("default", model_path,
                           std::make_shared<const CsrMatrix>(train))
                    .ok());
  }
};

/// Every reply must be one well-formed JSON object carrying "ok".
void ExpectWellFormedReply(const std::string& reply, const std::string& input) {
  auto parsed = JsonValue::Parse(reply);
  ASSERT_TRUE(parsed.ok()) << "reply not JSON for input: " << input;
  ASSERT_NE(parsed->Find("ok"), nullptr) << "no ok field for: " << input;
}

TEST(WireFuzzTest, HandleLineAnswersEveryMutantWithWellFormedJson) {
  FuzzFixture f = FuzzFixture::Make("fuzz_handle.oclr");
  RequestServer::Options options;
  options.serve.m = 5;
  // The sweep must not churn journal files or retrain on a lucky valid
  // update mutant; correctness of the update path has its own tests.
  options.update_journal = false;
  RequestServer server(f.registry.get(), options);

  uint64_t rng = 0xfee1deadull;
  for (int i = 0; i < 5000; ++i) {
    const std::string line = Mutant(&rng);
    SCOPED_TRACE(i);
    ExpectWellFormedReply(server.HandleLine(line), line);
  }
  for (const std::string& line : StructuredHostiles()) {
    ExpectWellFormedReply(server.HandleLine(line), line.substr(0, 64));
  }

  // After the sweep the server still serves exact rankings.
  f.BindDataset();
  OcularModelRecommender rec(f.model);
  BatchOptions batch;
  batch.m = 5;
  batch.skip_cold_users = false;
  const auto oracle = RecommendForAllUsers(rec, f.train, batch).value();
  EXPECT_TRUE(ReplyMatchesRanked(
      server.HandleLine(R"({"cmd":"recommend","user":2,"m":5})"),
      oracle.recommendations[2]));
  std::remove(f.model_path.c_str());
}

TEST(WireFuzzTest, TcpLineProtocolSurvivesPipelinedMutantBursts) {
  FuzzFixture f = FuzzFixture::Make("fuzz_tcp.oclr");
  RequestServer::Options options;
  options.serve.m = 5;
  options.update_journal = false;
  options.num_workers = 2;
  options.io_timeout_ms = 100;
  RequestServer server(f.registry.get(), options);

  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, 0).ok());
  });
  uint16_t port = 0;
  for (int ms = 0; ms < 10000 && port == 0; ++ms) {
    port = server.bound_port();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(port, 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  // Pipelined bursts of mutants: the daemon answers one line per
  // non-empty request line, in order, and the connection stays up.
  uint64_t rng = 0xdecafbadull;
  std::string read_buffer;
  constexpr int kBursts = 40;
  constexpr int kLinesPerBurst = 32;
  for (int burst = 0; burst < kBursts; ++burst) {
    SCOPED_TRACE(burst);
    std::string batch;
    std::vector<std::string> lines;
    for (int n = 0; n < kLinesPerBurst; ++n) {
      std::string line = Mutant(&rng);
      // Keep each line far under max_request_bytes and the batch far
      // under the socket buffers (the client writes before reading).
      if (line.size() > 900) line.resize(900);
      if (line.empty() || line == "\r") line = "x";
      batch += line;
      batch.push_back('\n');
      lines.push_back(std::move(line));
    }
    ASSERT_TRUE(net::SendAll(fd, batch.data(), batch.size()));
    for (int n = 0; n < kLinesPerBurst; ++n) {
      std::string reply;
      ASSERT_TRUE(net::ReadLine(fd, &read_buffer, &reply))
          << "connection died on burst " << burst << " line " << n
          << " input: " << lines[n];
      ExpectWellFormedReply(reply, lines[n]);
    }
  }

  // The connection is still healthy and exact after ~1300 hostile lines.
  f.BindDataset();
  OcularModelRecommender rec(f.model);
  BatchOptions batch_options;
  batch_options.m = 5;
  batch_options.skip_cold_users = false;
  const auto oracle = RecommendForAllUsers(rec, f.train, batch_options).value();
  const std::string clean = "{\"cmd\":\"recommend\",\"user\":4,\"m\":5}\n";
  ASSERT_TRUE(net::SendAll(fd, clean.data(), clean.size()));
  std::string reply;
  ASSERT_TRUE(net::ReadLine(fd, &read_buffer, &reply));
  EXPECT_TRUE(ReplyMatchesRanked(reply, oracle.recommendations[4])) << reply;
  ::close(fd);

  RequestServer::RequestShutdown();
  serve_thread.join();
  EXPECT_FALSE(RequestServer::ShutdownRequested());
  EXPECT_GE(server.Stats().requests_served,
            static_cast<uint64_t>(kBursts * kLinesPerBurst));
  std::remove(f.model_path.c_str());
}

/// Connects a blocking loopback client with TCP_NODELAY (so 1-byte sends
/// really hit the wire as 1-byte segments, exercising the server's
/// incremental line assembly instead of kernel coalescing).
int ConnectNoDelay(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(WireFuzzTest, OneByteTrickleDeliveryMatchesWholeLineDelivery) {
  FuzzFixture f = FuzzFixture::Make("fuzz_trickle.oclr");
  RequestServer::Options options;
  options.serve.m = 5;
  options.update_journal = false;
  options.num_workers = 1;
  options.io_timeout_ms = 100;
  // A deliberately tiny framing cap so the newline-free trickle below
  // proves the bound without streaming megabytes one byte at a time.
  options.max_request_bytes = 2048;
  RequestServer server(f.registry.get(), options);

  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, 0).ok());
  });
  uint16_t port = 0;
  for (int ms = 0; ms < 10000 && port == 0; ++ms) {
    port = server.bound_port();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(port, 0);

  // Deterministic corpus: recommend variants, hostile shapes, and seeded
  // mutants. Lines whose reply depends on daemon state (stats) or that
  // could end/alter the session (quit, reload, update) are excluded —
  // the two deliveries below must produce bit-identical reply streams.
  std::vector<std::string> corpus = {
      R"({"cmd":"recommend","user":3,"m":10})",
      R"({"cmd":"recommend","model":"default","user":0,"m":1})",
      R"({"cmd":"recommend","user":7,"exclude":[1,5,9],"m":4})",
      R"({"cmd":"recommend","history":[5,1,5,9],"m":6})",
      R"({"cmd":"models"})",
      R"({"user":1e9,"m":-3})",
      R"({"cmd":42,"user":[],"m":{}})",
      R"({{{{]]]]}}}})",
      "{\"user\":0,\"m\":4}   trailing garbage",
      std::string(300, '[') + "0" + std::string(300, ']'),
      "{\"user\":" + std::string(400, '9') + "}",
  };
  uint64_t rng = 0x721c71eull;
  while (corpus.size() < 40) {
    std::string line = Mutant(&rng);
    if (line.size() > 400) line.resize(400);
    if (line.find("stats") != std::string::npos ||
        line.find("quit") != std::string::npos ||
        line.find("reload") != std::string::npos ||
        line.find("update") != std::string::npos) {
      continue;
    }
    corpus.push_back(std::move(line));
  }

  // Delivery 1: every line dribbled one byte per send(2) — the hardest
  // possible split; the server assembles lines across ~hundreds of
  // 1-byte reads per request.
  std::vector<std::string> trickle_replies;
  {
    const int fd = ConnectNoDelay(port);
    ASSERT_GE(fd, 0);
    std::string read_buffer;
    for (size_t i = 0; i < corpus.size(); ++i) {
      SCOPED_TRACE(i);
      const std::string framed = corpus[i] + "\n";
      for (const char byte : framed) {
        ASSERT_TRUE(net::SendAll(fd, &byte, 1));
      }
      std::string reply;
      ASSERT_TRUE(net::ReadLine(fd, &read_buffer, &reply))
          << "trickled line " << i << " got no reply: " << corpus[i];
      ExpectWellFormedReply(reply, corpus[i]);
      trickle_replies.push_back(std::move(reply));
    }
    ::close(fd);
  }

  // Delivery 2: the same corpus as whole framed lines on a fresh
  // connection. Byte-boundary splits must be invisible: identical bytes.
  {
    const int fd = ConnectNoDelay(port);
    ASSERT_GE(fd, 0);
    std::string read_buffer;
    for (size_t i = 0; i < corpus.size(); ++i) {
      SCOPED_TRACE(i);
      const std::string framed = corpus[i] + "\n";
      ASSERT_TRUE(net::SendAll(fd, framed.data(), framed.size()));
      std::string reply;
      ASSERT_TRUE(net::ReadLine(fd, &read_buffer, &reply));
      EXPECT_EQ(reply, trickle_replies[i])
          << "delivery-dependent reply for: " << corpus[i];
    }
    ::close(fd);
  }

  // Buffer bound under trickle: a newline-free 1-byte stream must hit
  // the 413 at max_request_bytes — the line buffer cannot grow past the
  // cap no matter how the bytes arrive.
  {
    const int fd = ConnectNoDelay(port);
    ASSERT_GE(fd, 0);
    size_t sent = 0;
    const char byte = 'z';
    for (size_t i = 0; i < 4096; ++i) {
      if (!net::SendAll(fd, &byte, 1)) break;  // peer closed: RST
      ++sent;
    }
    std::string read_buffer, reply;
    ASSERT_TRUE(net::ReadLine(fd, &read_buffer, &reply))
        << "newline-free trickle must get a 413 reply";
    auto parsed = JsonValue::Parse(reply);
    ASSERT_TRUE(parsed.ok()) << reply;
    EXPECT_FALSE(parsed->Find("ok")->boolean());
    ASSERT_NE(parsed->Find("code"), nullptr);
    EXPECT_EQ(parsed->Find("code")->number(), 413.0);
    EXPECT_FALSE(net::ReadLine(fd, &read_buffer, &reply))
        << "oversize trickle connection must be closed";
    ::close(fd);
  }

  RequestServer::RequestShutdown();
  serve_thread.join();
  EXPECT_FALSE(RequestServer::ShutdownRequested());
  std::remove(f.model_path.c_str());
}

}  // namespace
}  // namespace ocular
