// Perf-contract tests for the blocked scoring engine:
//   1. ScoreBlock vs per-pair Score oracle parity (<= 1e-12 relative) for
//      every Recommender subclass, across block sizes that split the
//      catalog unevenly;
//   2. the engine serve loop (ServeTopM / ServeTopMCandidates) performs
//      zero heap allocations per user in steady state, enforced with a
//      global operator-new counting hook (the ServeWorkspace contract);
//   3. TopMInto: scratch-heap reuse, selection-threshold semantics, and
//      equivalence with the legacy TopM wrapper;
//   4. serial-vs-parallel RecommendForAllUsers determinism (bit-identical
//      items AND scores);
//   5. candidate mode: off by default, subset-of-catalog lists, and
//      high exact-vs-candidate overlap on planted co-cluster data.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "baselines/bpr.h"
#include "baselines/coclust.h"
#include "baselines/ials.h"
#include "baselines/knn.h"
#include "baselines/wals.h"
#include "common/rng.h"
#include "core/fold_in.h"
#include "core/ocular_recommender.h"
#include "data/synthetic.h"
#include "serving/batch.h"
#include "serving/score_engine.h"
#include "sparse/coo.h"
#include "test_util.h"

// ------------------------------------------------- allocation counting hook
// Same pattern as tests/perf_kernel_test.cpp: every global operator new
// bumps a counter; the alloc-free tests assert the counter does not move
// across a window of steady-state serves.

namespace {
std::atomic<uint64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ocular {
namespace {

// ------------------------------------------------------ parity fixtures

/// A fitted recommender under test, with a name for failure messages.
struct FittedCase {
  std::string label;
  std::unique_ptr<Recommender> rec;
};

/// Fits every Recommender subclass in the library on the same random
/// matrix. Small hyper-parameters: parity only needs fitted state, not
/// converged models.
std::vector<FittedCase> FitAllRecommenders(const CsrMatrix& r) {
  std::vector<FittedCase> cases;

  OcularConfig oc;
  oc.k = 6;
  oc.lambda = 0.3;
  oc.max_sweeps = 8;
  cases.push_back({"OCuLaR", std::make_unique<OcularRecommender>(oc)});

  OcularConfig rc = oc;
  rc.variant = OcularVariant::kRelative;
  rc.lambda = 3.0;
  cases.push_back({"R-OCuLaR", std::make_unique<OcularRecommender>(rc)});

  OcularConfig bc = oc;
  bc.use_biases = true;
  cases.push_back({"OCuLaR+biases", std::make_unique<OcularRecommender>(bc)});

  WalsConfig wc;
  wc.k = 5;
  wc.iterations = 4;
  cases.push_back({"wALS", std::make_unique<WalsRecommender>(wc)});

  IalsConfig ic;
  ic.k = 5;
  ic.iterations = 4;
  cases.push_back({"iALS", std::make_unique<IalsRecommender>(ic)});

  BprConfig pc;
  pc.k = 5;
  pc.epochs = 3;
  cases.push_back({"BPR", std::make_unique<BprRecommender>(pc)});

  KnnConfig kc;
  kc.num_neighbors = 6;
  cases.push_back({"user-based", std::make_unique<UserKnnRecommender>(kc)});
  cases.push_back({"item-based", std::make_unique<ItemKnnRecommender>(kc)});

  cases.push_back({"popularity", std::make_unique<PopularityRecommender>()});

  CoclustConfig cc;
  cc.user_clusters = 3;
  cc.item_clusters = 3;
  cc.iterations = 5;
  cases.push_back({"coclust", std::make_unique<CoclustRecommender>(cc)});

  for (auto& c : cases) {
    EXPECT_TRUE(c.rec->Fit(r).ok()) << c.label;
  }
  return cases;
}

TEST(ScoreBlockParityTest, MatchesScoreOracleForEverySubclass) {
  const CsrMatrix r = test::RandomCsr(45, 37, 450, 11);
  const auto cases = FitAllRecommenders(r);
  // Block sizes chosen to split 37 items unevenly (last block partial) and
  // to cover the single-block and per-item extremes.
  for (const uint32_t block : {1u, 7u, 16u, 37u, 64u}) {
    for (const auto& c : cases) {
      std::vector<double> tile(block);
      for (uint32_t u = 0; u < c.rec->num_users(); u += 3) {
        for (uint32_t b0 = 0; b0 < c.rec->num_items(); b0 += block) {
          const uint32_t b1 = std::min(c.rec->num_items(), b0 + block);
          c.rec->ScoreBlock(u, b0, b1, {tile.data(), b1 - b0});
          for (uint32_t i = b0; i < b1; ++i) {
            const double oracle = c.rec->Score(u, i);
            EXPECT_NEAR(tile[i - b0], oracle,
                        1e-12 * std::max(1.0, std::abs(oracle)))
                << c.label << " u=" << u << " i=" << i << " block=" << block;
          }
        }
      }
    }
  }
}

TEST(ScoreBlockParityTest, RawScoreBlockMapsBackToScore) {
  const CsrMatrix r = test::RandomCsr(45, 37, 450, 11);
  const auto cases = FitAllRecommenders(r);
  // Contract: ScoreFromRaw(RawScoreBlock(...)[j]) reproduces Score. For
  // identity-raw models this is ScoreBlock again; for the OCuLaR family it
  // checks the affinity-domain kernel + probability map round trip.
  std::vector<double> raw(37);
  for (const auto& c : cases) {
    for (uint32_t u = 0; u < c.rec->num_users(); u += 5) {
      c.rec->RawScoreBlock(u, 0, c.rec->num_items(),
                           {raw.data(), c.rec->num_items()});
      for (uint32_t i = 0; i < c.rec->num_items(); ++i) {
        const double oracle = c.rec->Score(u, i);
        EXPECT_NEAR(c.rec->ScoreFromRaw(raw[i]), oracle,
                    1e-12 * std::max(1.0, std::abs(oracle)))
            << c.label << " u=" << u << " i=" << i;
      }
    }
  }
}

TEST(ScoreBlockParityTest, ServeTopMMatchesPerPairTopM) {
  const CsrMatrix r = test::RandomCsr(40, 30, 380, 13);
  const auto cases = FitAllRecommenders(r);
  ServeOptions serve;
  serve.m = 7;
  serve.block_items = 8;  // force multiple partial tiles
  for (const auto& c : cases) {
    ServeWorkspace ws;
    ws.Reserve(serve.m, serve.block_items);
    for (uint32_t u = 0; u < c.rec->num_users(); ++u) {
      // Per-pair oracle: the historical fresh-vector TopM path.
      std::vector<double> scores(c.rec->num_items());
      for (uint32_t i = 0; i < scores.size(); ++i) {
        scores[i] = c.rec->Score(u, i);
      }
      const auto oracle = TopM(scores, serve.m, r.Row(u));
      const auto got = ServeTopM(*c.rec, u, r.Row(u), serve, &ws);
      ASSERT_EQ(got.size(), oracle.size()) << c.label << " u=" << u;
      for (size_t rank = 0; rank < oracle.size(); ++rank) {
        EXPECT_EQ(got[rank].item, oracle[rank].item)
            << c.label << " u=" << u << " rank=" << rank;
        EXPECT_NEAR(got[rank].score, oracle[rank].score,
                    1e-12 * std::max(1.0, std::abs(oracle[rank].score)))
            << c.label << " u=" << u << " rank=" << rank;
      }
    }
  }
}

// ---------------------------------------------------------- TopMInto

TEST(TopMIntoTest, WrapperEquivalenceAndHeapReuse) {
  Rng rng = test::MakeRng(7);
  std::vector<double> scores(100);
  for (auto& s : scores) s = rng.Uniform(-1.0, 1.0);
  const std::vector<uint32_t> exclude{3, 17, 44, 90};

  const auto wrapper = TopM(scores, 10, exclude);
  std::vector<ScoredItem> heap;
  for (int pass = 0; pass < 3; ++pass) {  // reuse the same scratch heap
    TopMInto(scores, 10, exclude,
             -std::numeric_limits<double>::infinity(), &heap);
    ASSERT_EQ(heap.size(), wrapper.size());
    for (size_t i = 0; i < heap.size(); ++i) {
      EXPECT_EQ(heap[i], wrapper[i]) << "pass " << pass << " rank " << i;
    }
  }
}

TEST(TopMIntoTest, ThresholdDuringSelectionMatchesPostFilter) {
  Rng rng = test::MakeRng(8);
  std::vector<double> scores(80);
  for (auto& s : scores) s = rng.Uniform(0.0, 1.0);
  const double min_score = 0.6;

  // Post-filter oracle: rank everything, keep the >= min_score prefix.
  auto oracle = TopM(scores, 12, {});
  size_t keep = 0;
  while (keep < oracle.size() && oracle[keep].score >= min_score) ++keep;
  oracle.resize(keep);

  std::vector<ScoredItem> heap;
  TopMInto(scores, 12, {}, min_score, &heap);
  ASSERT_EQ(heap.size(), oracle.size());
  for (size_t i = 0; i < heap.size(); ++i) EXPECT_EQ(heap[i], oracle[i]);
  for (const auto& si : heap) EXPECT_GE(si.score, min_score);
}

// ------------------------------------------------------------ alloc-free

TEST(ServeAllocTest, SteadyStateServesAllocateNothing) {
  const CsrMatrix r = test::RandomCsr(60, 200, 1800, 21);
  OcularConfig cfg;
  cfg.k = 8;
  cfg.lambda = 0.3;
  cfg.max_sweeps = 10;
  OcularRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(r).ok());

  ServeOptions serve;
  serve.m = 20;
  serve.block_items = 64;
  ServeWorkspace ws;
  ws.Reserve(serve.m, serve.block_items);
  // Warm-up: lets every lazily-grown buffer reach steady-state size.
  for (uint32_t u = 0; u < 5; ++u) ServeTopM(rec, u, r.Row(u), serve, &ws);

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int pass = 0; pass < 3; ++pass) {
    for (uint32_t u = 0; u < rec.num_users(); ++u) {
      ServeTopM(rec, u, r.Row(u), serve, &ws);
    }
  }
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), before)
      << "the serve loop must not touch the heap in steady state";
}

TEST(ServeAllocTest, CandidateModeServesAllocateNothing) {
  const CsrMatrix r = test::TinyBlocksCsr();
  OcularConfig cfg;
  cfg.k = 4;
  cfg.lambda = 0.1;
  cfg.max_sweeps = 60;
  OcularRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(r).ok());
  const auto index = BuildCoClusterCandidateIndex(rec.model(), 0.4).value();

  ServeOptions serve;
  serve.m = 5;
  ServeWorkspace ws;
  ws.Reserve(serve.m, serve.block_items, index.max_candidate_items);
  for (uint32_t u = 0; u < 5; ++u) {
    ServeTopMCandidates(rec, u, r.Row(u), serve, index, &ws);
  }

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int pass = 0; pass < 3; ++pass) {
    for (uint32_t u = 0; u < rec.num_users(); ++u) {
      ServeTopMCandidates(rec, u, r.Row(u), serve, index, &ws);
    }
  }
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), before)
      << "candidate gathering must stay within the reserved capacity";
}

TEST(ServeAllocTest, FoldInServesAllocateNothingInSteadyState) {
  // The fold-in request path (sanitize -> single-row solve -> blocked
  // ranking, including the popularity fallback) must be allocation-free
  // once the per-worker scratch has warmed up — same contract as the
  // stored-user serve loop above.
  const CsrMatrix r = test::RandomCsr(60, 200, 1800, 23);
  OcularConfig cfg;
  cfg.k = 8;
  cfg.lambda = 0.3;
  cfg.max_sweeps = 10;
  OcularRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(r).ok());
  auto ctx = MakeFoldInContext(rec.model(), cfg);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();

  constexpr size_t kMaxHistory = 12;
  // Pre-built request stream (one empty history exercises the fallback).
  std::vector<std::vector<uint32_t>> requests;
  Rng rng(7);
  for (int q = 0; q < 8; ++q) {
    std::vector<uint32_t> history;
    for (size_t n = 0; n < kMaxHistory; ++n) {
      history.push_back(
          static_cast<uint32_t>(rng.Uniform(0.0, r.num_cols())));
    }
    SanitizeHistory(&history, r.num_cols());
    requests.push_back(std::move(history));
  }
  requests.push_back({});

  const ServeOptions serve;
  FoldInWorkspace ws;
  ws.Reserve(ctx->dims(), kMaxHistory);
  std::vector<double> tile;
  std::vector<ScoredItem> selection;
  const FoldInOptions options;
  for (const auto& history : requests) {  // warm-up pass
    ASSERT_TRUE(RecommendForHistoryInto(*ctx, history, 20, serve.min_score,
                                        64, options, &ws, &tile, &selection)
                    .ok());
  }

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int pass = 0; pass < 3; ++pass) {
    for (const auto& history : requests) {
      ASSERT_TRUE(RecommendForHistoryInto(*ctx, history, 20, serve.min_score,
                                          64, options, &ws, &tile,
                                          &selection)
                      .ok());
    }
  }
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), before)
      << "the fold-in serve path must not touch the heap in steady state";
}

// ----------------------------------------------- batch determinism

TEST(BatchDeterminismTest, SerialAndParallelBitIdentical) {
  const CsrMatrix r = test::RandomCsr(70, 50, 900, 31);
  OcularConfig cfg;
  cfg.k = 6;
  cfg.lambda = 0.4;
  cfg.max_sweeps = 12;
  OcularRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(r).ok());

  BatchOptions opts;
  opts.m = 9;
  opts.block_items = 16;
  auto serial = RecommendForAllUsers(rec, r, opts).value();
  ThreadPool pool(4);
  auto parallel = RecommendForAllUsers(rec, r, opts, &pool).value();

  ASSERT_EQ(serial.recommendations.size(), parallel.recommendations.size());
  for (size_t u = 0; u < serial.recommendations.size(); ++u) {
    ASSERT_EQ(serial.recommendations[u].size(),
              parallel.recommendations[u].size())
        << "user " << u;
    for (size_t rank = 0; rank < serial.recommendations[u].size(); ++rank) {
      // Bit-identical: same items AND exactly equal scores.
      EXPECT_EQ(serial.recommendations[u][rank],
                parallel.recommendations[u][rank])
          << "user " << u << " rank " << rank;
    }
  }
  EXPECT_EQ(serial.users_scored, parallel.users_scored);
  EXPECT_EQ(serial.total_items, parallel.total_items);
}

// ------------------------------------------------------- candidate mode

TEST(CandidateModeTest, OverlapIsHighOnPlantedCoClusters) {
  const CsrMatrix r = test::TinyBlocksCsr();
  OcularConfig cfg;
  cfg.k = 3;
  cfg.lambda = 0.05;
  cfg.max_sweeps = 150;
  OcularRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(r).ok());

  const auto index = BuildCoClusterCandidateIndex(rec.model(), 0.4).value();
  ServeOptions serve;
  serve.m = 4;
  // Score floor keeps the comparison on meaningful recommendations (the
  // block holes); without it the exact lists pad out with near-zero
  // cross-block items that no candidate set should be charged for.
  serve.min_score = 0.3;
  auto overlap_or = CandidateOverlapAtM(rec, r, index, serve);
  ASSERT_TRUE(overlap_or.ok()) << overlap_or.status().ToString();
  const double overlap = overlap_or.value();
  // On two planted blocks the model's co-clusters recover the block
  // structure, so candidate pruning keeps (nearly) every exact hit.
  EXPECT_GE(overlap, 0.9) << "candidate pruning lost too many exact top-M "
                             "items on the easiest co-clustering instance";
}

TEST(CandidateModeTest, CandidateListsAreSubsetsOfUserCoClusters) {
  const CsrMatrix r = test::TinyBlocksCsr();
  OcularConfig cfg;
  cfg.k = 3;
  cfg.lambda = 0.05;
  cfg.max_sweeps = 150;
  OcularRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(r).ok());
  const auto index = BuildCoClusterCandidateIndex(rec.model(), 0.4).value();

  ServeOptions serve;
  serve.m = 6;
  ServeWorkspace ws;
  ws.Reserve(serve.m, serve.block_items, index.max_candidate_items);
  for (uint32_t u = 0; u < rec.num_users(); ++u) {
    auto ranked = ServeTopMCandidates(rec, u, r.Row(u), serve, index, &ws);
    for (const ScoredItem& si : ranked) {
      bool in_some_shared_cluster = false;
      for (uint32_t c : index.dims_per_user[u]) {
        const auto& items = index.items_per_dim[c];
        if (std::binary_search(items.begin(), items.end(), si.item)) {
          in_some_shared_cluster = true;
          break;
        }
      }
      EXPECT_TRUE(in_some_shared_cluster)
          << "user " << u << " got item " << si.item
          << " outside every shared co-cluster";
    }
  }
}

/// Two disjoint random-hole blocks, a small cousin of the serve-bench
/// workload (bench_serve_hot's TwoBlockWorkload): big enough that an
/// over-parameterized K spreads each block over several dimensions
/// instead of memorizing one user per dimension.
CsrMatrix TwoBlocksCsr(uint32_t users_per_block, uint32_t items_per_block,
                       uint64_t seed) {
  Rng rng(seed);
  CooBuilder coo;
  for (uint32_t b = 0; b < 2; ++b) {
    for (uint32_t u = 0; u < users_per_block; ++u) {
      for (uint32_t i = 0; i < items_per_block; ++i) {
        if (rng.Uniform(0.0, 1.0) < 0.7) {
          coo.Add(b * users_per_block + u, b * items_per_block + i);
        }
      }
    }
  }
  return CsrMatrix::FromCoo(
      coo.Finalize(2 * users_per_block, 2 * items_per_block).value());
}

TEST(CandidateModeTest, RelativeMembershipRecoversOverlapAtLargerK) {
  // With K well above the number of planted blocks, the affinity mass
  // spreads over many dimensions and every factor entry shrinks — the
  // absolute 0.6 floor then drops rows out of every co-cluster (the
  // overlap=0.25 regression BENCH_serve.json recorded at K=50). The
  // relative row-max rule tracks each row's own scale instead.
  const CsrMatrix r = TwoBlocksCsr(60, 40, 5);
  OcularConfig cfg;
  cfg.k = 12;
  cfg.lambda = 0.5;
  cfg.max_sweeps = 60;
  cfg.seed = 3;
  OcularRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(r).ok());

  CandidateIndexOptions options;
  options.threshold = 0.6;
  options.relative = 0.3;
  const auto index = BuildCoClusterCandidateIndex(rec.model(), options).value();
  EXPECT_EQ(index.options.relative, 0.3);
  // Every user must belong to at least one co-cluster under the relative
  // rule (each row has a maximal entry, which is always a member).
  for (const auto& dims : index.dims_per_user) {
    EXPECT_FALSE(dims.empty());
  }

  ServeOptions serve;
  serve.m = 5;
  // Score floor keeps the comparison on meaningful recommendations (the
  // block holes), as in OverlapIsHighOnPlantedCoClusters above.
  serve.min_score = 0.3;
  auto overlap = CandidateOverlapAtM(rec, r, index, serve);
  ASSERT_TRUE(overlap.ok()) << overlap.status().ToString();
  EXPECT_GE(*overlap, 0.8)
      << "relative membership must keep candidate pruning usable at K=12";

  // And it cannot do worse than the absolute-only rule it subsumes
  // (every absolute member stays a member).
  const auto absolute =
      BuildCoClusterCandidateIndex(rec.model(), /*threshold=*/0.6).value();
  auto abs_overlap = CandidateOverlapAtM(rec, r, absolute, serve);
  if (abs_overlap.ok()) {
    EXPECT_GE(*overlap, *abs_overlap - 1e-12);
  }
}

TEST(CandidateModeTest, CandidateIndexOptionValidation) {
  const CsrMatrix r = test::TinyBlocksCsr();
  OcularConfig cfg;
  cfg.k = 3;
  cfg.lambda = 0.1;
  cfg.max_sweeps = 20;
  OcularRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(r).ok());

  CandidateIndexOptions bad;
  bad.threshold = 0.0;
  bad.relative = 0.0;  // neither rule active
  EXPECT_TRUE(BuildCoClusterCandidateIndex(rec.model(), bad)
                  .status()
                  .IsInvalidArgument());
  bad.relative = 1.5;  // out of (0, 1]
  EXPECT_TRUE(BuildCoClusterCandidateIndex(rec.model(), bad)
                  .status()
                  .IsInvalidArgument());

  // Relative-only is a valid configuration.
  CandidateIndexOptions rel_only;
  rel_only.threshold = 0.0;
  rel_only.relative = 1.0;  // only each row's maximal entries
  auto index = BuildCoClusterCandidateIndex(rec.model(), rel_only);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  for (const auto& dims : index->dims_per_user) {
    EXPECT_GE(dims.size(), 1u);
  }
}

TEST(CandidateModeTest, BatchCandidateModeIsOffByDefaultAndValidated) {
  const CsrMatrix r = test::TinyBlocksCsr();
  OcularConfig cfg;
  cfg.k = 3;
  cfg.lambda = 0.05;
  cfg.max_sweeps = 80;
  OcularRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(r).ok());

  BatchOptions opts;
  EXPECT_EQ(opts.candidates, nullptr);  // off by default

  // A candidate index from a mismatched model is rejected.
  OcularConfig other = cfg;
  OcularRecommender small(other);
  ASSERT_TRUE(small.Fit(test::RandomCsr(5, 16, 30, 3)).ok());
  const auto wrong = BuildCoClusterCandidateIndex(small.model(), 0.4).value();
  opts.candidates = &wrong;
  EXPECT_TRUE(RecommendForAllUsers(rec, r, opts)
                  .status()
                  .IsInvalidArgument());

  // A matching index serves lists that are subsets of exact serving.
  const auto index = BuildCoClusterCandidateIndex(rec.model(), 0.4).value();
  opts.candidates = &index;
  auto cand_batch = RecommendForAllUsers(rec, r, opts).value();
  opts.candidates = nullptr;
  auto exact_batch = RecommendForAllUsers(rec, r, opts).value();
  for (uint32_t u = 0; u < rec.num_users(); ++u) {
    EXPECT_LE(cand_batch.recommendations[u].size(),
              exact_batch.recommendations[u].size());
  }
  EXPECT_TRUE(
      BuildCoClusterCandidateIndex(rec.model(), 0.0).status()
          .IsInvalidArgument());
}

}  // namespace
}  // namespace ocular
