// Unit tests for src/baselines: wALS, BPR, user/item kNN, popularity.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/bpr.h"
#include "baselines/knn.h"
#include "baselines/wals.h"
#include "common/rng.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace ocular {
namespace {

/// Small planted dataset shared across baseline quality checks.
PlantedCoClusterData SmallPlanted(uint64_t seed) {
  PlantedCoClusterConfig cfg;
  cfg.num_users = 120;
  cfg.num_items = 80;
  cfg.num_clusters = 4;
  cfg.user_membership_prob = 0.25;
  cfg.item_membership_prob = 0.25;
  Rng rng(seed);
  return GeneratePlantedCoClusters(cfg, &rng).value();
}

/// AUC of a recommender's scores on held-out positives vs random unknowns.
double HoldoutAuc(const Recommender& rec, const CsrMatrix& train,
                  const CsrMatrix& test, uint64_t seed) {
  Rng rng(seed);
  int wins = 0, trials = 0;
  for (auto [u, i] : test.ToPairs()) {
    for (int rep = 0; rep < 3; ++rep) {
      uint32_t j;
      do {
        j = static_cast<uint32_t>(rng.UniformInt(train.num_cols()));
      } while (train.HasEntry(u, j) || test.HasEntry(u, j));
      const double si = rec.Score(u, i);
      const double sj = rec.Score(u, j);
      if (si > sj) ++wins;
      ++trials;
    }
  }
  return trials > 0 ? static_cast<double>(wins) / trials : 0.0;
}

// ------------------------------------------------------------------ wALS

TEST(WalsConfigTest, Validation) {
  WalsConfig c;
  EXPECT_TRUE(c.Validate().ok());
  c.k = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = WalsConfig{};
  c.b = 1.5;
  EXPECT_FALSE(c.Validate().ok());
  c = WalsConfig{};
  c.lambda = -1;
  EXPECT_FALSE(c.Validate().ok());
  c = WalsConfig{};
  c.iterations = 0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(WalsTest, FitsAndScoresPositivesAboveUnknowns) {
  auto data = SmallPlanted(1);
  Rng rng(2);
  auto split = SplitInteractions(data.dataset.interactions(), 0.75, &rng)
                   .value();
  WalsConfig cfg;
  cfg.k = 8;
  cfg.iterations = 10;
  WalsRecommender wals(cfg);
  ASSERT_TRUE(wals.Fit(split.train).ok());
  EXPECT_EQ(wals.name(), "wALS");
  const double auc = HoldoutAuc(wals, split.train, split.test, 3);
  EXPECT_GT(auc, 0.75) << "wALS should rank held-out positives high";
}

TEST(WalsTest, RejectsEmptyMatrix) {
  WalsConfig cfg;
  WalsRecommender wals(cfg);
  CsrMatrix empty = CsrMatrix::FromPairs({}, 4, 4).value();
  EXPECT_TRUE(wals.Fit(empty).IsInvalidArgument());
}

TEST(WalsTest, ReconstructsRankOnePattern) {
  // Block of users 0-9 all bought items 0-9; wALS should score in-block
  // unknowns higher than out-of-block cells.
  CooBuilder coo;
  for (uint32_t u = 0; u < 10; ++u) {
    for (uint32_t i = 0; i < 10; ++i) {
      if ((u + i) % 7 != 0) coo.Add(u, i);  // leave some holes
    }
  }
  coo.Add(15, 15);  // lone unrelated user
  CsrMatrix r = CsrMatrix::FromCoo(coo.Finalize(20, 20).value());
  WalsConfig cfg;
  cfg.k = 3;
  cfg.iterations = 15;
  WalsRecommender wals(cfg);
  ASSERT_TRUE(wals.Fit(r).ok());
  // Hole (0,7): u+i=7 -> unknown but inside the block.
  EXPECT_GT(wals.Score(0, 7), wals.Score(0, 15));
}

// ------------------------------------------------------------------- BPR

TEST(BprConfigTest, Validation) {
  BprConfig c;
  EXPECT_TRUE(c.Validate().ok());
  c.k = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = BprConfig{};
  c.learning_rate = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = BprConfig{};
  c.epochs = 0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(BprTest, LearnsRankingOnPlantedData) {
  auto data = SmallPlanted(4);
  Rng rng(5);
  auto split = SplitInteractions(data.dataset.interactions(), 0.75, &rng)
                   .value();
  BprConfig cfg;
  cfg.k = 8;
  cfg.epochs = 25;
  BprRecommender bpr(cfg);
  ASSERT_TRUE(bpr.Fit(split.train).ok());
  EXPECT_EQ(bpr.name(), "BPR");
  const double auc = HoldoutAuc(bpr, split.train, split.test, 6);
  EXPECT_GT(auc, 0.7) << "BPR AUC should beat random by a wide margin";
}

TEST(BprTest, RejectsDegenerateInputs) {
  BprConfig cfg;
  BprRecommender bpr(cfg);
  CsrMatrix empty = CsrMatrix::FromPairs({}, 4, 4).value();
  EXPECT_TRUE(bpr.Fit(empty).IsInvalidArgument());
  // Single item: no (positive, unknown) pair exists.
  CsrMatrix one = CsrMatrix::FromPairs({{0, 0}}, 2, 1).value();
  EXPECT_TRUE(bpr.Fit(one).IsInvalidArgument());
  // All items positive for every user: no unknowns to sample.
  CsrMatrix full =
      CsrMatrix::FromPairs({{0, 0}, {0, 1}, {1, 0}, {1, 1}}, 2, 2).value();
  EXPECT_TRUE(bpr.Fit(full).IsInvalidArgument());
}

// ------------------------------------------------------------------- kNN

CsrMatrix KnnToy() {
  // Users 0,1 like items {0,1,2}; users 2,3 like items {3,4}.
  // User 0 is missing item 2; user 2 is missing item 4.
  return CsrMatrix::FromPairs({{0, 0}, {0, 1},
                               {1, 0}, {1, 1}, {1, 2},
                               {2, 3},
                               {3, 3}, {3, 4}},
                              4, 5)
      .value();
}

TEST(UserKnnTest, NeighborsAndScores) {
  KnnConfig cfg;
  cfg.num_neighbors = 2;
  UserKnnRecommender knn(cfg);
  ASSERT_TRUE(knn.Fit(KnnToy()).ok());
  EXPECT_EQ(knn.name(), "user-based");
  // User 0's nearest neighbor is user 1 (cosine 2/sqrt(2*3)).
  ASSERT_FALSE(knn.Neighbors(0).empty());
  EXPECT_EQ(knn.Neighbors(0)[0].item, 1u);
  EXPECT_NEAR(knn.Neighbors(0)[0].score, 2.0 / std::sqrt(6.0), 1e-12);
  // Item 2 (bought by neighbor 1) scores above item 3 (different block).
  EXPECT_GT(knn.Score(0, 2), knn.Score(0, 3));
  // Recommend matches Score-based ranking and excludes seen items.
  auto top = knn.Recommend(0, 2, KnnToy());
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].item, 2u);
}

TEST(ItemKnnTest, NeighborsAndScores) {
  KnnConfig cfg;
  cfg.num_neighbors = 3;
  ItemKnnRecommender knn(cfg);
  ASSERT_TRUE(knn.Fit(KnnToy()).ok());
  EXPECT_EQ(knn.name(), "item-based");
  // Items 0 and 1 are co-bought by users {0,1}: cosine 1 -> top neighbor.
  ASSERT_FALSE(knn.Neighbors(0).empty());
  EXPECT_EQ(knn.Neighbors(0)[0].item, 1u);
  // For user 2 (has item 3), item 4 should beat item 0.
  EXPECT_GT(knn.Score(2, 4), knn.Score(2, 0));
}

TEST(KnnTest, RejectsZeroNeighbors) {
  KnnConfig cfg;
  cfg.num_neighbors = 0;
  UserKnnRecommender uknn(cfg);
  EXPECT_TRUE(uknn.Fit(KnnToy()).IsInvalidArgument());
  ItemKnnRecommender iknn(cfg);
  EXPECT_TRUE(iknn.Fit(KnnToy()).IsInvalidArgument());
}

TEST(KnnTest, UserWithNoHistoryGetsNoNeighbors) {
  CsrMatrix r = CsrMatrix::FromPairs({{0, 0}, {1, 0}}, 3, 2).value();
  KnnConfig cfg;
  UserKnnRecommender knn(cfg);
  ASSERT_TRUE(knn.Fit(r).ok());
  EXPECT_TRUE(knn.Neighbors(2).empty());
  EXPECT_DOUBLE_EQ(knn.Score(2, 1), 0.0);
}

// ------------------------------------------------------------ popularity

TEST(PopularityTest, ScoresByColumnDegree) {
  CsrMatrix r =
      CsrMatrix::FromPairs({{0, 1}, {1, 1}, {2, 1}, {0, 0}}, 3, 3).value();
  PopularityRecommender pop;
  ASSERT_TRUE(pop.Fit(r).ok());
  EXPECT_EQ(pop.name(), "popularity");
  EXPECT_DOUBLE_EQ(pop.Score(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(pop.Score(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(pop.Score(0, 2), 0.0);
  EXPECT_EQ(pop.num_items(), 3u);
}

// ----------------------------------------- personalization beats popularity

TEST(BaselineQualityTest, PersonalizedModelsBeatPopularityOnPlantedData) {
  auto data = SmallPlanted(7);
  Rng rng(8);
  auto split = SplitInteractions(data.dataset.interactions(), 0.75, &rng)
                   .value();
  PopularityRecommender pop;
  ASSERT_TRUE(pop.Fit(split.train).ok());
  const double pop_recall =
      EvaluateRankingAtM(pop, split.train, split.test, 20).value().recall;

  WalsConfig wcfg;
  wcfg.k = 8;
  wcfg.iterations = 10;
  WalsRecommender wals(wcfg);
  ASSERT_TRUE(wals.Fit(split.train).ok());
  const double wals_recall =
      EvaluateRankingAtM(wals, split.train, split.test, 20).value().recall;
  EXPECT_GT(wals_recall, pop_recall);

  KnnConfig kcfg;
  kcfg.num_neighbors = 20;
  UserKnnRecommender uknn(kcfg);
  ASSERT_TRUE(uknn.Fit(split.train).ok());
  const double knn_recall =
      EvaluateRankingAtM(uknn, split.train, split.test, 20).value().recall;
  EXPECT_GT(knn_recall, pop_recall);
}

}  // namespace
}  // namespace ocular
