// Perf-contract tests for the block-update kernels:
//   1. zero heap allocations inside ProjectedGradientStep / ArmijoStep per
//      block update (the BlockWorkspace contract), enforced with a global
//      operator-new counting hook;
//   2. the fused per-sweep objective (accumulated from the user-phase block
//      updates) reproduces the ObjectiveQ oracle to 1e-9 relative, across
//      serial / parallel / kernel trainers and config variants;
//   3. serial-vs-parallel equivalence: same seed and config give the same
//      final factors and final Q.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "common/rng.h"
#include "core/ocular_model.h"
#include "core/ocular_trainer.h"
#include "parallel/kernel_trainer.h"
#include "parallel/parallel_trainer.h"
#include "sparse/csr.h"
#include "sparse/dense.h"
#include "test_util.h"

// ------------------------------------------------- allocation counting hook
// Every global operator new bumps a counter; the alloc-free tests assert the
// counter does not move across a window of block updates. delete stays
// paired with malloc/free so mixed new/free never happens.

namespace {
std::atomic<uint64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ocular {
namespace {

// ------------------------------------------------------------ alloc-free

TEST(BlockKernelAllocTest, ProjectedGradientStepAllocatesNothing) {
  Rng rng = test::MakeRng(3);
  OcularConfig config;
  config.k = 8;
  config.lambda = 0.4;
  DenseMatrix other(40, 8);
  other.FillUniform(&rng, 0.0, 1.0);
  const std::vector<double> sums = other.ColumnSums();
  const std::vector<uint32_t> neighbors{1, 4, 9, 16, 25, 36};
  std::vector<double> f(8, 0.6);

  internal::BlockWorkspace ws;
  ws.Reserve(config.k, neighbors.size());

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int it = 0; it < 100; ++it) {
    // Alternate cold (invalidated) and warm dot-cache paths — both must be
    // allocation-free.
    if (it % 2 == 0) ws.Invalidate();
    internal::ProjectedGradientStep(f, neighbors, other, sums, config.lambda,
                                    1.0, {}, config, /*frozen_coord=*/-1,
                                    &ws);
  }
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), before)
      << "block updates must not touch the heap";
}

TEST(BlockKernelAllocTest, ArmijoStepAllocatesNothing) {
  Rng rng = test::MakeRng(5);
  OcularConfig config;
  config.k = 6;
  config.lambda = 0.3;
  DenseMatrix other(30, 6);
  other.FillUniform(&rng, 0.0, 1.0);
  const std::vector<double> sums = other.ColumnSums();
  const std::vector<uint32_t> neighbors{0, 7, 14, 21};
  std::vector<double> f(6, 0.5);
  std::vector<double> grad(6, 0.1);

  internal::BlockWorkspace ws;
  ws.Reserve(config.k, neighbors.size());

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int it = 0; it < 100; ++it) {
    ws.Invalidate();
    internal::ArmijoStep(f, grad, neighbors, other, sums, config.lambda, 1.0,
                         {}, config, &ws);
  }
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), before)
      << "line searches must not touch the heap";
}

// ------------------------------------------------- fused objective oracle

/// Expects the last traced Q to match the ObjectiveQ oracle on the final
/// model to 1e-9 relative.
void ExpectFusedMatchesOracle(const OcularFitResult& fit, const CsrMatrix& r,
                              const OcularConfig& cfg,
                              const std::vector<double>& weights = {}) {
  ASSERT_FALSE(fit.trace.empty());
  const double oracle = ObjectiveQ(fit.model, r, cfg.lambda, weights);
  const double fused = fit.trace.back().objective;
  EXPECT_NEAR(fused, oracle, 1e-9 * std::max(1.0, std::abs(oracle)))
      << "fused per-sweep Q diverged from the ObjectiveQ oracle";
}

class FusedObjectiveTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FusedObjectiveTest, SerialTrainerMatchesOracle) {
  const CsrMatrix r = test::RandomCsr(40, 30, 320, GetParam());
  OcularConfig cfg;
  cfg.k = 5;
  cfg.lambda = 0.7;
  cfg.max_sweeps = 5;
  cfg.tolerance = 0.0;
  OcularTrainer trainer(cfg);
  auto fit = trainer.Fit(r).value();
  ExpectFusedMatchesOracle(fit, r, cfg);
}

TEST_P(FusedObjectiveTest, SerialRelativeVariantMatchesOracle) {
  const CsrMatrix r = test::RandomCsr(35, 28, 250, GetParam());
  OcularConfig cfg;
  cfg.k = 4;
  cfg.lambda = 2.0;
  cfg.variant = OcularVariant::kRelative;
  cfg.max_sweeps = 4;
  cfg.tolerance = 0.0;
  OcularTrainer trainer(cfg);
  auto fit = trainer.Fit(r).value();
  ExpectFusedMatchesOracle(fit, r, cfg, trainer.UserWeights(r));
}

TEST_P(FusedObjectiveTest, SerialWithBiasesAndMultiStepMatchesOracle) {
  const CsrMatrix r = test::RandomCsr(30, 24, 200, GetParam());
  OcularConfig cfg;
  cfg.k = 4;
  cfg.lambda = 0.5;
  cfg.use_biases = true;
  cfg.block_steps = 3;  // exercises the warm dot-cache path
  cfg.max_sweeps = 3;
  cfg.tolerance = 0.0;
  OcularTrainer trainer(cfg);
  auto fit = trainer.Fit(r).value();
  ExpectFusedMatchesOracle(fit, r, cfg);
}

TEST_P(FusedObjectiveTest, ParallelTrainerMatchesOracle) {
  const CsrMatrix r = test::RandomCsr(40, 30, 320, GetParam());
  OcularConfig cfg;
  cfg.k = 5;
  cfg.lambda = 0.7;
  cfg.max_sweeps = 5;
  cfg.tolerance = 0.0;
  ParallelOcularTrainer trainer(cfg, 3);
  auto fit = trainer.Fit(r).value();
  ExpectFusedMatchesOracle(fit, r, cfg);
}

TEST_P(FusedObjectiveTest, KernelTrainerMatchesOracle) {
  const CsrMatrix r = test::RandomCsr(40, 30, 320, GetParam());
  OcularConfig cfg;
  cfg.k = 5;
  cfg.lambda = 0.7;
  cfg.max_sweeps = 4;
  cfg.tolerance = 0.0;
  KernelOcularTrainer trainer(cfg, 2);
  auto fit = trainer.Fit(r).value();
  ExpectFusedMatchesOracle(fit, r, cfg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedObjectiveTest,
                         ::testing::Range<uint64_t>(50, 55));

// ------------------------------------------- serial-parallel equivalence

TEST(SerialParallelEquivalenceTest, SameSeedSameConfigSameFinalQ) {
  const CsrMatrix r = test::RandomCsr(50, 40, 500, 77);
  OcularConfig cfg;
  cfg.k = 6;
  cfg.lambda = 0.4;
  cfg.max_sweeps = 8;
  cfg.tolerance = 1e-5;
  cfg.seed = 23;

  OcularTrainer serial(cfg);
  auto a = serial.Fit(r).value();
  ParallelOcularTrainer parallel(cfg, 4);
  auto b = parallel.Fit(r).value();

  // Same per-row kernel on both sides: factors are bit-identical, and the
  // fused Q (summed in row order on both sides) agrees to well under the
  // 1e-6 relative contract.
  EXPECT_EQ(a.model.user_factors(), b.model.user_factors());
  EXPECT_EQ(a.model.item_factors(), b.model.item_factors());
  ASSERT_FALSE(a.trace.empty());
  ASSERT_EQ(a.trace.size(), b.trace.size());
  const double qa = a.trace.back().objective;
  const double qb = b.trace.back().objective;
  EXPECT_NEAR(qa, qb, 1e-6 * std::max(1.0, std::abs(qa)));
  EXPECT_EQ(a.sweeps_run, b.sweeps_run);
  EXPECT_EQ(a.converged, b.converged);
}

TEST(SerialParallelEquivalenceTest, TinyBlocksFixture) {
  const CsrMatrix r = test::TinyBlocksCsr();
  OcularConfig cfg;
  cfg.k = 2;
  cfg.lambda = 0.2;
  cfg.max_sweeps = 10;
  cfg.tolerance = 0.0;
  OcularTrainer serial(cfg);
  ParallelOcularTrainer parallel(cfg, 2);
  auto a = serial.Fit(r).value();
  auto b = parallel.Fit(r).value();
  EXPECT_EQ(a.model.user_factors(), b.model.user_factors());
  ASSERT_FALSE(a.trace.empty());
  const double qa = a.trace.back().objective;
  EXPECT_NEAR(qa, b.trace.back().objective,
              1e-6 * std::max(1.0, std::abs(qa)));
}

}  // namespace
}  // namespace ocular
