// End-to-end subprocess tests of the `ocular` CLI binary: synth -> stats
// -> train -> recommend/explain -> evaluate, plus error paths. The binary
// path is injected by CMake as OCULAR_CLI_PATH.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace ocular {
namespace {

#ifndef OCULAR_CLI_PATH
#define OCULAR_CLI_PATH "ocular"
#endif

/// Runs the CLI with `args`, capturing combined stdout+stderr and the
/// exit code.
struct CliResult {
  int exit_code = -1;
  std::string output;
};

CliResult RunCli(const std::string& args) {
  const std::string cmd = std::string(OCULAR_CLI_PATH) + " " + args + " 2>&1";
  CliResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) {
    result.output += buf.data();
  }
  const int rc = pclose(pipe);
  result.exit_code = WEXITSTATUS(rc);
  return result;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CliTest, NoArgsPrintsUsage) {
  auto r = RunCli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage: ocular"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  auto r = RunCli("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown command"), std::string::npos);
}

TEST(CliTest, FullPipeline) {
  const std::string data = TempPath("cli_data.tsv");
  const std::string model = TempPath("cli_model.txt");

  auto synth = RunCli("synth --dataset=b2b --scale=0.005 --output=" + data);
  ASSERT_EQ(synth.exit_code, 0) << synth.output;
  EXPECT_NE(synth.output.find("wrote"), std::string::npos);

  auto stats = RunCli("stats --input=" + data);
  ASSERT_EQ(stats.exit_code, 0) << stats.output;
  EXPECT_NE(stats.output.find("user degrees"), std::string::npos);

  auto train = RunCli("train --input=" + data + " --model=" + model +
                      " --k=6 --lambda=0.5 --sweeps=25");
  ASSERT_EQ(train.exit_code, 0) << train.output;
  EXPECT_NE(train.output.find("trained OCuLaR"), std::string::npos);

  auto rec = RunCli("recommend --model=" + model + " --input=" + data +
                    " --user=0 --m=3");
  ASSERT_EQ(rec.exit_code, 0) << rec.output;
  EXPECT_NE(rec.output.find("item"), std::string::npos);

  auto rec_json = RunCli("recommend --model=" + model + " --input=" + data +
                         " --history=0,1 --m=2 --json");
  ASSERT_EQ(rec_json.exit_code, 0) << rec_json.output;
  EXPECT_EQ(rec_json.output.front(), '[');

  auto expl = RunCli("explain --model=" + model + " --input=" + data +
                     " --user=0 --item=1 --json");
  ASSERT_EQ(expl.exit_code, 0) << expl.output;
  EXPECT_NE(expl.output.find("\"confidence\""), std::string::npos);

  auto eval = RunCli("evaluate --input=" + data +
                     " --k=6 --lambda=0.5 --sweeps=25 --m=20");
  ASSERT_EQ(eval.exit_code, 0) << eval.output;
  EXPECT_NE(eval.output.find("recall@20"), std::string::npos);
  EXPECT_NE(eval.output.find("AUC"), std::string::npos);

  std::remove(data.c_str());
  std::remove(model.c_str());
}

TEST(CliTest, TrainRelativeVariantAndBiases) {
  const std::string data = TempPath("cli_data2.tsv");
  const std::string model = TempPath("cli_model2.txt");
  ASSERT_EQ(
      RunCli("synth --dataset=movielens --scale=0.004 --output=" + data)
          .exit_code,
      0);
  auto train = RunCli("train --input=" + data + " --model=" + model +
                      " --k=4 --lambda=5 --variant=relative --biases "
                      "--sweeps=20");
  ASSERT_EQ(train.exit_code, 0) << train.output;
  EXPECT_NE(train.output.find("R-OCuLaR"), std::string::npos);
  // Reload the bias model through the serving path (regression: the
  // biases flag must round-trip through the model file).
  auto rec = RunCli("recommend --model=" + model + " --input=" + data +
                    " --user=0 --m=2");
  EXPECT_EQ(rec.exit_code, 0) << rec.output;
  std::remove(data.c_str());
  std::remove(model.c_str());
}

TEST(CliTest, ShardRoundTripAndConvertGuard) {
  const std::string data = TempPath("cli_shard_data.tsv");
  const std::string text_model = TempPath("cli_shard_model.txt");
  const std::string bin_model = TempPath("cli_shard_model.oclr");
  const std::string shardset = TempPath("cli_shard_model.shardset");

  ASSERT_EQ(RunCli("synth --dataset=b2b --scale=0.005 --output=" + data)
                .exit_code,
            0);
  ASSERT_EQ(RunCli("train --input=" + data + " --model=" + text_model +
                   " --k=4 --lambda=0.5 --sweeps=10")
                .exit_code,
            0);
  ASSERT_EQ(RunCli("convert --in=" + text_model + " --out=" + bin_model)
                .exit_code,
            0);

  // Split the binary model into a 3-shard set, then inspect it back.
  auto shard = RunCli("shard --in=" + bin_model + " --out=" + shardset +
                      " --shards=3");
  ASSERT_EQ(shard.exit_code, 0) << shard.output;
  auto inspect = RunCli("shard --manifest=" + shardset + " --route=0");
  ASSERT_EQ(inspect.exit_code, 0) << inspect.output;
  EXPECT_NE(inspect.output.find("user 0 -> shard 0"), std::string::npos)
      << inspect.output;

  // Satellite fix: `convert` must detect a shardset input and point at
  // the `shard` subcommand instead of misparsing the manifest.
  auto bad = RunCli("convert --in=" + shardset + " --out=/tmp/never.oclr");
  EXPECT_NE(bad.exit_code, 0);
  EXPECT_NE(bad.output.find("shardset manifest"), std::string::npos)
      << bad.output;
  EXPECT_NE(bad.output.find("ocular shard"), std::string::npos) << bad.output;

  // Offline surfaces accept the manifest directly (LoadModelAuto gathers
  // the set): recommendations must be byte-identical to the monolithic
  // file's.
  auto mono = RunCli("recommend --model=" + bin_model + " --input=" + data +
                     " --user=3 --m=5");
  ASSERT_EQ(mono.exit_code, 0) << mono.output;
  auto gathered = RunCli("recommend --model=" + shardset + " --input=" + data +
                         " --user=3 --m=5");
  ASSERT_EQ(gathered.exit_code, 0) << gathered.output;
  EXPECT_EQ(mono.output, gathered.output);

  std::remove(data.c_str());
  std::remove(text_model.c_str());
  std::remove(bin_model.c_str());
}

TEST(CliTest, ErrorPathsAreClean) {
  EXPECT_NE(RunCli("stats --input=/nonexistent/file").exit_code, 0);
  EXPECT_NE(RunCli("train --input=/nonexistent/file --model=/tmp/x")
                .exit_code,
            0);
  EXPECT_NE(RunCli("synth --dataset=bogus --output=/tmp/x.tsv").exit_code,
            0);
  EXPECT_NE(RunCli("recommend --model=/nonexistent --input=/nonexistent")
                .exit_code,
            0);
}

}  // namespace
}  // namespace ocular
