// Unit tests for src/graph: bipartite graph view, modularity, Louvain,
// BIGCLAM.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/synthetic.h"
#include "graph/bigclam.h"
#include "graph/graph.h"
#include "graph/louvain.h"
#include "test_util.h"

namespace ocular {
namespace {

// ----------------------------------------------------------------- Graph

TEST(GraphTest, FromBipartiteShape) {
  CsrMatrix r = CsrMatrix::FromPairs({{0, 0}, {0, 1}, {1, 1}}, 2, 3).value();
  Graph g = Graph::FromBipartite(r);
  EXPECT_EQ(g.num_nodes(), 5u);      // 2 users + 3 items
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.bipartite_offset(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 2));      // user 0 - item 0
  EXPECT_TRUE(g.HasEdge(3, 0));      // item 1 - user 0 (symmetric)
  EXPECT_FALSE(g.HasEdge(0, 4));
  EXPECT_EQ(g.Degree(3), 2u);        // item 1 bought by both users
}

TEST(GraphTest, FromEdgesValidation) {
  EXPECT_TRUE(Graph::FromEdges(3, {{0, 5}}).status().IsInvalidArgument());
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 0}, {2, 2}, {2, 3}}).value();
  EXPECT_EQ(g.num_edges(), 2u);  // duplicate collapsed, self-loop dropped
}

TEST(ModularityTest, HandComputedTwoTriangles) {
  // Two triangles joined by one edge; perfect split has known modularity.
  Graph g = Graph::FromEdges(
                6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}})
                .value();
  std::vector<uint32_t> split{0, 0, 0, 1, 1, 1};
  // m = 7; community degrees: 7 and 7; intra = 3 each.
  // Q = 2*(3/7 - (7/14)^2) = 6/7 - 0.5.
  EXPECT_NEAR(Modularity(g, split), 6.0 / 7.0 - 0.5, 1e-12);
  // The all-in-one assignment has modularity 0.
  std::vector<uint32_t> lump(6, 0);
  EXPECT_NEAR(Modularity(g, lump), 0.0, 1e-12);
}

// --------------------------------------------------------------- Louvain

TEST(LouvainTest, SeparatesTwoCliques) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t a = 0; a < 5; ++a) {
    for (uint32_t b = a + 1; b < 5; ++b) {
      edges.push_back({a, b});          // clique 1: nodes 0-4
      edges.push_back({a + 5, b + 5});  // clique 2: nodes 5-9
    }
  }
  edges.push_back({0, 5});  // weak bridge
  Graph g = Graph::FromEdges(10, edges).value();
  auto result = DetectCommunitiesLouvain(g);
  EXPECT_EQ(result.num_communities, 2u);
  // All clique-1 nodes in one community, clique-2 in another.
  for (uint32_t v = 1; v < 5; ++v) {
    EXPECT_EQ(result.community[v], result.community[0]);
  }
  for (uint32_t v = 6; v < 10; ++v) {
    EXPECT_EQ(result.community[v], result.community[5]);
  }
  EXPECT_NE(result.community[0], result.community[5]);
  EXPECT_GT(result.modularity, 0.3);
}

TEST(LouvainTest, EmptyGraphIsAllSingletons) {
  Graph g = Graph::FromEdges(4, {}).value();
  auto result = DetectCommunitiesLouvain(g);
  EXPECT_EQ(result.num_communities, 4u);
  EXPECT_DOUBLE_EQ(result.modularity, 0.0);
}

TEST(LouvainTest, AssignsEveryNodeExactlyOneCommunity) {
  // The structural limitation Figure 2 illustrates: node 6 (user 6 of the
  // toy example) belongs to two ground-truth co-clusters, but Louvain can
  // only give it one label.
  Dataset toy = MakePaperToyDataset();
  Graph g = Graph::FromBipartite(toy.interactions());
  auto result = DetectCommunitiesLouvain(g);
  ASSERT_EQ(result.community.size(), 24u);
  for (uint32_t c : result.community) {
    EXPECT_LT(c, result.num_communities);
  }
  // Non-overlap by construction: the assignment is a single vector. This
  // test documents the comparison; the Fig. 2 bench quantifies the damage.
  EXPECT_GE(result.num_communities, 2u);
}

// --------------------------------------------------------------- BIGCLAM

TEST(BigClamTest, ValidatesConfig) {
  Graph g = Graph::FromEdges(3, {{0, 1}}).value();
  BigClamConfig cfg;
  cfg.k = 0;
  EXPECT_TRUE(RunBigClam(g, cfg).status().IsInvalidArgument());
  cfg = BigClamConfig{};
  cfg.learning_rate = 0;
  EXPECT_TRUE(RunBigClam(g, cfg).status().IsInvalidArgument());
}

TEST(BigClamTest, FactorsStayNonNegative) {
  Dataset toy = MakePaperToyDataset();
  Graph g = Graph::FromBipartite(toy.interactions());
  BigClamConfig cfg;
  cfg.k = 3;
  cfg.max_iterations = 50;
  auto result = RunBigClam(g, cfg).value();
  for (uint32_t v = 0; v < g.num_nodes(); ++v) {
    for (uint32_t c = 0; c < cfg.k; ++c) {
      EXPECT_GE(result.factors.At(v, c), 0.0);
    }
  }
  EXPECT_GT(result.threshold, 0.0);
  EXPECT_EQ(result.communities.size(), cfg.k);
}

TEST(BigClamTest, LikelihoodImproves) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t a = 0; a < 6; ++a) {
    for (uint32_t b = a + 1; b < 6; ++b) {
      edges.push_back({a, b});
      edges.push_back({a + 6, b + 6});
    }
  }
  Graph g = Graph::FromEdges(12, edges).value();
  BigClamConfig cfg;
  cfg.k = 2;
  cfg.max_iterations = 2;
  const double early = RunBigClam(g, cfg).value().log_likelihood;
  cfg.max_iterations = 60;
  const double late = RunBigClam(g, cfg).value().log_likelihood;
  EXPECT_GE(late, early - 1e-9);
}

TEST(BigClamTest, RecoversTwoCliques) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t a = 0; a < 8; ++a) {
    for (uint32_t b = a + 1; b < 8; ++b) {
      edges.push_back({a, b});
      edges.push_back({a + 8, b + 8});
    }
  }
  Graph g = Graph::FromEdges(16, edges).value();
  BigClamConfig cfg;
  cfg.k = 2;
  cfg.max_iterations = 120;
  cfg.seed = 3;
  auto result = RunBigClam(g, cfg).value();
  // Each clique should be (mostly) captured by a single community.
  int captured = 0;
  for (const auto& comm : result.communities) {
    std::set<uint32_t> s(comm.begin(), comm.end());
    int in_first = 0, in_second = 0;
    for (uint32_t v : s) (v < 8 ? in_first : in_second)++;
    if (in_first >= 6 && in_second <= 1) ++captured;
    if (in_second >= 6 && in_first <= 1) ++captured;
  }
  EXPECT_GE(captured, 1) << "BIGCLAM should isolate at least one clique";
}

// ---------------------------------------------------- property sweeps

class GraphPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphPropertyTest, BipartiteHandshakeAndDegreeIdentities) {
  CsrMatrix r = test::RandomCsr(25, 20, 300, GetParam());
  Graph g = Graph::FromBipartite(r);
  // Handshake: sum of degrees = 2 |E| = 2 nnz.
  size_t degree_sum = 0;
  for (uint32_t v = 0; v < g.num_nodes(); ++v) degree_sum += g.Degree(v);
  EXPECT_EQ(degree_sum, 2 * r.nnz());
  EXPECT_EQ(g.num_edges(), r.nnz());
  // No user-user or item-item edges (bipartiteness).
  for (uint32_t u = 0; u < 25; ++u) {
    for (uint32_t w : g.Neighbors(u)) EXPECT_GE(w, 25u);
  }
  for (uint32_t v = 25; v < g.num_nodes(); ++v) {
    for (uint32_t w : g.Neighbors(v)) EXPECT_LT(w, 25u);
  }
}

TEST_P(GraphPropertyTest, LouvainBeatsTrivialPartitions) {
  Rng rng(GetParam() + 500);
  // Three noisy cliques.
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t block = 0; block < 3; ++block) {
    for (uint32_t a = 0; a < 6; ++a) {
      for (uint32_t b = a + 1; b < 6; ++b) {
        if (rng.Bernoulli(0.85)) {
          edges.push_back({block * 6 + a, block * 6 + b});
        }
      }
    }
  }
  for (int e = 0; e < 4; ++e) {
    edges.push_back(
        {static_cast<uint32_t>(rng.UniformInt(uint64_t{18})),
         static_cast<uint32_t>(rng.UniformInt(uint64_t{18}))});
  }
  Graph g = Graph::FromEdges(18, edges).value();
  auto result = DetectCommunitiesLouvain(g);
  // Must beat the all-in-one community (Q = 0) and all-singletons.
  std::vector<uint32_t> lump(18, 0);
  std::vector<uint32_t> singletons(18);
  for (uint32_t v = 0; v < 18; ++v) singletons[v] = v;
  EXPECT_GT(result.modularity, Modularity(g, lump));
  EXPECT_GT(result.modularity, Modularity(g, singletons));
  // Assignment is a valid dense labeling.
  for (uint32_t c : result.community) EXPECT_LT(c, result.num_communities);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPropertyTest,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace ocular
