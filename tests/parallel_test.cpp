// Unit tests for src/parallel: row-parallel trainer equivalence with the
// serial trainer, and the per-positive-example gradient kernel against the
// serial reference.

#include <gtest/gtest.h>

#include <cmath>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/ocular_trainer.h"
#include "data/synthetic.h"
#include "parallel/bounded_queue.h"
#include "parallel/gradient_kernel.h"
#include "parallel/kernel_trainer.h"
#include "parallel/parallel_trainer.h"
#include "parallel/partition.h"

namespace ocular {
namespace {

PlantedCoClusterData Planted(uint64_t seed) {
  PlantedCoClusterConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 45;
  cfg.num_clusters = 3;
  cfg.user_membership_prob = 0.3;
  cfg.item_membership_prob = 0.3;
  Rng rng(seed);
  return GeneratePlantedCoClusters(cfg, &rng).value();
}

// -------------------------------------------------- trainer equivalence

class ParallelEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelEquivalenceTest, ParallelTrainerMatchesSerialExactly) {
  const auto [seed, threads] = GetParam();
  auto data = Planted(seed);
  OcularConfig config;
  config.k = 4;
  config.lambda = 0.5;
  config.max_sweeps = 6;
  config.tolerance = 0.0;  // run all sweeps in both
  config.seed = 17;

  OcularTrainer serial(config);
  auto fit_serial = serial.Fit(data.dataset.interactions()).value();

  ParallelOcularTrainer parallel(config, threads);
  auto fit_parallel = parallel.Fit(data.dataset.interactions()).value();

  // Row updates within a phase are independent, so the parallel result is
  // bit-identical to the serial one.
  EXPECT_EQ(fit_serial.model.user_factors(),
            fit_parallel.model.user_factors());
  EXPECT_EQ(fit_serial.model.item_factors(),
            fit_parallel.model.item_factors());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThreads, ParallelEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2), ::testing::Values(1, 2, 4)));

TEST(ParallelTrainerTest, ROcularVariantAlsoMatches) {
  auto data = Planted(9);
  OcularConfig config;
  config.k = 3;
  config.variant = OcularVariant::kRelative;
  config.max_sweeps = 4;
  config.tolerance = 0.0;
  OcularTrainer serial(config);
  ParallelOcularTrainer parallel(config, 3);
  auto a = serial.Fit(data.dataset.interactions()).value();
  auto b = parallel.Fit(data.dataset.interactions()).value();
  EXPECT_EQ(a.model.user_factors(), b.model.user_factors());
}

TEST(ParallelTrainerTest, RejectsBadInput) {
  OcularConfig config;
  config.k = 2;
  ParallelOcularTrainer trainer(config, 2);
  CsrMatrix empty = CsrMatrix::FromPairs({}, 3, 3).value();
  EXPECT_TRUE(trainer.Fit(empty).status().IsInvalidArgument());
}

TEST(ParallelTrainerTest, ObjectiveDecreases) {
  auto data = Planted(11);
  OcularConfig config;
  config.k = 4;
  config.lambda = 0.3;
  config.max_sweeps = 15;
  ParallelOcularTrainer trainer(config, 2);
  auto fit = trainer.Fit(data.dataset.interactions()).value();
  ASSERT_GE(fit.trace.size(), 2u);
  for (size_t s = 1; s < fit.trace.size(); ++s) {
    EXPECT_LE(fit.trace[s].objective,
              fit.trace[s - 1].objective +
                  1e-6 * std::abs(fit.trace[s - 1].objective));
  }
}

// -------------------------------------------------------- gradient kernel

class GradientKernelTest : public ::testing::TestWithParam<int> {};

TEST_P(GradientKernelTest, KernelMatchesSerialReference) {
  auto data = Planted(GetParam());
  const CsrMatrix& r = data.dataset.interactions();
  const CsrMatrix rt = r.Transpose();
  Rng rng(GetParam() + 100);
  DenseMatrix fu(r.num_rows(), 5), fi(r.num_cols(), 5);
  fu.FillUniform(&rng, 0.0, 1.0);
  fi.FillUniform(&rng, 0.0, 1.0);

  DenseMatrix serial, kernel;
  ComputeItemGradientsSerial(rt, fu, fi, 0.7, &serial);
  ThreadPool pool(4);
  ComputeItemGradientsKernel(rt, fu, fi, 0.7, &pool, &kernel);

  ASSERT_EQ(serial.rows(), kernel.rows());
  ASSERT_EQ(serial.cols(), kernel.cols());
  for (uint32_t i = 0; i < serial.rows(); ++i) {
    for (uint32_t c = 0; c < serial.cols(); ++c) {
      const double a = serial.At(i, c);
      const double b = kernel.At(i, c);
      // Atomic accumulation reassociates floating point; allow tiny slack.
      EXPECT_NEAR(a, b, 1e-9 * (1.0 + std::abs(a)))
          << "item " << i << " dim " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradientKernelTest, ::testing::Range(1, 6));

// ------------------------------------------------------- kernel trainer

TEST(KernelTrainerTest, TracksSerialTrainerClosely) {
  auto data = Planted(21);
  OcularConfig cfg;
  cfg.k = 4;
  cfg.lambda = 0.5;
  cfg.max_sweeps = 8;
  cfg.tolerance = 0.0;
  cfg.seed = 5;
  OcularTrainer serial(cfg);
  auto a = serial.Fit(data.dataset.interactions()).value();
  KernelOcularTrainer kernel(cfg, 3);
  auto b = kernel.Fit(data.dataset.interactions()).value();
  // Atomic accumulation reorders float sums, so equality is approximate
  // (unlike ParallelOcularTrainer's bit-exact match).
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t s = 0; s < a.trace.size(); ++s) {
    EXPECT_NEAR(a.trace[s].objective, b.trace[s].objective,
                1e-6 * std::abs(a.trace[s].objective))
        << "sweep " << s;
  }
  for (uint32_t u = 0; u < a.model.num_users(); ++u) {
    for (uint32_t c = 0; c < cfg.k; ++c) {
      EXPECT_NEAR(a.model.user_factors().At(u, c),
                  b.model.user_factors().At(u, c), 1e-6);
    }
  }
}

TEST(KernelTrainerTest, ObjectiveDecreasesAndModelValid) {
  auto data = Planted(22);
  OcularConfig cfg;
  cfg.k = 5;
  cfg.lambda = 0.3;
  cfg.max_sweeps = 15;
  KernelOcularTrainer trainer(cfg, 2);
  auto fit = trainer.Fit(data.dataset.interactions()).value();
  ASSERT_GE(fit.trace.size(), 2u);
  for (size_t s = 1; s < fit.trace.size(); ++s) {
    EXPECT_LE(fit.trace[s].objective,
              fit.trace[s - 1].objective +
                  1e-6 * std::abs(fit.trace[s - 1].objective));
  }
  EXPECT_TRUE(fit.model.Validate().ok());
}

TEST(KernelTrainerTest, RejectsUnsupportedModes) {
  OcularConfig cfg;
  cfg.k = 2;
  cfg.variant = OcularVariant::kRelative;
  KernelOcularTrainer relative(cfg, 1);
  CsrMatrix r = CsrMatrix::FromPairs({{0, 0}, {1, 1}}, 2, 2).value();
  EXPECT_TRUE(relative.Fit(r).status().IsInvalidArgument());

  OcularConfig biased;
  biased.k = 2;
  biased.use_biases = true;
  KernelOcularTrainer with_bias(biased, 1);
  EXPECT_TRUE(with_bias.Fit(r).status().IsInvalidArgument());

  OcularConfig ok;
  ok.k = 2;
  KernelOcularTrainer empty_input(ok, 1);
  CsrMatrix empty = CsrMatrix::FromPairs({}, 2, 2).value();
  EXPECT_TRUE(empty_input.Fit(empty).status().IsInvalidArgument());
}

// ------------------------------------------------- balanced partitioning

TEST(BalancedRowRangesTest, CoversAllRowsInOrderExactly) {
  // 10 rows of degree 100 each.
  std::vector<uint64_t> row_ptr(11);
  for (size_t r = 0; r <= 10; ++r) row_ptr[r] = r * 100;
  const auto ranges = BalancedRowRanges(row_ptr, /*num_threads=*/4);
  ASSERT_FALSE(ranges.empty());
  size_t expected_begin = 0;
  for (const auto& [lo, hi] : ranges) {
    EXPECT_EQ(lo, expected_begin);
    EXPECT_LT(lo, hi);
    expected_begin = hi;
  }
  EXPECT_EQ(expected_begin, 10u);
  EXPECT_GT(ranges.size(), 1u);  // enough mass for several chunks
}

TEST(BalancedRowRangesTest, SkewDoesNotSerializeOnHeavyRows) {
  // One huge row (100k nnz) followed by 999 light rows (10 nnz each). A
  // uniform row decomposition would put ~250 rows — including the heavy
  // one — into the first chunk; the balanced one must isolate the heavy
  // row so the light rows can proceed on other workers.
  std::vector<uint64_t> row_ptr(1001);
  row_ptr[0] = 0;
  row_ptr[1] = 100000;
  for (size_t r = 2; r <= 1000; ++r) row_ptr[r] = row_ptr[r - 1] + 10;
  const auto ranges = BalancedRowRanges(row_ptr, /*num_threads=*/4);
  ASSERT_GT(ranges.size(), 2u);
  EXPECT_EQ(ranges.front().first, 0u);
  EXPECT_EQ(ranges.front().second, 1u)
      << "the heavy row must be a chunk of its own";
  EXPECT_EQ(ranges.back().second, 1000u);
}

TEST(BalancedRowRangesTest, TinyInputsProduceOneRangeOrNone) {
  EXPECT_TRUE(BalancedRowRanges(std::vector<uint64_t>{0}, 4).empty());
  std::vector<uint64_t> row_ptr{0, 2, 3, 5};
  const auto ranges = BalancedRowRanges(row_ptr, 4);
  ASSERT_EQ(ranges.size(), 1u);  // below the per-range work floor
  EXPECT_EQ(ranges[0], (std::pair<size_t, size_t>{0, 3}));
}

TEST(ThreadPoolTest, ParallelForRangesRunsEveryRangeOnce) {
  ThreadPool pool(3);
  std::vector<std::pair<size_t, size_t>> ranges{{0, 5}, {5, 9}, {9, 20},
                                                {20, 21}};
  std::vector<std::atomic<int>> hits(21);
  pool.ParallelForRanges(ranges, [&](size_t lo, size_t hi) {
    // Worker threads report an in-bounds index; the inline path (single
    // range) would report kNotAWorker — either way the slot contract of
    // the trainers holds.
    const size_t idx = ThreadPool::CurrentWorkerIndex();
    EXPECT_TRUE(idx < 3 || idx == ThreadPool::kNotAWorker);
    for (size_t i = lo; i < hi; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// ------------------------------------------------------- bounded queue

TEST(BoundedQueueTest, FifoOrderAndCapacityBound) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3)) << "a full queue must shed, not grow";
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.TryPush(3));
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 3);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, CloseWakesConsumersAndDrainsRemainingItems) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.TryPush(7));
  ASSERT_TRUE(q.TryPush(8));
  q.Close();
  EXPECT_FALSE(q.TryPush(9)) << "closed queue must refuse new items";
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));  // queued items still drain after Close
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(q.Pop(&out)) << "drained + closed must report shutdown";

  // A consumer blocked on an empty queue wakes on Close.
  BoundedQueue<int> empty(1);
  std::thread blocked([&empty] {
    int v = 0;
    EXPECT_FALSE(empty.Pop(&v));
  });
  empty.Close();
  blocked.join();
}

TEST(BoundedQueueTest, HandsEveryItemToExactlyOneConsumer) {
  constexpr int kItems = 2000;
  constexpr int kConsumers = 4;
  BoundedQueue<int> q(8);
  std::vector<std::atomic<int>> seen(kItems);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&q, &seen] {
      int v = 0;
      while (q.Pop(&v)) seen[v].fetch_add(1, std::memory_order_relaxed);
    });
  }
  int shed = 0;
  for (int i = 0; i < kItems; ++i) {
    while (!q.TryPush(i)) {
      ++shed;  // full — spin like the listener would shed; retry here
      std::this_thread::yield();
    }
  }
  q.Close();
  for (auto& t : consumers) t.join();
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

TEST(GradientKernelTest, GradientOfZeroFactorsIsComplementPlusReg) {
  // With f_i = 0 the positives coefficient α(0)→huge is clamped; probe
  // instead with fu = 0 (no positives influence; gradient = 2λf_i since
  // column sums are zero).
  CsrMatrix r = CsrMatrix::FromPairs({{0, 0}}, 2, 2).value();
  CsrMatrix rt = r.Transpose();
  DenseMatrix fu(2, 3, 0.0);
  DenseMatrix fi(2, 3, 0.5);
  DenseMatrix grad;
  ComputeItemGradientsSerial(rt, fu, fi, 1.0, &grad);
  // Item 1 has no positives: grad = C + 2λ f_i = 0 + 2*1*0.5 = 1.
  for (uint32_t c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(grad.At(1, c), 1.0);
  }
}

}  // namespace
}  // namespace ocular
