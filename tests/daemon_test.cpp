// Tests for the serving daemon layer: ModelRegistry load/get/atomic
// hot-reload, the RequestServer JSON line protocol, SIGHUP-driven reload,
// stats reporting, and bit-identical agreement between a served top-M
// request and the offline RecommendForAllUsers batch artifact.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "core/model_store.h"
#include "core/ocular_recommender.h"
#include "serving/batch.h"
#include "serving/daemon.h"
#include "serving/registry.h"
#include "test_util.h"

namespace ocular {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Trains a small OCuLaR model on a deterministic matrix and writes it as
/// a binary v2 file. Returns the in-memory fit for oracle comparisons.
struct DaemonFixture {
  CsrMatrix train;
  OcularConfig config;
  OcularModel model;
  std::string model_path;

  static DaemonFixture Make(const std::string& file, uint64_t seed = 11,
                            uint32_t sweeps = 6) {
    DaemonFixture f;
    f.train = test::RandomCsr(50, 30, 400, 11);
    f.config.k = 5;
    f.config.lambda = 0.5;
    f.config.max_sweeps = sweeps;
    f.config.seed = seed;
    OcularTrainer trainer(f.config);
    f.model = trainer.Fit(f.train).value().model;
    f.model_path = TempPath(file);
    EXPECT_TRUE(SaveModelBinary(f.model, f.config, f.model_path).ok());
    return f;
  }

  std::shared_ptr<const CsrMatrix> shared_train() const {
    return std::make_shared<const CsrMatrix>(train);
  }
};

TEST(ModelRegistryTest, LoadGetAndNames) {
  DaemonFixture f = DaemonFixture::Make("registry_a.oclr");
  ModelRegistry registry;
  EXPECT_EQ(registry.Get("default"), nullptr);
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  ASSERT_TRUE(registry.Load("alt", f.model_path).ok());
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"alt", "default"}));

  auto model = registry.Get("default");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->store.num_users(), 50u);
  EXPECT_EQ(model->recommender->name(), "OCuLaR");
  // Exclusions come from the bound matrix; "alt" has none.
  EXPECT_EQ(model->ExcludeRow(0).size(), f.train.Row(0).size());
  EXPECT_TRUE(registry.Get("alt")->ExcludeRow(0).empty());

  // Loading a missing path fails and leaves the registry untouched.
  EXPECT_FALSE(registry.Load("default", "/nonexistent.oclr").ok());
  EXPECT_NE(registry.Get("default"), nullptr);
  std::remove(f.model_path.c_str());
}

TEST(ModelRegistryTest, ReloadSwapsAtomicallyAndRetiresOldMapping) {
  DaemonFixture f = DaemonFixture::Make("registry_reload.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("m", f.model_path, f.shared_train()).ok());

  // A request in flight pins the old generation.
  auto old_model = registry.Get("m");
  const double old_score = old_model->recommender->Score(0, 0);

  // Retrain with another seed and overwrite the file in place.
  DaemonFixture f2 = DaemonFixture::Make("registry_reload.oclr", /*seed=*/99);
  ASSERT_TRUE(registry.ReloadAll().ok());

  auto new_model = registry.Get("m");
  ASSERT_NE(new_model, nullptr);
  EXPECT_NE(new_model.get(), old_model.get());
  // New generation serves the new factors...
  EXPECT_EQ(new_model->recommender->Score(0, 0),
            OcularModelRecommender(f2.model).Score(0, 0));
  // ...while the drained-but-held old generation still serves the old ones
  // (its mapping is retired only when this shared_ptr drops).
  EXPECT_EQ(old_model->recommender->Score(0, 0), old_score);
  // Exclusion matrix is shared across generations, not re-read.
  EXPECT_EQ(new_model->train.get(), old_model->train.get());

  // A reload with the file gone keeps the previous generation serving.
  std::remove(f.model_path.c_str());
  EXPECT_FALSE(registry.ReloadAll().ok());
  EXPECT_EQ(registry.Get("m").get(), new_model.get());
}

TEST(RequestServerTest, ServedTopMIsBitIdenticalToBatchEngine) {
  DaemonFixture f = DaemonFixture::Make("daemon_parity.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer::Options options;
  options.serve.m = 8;
  RequestServer server(&registry, options);

  // The offline bulk artifact on the same model: in-memory recommender,
  // same exclusions, same m.
  OcularModelRecommender memory_rec(f.model);
  BatchOptions batch;
  batch.m = 8;
  batch.skip_cold_users = false;
  auto bulk = RecommendForAllUsers(memory_rec, f.train, batch);
  ASSERT_TRUE(bulk.ok());

  for (uint32_t u = 0; u < f.train.num_rows(); ++u) {
    auto served = server.Recommend("default", u, options.serve);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    const auto& oracle = bulk->recommendations[u];
    ASSERT_EQ(served->size(), oracle.size()) << "u=" << u;
    for (size_t r = 0; r < oracle.size(); ++r) {
      ASSERT_EQ((*served)[r].item, oracle[r].item) << "u=" << u;
      ASSERT_EQ((*served)[r].score, oracle[r].score) << "u=" << u;
    }
  }
  std::remove(f.model_path.c_str());
}

TEST(RequestServerTest, LineProtocol) {
  DaemonFixture f = DaemonFixture::Make("daemon_proto.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer server(&registry);

  // A recommend round trip, parsed back with the JSON parser.
  auto reply =
      JsonValue::Parse(server.HandleLine(R"({"cmd":"recommend","user":3,"m":4})"));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->Find("ok")->boolean());
  EXPECT_EQ(reply->Find("user")->number(), 3.0);
  const auto& items = reply->Find("items")->array();
  ASSERT_EQ(items.size(), 4u);
  for (size_t r = 1; r < items.size(); ++r) {
    EXPECT_GE(items[r - 1].Find("score")->number(),
              items[r].Find("score")->number());
  }

  // cmd defaults to recommend.
  auto bare = JsonValue::Parse(server.HandleLine(R"({"user":0})"));
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->Find("ok")->boolean());

  // An explicit exclude overrides the training row.
  auto excl = JsonValue::Parse(server.HandleLine(
      R"({"user":3,"m":1,"exclude":[)" +
      std::to_string(items[0].Find("item")->number()) + "]}"));
  ASSERT_TRUE(excl.ok());
  EXPECT_NE(excl->Find("items")->array()[0].Find("item")->number(),
            items[0].Find("item")->number());

  // Errors answer ok:false and never kill the loop.
  for (const std::string bad : {
           std::string("this is not json"),
           std::string(R"([1,2,3])"),
           std::string(R"({"cmd":"recommend"})"),          // missing user
           std::string(R"({"user":1e9})"),                 // out of range
           std::string(R"({"user":2,"model":"absent"})"),  // unknown model
           std::string(R"({"cmd":"frobnicate"})"),         // unknown verb
       }) {
    auto err = JsonValue::Parse(server.HandleLine(bad));
    ASSERT_TRUE(err.ok()) << bad;
    EXPECT_FALSE(err->Find("ok")->boolean()) << bad;
    EXPECT_NE(err->Find("error"), nullptr) << bad;
  }

  // models verb reports the registry contents.
  auto models = JsonValue::Parse(server.HandleLine(R"({"cmd":"models"})"));
  ASSERT_TRUE(models.ok());
  ASSERT_EQ(models->Find("models")->array().size(), 1u);
  EXPECT_EQ(models->Find("models")->array()[0].Find("algorithm")->string(),
            "OCuLaR");

  // stats counts every request including the failed ones.
  auto stats = JsonValue::Parse(server.HandleLine(R"({"cmd":"stats"})"));
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->Find("ok")->boolean());
  EXPECT_GE(stats->Find("requests_served")->number(), 10.0);
  EXPECT_GE(stats->Find("errors")->number(), 6.0);
  EXPECT_GE(stats->Find("p99_latency_us")->number(),
            stats->Find("p50_latency_us")->number());
  std::remove(f.model_path.c_str());
}

TEST(RequestServerTest, ReloadVerbAndSighupBothHotReload) {
  DaemonFixture f = DaemonFixture::Make("daemon_reload.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer server(&registry);

  const std::string before =
      server.HandleLine(R"({"user":1,"m":5})");

  // Overwrite the file with a differently-seeded model; verb-driven reload.
  DaemonFixture f2 = DaemonFixture::Make("daemon_reload.oclr", /*seed=*/123);
  auto reload = JsonValue::Parse(server.HandleLine(R"({"cmd":"reload"})"));
  ASSERT_TRUE(reload.ok());
  EXPECT_TRUE(reload->Find("ok")->boolean());
  const std::string after = server.HandleLine(R"({"user":1,"m":5})");
  EXPECT_NE(before, after) << "reload must pick up the new factors";

  // SIGHUP latches a pending reload; ConsumePendingReload applies it once.
  RequestServer::InstallReloadSignalHandler();
  EXPECT_FALSE(server.ConsumePendingReload());
  ASSERT_EQ(::raise(SIGHUP), 0);
  EXPECT_TRUE(server.ConsumePendingReload());
  EXPECT_FALSE(server.ConsumePendingReload());
  EXPECT_EQ(server.Stats().reloads, 2u);
  // Identical file contents -> identical answers after the SIGHUP swap.
  EXPECT_EQ(server.HandleLine(R"({"user":1,"m":5})"), after);
  std::remove(f.model_path.c_str());
}

TEST(RequestServerTest, StdioLoopServesUntilQuit) {
  DaemonFixture f = DaemonFixture::Make("daemon_stdio.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer server(&registry);

  std::istringstream in(
      "{\"user\":0,\"m\":3}\n"
      "\n"  // blank lines are skipped
      "{\"cmd\":\"stats\"}\n"
      "{\"cmd\":\"quit\"}\n"
      "{\"user\":1}\n");  // never reached
  std::ostringstream out;
  server.RunStdioLoop(in, out);
  EXPECT_TRUE(server.quit_requested());

  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    auto parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_TRUE(parsed->Find("ok")->boolean());
  }
  EXPECT_EQ(count, 3) << "quit must end the loop before the 4th request";
  std::remove(f.model_path.c_str());
}

}  // namespace
}  // namespace ocular
