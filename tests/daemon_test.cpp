// Tests for the serving daemon layer: ModelRegistry load/get/atomic
// hot-reload, the RequestServer JSON line protocol, SIGHUP-driven reload,
// stats reporting, and bit-identical agreement between a served top-M
// request and the offline RecommendForAllUsers batch artifact — including
// the PR 5 concurrent core: simultaneous TCP clients on the worker pool,
// SIGHUP reload under load (no torn models), accept-queue load shedding,
// exact merged latency percentiles, and the loopback load generator.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/fold_in.h"
#include "core/incremental.h"
#include "core/model_store.h"
#include "core/ocular_recommender.h"
#include "serving/batch.h"
#include "sparse/coo.h"
#include "serving/daemon.h"
#include "serving/loadgen.h"
#include "serving/net_util.h"
#include "serving/registry.h"
#include "test_util.h"

namespace ocular {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Trains a small OCuLaR model on a deterministic matrix and writes it as
/// a binary v2 file. Returns the in-memory fit for oracle comparisons.
struct DaemonFixture {
  CsrMatrix train;
  OcularConfig config;
  OcularModel model;
  std::string model_path;

  static DaemonFixture Make(const std::string& file, uint64_t seed = 11,
                            uint32_t sweeps = 6) {
    DaemonFixture f;
    f.train = test::RandomCsr(50, 30, 400, 11);
    f.config.k = 5;
    f.config.lambda = 0.5;
    f.config.max_sweeps = sweeps;
    f.config.seed = seed;
    OcularTrainer trainer(f.config);
    f.model = trainer.Fit(f.train).value().model;
    f.model_path = TempPath(file);
    EXPECT_TRUE(SaveModelBinary(f.model, f.config, f.model_path).ok());
    return f;
  }

  std::shared_ptr<const CsrMatrix> shared_train() const {
    return std::make_shared<const CsrMatrix>(train);
  }
};

TEST(ModelRegistryTest, LoadGetAndNames) {
  DaemonFixture f = DaemonFixture::Make("registry_a.oclr");
  ModelRegistry registry;
  EXPECT_EQ(registry.Get("default"), nullptr);
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  ASSERT_TRUE(registry.Load("alt", f.model_path).ok());
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"alt", "default"}));

  auto model = registry.Get("default");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->store.num_users(), 50u);
  EXPECT_EQ(model->recommender->name(), "OCuLaR");
  // Exclusions come from the bound matrix; "alt" has none.
  EXPECT_EQ(model->ExcludeRow(0).size(), f.train.Row(0).size());
  EXPECT_TRUE(registry.Get("alt")->ExcludeRow(0).empty());

  // Loading a missing path fails and leaves the registry untouched.
  EXPECT_FALSE(registry.Load("default", "/nonexistent.oclr").ok());
  EXPECT_NE(registry.Get("default"), nullptr);
  std::remove(f.model_path.c_str());
}

TEST(ModelRegistryTest, ReloadSwapsAtomicallyAndRetiresOldMapping) {
  DaemonFixture f = DaemonFixture::Make("registry_reload.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("m", f.model_path, f.shared_train()).ok());

  // A request in flight pins the old generation.
  auto old_model = registry.Get("m");
  const double old_score = old_model->recommender->Score(0, 0);

  // Retrain with another seed and overwrite the file in place.
  DaemonFixture f2 = DaemonFixture::Make("registry_reload.oclr", /*seed=*/99);
  ASSERT_TRUE(registry.ReloadAll().ok());

  auto new_model = registry.Get("m");
  ASSERT_NE(new_model, nullptr);
  EXPECT_NE(new_model.get(), old_model.get());
  // New generation serves the new factors...
  EXPECT_EQ(new_model->recommender->Score(0, 0),
            OcularModelRecommender(f2.model).Score(0, 0));
  // ...while the drained-but-held old generation still serves the old ones
  // (its mapping is retired only when this shared_ptr drops).
  EXPECT_EQ(old_model->recommender->Score(0, 0), old_score);
  // Exclusion matrix is shared across generations, not re-read.
  EXPECT_EQ(new_model->train.get(), old_model->train.get());

  // A reload with the file gone keeps the previous generation serving.
  std::remove(f.model_path.c_str());
  EXPECT_FALSE(registry.ReloadAll().ok());
  EXPECT_EQ(registry.Get("m").get(), new_model.get());
}

TEST(RequestServerTest, ServedTopMIsBitIdenticalToBatchEngine) {
  DaemonFixture f = DaemonFixture::Make("daemon_parity.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer::Options options;
  options.serve.m = 8;
  RequestServer server(&registry, options);

  // The offline bulk artifact on the same model: in-memory recommender,
  // same exclusions, same m.
  OcularModelRecommender memory_rec(f.model);
  BatchOptions batch;
  batch.m = 8;
  batch.skip_cold_users = false;
  auto bulk = RecommendForAllUsers(memory_rec, f.train, batch);
  ASSERT_TRUE(bulk.ok());

  for (uint32_t u = 0; u < f.train.num_rows(); ++u) {
    auto served = server.Recommend("default", u, options.serve);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    const auto& oracle = bulk->recommendations[u];
    ASSERT_EQ(served->size(), oracle.size()) << "u=" << u;
    for (size_t r = 0; r < oracle.size(); ++r) {
      ASSERT_EQ((*served)[r].item, oracle[r].item) << "u=" << u;
      ASSERT_EQ((*served)[r].score, oracle[r].score) << "u=" << u;
    }
  }
  std::remove(f.model_path.c_str());
}

TEST(RequestServerTest, LineProtocol) {
  DaemonFixture f = DaemonFixture::Make("daemon_proto.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer server(&registry);

  // A recommend round trip, parsed back with the JSON parser.
  auto reply =
      JsonValue::Parse(server.HandleLine(R"({"cmd":"recommend","user":3,"m":4})"));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->Find("ok")->boolean());
  EXPECT_EQ(reply->Find("user")->number(), 3.0);
  const auto& items = reply->Find("items")->array();
  ASSERT_EQ(items.size(), 4u);
  for (size_t r = 1; r < items.size(); ++r) {
    EXPECT_GE(items[r - 1].Find("score")->number(),
              items[r].Find("score")->number());
  }

  // cmd defaults to recommend.
  auto bare = JsonValue::Parse(server.HandleLine(R"({"user":0})"));
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->Find("ok")->boolean());

  // An explicit exclude overrides the training row.
  auto excl = JsonValue::Parse(server.HandleLine(
      R"({"user":3,"m":1,"exclude":[)" +
      std::to_string(items[0].Find("item")->number()) + "]}"));
  ASSERT_TRUE(excl.ok());
  EXPECT_NE(excl->Find("items")->array()[0].Find("item")->number(),
            items[0].Find("item")->number());

  // Errors answer ok:false and never kill the loop.
  for (const std::string bad : {
           std::string("this is not json"),
           std::string(R"([1,2,3])"),
           std::string(R"({"cmd":"recommend"})"),          // missing user
           std::string(R"({"user":1e9})"),                 // out of range
           std::string(R"({"user":2,"model":"absent"})"),  // unknown model
           std::string(R"({"cmd":"frobnicate"})"),         // unknown verb
       }) {
    auto err = JsonValue::Parse(server.HandleLine(bad));
    ASSERT_TRUE(err.ok()) << bad;
    EXPECT_FALSE(err->Find("ok")->boolean()) << bad;
    EXPECT_NE(err->Find("error"), nullptr) << bad;
  }

  // models verb reports the registry contents.
  auto models = JsonValue::Parse(server.HandleLine(R"({"cmd":"models"})"));
  ASSERT_TRUE(models.ok());
  ASSERT_EQ(models->Find("models")->array().size(), 1u);
  EXPECT_EQ(models->Find("models")->array()[0].Find("algorithm")->string(),
            "OCuLaR");

  // stats counts every request including the failed ones.
  auto stats = JsonValue::Parse(server.HandleLine(R"({"cmd":"stats"})"));
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->Find("ok")->boolean());
  EXPECT_GE(stats->Find("requests_served")->number(), 10.0);
  EXPECT_GE(stats->Find("errors")->number(), 6.0);
  EXPECT_GE(stats->Find("p99_latency_us")->number(),
            stats->Find("p50_latency_us")->number());
  std::remove(f.model_path.c_str());
}

TEST(RequestServerTest, PingAnswersLivenessWithoutTouchingAModel) {
  DaemonFixture f = DaemonFixture::Make("daemon_ping.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer server(&registry);

  auto ping = JsonValue::Parse(server.HandleLine(R"({"cmd":"ping"})"));
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  EXPECT_TRUE(ping->Find("ok")->boolean());
  ASSERT_NE(ping->Find("uptime_ms"), nullptr);
  EXPECT_GE(ping->Find("uptime_ms")->number(), 0.0);
  ASSERT_NE(ping->Find("generation"), nullptr);
  EXPECT_EQ(ping->Find("generation")->number(),
            static_cast<double>(registry.generation()));

  // ping is a liveness probe, not a request: it never resolves a model
  // lease, so it answers identically on an empty registry — the health
  // prober must get a truthful "alive" from a daemon whose model failed
  // to load or was never configured.
  ModelRegistry empty;
  RequestServer bare(&empty);
  auto bare_ping = JsonValue::Parse(bare.HandleLine(R"({"cmd":"ping"})"));
  ASSERT_TRUE(bare_ping.ok());
  EXPECT_TRUE(bare_ping->Find("ok")->boolean());

  // A reload bumps the generation and the next ping reports it — the
  // front tier can watch model rollouts through probe replies alone.
  const double before = ping->Find("generation")->number();
  ASSERT_TRUE(JsonValue::Parse(server.HandleLine(R"({"cmd":"reload"})"))
                  ->Find("ok")
                  ->boolean());
  auto after = JsonValue::Parse(server.HandleLine(R"({"cmd":"ping"})"));
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->Find("generation")->number(), before);
  std::remove(f.model_path.c_str());
}

TEST(RequestServerTest, ReloadVerbAndSighupBothHotReload) {
  DaemonFixture f = DaemonFixture::Make("daemon_reload.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer server(&registry);

  const std::string before =
      server.HandleLine(R"({"user":1,"m":5})");

  // Overwrite the file with a differently-seeded model; verb-driven reload.
  DaemonFixture f2 = DaemonFixture::Make("daemon_reload.oclr", /*seed=*/123);
  auto reload = JsonValue::Parse(server.HandleLine(R"({"cmd":"reload"})"));
  ASSERT_TRUE(reload.ok());
  EXPECT_TRUE(reload->Find("ok")->boolean());
  const std::string after = server.HandleLine(R"({"user":1,"m":5})");
  EXPECT_NE(before, after) << "reload must pick up the new factors";

  // SIGHUP latches a pending reload; ConsumePendingReload applies it once.
  RequestServer::InstallReloadSignalHandler();
  EXPECT_FALSE(server.ConsumePendingReload());
  ASSERT_EQ(::raise(SIGHUP), 0);
  EXPECT_TRUE(server.ConsumePendingReload());
  EXPECT_FALSE(server.ConsumePendingReload());
  EXPECT_EQ(server.Stats().reloads, 2u);
  // Identical file contents -> identical answers after the SIGHUP swap.
  EXPECT_EQ(server.HandleLine(R"({"user":1,"m":5})"), after);
  std::remove(f.model_path.c_str());
}

TEST(RequestServerTest, StdioLoopServesUntilQuit) {
  DaemonFixture f = DaemonFixture::Make("daemon_stdio.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer server(&registry);

  std::istringstream in(
      "{\"user\":0,\"m\":3}\n"
      "\n"  // blank lines are skipped
      "{\"cmd\":\"stats\"}\n"
      "{\"cmd\":\"quit\"}\n"
      "{\"user\":1}\n");  // never reached
  std::ostringstream out;
  server.RunStdioLoop(in, out);
  EXPECT_TRUE(server.quit_requested());

  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    auto parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_TRUE(parsed->Find("ok")->boolean());
  }
  EXPECT_EQ(count, 3) << "quit must end the loop before the 4th request";
  std::remove(f.model_path.c_str());
}

// ------------------------------------------------ latency percentiles

TEST(LatencyStatsTest, MergedPercentileIsExactOnKnownSequence) {
  // 1..100 in scrambled order: p50 must be the 50th smallest (index
  // floor(0.5 * 99) = 49 -> value 50), p99 the 99th (index 98 -> 99).
  std::vector<double> window;
  for (int v = 100; v >= 1; --v) window.push_back(v);
  EXPECT_EQ(MergedPercentile(&window, 0.50), 50.0);
  EXPECT_EQ(MergedPercentile(&window, 0.99), 99.0);
  EXPECT_EQ(MergedPercentile(&window, 0.0), 1.0);
  EXPECT_EQ(MergedPercentile(&window, 1.0), 100.0);
  std::vector<double> empty;
  EXPECT_EQ(MergedPercentile(&empty, 0.5), 0.0);
  std::vector<double> one{7.5};
  EXPECT_EQ(MergedPercentile(&one, 0.99), 7.5);
}

TEST(LatencyStatsTest, PerWorkerRingsMergeToTheExactGlobalPercentile) {
  // The same 1..100 sequence striped across 4 worker rings must report
  // the same exact percentiles as a single ring would — merging the
  // windows BEFORE selecting is what makes the concurrent report exact
  // (averaging per-ring percentiles would give 50.5 here, not 50).
  std::deque<LatencyRing> rings;  // deque: LatencyRing holds atomics
  for (int w = 0; w < 4; ++w) rings.emplace_back(64);
  for (int v = 1; v <= 100; ++v) rings[v % 4].Record(v);
  std::vector<double> merged;
  for (const LatencyRing& ring : rings) ring.AppendWindowTo(&merged);
  ASSERT_EQ(merged.size(), 100u);
  EXPECT_EQ(MergedPercentile(&merged, 0.50), 50.0);
  EXPECT_EQ(MergedPercentile(&merged, 0.99), 99.0);
}

TEST(LatencyStatsTest, RingKeepsOnlyTheMostRecentWindow) {
  LatencyRing ring(4);
  for (int v = 1; v <= 6; ++v) ring.Record(v);
  std::vector<double> window;
  ring.AppendWindowTo(&window);
  std::sort(window.begin(), window.end());
  EXPECT_EQ(window, (std::vector<double>{3.0, 4.0, 5.0, 6.0}));
}

// ---------------------------------------------- concurrent TCP serving

/// Waits (bounded) for RunTcpLoop on `serve_thread` to publish its
/// listening port. Returns 0 — after reaping the thread — when the loop
/// failed socket setup instead of listening, so callers can ASSERT and
/// fail the test rather than spin forever.
uint16_t WaitForPort(const RequestServer& server, std::thread* serve_thread) {
  for (int ms = 0; ms < 10000; ++ms) {
    const uint16_t port = server.bound_port();
    if (port != 0) return port;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (serve_thread->joinable()) serve_thread->join();
  return 0;
}

/// The shared wire-exactness check (serving/loadgen.h) under the name
/// the assertions below read naturally with.
bool ReplyMatches(const std::string& line,
                  const std::vector<ScoredItem>& expect) {
  return ReplyMatchesRanked(line, expect);
}

/// The offline oracle for `model` under `train` exclusions at top-`m`.
std::vector<std::vector<ScoredItem>> Oracle(const OcularModel& model,
                                            const CsrMatrix& train,
                                            uint32_t m) {
  OcularModelRecommender rec(model);
  BatchOptions batch;
  batch.m = m;
  batch.skip_cold_users = false;
  return RecommendForAllUsers(rec, train, batch).value().recommendations;
}

TEST(ConcurrentDaemonTest, SimultaneousClientsAreBitIdenticalToBatchEngine) {
  DaemonFixture f = DaemonFixture::Make("daemon_concurrent.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());

  RequestServer::Options options;
  options.serve.m = 8;
  options.num_workers = 4;
  RequestServer server(&registry, options);
  EXPECT_EQ(server.num_workers(), 4u);

  const auto oracle = Oracle(f.model, f.train, 8);

  // 4 simultaneous pipelined clients; every client covers every user
  // (50 requests round-robin over 50 users), so every worker slot serves
  // rows that another worker serves too — identical answers required.
  constexpr uint32_t kClients = 4;
  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, kClients).ok());
  });
  const uint16_t port = WaitForPort(server, &serve_thread);
  ASSERT_NE(port, 0) << "RunTcpLoop never started listening";

  std::atomic<uint64_t> mismatches{0};
  LoadGenOptions load;
  load.port = port;
  load.clients = kClients;
  load.requests_per_client = 50;
  load.pipeline = 8;
  load.m = 8;
  load.num_users = f.train.num_rows();
  load.on_reply = [&](uint32_t user, const std::string& line) {
    if (!ReplyMatches(line, oracle[user])) {
      mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  };
  auto result = RunLoadGen(load);
  serve_thread.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->requests, kClients * 50u);
  EXPECT_EQ(result->error_replies, 0u);
  EXPECT_EQ(mismatches.load(), 0u)
      << "a concurrently served reply differed from RecommendForAllUsers";

  const DaemonStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.requests_served, kClients * 50u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.workers, 4u);
  EXPECT_GE(stats.p99_latency_us, stats.p50_latency_us);
  std::remove(f.model_path.c_str());
}

TEST(ConcurrentDaemonTest, SighupReloadUnderLoadNeverServesATornModel) {
  DaemonFixture f = DaemonFixture::Make("daemon_reload_load.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer::InstallReloadSignalHandler();

  RequestServer::Options options;
  options.serve.m = 6;
  options.num_workers = 3;
  RequestServer server(&registry, options);

  const auto oracle_old = Oracle(f.model, f.train, 6);

  constexpr uint32_t kClients = 4;
  // Three waves of connections: all-old, reload-lands-mid-wave, all-new.
  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, 3 * kClients).ok());
  });
  const uint16_t port = WaitForPort(server, &serve_thread);
  ASSERT_NE(port, 0) << "RunTcpLoop never started listening";

  LoadGenOptions load;
  load.port = port;
  load.clients = kClients;
  load.requests_per_client = 40;
  load.pipeline = 4;
  load.m = 6;
  load.num_users = f.train.num_rows();

  // Wave 1: old generation only.
  std::atomic<uint64_t> torn{0};
  load.on_reply = [&](uint32_t user, const std::string& line) {
    if (!ReplyMatches(line, oracle_old[user])) {
      torn.fetch_add(1, std::memory_order_relaxed);
    }
  };
  ASSERT_TRUE(RunLoadGen(load).ok());
  EXPECT_EQ(torn.load(), 0u);

  // Overwrite the artifact with a differently-seeded model and latch the
  // reload; wave 2 runs while the swap lands. Every reply must be
  // entirely old-generation or entirely new-generation.
  DaemonFixture f2 =
      DaemonFixture::Make("daemon_reload_load.oclr", /*seed=*/97);
  const auto oracle_new = Oracle(f2.model, f.train, 6);
  ASSERT_EQ(::raise(SIGHUP), 0);

  std::atomic<uint64_t> old_seen{0};
  std::atomic<uint64_t> new_seen{0};
  load.on_reply = [&](uint32_t user, const std::string& line) {
    if (ReplyMatches(line, oracle_old[user])) {
      old_seen.fetch_add(1, std::memory_order_relaxed);
    } else if (ReplyMatches(line, oracle_new[user])) {
      new_seen.fetch_add(1, std::memory_order_relaxed);
    } else {
      torn.fetch_add(1, std::memory_order_relaxed);
    }
  };
  ASSERT_TRUE(RunLoadGen(load).ok());
  EXPECT_EQ(torn.load(), 0u)
      << "a reply matched neither the old nor the new generation";
  EXPECT_EQ(old_seen.load() + new_seen.load(),
            kClients * load.requests_per_client);

  // The latch is consumed by the first accept/read poll of wave 2, so by
  // wave 3 every worker serves the new generation exclusively.
  EXPECT_EQ(server.Stats().reloads, 1u);
  std::atomic<uint64_t> stale{0};
  load.on_reply = [&](uint32_t user, const std::string& line) {
    if (!ReplyMatches(line, oracle_new[user])) {
      stale.fetch_add(1, std::memory_order_relaxed);
    }
  };
  ASSERT_TRUE(RunLoadGen(load).ok());
  EXPECT_EQ(stale.load(), 0u)
      << "a worker kept serving the old generation after the reload";

  serve_thread.join();
  std::remove(f.model_path.c_str());
}

// ---------------------------------------------------- load shedding

/// Minimal raw TCP client for the shedding and disconnect tests: these
/// need precise control over when a connection reads and closes, which
/// the load generator (deliberately) does not expose — it always drains
/// its replies. The I/O itself delegates to the shared net:: loops.
struct RawClient {
  int fd = -1;
  std::string buffer;

  /// `rcvbuf` > 0 pins SO_RCVBUF before connect (so it caps the
  /// negotiated receive window): the slow-consumer tests need the
  /// kernel's autotuned buffers NOT to absorb a whole reply flood.
  bool Connect(uint16_t port, int rcvbuf = 0) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    if (rcvbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }
  bool Send(const std::string& line) {
    const std::string framed = line + "\n";
    return net::SendAll(fd, framed.data(), framed.size());
  }
  bool ReadLine(std::string* line) { return net::ReadLine(fd, &buffer, line); }
  void Close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
};

TEST(ConcurrentDaemonTest, MaxConnectionsCapShedsWith503StyleReply) {
  DaemonFixture f = DaemonFixture::Make("daemon_shed.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());

  RequestServer::Options options;
  options.num_workers = 1;
  options.max_connections = 2;  // A and B are admitted, C is shed
  RequestServer server(&registry, options);

  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, 3).ok());
  });
  const uint16_t port = WaitForPort(server, &serve_thread);
  ASSERT_NE(port, 0) << "RunTcpLoop never started listening";

  // A and B are live admitted connections (completed round trips prove
  // it) — under the epoll core an idle keep-alive connection costs no
  // worker, so both stay open while the single worker serves either.
  RawClient a;
  ASSERT_TRUE(a.Connect(port));
  ASSERT_TRUE(a.Send(R"({"user":0,"m":3})"));
  std::string line;
  ASSERT_TRUE(a.ReadLine(&line));
  RawClient b;
  ASSERT_TRUE(b.Connect(port));
  ASSERT_TRUE(b.Send(R"({"user":1,"m":3})"));
  ASSERT_TRUE(b.ReadLine(&line));

  // C exceeds the admission cap: 503 with the retry contract, then close.
  RawClient c;
  ASSERT_TRUE(c.Connect(port));
  ASSERT_TRUE(c.ReadLine(&line)) << "shed connection must get a reply";
  auto parsed = JsonValue::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_FALSE(parsed->Find("ok")->boolean());
  ASSERT_NE(parsed->Find("code"), nullptr);
  EXPECT_EQ(parsed->Find("code")->number(), 503.0);
  ASSERT_NE(parsed->Find("retry_after_ms"), nullptr);
  EXPECT_FALSE(c.ReadLine(&line)) << "shed connection must be closed";
  c.Close();

  // A and B were never disturbed by the shed.
  ASSERT_TRUE(a.Send(R"({"user":2,"m":3})"));
  ASSERT_TRUE(a.ReadLine(&line));
  a.Close();
  b.Close();
  serve_thread.join();
  const DaemonStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.connections_shed, 1u);
  EXPECT_EQ(stats.connections_capped, 1u);
  EXPECT_EQ(stats.connections_open, 0u);
  std::remove(f.model_path.c_str());
}

TEST(ConcurrentDaemonTest, ConnectionCoreCountersAreExact) {
  DaemonFixture f = DaemonFixture::Make("daemon_conn_counters.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());

  RequestServer::Options options;
  options.num_workers = 1;
  // A tiny outbound cap so one never-reading client trips the
  // slow-consumer policy deterministically: a single burst of large
  // replies overflows it long before the socket buffer helps.
  options.max_outbound_bytes = 16 << 10;
  options.io_timeout_ms = 50;
  options.idle_timeout_ms = 0;  // no 408s in this test
  RequestServer server(&registry, options);

  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, 3).ok());
  });
  const uint16_t port = WaitForPort(server, &serve_thread);
  ASSERT_NE(port, 0) << "RunTcpLoop never started listening";

  // Two live connections; the stats verb must report the open gauge
  // including both (the reply travels over one of them).
  RawClient a;
  ASSERT_TRUE(a.Connect(port));
  RawClient b;
  // A tiny receive window so the kernel cannot absorb B's reply flood
  // for it — the backlog must land in the server's outbound buffer.
  ASSERT_TRUE(b.Connect(port, /*rcvbuf=*/4096));
  ASSERT_TRUE(a.Send(R"({"cmd":"ping"})"));
  std::string line;
  ASSERT_TRUE(a.ReadLine(&line));
  ASSERT_TRUE(a.Send(R"({"cmd":"stats"})"));
  ASSERT_TRUE(a.ReadLine(&line));
  auto parsed = JsonValue::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  ASSERT_NE(parsed->Find("connections_open"), nullptr);
  EXPECT_EQ(parsed->Find("connections_open")->number(), 2.0);
  ASSERT_NE(parsed->Find("connections_slow_closed"), nullptr);
  EXPECT_EQ(parsed->Find("connections_slow_closed")->number(), 0.0);
  ASSERT_NE(parsed->Find("accept_emfile"), nullptr);
  EXPECT_EQ(parsed->Find("accept_emfile")->number(), 0.0);

  // B floods pipelined wide requests and never reads a byte: its reply
  // backlog must hit the outbound cap (or stall past the write-progress
  // deadline) and the connection must be dropped — never a blocked
  // worker, never an unbounded buffer. The flood's replies (~6 MB) are
  // sized past tcp_wmem's autotuning ceiling (4 MB on stock kernels) so
  // the kernel cannot absorb them all on B's behalf.
  std::string burst;
  for (int i = 0; i < 8000; ++i) burst += R"({"user":1,"m":30})" "\n";
  ASSERT_TRUE(b.Send(burst));
  std::string probe_line;
  bool slow_closed_seen = false;
  for (int tries = 0; tries < 100 && !slow_closed_seen; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    slow_closed_seen = server.Stats().connections_slow_closed > 0;
  }
  EXPECT_TRUE(slow_closed_seen)
      << "a never-reading client was not dropped by the slow-consumer "
         "policy";

  // A is still healthy after B's demise, and the peak outbound gauge
  // recorded B's backlog.
  ASSERT_TRUE(a.Send(R"({"user":2,"m":3})"));
  ASSERT_TRUE(a.ReadLine(&probe_line));
  const DaemonStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.connections_slow_closed, 1u);
  EXPECT_GT(stats.peak_outbound_bytes, 0u);
  EXPECT_EQ(stats.connections_shed, 0u);

  b.Close();
  a.Close();
  // The third accept ends the bounded loop.
  RawClient last;
  ASSERT_TRUE(last.Connect(port));
  last.Close();
  serve_thread.join();
  EXPECT_EQ(server.Stats().connections_open, 0u);
  std::remove(f.model_path.c_str());
}

TEST(ConcurrentDaemonTest, ClientVanishingWithUnreadRepliesDoesNotKillServer) {
  DaemonFixture f = DaemonFixture::Make("daemon_sigpipe.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer::Options options;
  options.num_workers = 1;
  RequestServer server(&registry, options);
  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, 2).ok());
  });
  const uint16_t port = WaitForPort(server, &serve_thread);
  ASSERT_NE(port, 0) << "RunTcpLoop never started listening";

  // Hundreds of pipelined requests whose replies overflow the socket
  // buffer, then vanish without reading any of them: the worker's
  // batched send hits the reset connection and must surface as an error
  // on THAT connection (MSG_NOSIGNAL), not as a process-killing SIGPIPE.
  {
    RawClient rude;
    ASSERT_TRUE(rude.Connect(port));
    std::string burst;
    for (int i = 0; i < 400; ++i) burst += R"({"user":1,"m":30})" "\n";
    (void)rude.Send(burst);
    rude.Close();  // unread replies pending -> RST at the server
  }

  // The server (and its one worker) must still be alive and correct.
  RawClient polite;
  ASSERT_TRUE(polite.Connect(port));
  ASSERT_TRUE(polite.Send(R"({"user":2,"m":3})"));
  std::string line;
  ASSERT_TRUE(polite.ReadLine(&line));
  auto reply = JsonValue::Parse(line);
  ASSERT_TRUE(reply.ok()) << line;
  EXPECT_TRUE(reply->Find("ok")->boolean());
  polite.Close();
  serve_thread.join();
  std::remove(f.model_path.c_str());
}

// ------------------------------------------------------ load generator

TEST(LoadGenTest, DrivesAndMeasuresAConcurrentDaemon) {
  DaemonFixture f = DaemonFixture::Make("daemon_loadgen.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer::Options options;
  options.num_workers = 2;
  RequestServer server(&registry, options);
  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, 3).ok());
  });
  const uint16_t port = WaitForPort(server, &serve_thread);
  ASSERT_NE(port, 0) << "RunTcpLoop never started listening";

  LoadGenOptions load;
  load.port = port;
  load.clients = 3;
  load.requests_per_client = 20;
  load.pipeline = 4;
  load.m = 5;
  load.num_users = f.train.num_rows();
  auto result = RunLoadGen(load);
  serve_thread.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->requests, 60u);
  EXPECT_EQ(result->ok_replies, 60u);
  EXPECT_EQ(result->error_replies, 0u);
  EXPECT_GT(result->requests_per_second, 0.0);
  EXPECT_GE(result->p99_latency_us, result->p50_latency_us);
  EXPECT_GT(result->p50_latency_us, 0.0);

  // Option validation.
  LoadGenOptions bad;
  EXPECT_TRUE(RunLoadGen(bad).status().IsInvalidArgument());
  std::remove(f.model_path.c_str());
}

// ------------------------------------------------------ fold-in serving

/// The training matrix's per-item interaction counts — the popularity
/// ranking the registry binds to a dataset-backed model.
std::vector<double> TrainPopularity(const CsrMatrix& train) {
  std::vector<double> pop(train.num_cols(), 0.0);
  for (uint32_t col : train.col_idx()) pop[col] += 1.0;
  return pop;
}

/// The offline fold-in oracle over the SAME context the daemon serves
/// from: in-memory factors (bit-identical to the mmapped binary file),
/// train-degree popularity, daemon-default serve/fold-in options.
std::vector<ScoredItem> HistoryOracle(const DaemonFixture& f,
                                      std::vector<uint32_t> history,
                                      uint32_t m, bool* folded = nullptr) {
  const std::vector<double> pop = TrainPopularity(f.train);
  auto ctx = MakeFoldInContext(f.model, f.config, pop);
  EXPECT_TRUE(ctx.ok()) << ctx.status().ToString();
  SanitizeHistory(&history, f.train.num_cols());
  FoldInWorkspace ws;
  std::vector<double> tile;
  std::vector<ScoredItem> selection;
  const ServeOptions serve;
  auto rec = RecommendForHistoryInto(*ctx, history, m, serve.min_score,
                                     serve.block_items, FoldInOptions{}, &ws,
                                     &tile, &selection);
  EXPECT_TRUE(rec.ok()) << rec.status().ToString();
  if (folded != nullptr) *folded = rec->folded;
  return {rec->items.begin(), rec->items.end()};
}

TEST(FoldInServingTest, HistoryRepliesAreBitIdenticalToOfflineOracle) {
  DaemonFixture f = DaemonFixture::Make("daemon_foldin.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer server(&registry);

  // Unsorted input with a duplicate: the daemon must sanitize before the
  // solve and reply exactly as the offline path over the clean history.
  const std::string line = server.HandleLine(
      R"({"cmd":"recommend","history":[9,2,9,0,5],"m":6})");
  bool folded = false;
  const auto oracle = HistoryOracle(f, {0, 2, 5, 9}, 6, &folded);
  EXPECT_TRUE(folded);
  EXPECT_TRUE(ReplyMatchesRanked(line, oracle)) << line;
  auto parsed = JsonValue::Parse(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Find("folded")->boolean());
  EXPECT_EQ(parsed->Find("dropped")->number(), 0.0);
  // The history's own items never come back as recommendations.
  for (const JsonValue& entry : parsed->Find("items")->array()) {
    const double item = entry.Find("item")->number();
    EXPECT_TRUE(item != 0.0 && item != 2.0 && item != 5.0 && item != 9.0);
  }

  // Out-of-range ids are dropped (counted in the reply and the stats),
  // not fatal: the remaining ids still fold.
  const std::string dropped_line = server.HandleLine(
      R"({"cmd":"recommend","history":[2,9999,5,123456],"m":6})");
  EXPECT_TRUE(ReplyMatchesRanked(dropped_line, HistoryOracle(f, {2, 5}, 6)))
      << dropped_line;
  auto dropped = JsonValue::Parse(dropped_line);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped->Find("dropped")->number(), 2.0);

  const DaemonStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.fold_in_requests, 2u);
  EXPECT_EQ(stats.history_dropped_ids, 2u);
  auto stats_line =
      JsonValue::Parse(server.HandleLine(R"({"cmd":"stats"})"));
  ASSERT_TRUE(stats_line.ok());
  EXPECT_EQ(stats_line->Find("fold_in_requests")->number(), 2.0);
  EXPECT_EQ(stats_line->Find("history_dropped_ids")->number(), 2.0);
  EXPECT_EQ(stats_line->Find("updates")->number(), 0.0);
  std::remove(f.model_path.c_str());
}

TEST(FoldInServingTest, EmptyOrFullyOutOfRangeHistoryFallsBackToPopularity) {
  DaemonFixture f = DaemonFixture::Make("daemon_foldin_pop.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer server(&registry);

  // The deterministic fallback: items ranked by training interaction
  // count, engine tie-break (lower id wins).
  const std::vector<double> pop = TrainPopularity(f.train);
  const std::vector<ScoredItem> expect = TopM(pop, 5, {});

  const std::string empty_line =
      server.HandleLine(R"({"cmd":"recommend","history":[],"m":5})");
  EXPECT_TRUE(ReplyMatchesRanked(empty_line, expect)) << empty_line;
  auto parsed = JsonValue::Parse(empty_line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->Find("folded")->boolean());

  // A history whose every id is beyond the catalog sanitizes to empty and
  // must answer the identical fallback (plus the drop count).
  const std::string oor_line = server.HandleLine(
      R"({"cmd":"recommend","history":[5000,6000],"m":5})");
  EXPECT_TRUE(ReplyMatchesRanked(oor_line, expect)) << oor_line;
  auto oor = JsonValue::Parse(oor_line);
  ASSERT_TRUE(oor.ok());
  EXPECT_FALSE(oor->Find("folded")->boolean());
  EXPECT_EQ(oor->Find("dropped")->number(), 2.0);
  std::remove(f.model_path.c_str());
}

TEST(FoldInServingTest, MalformedHistoryAndUpdateRequestsAnswerErrors) {
  DaemonFixture f = DaemonFixture::Make("daemon_foldin_err.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  // "nodata": same model without a bound dataset — updates must refuse.
  ASSERT_TRUE(registry.Load("nodata", f.model_path).ok());
  // "dot": a non-OCuLaR factor file — fold-in must refuse.
  const std::string dot_path = TempPath("daemon_foldin_err_dot.oclr");
  {
    DenseMatrix users(4, 3);
    DenseMatrix items(6, 3);
    ASSERT_TRUE(
        SaveDotProductFactors("wALS", 3, 0.1, users, items, dot_path).ok());
  }
  ASSERT_TRUE(registry.Load("dot", dot_path).ok());
  RequestServer server(&registry);

  for (const std::string bad : {
           // fold-in shape errors
           std::string(R"({"history":"0,1,2"})"),
           std::string(R"({"history":[1,-2]})"),
           std::string(R"({"history":[1.5]})"),
           std::string(R"({"history":["a"]})"),
           std::string(R"({"user":1,"history":[2]})"),
           std::string(R"({"history":[2],"exclude":[3]})"),
           std::string(R"({"history":[1],"model":"dot"})"),
           std::string(R"({"history":[1],"model":"absent"})"),
           // update shape errors
           std::string(R"({"cmd":"update"})"),
           std::string(R"({"cmd":"update","adds":[[1,2,3]]})"),
           std::string(R"({"cmd":"update","adds":[[1,-2]]})"),
           std::string(R"({"cmd":"update","adds":[3]})"),
           std::string(R"({"cmd":"update","adds":[[1,2]],"sweeps":0})"),
           std::string(R"({"cmd":"update","adds":[[1,2]],"model":"absent"})"),
           std::string(R"({"cmd":"update","adds":[[1,2]],"model":"nodata"})"),
       }) {
    auto err = JsonValue::Parse(server.HandleLine(bad));
    ASSERT_TRUE(err.ok()) << bad;
    EXPECT_FALSE(err->Find("ok")->boolean()) << bad;
    EXPECT_NE(err->Find("error"), nullptr) << bad;
  }
  // No update may have landed: same registry generation throughout.
  EXPECT_EQ(server.Stats().updates, 0u);
  std::remove(f.model_path.c_str());
  std::remove(dot_path.c_str());
}

/// Replays the daemon's update pipeline offline: materialize the binary
/// artifact, merge the training matrix with `adds`, warm-start retrain
/// with `sweeps`. Returns the updated fit and the merged matrix — the
/// oracle an in-daemon `update` must match bit-for-bit.
struct OfflineUpdate {
  OcularModel model;
  CsrMatrix train;
};
OfflineUpdate ReplayUpdate(
    const std::string& model_path,
    const CsrMatrix& train,
    const std::vector<std::pair<uint32_t, uint32_t>>& adds, uint32_t sweeps) {
  auto store = ModelStore::Open(model_path);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  auto loaded = store->MaterializeOcular();
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  uint32_t users = store->num_users();
  uint32_t items = store->num_items();
  CooBuilder coo;
  for (auto [u, i] : train.ToPairs()) coo.Add(u, i);
  for (auto [u, i] : adds) {
    users = std::max(users, u + 1);
    items = std::max(items, i + 1);
    coo.Add(u, i);
  }
  CsrMatrix merged =
      CsrMatrix::FromCoo(coo.Finalize(users, items).value());
  OcularConfig config = loaded->config;
  config.max_sweeps = sweeps;
  auto fit = UpdateModel(loaded->model, merged, config, ExpandOptions{});
  EXPECT_TRUE(fit.ok()) << fit.status().ToString();
  return {std::move(fit->model), std::move(merged)};
}

TEST(FoldInServingTest, UpdateVerbPublishesANewGenerationServingNewUsers) {
  DaemonFixture f = DaemonFixture::Make("daemon_update.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer::Options options;
  options.serve.m = 5;
  RequestServer server(&registry, options);

  const auto before = registry.Get("default");
  // New user 50 appears with three purchases; replicate offline FIRST
  // (the daemon's publish overwrites the artifact in place).
  const std::vector<std::pair<uint32_t, uint32_t>> adds = {
      {50, 0}, {50, 7}, {50, 12}};
  const OfflineUpdate oracle = ReplayUpdate(f.model_path, f.train, adds, 3);

  auto reply = JsonValue::Parse(server.HandleLine(
      R"({"cmd":"update","adds":[[50,0],[50,7],[50,12]],"sweeps":3})"));
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(reply->Find("ok")->boolean()) << server.Stats().errors;
  EXPECT_EQ(reply->Find("users")->number(), 51.0);
  EXPECT_EQ(reply->Find("items")->number(), 30.0);
  EXPECT_GE(reply->Find("publish_us")->number(), 0.0);

  // A new generation is live: fresh registry pointer, grown shape, and
  // the overwritten artifact stays valid for a later SIGHUP reload.
  const auto after = registry.Get("default");
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after.get(), before.get());
  EXPECT_EQ(after->store.num_users(), 51u);
  EXPECT_EQ(server.Stats().updates, 1u);

  // The brand-new user is servable at once, bit-identical to the offline
  // replay (same factors, same merged-train exclusions).
  const auto expect = Oracle(oracle.model, oracle.train, 5);
  const std::string served =
      server.HandleLine(R"({"cmd":"recommend","user":50,"m":5})");
  EXPECT_TRUE(ReplyMatchesRanked(served, expect[50])) << served;
  // Old users keep serving the (retrained) model consistently too.
  const std::string old_user =
      server.HandleLine(R"({"cmd":"recommend","user":3,"m":5})");
  EXPECT_TRUE(ReplyMatchesRanked(old_user, expect[3])) << old_user;
  std::remove(f.model_path.c_str());
}

TEST(ConcurrentDaemonTest, UpdateUnderLoadNeverServesATornModel) {
  DaemonFixture f = DaemonFixture::Make("daemon_update_load.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());

  RequestServer::Options options;
  options.serve.m = 6;
  options.num_workers = 3;
  RequestServer server(&registry, options);

  const auto oracle_old = Oracle(f.model, f.train, 6);
  const std::vector<std::pair<uint32_t, uint32_t>> adds = {
      {50, 1}, {50, 4}, {51, 2}};
  const OfflineUpdate updated = ReplayUpdate(f.model_path, f.train, adds, 2);
  const auto oracle_new = Oracle(updated.model, updated.train, 6);

  constexpr uint32_t kClients = 4;
  // Three waves of recommend connections plus the updater's own.
  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, 3 * kClients + 1).ok());
  });
  const uint16_t port = WaitForPort(server, &serve_thread);
  ASSERT_NE(port, 0) << "RunTcpLoop never started listening";

  LoadGenOptions load;
  load.port = port;
  load.clients = kClients;
  load.requests_per_client = 40;
  load.pipeline = 4;
  load.m = 6;
  load.num_users = f.train.num_rows();  // only pre-update users queried

  // Wave 1: old generation only.
  std::atomic<uint64_t> torn{0};
  load.on_reply = [&](uint32_t user, const std::string& line) {
    if (!ReplyMatches(line, oracle_old[user])) {
      torn.fetch_add(1, std::memory_order_relaxed);
    }
  };
  ASSERT_TRUE(RunLoadGen(load).ok());
  EXPECT_EQ(torn.load(), 0u);

  // Wave 2: the update lands mid-wave on its own connection while the
  // fleet keeps querying. Every reply must be ENTIRELY old-generation or
  // ENTIRELY new-generation — a mixed ranking means a torn model.
  std::thread updater([port] {
    RawClient u;
    ASSERT_TRUE(u.Connect(port));
    ASSERT_TRUE(u.Send(
        R"({"cmd":"update","adds":[[50,1],[50,4],[51,2]],"sweeps":2})"));
    std::string reply;
    ASSERT_TRUE(u.ReadLine(&reply));
    auto parsed = JsonValue::Parse(reply);
    ASSERT_TRUE(parsed.ok()) << reply;
    EXPECT_TRUE(parsed->Find("ok")->boolean()) << reply;
    u.Close();
  });
  std::atomic<uint64_t> old_seen{0};
  std::atomic<uint64_t> new_seen{0};
  load.on_reply = [&](uint32_t user, const std::string& line) {
    if (ReplyMatches(line, oracle_old[user])) {
      old_seen.fetch_add(1, std::memory_order_relaxed);
    } else if (ReplyMatches(line, oracle_new[user])) {
      new_seen.fetch_add(1, std::memory_order_relaxed);
    } else {
      torn.fetch_add(1, std::memory_order_relaxed);
    }
  };
  ASSERT_TRUE(RunLoadGen(load).ok());
  updater.join();
  EXPECT_EQ(torn.load(), 0u)
      << "a reply matched neither the old nor the updated generation";
  EXPECT_EQ(old_seen.load() + new_seen.load(),
            kClients * load.requests_per_client);
  EXPECT_EQ(server.Stats().updates, 1u);

  // Wave 3: the update has published; every worker serves the new
  // generation exclusively, including the just-added users.
  std::atomic<uint64_t> stale{0};
  load.num_users = updated.train.num_rows();
  load.on_reply = [&](uint32_t user, const std::string& line) {
    if (!ReplyMatches(line, oracle_new[user])) {
      stale.fetch_add(1, std::memory_order_relaxed);
    }
  };
  ASSERT_TRUE(RunLoadGen(load).ok());
  EXPECT_EQ(stale.load(), 0u)
      << "a worker kept serving the pre-update generation";

  serve_thread.join();
  std::remove(f.model_path.c_str());
}

TEST(LoadGenTest, HistoryTrafficExercisesTheFoldInPath) {
  DaemonFixture f = DaemonFixture::Make("daemon_loadgen_hist.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer::Options options;
  options.num_workers = 2;
  RequestServer server(&registry, options);
  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, 2).ok());
  });
  const uint16_t port = WaitForPort(server, &serve_thread);
  ASSERT_NE(port, 0) << "RunTcpLoop never started listening";

  std::atomic<uint64_t> history_replies{0};
  std::atomic<uint64_t> user_replies{0};
  LoadGenOptions load;
  load.port = port;
  load.clients = 2;
  load.requests_per_client = 20;
  load.pipeline = 4;
  load.m = 5;
  load.num_users = f.train.num_rows();
  load.history_every = 2;  // every other request folds in
  load.history_len = 5;
  load.num_items = f.train.num_cols();
  load.on_history_reply = [&](std::span<const uint32_t> history,
                              const std::string& line) {
    EXPECT_EQ(history.size(), 5u);
    EXPECT_EQ(line.rfind("{\"ok\":true", 0), 0u) << line;
    history_replies.fetch_add(1, std::memory_order_relaxed);
  };
  load.on_reply = [&](uint32_t, const std::string&) {
    user_replies.fetch_add(1, std::memory_order_relaxed);
  };
  auto result = RunLoadGen(load);
  serve_thread.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->error_replies, 0u);
  EXPECT_EQ(history_replies.load(), 20u);  // every even slot of 2x20
  EXPECT_EQ(user_replies.load(), 20u);
  EXPECT_EQ(server.Stats().fold_in_requests, 20u);

  // The generator itself is deterministic and refuses a missing catalog.
  EXPECT_EQ(LoadGenHistory(7, 5, 30), LoadGenHistory(7, 5, 30));
  LoadGenOptions bad = load;
  bad.num_items = 0;
  EXPECT_TRUE(RunLoadGen(bad).status().IsInvalidArgument());
  std::remove(f.model_path.c_str());
}

}  // namespace
}  // namespace ocular
