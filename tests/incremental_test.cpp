// Tests for incremental model maintenance (ExpandModel / UpdateModel) and
// a compile/link check of the umbrella header.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ocular/ocular.h"

namespace ocular {
namespace {

PlantedCoClusterData Planted(uint32_t users, uint32_t items, uint64_t seed) {
  PlantedCoClusterConfig cfg;
  cfg.num_users = users;
  cfg.num_items = items;
  cfg.num_clusters = 4;
  cfg.user_membership_prob = 0.25;
  cfg.item_membership_prob = 0.25;
  Rng rng(seed);
  return GeneratePlantedCoClusters(cfg, &rng).value();
}

TEST(ExpandModelTest, PreservesOldRowsInitializesNew) {
  Rng rng(1);
  DenseMatrix fu(3, 2), fi(2, 2);
  fu.FillUniform(&rng, 0.1, 1.0);
  fi.FillUniform(&rng, 0.1, 1.0);
  OcularModel model(fu, fi);
  auto grown = ExpandModel(model, 5, 4).value();
  EXPECT_EQ(grown.num_users(), 5u);
  EXPECT_EQ(grown.num_items(), 4u);
  for (uint32_t u = 0; u < 3; ++u) {
    for (uint32_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(grown.user_factors().At(u, c), fu.At(u, c));
    }
  }
  // New rows are non-negative and not all zero (cold-start init).
  double new_mass = 0.0;
  for (uint32_t u = 3; u < 5; ++u) {
    for (uint32_t c = 0; c < 2; ++c) {
      EXPECT_GE(grown.user_factors().At(u, c), 0.0);
      new_mass += grown.user_factors().At(u, c);
    }
  }
  EXPECT_GT(new_mass, 0.0);
}

TEST(ExpandModelTest, RefusesToShrink) {
  OcularModel model(DenseMatrix(3, 2, 0.5), DenseMatrix(3, 2, 0.5));
  EXPECT_TRUE(ExpandModel(model, 2, 3).status().IsInvalidArgument());
  EXPECT_TRUE(ExpandModel(model, 3, 2).status().IsInvalidArgument());
}

TEST(ExpandModelTest, ShapeDerivedSeedIsDeterministicPerCallButDecorrelated) {
  Rng rng(1);
  DenseMatrix fu(3, 2), fi(2, 2);
  fu.FillUniform(&rng, 0.1, 1.0);
  fi.FillUniform(&rng, 0.1, 1.0);
  OcularModel model(fu, fi);

  // Same call twice: bit-identical (replayable daily update).
  auto a = ExpandModel(model, 5, 4).value();
  auto b = ExpandModel(model, 5, 4).value();
  for (uint32_t u = 0; u < 5; ++u) {
    for (uint32_t c = 0; c < 2; ++c) {
      EXPECT_EQ(a.user_factors().At(u, c), b.user_factors().At(u, c));
    }
  }

  // Successive expansions of a growing catalog draw from different
  // streams: growing 5->7 must not hand the new rows the same values the
  // 3->5 step produced (a constant seed did exactly that).
  auto second_step = ExpandModel(a, 7, 4).value();
  bool any_differ = false;
  for (uint32_t n = 0; n < 2 && !any_differ; ++n) {
    for (uint32_t c = 0; c < 2 && !any_differ; ++c) {
      any_differ = second_step.user_factors().At(5 + n, c) !=
                   a.user_factors().At(3 + n, c);
    }
  }
  EXPECT_TRUE(any_differ)
      << "successive expansions reused the identical init stream";
  EXPECT_NE(DeriveExpandSeed(3, 2, 5, 4, 2), DeriveExpandSeed(5, 4, 7, 4, 2));

  // An explicit seed pins the stream and differs from other seeds.
  ExpandOptions pinned;
  pinned.seed = 42;
  auto p1 = ExpandModel(model, 5, 4, pinned).value();
  auto p2 = ExpandModel(model, 5, 4, pinned).value();
  ExpandOptions other;
  other.seed = 43;
  auto q = ExpandModel(model, 5, 4, other).value();
  bool pinned_differs = false;
  for (uint32_t u = 3; u < 5; ++u) {
    for (uint32_t c = 0; c < 2; ++c) {
      EXPECT_EQ(p1.user_factors().At(u, c), p2.user_factors().At(u, c));
      pinned_differs =
          pinned_differs ||
          p1.user_factors().At(u, c) != q.user_factors().At(u, c);
    }
  }
  EXPECT_TRUE(pinned_differs);
}

TEST(UpdateModelTest, WarmStartConvergesFasterThanCold) {
  // Train on an initial snapshot; append new users + interactions; update
  // with few sweeps and compare against cold-starting on the new data.
  auto v1 = Planted(80, 50, 3);
  OcularConfig cfg;
  cfg.k = 6;
  cfg.lambda = 0.5;
  cfg.max_sweeps = 60;
  cfg.tolerance = 1e-6;
  OcularTrainer trainer(cfg);
  auto fit_v1 = trainer.Fit(v1.dataset.interactions()).value();

  // v2 = v1 plus 10 fresh users who bought items of cluster 0.
  CooBuilder coo;
  for (auto [u, i] : v1.dataset.interactions().ToPairs()) coo.Add(u, i);
  Rng rng(4);
  for (uint32_t nu = 80; nu < 90; ++nu) {
    for (uint32_t i : v1.cluster_items[0]) {
      if (rng.Bernoulli(0.6)) coo.Add(nu, i);
    }
  }
  CsrMatrix v2 = CsrMatrix::FromCoo(coo.Finalize(90, 50).value());

  OcularConfig update_cfg = cfg;
  update_cfg.max_sweeps = 60;
  auto warm = UpdateModel(fit_v1.model, v2, update_cfg).value();
  auto cold = OcularTrainer(update_cfg).Fit(v2).value();

  // The warm-start claim is about the objective reached per sweep budget,
  // not sweeps-until-tolerance (that count is init-stream luck: a warm run
  // can spend many sweeps inching down a tail BELOW cold's final value).
  // Within a third of cold's budget the warm start must already be at
  // least as good as cold ever gets...
  const size_t third = std::min<size_t>(warm.trace.size() - 1,
                                        std::max(1u, cold.sweeps_run / 3));
  EXPECT_LE(warm.trace[third].objective, cold.trace.back().objective * 1.001)
      << "warm start after " << third << " sweeps vs cold after "
      << cold.sweeps_run;
  // ...and its converged objective stays comparable (or better).
  EXPECT_LE(warm.trace.back().objective,
            cold.trace.back().objective * 1.02);
  EXPECT_TRUE(warm.model.Validate().ok());
}

TEST(UpdateModelTest, NewUsersGetSensibleRecommendations) {
  auto v1 = Planted(60, 40, 5);
  OcularConfig cfg;
  cfg.k = 6;
  cfg.lambda = 0.5;
  cfg.max_sweeps = 50;
  auto fit_v1 = OcularTrainer(cfg).Fit(v1.dataset.interactions()).value();

  // One new user buys half the items of cluster 1.
  CooBuilder coo;
  for (auto [u, i] : v1.dataset.interactions().ToPairs()) coo.Add(u, i);
  const auto& cluster_items = v1.cluster_items[1];
  ASSERT_GE(cluster_items.size(), 4u);
  std::vector<uint32_t> bought, held_out;
  for (size_t n = 0; n < cluster_items.size(); ++n) {
    (n % 2 == 0 ? bought : held_out).push_back(cluster_items[n]);
  }
  for (uint32_t i : bought) coo.Add(60, i);
  CsrMatrix v2 = CsrMatrix::FromCoo(coo.Finalize(61, 40).value());

  auto updated = UpdateModel(fit_v1.model, v2, cfg).value();
  // The held-out cluster items should now score high for the new user.
  double held_sum = 0.0;
  for (uint32_t i : held_out) held_sum += updated.model.Probability(60, i);
  const double held_mean = held_sum / static_cast<double>(held_out.size());
  // Against a random non-cluster baseline.
  double other_sum = 0.0;
  int other_n = 0;
  for (uint32_t i = 0; i < 40; ++i) {
    bool in_cluster = false;
    for (uint32_t c : cluster_items) in_cluster |= (c == i);
    if (!in_cluster) {
      other_sum += updated.model.Probability(60, i);
      ++other_n;
    }
  }
  EXPECT_GT(held_mean, 2.0 * (other_sum / other_n));
}

TEST(UpdateModelTest, ValidatesDimensions) {
  OcularModel model(DenseMatrix(2, 3, 0.5), DenseMatrix(2, 3, 0.5));
  OcularConfig cfg;
  cfg.k = 5;  // mismatch with model.k() == 3
  CsrMatrix r = CsrMatrix::FromPairs({{0, 0}}, 2, 2).value();
  EXPECT_TRUE(UpdateModel(model, r, cfg).status().IsInvalidArgument());
}

TEST(UpdateModelTest, BiasModelKeepsPinnedCoordinates) {
  auto v1 = Planted(40, 30, 9);
  OcularConfig cfg;
  cfg.k = 4;
  cfg.use_biases = true;
  cfg.max_sweeps = 20;
  auto fit = OcularTrainer(cfg).Fit(v1.dataset.interactions()).value();

  CooBuilder coo;
  for (auto [u, i] : v1.dataset.interactions().ToPairs()) coo.Add(u, i);
  coo.Add(40, 0);  // one new user, one new purchase
  CsrMatrix v2 = CsrMatrix::FromCoo(coo.Finalize(41, 30).value());
  auto updated = UpdateModel(fit.model, v2, cfg).value();
  for (uint32_t u = 0; u < 41; ++u) {
    EXPECT_DOUBLE_EQ(updated.model.user_factors().At(u, 5), 1.0);
  }
  for (uint32_t i = 0; i < 30; ++i) {
    EXPECT_DOUBLE_EQ(updated.model.item_factors().At(i, 4), 1.0);
  }
}

// Umbrella-header sanity: one flow touching several modules compiled via
// ocular/ocular.h alone.
TEST(UmbrellaHeaderTest, EndToEndCompilesAndRuns) {
  Dataset toy = MakePaperToyDataset();
  OcularConfig cfg;
  cfg.k = 3;
  cfg.lambda = 0.05;
  cfg.max_sweeps = 80;
  OcularRecommender rec(cfg);
  ASSERT_TRUE(rec.Fit(toy.interactions()).ok());
  auto stats = ComputeDatasetStats(toy.interactions());
  EXPECT_EQ(stats.num_users, 12u);
  auto batch = RecommendForAllUsers(rec, toy.interactions(), {}).value();
  EXPECT_GT(batch.users_scored, 0u);
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"ok":true})");
}

}  // namespace
}  // namespace ocular
