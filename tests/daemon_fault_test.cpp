// Fault-tolerance tests for the serving stack: the fault-injection
// framework itself (common/fault.h), the update journal's on-disk format
// and torn-tail tolerance (serving/journal.h), the daemon's behavior when
// every durability fault point fires (clean failure, no torn state, the
// process keeps serving), crash-window recovery (replay and heal, both
// bit-identical to the offline oracle), the connection guards (413
// oversize, 408 idle reaper), the load generator's 503 backoff contract,
// and fork/exec chaos drills that SIGKILL the real ocular_served binary
// inside the injected crash windows and assert the restart recovers.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/fs_util.h"
#include "core/incremental.h"
#include "core/model_store.h"
#include "core/ocular_recommender.h"
#include "data/loaders.h"
#include "serving/batch.h"
#include "serving/daemon.h"
#include "serving/journal.h"
#include "serving/loadgen.h"
#include "serving/net_util.h"
#include "serving/registry.h"
#include "sparse/coo.h"
#include "test_util.h"

// The chaos drills fork/exec the real daemon binary; CMake injects its
// path the same way cli_test gets the CLI.
#ifndef OCULAR_SERVED_PATH
#define OCULAR_SERVED_PATH "ocular_served"
#endif

// fork() + SIGKILL drills and ThreadSanitizer do not mix (TSan's runtime
// owns signal delivery and dislikes forked children); the in-process
// tests still run under TSan and carry the concurrency coverage.
#if defined(__SANITIZE_THREAD__)
#define OCULAR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OCULAR_TSAN 1
#endif
#endif

namespace ocular {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

/// Same deterministic fixture daemon_test uses: a small trained model
/// saved as a binary v2 artifact, with the in-memory fit kept for oracle
/// comparisons.
struct DaemonFixture {
  CsrMatrix train;
  OcularConfig config;
  OcularModel model;
  std::string model_path;

  static DaemonFixture Make(const std::string& file, uint64_t seed = 11,
                            uint32_t sweeps = 6) {
    DaemonFixture f;
    f.train = test::RandomCsr(50, 30, 400, 11);
    f.config.k = 5;
    f.config.lambda = 0.5;
    f.config.max_sweeps = sweeps;
    f.config.seed = seed;
    OcularTrainer trainer(f.config);
    f.model = trainer.Fit(f.train).value().model;
    f.model_path = TempPath(file);
    // TempDir persists across runs: a stale journal from an earlier run
    // must never leak into this one's recovery.
    std::remove(UpdateJournal::PathFor(f.model_path).c_str());
    EXPECT_TRUE(SaveModelBinary(f.model, f.config, f.model_path).ok());
    return f;
  }

  std::shared_ptr<const CsrMatrix> shared_train() const {
    return std::make_shared<const CsrMatrix>(train);
  }

  /// Removes the artifact and its journal.
  void Cleanup() const {
    std::remove(model_path.c_str());
    std::remove(UpdateJournal::PathFor(model_path).c_str());
  }
};

/// The offline oracle for `model` under `train` exclusions at top-`m`.
std::vector<std::vector<ScoredItem>> Oracle(const OcularModel& model,
                                            const CsrMatrix& train,
                                            uint32_t m) {
  OcularModelRecommender rec(model);
  BatchOptions batch;
  batch.m = m;
  batch.skip_cold_users = false;
  return RecommendForAllUsers(rec, train, batch).value().recommendations;
}

/// Replays the daemon's update pipeline offline from the artifact at
/// `model_path`: materialize, merge `adds` into `train`, warm-start
/// retrain. Also returns the config the daemon would persist with, so the
/// caller can save an artifact byte-identical to the daemon's.
struct OfflineUpdate {
  OcularModel model;
  CsrMatrix train;
  OcularConfig config;
};
OfflineUpdate ReplayUpdate(
    const std::string& model_path, const CsrMatrix& train,
    const std::vector<std::pair<uint32_t, uint32_t>>& adds, uint32_t sweeps) {
  auto store = ModelStore::Open(model_path);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  auto loaded = store->MaterializeOcular();
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  uint32_t users = store->num_users();
  uint32_t items = store->num_items();
  CooBuilder coo;
  for (auto [u, i] : train.ToPairs()) coo.Add(u, i);
  for (auto [u, i] : adds) {
    users = std::max(users, u + 1);
    items = std::max(items, i + 1);
    coo.Add(u, i);
  }
  CsrMatrix merged = CsrMatrix::FromCoo(coo.Finalize(users, items).value());
  OcularConfig config = loaded->config;
  config.max_sweeps = sweeps;
  auto fit = UpdateModel(loaded->model, merged, config, ExpandOptions{});
  EXPECT_TRUE(fit.ok()) << fit.status().ToString();
  return {std::move(fit->model), std::move(merged), config};
}

/// Arms-then-disarms around a test body; a test can never leak an armed
/// point into the next one (the framework is process-global).
struct FaultGuard {
  FaultGuard() { fault::Reset(); }
  ~FaultGuard() { fault::Reset(); }
};

// ------------------------------------------------ the framework itself

TEST(FaultFrameworkTest, DisarmedByDefaultAndFirstNGrammar) {
  FaultGuard guard;
  EXPECT_FALSE(fault::Armed());
  EXPECT_FALSE(fault::Maybe("store.rename"));

  ASSERT_TRUE(fault::Configure("store.rename=2").ok());
  EXPECT_TRUE(fault::Armed());
  EXPECT_TRUE(fault::Maybe("store.rename"));
  EXPECT_TRUE(fault::Maybe("store.rename"));
  EXPECT_FALSE(fault::Maybe("store.rename"));
  // Unconfigured points never fire even while armed.
  EXPECT_FALSE(fault::Maybe("store.write"));
  EXPECT_EQ(fault::Calls("store.rename"), 3u);
  EXPECT_EQ(fault::Hits("store.rename"), 2u);

  fault::Reset();
  EXPECT_FALSE(fault::Armed());
  EXPECT_FALSE(fault::Maybe("store.rename"));
  EXPECT_EQ(fault::Calls("store.rename"), 0u);
}

TEST(FaultFrameworkTest, KOfNIsDeterministicallyPeriodic) {
  FaultGuard guard;
  ASSERT_TRUE(fault::Configure("daemon.send=1/3").ok());
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(fault::Maybe("daemon.send"));
  EXPECT_EQ(fired, (std::vector<bool>{true, false, false, true, false, false,
                                      true, false, false}));
  EXPECT_EQ(fault::Hits("daemon.send"), 3u);
}

TEST(FaultFrameworkTest, InvalidSpecKeepsThePreviousConfiguration) {
  FaultGuard guard;
  ASSERT_TRUE(fault::Configure("update.apply=1").ok());
  for (const std::string bad :
       {"update.apply", "=1", "update.apply=", "update.apply=x",
        "update.apply=2/0", "update.apply=3/2", "update.apply=kill@0",
        "update.apply=kill@x"}) {
    EXPECT_FALSE(fault::Configure(bad).ok()) << bad;
  }
  // The old spec is still armed and fires.
  EXPECT_TRUE(fault::Maybe("update.apply"));
  EXPECT_FALSE(fault::Maybe("update.apply"));
}

TEST(FaultFrameworkTest, InjectedErrorNamesThePoint) {
  const Status st = fault::InjectedError("store.fsync");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("store.fsync"), std::string::npos);
}

// ------------------------------------------------------ journal format

UpdateRecord MakeRecord(uint64_t fingerprint,
                        std::vector<std::pair<uint32_t, uint32_t>> adds,
                        uint32_t users, uint32_t items, uint32_t sweeps = 3,
                        uint64_t seed = 0) {
  UpdateRecord r;
  r.base_fingerprint = fingerprint;
  r.seed = seed;
  r.num_users = users;
  r.num_items = items;
  r.sweeps = sweeps;
  r.adds = std::move(adds);
  return r;
}

TEST(UpdateJournalTest, RoundTripAndLifecyclePlan) {
  const std::string path = TempPath("journal_roundtrip.journal");
  std::remove(path.c_str());

  // A missing file is an empty journal, not an error.
  auto empty = UpdateJournal::LoadPlan(path);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->applied.empty());
  EXPECT_FALSE(empty->has_pending);
  EXPECT_FALSE(empty->torn_tail);

  UpdateJournal journal;
  ASSERT_TRUE(journal.Open(path).ok());
  ASSERT_TRUE(
      journal.AppendUpdate(MakeRecord(0xfeed, {{50, 1}, {50, 7}}, 51, 30))
          .ok());
  ASSERT_TRUE(journal.AppendCommit().ok());
  ASSERT_TRUE(
      journal.AppendUpdate(MakeRecord(0xbad, {{9, 9}}, 51, 30, 2, 77)).ok());
  ASSERT_TRUE(journal.AppendAbort().ok());
  ASSERT_TRUE(
      journal.AppendUpdate(MakeRecord(0xcafe, {{51, 3}}, 52, 30, 4, 5)).ok());
  journal.Close();

  bool torn = true;
  auto records = UpdateJournal::ReadAll(path, &torn);
  ASSERT_TRUE(records.ok());
  EXPECT_FALSE(torn);
  ASSERT_EQ(records->size(), 5u);
  EXPECT_EQ((*records)[0].type, UpdateJournal::RecordType::kUpdate);
  EXPECT_EQ((*records)[1].type, UpdateJournal::RecordType::kCommit);
  EXPECT_EQ((*records)[3].type, UpdateJournal::RecordType::kAbort);
  EXPECT_EQ((*records)[0].update.base_fingerprint, 0xfeedu);
  EXPECT_EQ((*records)[0].update.adds,
            (std::vector<std::pair<uint32_t, uint32_t>>{{50, 1}, {50, 7}}));

  auto plan = UpdateJournal::LoadPlan(path);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->applied.size(), 1u);  // committed one only
  EXPECT_EQ(plan->applied[0].base_fingerprint, 0xfeedu);
  EXPECT_EQ(plan->aborted, 1u);
  ASSERT_TRUE(plan->has_pending);  // the trailing uncommitted record
  EXPECT_EQ(plan->pending.base_fingerprint, 0xcafeu);
  EXPECT_EQ(plan->pending.seed, 5u);
  EXPECT_EQ(plan->pending.sweeps, 4u);
  EXPECT_EQ(plan->pending.num_users, 52u);
  EXPECT_FALSE(plan->torn_tail);
  std::remove(path.c_str());
}

TEST(UpdateJournalTest, TornTailEndsTheReadablePrefix) {
  const std::string path = TempPath("journal_torn.journal");
  std::remove(path.c_str());
  UpdateJournal journal;
  ASSERT_TRUE(journal.Open(path).ok());
  ASSERT_TRUE(
      journal.AppendUpdate(MakeRecord(1, {{50, 0}, {50, 1}}, 51, 30)).ok());
  struct stat st;
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  const size_t after_update = static_cast<size_t>(st.st_size);
  ASSERT_TRUE(journal.AppendCommit().ok());
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  const size_t after_commit = static_cast<size_t>(st.st_size);
  ASSERT_TRUE(journal.AppendUpdate(MakeRecord(2, {{51, 2}}, 52, 30)).ok());
  journal.Close();
  const std::string full = ReadFileBytes(path);

  struct Case {
    size_t keep;
    size_t expect_records;
    bool expect_torn;
  };
  // Cuts: mid-payload of the last record, mid-header of the commit, and a
  // clean end exactly on a record boundary (not torn).
  const Case cases[] = {
      {full.size() - 3, 2, true},
      {after_update + 7, 1, true},
      {after_commit, 2, false},
  };
  for (const Case& c : cases) {
    const std::string cut_path = TempPath("journal_torn_cut.journal");
    WriteFileBytes(cut_path, full.substr(0, c.keep));
    bool torn = false;
    auto records = UpdateJournal::ReadAll(cut_path, &torn);
    ASSERT_TRUE(records.ok()) << c.keep;
    EXPECT_EQ(records->size(), c.expect_records) << c.keep;
    EXPECT_EQ(torn, c.expect_torn) << c.keep;
    std::remove(cut_path.c_str());
  }

  // A flipped payload byte fails the checksum: same as a torn tail.
  std::string corrupt = full;
  corrupt[corrupt.size() - 2] ^= 0x5a;
  const std::string corrupt_path = TempPath("journal_torn_corrupt.journal");
  WriteFileBytes(corrupt_path, corrupt);
  bool torn = false;
  auto records = UpdateJournal::ReadAll(corrupt_path, &torn);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
  EXPECT_TRUE(torn);
  // The trusted prefix still yields a full plan.
  auto plan = UpdateJournal::LoadPlan(corrupt_path);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->applied.size(), 1u);
  EXPECT_FALSE(plan->has_pending);
  EXPECT_TRUE(plan->torn_tail);
  std::remove(corrupt_path.c_str());
  std::remove(path.c_str());
}

// ------------------------------------------- injected-fault update path

TEST(UpdateFaultMatrixTest, EveryFaultFailsTheUpdateCleanlyAndServingSurvives) {
  FaultGuard guard;
  DaemonFixture f = DaemonFixture::Make("fault_matrix.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer server(&registry);  // journaling on by default

  const std::string journal_path = UpdateJournal::PathFor(f.model_path);
  const std::string tmp_path = f.model_path + ".update.tmp";
  const std::string base_bytes = ReadFileBytes(f.model_path);
  const char* kUpdateRequest =
      R"({"cmd":"update","adds":[[50,0],[50,7]],"sweeps":2})";

  struct Case {
    const char* point;
    bool leaves_pending;  // journal.fsync: the record may have survived
  };
  const Case kCases[] = {
      {"journal.append", false}, {"journal.fsync", true},
      {"store.write", false},    {"store.fsync", false},
      {"store.rename", false},   {"update.apply", false},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.point);
    std::remove(journal_path.c_str());
    ASSERT_TRUE(fault::Configure(std::string(c.point) + "=1").ok());

    auto reply = JsonValue::Parse(server.HandleLine(kUpdateRequest));
    ASSERT_TRUE(reply.ok());
    EXPECT_FALSE(reply->Find("ok")->boolean());
    // The injected error is greppable in the reply.
    ASSERT_NE(reply->Find("error"), nullptr);
    EXPECT_NE(reply->Find("error")->string().find(c.point),
              std::string::npos);
    EXPECT_EQ(fault::Hits(c.point), 1u);

    // No torn state anywhere: nothing published, no stray tmp file, the
    // artifact is byte-identical to before the attempt.
    EXPECT_EQ(server.Stats().updates, 0u);
    EXPECT_FALSE(FileExists(tmp_path));
    EXPECT_EQ(ReadFileBytes(f.model_path), base_bytes);

    // The journal's verdict matches the failure mode: a clean failure
    // aborts the record; an ambiguous journal fsync leaves it pending
    // (recovery resolves it by fingerprint — at-least-once, never lost).
    auto plan = UpdateJournal::LoadPlan(journal_path);
    ASSERT_TRUE(plan.ok());
    EXPECT_TRUE(plan->applied.empty());
    EXPECT_EQ(plan->has_pending, c.leaves_pending);

    // The daemon is unharmed: the very next recommend answers.
    auto ok = JsonValue::Parse(
        server.HandleLine(R"({"cmd":"recommend","user":3,"m":4})"));
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(ok->Find("ok")->boolean());
    fault::Reset();
  }

  // With every fault cleared the same update goes through end to end.
  std::remove(journal_path.c_str());
  auto reply = JsonValue::Parse(server.HandleLine(kUpdateRequest));
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->Find("ok")->boolean());
  EXPECT_EQ(server.Stats().updates, 1u);
  auto plan = UpdateJournal::LoadPlan(journal_path);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->applied.size(), 1u);
  EXPECT_FALSE(plan->has_pending);
  f.Cleanup();
}

TEST(UpdateFaultMatrixTest, DirsyncFailureAfterRenameStillPublishes) {
  // DurableRename's dirsync comes AFTER the rename: when only it fails,
  // the artifact has already moved, so the update must report success and
  // the journal must commit — recovery must never replay an update that
  // clients can already observe.
  FaultGuard guard;
  DaemonFixture f = DaemonFixture::Make("fault_dirsync.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer server(&registry);
  ASSERT_TRUE(fault::Configure("store.dirsync=1").ok());

  auto reply = JsonValue::Parse(server.HandleLine(
      R"({"cmd":"update","adds":[[50,0]],"sweeps":2})"));
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->Find("ok")->boolean());
  EXPECT_EQ(fault::Hits("store.dirsync"), 1u);
  EXPECT_EQ(server.Stats().updates, 1u);
  auto plan = UpdateJournal::LoadPlan(UpdateJournal::PathFor(f.model_path));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->applied.size(), 1u);
  EXPECT_FALSE(plan->has_pending);
  f.Cleanup();
}

// ------------------------------------------------- crash-window recovery

TEST(JournalRecoveryTest, CrashBeforeRenameReplaysBitIdentically) {
  DaemonFixture f = DaemonFixture::Make("fault_replay.oclr");
  const std::string base_copy = TempPath("fault_replay_base.oclr");
  WriteFileBytes(base_copy, ReadFileBytes(f.model_path));
  const std::vector<std::pair<uint32_t, uint32_t>> adds = {
      {50, 0}, {50, 7}, {50, 12}};

  // Simulate the crash window: the previous incarnation journaled the
  // update (fingerprint of the artifact it retrained from) and died
  // before the rename — artifact untouched, record pending.
  auto fingerprint = fs::FileFingerprint(f.model_path);
  ASSERT_TRUE(fingerprint.ok());
  UpdateJournal journal;
  ASSERT_TRUE(journal.Open(UpdateJournal::PathFor(f.model_path)).ok());
  ASSERT_TRUE(
      journal.AppendUpdate(MakeRecord(*fingerprint, adds, 51, 30, 3)).ok());
  journal.Close();

  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer server(&registry);
  auto recovered = server.RecoverJournal("default");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->replayed_pending);
  EXPECT_FALSE(recovered->healed_commit);
  EXPECT_EQ(recovered->applied_merged, 0u);
  EXPECT_EQ(server.Stats().journal_replays, 1u);

  // The replay ran the exact pipeline the lost ack promised: the
  // recovered artifact is byte-identical to the offline oracle's, and
  // serving the brand-new user matches the oracle exactly.
  OfflineUpdate oracle = ReplayUpdate(base_copy, f.train, adds, 3);
  const std::string oracle_path = TempPath("fault_replay_oracle.oclr");
  ASSERT_TRUE(SaveModelBinary(oracle.model, oracle.config, oracle_path).ok());
  EXPECT_EQ(ReadFileBytes(f.model_path), ReadFileBytes(oracle_path));

  const auto expect = Oracle(oracle.model, oracle.train, 5);
  EXPECT_TRUE(ReplyMatchesRanked(
      server.HandleLine(R"({"cmd":"recommend","user":50,"m":5})"),
      expect[50]));

  // The journal is now committed, and a second restart is idempotent:
  // the (same) delta re-merges, nothing replays, the artifact is stable.
  const std::string recovered_bytes = ReadFileBytes(f.model_path);
  ModelRegistry registry2;
  ASSERT_TRUE(registry2.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer server2(&registry2);
  auto again = server2.RecoverJournal("default");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(again->replayed_pending);
  EXPECT_EQ(again->applied_merged, 1u);
  EXPECT_EQ(ReadFileBytes(f.model_path), recovered_bytes);
  EXPECT_TRUE(ReplyMatchesRanked(
      server2.HandleLine(R"({"cmd":"recommend","user":50,"m":5})"),
      expect[50]));

  std::remove(base_copy.c_str());
  std::remove(oracle_path.c_str());
  f.Cleanup();
}

TEST(JournalRecoveryTest, PublishedButUncommittedUpdateHealsTheCommit) {
  // The other side of the crash window: the rename landed (the live
  // artifact's fingerprint moved past the record's base) but the commit
  // record is missing. The adds are law — recovery must merge them and
  // append the commit, never retrain over the published artifact.
  DaemonFixture f = DaemonFixture::Make("fault_heal.oclr");
  auto fingerprint = fs::FileFingerprint(f.model_path);
  ASSERT_TRUE(fingerprint.ok());
  UpdateJournal journal;
  ASSERT_TRUE(journal.Open(UpdateJournal::PathFor(f.model_path)).ok());
  ASSERT_TRUE(journal
                  .AppendUpdate(MakeRecord(*fingerprint ^ 0x1234,
                                           {{50, 1}, {50, 4}}, 51, 30))
                  .ok());
  journal.Close();
  const std::string artifact_bytes = ReadFileBytes(f.model_path);

  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer server(&registry);
  auto recovered = server.RecoverJournal("default");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->healed_commit);
  EXPECT_FALSE(recovered->replayed_pending);
  EXPECT_EQ(recovered->applied_merged, 1u);
  // Healing touches the journal, never the published artifact.
  EXPECT_EQ(ReadFileBytes(f.model_path), artifact_bytes);
  auto plan = UpdateJournal::LoadPlan(UpdateJournal::PathFor(f.model_path));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->applied.size(), 1u);
  EXPECT_FALSE(plan->has_pending);
  // The healed deltas are live in the serving base: user 50's adds now
  // exclude those items from its recommendations.
  auto model = registry.Get("default");
  ASSERT_NE(model, nullptr);
  ASSERT_NE(model->train, nullptr);
  EXPECT_EQ(model->train->num_rows(), 51u);
  f.Cleanup();
}

TEST(JournalRecoveryTest, RecordsWithoutABoundDatasetRefuseRecovery) {
  DaemonFixture f = DaemonFixture::Make("fault_nodataset.oclr");
  UpdateJournal journal;
  ASSERT_TRUE(journal.Open(UpdateJournal::PathFor(f.model_path)).ok());
  ASSERT_TRUE(journal.AppendUpdate(MakeRecord(1, {{50, 0}}, 51, 30)).ok());
  ASSERT_TRUE(journal.AppendCommit().ok());
  journal.Close();

  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path).ok());  // no dataset
  RequestServer server(&registry);
  auto recovered = server.RecoverJournal("default");
  ASSERT_FALSE(recovered.ok());
  EXPECT_NE(recovered.status().ToString().find("no bound dataset"),
            std::string::npos);
  f.Cleanup();
}

// --------------------------------------------------- connection guards

/// Minimal raw TCP client (same shape as daemon_test's): exact control
/// over partial sends and reads that the load generator hides.
struct RawClient {
  int fd = -1;
  std::string buffer;

  bool Connect(uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }
  bool Send(const std::string& line) {
    const std::string framed = line + "\n";
    return net::SendAll(fd, framed.data(), framed.size());
  }
  bool SendRaw(const std::string& bytes) {
    return net::SendAll(fd, bytes.data(), bytes.size());
  }
  bool ReadLine(std::string* line) { return net::ReadLine(fd, &buffer, line); }
  void Close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
};

uint16_t WaitForPort(const RequestServer& server, std::thread* serve_thread) {
  for (int ms = 0; ms < 10000; ++ms) {
    const uint16_t port = server.bound_port();
    if (port != 0) return port;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (serve_thread->joinable()) serve_thread->join();
  return 0;
}

TEST(ConnectionGuardTest, OversizeLineGets413AndABoundedBuffer) {
  DaemonFixture f = DaemonFixture::Make("fault_oversize.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer::Options options;
  options.num_workers = 1;
  options.io_timeout_ms = 100;
  RequestServer server(&registry, options);  // max_request_bytes = 1 MiB

  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, 3).ok());
  });
  const uint16_t port = WaitForPort(server, &serve_thread);
  ASSERT_NE(port, 0);

  // Deterministic 413: push just past the cap, stop, read the reply.
  {
    RawClient c;
    ASSERT_TRUE(c.Connect(port));
    const std::string chunk(256 << 10, 'x');  // newline-free
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(c.SendRaw(chunk));  // 1.25 MiB
    std::string line;
    ASSERT_TRUE(c.ReadLine(&line)) << "oversize line must get a reply";
    auto parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_FALSE(parsed->Find("ok")->boolean());
    ASSERT_NE(parsed->Find("code"), nullptr);
    EXPECT_EQ(parsed->Find("code")->number(), 413.0);
    EXPECT_FALSE(c.ReadLine(&line)) << "oversize connection must be closed";
    c.Close();
  }

  // The OOM regression: a 64 MiB newline-free stream. The server stops
  // reading at the cap and closes, so the kernel backpressures our send
  // long before 64 MiB — the worker's buffer can never absorb the flood.
  {
    RawClient c;
    ASSERT_TRUE(c.Connect(port));
    const std::string chunk(1 << 20, 'y');
    size_t sent = 0;
    for (int i = 0; i < 64; ++i) {
      if (!c.SendRaw(chunk)) break;  // peer closed: RST ends the flood
      sent += chunk.size();
    }
    EXPECT_LT(sent, size_t{64} << 20)
        << "the server kept reading an unbounded newline-free stream";
    c.Close();
  }

  // The daemon survived both abuses and still serves.
  {
    RawClient c;
    ASSERT_TRUE(c.Connect(port));
    ASSERT_TRUE(c.Send(R"({"cmd":"recommend","user":3,"m":4})"));
    std::string line;
    ASSERT_TRUE(c.ReadLine(&line));
    auto parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(parsed->Find("ok")->boolean());
    c.Close();
  }
  serve_thread.join();
  EXPECT_GE(server.Stats().errors, 1u);
  f.Cleanup();
}

TEST(ConnectionGuardTest, IdleConnectionIsReapedWith408) {
  DaemonFixture f = DaemonFixture::Make("fault_idle.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer::Options options;
  options.num_workers = 1;
  options.io_timeout_ms = 50;    // the reaper's wakeup tick
  options.idle_timeout_ms = 150;
  RequestServer server(&registry, options);

  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, 1).ok());
  });
  const uint16_t port = WaitForPort(server, &serve_thread);
  ASSERT_NE(port, 0);

  RawClient c;
  ASSERT_TRUE(c.Connect(port));
  // Slow-loris: dribble bytes but never a complete request. The idle
  // clock counts completed requests, so this connection is idle despite
  // being byte-active.
  ASSERT_TRUE(c.SendRaw(R"({"cmd":)"));
  std::string line;
  ASSERT_TRUE(c.ReadLine(&line)) << "idle connection must get a 408 reply";
  auto parsed = JsonValue::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_FALSE(parsed->Find("ok")->boolean());
  ASSERT_NE(parsed->Find("code"), nullptr);
  EXPECT_EQ(parsed->Find("code")->number(), 408.0);
  EXPECT_FALSE(c.ReadLine(&line)) << "reaped connection must be closed";
  c.Close();
  serve_thread.join();
  EXPECT_EQ(server.Stats().connections_timed_out, 1u);
  f.Cleanup();
}

TEST(ShedRetryTest, LoadgenAbsorbs503WithBackoffAndTheRunCompletes) {
  DaemonFixture f = DaemonFixture::Make("fault_shed_retry.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer::Options options;
  options.num_workers = 1;
  // Blockers A and B hold both admission slots; the loadgen client is
  // shed with 503 until the releaser frees a slot. (Under the epoll core
  // idle connections cost no worker, so the cap — not a parked worker —
  // is what produces the shed.)
  options.max_connections = 2;
  options.io_timeout_ms = 50;
  options.retry_after_ms = 10;
  RequestServer server(&registry, options);

  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, 0).ok());
  });
  const uint16_t port = WaitForPort(server, &serve_thread);
  ASSERT_NE(port, 0);

  RawClient a;
  ASSERT_TRUE(a.Connect(port));
  ASSERT_TRUE(a.Send(R"({"user":0,"m":3})"));
  std::string line;
  ASSERT_TRUE(a.ReadLine(&line));  // A is live and admitted
  RawClient b;
  ASSERT_TRUE(b.Connect(port));  // takes the second (and last) slot
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Release the blockers while the loadgen is backing off: its shed
  // batches must be retried and the run must account for every request.
  std::thread releaser([&a, &b] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    a.Close();
    b.Close();
  });

  LoadGenOptions load;
  load.port = port;
  load.clients = 1;
  load.requests_per_client = 8;
  load.pipeline = 4;
  load.m = 4;
  load.num_users = 50;
  auto result = RunLoadGen(load);
  releaser.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->requests, 8u);
  EXPECT_EQ(result->ok_replies, 8u);
  EXPECT_EQ(result->error_replies, 0u);
  EXPECT_GE(result->shed_retries, 1u);
  EXPECT_GE(server.Stats().connections_shed, 1u);

  // In-process drain: the latch stops the accept loop, the pool drains,
  // RunTcpLoop returns OK, and the latch is consumed for the next test.
  RequestServer::RequestShutdown();
  serve_thread.join();
  EXPECT_FALSE(RequestServer::ShutdownRequested());
  f.Cleanup();
}

TEST(ConnectionCoreFaultTest, EpollStallInjectionDoesNotDropConnections) {
  FaultGuard guard;
  DaemonFixture f = DaemonFixture::Make("fault_epoll_stall.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer::Options options;
  options.num_workers = 1;
  options.io_timeout_ms = 1000;  // deadlines far beyond the injected stall
  RequestServer server(&registry, options);

  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, 0).ok());
  });
  const uint16_t port = WaitForPort(server, &serve_thread);
  ASSERT_NE(port, 0);

  // Freeze the whole readiness loop (reads, flushes, accepts, sweeps) for
  // several iterations while pipelined traffic is in flight. The stall is
  // pure delay: every request must still be answered, nothing shed,
  // nothing torn.
  ASSERT_TRUE(fault::Configure("daemon.epoll=3").ok());
  LoadGenOptions load;
  load.port = port;
  load.clients = 2;
  load.requests_per_client = 16;
  load.pipeline = 4;
  load.m = 4;
  load.num_users = 50;
  auto result = RunLoadGen(load);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->requests, 32u);
  EXPECT_EQ(result->ok_replies, 32u);
  EXPECT_EQ(result->error_replies, 0u);
  EXPECT_EQ(server.Stats().connections_shed, 0u);

  RequestServer::RequestShutdown();
  serve_thread.join();
  EXPECT_FALSE(RequestServer::ShutdownRequested());
  f.Cleanup();
}

TEST(ConnectionCoreFaultTest, FlushFaultTearsOnlyTheTargetConnection) {
  FaultGuard guard;
  DaemonFixture f = DaemonFixture::Make("fault_flush_tear.oclr");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.model_path, f.shared_train()).ok());
  RequestServer::Options options;
  options.num_workers = 1;
  options.io_timeout_ms = 50;
  RequestServer server(&registry, options);

  std::thread serve_thread([&server] {
    EXPECT_TRUE(server.RunTcpLoop(0, 2).ok());
  });
  const uint16_t port = WaitForPort(server, &serve_thread);
  ASSERT_NE(port, 0);

  // A's first reply flush dies ("daemon.flush"): the connection is torn
  // mid-write-path — abrupt close, no reply bytes.
  RawClient a;
  ASSERT_TRUE(a.Connect(port));
  ASSERT_TRUE(fault::Configure("daemon.flush=1").ok());
  ASSERT_TRUE(a.Send(R"({"user":1,"m":3})"));
  std::string line;
  EXPECT_FALSE(a.ReadLine(&line))
      << "flush-faulted connection must close without a reply, got: " << line;
  a.Close();

  // The blast radius is exactly one connection: the next client is served
  // normally by the same loop.
  RawClient b;
  ASSERT_TRUE(b.Connect(port));
  ASSERT_TRUE(b.Send(R"({"user":1,"m":3})"));
  ASSERT_TRUE(b.ReadLine(&line)) << "connection after the tear must serve";
  auto parsed = JsonValue::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_TRUE(parsed->Find("ok")->boolean());
  b.Close();
  serve_thread.join();
  EXPECT_EQ(server.Stats().connections_shed, 0u);
  f.Cleanup();
}

// ------------------------------------------------ fork/exec chaos drills

#ifndef OCULAR_TSAN

/// A free loopback port: bind 0, read the assignment, close. The tiny
/// close-to-exec race is acceptable for tests.
uint16_t FreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof(addr);
  uint16_t port = 0;
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) ==
      0) {
    port = ntohs(addr.sin_port);
  }
  ::close(fd);
  return port;
}

/// The real daemon binary as a child process, stderr captured to a file,
/// faults injected through OCULAR_FAULTS.
struct ServedProcess {
  pid_t pid = -1;
  std::string stderr_path;

  static ServedProcess Start(const std::vector<std::string>& args,
                             const std::string& faults,
                             const std::string& stderr_path) {
    ServedProcess p;
    p.stderr_path = stderr_path;
    p.pid = ::fork();
    if (p.pid == 0) {
      if (faults.empty()) {
        ::unsetenv("OCULAR_FAULTS");
      } else {
        ::setenv("OCULAR_FAULTS", faults.c_str(), 1);
      }
      const int err =
          ::open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (err >= 0) {
        ::dup2(err, 2);
        ::close(err);
      }
      const int null = ::open("/dev/null", O_RDONLY);
      if (null >= 0) {
        ::dup2(null, 0);
        ::close(null);
      }
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(OCULAR_SERVED_PATH));
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(OCULAR_SERVED_PATH, argv.data());
      ::_exit(127);
    }
    return p;
  }

  /// Waits (bounded) for the child to die; returns the raw wait status,
  /// or -1 on timeout.
  int Wait(int timeout_ms = 30000) {
    for (int waited = 0; waited < timeout_ms; waited += 10) {
      int status = 0;
      const pid_t done = ::waitpid(pid, &status, WNOHANG);
      if (done == pid) {
        pid = -1;
        return status;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return -1;
  }

  void KillHard() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      Wait();
    }
  }
  ~ServedProcess() { KillHard(); }
};

/// Polls until the daemon accepts on `port` (it is serving) or the child
/// died. Returns whether a connection succeeded.
bool WaitForServing(uint16_t port, ServedProcess* served,
                    int timeout_ms = 20000) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    RawClient probe;
    if (probe.Connect(port)) {
      probe.Close();
      return true;
    }
    int status = 0;
    if (served->pid > 0 &&
        ::waitpid(served->pid, &status, WNOHANG) == served->pid) {
      served->pid = -1;
      return false;  // died before listening
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// One round trip on a fresh connection; empty string on failure.
std::string RoundTrip(uint16_t port, const std::string& request) {
  RawClient c;
  if (!c.Connect(port)) return "";
  std::string line;
  if (!c.Send(request) || !c.ReadLine(&line)) line.clear();
  c.Close();
  return line;
}

/// Writes `train` as the `user<TAB>item` dataset the daemon loads, and
/// returns the loader's view of it (the exact matrix the daemon serves
/// and recovers against).
CsrMatrix WriteAndReloadDataset(const CsrMatrix& train,
                                const std::string& path) {
  std::ofstream out(path);
  for (auto [u, i] : train.ToPairs()) out << u << '\t' << i << '\n';
  out.close();
  CsvOptions opts;
  opts.delimiter = '\t';
  // Mirror serve_main exactly: the daemon keeps raw ids so dataset row u
  // IS model user u; the default dense remap would permute columns.
  opts.compact_ids = false;
  auto ds = LoadCsv(path, opts);
  EXPECT_TRUE(ds.ok()) << ds.status().ToString();
  return ds->interactions();
}

TEST(ChaosSubprocessTest, KillBeforeRenameIsReplayedBitIdenticallyOnRestart) {
  DaemonFixture f = DaemonFixture::Make("chaos_replay.oclr");
  const std::string dataset_path = TempPath("chaos_replay.tsv");
  const CsrMatrix train = WriteAndReloadDataset(f.train, dataset_path);
  ASSERT_EQ(train.num_rows(), f.train.num_rows());
  ASSERT_EQ(train.num_cols(), f.train.num_cols());
  const std::string base_copy = TempPath("chaos_replay_base.oclr");
  WriteFileBytes(base_copy, ReadFileBytes(f.model_path));

  const uint16_t port = FreePort();
  ASSERT_NE(port, 0);
  const std::vector<std::string> args = {
      "--models=default=" + f.model_path,
      "--datasets=default=" + dataset_path,
      "--port=" + std::to_string(port),
      "--io-timeout-ms=100",
  };

  // Incarnation 1: armed to SIGKILL itself inside the crash window — the
  // journal append has happened, the rename has not.
  ServedProcess crashed = ServedProcess::Start(
      args, "store.rename=kill", TempPath("chaos_replay_stderr1.log"));
  ASSERT_TRUE(WaitForServing(port, &crashed));
  ASSERT_FALSE(RoundTrip(port, R"({"cmd":"recommend","user":3,"m":4})")
                   .empty());
  // The killing update: the connection dies with no reply.
  EXPECT_TRUE(
      RoundTrip(port,
                R"({"cmd":"update","adds":[[50,0],[50,7],[50,12]],"sweeps":3})")
          .empty());
  const int status = crashed.Wait();
  ASSERT_NE(status, -1) << "daemon did not die in the kill window";
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // The crash left the artifact untouched and the journal pending.
  EXPECT_EQ(ReadFileBytes(f.model_path), ReadFileBytes(base_copy));
  auto plan = UpdateJournal::LoadPlan(UpdateJournal::PathFor(f.model_path));
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->has_pending);

  // Incarnation 2, no faults: startup recovery must replay the update.
  const std::string stderr2 = TempPath("chaos_replay_stderr2.log");
  ServedProcess recovered = ServedProcess::Start(args, "", stderr2);
  ASSERT_TRUE(WaitForServing(port, &recovered));

  auto stats = JsonValue::Parse(RoundTrip(port, R"({"cmd":"stats"})"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->Find("journal_replays")->number(), 1.0);

  // Bit-identical recovery: the restarted daemon's artifact equals the
  // offline oracle's, and the acked-then-crashed user serves exactly.
  const OfflineUpdate oracle =
      ReplayUpdate(base_copy, train, {{50, 0}, {50, 7}, {50, 12}}, 3);
  const std::string oracle_path = TempPath("chaos_replay_oracle.oclr");
  ASSERT_TRUE(SaveModelBinary(oracle.model, oracle.config, oracle_path).ok());
  EXPECT_EQ(ReadFileBytes(f.model_path), ReadFileBytes(oracle_path));
  const auto expect = Oracle(oracle.model, oracle.train, 5);
  EXPECT_TRUE(ReplyMatchesRanked(
      RoundTrip(port, R"({"cmd":"recommend","user":50,"m":5})"), expect[50]));

  // SIGTERM drains gracefully: exit 0 with the final stats line.
  ASSERT_EQ(::kill(recovered.pid, SIGTERM), 0);
  const int drained = recovered.Wait();
  ASSERT_NE(drained, -1) << "daemon did not drain on SIGTERM";
  ASSERT_TRUE(WIFEXITED(drained));
  EXPECT_EQ(WEXITSTATUS(drained), 0);
  const std::string log = ReadFileBytes(stderr2);
  EXPECT_NE(log.find("crashed update replayed"), std::string::npos) << log;
  EXPECT_NE(log.find("drained:"), std::string::npos) << log;

  std::remove(dataset_path.c_str());
  std::remove(base_copy.c_str());
  std::remove(oracle_path.c_str());
  f.Cleanup();
}

TEST(ChaosSubprocessTest, SigkillAfterAckedUpdatesRecoversEveryDelta) {
  DaemonFixture f = DaemonFixture::Make("chaos_storm.oclr");
  const std::string dataset_path = TempPath("chaos_storm.tsv");
  const CsrMatrix train = WriteAndReloadDataset(f.train, dataset_path);
  const std::string base_copy = TempPath("chaos_storm_base.oclr");
  WriteFileBytes(base_copy, ReadFileBytes(f.model_path));

  const uint16_t port = FreePort();
  ASSERT_NE(port, 0);
  const std::vector<std::string> args = {
      "--models=default=" + f.model_path,
      "--datasets=default=" + dataset_path,
      "--port=" + std::to_string(port),
      "--io-timeout-ms=100",
  };

  ServedProcess served =
      ServedProcess::Start(args, "", TempPath("chaos_storm_stderr1.log"));
  ASSERT_TRUE(WaitForServing(port, &served));

  // A storm of acked updates, then a power cut with zero warning.
  const std::vector<std::pair<uint32_t, uint32_t>> adds1 = {{50, 1}, {50, 4}};
  const std::vector<std::pair<uint32_t, uint32_t>> adds2 = {{51, 2}, {51, 9}};
  for (const char* request :
       {R"({"cmd":"update","adds":[[50,1],[50,4]],"sweeps":2})",
        R"({"cmd":"update","adds":[[51,2],[51,9]],"sweeps":2})"}) {
    auto reply = JsonValue::Parse(RoundTrip(port, request));
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(reply->Find("ok")->boolean());
  }
  served.KillHard();

  // Restart: both committed deltas must be re-merged (the dataset CSV on
  // disk knows nothing about them) and serving must match the offline
  // chain of both updates exactly.
  const std::string stderr2 = TempPath("chaos_storm_stderr2.log");
  ServedProcess recovered = ServedProcess::Start(args, "", stderr2);
  ASSERT_TRUE(WaitForServing(port, &recovered));
  auto stats = JsonValue::Parse(RoundTrip(port, R"({"cmd":"stats"})"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->Find("journal_recovered")->number(), 2.0);
  EXPECT_EQ(stats->Find("journal_replays")->number(), 0.0);

  const OfflineUpdate first = ReplayUpdate(base_copy, train, adds1, 2);
  const std::string chain_path = TempPath("chaos_storm_chain.oclr");
  ASSERT_TRUE(SaveModelBinary(first.model, first.config, chain_path).ok());
  const OfflineUpdate second = ReplayUpdate(chain_path, first.train, adds2, 2);
  const auto expect = Oracle(second.model, second.train, 5);
  for (uint32_t user : {uint32_t{3}, uint32_t{50}, uint32_t{51}}) {
    EXPECT_TRUE(ReplyMatchesRanked(
        RoundTrip(port, R"({"cmd":"recommend","user":)" +
                            std::to_string(user) + R"(,"m":5})"),
        expect[user]))
        << "user " << user;
  }

  ASSERT_EQ(::kill(recovered.pid, SIGTERM), 0);
  const int drained = recovered.Wait();
  ASSERT_NE(drained, -1);
  ASSERT_TRUE(WIFEXITED(drained));
  EXPECT_EQ(WEXITSTATUS(drained), 0);
  EXPECT_NE(ReadFileBytes(stderr2).find("journal recovery for 'default'"),
            std::string::npos);

  std::remove(dataset_path.c_str());
  std::remove(base_copy.c_str());
  std::remove(chain_path.c_str());
  f.Cleanup();
}

#endif  // OCULAR_TSAN

}  // namespace
}  // namespace ocular
