// Tests for user-sharded OCLR stores (core/model_shard.h) and the layers
// that serve them: table-driven ShardMap routing (every shard edge, both
// off-by-one ends, single-shard degeneracy, empty-shard rejection, a
// route-totality property sweep stable across save/open round trips), the
// shardset-manifest corruption matrix (each class refuses to open with a
// DISTINCT error, mirroring model_store_test's OCLR cases), bit-identical
// serving of ShardedStoreRecommender against the monolithic
// StoreRecommender, the registry's per-shard generation swap, and the
// daemon's sharded verbs (shard-tagged replies, shard_requests stats, and
// the fold-in update that republishes only the touched shard).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/fs_util.h"
#include "common/json.h"
#include "core/model_shard.h"
#include "core/model_store.h"
#include "core/ocular_recommender.h"
#include "serving/daemon.h"
#include "serving/registry.h"
#include "serving/score_engine.h"
#include "serving/sharded_store_recommender.h"
#include "serving/store_recommender.h"
#include "test_util.h"

namespace ocular {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

/// Replaces the first manifest line starting with `key ` by `replacement`
/// (or deletes it when `replacement` is empty).
void RewriteManifestLine(const std::string& path, const std::string& key,
                         const std::string& replacement) {
  std::istringstream in(ReadFile(path));
  std::ostringstream out;
  std::string line;
  bool done = false;
  while (std::getline(in, line)) {
    if (!done && (line == key || line.rfind(key + " ", 0) == 0)) {
      done = true;
      if (replacement.empty()) continue;
      out << replacement << '\n';
      continue;
    }
    out << line << '\n';
  }
  WriteFile(path, out.str());
}

/// A small fitted model saved both ways: one monolithic .oclr file and an
/// N-shard shardset, over the same factors.
struct ShardedFixture {
  CsrMatrix train;
  OcularConfig config;
  OcularModel model;
  std::string mono_path;
  std::string manifest_path;

  static ShardedFixture Make(const std::string& stem, uint32_t num_shards,
                             uint32_t users = 50, uint32_t items = 30,
                             uint64_t seed = 11) {
    ShardedFixture f;
    f.train = test::RandomCsr(users, items, users * 8, seed);
    f.config.k = 5;
    f.config.lambda = 0.5;
    f.config.max_sweeps = 6;
    f.config.seed = seed;
    OcularTrainer trainer(f.config);
    f.model = trainer.Fit(f.train).value().model;
    f.mono_path = TempPath(stem + ".oclr");
    f.manifest_path = TempPath(stem + ".shardset");
    EXPECT_TRUE(SaveModelBinary(f.model, f.config, f.mono_path).ok());
    auto store = ModelStore::Open(f.mono_path);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE(SaveModelSharded(store->meta(), store->user_factors(),
                                 store->item_factors(),
                                 store->item_factors_t(), num_shards,
                                 f.manifest_path)
                    .ok());
    return f;
  }

  std::shared_ptr<const CsrMatrix> shared_train() const {
    return std::make_shared<const CsrMatrix>(train);
  }
};

// ------------------------------------------------------------- ShardMap

TEST(ShardMapTest, EvenSplitTable) {
  struct Case {
    uint32_t users;
    uint32_t shards;
    std::vector<uint32_t> begins;  // expected begin(s) for each shard
  };
  const Case cases[] = {
      {10, 1, {0}},
      {10, 2, {0, 5}},
      {10, 3, {0, 4, 7}},    // 10 = 4 + 3 + 3: the first shard takes the extra
      {7, 4, {0, 2, 4, 6}},  // 7 = 2 + 2 + 2 + 1
      {5, 5, {0, 1, 2, 3, 4}},
      {1, 1, {0}},
      {1000000, 7, {0, 142858, 285715, 428572, 571429, 714286, 857143}},
  };
  for (const Case& c : cases) {
    auto map = ShardMap::EvenSplit(c.users, c.shards);
    ASSERT_TRUE(map.ok()) << c.users << "/" << c.shards;
    ASSERT_EQ(map->num_shards(), c.shards);
    ASSERT_EQ(map->num_users(), c.users);
    for (uint32_t s = 0; s < c.shards; ++s) {
      EXPECT_EQ(map->begin(s), c.begins[s])
          << c.users << "/" << c.shards << " shard " << s;
    }
    EXPECT_EQ(map->end(c.shards - 1), c.users);
    // Sizes differ by at most one and tile the user space.
    uint32_t covered = 0;
    for (uint32_t s = 0; s < c.shards; ++s) {
      const uint32_t size = map->end(s) - map->begin(s);
      EXPECT_GE(size, c.users / c.shards);
      EXPECT_LE(size, c.users / c.shards + 1);
      EXPECT_EQ(map->begin(s), covered);
      covered += size;
    }
    EXPECT_EQ(covered, c.users);
  }
}

TEST(ShardMapTest, RoutingHitsEveryShardEdge) {
  auto map = ShardMap::EvenSplit(103, 8).value();
  // Boundary users at every shard edge, including the off-by-one at the
  // global ends: user 0 and user n_users-1.
  EXPECT_EQ(map.shard_of(0), 0u);
  EXPECT_EQ(map.shard_of(map.num_users() - 1), map.num_shards() - 1);
  for (uint32_t s = 0; s < map.num_shards(); ++s) {
    EXPECT_EQ(map.shard_of(map.begin(s)), s) << "first user of shard " << s;
    EXPECT_EQ(map.shard_of(map.end(s) - 1), s) << "last user of shard " << s;
    if (s > 0) {
      EXPECT_EQ(map.shard_of(map.begin(s) - 1), s - 1)
          << "user just below shard " << s;
    }
  }
}

TEST(ShardMapTest, SingleShardDegeneracy) {
  auto map = ShardMap::EvenSplit(17, 1).value();
  EXPECT_EQ(map.num_shards(), 1u);
  EXPECT_EQ(map.begin(0), 0u);
  EXPECT_EQ(map.end(0), 17u);
  for (uint32_t u = 0; u < 17; ++u) EXPECT_EQ(map.shard_of(u), 0u);
}

TEST(ShardMapTest, RejectsEmptyShards) {
  // EvenSplit: a zero divisor and more shards than users both imply an
  // empty shard.
  EXPECT_FALSE(ShardMap::EvenSplit(10, 0).ok());
  EXPECT_FALSE(ShardMap::EvenSplit(10, 11).ok());
  EXPECT_FALSE(ShardMap::EvenSplit(0, 1).ok());

  // FromBoundaries: every malformed begins vector is an empty shard in
  // disguise.
  struct Case {
    std::vector<uint32_t> begins;
    uint32_t users;
  };
  const Case bad[] = {
      {{}, 10},          // no shards at all
      {{1}, 10},         // users [0, 1) unowned
      {{0, 5, 5}, 10},   // shard 1 is empty
      {{0, 7, 5}, 10},   // non-increasing
      {{0, 10}, 10},     // final shard [10, 10) is empty
      {{0, 12}, 10},     // begin past the user space
      {{0}, 0},          // no users to route
  };
  for (const Case& c : bad) {
    EXPECT_FALSE(ShardMap::FromBoundaries(c.begins, c.users).ok())
        << "begins.size()=" << c.begins.size() << " users=" << c.users;
  }
  auto good = ShardMap::FromBoundaries({0, 4, 7}, 10);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, ShardMap::EvenSplit(10, 3).value());
}

TEST(ShardMapTest, RouteIsTotalAndStableAcrossRoundTrip) {
  // Property sweep: for every (users, shards) in the grid, route(u) is
  // total (every user lands in exactly the shard whose range holds it)...
  for (uint32_t users : {1u, 2u, 13u, 64u, 97u}) {
    for (uint32_t shards : {1u, 2u, 3u, 5u, 8u}) {
      if (shards > users) continue;
      auto map = ShardMap::EvenSplit(users, shards).value();
      for (uint32_t u = 0; u < users; ++u) {
        const uint32_t s = map.shard_of(u);
        ASSERT_LT(s, map.num_shards());
        ASSERT_GE(u, map.begin(s));
        ASSERT_LT(u, map.end(s));
      }
    }
  }
  // ...and the table survives a save/open round trip bit-for-bit: the map
  // parsed back from the manifest routes identically.
  ShardedFixture f = ShardedFixture::Make("map_round_trip", 7, 61, 24);
  auto opened = OpenShardSet(f.manifest_path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ShardMap expected = ShardMap::EvenSplit(61, 7).value();
  EXPECT_EQ(opened->map, expected);
  for (uint32_t u = 0; u < 61; ++u) {
    EXPECT_EQ(opened->map.shard_of(u), expected.shard_of(u));
  }
}

// --------------------------------------------------- save/open round trip

TEST(ShardSetTest, SaveOpenRoundTripSharesItemsAndSlicesUsers) {
  ShardedFixture f = ShardedFixture::Make("round_trip", 3);
  auto mono = ModelStore::Open(f.mono_path);
  ASSERT_TRUE(mono.ok());
  auto set = OpenShardSet(f.manifest_path);
  ASSERT_TRUE(set.ok()) << set.status().ToString();

  EXPECT_EQ(set->manifest.num_users, mono->num_users());
  EXPECT_EQ(set->manifest.num_items, mono->num_items());
  EXPECT_EQ(set->manifest.k, mono->k());
  EXPECT_EQ(set->manifest.split, "user-range");
  ASSERT_EQ(set->shards.size(), 3u);

  // The shared items file holds the factors once — no per-shard copies —
  // and each shard file holds exactly its user slice.
  EXPECT_EQ(set->items->num_users(), 0u);
  EXPECT_EQ(set->items->num_items(), mono->num_items());
  for (uint32_t s = 0; s < 3; ++s) {
    const ModelStore& shard = *set->shards[s];
    ASSERT_EQ(shard.num_users(), set->map.end(s) - set->map.begin(s));
    EXPECT_EQ(shard.num_items(), 0u);
    for (uint32_t r = 0; r < shard.num_users(); ++r) {
      const auto expect = mono->user_factors().Row(set->map.begin(s) + r);
      const auto got = shard.user_factors().Row(r);
      for (uint32_t c = 0; c < mono->k(); ++c) {
        ASSERT_EQ(expect[c], got[c]) << "shard " << s << " row " << r;
      }
    }
  }
}

// ----------------------------------------------------- corruption matrix

TEST(ShardSetTest, CorruptionMatrixEachClassHasADistinctError) {
  // One fresh shardset per corruption class, so the classes cannot mask
  // each other. Mirrors model_store_test's OCLR corruption cases.
  // Class 1: not a manifest at all (bad magic).
  {
    const std::string path = TempPath("bad_magic.shardset");
    WriteFile(path, "OCLRWRONG 1\nend\n");
    auto set = OpenShardSet(path);
    ASSERT_FALSE(set.ok());
    EXPECT_TRUE(set.status().IsParseError());
    EXPECT_NE(set.status().ToString().find("bad magic"), std::string::npos)
        << set.status().ToString();
    std::remove(path.c_str());
  }
  // Class 2: truncated manifest (the 'end' sentinel never arrives).
  {
    ShardedFixture f = ShardedFixture::Make("truncated", 2);
    RewriteManifestLine(f.manifest_path, "end", "");
    auto set = OpenShardSet(f.manifest_path);
    ASSERT_FALSE(set.ok());
    EXPECT_TRUE(set.status().IsParseError());
    EXPECT_NE(set.status().ToString().find("truncated"), std::string::npos)
        << set.status().ToString();
  }
  // Class 3: shard-count/body disagreement.
  {
    ShardedFixture f = ShardedFixture::Make("count_mismatch", 2);
    RewriteManifestLine(f.manifest_path, "shards", "shards 3");
    auto set = OpenShardSet(f.manifest_path);
    ASSERT_FALSE(set.ok());
    EXPECT_TRUE(set.status().IsParseError());
    EXPECT_NE(set.status().ToString().find("shard count disagreement"),
              std::string::npos)
        << set.status().ToString();
  }
  // Class 4: a member file is missing.
  {
    ShardedFixture f = ShardedFixture::Make("missing_member", 2);
    std::remove(TempPath("missing_member.shard-001.oclr").c_str());
    auto set = OpenShardSet(f.manifest_path);
    ASSERT_FALSE(set.ok());
    EXPECT_TRUE(set.status().IsIOError());
    EXPECT_NE(set.status().ToString().find("missing or unreadable"),
              std::string::npos)
        << set.status().ToString();
  }
  // Class 5: a member's bytes changed after the manifest was written —
  // the torn-shardset case the fingerprints exist to catch.
  {
    ShardedFixture f = ShardedFixture::Make("fingerprint", 2);
    const std::string member = TempPath("fingerprint.shard-000.oclr");
    std::string bytes = ReadFile(member);
    bytes[300] ^= 0x40;  // inside the fingerprinted prefix
    WriteFile(member, bytes);
    auto set = OpenShardSet(f.manifest_path);
    ASSERT_FALSE(set.ok());
    EXPECT_TRUE(set.status().IsParseError());
    EXPECT_NE(set.status().ToString().find("fingerprint mismatch"),
              std::string::npos)
        << set.status().ToString();
  }
  // Class 6: manifest and member header disagree on the shape. The member
  // is untouched (fingerprint passes) but its header no longer matches
  // what the manifest claims.
  {
    ShardedFixture f = ShardedFixture::Make("header_disagree", 2);
    RewriteManifestLine(f.manifest_path, "k", "k 9");
    auto set = OpenShardSet(f.manifest_path);
    ASSERT_FALSE(set.ok());
    EXPECT_TRUE(set.status().IsParseError());
    EXPECT_NE(set.status().ToString().find("header disagrees"),
              std::string::npos)
        << set.status().ToString();
  }
  // Class 7: shard ranges that no longer tile the user space.
  {
    ShardedFixture f = ShardedFixture::Make("tiling", 2);
    auto manifest = LoadShardSetManifest(f.manifest_path).value();
    // Bump shard 1's begin so a one-user gap opens between the ranges.
    std::string text = ReadFile(f.manifest_path);
    std::ostringstream old_line, new_line;
    old_line << "shard " << manifest.shards[1].user_begin << ' '
             << manifest.shards[1].user_end;
    new_line << "shard " << (manifest.shards[1].user_begin + 1) << ' '
             << manifest.shards[1].user_end;
    const size_t at = text.find(old_line.str());
    ASSERT_NE(at, std::string::npos);
    text.replace(at, old_line.str().size(), new_line.str());
    WriteFile(f.manifest_path, text);
    auto set = OpenShardSet(f.manifest_path);
    ASSERT_FALSE(set.ok());
    EXPECT_TRUE(set.status().IsParseError());
    EXPECT_NE(set.status().ToString().find("do not tile"), std::string::npos)
        << set.status().ToString();
  }
}

// ------------------------------------------------------- serving parity

TEST(ShardedStoreRecommenderTest, BitIdenticalToMonolithicStore) {
  ShardedFixture f = ShardedFixture::Make("parity", 4, 61, 33);
  auto mono = ModelStore::Open(f.mono_path);
  ASSERT_TRUE(mono.ok());
  auto set = OpenShardSet(f.manifest_path);
  ASSERT_TRUE(set.ok()) << set.status().ToString();

  StoreRecommender mono_rec(*mono);
  std::vector<const ModelStore*> shard_ptrs;
  for (const auto& s : set->shards) shard_ptrs.push_back(s.get());
  ShardedStoreRecommender sharded_rec(set->map, *set->items, shard_ptrs);

  ASSERT_EQ(sharded_rec.name(), mono_rec.name());
  ASSERT_EQ(sharded_rec.num_users(), mono_rec.num_users());
  ASSERT_EQ(sharded_rec.num_items(), mono_rec.num_items());

  // Same kernel over the same operand layout: scores are exactly equal.
  std::vector<double> mono_tile(mono_rec.num_items());
  std::vector<double> sharded_tile(mono_rec.num_items());
  for (uint32_t u = 0; u < mono_rec.num_users(); ++u) {
    mono_rec.ScoreBlock(u, 0, mono_rec.num_items(), mono_tile);
    sharded_rec.ScoreBlock(u, 0, mono_rec.num_items(), sharded_tile);
    for (uint32_t i = 0; i < mono_rec.num_items(); ++i) {
      ASSERT_EQ(mono_tile[i], sharded_tile[i]) << "u=" << u << " i=" << i;
      ASSERT_EQ(mono_rec.Score(u, i), sharded_rec.Score(u, i));
    }
  }

  // Served rankings: identical items AND scores across every user (and so
  // across every shard edge).
  ServeOptions options;
  options.m = 10;
  ServeWorkspace mono_ws, sharded_ws;
  mono_ws.Reserve(options.m, options.block_items);
  sharded_ws.Reserve(options.m, options.block_items);
  for (uint32_t u = 0; u < mono_rec.num_users(); ++u) {
    auto mono_top = ServeTopM(mono_rec, u, f.train.Row(u), options, &mono_ws);
    auto sharded_top =
        ServeTopM(sharded_rec, u, f.train.Row(u), options, &sharded_ws);
    ASSERT_EQ(mono_top.size(), sharded_top.size()) << "u=" << u;
    for (size_t r = 0; r < mono_top.size(); ++r) {
      ASSERT_EQ(mono_top[r].item, sharded_top[r].item) << "u=" << u;
      ASSERT_EQ(mono_top[r].score, sharded_top[r].score) << "u=" << u;
    }
  }
}

// ------------------------------------------- registry per-shard swap

TEST(ModelRegistryShardedTest, BindsShardsetAndSwapsOnlyTouchedShards) {
  ShardedFixture f = ShardedFixture::Make("registry_swap", 3);
  ModelRegistry registry;
  ASSERT_TRUE(
      registry.Load("default", f.manifest_path, f.shared_train()).ok());
  auto model = registry.Get("default");
  ASSERT_NE(model, nullptr);
  EXPECT_TRUE(model->sharded);
  EXPECT_EQ(model->num_shards(), 3u);
  EXPECT_EQ(model->num_users(), 50u);
  EXPECT_EQ(model->num_items(), 30u);
  EXPECT_EQ(model->shard_of(0), 0u);
  EXPECT_EQ(model->shard_of(49), 2u);

  // A reload with nothing changed is a no-op: no swap, no generation bump.
  const uint64_t before = registry.generation();
  ASSERT_TRUE(registry.ReloadAll().ok());
  EXPECT_EQ(registry.generation(), before);
  EXPECT_EQ(registry.Get("default"), model);

  // Rewrite shard 1's file (same shape, different factor bytes) and
  // republish the manifest: the reload must reopen exactly that member,
  // alias the other three (items + shards 0/2), and step one generation.
  auto set = OpenShardSet(f.manifest_path);
  ASSERT_TRUE(set.ok());
  const ModelStore& old_shard = *set->shards[1];
  DenseMatrix perturbed(old_shard.num_users(), old_shard.k());
  for (uint32_t r = 0; r < perturbed.rows(); ++r) {
    const auto row = old_shard.user_factors().Row(r);
    for (uint32_t c = 0; c < perturbed.cols(); ++c) {
      perturbed.At(r, c) = row[c] * 2.0;
    }
  }
  const std::string shard1_path = TempPath("registry_swap.shard-001.oclr");
  ASSERT_TRUE(
      SaveShardUserFactors(set->items->meta(), perturbed, shard1_path).ok());
  ShardSetManifest manifest = set->manifest;
  manifest.shards[1].fingerprint =
      fs::FileFingerprint(shard1_path).value();
  ASSERT_TRUE(SaveShardSetManifest(manifest, f.manifest_path).ok());

  ASSERT_TRUE(registry.ReloadAll().ok());
  EXPECT_EQ(registry.generation(), before + 1);
  auto reloaded = registry.Get("default");
  ASSERT_NE(reloaded, nullptr);
  EXPECT_NE(reloaded, model);
  // Untouched members are the SAME mappings, not re-opened copies.
  EXPECT_EQ(reloaded->items_store.get(), model->items_store.get());
  EXPECT_EQ(reloaded->shard_stores[0].get(), model->shard_stores[0].get());
  EXPECT_EQ(reloaded->shard_stores[2].get(), model->shard_stores[2].get());
  EXPECT_NE(reloaded->shard_stores[1].get(), model->shard_stores[1].get());
  // The new factors are live.
  EXPECT_EQ(reloaded->shard_stores[1]->user_factors().At(0, 0),
            model->shard_stores[1]->user_factors().At(0, 0) * 2.0);
}

TEST(ModelRegistryShardedTest, TornShardsetKeepsPreviousGenerationServing) {
  ShardedFixture f = ShardedFixture::Make("registry_torn", 2);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.manifest_path).ok());
  auto model = registry.Get("default");

  // Corrupt a member behind the manifest's back: reload must fail and the
  // bound generation must keep serving.
  const std::string member = TempPath("registry_torn.shard-000.oclr");
  std::string bytes = ReadFile(member);
  bytes[300] ^= 0x40;
  WriteFile(member, bytes);
  const uint64_t before = registry.generation();
  Status reload = registry.ReloadAll();
  ASSERT_FALSE(reload.ok());
  EXPECT_NE(reload.ToString().find("fingerprint mismatch"),
            std::string::npos);
  EXPECT_EQ(registry.generation(), before);
  EXPECT_EQ(registry.Get("default"), model);
}

// ------------------------------------------------------- daemon verbs

TEST(DaemonShardedTest, RecommendStatsAndModelsReportShards) {
  ShardedFixture f = ShardedFixture::Make("daemon_sharded", 3);
  ModelRegistry registry;
  ASSERT_TRUE(
      registry.Load("default", f.manifest_path, f.shared_train()).ok());
  RequestServer server(&registry);

  // Recommend replies carry the shard hit; user 49 lives in the last
  // shard of the 3-way split of 50 users.
  auto reply = JsonValue::Parse(
      server.HandleLine(R"({"cmd":"recommend","user":49,"m":4})"));
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(reply->Find("ok")->boolean());
  ASSERT_NE(reply->Find("shard"), nullptr);
  EXPECT_EQ(reply->Find("shard")->number(), 2.0);

  auto first = JsonValue::Parse(
      server.HandleLine(R"({"cmd":"recommend","user":0,"m":4})"));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->Find("shard")->number(), 0.0);

  // models: the binding advertises itself as sharded.
  auto models = JsonValue::Parse(server.HandleLine(R"({"cmd":"models"})"));
  ASSERT_TRUE(models.ok());
  const JsonValue& entry = models->Find("models")->array()[0];
  EXPECT_TRUE(entry.Find("sharded")->boolean());
  EXPECT_EQ(entry.Find("shards")->number(), 3.0);
  EXPECT_EQ(entry.Find("users")->number(), 50.0);
  EXPECT_EQ(entry.Find("items")->number(), 30.0);

  // stats: both stored-user recommends counted as shard hits.
  auto stats = JsonValue::Parse(server.HandleLine(R"({"cmd":"stats"})"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->Find("shard_requests")->number(), 2.0);
}

TEST(DaemonShardedTest, MonolithicRepliesCarryNoShardField) {
  ShardedFixture f = ShardedFixture::Make("daemon_mono", 2);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", f.mono_path, f.shared_train()).ok());
  RequestServer server(&registry);
  auto reply = JsonValue::Parse(
      server.HandleLine(R"({"cmd":"recommend","user":3,"m":4})"));
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(reply->Find("ok")->boolean());
  EXPECT_EQ(reply->Find("shard"), nullptr);
  auto stats = JsonValue::Parse(server.HandleLine(R"({"cmd":"stats"})"));
  EXPECT_EQ(stats->Find("shard_requests")->number(), 0.0);
}

TEST(DaemonShardedTest, UpdateRepublishesOnlyTheTouchedShard) {
  ShardedFixture f = ShardedFixture::Make("daemon_update", 3);
  ModelRegistry registry;
  ASSERT_TRUE(
      registry.Load("default", f.manifest_path, f.shared_train()).ok());
  RequestServer server(&registry);
  auto before = registry.Get("default");

  // Adds confined to users {2, 3} — both in shard 0 of the 3-way split.
  auto reply = JsonValue::Parse(server.HandleLine(
      R"({"cmd":"update","adds":[[2,1],[2,5],[3,9]]})"));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->Find("ok")->boolean())
      << reply->Find("error")->string();
  EXPECT_EQ(reply->Find("shards_touched")->number(), 1.0);
  EXPECT_EQ(reply->Find("users_refreshed")->number(), 2.0);

  // The republish swapped shard 0 and aliased everything else.
  auto after = registry.Get("default");
  ASSERT_NE(after, before);
  EXPECT_NE(after->shard_stores[0].get(), before->shard_stores[0].get());
  EXPECT_EQ(after->shard_stores[1].get(), before->shard_stores[1].get());
  EXPECT_EQ(after->shard_stores[2].get(), before->shard_stores[2].get());
  EXPECT_EQ(after->items_store.get(), before->items_store.get());

  // The touched user's factors actually moved; an untouched user's row in
  // the same shard is bit-identical.
  bool changed = false;
  const auto& old_row = before->shard_stores[0]->user_factors();
  const auto& new_row = after->shard_stores[0]->user_factors();
  for (uint32_t c = 0; c < before->k(); ++c) {
    if (old_row.At(2, c) != new_row.At(2, c)) changed = true;
    ASSERT_EQ(old_row.At(0, c), new_row.At(0, c));
  }
  EXPECT_TRUE(changed);

  // The new set is durable and consistent: a fresh open succeeds.
  auto reopened = OpenShardSet(f.manifest_path);
  EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();

  // Growth is refused with a pointer at the offline reshard path.
  auto grow = JsonValue::Parse(server.HandleLine(
      R"({"cmd":"update","adds":[[50,1]]})"));
  ASSERT_TRUE(grow.ok());
  EXPECT_FALSE(grow->Find("ok")->boolean());
  EXPECT_NE(grow->Find("error")->string().find("reshard offline"),
            std::string::npos);
}

}  // namespace
}  // namespace ocular
