# Smoke test of the serving daemon: synth -> train -> convert to binary v2
# -> serve a scripted JSON session through ocular_served (recommend, stats,
# hot-reload, recommend again) and check the replies. Run by ctest as:
#   cmake -DOCULAR_CLI=... -DOCULAR_SERVED=... -DWORK_DIR=... -P served_smoke.cmake

file(MAKE_DIRECTORY ${WORK_DIR})
set(DATA ${WORK_DIR}/served.tsv)
set(MODEL_TXT ${WORK_DIR}/served.model)
set(MODEL_BIN ${WORK_DIR}/served.oclr)
set(SESSION ${WORK_DIR}/session.jsonl)

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    list(JOIN ARGV " " cmdline)
    message(FATAL_ERROR "served smoke step failed (exit ${rc}): ${cmdline}")
  endif()
endfunction()

run_step(${OCULAR_CLI} synth --dataset=b2b --scale=0.02 --seed=7 --output=${DATA})
run_step(${OCULAR_CLI} train --input=${DATA} --model=${MODEL_TXT} --k=8 --lambda=0.5 --sweeps=4)
run_step(${OCULAR_CLI} convert --in=${MODEL_TXT} --out=${MODEL_BIN})

# One scripted session: the same recommend before and after a hot reload
# must produce byte-identical reply lines (same file on disk), stats must
# report the traffic, and a malformed line must not kill the loop.
file(WRITE ${SESSION} "{\"cmd\":\"recommend\",\"user\":3,\"m\":5}
{\"cmd\":\"models\"}
this line is not json
{\"cmd\":\"reload\"}
{\"cmd\":\"recommend\",\"user\":3,\"m\":5}
{\"cmd\":\"stats\"}
{\"cmd\":\"quit\"}
")

execute_process(
  COMMAND ${OCULAR_SERVED} --models=default=${MODEL_BIN} --datasets=default=${DATA}
  INPUT_FILE ${SESSION}
  OUTPUT_VARIABLE REPLIES
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ocular_served exited ${rc}")
endif()

string(REPLACE "\n" ";" REPLY_LINES "${REPLIES}")
list(LENGTH REPLY_LINES NUM_LINES)
if(NUM_LINES LESS 7)
  message(FATAL_ERROR "expected 7 reply lines, got ${NUM_LINES}: ${REPLIES}")
endif()

list(GET REPLY_LINES 0 RECOMMEND_BEFORE)
list(GET REPLY_LINES 1 MODELS_REPLY)
list(GET REPLY_LINES 2 BAD_REPLY)
list(GET REPLY_LINES 3 RELOAD_REPLY)
list(GET REPLY_LINES 4 RECOMMEND_AFTER)
list(GET REPLY_LINES 5 STATS_REPLY)

foreach(line IN ITEMS "${RECOMMEND_BEFORE}" "${MODELS_REPLY}" "${RELOAD_REPLY}" "${RECOMMEND_AFTER}" "${STATS_REPLY}")
  if(NOT line MATCHES "\"ok\":true")
    message(FATAL_ERROR "expected ok:true reply, got: ${line}")
  endif()
endforeach()
if(NOT RECOMMEND_BEFORE MATCHES "\"items\":\\[\\{\"item\":")
  message(FATAL_ERROR "recommend reply carries no items: ${RECOMMEND_BEFORE}")
endif()
if(NOT BAD_REPLY MATCHES "\"ok\":false")
  message(FATAL_ERROR "malformed request must answer ok:false: ${BAD_REPLY}")
endif()
if(NOT RELOAD_REPLY MATCHES "\"reloaded\":1")
  message(FATAL_ERROR "reload must report one model: ${RELOAD_REPLY}")
endif()
if(NOT RECOMMEND_BEFORE STREQUAL RECOMMEND_AFTER)
  message(FATAL_ERROR "top-M changed across a same-file hot reload:\n${RECOMMEND_BEFORE}\n${RECOMMEND_AFTER}")
endif()
if(NOT STATS_REPLY MATCHES "\"requests_served\":5")
  message(FATAL_ERROR "stats must count the 5 prior requests: ${STATS_REPLY}")
endif()
if(NOT STATS_REPLY MATCHES "\"reloads\":1")
  message(FATAL_ERROR "stats must count the reload: ${STATS_REPLY}")
endif()

# The daemon must agree with the CLI `recommend` path on the same model,
# dataset and user — same items in the same order (this is the guard
# against exclusion/id-mapping drift between the two loaders).
execute_process(
  COMMAND ${OCULAR_CLI} recommend --model=${MODEL_BIN} --input=${DATA} --user=3 --m=5 --json
  OUTPUT_VARIABLE CLI_JSON
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cli recommend exited ${rc}")
endif()
string(REGEX MATCHALL "\"item\":[0-9]+" DAEMON_ITEMS "${RECOMMEND_BEFORE}")
string(REGEX MATCHALL "\"item\":[0-9]+" CLI_ITEMS "${CLI_JSON}")
if(NOT DAEMON_ITEMS STREQUAL CLI_ITEMS)
  message(FATAL_ERROR "daemon and CLI recommend disagree:\n  daemon: ${DAEMON_ITEMS}\n  cli:    ${CLI_ITEMS}")
endif()
