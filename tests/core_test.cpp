// Unit tests for src/core: the OCuLaR model, objective, trainer
// (projected gradient + Armijo), co-cluster extraction, explanations.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "core/coclusters.h"
#include "core/explain.h"
#include "core/ocular_model.h"
#include "core/ocular_recommender.h"
#include "core/ocular_trainer.h"
#include "data/synthetic.h"

namespace ocular {
namespace {

// ----------------------------------------------------------------- Model

TEST(OcularModelTest, ProbabilityFormula) {
  DenseMatrix fu(1, 2), fi(1, 2);
  fu.At(0, 0) = 1.0;
  fu.At(0, 1) = 2.0;
  fi.At(0, 0) = 0.5;
  fi.At(0, 1) = 0.25;
  OcularModel model(std::move(fu), std::move(fi));
  EXPECT_DOUBLE_EQ(model.Affinity(0, 0), 1.0);
  EXPECT_NEAR(model.Probability(0, 0), 1.0 - std::exp(-1.0), 1e-12);
  auto contrib = model.ClusterContributions(0, 0);
  ASSERT_EQ(contrib.size(), 2u);
  EXPECT_DOUBLE_EQ(contrib[0], 0.5);
  EXPECT_DOUBLE_EQ(contrib[1], 0.5);
}

TEST(OcularModelTest, ZeroAffinityMeansZeroProbability) {
  OcularModel model(DenseMatrix(2, 3, 0.0), DenseMatrix(2, 3, 0.0));
  EXPECT_DOUBLE_EQ(model.Probability(0, 0), 0.0);
}

TEST(OcularModelTest, ValidateCatchesNegativeFactors) {
  DenseMatrix fu(1, 1, 0.5), fi(1, 1, 0.5);
  OcularModel good(fu, fi);
  EXPECT_TRUE(good.Validate().ok());
  fu.At(0, 0) = -0.1;
  OcularModel bad(fu, fi);
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(OcularModelTest, MemoryAccounting) {
  OcularModel model(DenseMatrix(100, 10), DenseMatrix(50, 10));
  EXPECT_EQ(model.MemoryBytes(), (100 + 50) * 10 * sizeof(double));
}

// ------------------------------------------------------------- Objective

/// Naive O(n_u · n_i · K) objective, the definition in eq. (2)+(4).
double NaiveObjective(const OcularModel& model, const CsrMatrix& r,
                      double lambda, const std::vector<double>& w) {
  double q = 0.0;
  for (uint32_t u = 0; u < r.num_rows(); ++u) {
    for (uint32_t i = 0; i < r.num_cols(); ++i) {
      const double dot = model.Affinity(u, i);
      if (r.HasEntry(u, i)) {
        const double weight = w.empty() ? 1.0 : w[u];
        q -= weight * std::log(std::max(1.0 - std::exp(-dot), 1e-12));
      } else {
        q += dot;
      }
    }
  }
  q += lambda * (model.user_factors().SquaredFrobeniusNorm() +
                 model.item_factors().SquaredFrobeniusNorm());
  return q;
}

TEST(ObjectiveQTest, ComplementTrickMatchesNaive) {
  Rng rng(5);
  CooBuilder coo;
  for (int e = 0; e < 120; ++e) {
    coo.Add(static_cast<uint32_t>(rng.UniformInt(uint64_t{15})),
            static_cast<uint32_t>(rng.UniformInt(uint64_t{12})));
  }
  CsrMatrix r = CsrMatrix::FromCoo(coo.Finalize(15, 12).value());
  DenseMatrix fu(15, 4), fi(12, 4);
  fu.FillUniform(&rng, 0.0, 1.0);
  fi.FillUniform(&rng, 0.0, 1.0);
  OcularModel model(std::move(fu), std::move(fi));

  const double fast = ObjectiveQ(model, r, 0.7);
  const double naive = NaiveObjective(model, r, 0.7, {});
  EXPECT_NEAR(fast, naive, 1e-8 * std::abs(naive));

  // With R-OCuLaR weights too.
  std::vector<double> w(15);
  for (auto& x : w) x = rng.Uniform(0.5, 3.0);
  EXPECT_NEAR(ObjectiveQ(model, r, 0.7, w), NaiveObjective(model, r, 0.7, w),
              1e-8 * std::abs(naive));
}

// ---------------------------------------------------------------- Config

TEST(OcularConfigTest, ValidatesRanges) {
  OcularConfig c;
  EXPECT_TRUE(c.Validate().ok());
  c.k = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = OcularConfig{};
  c.lambda = -1;
  EXPECT_FALSE(c.Validate().ok());
  c = OcularConfig{};
  c.armijo_beta = 1.0;
  EXPECT_FALSE(c.Validate().ok());
  c = OcularConfig{};
  c.armijo_sigma = 0.0;
  EXPECT_FALSE(c.Validate().ok());
  c = OcularConfig{};
  c.initial_step = 0.0;
  EXPECT_FALSE(c.Validate().ok());
  c = OcularConfig{};
  c.max_sweeps = 0;
  EXPECT_FALSE(c.Validate().ok());
}

// --------------------------------------------------- ProjectedGradientStep

TEST(ProjectedGradientStepTest, NeverLeavesNonNegativeOrthant) {
  Rng rng(7);
  OcularConfig config;
  config.k = 5;
  config.lambda = 1.0;
  DenseMatrix other(20, 5);
  other.FillUniform(&rng, 0.0, 1.0);
  auto sums = other.ColumnSums();
  std::vector<uint32_t> neighbors{0, 3, 7, 11};
  internal::BlockWorkspace ws;
  ws.Reserve(config.k, neighbors.size());
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> f(5);
    for (auto& v : f) v = rng.Uniform(0.0, 2.0);
    ws.Invalidate();
    internal::ProjectedGradientStep(f, neighbors, other, sums, config.lambda,
                                    1.0, {}, config, /*frozen_coord=*/-1, &ws);
    for (double v : f) EXPECT_GE(v, 0.0);
  }
}

TEST(ProjectedGradientStepTest, DecreasesBlockObjective) {
  Rng rng(9);
  OcularConfig config;
  config.k = 4;
  config.lambda = 0.5;
  DenseMatrix other(30, 4);
  other.FillUniform(&rng, 0.0, 1.0);
  auto sums = other.ColumnSums();
  std::vector<uint32_t> neighbors{1, 5, 9, 13, 21};

  // Complement for the objective evaluation.
  std::vector<double> complement(sums.begin(), sums.end());
  for (uint32_t n : neighbors) {
    auto row = other.Row(n);
    for (size_t c = 0; c < 4; ++c) complement[c] -= row[c];
  }

  internal::BlockWorkspace ws;
  ws.Reserve(config.k, neighbors.size());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> f(4);
    for (auto& v : f) v = rng.Uniform(0.0, 1.5);
    const double before = internal::BlockObjective(
        f, neighbors, other, complement, config.lambda, 1.0, {});
    ws.Invalidate();
    const internal::BlockStepResult res = internal::ProjectedGradientStep(
        f, neighbors, other, sums, config.lambda, 1.0, {}, config,
        /*frozen_coord=*/-1, &ws);
    const double after = internal::BlockObjective(
        f, neighbors, other, complement, config.lambda, 1.0, {});
    EXPECT_LE(after, before + 1e-10);
    EXPECT_GE(res.backtracks, 0) << "line search should succeed here";
    // The fused objective the step reports must agree with the oracle.
    EXPECT_NEAR(res.objective, after, 1e-9 * std::max(1.0, std::abs(after)));
  }
}

TEST(ProjectedGradientStepTest, FixedPointAtOptimum) {
  // One user, one item, K=1, r=11 positive. The stationary point of
  // Q(x) = -log(1-e^{-x*y}) + l(x^2+y^2) in x for fixed y solves
  // y e^{-xy}/(1-e^{-xy}) = 2 l x. Iterating alternating steps should
  // converge; then one more step must (approximately) not move.
  OcularConfig config;
  config.k = 1;
  config.lambda = 0.3;
  DenseMatrix other(1, 1);
  other.At(0, 0) = 1.0;
  auto sums = other.ColumnSums();
  std::vector<uint32_t> neighbors{0};
  std::vector<double> f{0.8};
  // One workspace, never invalidated: iterating on the same block exercises
  // the warm dot-cache path (the block_steps > 1 fast path).
  internal::BlockWorkspace ws;
  ws.Reserve(config.k, neighbors.size());
  for (int it = 0; it < 200; ++it) {
    internal::ProjectedGradientStep(f, neighbors, other, sums, config.lambda,
                                    1.0, {}, config, /*frozen_coord=*/-1, &ws);
  }
  const double x = f[0];
  // Verify stationarity: gradient ≈ 0 at the solution.
  const double grad =
      -std::exp(-x) / (1.0 - std::exp(-x)) + 2.0 * config.lambda * x;
  EXPECT_NEAR(grad, 0.0, 1e-4);
}

// ---------------------------------------------------------------- Trainer

TEST(OcularTrainerTest, ObjectiveDecreasesMonotonically) {
  Dataset toy = MakePaperToyDataset();
  OcularConfig config;
  config.k = 3;
  config.lambda = 0.05;
  config.max_sweeps = 40;
  config.seed = 3;
  OcularTrainer trainer(config);
  auto fit = trainer.Fit(toy.interactions()).value();
  ASSERT_GE(fit.trace.size(), 2u);
  for (size_t s = 1; s < fit.trace.size(); ++s) {
    EXPECT_LE(fit.trace[s].objective,
              fit.trace[s - 1].objective + 1e-6 *
                  std::abs(fit.trace[s - 1].objective))
        << "sweep " << s;
  }
  EXPECT_TRUE(fit.model.Validate().ok());
}

TEST(OcularTrainerTest, RecoversToyRecommendation) {
  // The headline claim of Figures 1/3: item 4 is the top recommendation
  // for user 6, with high confidence, because user 6 shares two
  // co-clusters with item 4.
  Dataset toy = MakePaperToyDataset();
  OcularConfig config;
  config.k = 3;
  config.lambda = 0.05;
  config.max_sweeps = 150;
  config.tolerance = 1e-7;
  config.seed = 1;
  OcularRecommender rec(config);
  ASSERT_TRUE(rec.Fit(toy.interactions()).ok());
  auto top = rec.Recommend(6, 1, toy.interactions());
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].item, 4u);
  EXPECT_GT(top[0].score, 0.5);
  // Known negatives stay unlikely: user 6 x item 0 / item 11.
  EXPECT_LT(rec.Score(6, 0), 0.3);
  EXPECT_LT(rec.Score(6, 11), 0.3);
  // Known positives are explained well.
  EXPECT_GT(rec.Score(6, 2), 0.5);
}

TEST(OcularTrainerTest, ConvergesAndStops) {
  Dataset toy = MakePaperToyDataset();
  OcularConfig config;
  config.k = 3;
  config.lambda = 0.1;
  config.max_sweeps = 500;
  config.tolerance = 1e-5;
  OcularTrainer trainer(config);
  auto fit = trainer.Fit(toy.interactions()).value();
  EXPECT_TRUE(fit.converged);
  EXPECT_LT(fit.sweeps_run, 500u);
}

TEST(OcularTrainerTest, RejectsEmptyMatrixAndShapeMismatch) {
  OcularConfig config;
  config.k = 2;
  OcularTrainer trainer(config);
  CsrMatrix empty = CsrMatrix::FromPairs({}, 5, 5).value();
  EXPECT_TRUE(trainer.Fit(empty).status().IsInvalidArgument());

  CsrMatrix m = CsrMatrix::FromPairs({{0, 0}}, 2, 2).value();
  OcularModel wrong(DenseMatrix(3, 2), DenseMatrix(2, 2));
  EXPECT_TRUE(trainer.FitFrom(m, wrong).status().IsInvalidArgument());
  OcularModel wrong_k(DenseMatrix(2, 5), DenseMatrix(2, 5));
  EXPECT_TRUE(trainer.FitFrom(m, wrong_k).status().IsInvalidArgument());
}

TEST(OcularTrainerTest, DeterministicGivenSeed) {
  Dataset toy = MakePaperToyDataset();
  OcularConfig config;
  config.k = 3;
  config.seed = 99;
  config.max_sweeps = 10;
  OcularTrainer trainer(config);
  auto a = trainer.Fit(toy.interactions()).value();
  auto b = trainer.Fit(toy.interactions()).value();
  EXPECT_EQ(a.model.user_factors(), b.model.user_factors());
  EXPECT_EQ(a.model.item_factors(), b.model.item_factors());
}

TEST(OcularTrainerTest, RelativeWeightsFormula) {
  CsrMatrix m =
      CsrMatrix::FromPairs({{0, 0}, {0, 1}, {1, 0}}, 3, 10).value();
  OcularConfig config;
  config.variant = OcularVariant::kRelative;
  OcularTrainer trainer(config);
  auto w = trainer.UserWeights(m);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 8.0 / 2.0);  // 8 unknowns / 2 positives
  EXPECT_DOUBLE_EQ(w[1], 9.0 / 1.0);
  EXPECT_DOUBLE_EQ(w[2], 1.0);  // degenerate user: unused default
}

TEST(OcularTrainerTest, ROcularAlsoSolvesToy) {
  Dataset toy = MakePaperToyDataset();
  OcularConfig config;
  config.k = 3;
  config.lambda = 0.05;
  config.variant = OcularVariant::kRelative;
  config.max_sweeps = 150;
  config.seed = 2;
  OcularRecommender rec(config);
  ASSERT_TRUE(rec.Fit(toy.interactions()).ok());
  EXPECT_EQ(rec.name(), "R-OCuLaR");
  auto top = rec.Recommend(6, 1, toy.interactions());
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].item, 4u);
}

TEST(OcularTrainerTest, StrongRegularizationShrinksFactors) {
  Dataset toy = MakePaperToyDataset();
  OcularConfig weak;
  weak.k = 3;
  weak.lambda = 0.01;
  weak.max_sweeps = 60;
  OcularConfig strong = weak;
  strong.lambda = 50.0;
  auto fit_weak = OcularTrainer(weak).Fit(toy.interactions()).value();
  auto fit_strong = OcularTrainer(strong).Fit(toy.interactions()).value();
  EXPECT_LT(fit_strong.model.user_factors().SquaredFrobeniusNorm(),
            fit_weak.model.user_factors().SquaredFrobeniusNorm());
}

// -------------------------------------------------------------- Clusters

OcularModel HandModel() {
  // 4 users, 3 items, K = 2. Cluster 0 = {u0,u1} x {i0}; cluster 1 =
  // {u2,u3} x {i1,i2}. Strengths chosen above/below the 0.6 threshold.
  DenseMatrix fu(4, 2, 0.0), fi(3, 2, 0.0);
  fu.At(0, 0) = 1.0;
  fu.At(1, 0) = 0.9;
  fu.At(2, 1) = 1.2;
  fu.At(3, 1) = 0.8;
  fu.At(0, 1) = 0.1;  // below threshold: not a member
  fi.At(0, 0) = 1.1;
  fi.At(1, 1) = 1.0;
  fi.At(2, 1) = 0.7;
  return OcularModel(std::move(fu), std::move(fi));
}

TEST(CoClusterTest, ExtractsThresholdedMembers) {
  auto clusters = ExtractCoClusters(HandModel());
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].users, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(clusters[0].items, (std::vector<uint32_t>{0}));
  EXPECT_EQ(clusters[1].users, (std::vector<uint32_t>{2, 3}));
  EXPECT_EQ(clusters[1].items, (std::vector<uint32_t>{1, 2}));
  // Strengths sorted descending.
  EXPECT_GE(clusters[1].user_strengths[0], clusters[1].user_strengths[1]);
}

TEST(CoClusterTest, MinSizeFilters) {
  CoClusterOptions opts;
  opts.min_users = 3;
  auto clusters = ExtractCoClusters(HandModel(), opts);
  EXPECT_TRUE(clusters.empty());
}

TEST(CoClusterTest, DensityAgainstInteractions) {
  auto clusters = ExtractCoClusters(HandModel());
  // Cluster 1 block {u2,u3} x {i1,i2}: fill 3 of 4 cells.
  CsrMatrix r =
      CsrMatrix::FromPairs({{2, 1}, {2, 2}, {3, 1}}, 4, 3).value();
  EXPECT_DOUBLE_EQ(CoClusterDensity(clusters[1], r), 0.75);
  auto stats = ComputeCoClusterStats(clusters, r);
  EXPECT_EQ(stats.num_clusters, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_items, 1.5);
  EXPECT_DOUBLE_EQ(stats.mean_users, 2.0);
}

TEST(CoClusterTest, OverlapIsRepresentable) {
  // A user strong in both dimensions appears in both clusters.
  DenseMatrix fu(1, 2, 1.0), fi(2, 2, 0.0);
  fi.At(0, 0) = 1.0;
  fi.At(1, 1) = 1.0;
  OcularModel model(std::move(fu), std::move(fi));
  auto clusters = ExtractCoClusters(model);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].users, clusters[1].users);
}

// ------------------------------------------------------------ Explanation

TEST(ExplainTest, ToyExplanationNamesBothCoClusters) {
  Dataset toy = MakePaperToyDataset();
  OcularConfig config;
  config.k = 3;
  config.lambda = 0.05;
  config.max_sweeps = 150;
  config.seed = 1;
  OcularRecommender rec(config);
  ASSERT_TRUE(rec.Fit(toy.interactions()).ok());
  auto expl =
      ExplainRecommendation(rec.model(), toy.interactions(), 6, 4).value();
  EXPECT_EQ(expl.user, 6u);
  EXPECT_EQ(expl.item, 4u);
  EXPECT_GT(expl.confidence, 0.5);
  // User 6 sits in two co-clusters that contain item 4 -> two clauses
  // (Section IV-C's worked example).
  ASSERT_GE(expl.clauses.size(), 2u);
  // Each clause carries evidence: peers who bought item 4.
  for (const auto& clause : expl.clauses) {
    EXPECT_FALSE(clause.supporting_users.empty());
    EXPECT_GT(clause.contribution, 0.0);
  }
  // Users 4/5 (cluster of items 1-4) and 7/8/9 (items 4-9) must appear as
  // peers somewhere in the explanation.
  std::set<uint32_t> peers;
  for (const auto& clause : expl.clauses) {
    peers.insert(clause.supporting_users.begin(),
                 clause.supporting_users.end());
  }
  const bool has_45 = peers.count(4) || peers.count(5);
  const bool has_789 = peers.count(7) || peers.count(8) || peers.count(9);
  EXPECT_TRUE(has_45);
  EXPECT_TRUE(has_789);

  const std::string text = RenderExplanationText(expl, toy);
  EXPECT_NE(text.find("Item 4 is recommended to Client 6"),
            std::string::npos);
  EXPECT_NE(text.find("also bought"), std::string::npos);
}

TEST(ExplainTest, OutOfRangeIdsRejected) {
  OcularModel model(DenseMatrix(2, 1, 0.5), DenseMatrix(2, 1, 0.5));
  CsrMatrix r = CsrMatrix::FromPairs({{0, 0}}, 2, 2).value();
  EXPECT_TRUE(
      ExplainRecommendation(model, r, 5, 0).status().IsInvalidArgument());
  EXPECT_TRUE(
      ExplainRecommendation(model, r, 0, 5).status().IsInvalidArgument());
}

TEST(ExplainTest, NoSharedClusterYieldsEmptyClauses) {
  DenseMatrix fu(1, 2, 0.0), fi(1, 2, 0.0);
  fu.At(0, 0) = 1.0;
  fi.At(0, 1) = 1.0;  // orthogonal memberships
  OcularModel model(std::move(fu), std::move(fi));
  CsrMatrix r = CsrMatrix::FromPairs({}, 1, 1).value();
  auto expl = ExplainRecommendation(model, r, 0, 0).value();
  EXPECT_TRUE(expl.clauses.empty());
  EXPECT_DOUBLE_EQ(expl.confidence, 0.0);
  Dataset ds("x", r);
  const std::string text = RenderExplanationText(expl, ds);
  EXPECT_NE(text.find("low support"), std::string::npos);
}

// ------------------------------------------------------------ Recommender

TEST(OcularRecommenderTest, InterfaceBasics) {
  Dataset toy = MakePaperToyDataset();
  OcularConfig config;
  config.k = 3;
  config.max_sweeps = 30;
  OcularRecommender rec(config);
  EXPECT_EQ(rec.name(), "OCuLaR");
  EXPECT_FALSE(rec.fitted());
  ASSERT_TRUE(rec.Fit(toy.interactions()).ok());
  EXPECT_TRUE(rec.fitted());
  EXPECT_EQ(rec.num_users(), 12u);
  EXPECT_EQ(rec.num_items(), 12u);
  EXPECT_FALSE(rec.trace().empty());
  // Recommend excludes training positives.
  auto top = rec.Recommend(6, 12, toy.interactions());
  for (const auto& si : top) {
    EXPECT_FALSE(toy.interactions().HasEntry(6, si.item));
  }
}

}  // namespace
}  // namespace ocular
