#ifndef OCULAR_CORE_OCULAR_RECOMMENDER_H_
#define OCULAR_CORE_OCULAR_RECOMMENDER_H_

#include <cmath>
#include <string>

#include "core/ocular_trainer.h"
#include "eval/recommender.h"
#include "sparse/linalg.h"

namespace ocular {

namespace internal {

/// Shared blocked scoring kernel of the OCuLaR-family recommenders:
/// out[j] = P[r = 1] = 1 - e^{-<f_u, f_{item_begin+j}>} computed as a tiled
/// user-row x Vᵀ-block product (see vec::AffinityBlock) followed by the
/// elementwise probability map. Bit-compatible with
/// OcularModel::Probability.
inline void OcularScoreBlock(const OcularModel& model,
                             const DenseMatrix& item_factors_t, uint32_t u,
                             uint32_t item_begin, std::span<double> out) {
  vec::AffinityBlock(model.user_factors().Row(u), item_factors_t, item_begin,
                     out);
  for (double& s : out) s = -std::expm1(-s);
}

}  // namespace internal

/// Recommender-interface adapter around OcularTrainer + OcularModel.
/// This is the main user-facing entry point of the library:
///
///   OcularConfig config;
///   config.k = 100; config.lambda = 30.0;
///   OcularRecommender rec(config);
///   OCULAR_RETURN_IF_ERROR(rec.Fit(train));
///   auto top = rec.Recommend(user, 50, train);
///   auto why = ExplainRecommendation(rec.model(), train, user, top[0].item);
class OcularRecommender : public Recommender {
 public:
  explicit OcularRecommender(OcularConfig config)
      : trainer_(std::move(config)) {}

  std::string name() const override {
    return trainer_.config().variant == OcularVariant::kRelative
               ? "R-OCuLaR"
               : "OCuLaR";
  }

  Status Fit(const CsrMatrix& interactions) override {
    OCULAR_ASSIGN_OR_RETURN(fit_, trainer_.Fit(interactions));
    // Vᵀ layout for the blocked serving kernel, rebuilt once per fit.
    item_factors_t_ = TransposedCopy(fit_.model.item_factors());
    fitted_ = true;
    return Status::OK();
  }

  double Score(uint32_t u, uint32_t i) const override {
    return fit_.model.Probability(u, i);
  }

  void ScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                  std::span<double> out) const override {
    (void)item_end;
    internal::OcularScoreBlock(fit_.model, item_factors_t_, u, item_begin,
                               out);
  }

  /// Raw ranking kernel: the affinity <f_u, f_i> (the probability map
  /// 1 - e^{-x} is strictly increasing, applied by ScoreFromRaw to the
  /// survivors only).
  void RawScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                     std::span<double> out) const override {
    (void)item_end;
    vec::AffinityBlock(fit_.model.user_factors().Row(u), item_factors_t_,
                       item_begin, out);
  }

  double ScoreFromRaw(double raw) const override { return -std::expm1(-raw); }

  uint32_t num_users() const override { return fit_.model.num_users(); }
  uint32_t num_items() const override { return fit_.model.num_items(); }

  /// The fitted model (co-clusters, explanations). Valid after Fit().
  const OcularModel& model() const { return fit_.model; }
  /// Convergence trace of the last Fit().
  const std::vector<SweepStats>& trace() const { return fit_.trace; }
  bool converged() const { return fit_.converged; }
  bool fitted() const { return fitted_; }
  const OcularConfig& config() const { return trainer_.config(); }

 private:
  OcularTrainer trainer_;
  OcularFitResult fit_;
  DenseMatrix item_factors_t_;  // K x n_i, serving layout
  bool fitted_ = false;
};

/// Recommender view over an already-fitted OcularModel — typically one
/// loaded from disk via LoadModel — giving model-only consumers (the CLI
/// `recommend` path, bulk re-serving after a model refresh) the same
/// blocked serving kernels as OcularRecommender without retraining. Does
/// not own the model; the caller keeps it alive.
class OcularModelRecommender : public Recommender {
 public:
  explicit OcularModelRecommender(const OcularModel& model)
      : model_(&model),
        item_factors_t_(TransposedCopy(model.item_factors())) {}

  std::string name() const override { return "OCuLaR"; }

  Status Fit(const CsrMatrix& /*interactions*/) override {
    return Status::FailedPrecondition(
        "OcularModelRecommender wraps a pre-fitted model");
  }

  double Score(uint32_t u, uint32_t i) const override {
    return model_->Probability(u, i);
  }

  void ScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                  std::span<double> out) const override {
    (void)item_end;
    internal::OcularScoreBlock(*model_, item_factors_t_, u, item_begin, out);
  }

  void RawScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                     std::span<double> out) const override {
    (void)item_end;
    vec::AffinityBlock(model_->user_factors().Row(u), item_factors_t_,
                       item_begin, out);
  }

  double ScoreFromRaw(double raw) const override { return -std::expm1(-raw); }

  uint32_t num_users() const override { return model_->num_users(); }
  uint32_t num_items() const override { return model_->num_items(); }

 private:
  const OcularModel* model_;
  DenseMatrix item_factors_t_;  // K x n_i, serving layout
};

}  // namespace ocular

#endif  // OCULAR_CORE_OCULAR_RECOMMENDER_H_
