#ifndef OCULAR_CORE_OCULAR_RECOMMENDER_H_
#define OCULAR_CORE_OCULAR_RECOMMENDER_H_

#include <string>

#include "core/ocular_trainer.h"
#include "eval/recommender.h"

namespace ocular {

/// Recommender-interface adapter around OcularTrainer + OcularModel.
/// This is the main user-facing entry point of the library:
///
///   OcularConfig config;
///   config.k = 100; config.lambda = 30.0;
///   OcularRecommender rec(config);
///   OCULAR_RETURN_IF_ERROR(rec.Fit(train));
///   auto top = rec.Recommend(user, 50, train);
///   auto why = ExplainRecommendation(rec.model(), train, user, top[0].item);
class OcularRecommender : public Recommender {
 public:
  explicit OcularRecommender(OcularConfig config)
      : trainer_(std::move(config)) {}

  std::string name() const override {
    return trainer_.config().variant == OcularVariant::kRelative
               ? "R-OCuLaR"
               : "OCuLaR";
  }

  Status Fit(const CsrMatrix& interactions) override {
    OCULAR_ASSIGN_OR_RETURN(fit_, trainer_.Fit(interactions));
    fitted_ = true;
    return Status::OK();
  }

  double Score(uint32_t u, uint32_t i) const override {
    return fit_.model.Probability(u, i);
  }

  uint32_t num_users() const override { return fit_.model.num_users(); }
  uint32_t num_items() const override { return fit_.model.num_items(); }

  /// The fitted model (co-clusters, explanations). Valid after Fit().
  const OcularModel& model() const { return fit_.model; }
  /// Convergence trace of the last Fit().
  const std::vector<SweepStats>& trace() const { return fit_.trace; }
  bool converged() const { return fit_.converged; }
  bool fitted() const { return fitted_; }
  const OcularConfig& config() const { return trainer_.config(); }

 private:
  OcularTrainer trainer_;
  OcularFitResult fit_;
  bool fitted_ = false;
};

}  // namespace ocular

#endif  // OCULAR_CORE_OCULAR_RECOMMENDER_H_
