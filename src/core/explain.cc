#include "core/explain.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <sstream>

#include "common/json.h"
#include "common/strings.h"

namespace ocular {

Result<Explanation> ExplainRecommendation(const OcularModel& model,
                                          const CsrMatrix& interactions,
                                          uint32_t user, uint32_t item,
                                          const ExplainOptions& options) {
  if (user >= model.num_users()) {
    return Status::InvalidArgument("user id out of range: " +
                                   std::to_string(user));
  }
  if (item >= model.num_items()) {
    return Status::InvalidArgument("item id out of range: " +
                                   std::to_string(item));
  }
  Explanation out;
  out.user = user;
  out.item = item;
  out.confidence = model.Probability(user, item);

  const std::vector<double> contributions =
      model.ClusterContributions(user, item);
  const double total = std::accumulate(contributions.begin(),
                                       contributions.end(), 0.0);
  if (total <= 0.0) return out;  // nothing to explain — no shared cluster

  // Rank clusters by contribution.
  std::vector<uint32_t> order(contributions.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return contributions[a] > contributions[b];
  });

  const double threshold = options.cocluster_options.threshold;
  for (uint32_t c : order) {
    if (contributions[c] < options.min_contribution_fraction * total) break;

    ExplanationClause clause;
    clause.cluster_index = c;
    clause.contribution = contributions[c];

    // Supporting items: the user's training positives whose item factor is
    // strong in cluster c, strongest first.
    std::vector<std::pair<double, uint32_t>> items;
    for (uint32_t i : interactions.Row(user)) {
      const double s = model.item_factors().At(i, c);
      if (s > threshold && i != item) items.emplace_back(s, i);
    }
    std::sort(items.rbegin(), items.rend());
    for (const auto& [s, i] : items) {
      if (clause.supporting_items.size() >= options.max_evidence) break;
      clause.supporting_items.push_back(i);
    }

    // Supporting peers: users strong in cluster c that actually bought the
    // recommended item. Scan cluster-member users via the factor column.
    std::vector<std::pair<double, uint32_t>> peers;
    for (uint32_t u2 = 0; u2 < model.num_users(); ++u2) {
      if (u2 == user) continue;
      const double s = model.user_factors().At(u2, c);
      if (s > threshold && interactions.HasEntry(u2, item)) {
        peers.emplace_back(s, u2);
      }
    }
    std::sort(peers.rbegin(), peers.rend());
    for (const auto& [s, u2] : peers) {
      if (clause.supporting_users.size() >= options.max_evidence) break;
      clause.supporting_users.push_back(u2);
    }

    out.clauses.push_back(std::move(clause));
  }
  return out;
}

namespace {

std::string JoinLabels(const std::vector<uint32_t>& ids,
                       const std::function<std::string(uint32_t)>& label) {
  std::vector<std::string> parts;
  parts.reserve(ids.size());
  for (uint32_t id : ids) parts.push_back(label(id));
  return Join(parts, ", ");
}

}  // namespace

std::string RenderExplanationText(const Explanation& explanation,
                                  const Dataset& dataset) {
  std::ostringstream out;
  out << dataset.ItemLabel(explanation.item) << " is recommended to "
      << dataset.UserLabel(explanation.user) << " with confidence "
      << FormatDouble(explanation.confidence, 2) << " because:\n";
  if (explanation.clauses.empty()) {
    out << "  (no shared co-cluster; this recommendation has low support)\n";
    return out.str();
  }
  auto user_label = [&dataset](uint32_t u) { return dataset.UserLabel(u); };
  auto item_label = [&dataset](uint32_t i) { return dataset.ItemLabel(i); };
  int clause_no = 0;
  for (const auto& clause : explanation.clauses) {
    ++clause_no;
    out << "  " << clause_no << ". [co-cluster " << clause.cluster_index
        << ", contribution " << FormatDouble(clause.contribution, 2) << "] ";
    if (!clause.supporting_items.empty()) {
      out << dataset.UserLabel(explanation.user) << " has purchased "
          << JoinLabels(clause.supporting_items, item_label) << ". ";
    }
    if (!clause.supporting_users.empty()) {
      out << "Clients with similar purchase history (e.g. "
          << JoinLabels(clause.supporting_users, user_label)
          << ") also bought " << dataset.ItemLabel(explanation.item) << ".";
    } else if (clause.supporting_items.empty()) {
      out << "(cluster evidence below display threshold)";
    }
    out << "\n";
  }
  return out.str();
}

namespace {

void WriteEntityArray(JsonWriter* w, const std::vector<uint32_t>& ids,
                      const std::function<std::string(uint32_t)>& label) {
  w->BeginArray();
  for (uint32_t id : ids) {
    w->BeginObject();
    w->Key("id");
    w->UInt(id);
    w->Key("label");
    w->String(label(id));
    w->EndObject();
  }
  w->EndArray();
}

}  // namespace

std::string ExplanationToJson(const Explanation& explanation,
                              const Dataset& dataset) {
  auto user_label = [&dataset](uint32_t u) { return dataset.UserLabel(u); };
  auto item_label = [&dataset](uint32_t i) { return dataset.ItemLabel(i); };
  JsonWriter w;
  w.BeginObject();
  w.Key("user");
  w.UInt(explanation.user);
  w.Key("user_label");
  w.String(dataset.UserLabel(explanation.user));
  w.Key("item");
  w.UInt(explanation.item);
  w.Key("item_label");
  w.String(dataset.ItemLabel(explanation.item));
  w.Key("confidence");
  w.Double(explanation.confidence);
  w.Key("clauses");
  w.BeginArray();
  for (const auto& clause : explanation.clauses) {
    w.BeginObject();
    w.Key("cluster");
    w.UInt(clause.cluster_index);
    w.Key("contribution");
    w.Double(clause.contribution);
    w.Key("supporting_items");
    WriteEntityArray(&w, clause.supporting_items, item_label);
    w.Key("supporting_users");
    WriteEntityArray(&w, clause.supporting_users, user_label);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace ocular
