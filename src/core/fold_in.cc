#include "core/fold_in.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sparse/linalg.h"

namespace ocular {

namespace {

/// Shared validation of the factor views a context is built over.
Status ValidateContextShape(ConstMatrixView items, ConstMatrixView items_t,
                            const OcularConfig& config,
                            std::span<const double> popularity) {
  OCULAR_RETURN_IF_ERROR(config.Validate());
  if (config.TotalDims() != items.cols()) {
    return Status::InvalidArgument("config dimensions do not match model");
  }
  if (items_t.rows() != items.cols() || items_t.cols() != items.rows()) {
    return Status::InvalidArgument(
        "items_t must be the transposed layout of items");
  }
  if (!popularity.empty() && popularity.size() != items.rows()) {
    return Status::InvalidArgument(
        "popularity must have one entry per item");
  }
  return Status::OK();
}

/// Fills ctx->popularity: the explicit ranking if given, else the expected
/// affinity <Σ_u f_u, f_i> — deterministic either way.
void FillPopularity(ConstMatrixView user_factors,
                    std::span<const double> popularity, FoldInContext* ctx) {
  const uint32_t n = ctx->num_items();
  ctx->popularity.assign(popularity.begin(), popularity.end());
  if (!ctx->popularity.empty()) return;
  ctx->popularity.resize(n, 0.0);
  const std::vector<double> user_sums = ColumnSums(user_factors);
  for (uint32_t i = 0; i < n; ++i) {
    ctx->popularity[i] = vec::Dot(user_sums, ctx->items.Row(i));
  }
}

}  // namespace

Result<FoldInContext> MakeFoldInContext(ConstMatrixView user_factors,
                                        ConstMatrixView items,
                                        ConstMatrixView items_t,
                                        const OcularConfig& config,
                                        std::span<const double> popularity) {
  OCULAR_RETURN_IF_ERROR(
      ValidateContextShape(items, items_t, config, popularity));
  if (popularity.empty() && user_factors.cols() != items.cols()) {
    return Status::InvalidArgument(
        "user factors must match item dimensions (or pass popularity)");
  }
  FoldInContext ctx;
  ctx.config = config;
  ctx.items = items;
  ctx.items_t = items_t;
  ctx.item_sums = ColumnSums(items);
  FillPopularity(user_factors, popularity, &ctx);
  return ctx;
}

Result<FoldInContext> MakeFoldInContext(const OcularModel& model,
                                        const OcularConfig& config,
                                        std::span<const double> popularity) {
  FoldInContext ctx;
  ctx.owned_items_t = TransposedCopy(model.item_factors());
  OCULAR_RETURN_IF_ERROR(ValidateContextShape(
      model.item_factors(), ctx.owned_items_t, config, popularity));
  ctx.config = config;
  ctx.items = model.item_factors();
  ctx.items_t = ctx.owned_items_t;
  ctx.item_sums = ColumnSums(ctx.items);
  FillPopularity(model.user_factors(), popularity, &ctx);
  return ctx;
}

HistorySanitizeResult SanitizeHistory(std::vector<uint32_t>* history,
                                      uint32_t num_items) {
  HistorySanitizeResult res;
  std::sort(history->begin(), history->end());
  const auto oor =
      std::lower_bound(history->begin(), history->end(), num_items);
  res.dropped_out_of_range =
      static_cast<size_t>(history->end() - oor);
  history->erase(oor, history->end());
  history->erase(std::unique(history->begin(), history->end()),
                 history->end());
  return res;
}

Status FoldInUserInto(const FoldInContext& ctx,
                      std::span<const uint32_t> history,
                      const FoldInOptions& options, FoldInWorkspace* ws) {
  for (size_t n = 0; n < history.size(); ++n) {
    if (history[n] >= ctx.num_items()) {
      return Status::InvalidArgument("history item out of range: " +
                                     std::to_string(history[n]));
    }
    if (n > 0 && history[n] <= history[n - 1]) {
      return Status::InvalidArgument("history must be strictly ascending");
    }
  }
  const uint32_t dims = ctx.dims();
  const OcularConfig& config = ctx.config;
  ws->f.assign(dims, 0.0);
  if (history.empty()) return Status::OK();

  // Start from the mean of the purchased items' factors — a feasible,
  // informed initial point.
  std::span<double> f(ws->f);
  for (uint32_t i : history) {
    auto row = ctx.items.Row(i);
    for (uint32_t c = 0; c < dims; ++c) {
      f[c] += row[c] / static_cast<double>(history.size());
    }
  }

  // Bias extension: the user-side coordinate k+1 is pinned at 1 (see
  // OcularConfig::use_biases).
  const int user_frozen =
      config.use_biases ? static_cast<int>(config.k) + 1 : -1;
  if (config.use_biases) f[config.k + 1] = 1.0;

  ws->complement.assign(ctx.item_sums.begin(), ctx.item_sums.end());
  for (uint32_t i : history) {
    auto row = ctx.items.Row(i);
    for (uint32_t c = 0; c < dims; ++c) ws->complement[c] -= row[c];
  }

  // The workspace is reused across requests: grow the solver scratch if
  // this history is the longest seen (no-op once warm), and invalidate the
  // dot cache left behind by the previous solve.
  if (ws->block.dots.size() < history.size()) {
    ws->block.Reserve(dims, history.size());
  }
  ws->block.Invalidate();

  // The history block never changes during the solve, so the dot cache
  // stays warm across steps and each step's objective comes out of the
  // line search for free.
  double prev = internal::BlockObjective(f, history, ctx.items,
                                         ws->complement, config.lambda, 1.0,
                                         {});
  double step_hint = 0.0;  // accepted backtrack exponent (see ArmijoStep)
  for (uint32_t step = 0; step < options.max_steps; ++step) {
    const internal::BlockStepResult res = internal::ProjectedGradientStep(
        f, history, ctx.items, ctx.item_sums, config.lambda, 1.0, {}, config,
        user_frozen, &ws->block, &step_hint);
    const double q = res.objective;
    const double rel = (prev - q) / std::max(std::abs(prev), 1e-12);
    if (rel < options.tolerance) break;
    prev = q;
  }
  return Status::OK();
}

Result<std::vector<double>> FoldInUser(const OcularModel& model,
                                       const OcularConfig& config,
                                       std::span<const uint32_t> history,
                                       const FoldInOptions& options) {
  OCULAR_RETURN_IF_ERROR(config.Validate());
  if (config.TotalDims() != model.k()) {
    return Status::InvalidArgument("config dimensions do not match model");
  }
  // One-off context without the transposed copy / popularity the serving
  // contexts carry — the solve only needs the row-major factors and sums.
  FoldInContext ctx;
  ctx.config = config;
  ctx.items = model.item_factors();
  ctx.items_t = ConstMatrixView(nullptr, model.k(), model.num_items());
  ctx.item_sums = ColumnSums(ctx.items);
  FoldInWorkspace ws;
  ws.Reserve(ctx.dims(), history.size());
  OCULAR_RETURN_IF_ERROR(FoldInUserInto(ctx, history, options, &ws));
  return std::move(ws.f);
}

double ScoreFoldedUser(const OcularModel& model,
                       std::span<const double> user_factor, uint32_t item) {
  return -std::expm1(-vec::Dot(user_factor, model.item_factors().Row(item)));
}

double FoldedUserRecommender::Score(uint32_t, uint32_t i) const {
  return -std::expm1(-vec::Dot(f_, ctx_->items.Row(i)));
}

void FoldedUserRecommender::RawScoreBlock(uint32_t, uint32_t item_begin,
                                          uint32_t item_end,
                                          std::span<double> out) const {
  (void)item_end;
  vec::AffinityBlock(f_, ctx_->items_t, item_begin, out);
}

void FoldedUserRecommender::ScoreBlock(uint32_t u, uint32_t item_begin,
                                       uint32_t item_end,
                                       std::span<double> out) const {
  RawScoreBlock(u, item_begin, item_end, out);
  for (double& s : out) s = -std::expm1(-s);
}

double FoldedUserRecommender::ScoreFromRaw(double raw) const {
  return -std::expm1(-raw);
}

Result<HistoryRecommendation> RecommendForHistoryInto(
    const FoldInContext& ctx, std::span<const uint32_t> history, uint32_t m,
    double min_score, uint32_t block_items, const FoldInOptions& options,
    FoldInWorkspace* ws, std::vector<double>* tile,
    std::vector<ScoredItem>* selection) {
  m = std::min(m, ctx.num_items());
  bool folded = !history.empty();
  if (folded) {
    OCULAR_RETURN_IF_ERROR(FoldInUserInto(ctx, history, options, ws));
    // Degenerate solve (all-zero factor, e.g. history items with all-zero
    // factors): every score is exactly 0 and top-M would return an
    // arbitrary tie-ordered catalog prefix — fall back to popularity.
    folded = vec::SquaredNorm(ws->f) > 0.0;
  }
  constexpr double kNoFloor = -std::numeric_limits<double>::infinity();
  if (!folded) {
    TopMInto(ctx.popularity, m, history, kNoFloor, selection);
    return HistoryRecommendation{{selection->data(), selection->size()},
                                 false};
  }
  FoldedUserRecommender rec(&ctx, ws->f);
  // Same min_score convention (and selector) as the ServeTopM path.
  RecommendBlockedInto(rec, 0, m, history,
                       min_score > 0.0 ? min_score : kNoFloor, block_items,
                       tile, selection);
  return HistoryRecommendation{{selection->data(), selection->size()}, true};
}

Result<std::vector<ScoredItem>> RecommendForHistory(
    const OcularModel& model, const OcularConfig& config,
    std::span<const uint32_t> history, uint32_t m,
    const FoldInOptions& options) {
  OCULAR_ASSIGN_OR_RETURN(FoldInContext ctx,
                          MakeFoldInContext(model, config));
  FoldInWorkspace ws;
  ws.Reserve(ctx.dims(), history.size());
  std::vector<double> tile;
  std::vector<ScoredItem> selection;
  OCULAR_ASSIGN_OR_RETURN(
      HistoryRecommendation rec,
      RecommendForHistoryInto(ctx, history, m, /*min_score=*/0.0,
                              kDefaultScoreBlockItems, options, &ws, &tile,
                              &selection));
  (void)rec;
  return selection;
}

}  // namespace ocular
