#include "core/fold_in.h"

#include <algorithm>
#include <cmath>

namespace ocular {

Result<std::vector<double>> FoldInUser(const OcularModel& model,
                                       const OcularConfig& config,
                                       std::span<const uint32_t> history,
                                       const FoldInOptions& options) {
  OCULAR_RETURN_IF_ERROR(config.Validate());
  if (config.TotalDims() != model.k()) {
    return Status::InvalidArgument("config dimensions do not match model");
  }
  for (size_t n = 0; n < history.size(); ++n) {
    if (history[n] >= model.num_items()) {
      return Status::InvalidArgument("history item out of range: " +
                                     std::to_string(history[n]));
    }
    if (n > 0 && history[n] <= history[n - 1]) {
      return Status::InvalidArgument("history must be strictly ascending");
    }
  }
  std::vector<double> f(model.k(), 0.0);
  if (history.empty()) return f;

  // Start from the mean of the purchased items' factors — a feasible,
  // informed initial point.
  const DenseMatrix& items = model.item_factors();
  for (uint32_t i : history) {
    auto row = items.Row(i);
    for (uint32_t c = 0; c < model.k(); ++c) {
      f[c] += row[c] / static_cast<double>(history.size());
    }
  }

  // Bias extension: the user-side coordinate k+1 is pinned at 1 (see
  // OcularConfig::use_biases).
  const int user_frozen =
      config.use_biases ? static_cast<int>(config.k) + 1 : -1;
  if (config.use_biases) f[config.k + 1] = 1.0;

  const std::vector<double> item_sums = items.ColumnSums();
  std::vector<double> complement(item_sums.begin(), item_sums.end());
  for (uint32_t i : history) {
    auto row = items.Row(i);
    for (uint32_t c = 0; c < model.k(); ++c) complement[c] -= row[c];
  }

  // One workspace for the whole solve: the history block never changes, so
  // the dot cache stays warm across steps and each step's objective comes
  // out of the line search for free.
  internal::BlockWorkspace ws;
  ws.Reserve(model.k(), history.size());

  double prev = internal::BlockObjective(f, history, items, complement,
                                         config.lambda, 1.0, {});
  double step_hint = 0.0;  // accepted backtrack exponent (see ArmijoStep)
  for (uint32_t step = 0; step < options.max_steps; ++step) {
    const internal::BlockStepResult res = internal::ProjectedGradientStep(
        f, history, items, item_sums, config.lambda, 1.0, {}, config,
        user_frozen, &ws, &step_hint);
    const double q = res.objective;
    const double rel = (prev - q) / std::max(std::abs(prev), 1e-12);
    if (rel < options.tolerance) break;
    prev = q;
  }
  return f;
}

double ScoreFoldedUser(const OcularModel& model,
                       std::span<const double> user_factor, uint32_t item) {
  return -std::expm1(-vec::Dot(user_factor, model.item_factors().Row(item)));
}

Result<std::vector<ScoredItem>> RecommendForHistory(
    const OcularModel& model, const OcularConfig& config,
    std::span<const uint32_t> history, uint32_t m,
    const FoldInOptions& options) {
  OCULAR_ASSIGN_OR_RETURN(std::vector<double> f,
                          FoldInUser(model, config, history, options));
  std::vector<double> scores(model.num_items());
  for (uint32_t i = 0; i < model.num_items(); ++i) {
    scores[i] = ScoreFoldedUser(model, f, i);
  }
  return TopM(scores, m, history);
}

}  // namespace ocular
