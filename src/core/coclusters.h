#ifndef OCULAR_CORE_COCLUSTERS_H_
#define OCULAR_CORE_COCLUSTERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/ocular_model.h"
#include "sparse/csr.h"

namespace ocular {

/// A discovered overlapping co-cluster: the users and items whose
/// affiliation strength with dimension c exceeds the extraction threshold,
/// together with those strengths (descending).
struct CoCluster {
  uint32_t index = 0;  // which factor dimension c
  std::vector<uint32_t> users;
  std::vector<double> user_strengths;   // aligned with `users`
  std::vector<uint32_t> items;
  std::vector<double> item_strengths;   // aligned with `items`

  size_t num_users() const { return users.size(); }
  size_t num_items() const { return items.size(); }
  bool empty() const { return users.empty() || items.empty(); }
};

/// Extraction options. A user/item belongs to co-cluster c when its factor
/// entry exceeds `threshold`. The default makes a pair of boundary members
/// generate a positive with probability 1 − e^{−t²} ≈ 0.3, i.e. a
/// borderline-but-meaningful affiliation (Section IV-C: members are those
/// for which [f]_c is "large").
struct CoClusterOptions {
  double threshold = 0.6;
  /// Drop co-clusters with fewer users or items than this (the paper's
  /// application-specific size criterion, Section VII-C).
  uint32_t min_users = 1;
  uint32_t min_items = 1;
  /// Only the first `max_dims` factor dimensions are treated as
  /// co-clusters (0 = all). Set to config.k for models trained with
  /// use_biases, whose last two dimensions are bias terms, not clusters.
  uint32_t max_dims = 0;
};

/// Extracts all (non-empty) co-clusters from a fitted model. Members are
/// sorted by descending strength.
std::vector<CoCluster> ExtractCoClusters(const OcularModel& model,
                                         const CoClusterOptions& options = {});

/// Summary statistics of a co-clustering, the quantities plotted in
/// Figure 6 (users per co-cluster, items per co-cluster, density).
struct CoClusterStats {
  double mean_users = 0.0;
  double mean_items = 0.0;
  /// Mean fraction of in-cluster (user, item) cells that are positive in R.
  double mean_density = 0.0;
  /// Mean number of co-clusters a user / item belongs to (overlap degree).
  double mean_user_memberships = 0.0;
  double mean_item_memberships = 0.0;
  uint32_t num_clusters = 0;
};

/// Computes stats against the interaction matrix the model was fitted on.
CoClusterStats ComputeCoClusterStats(const std::vector<CoCluster>& clusters,
                                     const CsrMatrix& interactions);

/// Density of a single co-cluster block in `interactions`.
double CoClusterDensity(const CoCluster& cluster,
                        const CsrMatrix& interactions);

}  // namespace ocular

#endif  // OCULAR_CORE_COCLUSTERS_H_
