#ifndef OCULAR_CORE_OCULAR_TRAINER_H_
#define OCULAR_CORE_OCULAR_TRAINER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/ocular_model.h"
#include "sparse/csr.h"

namespace ocular {

/// Which likelihood the trainer optimizes.
enum class OcularVariant {
  /// Absolute preferences — the OCuLaR objective of Section IV-B.
  kAbsolute,
  /// Relative preferences — R-OCuLaR (Section V): positive log-likelihood
  /// terms of user u are weighted by w_u = |{i: r_ui=0}| / |{i: r_ui=1}|.
  kRelative,
};

/// Hyper-parameters and knobs of the OCuLaR trainer.
struct OcularConfig {
  /// Number of co-clusters K.
  uint32_t k = 50;
  /// l2 regularization weight lambda (> 0 makes the block subproblems
  /// strongly convex; Section IV-B).
  double lambda = 1.0;
  OcularVariant variant = OcularVariant::kAbsolute;

  /// Maximum number of full sweeps (one sweep = update all f_i, then all
  /// f_u, each by `block_steps` projected-gradient steps).
  uint32_t max_sweeps = 60;

  /// Projected-gradient steps per block per sweep. 1 is the paper's
  /// choice ("performing only one gradient descent step significantly
  /// speeds up the algorithm"); larger values approximate solving each
  /// block subproblem exactly (the classic non-linear Gauss-Seidel
  /// setting, [Bertsekas Prop. 2.7.1]). The ablation bench compares
  /// convergence-per-second across values.
  uint32_t block_steps = 1;
  /// Convergence: stop when the relative decrease of Q over a sweep falls
  /// below this ("convergence is declared if Q stops decreasing").
  double tolerance = 1e-4;

  /// Armijo backtracking line search along the projection arc
  /// (Bertsekas; Section IV-D): step alpha = initial_step * beta^t with the
  /// smallest t >= 0 satisfying
  ///   Q(f+) - Q(f) <= sigma * <grad Q(f), f+ - f>.
  double armijo_beta = 0.5;
  double armijo_sigma = 0.1;
  double initial_step = 1.0;
  uint32_t max_backtracks = 40;

  /// Factors are initialized iid Uniform(0, init_scale / sqrt(K)).
  double init_scale = 1.0;
  uint64_t seed = 1;

  /// Optional user/item bias terms (Section IV-A):
  ///   P[r_ui = 1] = 1 - exp(-<f_u,f_i> - b_u - b_i).
  /// Implemented as two extra factor dimensions with the counterpart
  /// coordinate frozen at 1, so every update path (serial, parallel,
  /// fold-in) works unchanged. The paper reports biases did not improve
  /// accuracy on its datasets; the ablation bench quantifies this.
  bool use_biases = false;

  /// Total factor dimensions including bias dimensions.
  uint32_t TotalDims() const { return k + (use_biases ? 2 : 0); }

  /// Record Q after every sweep (needed for the Fig. 8 convergence traces
  /// and the stopping rule). Tracking is FUSED into the sweep: the user
  /// phase accumulates the per-block objectives its line searches computed
  /// anyway, so the only extra cost is O(n_i·K) for the item-side l2 term —
  /// no separate O(nnz·K) ObjectiveQ pass (ObjectiveQ remains the oracle in
  /// tests).
  bool track_objective = true;

  /// Validates ranges; returns InvalidArgument on nonsense.
  Status Validate() const;
};

/// Per-sweep progress record.
struct SweepStats {
  uint32_t sweep = 0;
  double objective = 0.0;        // Q after this sweep (if tracked)
  double seconds_elapsed = 0.0;  // wall clock since training start
};

/// Training output: the fitted model plus the convergence trace.
struct OcularFitResult {
  OcularModel model;
  std::vector<SweepStats> trace;
  uint32_t sweeps_run = 0;
  bool converged = false;
};

/// Fits the OCuLaR (or R-OCuLaR) model to a binary interaction matrix by
/// cyclic block coordinate descent with single projected-gradient-step
/// block updates (Section IV-B, IV-D). Cost per sweep: O(nnz·K + (n_u+n_i)·K).
///
/// The trainer owns the Σ_u f_u / Σ_i f_i precomputation trick: the
/// unknowns part of every block gradient is formed from column sums minus
/// the positive entries' factors, never by touching the zero cells.
class OcularTrainer {
 public:
  explicit OcularTrainer(OcularConfig config) : config_(std::move(config)) {}

  const OcularConfig& config() const { return config_; }

  /// Trains from scratch on `interactions`.
  Result<OcularFitResult> Fit(const CsrMatrix& interactions) const;

  /// Trains starting from an existing model (warm start). The model shape
  /// must match `interactions` and config().k.
  Result<OcularFitResult> FitFrom(const CsrMatrix& interactions,
                                  OcularModel initial) const;

  /// Computes the R-OCuLaR per-user weights w_u for `interactions`
  /// (kAbsolute returns all-ones).
  std::vector<double> UserWeights(const CsrMatrix& interactions) const;

 private:
  OcularConfig config_;
};

namespace internal {

/// Reusable scratch for one block update. All heap storage the kernels need
/// lives here; after Reserve() the kernels perform ZERO allocations per
/// block update (verified by an allocator hook in tests), so one workspace
/// per thread turns the whole sweep allocation-free.
///
/// The workspace also caches the per-neighbor dot products d_n = <f_n, f>
/// and the block objective at the CURRENT point f. Within one block (same
/// row, same fixed side) consecutive projected-gradient steps reuse them:
/// the gradient coefficients w_n/expm1(d_n) come from the cache and the
/// Armijo q0 needs no recomputation at all. Callers must Invalidate() when
/// moving to a different row (or after the fixed side changed).
struct BlockWorkspace {
  std::vector<double> grad;        // K
  std::vector<double> trial;      // K: line-search candidate
  std::vector<double> trial_alt;  // K: second candidate (boundary search)
  std::vector<double> dots;        // deg(row): <f_n, f> at the current f
  std::vector<double> trial_dots;      // deg(row): dots at the candidates
  std::vector<double> trial_dots_alt;  //

  /// True when `dots`/`objective` describe the current f of the block this
  /// workspace was last used on.
  bool dots_valid = false;
  /// Block objective Q_b(f) at the current f (valid with dots_valid).
  double objective = 0.0;

  /// Pre-sizes every buffer so later (re)use never reallocates. `k` is the
  /// factor dimension, `max_neighbors` the maximum row degree the kernels
  /// will see (max over both R and R^T when shared across phases).
  ///
  /// Memory trade-off: the three degree-sized buffers cost
  /// 3*max_neighbors doubles per workspace, which the parallel trainers
  /// multiply by (num_threads + 1). On heavily skewed data (one blockbuster
  /// row of degree d) that is 24*d*(T+1) bytes of mostly-idle scratch — but
  /// such a row implies >= d counterpart factor rows, so the scratch stays
  /// small relative to the model itself.
  void Reserve(size_t k, size_t max_neighbors);

  /// Marks the dot/objective cache stale (switching to another block).
  void Invalidate() { dots_valid = false; }
};

/// Outcome of one block update.
struct BlockStepResult {
  /// Backtracking steps taken, or -1 if the line search failed (f
  /// unchanged).
  int backtracks = -1;
  /// Block objective Q_b(f) AFTER the update — the accepted trial's value
  /// (or the unchanged point's value on failure). Computed as a byproduct
  /// of the line search, so per-sweep objective tracking fused from these
  /// is free.
  double objective = 0.0;
};

/// One projected-gradient update of a single factor row, shared by the
/// serial trainer, the parallel trainers, and fold-in. Updates `f` in
/// place.
///
/// `neighbors`   — positive counterparts of this row (users of an item, or
///                 items of a user);
/// `other`       — the opposite factor matrix (a borrowed view, so the
///                 kernels run equally over an owned DenseMatrix or the
///                 mmapped factor section of a ModelStore);
/// `other_sums`  — column sums of `other` (Σ f over the opposite side).
///                 The complement Σ_{r=0} f_n is never materialized: both
///                 the gradient and the objective only need it through
///                 <x, complement> = <x, other_sums> − Σ_n <x, f_n>, and
///                 the per-neighbor dots are computed (once) anyway;
/// `pos_weight`  — weight multiplying every positive log-likelihood term
///                 (w_u for user rows under R-OCuLaR, 1 otherwise). For an
///                 ITEM row under R-OCuLaR, pass `per_neighbor_weights`
///                 instead (weights differ per positive example);
/// `frozen_coord`— coordinate of `f` held fixed during the step (-1 for
///                 none); used by the bias extension where the counterpart
///                 bias coordinate is pinned at 1;
/// `ws`          — per-thread scratch (see BlockWorkspace); must be
///                 Reserve()d large enough and Invalidate()d when switching
///                 rows;
/// `step_hint`   — optional per-ROW adaptive line-search state (see
///                 ArmijoStep). nullptr restarts every search at
///                 config.initial_step.
BlockStepResult ProjectedGradientStep(
    std::span<double> f, std::span<const uint32_t> neighbors,
    ConstMatrixView other, std::span<const double> other_sums,
    double lambda, double pos_weight,
    std::span<const double> per_neighbor_weights, const OcularConfig& config,
    int frozen_coord, BlockWorkspace* ws, double* step_hint = nullptr);

/// The block objective Q(f) of eq. (5), up to terms constant in f:
///   -Σ_n w_n log(1-e^{-<f_n, f>}) + <f, Σ_{r=0} f_n> + lambda ||f||².
/// O(deg·K) with heap allocation — kept as the slow oracle for tests and
/// one-off evaluations; the hot path gets the same value from
/// BlockStepResult::objective.
double BlockObjective(std::span<const double> f,
                      std::span<const uint32_t> neighbors,
                      ConstMatrixView other,
                      std::span<const double> complement_sum, double lambda,
                      double pos_weight,
                      std::span<const double> per_neighbor_weights);

/// The Armijo backtracking line search along the projection arc, given a
/// PRECOMPUTED gradient (shared by ProjectedGradientStep and the
/// kernel-style trainer, whose gradients come from the per-positive
/// decomposition of Section VI). Takes `other_sums` (NOT the materialized
/// complement; see ProjectedGradientStep). Reuses ws->dots/objective for
/// the q0 evaluation when valid; each backtrack computes dots only for the
/// trial point. Updates `f` in place on success.
///
/// `step_hint` (optional, per ROW, persisted by the caller across sweeps,
/// initialized to 0.0) warm-starts the search. It stores the row's last
/// accepted backtrack EXPONENT t (alpha = initial_step * beta^t, the same
/// grid a cold search walks): the search probes t-1 and walks to the
/// acceptance boundary from there instead of from t=0. The Armijo
/// acceptance test itself is unchanged, so every accepted step still
/// satisfies the sufficient-decrease condition, and under the (generic)
/// monotone-acceptance property the accepted step is exactly the cold
/// search's — this only removes the 4-7 rejected trials per block a cold
/// search spends walking alpha down, which is the single largest cost of
/// a sweep. nullptr = cold search (old behavior).
BlockStepResult ArmijoStep(std::span<double> f, std::span<const double> grad,
                           std::span<const uint32_t> neighbors,
                           ConstMatrixView other,
                           std::span<const double> other_sums, double lambda,
                           double pos_weight,
                           std::span<const double> per_neighbor_weights,
                           const OcularConfig& config, BlockWorkspace* ws,
                           double* step_hint = nullptr);

}  // namespace internal

}  // namespace ocular

#endif  // OCULAR_CORE_OCULAR_TRAINER_H_
