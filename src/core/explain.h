#ifndef OCULAR_CORE_EXPLAIN_H_
#define OCULAR_CORE_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/coclusters.h"
#include "core/ocular_model.h"
#include "data/dataset.h"

namespace ocular {

/// One piece of supporting evidence for a recommendation: a co-cluster that
/// contributes to P[r_ui = 1] (Section IV-C).
struct ExplanationClause {
  uint32_t cluster_index = 0;
  /// [f_u]_c [f_i]_c — this cluster's share of the affinity.
  double contribution = 0.0;
  /// Items of this co-cluster the user already has (evidence of the user's
  /// membership), strongest first, capped at `max_evidence`.
  std::vector<uint32_t> supporting_items;
  /// Peer users of this co-cluster that have the recommended item
  /// ("clients with similar purchase history also bought ..."), strongest
  /// first, capped.
  std::vector<uint32_t> supporting_users;
};

/// A fully-explained recommendation.
struct Explanation {
  uint32_t user = 0;
  uint32_t item = 0;
  /// P[r_ui = 1] under the fitted model — the "confidence" of Fig. 3/10.
  double confidence = 0.0;
  std::vector<ExplanationClause> clauses;
};

/// Explanation-generation knobs.
struct ExplainOptions {
  /// Ignore clusters contributing less than this fraction of the total
  /// affinity (noise suppression in the rationale).
  double min_contribution_fraction = 0.05;
  /// Cap on peers / supporting items named per clause.
  uint32_t max_evidence = 5;
  CoClusterOptions cocluster_options;
};

/// Builds the structured explanation for recommending `item` to `user`.
/// `interactions` is the training matrix (to find what the user/peers
/// actually bought). Fails with InvalidArgument on out-of-range ids.
Result<Explanation> ExplainRecommendation(const OcularModel& model,
                                          const CsrMatrix& interactions,
                                          uint32_t user, uint32_t item,
                                          const ExplainOptions& options = {});

/// Renders the explanation as the B2B rationale text of Figures 3/10, using
/// the dataset's labels, e.g.:
///
///   Item 4 is recommended to Client 6 with confidence 0.83 because:
///    - Client 6 has purchased Item 1, Item 2, Item 3. Clients with similar
///      purchase history (e.g. Client 4, Client 5) also bought Item 4.
std::string RenderExplanationText(const Explanation& explanation,
                                  const Dataset& dataset);

/// Serializes the explanation as JSON for programmatic consumers (the
/// deployment UI of Figure 10 renders from a payload like this):
///   {"user":..,"user_label":..,"item":..,"item_label":..,
///    "confidence":..,"clauses":[{"cluster":..,"contribution":..,
///    "supporting_items":[{"id":..,"label":..},...],
///    "supporting_users":[...]},...]}
std::string ExplanationToJson(const Explanation& explanation,
                              const Dataset& dataset);

}  // namespace ocular

#endif  // OCULAR_CORE_EXPLAIN_H_
