#include "core/model_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/fault.h"
#include "core/model_shard.h"
#include "sparse/linalg.h"

namespace ocular {

namespace {

// ---------------------------------------------------------------- layout
//
// All integers little-endian. See docs/MODEL_FORMAT.md for the normative
// byte-level spec; the constants here ARE that spec.

constexpr char kMagic[4] = {'O', 'C', 'L', 'R'};
constexpr uint32_t kVersion = 2;
// Written as an integer, read back as an integer: a mapping made on a
// big-endian machine would see the bytes reversed and reject the file
// instead of serving garbage factors.
constexpr uint32_t kEndianTag = 0x0C0FFEE1;
constexpr uint32_t kSectionCount = 3;
constexpr size_t kAlgorithmBytes = 16;  // NUL-padded tag
constexpr size_t kFixedHeaderBytes = 64;
constexpr size_t kSectionEntryBytes = 32;
constexpr size_t kHeaderBytes =
    kFixedHeaderBytes + kSectionCount * kSectionEntryBytes;  // 160
constexpr size_t kSectionAlignment = 64;

// Section kinds, in the order the writer emits them.
enum SectionKind : uint32_t {
  kSectionUserFactors = 0,
  kSectionItemFactors = 1,
  kSectionItemFactorsT = 2,
};

// Header flag bits.
constexpr uint32_t kFlagUseBiases = 1u << 0;
constexpr uint32_t kFlagRelativeVariant = 1u << 1;

constexpr size_t AlignUp(size_t n) {
  return (n + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

uint64_t Fnv1a64(const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Little-endian scalar put/get against a byte buffer. The build targets
// little-endian hosts (enforced below), so these are memcpys; the
// indirection documents intent and keeps alignment rules honest.
template <typename T>
void PutScalar(unsigned char* buf, size_t offset, T value) {
  std::memcpy(buf + offset, &value, sizeof(T));
}

template <typename T>
T GetScalar(const unsigned char* buf, size_t offset) {
  T value;
  std::memcpy(&value, buf + offset, sizeof(T));
  return value;
}

Status RequireLittleEndianHost() {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::NotImplemented(
        "binary model files are little-endian; this host is not");
  }
  return Status::OK();
}

struct SectionPlan {
  uint32_t kind = 0;
  const double* data = nullptr;
  size_t length_bytes = 0;
  size_t offset = 0;
};

Status WriteBinaryFile(const BinaryModelMeta& meta, ConstMatrixView users,
                       ConstMatrixView items, ConstMatrixView items_t,
                       const std::string& path) {
  OCULAR_RETURN_IF_ERROR(RequireLittleEndianHost());
  if (meta.k == 0 || users.cols() != meta.k || items.cols() != meta.k) {
    return Status::InvalidArgument(
        "factor matrices do not have meta.k columns");
  }
  if (meta.algorithm.size() >= kAlgorithmBytes) {
    return Status::InvalidArgument("algorithm tag longer than 15 bytes");
  }

  SectionPlan sections[kSectionCount] = {
      {kSectionUserFactors, users.data(), users.size() * sizeof(double), 0},
      {kSectionItemFactors, items.data(), items.size() * sizeof(double), 0},
      {kSectionItemFactorsT, items_t.data(), items_t.size() * sizeof(double),
       0},
  };
  size_t offset = AlignUp(kHeaderBytes);
  for (SectionPlan& s : sections) {
    s.offset = offset;
    offset = AlignUp(offset + s.length_bytes);
  }

  unsigned char header[kHeaderBytes] = {};
  std::memcpy(header, kMagic, sizeof(kMagic));
  PutScalar<uint32_t>(header, 4, kVersion);
  PutScalar<uint32_t>(header, 8, kEndianTag);
  PutScalar<uint32_t>(header, 12, static_cast<uint32_t>(meta.kind));
  PutScalar<uint32_t>(header, 16, meta.k);
  PutScalar<uint32_t>(header, 20, users.rows());
  PutScalar<uint32_t>(header, 24, items.rows());
  uint32_t flags = 0;
  if (meta.use_biases) flags |= kFlagUseBiases;
  if (meta.relative_variant) flags |= kFlagRelativeVariant;
  PutScalar<uint32_t>(header, 28, flags);
  PutScalar<double>(header, 32, meta.lambda);
  std::memcpy(header + 40, meta.algorithm.data(), meta.algorithm.size());
  PutScalar<uint32_t>(header, 56, kSectionCount);
  for (uint32_t i = 0; i < kSectionCount; ++i) {
    const size_t base = kFixedHeaderBytes + i * kSectionEntryBytes;
    PutScalar<uint32_t>(header, base, sections[i].kind);
    PutScalar<uint64_t>(header, base + 8, sections[i].offset);
    PutScalar<uint64_t>(header, base + 16, sections[i].length_bytes);
    PutScalar<uint64_t>(header, base + 24,
                        Fnv1a64(sections[i].data, sections[i].length_bytes));
  }

  if (fault::Maybe("store.write")) return fault::InjectedError("store.write");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  size_t written = sizeof(header);
  const char zeros[kSectionAlignment] = {};
  for (const SectionPlan& s : sections) {
    out.write(zeros, static_cast<std::streamsize>(s.offset - written));
    out.write(reinterpret_cast<const char*>(s.data),
              static_cast<std::streamsize>(s.length_bytes));
    written = s.offset + s.length_bytes;
  }
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

}  // namespace

Status SaveModelBinary(const OcularModel& model, const OcularConfig& config,
                       const std::string& path) {
  OCULAR_RETURN_IF_ERROR(model.Validate());
  if (model.k() != config.TotalDims()) {
    return Status::InvalidArgument(
        "model dimensions do not match the config being saved (did you "
        "forget use_biases?)");
  }
  BinaryModelMeta meta;
  meta.kind = BinaryModelKind::kOcularProbability;
  meta.k = model.k();
  meta.lambda = config.lambda;
  meta.use_biases = config.use_biases;
  meta.relative_variant = config.variant == OcularVariant::kRelative;
  meta.algorithm =
      config.variant == OcularVariant::kRelative ? "R-OCuLaR" : "OCuLaR";
  return WriteBinaryFile(meta, model.user_factors(), model.item_factors(),
                         TransposedCopy(model.item_factors()), path);
}

Status SaveFactorsBinary(const BinaryModelMeta& meta, const DenseMatrix& users,
                         const DenseMatrix& items, const std::string& path) {
  return WriteBinaryFile(meta, users, items, TransposedCopy(items), path);
}

Status SaveFactorSectionsBinary(const BinaryModelMeta& meta,
                                ConstMatrixView users, ConstMatrixView items,
                                ConstMatrixView items_t,
                                const std::string& path) {
  if (items_t.rows() != meta.k || items_t.cols() != items.rows()) {
    return Status::InvalidArgument(
        "items_t is not the K x n_i transposed layout of items");
  }
  return WriteBinaryFile(meta, users, items, items_t, path);
}

Status SaveDotProductFactors(const std::string& algorithm, uint32_t k,
                             double lambda, const DenseMatrix& users,
                             const DenseMatrix& items,
                             const std::string& path) {
  if (users.rows() == 0) {
    return Status::FailedPrecondition(algorithm + " model is not fitted");
  }
  BinaryModelMeta meta;
  meta.kind = BinaryModelKind::kDotProduct;
  meta.k = k;
  meta.lambda = lambda;
  meta.algorithm = algorithm;
  return SaveFactorsBinary(meta, users, items, path);
}

Status ConvertTextModelToBinary(const std::string& text_path,
                                const std::string& binary_path) {
  OCULAR_ASSIGN_OR_RETURN(LoadedModel loaded, LoadModel(text_path));
  return SaveModelBinary(loaded.model, loaded.config, binary_path);
}

// ------------------------------------------------------------ ModelStore

ModelStore::ModelStore(ModelStore&& other) noexcept { *this = std::move(other); }

ModelStore& ModelStore::operator=(ModelStore&& other) noexcept {
  if (this == &other) return *this;
  if (mapping_ != nullptr) ::munmap(mapping_, mapped_bytes_);
  path_ = std::move(other.path_);
  mapping_ = other.mapping_;
  mapped_bytes_ = other.mapped_bytes_;
  meta_ = std::move(other.meta_);
  num_users_ = other.num_users_;
  num_items_ = other.num_items_;
  user_factors_ = other.user_factors_;
  item_factors_ = other.item_factors_;
  item_factors_t_ = other.item_factors_t_;
  other.Reset();
  return *this;
}

ModelStore::~ModelStore() {
  if (mapping_ != nullptr) ::munmap(mapping_, mapped_bytes_);
}

void ModelStore::Reset() noexcept {
  mapping_ = nullptr;
  mapped_bytes_ = 0;
  num_users_ = 0;
  num_items_ = 0;
  user_factors_ = nullptr;
  item_factors_ = nullptr;
  item_factors_t_ = nullptr;
}

Result<ModelStore> ModelStore::Open(const std::string& path,
                                    const ModelStoreOptions& options) {
  OCULAR_RETURN_IF_ERROR(RequireLittleEndianHost());
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("fstat('" + path + "'): " + std::strerror(err));
  }
  const size_t file_bytes = static_cast<size_t>(st.st_size);
  if (file_bytes < kHeaderBytes) {
    ::close(fd);
    return Status::ParseError("'" + path +
                              "' is too small to be a binary model file");
  }
  void* mapping = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping pins the file contents; the descriptor is no longer needed.
  ::close(fd);
  if (mapping == MAP_FAILED) {
    return Status::IOError("mmap('" + path + "'): " + std::strerror(errno));
  }

  ModelStore store;
  store.path_ = path;
  store.mapping_ = mapping;
  store.mapped_bytes_ = file_bytes;

  const unsigned char* h = static_cast<const unsigned char*>(mapping);
  if (std::memcmp(h, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("'" + path +
                              "' has no OCLR magic; not a binary model file");
  }
  const uint32_t version = GetScalar<uint32_t>(h, 4);
  if (version != kVersion) {
    return Status::ParseError("unsupported binary model version " +
                              std::to_string(version) + " (this build reads " +
                              std::to_string(kVersion) + ")");
  }
  if (GetScalar<uint32_t>(h, 8) != kEndianTag) {
    return Status::ParseError(
        "endianness tag mismatch; file written on a foreign byte order");
  }
  const uint32_t kind = GetScalar<uint32_t>(h, 12);
  if (kind > static_cast<uint32_t>(BinaryModelKind::kDotProduct)) {
    return Status::ParseError("unknown model kind " + std::to_string(kind));
  }
  store.meta_.kind = static_cast<BinaryModelKind>(kind);
  store.meta_.k = GetScalar<uint32_t>(h, 16);
  store.num_users_ = GetScalar<uint32_t>(h, 20);
  store.num_items_ = GetScalar<uint32_t>(h, 24);
  if (store.meta_.k == 0) return Status::ParseError("k must be positive");
  const uint32_t flags = GetScalar<uint32_t>(h, 28);
  store.meta_.use_biases = (flags & kFlagUseBiases) != 0;
  store.meta_.relative_variant = (flags & kFlagRelativeVariant) != 0;
  store.meta_.lambda = GetScalar<double>(h, 32);
  {
    const char* tag = reinterpret_cast<const char*>(h + 40);
    store.meta_.algorithm.assign(tag, strnlen(tag, kAlgorithmBytes));
  }
  if (GetScalar<uint32_t>(h, 56) != kSectionCount) {
    return Status::ParseError("unexpected section count");
  }

  // Hostile-header guard: the factor cell counts are u32 x u32 products
  // (they fit a u64), but the BYTE counts could wrap at *8. Every section
  // must fit in the file anyway, so bound the cell counts by the file
  // size first — after this check the byte products below cannot overflow.
  const uint64_t user_cells =
      static_cast<uint64_t>(store.num_users_) * store.meta_.k;
  const uint64_t item_cells =
      static_cast<uint64_t>(store.num_items_) * store.meta_.k;
  if (user_cells > file_bytes / sizeof(double) ||
      item_cells > file_bytes / sizeof(double)) {
    return Status::ParseError(
        "header dimensions exceed the file size; corrupt or hostile header");
  }
  const size_t expected_bytes[kSectionCount] = {
      static_cast<size_t>(user_cells * sizeof(double)),
      static_cast<size_t>(item_cells * sizeof(double)),
      static_cast<size_t>(item_cells * sizeof(double)),
  };
  const double* section_data[kSectionCount] = {};
  for (uint32_t i = 0; i < kSectionCount; ++i) {
    const size_t base = kFixedHeaderBytes + i * kSectionEntryBytes;
    const uint32_t section_kind = GetScalar<uint32_t>(h, base);
    const uint64_t offset = GetScalar<uint64_t>(h, base + 8);
    const uint64_t length = GetScalar<uint64_t>(h, base + 16);
    if (section_kind >= kSectionCount || section_data[section_kind] != nullptr) {
      return Status::ParseError("malformed section table");
    }
    if (offset % kSectionAlignment != 0) {
      return Status::ParseError("section " + std::to_string(section_kind) +
                                " is not 64-byte aligned");
    }
    if (length != expected_bytes[section_kind]) {
      return Status::ParseError(
          "section " + std::to_string(section_kind) +
          " length does not match the header dimensions");
    }
    if (offset > file_bytes || length > file_bytes - offset) {
      return Status::ParseError("'" + path +
                                "' is truncated: section " +
                                std::to_string(section_kind) +
                                " extends past end of file");
    }
    section_data[section_kind] = reinterpret_cast<const double*>(h + offset);
  }
  store.user_factors_ = section_data[kSectionUserFactors];
  store.item_factors_ = section_data[kSectionItemFactors];
  store.item_factors_t_ = section_data[kSectionItemFactorsT];

  if (options.verify_checksums) {
    OCULAR_RETURN_IF_ERROR(store.VerifyChecksums());
  }
  return store;
}

Status ModelStore::VerifyChecksums() const {
  if (mapping_ == nullptr) {
    return Status::FailedPrecondition("ModelStore is not open");
  }
  const unsigned char* h = static_cast<const unsigned char*>(mapping_);
  for (uint32_t i = 0; i < kSectionCount; ++i) {
    const size_t base = kFixedHeaderBytes + i * kSectionEntryBytes;
    const uint64_t offset = GetScalar<uint64_t>(h, base + 8);
    const uint64_t length = GetScalar<uint64_t>(h, base + 16);
    const uint64_t recorded = GetScalar<uint64_t>(h, base + 24);
    if (Fnv1a64(h + offset, length) != recorded) {
      return Status::ParseError(
          "checksum mismatch in section " +
          std::to_string(GetScalar<uint32_t>(h, base)) + " of '" + path_ +
          "' (file corrupted?)");
    }
  }
  return Status::OK();
}

Result<LoadedModel> ModelStore::MaterializeOcular() const {
  if (mapping_ == nullptr) {
    return Status::FailedPrecondition("ModelStore is not open");
  }
  if (meta_.kind != BinaryModelKind::kOcularProbability) {
    return Status::FailedPrecondition(
        "model '" + meta_.algorithm + "' is not an OCuLaR-family model");
  }
  LoadedModel out;
  out.config.use_biases = meta_.use_biases;
  out.config.k = meta_.k - (meta_.use_biases ? 2 : 0);
  out.config.lambda = meta_.lambda;
  out.config.variant = meta_.relative_variant ? OcularVariant::kRelative
                                              : OcularVariant::kAbsolute;
  DenseMatrix users(num_users_, meta_.k);
  DenseMatrix items(num_items_, meta_.k);
  std::memcpy(users.data(), user_factors_,
              users.size() * sizeof(double));
  std::memcpy(items.data(), item_factors_,
              items.size() * sizeof(double));
  out.model = OcularModel(std::move(users), std::move(items));
  return out;
}

bool IsBinaryModelFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

Result<LoadedModel> LoadModelAuto(const std::string& path) {
  // A shardset manifest also starts with "OCLR" ("OCLRSHARDSET ..."), so
  // this sniff must run before the binary one or the manifest would be
  // misparsed as a v2 file with a garbage version.
  if (IsShardSetFile(path)) {
    OCULAR_ASSIGN_OR_RETURN(ShardSetStores set, OpenShardSet(path));
    return MaterializeShardSetOcular(set);
  }
  if (!IsBinaryModelFile(path)) return LoadModel(path);
  OCULAR_ASSIGN_OR_RETURN(ModelStore store, ModelStore::Open(path));
  return store.MaterializeOcular();
}

}  // namespace ocular
