#include "core/model_shard.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/fs_util.h"

namespace ocular {

namespace {

// Magic first line of a manifest; the trailing integer is the format
// version. Line-oriented text (not another binary page) because a
// manifest is O(shards) tiny, and operators diff and hand-inspect it the
// way they do the v1 text models.
constexpr char kManifestMagic[] = "OCLRSHARDSET";
constexpr uint32_t kManifestVersion = 1;

// Non-null anchor for zero-length matrix views: ostream::write and
// Fnv1a64 both receive the pointer, and a literal nullptr would trip
// UBSan's nonnull checks even at size 0.
const double kEmptyAnchor = 0.0;

std::string HexFingerprint(uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, fp);
  return buf;
}

/// Directory prefix of `path` including the trailing '/', empty when the
/// path has no directory component.
std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? "" : path.substr(0, slash + 1);
}

/// `manifest_path` minus a trailing ".shardset", with the directory
/// stripped — the stem member files are named after.
std::string MemberStem(const std::string& manifest_path) {
  std::string base = manifest_path.substr(DirOf(manifest_path).size());
  const std::string suffix = ".shardset";
  if (base.size() > suffix.size() &&
      base.compare(base.size() - suffix.size(), suffix.size(), suffix) == 0) {
    base.resize(base.size() - suffix.size());
  }
  return base;
}

std::string ShardFileName(const std::string& stem, uint32_t shard) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%03u", shard);
  return stem + ".shard-" + buf + ".oclr";
}

Status TruncatedError(const std::string& path) {
  return Status::ParseError("shardset manifest '" + path +
                            "' is truncated (missing 'end' marker)");
}

Status MalformedLine(const std::string& path, const std::string& line) {
  return Status::ParseError("shardset manifest '" + path +
                            "' has a malformed line: '" + line + "'");
}

}  // namespace

// ------------------------------------------------------------- ShardMap

Result<ShardMap> ShardMap::EvenSplit(uint32_t num_users, uint32_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("a shard map needs at least one shard");
  }
  if (num_users < num_shards) {
    return Status::InvalidArgument(
        "splitting " + std::to_string(num_users) + " users into " +
        std::to_string(num_shards) + " shards would leave empty shards");
  }
  const uint32_t quota = num_users / num_shards;
  const uint32_t extra = num_users % num_shards;
  std::vector<uint32_t> begins(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    begins[s] = s * quota + std::min(s, extra);
  }
  return FromBoundaries(std::move(begins), num_users);
}

Result<ShardMap> ShardMap::FromBoundaries(std::vector<uint32_t> begins,
                                          uint32_t num_users) {
  if (begins.empty()) {
    return Status::InvalidArgument("a shard map needs at least one shard");
  }
  if (begins.front() != 0) {
    return Status::InvalidArgument("the first shard must begin at user 0");
  }
  for (size_t s = 0; s + 1 < begins.size(); ++s) {
    if (begins[s] >= begins[s + 1]) {
      return Status::InvalidArgument("shard " + std::to_string(s) +
                                     " would be empty (begins must be "
                                     "strictly increasing)");
    }
  }
  if (begins.back() >= num_users) {
    return Status::InvalidArgument(
        "shard " + std::to_string(begins.size() - 1) +
        " would be empty (its begin is at or past num_users)");
  }
  ShardMap map;
  map.begins_ = std::move(begins);
  map.num_users_ = num_users;
  return map;
}

uint32_t ShardMap::shard_of(uint32_t user) const {
  const auto it = std::upper_bound(begins_.begin(), begins_.end(), user);
  return static_cast<uint32_t>(it - begins_.begin()) - 1;
}

// ------------------------------------------------------------- manifest

Result<ShardMap> ShardSetManifest::Map() const {
  std::vector<uint32_t> begins;
  begins.reserve(shards.size());
  uint32_t expected_begin = 0;
  for (size_t s = 0; s < shards.size(); ++s) {
    const ShardSetEntry& e = shards[s];
    if (e.user_begin != expected_begin || e.user_begin >= e.user_end) {
      return Status::InvalidArgument(
          "shard ranges do not tile [0, num_users) at shard " +
          std::to_string(s));
    }
    begins.push_back(e.user_begin);
    expected_begin = e.user_end;
  }
  if (expected_begin != num_users) {
    return Status::InvalidArgument(
        "shard ranges cover " + std::to_string(expected_begin) +
        " users but the manifest declares " + std::to_string(num_users));
  }
  return ShardMap::FromBoundaries(std::move(begins), num_users);
}

bool IsShardSetFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char head[sizeof(kManifestMagic)] = {};  // magic + the following space
  in.read(head, sizeof(head));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(head))) return false;
  return std::memcmp(head, kManifestMagic, sizeof(kManifestMagic) - 1) == 0 &&
         head[sizeof(head) - 1] == ' ';
}

std::string ShardSetResolve(const std::string& manifest_path,
                            const std::string& file) {
  if (!file.empty() && file.front() == '/') return file;
  return DirOf(manifest_path) + file;
}

Result<ShardSetManifest> LoadShardSetManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open shardset manifest '" + path + "'");
  }
  std::string line;
  if (!std::getline(in, line)) return TruncatedError(path);
  {
    std::istringstream head(line);
    std::string magic;
    uint32_t version = 0;
    if (!(head >> magic >> version) || magic != kManifestMagic) {
      return Status::ParseError("'" + path +
                                "' is not a shardset manifest (bad magic)");
    }
    if (version != kManifestVersion) {
      return Status::ParseError("shardset manifest '" + path +
                                "' has unsupported version " +
                                std::to_string(version));
    }
  }

  ShardSetManifest m;
  uint32_t declared_shards = 0;
  bool saw_shard_count = false;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      saw_end = true;
      break;
    } else if (key == "users") {
      if (!(fields >> m.num_users)) return MalformedLine(path, line);
    } else if (key == "items") {
      if (!(fields >> m.num_items)) return MalformedLine(path, line);
    } else if (key == "k") {
      if (!(fields >> m.k)) return MalformedLine(path, line);
    } else if (key == "split") {
      if (!(fields >> m.split)) return MalformedLine(path, line);
    } else if (key == "items-file") {
      std::string hex;
      if (!(fields >> m.items_file >> hex)) return MalformedLine(path, line);
      m.items_fingerprint = std::strtoull(hex.c_str(), nullptr, 16);
    } else if (key == "shards") {
      if (!(fields >> declared_shards)) return MalformedLine(path, line);
      saw_shard_count = true;
    } else if (key == "shard") {
      ShardSetEntry e;
      std::string hex;
      if (!(fields >> e.user_begin >> e.user_end >> e.file >> hex)) {
        return MalformedLine(path, line);
      }
      e.fingerprint = std::strtoull(hex.c_str(), nullptr, 16);
      m.shards.push_back(std::move(e));
    } else {
      return MalformedLine(path, line);
    }
  }
  if (!saw_end) return TruncatedError(path);
  if (!saw_shard_count || declared_shards != m.shards.size()) {
    return Status::ParseError(
        "shardset manifest '" + path + "' shard count disagreement: declares " +
        std::to_string(declared_shards) + " shards but lists " +
        std::to_string(m.shards.size()));
  }
  if (m.k == 0 || m.num_users == 0 || m.items_file.empty()) {
    return Status::ParseError("shardset manifest '" + path +
                              "' is missing required fields");
  }
  if (m.split != "user-range") {
    return Status::ParseError("shardset manifest '" + path +
                              "' has unsupported split rule '" + m.split +
                              "'");
  }
  // Ranges must tile the user space; a gap or overlap is a manifest
  // corruption, not a routing choice.
  if (Result<ShardMap> map = m.Map(); !map.ok()) {
    return Status::ParseError("shardset manifest '" + path +
                              "': " + map.status().message());
  }
  return m;
}

Status SaveShardSetManifest(const ShardSetManifest& manifest,
                            const std::string& path) {
  std::ostringstream out;
  out << kManifestMagic << ' ' << kManifestVersion << '\n';
  out << "users " << manifest.num_users << '\n';
  out << "items " << manifest.num_items << '\n';
  out << "k " << manifest.k << '\n';
  out << "split " << manifest.split << '\n';
  out << "items-file " << manifest.items_file << ' '
      << HexFingerprint(manifest.items_fingerprint) << '\n';
  out << "shards " << manifest.shards.size() << '\n';
  for (const ShardSetEntry& e : manifest.shards) {
    out << "shard " << e.user_begin << ' ' << e.user_end << ' ' << e.file
        << ' ' << HexFingerprint(e.fingerprint) << '\n';
  }
  out << "end\n";
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  file << out.str();
  if (!file) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

// ----------------------------------------------------------- validation

Status CheckShardSetMember(const std::string& manifest_path,
                           const std::string& file, uint64_t expected) {
  const std::string full = ShardSetResolve(manifest_path, file);
  Result<uint64_t> fp = fs::FileFingerprint(full);
  if (!fp.ok()) {
    return Status::IOError("shardset member '" + file +
                           "' is missing or unreadable: " +
                           fp.status().message());
  }
  if (*fp != expected) {
    return Status::ParseError(
        "fingerprint mismatch on shardset member '" + file +
        "': manifest records " + HexFingerprint(expected) + ", file has " +
        HexFingerprint(*fp) + " — refusing to serve a torn shardset");
  }
  return Status::OK();
}

Status ValidateItemsHeader(const ShardSetManifest& manifest,
                           const ModelStore& store) {
  if (store.num_users() != 0 || store.num_items() != manifest.num_items ||
      store.k() != manifest.k) {
    return Status::ParseError(
        "items file header disagrees with the manifest: file has " +
        std::to_string(store.num_users()) + " users, " +
        std::to_string(store.num_items()) + " items, k=" +
        std::to_string(store.k()) + "; manifest expects 0 users, " +
        std::to_string(manifest.num_items) + " items, k=" +
        std::to_string(manifest.k));
  }
  return Status::OK();
}

Status ValidateShardHeader(const ShardSetManifest& manifest, size_t index,
                           const ModelStore& store) {
  const ShardSetEntry& e = manifest.shards[index];
  const uint32_t want_users = e.user_end - e.user_begin;
  if (store.num_users() != want_users || store.num_items() != 0 ||
      store.k() != manifest.k) {
    return Status::ParseError(
        "shard " + std::to_string(index) +
        " header disagrees with the manifest: file has " +
        std::to_string(store.num_users()) + " users, " +
        std::to_string(store.num_items()) + " items, k=" +
        std::to_string(store.k()) + "; manifest expects " +
        std::to_string(want_users) + " users, 0 items, k=" +
        std::to_string(manifest.k));
  }
  return Status::OK();
}

Result<ShardSetStores> OpenShardSet(const std::string& manifest_path,
                                    const ModelStoreOptions& options) {
  ShardSetStores out;
  OCULAR_ASSIGN_OR_RETURN(out.manifest, LoadShardSetManifest(manifest_path));
  OCULAR_ASSIGN_OR_RETURN(out.map, out.manifest.Map());

  OCULAR_RETURN_IF_ERROR(CheckShardSetMember(
      manifest_path, out.manifest.items_file, out.manifest.items_fingerprint));
  Result<ModelStore> items = ModelStore::Open(
      ShardSetResolve(manifest_path, out.manifest.items_file), options);
  if (!items.ok()) return items.status();
  OCULAR_RETURN_IF_ERROR(ValidateItemsHeader(out.manifest, *items));
  out.items = std::make_shared<const ModelStore>(std::move(items).value());

  out.shards.reserve(out.manifest.shards.size());
  for (size_t s = 0; s < out.manifest.shards.size(); ++s) {
    const ShardSetEntry& e = out.manifest.shards[s];
    OCULAR_RETURN_IF_ERROR(
        CheckShardSetMember(manifest_path, e.file, e.fingerprint));
    Result<ModelStore> shard =
        ModelStore::Open(ShardSetResolve(manifest_path, e.file), options);
    if (!shard.ok()) return shard.status();
    OCULAR_RETURN_IF_ERROR(ValidateShardHeader(out.manifest, s, *shard));
    out.shards.push_back(
        std::make_shared<const ModelStore>(std::move(shard).value()));
  }
  return out;
}

// -------------------------------------------------------------- writers

Status SaveShardUserFactors(const BinaryModelMeta& meta,
                            ConstMatrixView users_slice,
                            const std::string& path) {
  if (users_slice.rows() == 0) {
    return Status::InvalidArgument("a shard file needs at least one user");
  }
  const ConstMatrixView no_items(&kEmptyAnchor, 0, meta.k);
  const ConstMatrixView no_items_t(&kEmptyAnchor, meta.k, 0);
  return SaveFactorSectionsBinary(meta, users_slice, no_items, no_items_t,
                                  path);
}

Status WriteShardSetStreaming(const BinaryModelMeta& meta, const ShardMap& map,
                              ConstMatrixView items, ConstMatrixView items_t,
                              const ShardRowFn& row_fn,
                              const std::string& manifest_path) {
  if (map.num_shards() == 0) {
    return Status::InvalidArgument("cannot write a shardset with no shards");
  }
  if (meta.k == 0 || items.cols() != meta.k || items_t.rows() != meta.k ||
      items_t.cols() != items.rows()) {
    return Status::InvalidArgument(
        "item factor views do not match meta.k / the transposed layout");
  }

  const std::string dir = DirOf(manifest_path);
  const std::string stem = MemberStem(manifest_path);

  ShardSetManifest manifest;
  manifest.num_users = map.num_users();
  manifest.num_items = items.rows();
  manifest.k = meta.k;
  manifest.items_file = stem + ".items.oclr";

  const ConstMatrixView no_users(&kEmptyAnchor, 0, meta.k);
  OCULAR_RETURN_IF_ERROR(SaveFactorSectionsBinary(
      meta, no_users, items, items_t, dir + manifest.items_file));
  OCULAR_ASSIGN_OR_RETURN(manifest.items_fingerprint,
                          fs::FileFingerprint(dir + manifest.items_file));

  // One shard at a time: the block below is the only user-factor storage
  // this function ever holds.
  for (uint32_t s = 0; s < map.num_shards(); ++s) {
    const uint32_t begin = map.begin(s);
    const uint32_t rows = map.end(s) - begin;
    DenseMatrix block(rows, meta.k);
    for (uint32_t r = 0; r < rows; ++r) row_fn(begin + r, block.Row(r));
    ShardSetEntry e;
    e.user_begin = begin;
    e.user_end = map.end(s);
    e.file = ShardFileName(stem, s);
    OCULAR_RETURN_IF_ERROR(SaveShardUserFactors(meta, block, dir + e.file));
    OCULAR_ASSIGN_OR_RETURN(e.fingerprint, fs::FileFingerprint(dir + e.file));
    manifest.shards.push_back(std::move(e));
  }

  // The manifest lands last: a crash anywhere above leaves member files
  // but nothing that OpenShardSet would accept.
  return SaveShardSetManifest(manifest, manifest_path);
}

Result<LoadedModel> MaterializeShardSetOcular(const ShardSetStores& set) {
  const BinaryModelMeta& meta = set.items->meta();
  if (meta.kind != BinaryModelKind::kOcularProbability) {
    return Status::FailedPrecondition(
        "model '" + meta.algorithm + "' is not an OCuLaR-family model");
  }
  LoadedModel out;
  out.config.use_biases = meta.use_biases;
  out.config.k = meta.k - (meta.use_biases ? 2 : 0);
  out.config.lambda = meta.lambda;
  out.config.variant = meta.relative_variant ? OcularVariant::kRelative
                                             : OcularVariant::kAbsolute;
  DenseMatrix users(set.manifest.num_users, meta.k);
  for (size_t s = 0; s < set.shards.size(); ++s) {
    const ConstMatrixView slice = set.shards[s]->user_factors();
    std::memcpy(users.data() +
                    static_cast<size_t>(set.manifest.shards[s].user_begin) *
                        meta.k,
                slice.Row(0).data(), slice.size() * sizeof(double));
  }
  DenseMatrix items(set.manifest.num_items, meta.k);
  const ConstMatrixView item_view = set.items->item_factors();
  std::memcpy(items.data(), item_view.Row(0).data(),
              item_view.size() * sizeof(double));
  out.model = OcularModel(std::move(users), std::move(items));
  return out;
}

Status SaveModelSharded(const BinaryModelMeta& meta, ConstMatrixView users,
                        ConstMatrixView items, ConstMatrixView items_t,
                        uint32_t num_shards, const std::string& manifest_path) {
  if (users.cols() != meta.k) {
    return Status::InvalidArgument("users does not have meta.k columns");
  }
  OCULAR_ASSIGN_OR_RETURN(ShardMap map,
                          ShardMap::EvenSplit(users.rows(), num_shards));
  const ShardRowFn copy_row = [&users](uint32_t user, std::span<double> out) {
    const std::span<const double> row = users.Row(user);
    std::copy(row.begin(), row.end(), out.begin());
  };
  return WriteShardSetStreaming(meta, map, items, items_t, copy_row,
                                manifest_path);
}

}  // namespace ocular
