#ifndef OCULAR_CORE_EARLY_STOPPING_H_
#define OCULAR_CORE_EARLY_STOPPING_H_

#include "common/result.h"
#include "core/ocular_trainer.h"

namespace ocular {

/// Validation-based early stopping.
///
/// The paper stops when the objective Q plateaus; in deployment one
/// usually cares about *ranking* quality, which can peak before (or
/// after) Q does. This driver trains in chunks of `check_every` sweeps,
/// evaluates recall@m on a held-out validation matrix after each chunk,
/// and stops when `patience` consecutive checks bring no improvement —
/// returning the model snapshot from the best check.
struct EarlyStoppingOptions {
  /// Sweeps between validation checks.
  uint32_t check_every = 5;
  /// Stop after this many consecutive non-improving checks.
  uint32_t patience = 2;
  /// Hard cap on total sweeps.
  uint32_t max_sweeps = 200;
  /// Validation cutoff (recall@m).
  uint32_t m = 50;

  Status Validate() const;
};

/// Result of an early-stopped fit.
struct EarlyStoppedFit {
  OcularModel model;       // best-on-validation snapshot
  double best_recall = 0.0;
  uint32_t best_sweep = 0;  // sweeps run when the best snapshot was taken
  uint32_t sweeps_run = 0;  // total sweeps actually executed
  /// recall@m after each validation check, in order.
  std::vector<double> validation_curve;
};

/// Trains with `config` (its max_sweeps/tolerance are ignored in favor of
/// the options') on `train`, early-stopping on `validation`. The two
/// matrices must share a shape and be disjoint (standard split output).
Result<EarlyStoppedFit> FitWithEarlyStopping(
    const OcularConfig& config, const CsrMatrix& train,
    const CsrMatrix& validation, const EarlyStoppingOptions& options = {});

}  // namespace ocular

#endif  // OCULAR_CORE_EARLY_STOPPING_H_
