#include "core/incremental.h"

#include <cmath>

namespace ocular {

namespace {

/// Copies `src` into the top rows of a (rows x src.cols()) matrix and
/// fills the remainder with the cold-start distribution.
DenseMatrix GrowRows(const DenseMatrix& src, uint32_t rows, double scale,
                     Rng* rng) {
  DenseMatrix out(rows, src.cols());
  for (uint32_t r = 0; r < src.rows(); ++r) {
    auto from = src.Row(r);
    auto to = out.Row(r);
    std::copy(from.begin(), from.end(), to.begin());
  }
  for (uint32_t r = src.rows(); r < rows; ++r) {
    for (auto& v : out.Row(r)) v = rng->Uniform(0.0, scale);
  }
  return out;
}

}  // namespace

uint64_t DeriveExpandSeed(uint32_t old_users, uint32_t old_items,
                          uint32_t num_users, uint32_t num_items,
                          uint32_t k) {
  // splitmix64-style finalization of the packed shape transition: any
  // change to either shape lands in a different stream, and repeating the
  // same transition (replay) lands in the same one.
  uint64_t h = (static_cast<uint64_t>(old_users) << 32) | old_items;
  h ^= ((static_cast<uint64_t>(num_users) << 32) | num_items) +
       0x9e3779b97f4a7c15ULL + k;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  // Stay clear of 0 so a derived seed can never alias the "derive me"
  // sentinel when fed back through ExpandOptions.
  return h == 0 ? 0x9e3779b97f4a7c15ULL : h;
}

Result<OcularModel> ExpandModel(const OcularModel& model, uint32_t num_users,
                                uint32_t num_items,
                                const ExpandOptions& options) {
  if (num_users < model.num_users() || num_items < model.num_items()) {
    return Status::InvalidArgument(
        "ExpandModel cannot shrink: retrain from scratch instead");
  }
  if (model.k() == 0) {
    return Status::InvalidArgument("model has no factor dimensions");
  }
  const uint64_t seed =
      options.seed != 0
          ? options.seed
          : DeriveExpandSeed(model.num_users(), model.num_items(), num_users,
                             num_items, model.k());
  Rng rng(seed);
  const double scale =
      options.init_scale / std::sqrt(static_cast<double>(model.k()));
  DenseMatrix fu = GrowRows(model.user_factors(), num_users, scale, &rng);
  DenseMatrix fi = GrowRows(model.item_factors(), num_items, scale, &rng);
  return OcularModel(std::move(fu), std::move(fi));
}

Result<OcularFitResult> UpdateModel(const OcularModel& model,
                                    const CsrMatrix& interactions,
                                    const OcularConfig& config,
                                    const ExpandOptions& options) {
  OCULAR_RETURN_IF_ERROR(config.Validate());
  if (config.TotalDims() != model.k()) {
    return Status::InvalidArgument(
        "config dimensions do not match the model being updated");
  }
  OCULAR_ASSIGN_OR_RETURN(
      OcularModel grown,
      ExpandModel(model, interactions.num_rows(), interactions.num_cols(),
                  options));
  // Bias extension: new rows must keep the pinned coordinate at exactly 1.
  if (config.use_biases) {
    DenseMatrix& fu = *grown.mutable_user_factors();
    for (uint32_t u = model.num_users(); u < fu.rows(); ++u) {
      fu.At(u, config.k + 1) = 1.0;
    }
    DenseMatrix& fi = *grown.mutable_item_factors();
    for (uint32_t i = model.num_items(); i < fi.rows(); ++i) {
      fi.At(i, config.k) = 1.0;
    }
  }
  OcularTrainer trainer(config);
  return trainer.FitFrom(interactions, std::move(grown));
}

}  // namespace ocular
