#ifndef OCULAR_CORE_MODEL_IO_H_
#define OCULAR_CORE_MODEL_IO_H_

#include <string>

#include "common/result.h"
#include "core/ocular_trainer.h"

namespace ocular {

/// On-disk model persistence.
///
/// Format: a versioned text file ("ocular-model v1") holding the training
/// configuration that produced the model plus both factor matrices at full
/// double precision ("%.17g" round-trips exactly). Text keeps the format
/// portable across endianness and easy to diff/inspect; factor files are
/// small (n * K doubles) relative to the training data.
///
///   ocular-model v1
///   k <K> lambda <l> variant <absolute|relative> biases <0|1>
///   users <n_u>
///   <dims numbers per line> ...   (dims = K, or K+2 with biases)
///   items <n_i>
///   <dims numbers per line> ...
///
/// Loaders also accept the older config line without the `biases` field.

/// Writes the model (and the config it was trained with) to `path`.
Status SaveModel(const OcularModel& model, const OcularConfig& config,
                 const std::string& path);

/// A loaded model plus its training configuration.
struct LoadedModel {
  OcularModel model;
  OcularConfig config;
};

/// Reads a model written by SaveModel. Fails with ParseError on any
/// malformed content and IOError on unreadable files.
Result<LoadedModel> LoadModel(const std::string& path);

}  // namespace ocular

#endif  // OCULAR_CORE_MODEL_IO_H_
