#ifndef OCULAR_CORE_MODEL_IO_H_
#define OCULAR_CORE_MODEL_IO_H_

#include <string>

#include "common/result.h"
#include "core/ocular_trainer.h"

namespace ocular {

/// \file
/// \brief On-disk model persistence, v1 text format.
///
/// The library has two model file formats; this header is the v1 TEXT
/// format, core/model_store.h is the v2 BINARY format. Choose by use:
///
/// - **v1 text** (`SaveModel`/`LoadModel`, this header): portable across
///   endianness, diffable, greppable, hand-editable. Loading PARSES every
///   factor entry (seconds of CPU at production catalog sizes, plus a full
///   in-memory copy), so use it for archival, debugging, and interchange —
///   not for serving. Factors are written "%.17g", which round-trips
///   doubles exactly, so converting between the formats is lossless.
/// - **v2 binary** ("OCLR", `SaveModelBinary`/`ModelStore::Open`): the
///   deployable artifact. Little-endian, 64-byte-aligned, checksummed
///   sections that mmap straight into the serving kernels — O(header)
///   open, zero copies, page-cache sharing across processes. Use it for
///   everything a daemon serves or hot-reloads.
///
/// `ocular_cli convert` translates between the two;
/// docs/MODEL_FORMAT.md holds both byte-level specifications.
///
/// v1 grammar (one header line, one config line, two matrices):
///
///   ocular-model v1
///   k <K> lambda <l> variant <absolute|relative> biases <0|1>
///   users <n_u>
///   <dims numbers per line> ...   (dims = K, or K+2 with biases)
///   items <n_i>
///   <dims numbers per line> ...
///
/// Loaders also accept the older config line without the `biases` field.

/// \brief Writes the model (and the config it was trained with) to `path`
/// in the v1 text format.
Status SaveModel(const OcularModel& model, const OcularConfig& config,
                 const std::string& path);

/// \brief A loaded model plus its training configuration.
struct LoadedModel {
  /// The factor matrices.
  OcularModel model;
  /// The configuration the model was trained with.
  OcularConfig config;
};

/// \brief Reads a model written by SaveModel. Fails with ParseError on any
/// malformed content and IOError on unreadable files. (For binary v2 files
/// use ModelStore::Open, or LoadModelAuto to sniff the format.)
Result<LoadedModel> LoadModel(const std::string& path);

}  // namespace ocular

#endif  // OCULAR_CORE_MODEL_IO_H_
