#ifndef OCULAR_CORE_MODEL_SHARD_H_
#define OCULAR_CORE_MODEL_SHARD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/model_store.h"
#include "sparse/dense.h"

namespace ocular {

/// \file
/// \brief User-sharded OCLR stores: one logical model split into N
/// user-range shard files behind a small `*.shardset` manifest.
///
/// The paper's factor model is embarrassingly partitionable by user: a
/// recommendation for user u reads exactly one row of F_user plus the
/// (shared) item factors, so the user matrix can be cut into contiguous
/// row ranges and each range persisted as its own OCLR v2 file. The item
/// factors — including the K x n_i transposed serving layout — live once
/// in a shared items file, NOT duplicated per shard; every shard file
/// carries only its user-factor section (its item sections are empty,
/// which the v2 format permits).
///
/// A `*.shardset` manifest (deterministic line-oriented text, see
/// docs/MODEL_FORMAT.md) names the members with their user ranges and
/// content fingerprints. Opening validates every member against the
/// manifest — fingerprint, header dimensions, range tiling — and refuses
/// with a distinct error per corruption class, so a torn or half-updated
/// shardset can never be served. Because each member is an independently
/// mmapped ModelStore, a single touched shard can be rewritten and
/// republished without reopening (or even re-reading) its siblings —
/// serving/registry.h builds its per-shard generation swap on exactly
/// that property.

/// \brief Pure user → shard routing over contiguous user ranges.
///
/// Shard s owns the half-open range [begin(s), end(s)); ranges tile
/// [0, num_users) with no gaps and no empty shards. The table is a few
/// words, routing is one branch-free upper_bound — cheap enough to sit on
/// the per-request serving path. Value type; a default-constructed map is
/// empty (0 shards, 0 users) and routes nothing.
class ShardMap {
 public:
  /// \brief Splits `num_users` into `num_shards` contiguous ranges whose
  /// sizes differ by at most one (the first `num_users % num_shards`
  /// shards take the extra user). InvalidArgument when `num_shards` is 0
  /// or exceeds `num_users` (some shard would be empty).
  static Result<ShardMap> EvenSplit(uint32_t num_users, uint32_t num_shards);

  /// \brief Builds a map from explicit range starts: `begins[s]` is the
  /// first user of shard s, so begins must start at 0 and be strictly
  /// increasing below `num_users`. InvalidArgument on empty input, a
  /// nonzero first begin, or any empty shard (non-increasing begins or a
  /// final begin at/after num_users).
  static Result<ShardMap> FromBoundaries(std::vector<uint32_t> begins,
                                         uint32_t num_users);

  ShardMap() = default;

  /// Number of shards (0 for a default-constructed map).
  uint32_t num_shards() const { return static_cast<uint32_t>(begins_.size()); }
  /// Total users routed.
  uint32_t num_users() const { return num_users_; }
  /// First user of shard `s`. Precondition: s < num_shards().
  uint32_t begin(uint32_t s) const { return begins_[s]; }
  /// One past the last user of shard `s`. Precondition: s < num_shards().
  uint32_t end(uint32_t s) const {
    return s + 1 < begins_.size() ? begins_[s + 1] : num_users_;
  }
  /// The shard owning `user`. Precondition: user < num_users().
  uint32_t shard_of(uint32_t user) const;

  friend bool operator==(const ShardMap& a, const ShardMap& b) = default;

 private:
  std::vector<uint32_t> begins_;  // begins_[s] = first user of shard s
  uint32_t num_users_ = 0;
};

/// \brief One shard file as recorded in a manifest.
struct ShardSetEntry {
  uint32_t user_begin = 0;   ///< first user of the shard
  uint32_t user_end = 0;     ///< one past the last user
  std::string file;          ///< file name, relative to the manifest's dir
  uint64_t fingerprint = 0;  ///< fs::FileFingerprint of the file
};

/// \brief Parsed `*.shardset` manifest.
struct ShardSetManifest {
  uint32_t num_users = 0;  ///< users across all shards
  uint32_t num_items = 0;  ///< items of the shared items file
  uint32_t k = 0;          ///< factor dimension of every member
  std::string split = "user-range";  ///< split rule tag
  std::string items_file;            ///< shared items file, relative name
  uint64_t items_fingerprint = 0;    ///< fingerprint of the items file
  std::vector<ShardSetEntry> shards;

  /// \brief The routing table implied by the shard ranges. InvalidArgument
  /// when the ranges do not tile [0, num_users).
  Result<ShardMap> Map() const;
};

/// \brief True when `path` starts with the shardset magic line — the
/// format-sniffing counterpart of IsBinaryModelFile.
bool IsShardSetFile(const std::string& path);

/// \brief Resolves a manifest-relative member name against the manifest's
/// directory ("/models/a.shardset" + "a.shard-000.oclr" →
/// "/models/a.shard-000.oclr").
std::string ShardSetResolve(const std::string& manifest_path,
                            const std::string& file);

/// \brief Parses a manifest. IOError on unreadable files; ParseError (each
/// with a distinct message) on bad magic, truncation, a shard-count
/// disagreement, malformed lines, or ranges that do not tile the user
/// space. Does NOT touch the member files — OpenShardSet does.
Result<ShardSetManifest> LoadShardSetManifest(const std::string& path);

/// \brief Writes `manifest` in the canonical text form (not durable by
/// itself — publish paths write to a temp name and DurableRename).
Status SaveShardSetManifest(const ShardSetManifest& manifest,
                            const std::string& path);

/// \brief Checks one member file against its manifest fingerprint:
/// IOError when the file is missing/unreadable, ParseError ("fingerprint
/// mismatch") when its content changed since the manifest was written.
Status CheckShardSetMember(const std::string& manifest_path,
                           const std::string& file, uint64_t expected);

/// \brief Validates the shared items file's header against the manifest
/// (no users, exactly num_items items, matching k). ParseError ("header
/// disagrees") otherwise.
Status ValidateItemsHeader(const ShardSetManifest& manifest,
                           const ModelStore& store);

/// \brief Validates shard `index`'s header against its manifest range
/// (exactly user_end-user_begin users, no items, matching k). ParseError
/// ("header disagrees") otherwise.
Status ValidateShardHeader(const ShardSetManifest& manifest, size_t index,
                           const ModelStore& store);

/// \brief A fully opened shardset: every member mmapped and validated.
///
/// Members are shared_ptr so a later partial reopen (registry reload, the
/// daemon's per-shard update republish) can alias the untouched stores
/// into a new generation instead of remapping them.
struct ShardSetStores {
  ShardSetManifest manifest;
  ShardMap map;
  std::shared_ptr<const ModelStore> items;
  std::vector<std::shared_ptr<const ModelStore>> shards;
};

/// \brief Opens and validates every member of a shardset. IOError for
/// unreadable members; ParseError (distinct messages) for fingerprint
/// mismatches and manifest/header disagreements.
Result<ShardSetStores> OpenShardSet(const std::string& manifest_path,
                                    const ModelStoreOptions& options = {});

/// \brief Writes one shard's user-factor slice as an OCLR v2 shard file
/// (user section only, empty item sections) — the per-shard republish
/// path of the daemon's sharded update.
Status SaveShardUserFactors(const BinaryModelMeta& meta,
                            ConstMatrixView users_slice,
                            const std::string& path);

/// \brief Produces the factor row of `user` into `out` (length k) — how
/// WriteShardSetStreaming pulls user rows without the caller ever holding
/// the full user matrix.
using ShardRowFn = std::function<void(uint32_t user, std::span<double> out)>;

/// \brief Streams a shardset to disk: the shared items file first, then
/// one shard at a time with rows pulled from `row_fn`, then the manifest.
/// Peak memory is one shard's factor block — what lets the scale tooling
/// write a multi-million-user catalog on a small machine. `items_t` must
/// be the K x n_i transposed layout of `items`. The manifest lands last,
/// so a crash mid-write leaves no openable shardset.
Status WriteShardSetStreaming(const BinaryModelMeta& meta, const ShardMap& map,
                              ConstMatrixView items, ConstMatrixView items_t,
                              const ShardRowFn& row_fn,
                              const std::string& manifest_path);

/// \brief Materializes an owning OcularModel + config from an opened
/// shardset by gathering every shard's user rows and the shared item
/// factors (an O(model) copy — for offline tooling like `ocular_cli
/// recommend/explain` on a manifest; the serving path keeps the members
/// mmapped instead). LoadModelAuto routes manifests here, so every
/// model-file CLI surface accepts a shardset transparently. Fails unless
/// the set holds an OCuLaR-family model.
Result<LoadedModel> MaterializeShardSetOcular(const ShardSetStores& set);

/// \brief Splits an in-memory factor pair into `num_shards` user-range
/// shards: `<stem>.items.oclr`, `<stem>.shard-NNN.oclr` and the manifest
/// at `manifest_path` (stem = manifest_path minus its ".shardset"
/// suffix). This is `ocular_cli shard`'s save path.
Status SaveModelSharded(const BinaryModelMeta& meta, ConstMatrixView users,
                        ConstMatrixView items, ConstMatrixView items_t,
                        uint32_t num_shards, const std::string& manifest_path);

}  // namespace ocular

#endif  // OCULAR_CORE_MODEL_SHARD_H_
