#ifndef OCULAR_CORE_FOLD_IN_H_
#define OCULAR_CORE_FOLD_IN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/ocular_trainer.h"
#include "eval/recommender.h"

namespace ocular {

/// Fold-in inference: compute the affiliation vector of a NEW user from
/// their purchase history, holding the fitted item factors fixed.
///
/// This is the production-serving counterpart of training (in the paper's
/// B2B deployment a new client's history must be scorable without
/// retraining the whole model): the user block subproblem of Section IV-B
/// is solved for one row, by iterating the same projected-gradient step
/// the trainer uses until the block objective converges. With lambda > 0
/// the subproblem is strongly convex, so this converges to its unique
/// minimizer.
struct FoldInOptions {
  /// Projected-gradient iterations cap for the single-row solve.
  uint32_t max_steps = 200;
  /// Stop when the block objective's relative decrease falls below this.
  double tolerance = 1e-8;
};

/// Per-model fold-in state, built ONCE per published model generation and
/// shared (read-only) by every fold-in request against it: the item-factor
/// views in both layouts, the Σ_i f_i column sums the single-row solve
/// needs, and the deterministic popularity ranking used as the fallback
/// for histories that carry no signal. The viewed factor memory (an
/// OcularModel or an mmapped ModelStore section) must outlive the context.
struct FoldInContext {
  OcularConfig config;
  /// Item factors, n_i x dims row-major (dims == config.TotalDims()).
  ConstMatrixView items;
  /// Item factors transposed, dims x n_i — the serving-layout view the
  /// blocked affinity kernel streams.
  ConstMatrixView items_t;
  /// ColumnSums(items): Σ_i f_i, shared by every fold-in solve.
  std::vector<double> item_sums;
  /// Fallback ranking scores, length n_i: interaction counts when built
  /// from a training matrix, otherwise the expected affinity
  /// <Σ_u f_u, f_i>. Ranked with the engine's deterministic tie-break.
  std::vector<double> popularity;
  /// Backing storage for `items_t` when the caller has no transposed
  /// layout (contexts built from an OcularModel).
  DenseMatrix owned_items_t;

  uint32_t num_items() const { return items.rows(); }
  uint32_t dims() const { return items.cols(); }
};

/// Builds a context from borrowed factor views (e.g. the mmapped sections
/// of a ModelStore — zero copies). `popularity` (length items.rows()) is
/// the fallback ranking source; pass empty to derive the expected-affinity
/// ranking from `user_factors`.
Result<FoldInContext> MakeFoldInContext(ConstMatrixView user_factors,
                                        ConstMatrixView items,
                                        ConstMatrixView items_t,
                                        const OcularConfig& config,
                                        std::span<const double> popularity = {});

/// Builds a context from an in-memory model (owns a transposed copy of the
/// item factors). The model must outlive the context.
Result<FoldInContext> MakeFoldInContext(const OcularModel& model,
                                        const OcularConfig& config,
                                        std::span<const double> popularity = {});

/// Statistics of one SanitizeHistory pass.
struct HistorySanitizeResult {
  /// Ids >= num_items removed (surfaced as a warning count in serving
  /// stats — silently scoring a phantom item would hide client bugs).
  size_t dropped_out_of_range = 0;
};

/// Normalizes a client-supplied history into the solver's contract: sorts
/// ascending, drops ids outside [0, num_items), and removes duplicates —
/// all in place, allocation-free. Wire input is untrusted; the strict
/// FoldInUser precondition (strictly ascending, in range) is an internal
/// invariant, not a reasonable client contract.
HistorySanitizeResult SanitizeHistory(std::vector<uint32_t>* history,
                                      uint32_t num_items);

/// Per-request fold-in scratch. After Reserve() (or one warm-up request of
/// maximal history length) repeated solves perform zero heap allocations.
struct FoldInWorkspace {
  std::vector<double> f;           ///< the folded user factor, dims
  std::vector<double> complement;  ///< Σ_{r=0} f_i scratch, dims
  internal::BlockWorkspace block;  ///< single-row solver scratch

  void Reserve(uint32_t dims, size_t max_history) {
    f.resize(dims);
    complement.resize(dims);
    block.Reserve(dims, max_history);
  }
};

/// Allocation-free fold-in solve: computes f_u for the (sanitized:
/// strictly ascending, in-range) `history` into ws->f. An empty history
/// yields the all-zeros vector; RecommendForHistoryInto turns that into
/// the popularity fallback.
Status FoldInUserInto(const FoldInContext& ctx,
                      std::span<const uint32_t> history,
                      const FoldInOptions& options, FoldInWorkspace* ws);

/// Computes f_u (length model.k()) for a user whose positive items are
/// `history` (ascending item ids). Items outside [0, num_items) are
/// rejected. An empty history yields the all-zeros vector (every score 0).
/// Convenience wrapper over FoldInUserInto with one-off context/scratch;
/// request-serving paths hold a FoldInContext + FoldInWorkspace instead.
Result<std::vector<double>> FoldInUser(const OcularModel& model,
                                       const OcularConfig& config,
                                       std::span<const uint32_t> history,
                                       const FoldInOptions& options = {});

/// P[r_ui = 1] for a folded-in user vector.
double ScoreFoldedUser(const OcularModel& model,
                       std::span<const double> user_factor, uint32_t item);

/// Adapter presenting one folded-in user factor as a single-user
/// Recommender, so the fold-in serving path runs through the SAME blocked
/// engine (RecommendBlockedInto / ServeTopM) as every other serve path:
/// raw ranking on the affinity <f, f_i> via the blocked kernel, the
/// 1 - e^{-x} probability map applied only to the kept survivors.
/// Bit-identical to the per-item ScoreFoldedUser loop (vec::AffinityBlock
/// guarantees per-item dot equality).
class FoldedUserRecommender : public Recommender {
 public:
  /// Both the context and the factor span must outlive the adapter.
  FoldedUserRecommender(const FoldInContext* ctx, std::span<const double> f)
      : ctx_(ctx), f_(f) {}

  std::string name() const override { return "OCuLaR-foldin"; }
  Status Fit(const CsrMatrix&) override {
    return Status::InvalidArgument("folded-in users are not trainable");
  }
  double Score(uint32_t u, uint32_t i) const override;
  void ScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                  std::span<double> out) const override;
  void RawScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                     std::span<double> out) const override;
  double ScoreFromRaw(double raw) const override;
  uint32_t num_items() const override { return ctx_->num_items(); }
  uint32_t num_users() const override { return 1; }

 private:
  const FoldInContext* ctx_;
  std::span<const double> f_;
};

/// One history-based recommendation, best-first in the bound selection
/// buffer (valid until the scratch is reused).
struct HistoryRecommendation {
  std::span<const ScoredItem> items;
  /// False when the history carried no signal (empty after sanitization,
  /// or folded to the all-zeros factor) and the deterministic popularity
  /// fallback ranked instead — an all-zero score vector would otherwise
  /// return an arbitrary tie-ordered prefix of the catalog.
  bool folded = false;
};

/// Top-`m` recommendations for a SANITIZED history through the blocked
/// engine: fold the user in (ws->f), then rank every item not in `history`
/// exactly like ServeTopM does for stored users. `min_score` follows the
/// ServeOptions convention (0 = unfiltered; ignored by the popularity
/// fallback, whose scores are counts, not probabilities). `tile` and
/// `selection` are the caller's serve scratch (a ServeWorkspace's members
/// in the daemon). Allocation-free at steady state.
Result<HistoryRecommendation> RecommendForHistoryInto(
    const FoldInContext& ctx, std::span<const uint32_t> history, uint32_t m,
    double min_score, uint32_t block_items, const FoldInOptions& options,
    FoldInWorkspace* ws, std::vector<double>* tile,
    std::vector<ScoredItem>* selection);

/// Top-M recommendations for a purchase history: folds the user in, then
/// ranks all items not in `history`. Convenience wrapper over
/// RecommendForHistoryInto (one-off context and scratch) — same blocked
/// engine, same popularity fallback for empty histories.
Result<std::vector<ScoredItem>> RecommendForHistory(
    const OcularModel& model, const OcularConfig& config,
    std::span<const uint32_t> history, uint32_t m,
    const FoldInOptions& options = {});

}  // namespace ocular

#endif  // OCULAR_CORE_FOLD_IN_H_
