#ifndef OCULAR_CORE_FOLD_IN_H_
#define OCULAR_CORE_FOLD_IN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/ocular_trainer.h"
#include "eval/recommender.h"

namespace ocular {

/// Fold-in inference: compute the affiliation vector of a NEW user from
/// their purchase history, holding the fitted item factors fixed.
///
/// This is the production-serving counterpart of training (in the paper's
/// B2B deployment a new client's history must be scorable without
/// retraining the whole model): the user block subproblem of Section IV-B
/// is solved for one row, by iterating the same projected-gradient step
/// the trainer uses until the block objective converges. With lambda > 0
/// the subproblem is strongly convex, so this converges to its unique
/// minimizer.
struct FoldInOptions {
  /// Projected-gradient iterations cap for the single-row solve.
  uint32_t max_steps = 200;
  /// Stop when the block objective's relative decrease falls below this.
  double tolerance = 1e-8;
};

/// Computes f_u (length model.k()) for a user whose positive items are
/// `history` (ascending item ids). Items outside [0, num_items) are
/// rejected. An empty history yields the all-zeros vector (every score 0).
Result<std::vector<double>> FoldInUser(const OcularModel& model,
                                       const OcularConfig& config,
                                       std::span<const uint32_t> history,
                                       const FoldInOptions& options = {});

/// P[r_ui = 1] for a folded-in user vector.
double ScoreFoldedUser(const OcularModel& model,
                       std::span<const double> user_factor, uint32_t item);

/// Top-M recommendations for a purchase history: folds the user in, then
/// ranks all items not in `history`.
Result<std::vector<ScoredItem>> RecommendForHistory(
    const OcularModel& model, const OcularConfig& config,
    std::span<const uint32_t> history, uint32_t m,
    const FoldInOptions& options = {});

}  // namespace ocular

#endif  // OCULAR_CORE_FOLD_IN_H_
