#include "core/early_stopping.h"

#include "eval/metrics.h"

namespace ocular {

Status EarlyStoppingOptions::Validate() const {
  if (check_every == 0) {
    return Status::InvalidArgument("check_every must be positive");
  }
  if (max_sweeps < check_every) {
    return Status::InvalidArgument("max_sweeps must be >= check_every");
  }
  if (m == 0) return Status::InvalidArgument("m must be positive");
  return Status::OK();
}

namespace {

/// Minimal Recommender view over a model (no training state).
class ModelView : public Recommender {
 public:
  explicit ModelView(const OcularModel* model) : model_(model) {}
  std::string name() const override { return "ocular-view"; }
  Status Fit(const CsrMatrix&) override {
    return Status::FailedPrecondition("view is read-only");
  }
  double Score(uint32_t u, uint32_t i) const override {
    return model_->Probability(u, i);
  }
  uint32_t num_users() const override { return model_->num_users(); }
  uint32_t num_items() const override { return model_->num_items(); }

 private:
  const OcularModel* model_;
};

}  // namespace

Result<EarlyStoppedFit> FitWithEarlyStopping(
    const OcularConfig& config, const CsrMatrix& train,
    const CsrMatrix& validation, const EarlyStoppingOptions& options) {
  OCULAR_RETURN_IF_ERROR(config.Validate());
  OCULAR_RETURN_IF_ERROR(options.Validate());
  if (train.num_rows() != validation.num_rows() ||
      train.num_cols() != validation.num_cols()) {
    return Status::InvalidArgument("train/validation shape mismatch");
  }
  if (validation.nnz() == 0) {
    return Status::InvalidArgument("validation matrix has no positives");
  }

  OcularConfig chunk_config = config;
  chunk_config.max_sweeps = options.check_every;
  chunk_config.tolerance = 0.0;         // always run the full chunk
  chunk_config.track_objective = false;  // ranking quality is the signal
  OcularTrainer trainer(chunk_config);

  EarlyStoppedFit out;
  OcularModel current;
  uint32_t stall = 0;
  bool first = true;
  while (out.sweeps_run < options.max_sweeps) {
    OcularFitResult fit;
    if (first) {
      OCULAR_ASSIGN_OR_RETURN(fit, trainer.Fit(train));
      first = false;
    } else {
      OCULAR_ASSIGN_OR_RETURN(fit, trainer.FitFrom(train, std::move(current)));
    }
    current = std::move(fit.model);
    out.sweeps_run += fit.sweeps_run;

    ModelView view(&current);
    OCULAR_ASSIGN_OR_RETURN(
        MetricsAtM metrics,
        EvaluateRankingAtM(view, train, validation, options.m));
    out.validation_curve.push_back(metrics.recall);
    if (metrics.recall > out.best_recall) {
      out.best_recall = metrics.recall;
      out.best_sweep = out.sweeps_run;
      out.model = current;  // snapshot (copy)
      stall = 0;
    } else if (++stall >= options.patience) {
      break;
    }
  }
  if (out.model.num_users() == 0) out.model = std::move(current);
  return out;
}

}  // namespace ocular
