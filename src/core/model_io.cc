#include "core/model_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace ocular {

namespace {

constexpr char kMagic[] = "ocular-model v1";

Status WriteMatrix(std::ofstream& out, const char* label,
                   const DenseMatrix& m) {
  out << label << " " << m.rows() << "\n";
  char buf[32];
  for (uint32_t r = 0; r < m.rows(); ++r) {
    auto row = m.Row(r);
    for (uint32_t c = 0; c < m.cols(); ++c) {
      std::snprintf(buf, sizeof(buf), "%.17g", row[c]);
      if (c > 0) out << ' ';
      out << buf;
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failure");
  return Status::OK();
}

Result<DenseMatrix> ReadMatrix(std::ifstream& in, const char* label,
                               uint32_t k) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("unexpected EOF before matrix header");
  }
  auto fields = SplitAny(line, " \t");
  if (fields.size() != 2 || fields[0] != label) {
    return Status::ParseError("expected '" + std::string(label) +
                              " <rows>', got '" + line + "'");
  }
  OCULAR_ASSIGN_OR_RETURN(int64_t rows, ParseInt64(fields[1]));
  if (rows < 0) return Status::ParseError("negative row count");
  DenseMatrix m(static_cast<uint32_t>(rows), k);
  for (int64_t r = 0; r < rows; ++r) {
    if (!std::getline(in, line)) {
      return Status::ParseError("unexpected EOF in matrix body");
    }
    auto values = SplitAny(line, " \t");
    if (values.size() != k) {
      return Status::ParseError("row " + std::to_string(r) + " has " +
                                std::to_string(values.size()) +
                                " entries, expected " + std::to_string(k));
    }
    for (uint32_t c = 0; c < k; ++c) {
      OCULAR_ASSIGN_OR_RETURN(double v, ParseDouble(values[c]));
      if (v < 0.0) {
        return Status::ParseError("negative factor entry at row " +
                                  std::to_string(r));
      }
      m.At(static_cast<uint32_t>(r), c) = v;
    }
  }
  return m;
}

}  // namespace

Status SaveModel(const OcularModel& model, const OcularConfig& config,
                 const std::string& path) {
  OCULAR_RETURN_IF_ERROR(model.Validate());
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  if (model.k() != config.TotalDims()) {
    return Status::InvalidArgument(
        "model dimensions do not match the config being saved (did you "
        "forget use_biases?)");
  }
  out << kMagic << "\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", config.lambda);
  out << "k " << config.k << " lambda " << buf << " variant "
      << (config.variant == OcularVariant::kRelative ? "relative"
                                                     : "absolute")
      << " biases " << (config.use_biases ? 1 : 0) << "\n";
  OCULAR_RETURN_IF_ERROR(WriteMatrix(out, "users", model.user_factors()));
  OCULAR_RETURN_IF_ERROR(WriteMatrix(out, "items", model.item_factors()));
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

Result<LoadedModel> LoadModel(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line) || Trim(line) != kMagic) {
    return Status::ParseError("bad magic; not an ocular model file");
  }
  if (!std::getline(in, line)) {
    return Status::ParseError("missing config line");
  }
  auto fields = SplitAny(line, " \t");
  // Accept both the current 8-field line ("... biases 0|1") and the
  // pre-bias 6-field format.
  const bool has_biases_field = fields.size() == 8;
  if ((fields.size() != 6 && fields.size() != 8) || fields[0] != "k" ||
      fields[2] != "lambda" || fields[4] != "variant" ||
      (has_biases_field && fields[6] != "biases")) {
    return Status::ParseError("malformed config line: '" + line + "'");
  }
  LoadedModel out;
  OCULAR_ASSIGN_OR_RETURN(int64_t k, ParseInt64(fields[1]));
  if (k <= 0) return Status::ParseError("k must be positive");
  out.config.k = static_cast<uint32_t>(k);
  OCULAR_ASSIGN_OR_RETURN(out.config.lambda, ParseDouble(fields[3]));
  if (fields[5] == "relative") {
    out.config.variant = OcularVariant::kRelative;
  } else if (fields[5] == "absolute") {
    out.config.variant = OcularVariant::kAbsolute;
  } else {
    return Status::ParseError("unknown variant '" + std::string(fields[5]) +
                              "'");
  }
  if (has_biases_field) {
    OCULAR_ASSIGN_OR_RETURN(int64_t biases, ParseInt64(fields[7]));
    if (biases != 0 && biases != 1) {
      return Status::ParseError("biases flag must be 0 or 1");
    }
    out.config.use_biases = biases == 1;
  }
  const uint32_t dims = out.config.TotalDims();
  OCULAR_ASSIGN_OR_RETURN(DenseMatrix users, ReadMatrix(in, "users", dims));
  OCULAR_ASSIGN_OR_RETURN(DenseMatrix items, ReadMatrix(in, "items", dims));
  out.model = OcularModel(std::move(users), std::move(items));
  return out;
}

}  // namespace ocular
