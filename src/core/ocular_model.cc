#include "core/ocular_model.h"

#include <cmath>

#include "common/logging.h"

namespace ocular {

namespace {
/// Probability floor: keeps log(1 - e^{-x}) finite when an affinity
/// underflows to 0 (a positive example the model currently assigns ~zero
/// probability).
constexpr double kProbFloor = 1e-12;
}  // namespace

OcularModel::OcularModel(DenseMatrix user_factors, DenseMatrix item_factors)
    : user_factors_(std::move(user_factors)),
      item_factors_(std::move(item_factors)) {
  OCULAR_CHECK_EQ(user_factors_.cols(), item_factors_.cols());
}

double OcularModel::Probability(uint32_t u, uint32_t i) const {
  return -std::expm1(-Affinity(u, i));
}

std::vector<double> OcularModel::ClusterContributions(uint32_t u,
                                                      uint32_t i) const {
  auto fu = user_factors_.Row(u);
  auto fi = item_factors_.Row(i);
  std::vector<double> out(k());
  for (uint32_t c = 0; c < k(); ++c) out[c] = fu[c] * fi[c];
  return out;
}

size_t OcularModel::MemoryBytes() const {
  return (user_factors_.size() + item_factors_.size()) * sizeof(double);
}

Status OcularModel::Validate() const {
  for (const DenseMatrix* m : {&user_factors_, &item_factors_}) {
    const double* p = m->data();
    for (size_t idx = 0; idx < m->size(); ++idx) {
      if (!(p[idx] >= 0.0) || !std::isfinite(p[idx])) {
        return Status::Internal("factor entry " + std::to_string(idx) +
                                " is negative or non-finite: " +
                                std::to_string(p[idx]));
      }
    }
  }
  return Status::OK();
}

double ObjectiveQ(const OcularModel& model, const CsrMatrix& interactions,
                  double lambda, const std::vector<double>& user_weights) {
  const DenseMatrix& fu = model.user_factors();
  const DenseMatrix& fi = model.item_factors();

  // Positives: -Σ w_u log(1 - e^{-<fu,fi>}), and collect Σ_pos <fu,fi> for
  // the complement trick.
  double positives = 0.0;
  double pos_dots = 0.0;
  for (uint32_t u = 0; u < interactions.num_rows(); ++u) {
    const double w = user_weights.empty() ? 1.0 : user_weights[u];
    auto fu_row = fu.Row(u);
    for (uint32_t i : interactions.Row(u)) {
      const double dot = vec::Dot(fu_row, fi.Row(i));
      pos_dots += dot;
      const double p = std::max(-std::expm1(-dot), kProbFloor);
      positives -= w * std::log(p);
    }
  }
  // Unknowns: Σ_{r=0} <fu,fi> = <Σ_u fu, Σ_i fi> - Σ_pos <fu,fi>.
  const std::vector<double> user_sums = fu.ColumnSums();
  const std::vector<double> item_sums = fi.ColumnSums();
  const double all_dots = vec::Dot(user_sums, item_sums);
  const double unknowns = all_dots - pos_dots;

  const double reg =
      lambda * (fu.SquaredFrobeniusNorm() + fi.SquaredFrobeniusNorm());
  return positives + unknowns + reg;
}

}  // namespace ocular
