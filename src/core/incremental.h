#ifndef OCULAR_CORE_INCREMENTAL_H_
#define OCULAR_CORE_INCREMENTAL_H_

#include "common/result.h"
#include "core/ocular_trainer.h"

namespace ocular {

/// Incremental model maintenance for a live deployment (Section VIII):
/// new clients sign up, new products launch, and new purchases arrive
/// daily — retraining from scratch wastes the previous solution. This
/// module grows a fitted model to a larger catalog and warm-starts the
/// trainer from it, which converges in a fraction of the cold-start
/// sweeps (verified in tests and the deployment example).

/// Options for growing a model to a new shape.
struct ExpandOptions {
  /// New rows are initialized iid Uniform(0, init_scale / sqrt(K)) — the
  /// same distribution the cold trainer uses.
  double init_scale = 1.0;
  /// Seed of the new-row initialization stream. 0 (the default) derives
  /// the seed from the old and new model shapes, so successive expansions
  /// of a growing catalog draw from decorrelated streams (a constant seed
  /// would hand every daily update batch the identical "random" rows)
  /// while each individual call stays deterministic. Nonzero pins the
  /// stream explicitly for reproducibility.
  uint64_t seed = 0;
};

/// The shape-derived stream seed ExpandModel uses when options.seed == 0 —
/// exposed so tests (and operators replaying an update) can reproduce it.
uint64_t DeriveExpandSeed(uint32_t old_users, uint32_t old_items,
                          uint32_t num_users, uint32_t num_items, uint32_t k);

/// Returns a copy of `model` grown to (num_users, num_items); existing
/// factors are preserved, new rows initialized randomly. Shrinking is an
/// error (retrain instead — factor rows cannot be meaningfully dropped).
Result<OcularModel> ExpandModel(const OcularModel& model, uint32_t num_users,
                                uint32_t num_items,
                                const ExpandOptions& options = {});

/// Warm-start update: grows `model` to the shape of `interactions` (which
/// may contain new users/items appended after the old id range) and runs
/// the trainer from it. `config.max_sweeps` bounds the refresh cost; a
/// handful of sweeps typically suffices because the old factors are
/// already near-stationary.
Result<OcularFitResult> UpdateModel(const OcularModel& model,
                                    const CsrMatrix& interactions,
                                    const OcularConfig& config,
                                    const ExpandOptions& options = {});

}  // namespace ocular

#endif  // OCULAR_CORE_INCREMENTAL_H_
