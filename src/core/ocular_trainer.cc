#include "core/ocular_trainer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/timer.h"

namespace ocular {

namespace {
/// Floor on affinities inside log/ratio terms; keeps 1/(e^x - 1) finite as
/// x -> 0 (the gradient then pushes hard, but boundedly, toward explaining
/// the positive example).
constexpr double kAffinityFloor = 1e-12;
constexpr double kProbFloor = 1e-12;
}  // namespace

Status OcularConfig::Validate() const {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  if (max_sweeps == 0) {
    return Status::InvalidArgument("max_sweeps must be positive");
  }
  if (armijo_beta <= 0.0 || armijo_beta >= 1.0) {
    return Status::InvalidArgument("armijo_beta must be in (0,1)");
  }
  if (armijo_sigma <= 0.0 || armijo_sigma >= 1.0) {
    return Status::InvalidArgument("armijo_sigma must be in (0,1)");
  }
  if (initial_step <= 0.0) {
    return Status::InvalidArgument("initial_step must be positive");
  }
  if (init_scale <= 0.0) {
    return Status::InvalidArgument("init_scale must be positive");
  }
  if (tolerance < 0.0) {
    return Status::InvalidArgument("tolerance must be >= 0");
  }
  if (block_steps == 0) {
    return Status::InvalidArgument("block_steps must be positive");
  }
  return Status::OK();
}

namespace internal {

double BlockObjective(std::span<const double> f,
                      std::span<const uint32_t> neighbors,
                      const DenseMatrix& other,
                      std::span<const double> complement_sum, double lambda,
                      double pos_weight,
                      std::span<const double> per_neighbor_weights) {
  double q = 0.0;
  for (size_t n = 0; n < neighbors.size(); ++n) {
    const double w =
        per_neighbor_weights.empty() ? pos_weight : per_neighbor_weights[n];
    const double dot = vec::Dot(other.Row(neighbors[n]), f);
    const double p = std::max(-std::expm1(-dot), kProbFloor);
    q -= w * std::log(p);
  }
  q += vec::Dot(f, complement_sum);
  q += lambda * vec::SquaredNorm(f);
  return q;
}

int ProjectedGradientStep(std::span<double> f,
                          std::span<const uint32_t> neighbors,
                          const DenseMatrix& other,
                          std::span<const double> other_sums, double lambda,
                          double pos_weight,
                          std::span<const double> per_neighbor_weights,
                          const OcularConfig& config, int frozen_coord) {
  const size_t k = f.size();
  // Σ_{r=0} f_n = Σ_all f_n − Σ_pos f_n  (the Section IV-D trick).
  std::vector<double> complement(other_sums.begin(), other_sums.end());
  for (uint32_t n : neighbors) {
    auto row = other.Row(n);
    for (size_t c = 0; c < k; ++c) complement[c] -= row[c];
  }

  // Gradient (eq. 6): complement + 2λf − Σ_pos w_n f_n / (e^{<f_n,f>} − 1).
  std::vector<double> grad(complement.begin(), complement.end());
  for (size_t c = 0; c < k; ++c) grad[c] += 2.0 * lambda * f[c];
  for (size_t n = 0; n < neighbors.size(); ++n) {
    const double w =
        per_neighbor_weights.empty() ? pos_weight : per_neighbor_weights[n];
    auto row = other.Row(neighbors[n]);
    const double dot = std::max(vec::Dot(row, f), kAffinityFloor);
    const double coef = w / std::expm1(dot);
    for (size_t c = 0; c < k; ++c) grad[c] -= coef * row[c];
  }
  // A frozen coordinate (bias extension) never moves; masking its gradient
  // keeps the Armijo line search exact for the remaining coordinates.
  if (frozen_coord >= 0 && static_cast<size_t>(frozen_coord) < k) {
    grad[static_cast<size_t>(frozen_coord)] = 0.0;
  }

  return ArmijoStep(f, grad, neighbors, other, complement, lambda,
                    pos_weight, per_neighbor_weights, config);
}

int ArmijoStep(std::span<double> f, std::span<const double> grad,
               std::span<const uint32_t> neighbors, const DenseMatrix& other,
               std::span<const double> complement_sum, double lambda,
               double pos_weight,
               std::span<const double> per_neighbor_weights,
               const OcularConfig& config) {
  const size_t k = f.size();
  const double q0 = BlockObjective(f, neighbors, other, complement_sum,
                                   lambda, pos_weight, per_neighbor_weights);
  std::vector<double> trial(k);
  double alpha = config.initial_step;
  for (uint32_t t = 0; t <= config.max_backtracks; ++t) {
    for (size_t c = 0; c < k; ++c) {
      trial[c] = std::max(0.0, f[c] - alpha * grad[c]);
    }
    const double q1 =
        BlockObjective(trial, neighbors, other, complement_sum, lambda,
                       pos_weight, per_neighbor_weights);
    double descent = 0.0;  // <grad, trial - f>
    for (size_t c = 0; c < k; ++c) descent += grad[c] * (trial[c] - f[c]);
    if (q1 - q0 <= config.armijo_sigma * descent) {
      std::copy(trial.begin(), trial.end(), f.begin());
      return static_cast<int>(t);
    }
    alpha *= config.armijo_beta;
  }
  return -1;  // line search failed; keep f unchanged
}

}  // namespace internal

std::vector<double> OcularTrainer::UserWeights(
    const CsrMatrix& interactions) const {
  std::vector<double> w(interactions.num_rows(), 1.0);
  if (config_.variant != OcularVariant::kRelative) return w;
  const double n_items = interactions.num_cols();
  for (uint32_t u = 0; u < interactions.num_rows(); ++u) {
    const double pos = interactions.RowDegree(u);
    // w_u = |{i: r_ui = 0}| / |{i: r_ui = 1}|. Users with no positives
    // contribute no positive terms; leave their (unused) weight at 1.
    if (pos > 0.0) w[u] = (n_items - pos) / pos;
  }
  return w;
}

Result<OcularFitResult> OcularTrainer::Fit(
    const CsrMatrix& interactions) const {
  OCULAR_RETURN_IF_ERROR(config_.Validate());
  Rng rng(config_.seed);
  const double scale =
      config_.init_scale / std::sqrt(static_cast<double>(config_.k));
  const uint32_t dims = config_.TotalDims();
  DenseMatrix fu(interactions.num_rows(), dims);
  DenseMatrix fi(interactions.num_cols(), dims);
  fu.FillUniform(&rng, 0.0, scale);
  fi.FillUniform(&rng, 0.0, scale);
  if (config_.use_biases) {
    // Dim k: user bias (item side pinned at 1). Dim k+1: item bias (user
    // side pinned at 1). Free bias coordinates start small.
    for (uint32_t u = 0; u < fu.rows(); ++u) {
      fu.At(u, config_.k) = rng.Uniform(0.0, 0.1);
      fu.At(u, config_.k + 1) = 1.0;
    }
    for (uint32_t i = 0; i < fi.rows(); ++i) {
      fi.At(i, config_.k) = 1.0;
      fi.At(i, config_.k + 1) = rng.Uniform(0.0, 0.1);
    }
  }
  return FitFrom(interactions, OcularModel(std::move(fu), std::move(fi)));
}

Result<OcularFitResult> OcularTrainer::FitFrom(const CsrMatrix& interactions,
                                               OcularModel initial) const {
  OCULAR_RETURN_IF_ERROR(config_.Validate());
  if (interactions.nnz() == 0) {
    return Status::InvalidArgument("interaction matrix has no positives");
  }
  if (initial.num_users() != interactions.num_rows() ||
      initial.num_items() != interactions.num_cols() ||
      initial.k() != config_.TotalDims()) {
    return Status::InvalidArgument("initial model shape mismatch");
  }
  // Coordinate pinned at 1 during item updates / user updates (bias
  // extension); -1 disables freezing.
  const int item_frozen = config_.use_biases ? static_cast<int>(config_.k)
                                             : -1;
  const int user_frozen =
      config_.use_biases ? static_cast<int>(config_.k) + 1 : -1;

  OcularFitResult out;
  out.model = std::move(initial);
  DenseMatrix& fu = *out.model.mutable_user_factors();
  DenseMatrix& fi = *out.model.mutable_item_factors();

  const CsrMatrix transposed = interactions.Transpose();
  const std::vector<double> weights = UserWeights(interactions);
  const bool relative = config_.variant == OcularVariant::kRelative;

  Stopwatch watch;
  double prev_q = config_.track_objective
                      ? ObjectiveQ(out.model, interactions, config_.lambda,
                                   relative ? weights : std::vector<double>{})
                      : 0.0;

  std::vector<double> neighbor_weights;  // reused buffer (R-OCuLaR items)
  for (uint32_t sweep = 0; sweep < config_.max_sweeps; ++sweep) {
    // ---- Item phase: update every f_i with f_u fixed. ----
    const std::vector<double> user_sums = fu.ColumnSums();
    for (uint32_t i = 0; i < interactions.num_cols(); ++i) {
      auto users = transposed.Row(i);
      std::span<const double> wspan;
      if (relative) {
        neighbor_weights.resize(users.size());
        for (size_t n = 0; n < users.size(); ++n) {
          neighbor_weights[n] = weights[users[n]];
        }
        wspan = neighbor_weights;
      }
      for (uint32_t step = 0; step < config_.block_steps; ++step) {
        internal::ProjectedGradientStep(fi.Row(i), users, fu, user_sums,
                                        config_.lambda, 1.0, wspan, config_,
                                        item_frozen);
      }
    }

    // ---- User phase: update every f_u with f_i fixed. ----
    const std::vector<double> item_sums = fi.ColumnSums();
    for (uint32_t u = 0; u < interactions.num_rows(); ++u) {
      const double w = relative ? weights[u] : 1.0;
      for (uint32_t step = 0; step < config_.block_steps; ++step) {
        internal::ProjectedGradientStep(fu.Row(u), interactions.Row(u), fi,
                                        item_sums, config_.lambda, w, {},
                                        config_, user_frozen);
      }
    }

    out.sweeps_run = sweep + 1;
    if (config_.track_objective) {
      const double q =
          ObjectiveQ(out.model, interactions, config_.lambda,
                     relative ? weights : std::vector<double>{});
      out.trace.push_back(SweepStats{sweep, q, watch.ElapsedSeconds()});
      // "Convergence is declared if Q stops decreasing."
      const double rel_drop = (prev_q - q) / std::max(std::abs(prev_q), 1e-12);
      if (rel_drop < config_.tolerance) {
        out.converged = true;
        break;
      }
      prev_q = q;
    }
  }
  return out;
}

}  // namespace ocular
