#include "core/ocular_trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/timer.h"
#include "sparse/linalg.h"

namespace ocular {

namespace {
/// Floor on affinities inside log/ratio terms; keeps 1/(e^x - 1) finite as
/// x -> 0 (the gradient then pushes hard, but boundedly, toward explaining
/// the positive example).
constexpr double kAffinityFloor = 1e-12;
constexpr double kProbFloor = 1e-12;
}  // namespace

Status OcularConfig::Validate() const {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  if (max_sweeps == 0) {
    return Status::InvalidArgument("max_sweeps must be positive");
  }
  if (armijo_beta <= 0.0 || armijo_beta >= 1.0) {
    return Status::InvalidArgument("armijo_beta must be in (0,1)");
  }
  if (armijo_sigma <= 0.0 || armijo_sigma >= 1.0) {
    return Status::InvalidArgument("armijo_sigma must be in (0,1)");
  }
  if (initial_step <= 0.0) {
    return Status::InvalidArgument("initial_step must be positive");
  }
  if (init_scale <= 0.0) {
    return Status::InvalidArgument("init_scale must be positive");
  }
  if (tolerance < 0.0) {
    return Status::InvalidArgument("tolerance must be >= 0");
  }
  if (block_steps == 0) {
    return Status::InvalidArgument("block_steps must be positive");
  }
  return Status::OK();
}

namespace internal {

void BlockWorkspace::Reserve(size_t k, size_t max_neighbors) {
  grad.resize(k);
  trial.resize(k);
  trial_alt.resize(k);
  dots.resize(max_neighbors);
  trial_dots.resize(max_neighbors);
  trial_dots_alt.resize(max_neighbors);
  dots_valid = false;
}

double BlockObjective(std::span<const double> f,
                      std::span<const uint32_t> neighbors,
                      ConstMatrixView other,
                      std::span<const double> complement_sum, double lambda,
                      double pos_weight,
                      std::span<const double> per_neighbor_weights) {
  double q = 0.0;
  for (size_t n = 0; n < neighbors.size(); ++n) {
    const double w =
        per_neighbor_weights.empty() ? pos_weight : per_neighbor_weights[n];
    const double dot = vec::Dot(other.Row(neighbors[n]), f);
    const double p = std::max(-std::expm1(-dot), kProbFloor);
    q -= w * std::log(p);
  }
  q += vec::Dot(f, complement_sum);
  q += lambda * vec::SquaredNorm(f);
  return q;
}

namespace {

/// Evaluates the block objective at `x`, writing d_n = <f_n, x> into
/// `dots`. The complement term is recovered from the sums and the dots:
///   <x, Σ_{r=0} f_n> = <x, other_sums> − Σ_n d_n.
/// One O(deg·K) pass, no allocation.
double EvalBlockPoint(std::span<const double> x,
                      std::span<const uint32_t> neighbors,
                      ConstMatrixView other,
                      std::span<const double> other_sums, double lambda,
                      double pos_weight,
                      std::span<const double> per_neighbor_weights,
                      std::span<double> dots) {
  double q_pos = 0.0;
  double dot_sum = 0.0;
  for (size_t n = 0; n < neighbors.size(); ++n) {
    const double w =
        per_neighbor_weights.empty() ? pos_weight : per_neighbor_weights[n];
    const double d = vec::Dot(other.Row(neighbors[n]), x);
    dots[n] = d;
    dot_sum += d;
    q_pos -= w * std::log(std::max(-std::expm1(-d), kProbFloor));
  }
  double sq = 0.0;
  const double sums_dot = vec::DotAndSquaredNorm(x, other_sums, &sq);
  return q_pos + sums_dot - dot_sum + lambda * sq;
}

/// The line-search core: q0 and the gradient are already in hand.
///
/// The search runs on the exponent grid alpha(t) = initial_step * beta^t,
/// t in [0, max_backtracks], evaluated by the same repeated multiplication
/// a cold top-down search performs — the candidate points are BITWISE the
/// cold search's. A cold call (step_hint null) walks t upward from 0
/// exactly like the classic backtracking loop. With a hint (the row's
/// accepted exponent last sweep), the search starts at hint-1 and walks to
/// the acceptance boundary — downward while passing (bigger steps), upward
/// while failing (smaller steps) — accepting the t whose predecessor
/// fails. Armijo acceptance is monotone in t for these strongly convex
/// blocks, so this is the same t the cold search finds, at ~2 objective
/// evaluations instead of t+1.
///
/// On success swaps the accepted trial's dots into ws->dots so the next
/// step on the same block starts with a warm cache.
BlockStepResult ArmijoSearch(std::span<double> f, std::span<const double> grad,
                             std::span<const uint32_t> neighbors,
                             ConstMatrixView other,
                             std::span<const double> other_sums, double lambda,
                             double pos_weight,
                             std::span<const double> per_neighbor_weights,
                             const OcularConfig& config, double q0,
                             BlockWorkspace* ws, double* step_hint) {
  const int max_t = static_cast<int>(config.max_backtracks);

  // alpha(t) by the same multiply chain the cold loop uses, so candidate
  // points match it bitwise for every t.
  const auto alpha_at = [&config](int t) {
    double a = config.initial_step;
    for (int j = 0; j < t; ++j) a *= config.armijo_beta;
    return a;
  };

  // Evaluates grid point t into (*trial, *trial_dots, *q1). Returns
  // +1 pass, 0 fail, +2 stationary (trial == f exactly; see below).
  const auto eval_at = [&](int t, std::vector<double>* trial,
                           std::vector<double>* trial_dots, double* q1) {
    std::span<double> tr(trial->data(), f.size());
    const double descent = vec::ProjectedTrial(tr, f, grad, alpha_at(t));
    if (descent == 0.0) {
      // Every term of <grad, trial - f> is <= 0 on the projection arc, so
      // zero descent means trial == f exactly: the row is stationary at
      // this alpha and the (q1 == q0) trial is trivially acceptable.
      return 2;
    }
    *q1 = EvalBlockPoint(
        tr, neighbors, other, other_sums, lambda, pos_weight,
        per_neighbor_weights,
        std::span<double>(trial_dots->data(), neighbors.size()));
    return *q1 - q0 <= config.armijo_sigma * descent ? 1 : 0;
  };

  const auto accept = [&](int t, std::vector<double>* trial,
                          std::vector<double>* trial_dots,
                          double q1) -> BlockStepResult {
    std::copy(trial->begin(), trial->begin() + f.size(), f.begin());
    std::swap(ws->dots, *trial_dots);
    ws->dots_valid = true;
    ws->objective = q1;
    if (step_hint != nullptr) *step_hint = static_cast<double>(t);
    return {t, q1};
  };

  // Double-buffered candidates: `cur` holds the best passing trial seen,
  // `alt` receives the next probe.
  std::vector<double>* cur_trial = &ws->trial;
  std::vector<double>* cur_dots = &ws->trial_dots;
  std::vector<double>* alt_trial = &ws->trial_alt;
  std::vector<double>* alt_dots = &ws->trial_dots_alt;

  int t = 0;
  if (step_hint != nullptr) {
    t = std::clamp(static_cast<int>(*step_hint) - 1, 0, max_t);
  }

  double q_cur = 0.0;
  const int first = eval_at(t, cur_trial, cur_dots, &q_cur);
  if (first == 2) {
    if (step_hint != nullptr) *step_hint = static_cast<double>(t);
    return {t, q0};
  }
  if (first == 1) {
    // Passing: walk toward bigger steps while they keep passing.
    while (t > 0) {
      double q_alt = 0.0;
      const int r = eval_at(t - 1, alt_trial, alt_dots, &q_alt);
      if (r != 1) break;  // t-1 fails (or is degenerate): t is the boundary
      std::swap(cur_trial, alt_trial);
      std::swap(cur_dots, alt_dots);
      q_cur = q_alt;
      --t;
    }
    return accept(t, cur_trial, cur_dots, q_cur);
  }
  // Failing: walk toward smaller steps until one passes.
  for (++t; t <= max_t; ++t) {
    const int r = eval_at(t, cur_trial, cur_dots, &q_cur);
    if (r == 2) {
      if (step_hint != nullptr) *step_hint = static_cast<double>(t);
      return {t, q0};
    }
    if (r == 1) return accept(t, cur_trial, cur_dots, q_cur);
  }
  return {-1, q0};  // line search failed; f (and the dot cache) unchanged
}

}  // namespace

BlockStepResult ArmijoStep(std::span<double> f, std::span<const double> grad,
                           std::span<const uint32_t> neighbors,
                           ConstMatrixView other,
                           std::span<const double> other_sums, double lambda,
                           double pos_weight,
                           std::span<const double> per_neighbor_weights,
                           const OcularConfig& config, BlockWorkspace* ws,
                           double* step_hint) {
  if (!ws->dots_valid) {
    ws->objective = EvalBlockPoint(
        f, neighbors, other, other_sums, lambda, pos_weight,
        per_neighbor_weights, std::span<double>(ws->dots.data(),
                                                neighbors.size()));
    ws->dots_valid = true;
  }
  return ArmijoSearch(f, grad, neighbors, other, other_sums, lambda,
                      pos_weight, per_neighbor_weights, config,
                      ws->objective, ws, step_hint);
}

BlockStepResult ProjectedGradientStep(
    std::span<double> f, std::span<const uint32_t> neighbors,
    ConstMatrixView other, std::span<const double> other_sums,
    double lambda, double pos_weight,
    std::span<const double> per_neighbor_weights, const OcularConfig& config,
    int frozen_coord, BlockWorkspace* ws, double* step_hint) {
  const size_t k = f.size();
  const size_t m = neighbors.size();
  std::span<double> grad(ws->grad.data(), k);
  std::span<double> dots(ws->dots.data(), m);

  // Gradient (eq. 6) without materializing the complement:
  //   grad = (Σ_all f_n − Σ_pos f_n) + 2λf − Σ_pos w_n f_n / (e^{d_n} − 1)
  //        = Σ_all f_n + 2λf − Σ_pos (1 + w_n/(e^{d_n} − 1)) f_n.
  vec::GradientInit(grad, other_sums, f, 2.0 * lambda);
  if (ws->dots_valid) {
    // Same block, f unchanged since the last accepted trial: the dots (and
    // q0 = ws->objective) are already known; only the Axpy pass remains.
    for (size_t n = 0; n < m; ++n) {
      const double w =
          per_neighbor_weights.empty() ? pos_weight : per_neighbor_weights[n];
      const double coef = w / std::expm1(std::max(dots[n], kAffinityFloor));
      vec::Axpy(-(1.0 + coef), other.Row(neighbors[n]), grad);
    }
  } else {
    // Cold cache: one fused pass computes the dots, the q0 pieces, and the
    // gradient corrections together. A single expm1 serves both the
    // gradient coefficient and the log-likelihood term:
    //   1 − e^{−d} = E/(1+E) with E = e^{d} − 1  (exact; guards overflow).
    double q_pos = 0.0;
    double dot_sum = 0.0;
    for (size_t n = 0; n < m; ++n) {
      const double w =
          per_neighbor_weights.empty() ? pos_weight : per_neighbor_weights[n];
      auto row = other.Row(neighbors[n]);
      const double d = vec::Dot(row, f);
      dots[n] = d;
      dot_sum += d;
      const double e = std::expm1(std::max(d, kAffinityFloor));
      const double p = e < 1e300 ? e / (1.0 + e) : 1.0;
      q_pos -= w * std::log(std::max(p, kProbFloor));
      vec::Axpy(-(1.0 + w / e), row, grad);
    }
    double sq = 0.0;
    const double sums_dot = vec::DotAndSquaredNorm(f, other_sums, &sq);
    ws->objective = q_pos + sums_dot - dot_sum + lambda * sq;
    ws->dots_valid = true;
  }
  // A frozen coordinate (bias extension) never moves; masking its gradient
  // keeps the Armijo line search exact for the remaining coordinates.
  if (frozen_coord >= 0 && static_cast<size_t>(frozen_coord) < k) {
    grad[static_cast<size_t>(frozen_coord)] = 0.0;
  }

  return ArmijoSearch(f, grad, neighbors, other, other_sums, lambda,
                      pos_weight, per_neighbor_weights, config,
                      ws->objective, ws, step_hint);
}

}  // namespace internal

std::vector<double> OcularTrainer::UserWeights(
    const CsrMatrix& interactions) const {
  std::vector<double> w(interactions.num_rows(), 1.0);
  if (config_.variant != OcularVariant::kRelative) return w;
  const double n_items = interactions.num_cols();
  for (uint32_t u = 0; u < interactions.num_rows(); ++u) {
    const double pos = interactions.RowDegree(u);
    // w_u = |{i: r_ui = 0}| / |{i: r_ui = 1}|. Users with no positives
    // contribute no positive terms; leave their (unused) weight at 1.
    if (pos > 0.0) w[u] = (n_items - pos) / pos;
  }
  return w;
}

Result<OcularFitResult> OcularTrainer::Fit(
    const CsrMatrix& interactions) const {
  OCULAR_RETURN_IF_ERROR(config_.Validate());
  Rng rng(config_.seed);
  const double scale =
      config_.init_scale / std::sqrt(static_cast<double>(config_.k));
  const uint32_t dims = config_.TotalDims();
  DenseMatrix fu(interactions.num_rows(), dims);
  DenseMatrix fi(interactions.num_cols(), dims);
  fu.FillUniform(&rng, 0.0, scale);
  fi.FillUniform(&rng, 0.0, scale);
  if (config_.use_biases) {
    // Dim k: user bias (item side pinned at 1). Dim k+1: item bias (user
    // side pinned at 1). Free bias coordinates start small.
    for (uint32_t u = 0; u < fu.rows(); ++u) {
      fu.At(u, config_.k) = rng.Uniform(0.0, 0.1);
      fu.At(u, config_.k + 1) = 1.0;
    }
    for (uint32_t i = 0; i < fi.rows(); ++i) {
      fi.At(i, config_.k) = 1.0;
      fi.At(i, config_.k + 1) = rng.Uniform(0.0, 0.1);
    }
  }
  return FitFrom(interactions, OcularModel(std::move(fu), std::move(fi)));
}

Result<OcularFitResult> OcularTrainer::FitFrom(const CsrMatrix& interactions,
                                               OcularModel initial) const {
  OCULAR_RETURN_IF_ERROR(config_.Validate());
  if (interactions.nnz() == 0) {
    return Status::InvalidArgument("interaction matrix has no positives");
  }
  if (initial.num_users() != interactions.num_rows() ||
      initial.num_items() != interactions.num_cols() ||
      initial.k() != config_.TotalDims()) {
    return Status::InvalidArgument("initial model shape mismatch");
  }
  // Coordinate pinned at 1 during item updates / user updates (bias
  // extension); -1 disables freezing.
  const int item_frozen = config_.use_biases ? static_cast<int>(config_.k)
                                             : -1;
  const int user_frozen =
      config_.use_biases ? static_cast<int>(config_.k) + 1 : -1;

  OcularFitResult out;
  out.model = std::move(initial);
  DenseMatrix& fu = *out.model.mutable_user_factors();
  DenseMatrix& fi = *out.model.mutable_item_factors();

  const CsrMatrix transposed = interactions.Transpose();
  const std::vector<double> weights = UserWeights(interactions);
  const bool relative = config_.variant == OcularVariant::kRelative;

  // R-OCuLaR item phase: gather the per-positive user weights ONCE — the
  // weights are constant across sweeps, and the flat layout aligns with
  // transposed.col_idx() so item i's weights are a contiguous span.
  std::vector<double> item_phase_weights;
  if (relative) {
    const std::vector<uint32_t>& users_flat = transposed.col_idx();
    item_phase_weights.resize(users_flat.size());
    for (size_t t = 0; t < users_flat.size(); ++t) {
      item_phase_weights[t] = weights[users_flat[t]];
    }
  }

  internal::BlockWorkspace ws;
  ws.Reserve(config_.TotalDims(),
             std::max(interactions.MaxRowDegree(), transposed.MaxRowDegree()));

  // Per-row adaptive line-search state (see ArmijoStep): the last accepted
  // backtrack exponent per row, so each search resumes near its boundary
  // instead of walking down from exponent 0 every sweep.
  std::vector<double> item_steps(interactions.num_cols(), 0.0);
  std::vector<double> user_steps(interactions.num_rows(), 0.0);

  Stopwatch watch;
  double prev_q = config_.track_objective
                      ? ObjectiveQ(out.model, interactions, config_.lambda,
                                   relative ? weights : std::vector<double>{})
                      : 0.0;

  // Per-user block objectives of the sweep's user phase. Summed in row
  // order (not accumulation order), so serial and parallel trainers
  // produce bit-identical traces.
  std::vector<double> block_q(
      config_.track_objective ? interactions.num_rows() : 0, 0.0);

  for (uint32_t sweep = 0; sweep < config_.max_sweeps; ++sweep) {
    // ---- Item phase: update every f_i with f_u fixed. ----
    const std::vector<double> user_sums = fu.ColumnSums();
    const std::vector<uint64_t>& item_ptr = transposed.row_ptr();
    for (uint32_t i = 0; i < interactions.num_cols(); ++i) {
      auto users = transposed.Row(i);
      std::span<const double> wspan;
      if (relative) {
        wspan = {item_phase_weights.data() + item_ptr[i], users.size()};
      }
      ws.Invalidate();
      for (uint32_t step = 0; step < config_.block_steps; ++step) {
        internal::ProjectedGradientStep(fi.Row(i), users, fu, user_sums,
                                        config_.lambda, 1.0, wspan, config_,
                                        item_frozen, &ws, &item_steps[i]);
      }
    }

    // ---- User phase: update every f_u with f_i fixed. ----
    const std::vector<double> item_sums = fi.ColumnSums();
    for (uint32_t u = 0; u < interactions.num_rows(); ++u) {
      const double w = relative ? weights[u] : 1.0;
      ws.Invalidate();
      internal::BlockStepResult last;
      for (uint32_t step = 0; step < config_.block_steps; ++step) {
        last = internal::ProjectedGradientStep(fu.Row(u), interactions.Row(u),
                                               fi, item_sums, config_.lambda,
                                               w, {}, config_, user_frozen,
                                               &ws, &user_steps[u]);
      }
      if (config_.track_objective) block_q[u] = last.objective;
    }

    out.sweeps_run = sweep + 1;
    if (config_.track_objective) {
      // Fused objective: Σ_u Q_u(f_u) already contains the positives, the
      // unknowns (via the per-block complement terms), and λ||F_u||²; only
      // the item-side regularizer is missing.
      const double q = std::accumulate(block_q.begin(), block_q.end(), 0.0) +
                       config_.lambda * fi.SquaredFrobeniusNorm();
      out.trace.push_back(SweepStats{sweep, q, watch.ElapsedSeconds()});
      // "Convergence is declared if Q stops decreasing."
      const double rel_drop = (prev_q - q) / std::max(std::abs(prev_q), 1e-12);
      if (rel_drop < config_.tolerance) {
        out.converged = true;
        break;
      }
      prev_q = q;
    }
  }
  return out;
}

}  // namespace ocular
