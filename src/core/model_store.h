#ifndef OCULAR_CORE_MODEL_STORE_H_
#define OCULAR_CORE_MODEL_STORE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "core/model_io.h"
#include "core/ocular_trainer.h"
#include "sparse/dense.h"

namespace ocular {

/// \file
/// \brief Binary model format v2 ("OCLR") and the mmap-backed zero-copy
/// ModelStore that serves it.
///
/// The v1 text format (core/model_io.h) is portable and diffable but has
/// to be *parsed*: loading re-tokenizes and re-converts every factor entry,
/// which for a production catalog (millions of users x K doubles) costs
/// seconds of CPU before the first request can be served. The v2 binary
/// format is the deployable artifact: factor sections are stored
/// little-endian, 64-byte aligned, exactly as the serving kernels consume
/// them (including the K x n_i transposed serving layout), so a ModelStore
/// opens a model by mmapping the file and validating O(header) bytes — no
/// parse, no copy; the factor bytes are faulted in lazily by the page
/// cache and shared between processes. See docs/MODEL_FORMAT.md for the
/// byte-level specification.

/// \brief Scoring rule recorded in a v2 file, which tells a model-agnostic
/// server how to map the factor product to a score.
enum class BinaryModelKind : uint32_t {
  /// score = 1 - e^{-<f_u, f_i>} (OCuLaR / R-OCuLaR probability map).
  kOcularProbability = 0,
  /// score = <f_u, f_i> (wALS, iALS, BPR and any plain MF model).
  kDotProduct = 1,
};

/// \brief Model-level metadata carried in the v2 header.
struct BinaryModelMeta {
  /// Scoring rule of the stored factors.
  BinaryModelKind kind = BinaryModelKind::kOcularProbability;
  /// Factor dimension (columns of both factor matrices, bias dims
  /// included).
  uint32_t k = 0;
  /// Regularization weight the model was trained with (informational).
  double lambda = 0.0;
  /// True when the last two factor dimensions are the bias extension of
  /// OcularConfig::use_biases.
  bool use_biases = false;
  /// True for R-OCuLaR (relative-preference) training.
  bool relative_variant = false;
  /// Short algorithm tag ("OCuLaR", "wALS", ...; at most 15 bytes).
  std::string algorithm = "OCuLaR";
};

/// \brief Writes `model` (+ its training config) as a binary v2 file.
///
/// The file holds three checksummed sections: user factors (n_u x K,
/// row-major), item factors (n_i x K, row-major) and the K x n_i
/// transposed serving layout, each 64-byte aligned so the mmapped views
/// are cache-line aligned. Fails like SaveModel on invalid models or
/// config/model dimension mismatch.
Status SaveModelBinary(const OcularModel& model, const OcularConfig& config,
                       const std::string& path);

/// \brief Generic v2 writer for any user x item factor pair — how the
/// factor baselines (wALS/iALS/BPR) persist themselves; see
/// WalsRecommender::SaveBinary.
///
/// `users` and `items` must have meta.k columns each; the transposed
/// serving section is derived here.
Status SaveFactorsBinary(const BinaryModelMeta& meta, const DenseMatrix& users,
                         const DenseMatrix& items, const std::string& path);

/// \brief View-based v2 writer: persists `users`/`items` plus a
/// caller-provided K x n_i transposed serving section without copying any
/// factor block. This is the shard writer's save path
/// (core/model_shard.h): a user-range shard is a ConstMatrixView slice of
/// the full factor matrix, and the shared items file reuses the store's
/// mmapped transposed section as-is. Either factor view may be empty
/// (0 rows) — a shard file carries no items, the items file no users.
Status SaveFactorSectionsBinary(const BinaryModelMeta& meta,
                                ConstMatrixView users, ConstMatrixView items,
                                ConstMatrixView items_t,
                                const std::string& path);

/// \brief Shared save path of the dot-product factor baselines
/// (wALS/iALS/BPR `SaveBinary`): writes `users`/`items` as a
/// BinaryModelKind::kDotProduct v2 file tagged `algorithm`.
/// FailedPrecondition when `users` is empty (unfitted model).
Status SaveDotProductFactors(const std::string& algorithm, uint32_t k,
                             double lambda, const DenseMatrix& users,
                             const DenseMatrix& items,
                             const std::string& path);

/// \brief Converts a v1 text model (core/model_io.h) to a v2 binary file.
///
/// Factors are preserved bit-exactly ("%.17g" text round-trips doubles);
/// config fields map onto the v2 header.
Status ConvertTextModelToBinary(const std::string& text_path,
                                const std::string& binary_path);

/// \brief Options of ModelStore::Open.
struct ModelStoreOptions {
  /// Verify every section checksum at open time. Costs one read pass over
  /// the mapped bytes (still zero-copy, zero allocations); turn off for
  /// O(header) opens of trusted local artifacts and call
  /// ModelStore::VerifyChecksums before first use instead if desired.
  bool verify_checksums = true;
};

/// \brief Zero-copy read view of a binary v2 model file.
///
/// Open() mmaps the file read-only, validates the header and the section
/// table, and exposes the factor sections as ConstMatrixViews pointing
/// directly into the mapping — no factor bytes are parsed, copied or even
/// touched until a kernel reads them (the page cache faults them in on
/// demand and can share them across every process serving the same model).
/// The store owns the mapping; views remain valid for its lifetime.
/// Movable, not copyable.
class ModelStore {
 public:
  /// \brief Opens `path` and validates it. IOError on unreadable files,
  /// ParseError on malformed/foreign/truncated content or checksum
  /// mismatch.
  static Result<ModelStore> Open(const std::string& path,
                                 const ModelStoreOptions& options = {});

  /// \brief An empty (not-open) store; only assignment and destruction
  /// are valid.
  ModelStore() = default;
  /// \brief Transfers the mapping; `other` becomes not-open.
  ModelStore(ModelStore&& other) noexcept;
  /// \brief Transfers the mapping, unmapping any currently held one.
  ModelStore& operator=(ModelStore&& other) noexcept;
  ModelStore(const ModelStore&) = delete;             ///< not copyable
  ModelStore& operator=(const ModelStore&) = delete;  ///< not copyable
  /// \brief Unmaps the file. All views die with the store.
  ~ModelStore();

  /// Header metadata of the opened file.
  const BinaryModelMeta& meta() const { return meta_; }
  /// Users (rows of user_factors()).
  uint32_t num_users() const { return num_users_; }
  /// Items (rows of item_factors()).
  uint32_t num_items() const { return num_items_; }
  /// Factor dimension (bias dims included).
  uint32_t k() const { return meta_.k; }
  /// Path the store was opened from.
  const std::string& path() const { return path_; }
  /// Total bytes mapped (the file size).
  size_t mapped_bytes() const { return mapped_bytes_; }

  /// User factors, n_u x K row-major, viewing the mapping.
  ConstMatrixView user_factors() const {
    return {user_factors_, num_users_, meta_.k};
  }
  /// Item factors, n_i x K row-major, viewing the mapping.
  ConstMatrixView item_factors() const {
    return {item_factors_, num_items_, meta_.k};
  }
  /// Item factors in the K x n_i serving layout (vec::AffinityBlock's Vᵀ
  /// operand), viewing the mapping — the section whose presence makes a
  /// zero-copy open also zero-compute.
  ConstMatrixView item_factors_t() const {
    return {item_factors_t_, meta_.k, num_items_};
  }

  /// \brief Re-walks every section and recomputes its checksum. OK when
  /// the mapping still matches the header (detects on-disk corruption of
  /// a store opened with verify_checksums = false).
  Status VerifyChecksums() const;

  /// \brief Materializes an owning OcularModel + config copy (an O(model)
  /// copy — for retraining/conversion tooling, not the serving path).
  /// Fails unless meta().kind is kOcularProbability.
  Result<LoadedModel> MaterializeOcular() const;

 private:
  void Reset() noexcept;

  std::string path_;
  void* mapping_ = nullptr;  // mmap base, nullptr when default-constructed
  size_t mapped_bytes_ = 0;
  BinaryModelMeta meta_;
  uint32_t num_users_ = 0;
  uint32_t num_items_ = 0;
  const double* user_factors_ = nullptr;    // into the mapping
  const double* item_factors_ = nullptr;    // into the mapping
  const double* item_factors_t_ = nullptr;  // into the mapping
};

/// \brief True when the first bytes of `path` carry the v2 magic — how
/// format-sniffing loaders decide between ModelStore::Open and the v1 text
/// LoadModel.
bool IsBinaryModelFile(const std::string& path);

/// \brief Loads an OCuLaR model of any on-disk format into an owning
/// LoadedModel: `*.shardset` manifests are opened and gathered
/// (MaterializeShardSetOcular), v2 files are opened and materialized,
/// anything else goes through the v1 text LoadModel. For zero-copy
/// serving use ModelStore::Open / OpenShardSet directly.
Result<LoadedModel> LoadModelAuto(const std::string& path);

}  // namespace ocular

#endif  // OCULAR_CORE_MODEL_STORE_H_
