#ifndef OCULAR_CORE_OCULAR_MODEL_H_
#define OCULAR_CORE_OCULAR_MODEL_H_

#include <cstdint>

#include "common/result.h"
#include "sparse/csr.h"
#include "sparse/dense.h"

namespace ocular {

/// The fitted OCuLaR model (Section IV-A): non-negative co-cluster
/// affiliation vectors f_u (per user) and f_i (per item), of dimension K.
/// The probability that user u is interested in item i is
///   P[r_ui = 1] = 1 - exp(-<f_u, f_i>).
class OcularModel {
 public:
  OcularModel() = default;
  OcularModel(DenseMatrix user_factors, DenseMatrix item_factors);

  uint32_t num_users() const { return user_factors_.rows(); }
  uint32_t num_items() const { return item_factors_.rows(); }
  uint32_t k() const { return user_factors_.cols(); }

  const DenseMatrix& user_factors() const { return user_factors_; }
  const DenseMatrix& item_factors() const { return item_factors_; }
  DenseMatrix* mutable_user_factors() { return &user_factors_; }
  DenseMatrix* mutable_item_factors() { return &item_factors_; }

  /// <f_u, f_i>.
  double Affinity(uint32_t u, uint32_t i) const {
    return vec::Dot(user_factors_.Row(u), item_factors_.Row(i));
  }

  /// P[r_ui = 1] = 1 - exp(-<f_u, f_i>), in [0, 1).
  double Probability(uint32_t u, uint32_t i) const;

  /// Per-cluster contributions [f_u]_c * [f_i]_c (length K); their sum is
  /// Affinity(u, i). The explanation generator decomposes a recommendation
  /// along these.
  std::vector<double> ClusterContributions(uint32_t u, uint32_t i) const;

  /// Model memory footprint in bytes, the O(max(nnz, n_u K, n_i K))
  /// accounting of Section VI.
  size_t MemoryBytes() const;

  /// Validates that all factors are non-negative and finite.
  Status Validate() const;

 private:
  DenseMatrix user_factors_;  // n_u x K
  DenseMatrix item_factors_;  // n_i x K
};

/// The OCuLaR objective Q (eq. 4): negative log-likelihood of the binary
/// matrix under the model plus l2 regularization, with optional per-user
/// positive-example weights (R-OCuLaR, Section V). `weights` may be empty
/// (all ones).
///
/// Computed with the complement trick of Section IV-D: the unknowns term
/// Σ_{(u,i): r=0} <f_u,f_i> equals <Σ_u f_u, Σ_i f_i> − Σ_{(u,i): r=1}
/// <f_u,f_i>, so the total cost is O(nnz · K + (n_u + n_i) K).
double ObjectiveQ(const OcularModel& model, const CsrMatrix& interactions,
                  double lambda, const std::vector<double>& user_weights = {});

}  // namespace ocular

#endif  // OCULAR_CORE_OCULAR_MODEL_H_
