#include "core/coclusters.h"

#include <algorithm>
#include <numeric>

namespace ocular {

namespace {

/// Collects (entity, strength) pairs above threshold for dimension c,
/// sorted by descending strength.
void CollectMembers(const DenseMatrix& factors, uint32_t c, double threshold,
                    std::vector<uint32_t>* members,
                    std::vector<double>* strengths) {
  std::vector<std::pair<double, uint32_t>> found;
  for (uint32_t e = 0; e < factors.rows(); ++e) {
    const double s = factors.At(e, c);
    if (s > threshold) found.emplace_back(s, e);
  }
  std::sort(found.begin(), found.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  members->clear();
  strengths->clear();
  members->reserve(found.size());
  strengths->reserve(found.size());
  for (const auto& [s, e] : found) {
    members->push_back(e);
    strengths->push_back(s);
  }
}

}  // namespace

std::vector<CoCluster> ExtractCoClusters(const OcularModel& model,
                                         const CoClusterOptions& options) {
  std::vector<CoCluster> out;
  uint32_t dims = model.k();
  if (options.max_dims > 0 && options.max_dims < dims) {
    dims = options.max_dims;
  }
  for (uint32_t c = 0; c < dims; ++c) {
    CoCluster cluster;
    cluster.index = c;
    CollectMembers(model.user_factors(), c, options.threshold, &cluster.users,
                   &cluster.user_strengths);
    CollectMembers(model.item_factors(), c, options.threshold, &cluster.items,
                   &cluster.item_strengths);
    // A co-cluster must contain at least one user AND one item
    // (Section IV-A), plus the caller's size floor.
    if (cluster.users.size() >= std::max(1u, options.min_users) &&
        cluster.items.size() >= std::max(1u, options.min_items)) {
      out.push_back(std::move(cluster));
    }
  }
  return out;
}

double CoClusterDensity(const CoCluster& cluster,
                        const CsrMatrix& interactions) {
  if (cluster.empty()) return 0.0;
  size_t positives = 0;
  for (uint32_t u : cluster.users) {
    for (uint32_t i : cluster.items) {
      if (interactions.HasEntry(u, i)) ++positives;
    }
  }
  return static_cast<double>(positives) /
         (static_cast<double>(cluster.users.size()) *
          static_cast<double>(cluster.items.size()));
}

CoClusterStats ComputeCoClusterStats(const std::vector<CoCluster>& clusters,
                                     const CsrMatrix& interactions) {
  CoClusterStats stats;
  stats.num_clusters = static_cast<uint32_t>(clusters.size());
  if (clusters.empty()) return stats;
  std::vector<uint32_t> user_memberships(interactions.num_rows(), 0);
  std::vector<uint32_t> item_memberships(interactions.num_cols(), 0);
  for (const auto& cluster : clusters) {
    stats.mean_users += static_cast<double>(cluster.users.size());
    stats.mean_items += static_cast<double>(cluster.items.size());
    stats.mean_density += CoClusterDensity(cluster, interactions);
    for (uint32_t u : cluster.users) ++user_memberships[u];
    for (uint32_t i : cluster.items) ++item_memberships[i];
  }
  const double n = static_cast<double>(clusters.size());
  stats.mean_users /= n;
  stats.mean_items /= n;
  stats.mean_density /= n;
  stats.mean_user_memberships =
      std::accumulate(user_memberships.begin(), user_memberships.end(), 0.0) /
      std::max<double>(1.0, interactions.num_rows());
  stats.mean_item_memberships =
      std::accumulate(item_memberships.begin(), item_memberships.end(), 0.0) /
      std::max<double>(1.0, interactions.num_cols());
  return stats;
}

}  // namespace ocular
