#include "sparse/csr.h"

#include <algorithm>

namespace ocular {

CsrMatrix CsrMatrix::FromCoo(const CooBuilder::Entries& entries) {
  CsrMatrix m;
  m.num_cols_ = entries.num_cols;
  m.row_ptr_.assign(entries.num_rows + 1, 0);
  for (uint32_t r : entries.rows) ++m.row_ptr_[r + 1];
  for (size_t i = 1; i < m.row_ptr_.size(); ++i) {
    m.row_ptr_[i] += m.row_ptr_[i - 1];
  }
  m.col_idx_ = entries.cols;  // already row-major sorted by CooBuilder
  return m;
}

Result<CsrMatrix> CsrMatrix::FromPairs(
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs, uint32_t num_rows,
    uint32_t num_cols) {
  CooBuilder coo;
  coo.Reserve(pairs.size());
  for (const auto& [r, c] : pairs) coo.Add(r, c);
  OCULAR_ASSIGN_OR_RETURN(auto entries, coo.Finalize(num_rows, num_cols));
  return FromCoo(entries);
}

double CsrMatrix::Density() const {
  const double cells =
      static_cast<double>(num_rows()) * static_cast<double>(num_cols());
  return cells > 0 ? static_cast<double>(nnz()) / cells : 0.0;
}

uint32_t CsrMatrix::MaxRowDegree() const {
  uint32_t max_deg = 0;
  for (uint32_t r = 0; r < num_rows(); ++r) {
    max_deg = std::max(max_deg, RowDegree(r));
  }
  return max_deg;
}

bool CsrMatrix::HasEntry(uint32_t row, uint32_t col) const {
  if (row >= num_rows()) return false;
  auto span = Row(row);
  return std::binary_search(span.begin(), span.end(), col);
}

CsrMatrix CsrMatrix::Transpose() const {
  CsrMatrix t;
  t.num_cols_ = num_rows();
  t.row_ptr_.assign(num_cols_ + 1, 0);
  for (uint32_t c : col_idx_) ++t.row_ptr_[c + 1];
  for (size_t i = 1; i < t.row_ptr_.size(); ++i) {
    t.row_ptr_[i] += t.row_ptr_[i - 1];
  }
  t.col_idx_.resize(nnz());
  std::vector<uint64_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (uint32_t r = 0; r < num_rows(); ++r) {
    for (uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const uint32_t c = col_idx_[k];
      t.col_idx_[cursor[c]++] = r;
    }
  }
  // Row-major traversal writes ascending row ids per column, so each
  // transposed row is already sorted.
  return t;
}

CsrMatrix CsrMatrix::SelectRows(const std::vector<uint32_t>& rows) const {
  CsrMatrix out;
  out.num_cols_ = num_cols_;
  out.row_ptr_.assign(rows.size() + 1, 0);
  size_t total = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    total += RowDegree(rows[i]);
    out.row_ptr_[i + 1] = total;
  }
  out.col_idx_.reserve(total);
  for (uint32_t r : rows) {
    auto span = Row(r);
    out.col_idx_.insert(out.col_idx_.end(), span.begin(), span.end());
  }
  return out;
}

std::vector<uint32_t> CsrMatrix::ColumnDegrees() const {
  std::vector<uint32_t> deg(num_cols_, 0);
  for (uint32_t c : col_idx_) ++deg[c];
  return deg;
}

std::vector<std::pair<uint32_t, uint32_t>> CsrMatrix::ToPairs() const {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  out.reserve(nnz());
  for (uint32_t r = 0; r < num_rows(); ++r) {
    for (uint32_t c : Row(r)) out.emplace_back(r, c);
  }
  return out;
}

}  // namespace ocular
