#include "sparse/dense.h"

#include <algorithm>
#include <cassert>

namespace ocular {

void DenseMatrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void DenseMatrix::FillUniform(Rng* rng, double lo, double hi) {
  for (auto& x : data_) x = rng->Uniform(lo, hi);
}

std::vector<double> DenseMatrix::ColumnSums() const {
  std::vector<double> sums(cols_, 0.0);
  const double* p = data_.data();
  for (uint32_t r = 0; r < rows_; ++r) {
    for (uint32_t c = 0; c < cols_; ++c) sums[c] += p[c];
    p += cols_;
  }
  return sums;
}

std::vector<double> ColumnSums(ConstMatrixView m) {
  std::vector<double> sums(m.cols(), 0.0);
  const double* p = m.data();
  for (uint32_t r = 0; r < m.rows(); ++r) {
    for (uint32_t c = 0; c < m.cols(); ++c) sums[c] += p[c];
    p += m.cols();
  }
  return sums;
}

double DenseMatrix::SquaredFrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return acc;
}

namespace vec {

double Dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, std::span<double> x) {
  for (auto& v : x) v *= alpha;
}

double SquaredNorm(std::span<const double> a) { return Dot(a, a); }

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

void ProjectNonNegative(std::span<double> x) {
  for (auto& v : x) v = std::max(0.0, v);
}

}  // namespace vec
}  // namespace ocular
