#include "sparse/linalg.h"

#include <algorithm>
#include <cmath>

namespace ocular {

Status CholeskySolveInPlace(std::vector<double>* a, uint32_t k,
                            std::span<const double> b,
                            std::vector<double>* x) {
  if (a == nullptr || x == nullptr) {
    return Status::InvalidArgument("null output");
  }
  if (a->size() != static_cast<size_t>(k) * k || b.size() != k) {
    return Status::InvalidArgument("shape mismatch in CholeskySolveInPlace");
  }
  std::vector<double>& m = *a;
  // In-place lower-triangular Cholesky: A = L L^T.
  for (uint32_t j = 0; j < k; ++j) {
    double diag = m[static_cast<size_t>(j) * k + j];
    for (uint32_t p = 0; p < j; ++p) {
      const double ljp = m[static_cast<size_t>(j) * k + p];
      diag -= ljp * ljp;
    }
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::FailedPrecondition("matrix not positive definite");
    }
    const double ljj = std::sqrt(diag);
    m[static_cast<size_t>(j) * k + j] = ljj;
    for (uint32_t i = j + 1; i < k; ++i) {
      double v = m[static_cast<size_t>(i) * k + j];
      for (uint32_t p = 0; p < j; ++p) {
        v -= m[static_cast<size_t>(i) * k + p] *
             m[static_cast<size_t>(j) * k + p];
      }
      m[static_cast<size_t>(i) * k + j] = v / ljj;
    }
  }
  // Forward substitution: L y = b.
  std::vector<double> y(k);
  for (uint32_t i = 0; i < k; ++i) {
    double v = b[i];
    for (uint32_t p = 0; p < i; ++p) {
      v -= m[static_cast<size_t>(i) * k + p] * y[p];
    }
    y[i] = v / m[static_cast<size_t>(i) * k + i];
  }
  // Back substitution: L^T x = y.
  x->assign(k, 0.0);
  for (uint32_t ii = k; ii > 0; --ii) {
    const uint32_t i = ii - 1;
    double v = y[i];
    for (uint32_t p = i + 1; p < k; ++p) {
      v -= m[static_cast<size_t>(p) * k + i] * (*x)[p];
    }
    (*x)[i] = v / m[static_cast<size_t>(i) * k + i];
  }
  return Status::OK();
}

std::vector<double> GramMatrix(const DenseMatrix& f) {
  const uint32_t k = f.cols();
  std::vector<double> g(static_cast<size_t>(k) * k, 0.0);
  for (uint32_t r = 0; r < f.rows(); ++r) {
    auto row = f.Row(r);
    for (uint32_t i = 0; i < k; ++i) {
      const double vi = row[i];
      if (vi == 0.0) continue;
      for (uint32_t j = 0; j < k; ++j) {
        g[static_cast<size_t>(i) * k + j] += vi * row[j];
      }
    }
  }
  return g;
}

void AddOuterProduct(std::vector<double>* a, uint32_t k, double alpha,
                     std::span<const double> v) {
  for (uint32_t i = 0; i < k; ++i) {
    const double vi = alpha * v[i];
    if (vi == 0.0) continue;
    for (uint32_t j = 0; j < k; ++j) {
      (*a)[static_cast<size_t>(i) * k + j] += vi * v[j];
    }
  }
}

DenseMatrix TransposedCopy(const DenseMatrix& f) {
  DenseMatrix t(f.cols(), f.rows());
  for (uint32_t r = 0; r < f.rows(); ++r) {
    auto row = f.Row(r);
    for (uint32_t c = 0; c < f.cols(); ++c) t.At(c, r) = row[c];
  }
  return t;
}

namespace vec {

void GradientInit(std::span<double> grad, std::span<const double> sums,
                  std::span<const double> f, double two_lambda) {
  double* g = grad.data();
  const double* s = sums.data();
  const double* x = f.data();
  const size_t k = grad.size();
  for (size_t c = 0; c < k; ++c) g[c] = s[c] + two_lambda * x[c];
}

double ProjectedTrial(std::span<double> trial, std::span<const double> f,
                      std::span<const double> grad, double alpha) {
  double* t = trial.data();
  const double* x = f.data();
  const double* g = grad.data();
  const size_t k = trial.size();
  double descent = 0.0;
  for (size_t c = 0; c < k; ++c) {
    const double v = std::max(0.0, x[c] - alpha * g[c]);
    t[c] = v;
    descent += g[c] * (v - x[c]);
  }
  return descent;
}

double DotAndSquaredNorm(std::span<const double> a, std::span<const double> b,
                         double* a_squared_norm) {
  const double* pa = a.data();
  const double* pb = b.data();
  const size_t k = a.size();
  double dot = 0.0;
  double sq = 0.0;
  for (size_t c = 0; c < k; ++c) {
    dot += pa[c] * pb[c];
    sq += pa[c] * pa[c];
  }
  *a_squared_norm = sq;
  return dot;
}

namespace {

// Runtime-dispatched clone of the serving Axpy pass: the AVX2 variant runs
// the same mul-then-add per element 4-wide (no FMA flag, so no contraction
// — results stay bit-identical to the baseline), selected once at load
// time via ifunc on platforms that support it. ThreadSanitizer cannot
// intercept ifunc resolvers (the resolver runs before the runtime is up
// and segfaults), so TSan builds take the plain auto-vectorized path —
// GCC spells the detection __SANITIZE_THREAD__, Clang __has_feature.
#if !defined(OCULAR_TSAN_BUILD) && defined(__SANITIZE_THREAD__)
#define OCULAR_TSAN_BUILD 1
#endif
#if !defined(OCULAR_TSAN_BUILD) && defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OCULAR_TSAN_BUILD 1
#endif
#endif
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && \
    !defined(OCULAR_TSAN_BUILD)
__attribute__((target_clones("default", "avx2")))
#endif
void AxpyRun(double alpha, const double* x, double* y, size_t len) {
  for (size_t j = 0; j < len; ++j) y[j] += alpha * x[j];
}

}  // namespace

void AffinityBlock(std::span<const double> u_row, ConstMatrixView f_t,
                   uint32_t item_begin, std::span<double> out) {
  std::fill(out.begin(), out.end(), 0.0);
  const size_t len = out.size();
  double* acc = out.data();
  for (uint32_t c = 0; c < u_row.size(); ++c) {
    const double uc = u_row[c];
    if (uc == 0.0) continue;
    AxpyRun(uc, f_t.Row(c).data() + item_begin, acc, len);
  }
}

}  // namespace vec

}  // namespace ocular
