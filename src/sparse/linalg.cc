#include "sparse/linalg.h"

#include <cmath>

namespace ocular {

Status CholeskySolveInPlace(std::vector<double>* a, uint32_t k,
                            std::span<const double> b,
                            std::vector<double>* x) {
  if (a == nullptr || x == nullptr) {
    return Status::InvalidArgument("null output");
  }
  if (a->size() != static_cast<size_t>(k) * k || b.size() != k) {
    return Status::InvalidArgument("shape mismatch in CholeskySolveInPlace");
  }
  std::vector<double>& m = *a;
  // In-place lower-triangular Cholesky: A = L L^T.
  for (uint32_t j = 0; j < k; ++j) {
    double diag = m[static_cast<size_t>(j) * k + j];
    for (uint32_t p = 0; p < j; ++p) {
      const double ljp = m[static_cast<size_t>(j) * k + p];
      diag -= ljp * ljp;
    }
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::FailedPrecondition("matrix not positive definite");
    }
    const double ljj = std::sqrt(diag);
    m[static_cast<size_t>(j) * k + j] = ljj;
    for (uint32_t i = j + 1; i < k; ++i) {
      double v = m[static_cast<size_t>(i) * k + j];
      for (uint32_t p = 0; p < j; ++p) {
        v -= m[static_cast<size_t>(i) * k + p] *
             m[static_cast<size_t>(j) * k + p];
      }
      m[static_cast<size_t>(i) * k + j] = v / ljj;
    }
  }
  // Forward substitution: L y = b.
  std::vector<double> y(k);
  for (uint32_t i = 0; i < k; ++i) {
    double v = b[i];
    for (uint32_t p = 0; p < i; ++p) {
      v -= m[static_cast<size_t>(i) * k + p] * y[p];
    }
    y[i] = v / m[static_cast<size_t>(i) * k + i];
  }
  // Back substitution: L^T x = y.
  x->assign(k, 0.0);
  for (uint32_t ii = k; ii > 0; --ii) {
    const uint32_t i = ii - 1;
    double v = y[i];
    for (uint32_t p = i + 1; p < k; ++p) {
      v -= m[static_cast<size_t>(p) * k + i] * (*x)[p];
    }
    (*x)[i] = v / m[static_cast<size_t>(i) * k + i];
  }
  return Status::OK();
}

std::vector<double> GramMatrix(const DenseMatrix& f) {
  const uint32_t k = f.cols();
  std::vector<double> g(static_cast<size_t>(k) * k, 0.0);
  for (uint32_t r = 0; r < f.rows(); ++r) {
    auto row = f.Row(r);
    for (uint32_t i = 0; i < k; ++i) {
      const double vi = row[i];
      if (vi == 0.0) continue;
      for (uint32_t j = 0; j < k; ++j) {
        g[static_cast<size_t>(i) * k + j] += vi * row[j];
      }
    }
  }
  return g;
}

void AddOuterProduct(std::vector<double>* a, uint32_t k, double alpha,
                     std::span<const double> v) {
  for (uint32_t i = 0; i < k; ++i) {
    const double vi = alpha * v[i];
    if (vi == 0.0) continue;
    for (uint32_t j = 0; j < k; ++j) {
      (*a)[static_cast<size_t>(i) * k + j] += vi * v[j];
    }
  }
}

}  // namespace ocular
