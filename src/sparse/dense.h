#ifndef OCULAR_SPARSE_DENSE_H_
#define OCULAR_SPARSE_DENSE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace ocular {

/// Row-major dense matrix of doubles.
///
/// Used for the factor matrices F_user (n_u x K) and F_item (n_i x K).
/// Rows are contiguous so the inner products <f_u, f_i> of the paper's
/// model stream through cache lines.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(uint32_t rows, uint32_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, fill) {}

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& At(uint32_t r, uint32_t c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double At(uint32_t r, uint32_t c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  std::span<double> Row(uint32_t r) {
    return {data_.data() + static_cast<size_t>(r) * cols_, cols_};
  }
  std::span<const double> Row(uint32_t r) const {
    return {data_.data() + static_cast<size_t>(r) * cols_, cols_};
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Sets every element to `v`.
  void Fill(double v);

  /// Fills with iid Uniform(lo, hi) draws.
  void FillUniform(Rng* rng, double lo, double hi);

  /// Column sums (length cols()). This is the Σ_u f_u precomputation of
  /// Section IV-D.
  std::vector<double> ColumnSums() const;

  /// Frobenius norm squared — the l2 regularizer Σ ||f||².
  double SquaredFrobeniusNorm() const;

  friend bool operator==(const DenseMatrix& a, const DenseMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  uint32_t rows_ = 0;
  uint32_t cols_ = 0;
  std::vector<double> data_;
};

/// Non-owning row-major view of a matrix of doubles — the read-side
/// counterpart of DenseMatrix. A DenseMatrix converts implicitly, so
/// kernels written against the view accept both owned matrices and
/// borrowed storage (e.g. the mmapped factor sections a ModelStore serves
/// straight out of the page cache, core/model_store.h). The viewed memory
/// must outlive the view.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, uint32_t rows, uint32_t cols)
      : data_(data), rows_(rows), cols_(cols) {}
  /// Implicit: any DenseMatrix is viewable.
  ConstMatrixView(const DenseMatrix& m)  // NOLINT(runtime/explicit)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()) {}

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }
  size_t size() const { return static_cast<size_t>(rows_) * cols_; }

  double At(uint32_t r, uint32_t c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  std::span<const double> Row(uint32_t r) const {
    return {data_ + static_cast<size_t>(r) * cols_, cols_};
  }
  const double* data() const { return data_; }

 private:
  const double* data_ = nullptr;
  uint32_t rows_ = 0;
  uint32_t cols_ = 0;
};

/// Column sums of a borrowed matrix (length m.cols()). Accumulates in the
/// exact row-major order of DenseMatrix::ColumnSums, so the two agree
/// bit-for-bit on the same values — fold-in contexts built from an mmapped
/// ModelStore must match ones built from an in-memory model exactly.
std::vector<double> ColumnSums(ConstMatrixView m);

namespace vec {

/// <a, b> for equal-length spans.
double Dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x.
void Axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void Scale(double alpha, std::span<double> x);

/// Euclidean norm squared.
double SquaredNorm(std::span<const double> a);

/// Squared Euclidean distance between a and b.
double SquaredDistance(std::span<const double> a, std::span<const double> b);

/// Clamps each component to [0, +inf) — the projection step (f)_+ of
/// projected gradient descent.
void ProjectNonNegative(std::span<double> x);

}  // namespace vec

}  // namespace ocular

#endif  // OCULAR_SPARSE_DENSE_H_
