#ifndef OCULAR_SPARSE_CSR_H_
#define OCULAR_SPARSE_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "sparse/coo.h"

namespace ocular {

/// Compressed-sparse-row *pattern* matrix (binary values).
///
/// This is the central data structure for the one-class CF problem: rows are
/// users, columns are items, a stored entry means r_ui = 1. Row access is
/// O(1) + contiguous; membership queries are O(log deg(row)).
///
/// Column access needs the transpose — the trainers keep both R (user-major)
/// and R^T (item-major), which is the layout the paper's O(nnz * K) sweep
/// relies on.
class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() : row_ptr_(1, 0) {}

  /// Builds from finalized COO entries (sorted, deduplicated).
  static CsrMatrix FromCoo(const CooBuilder::Entries& entries);

  /// Builds directly from (row, col) pairs; sorts and deduplicates.
  /// If num_rows/num_cols are 0 the shape is inferred.
  static Result<CsrMatrix> FromPairs(
      const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
      uint32_t num_rows = 0, uint32_t num_cols = 0);

  uint32_t num_rows() const { return static_cast<uint32_t>(row_ptr_.size() - 1); }
  uint32_t num_cols() const { return num_cols_; }
  size_t nnz() const { return col_idx_.size(); }

  /// Fraction of cells that are set.
  double Density() const;

  /// Column indices of stored entries in `row`, ascending.
  std::span<const uint32_t> Row(uint32_t row) const {
    return {col_idx_.data() + row_ptr_[row],
            col_idx_.data() + row_ptr_[row + 1]};
  }

  /// Number of stored entries in `row`.
  uint32_t RowDegree(uint32_t row) const {
    return static_cast<uint32_t>(row_ptr_[row + 1] - row_ptr_[row]);
  }

  /// Largest row degree (0 for an empty matrix). The trainers size their
  /// per-thread scratch buffers from this.
  uint32_t MaxRowDegree() const;

  /// Membership test, O(log deg(row)).
  bool HasEntry(uint32_t row, uint32_t col) const;

  /// Transposed copy (column-major view of the same pattern).
  CsrMatrix Transpose() const;

  /// Restricts to the given rows (in order); shape becomes
  /// (rows.size(), num_cols()).
  CsrMatrix SelectRows(const std::vector<uint32_t>& rows) const;

  /// Per-column entry counts (popularity vector).
  std::vector<uint32_t> ColumnDegrees() const;

  /// All stored (row, col) pairs in row-major order.
  std::vector<std::pair<uint32_t, uint32_t>> ToPairs() const;

  /// Raw arrays (for the parallel executor & tests).
  const std::vector<uint64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<uint32_t>& col_idx() const { return col_idx_; }

  friend bool operator==(const CsrMatrix& a, const CsrMatrix& b) {
    return a.num_cols_ == b.num_cols_ && a.row_ptr_ == b.row_ptr_ &&
           a.col_idx_ == b.col_idx_;
  }

 private:
  std::vector<uint64_t> row_ptr_;   // size num_rows + 1
  std::vector<uint32_t> col_idx_;   // size nnz, sorted within each row
  uint32_t num_cols_ = 0;
};

}  // namespace ocular

#endif  // OCULAR_SPARSE_CSR_H_
