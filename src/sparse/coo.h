#ifndef OCULAR_SPARSE_COO_H_
#define OCULAR_SPARSE_COO_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace ocular {

/// Coordinate-format builder for binary sparse matrices.
///
/// The one-class CF setting only has positive entries (r_ui = 1), so the
/// matrix is *pattern-only*: an entry is present or absent, no values are
/// stored. Duplicate (row, col) pairs are collapsed by Finalize().
class CooBuilder {
 public:
  CooBuilder() = default;

  /// Pre-sizes internal buffers for `nnz` entries.
  void Reserve(size_t nnz);

  /// Records entry (row, col). Grows the implied shape as needed.
  void Add(uint32_t row, uint32_t col);

  /// Number of (possibly duplicated) recorded entries.
  size_t size() const { return rows_.size(); }

  /// Current implied shape (max index + 1). A larger explicit shape may be
  /// requested at Finalize time.
  uint32_t num_rows() const { return num_rows_; }
  uint32_t num_cols() const { return num_cols_; }

  /// Sorts by (row, col), removes duplicates, and returns the entry arrays.
  /// The builder is left empty. If explicit dimensions are given they must
  /// cover all recorded indices.
  struct Entries {
    uint32_t num_rows = 0;
    uint32_t num_cols = 0;
    std::vector<uint32_t> rows;
    std::vector<uint32_t> cols;
  };
  Result<Entries> Finalize(uint32_t num_rows = 0, uint32_t num_cols = 0);

 private:
  std::vector<uint32_t> rows_;
  std::vector<uint32_t> cols_;
  uint32_t num_rows_ = 0;
  uint32_t num_cols_ = 0;
};

}  // namespace ocular

#endif  // OCULAR_SPARSE_COO_H_
