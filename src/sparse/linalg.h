#ifndef OCULAR_SPARSE_LINALG_H_
#define OCULAR_SPARSE_LINALG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "sparse/dense.h"

namespace ocular {

/// Solves A x = b for symmetric positive-definite A (k x k, row-major,
/// only the full matrix is read) via Cholesky factorization. A is
/// destroyed (overwritten with the factor). Returns InvalidArgument on
/// shape mismatch and FailedPrecondition if A is not positive definite.
///
/// This is the K x K solve at the heart of the wALS baseline (Pan et al.):
/// with K <= a few hundred a dense Cholesky is the right tool.
Status CholeskySolveInPlace(std::vector<double>* a, uint32_t k,
                            std::span<const double> b,
                            std::vector<double>* x);

/// Computes the Gram matrix G = F^T F (k x k, row-major) of a factor
/// matrix F (n x k). O(n k^2). Used by wALS ("precompute F^T F once per
/// phase" trick).
std::vector<double> GramMatrix(const DenseMatrix& f);

/// Rank-one update: a += alpha * v v^T for row-major k x k `a`.
void AddOuterProduct(std::vector<double>* a, uint32_t k, double alpha,
                     std::span<const double> v);

}  // namespace ocular

#endif  // OCULAR_SPARSE_LINALG_H_
