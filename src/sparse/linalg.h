#ifndef OCULAR_SPARSE_LINALG_H_
#define OCULAR_SPARSE_LINALG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "sparse/dense.h"

namespace ocular {

/// Solves A x = b for symmetric positive-definite A (k x k, row-major,
/// only the full matrix is read) via Cholesky factorization. A is
/// destroyed (overwritten with the factor). Returns InvalidArgument on
/// shape mismatch and FailedPrecondition if A is not positive definite.
///
/// This is the K x K solve at the heart of the wALS baseline (Pan et al.):
/// with K <= a few hundred a dense Cholesky is the right tool.
Status CholeskySolveInPlace(std::vector<double>* a, uint32_t k,
                            std::span<const double> b,
                            std::vector<double>* x);

/// Computes the Gram matrix G = F^T F (k x k, row-major) of a factor
/// matrix F (n x k). O(n k^2). Used by wALS ("precompute F^T F once per
/// phase" trick).
std::vector<double> GramMatrix(const DenseMatrix& f);

/// Rank-one update: a += alpha * v v^T for row-major k x k `a`.
void AddOuterProduct(std::vector<double>* a, uint32_t k, double alpha,
                     std::span<const double> v);

/// K x n row-major transposed copy of an n x K factor matrix — the Vᵀ
/// layout of the serving ScoreBlock kernels: row c holds [f_i]_c for every
/// item contiguously, so a user-row x item-block product becomes K
/// contiguous Axpy passes over an L1-resident tile instead of per-item dot
/// reductions (which the compiler may not vectorize without reassociating
/// the sum). The factor models rebuild this once per Fit.
DenseMatrix TransposedCopy(const DenseMatrix& f);

namespace vec {

// Flat contiguous kernels of the training inner loop. Each is a single
// pass over K-length spans with no branches in the body, so the compiler
// auto-vectorizes them; the block-update hot path is built entirely from
// these plus Dot/Axpy (sparse/dense.h).

/// grad[c] = sums[c] + two_lambda * f[c] — the constant part of the block
/// gradient (complement trick: the Σ_all term plus the l2 term; the
/// per-neighbor corrections are Axpy'd on top).
void GradientInit(std::span<double> grad, std::span<const double> sums,
                  std::span<const double> f, double two_lambda);

/// The projection-arc trial point: trial[c] = max(0, f[c] - alpha*grad[c]).
/// Returns the Armijo descent inner product <grad, trial - f> computed in
/// the same pass.
double ProjectedTrial(std::span<double> trial, std::span<const double> f,
                      std::span<const double> grad, double alpha);

/// Computes <a, b> and ||a||² in one pass (the two reductions every block
/// objective evaluation needs); returns the dot, writes the squared norm.
double DotAndSquaredNorm(std::span<const double> a, std::span<const double> b,
                         double* a_squared_norm);

/// out[j] = <u_row, column item_begin + j of f_t> for j in [0, out.size()),
/// where `f_t` is the TransposedCopy (K x n) of an n x K factor matrix —
/// owned (DenseMatrix converts implicitly) or borrowed (e.g. the mmapped
/// serving-layout section of a ModelStore). Accumulates
/// dimension-by-dimension in ascending c, so each out[j] sums in exactly
/// the order of per-item vec::Dot over the row-major factors — the result
/// is bit-identical to the pair-at-a-time Score path. Zero user
/// coordinates are skipped (adding 0 * f is exact), which makes the cost
/// proportional to the user's *active* co-cluster affiliations.
void AffinityBlock(std::span<const double> u_row, ConstMatrixView f_t,
                   uint32_t item_begin, std::span<double> out);

}  // namespace vec

}  // namespace ocular

#endif  // OCULAR_SPARSE_LINALG_H_
