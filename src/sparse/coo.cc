#include "sparse/coo.h"

#include <algorithm>
#include <numeric>

namespace ocular {

void CooBuilder::Reserve(size_t nnz) {
  rows_.reserve(nnz);
  cols_.reserve(nnz);
}

void CooBuilder::Add(uint32_t row, uint32_t col) {
  rows_.push_back(row);
  cols_.push_back(col);
  if (row >= num_rows_) num_rows_ = row + 1;
  if (col >= num_cols_) num_cols_ = col + 1;
}

Result<CooBuilder::Entries> CooBuilder::Finalize(uint32_t num_rows,
                                                 uint32_t num_cols) {
  if (num_rows == 0) num_rows = num_rows_;
  if (num_cols == 0) num_cols = num_cols_;
  if (num_rows < num_rows_ || num_cols < num_cols_) {
    return Status::InvalidArgument(
        "explicit shape smaller than recorded indices");
  }

  // Sort index pairs by (row, col) via an argsort to keep the two parallel
  // arrays in sync.
  std::vector<uint32_t> order(rows_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    if (rows_[a] != rows_[b]) return rows_[a] < rows_[b];
    return cols_[a] < cols_[b];
  });

  Entries out;
  out.num_rows = num_rows;
  out.num_cols = num_cols;
  out.rows.reserve(rows_.size());
  out.cols.reserve(cols_.size());
  for (uint32_t idx : order) {
    const uint32_t r = rows_[idx];
    const uint32_t c = cols_[idx];
    if (!out.rows.empty() && out.rows.back() == r && out.cols.back() == c) {
      continue;  // duplicate
    }
    out.rows.push_back(r);
    out.cols.push_back(c);
  }
  rows_.clear();
  cols_.clear();
  num_rows_ = 0;
  num_cols_ = 0;
  return out;
}

}  // namespace ocular
