#ifndef OCULAR_DATA_STATS_H_
#define OCULAR_DATA_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csr.h"

namespace ocular {

/// Five-number-plus summary of a degree distribution.
struct DegreeSummary {
  uint32_t min = 0;
  uint32_t max = 0;
  double mean = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  /// Gini coefficient of the degrees — 0 = uniform, ->1 = concentrated
  /// (popularity skew).
  double gini = 0.0;
  /// Entities with degree zero (users with no purchases / items never
  /// bought).
  uint32_t zeros = 0;
};

/// Summarizes a degree vector.
DegreeSummary SummarizeDegrees(const std::vector<uint32_t>& degrees);

/// Dataset-level statistics, the Section VII-A style dataset description.
struct DatasetStats {
  uint32_t num_users = 0;
  uint32_t num_items = 0;
  size_t num_positives = 0;
  double density = 0.0;
  DegreeSummary user_degrees;
  DegreeSummary item_degrees;
};

/// Computes the stats of an interaction matrix.
DatasetStats ComputeDatasetStats(const CsrMatrix& interactions);

/// Renders the stats as a readable multi-line report.
std::string RenderDatasetStats(const DatasetStats& stats);

}  // namespace ocular

#endif  // OCULAR_DATA_STATS_H_
