#ifndef OCULAR_DATA_SYNTHETIC_H_
#define OCULAR_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "sparse/dense.h"

namespace ocular {

/// Parameters of the planted overlapping co-cluster model.
///
/// This is the paper's generative model (Section IV-A) run forward: draw
/// non-negative affiliation vectors f_u, f_i with K* planted co-clusters,
/// then sample r_ui = 1 with probability 1 - exp(-<f_u, f_i>), plus optional
/// uniform background noise. Ground truth is retained for recovery tests.
struct PlantedCoClusterConfig {
  uint32_t num_users = 200;
  uint32_t num_items = 100;
  uint32_t num_clusters = 4;
  /// Probability a user (item) joins each cluster, independently.
  double user_membership_prob = 0.15;
  double item_membership_prob = 0.15;
  /// Affiliation strength range for members (Uniform draw). With both
  /// endpoints ~1.0 an in-cluster pair fires with prob 1 - e^{-1} ~ 0.63
  /// per shared cluster.
  double strength_min = 0.9;
  double strength_max = 1.3;
  /// Background edge probability outside all co-clusters.
  double noise = 0.0;
  /// If true, every user/item is forced into at least one cluster so no row
  /// or column is structurally empty.
  bool force_membership = true;
  /// When > 0, item cluster membership is tilted by a Zipf(s) popularity
  /// weight so low-index items join more clusters (power-law popularity).
  double item_popularity_zipf = 0.0;
};

/// Output of the planted generator: the dataset plus ground truth.
struct PlantedCoClusterData {
  Dataset dataset;
  /// Ground-truth affiliation factors (num_users x K*, num_items x K*).
  DenseMatrix user_factors;
  DenseMatrix item_factors;
  /// Ground-truth membership lists per cluster.
  std::vector<std::vector<uint32_t>> cluster_users;
  std::vector<std::vector<uint32_t>> cluster_items;
  /// True P[r_ui = 1] under the planted model.
  double TrueProbability(uint32_t u, uint32_t i) const;
};

/// Samples a dataset from the planted model.
Result<PlantedCoClusterData> GeneratePlantedCoClusters(
    const PlantedCoClusterConfig& config, Rng* rng);

/// The 12x12 toy matrix of Figure 1 / Figure 3 of the paper. Three
/// overlapping co-clusters; OCuLaR should recommend item 4 to user 6 (and
/// item 6 to user 1, item 4 to users 4,5 are in-cluster holes as well).
Dataset MakePaperToyDataset();

/// Expected top recommendation of the toy example: (user 6, item 4).
struct ToyExpectation {
  uint32_t user = 6;
  uint32_t item = 4;
};

/// Shape-calibrated synthetic stand-ins for the paper's evaluation datasets
/// (Section VII-A). `scale` in (0, 1] shrinks users/items proportionally so
/// experiments run at laptop scale; 1.0 reproduces the published shape.
///
/// MovieLens-1M:  6,040 users x 3,706 items, ~1M ratings (~575k positives).
Result<PlantedCoClusterData> MakeMovieLensLike(double scale, Rng* rng);
/// CiteULike: 5,551 users x 16,980 articles, ~205k positives.
Result<PlantedCoClusterData> MakeCiteULikeLike(double scale, Rng* rng);
/// B2B-DB: 80,000 clients x 3,000 products.
Result<PlantedCoClusterData> MakeB2BLike(double scale, Rng* rng);
/// Netflix: 480,189 users x 17,770 movies, ~100M ratings (~56M positives).
Result<PlantedCoClusterData> MakeNetflixLike(double scale, Rng* rng);

}  // namespace ocular

#endif  // OCULAR_DATA_SYNTHETIC_H_
