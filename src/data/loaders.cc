#include "data/loaders.h"

#include <fstream>
#include <unordered_map>

#include "common/strings.h"
#include "sparse/coo.h"

namespace ocular {

namespace {

/// Remaps arbitrary ids to dense [0, n) ids in first-seen order.
class IdMap {
 public:
  uint32_t Get(int64_t raw) {
    auto [it, inserted] = map_.try_emplace(raw, next_);
    if (inserted) ++next_;
    return it->second;
  }
  uint32_t size() const { return next_; }

 private:
  std::unordered_map<int64_t, uint32_t> map_;
  uint32_t next_ = 0;
};

struct RawTriple {
  int64_t user;
  int64_t item;
  double rating;
};

Result<Dataset> BuildFromTriples(const std::string& name,
                                 const std::vector<RawTriple>& triples,
                                 double threshold, bool compact_ids) {
  CooBuilder coo;
  coo.Reserve(triples.size());
  IdMap users, items;
  for (const auto& t : triples) {
    if (t.rating < threshold) continue;
    uint32_t u, i;
    if (compact_ids) {
      u = users.Get(t.user);
      i = items.Get(t.item);
    } else {
      if (t.user < 0 || t.item < 0) {
        return Status::ParseError("negative id with compact_ids=false");
      }
      u = static_cast<uint32_t>(t.user);
      i = static_cast<uint32_t>(t.item);
    }
    coo.Add(u, i);
  }
  OCULAR_ASSIGN_OR_RETURN(auto entries, coo.Finalize());
  Dataset ds(name, CsrMatrix::FromCoo(entries));
  return ds;
}

}  // namespace

Result<Dataset> LoadMovieLens100K(const std::string& path,
                                  const LoaderOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::vector<RawTriple> triples;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view sv = Trim(line);
    if (sv.empty()) continue;
    auto fields = SplitAny(sv, "\t ");
    if (fields.size() < 3) {
      return Status::ParseError(path + ":" + std::to_string(lineno) +
                                ": expected >=3 fields");
    }
    OCULAR_ASSIGN_OR_RETURN(int64_t u, ParseInt64(fields[0]));
    OCULAR_ASSIGN_OR_RETURN(int64_t i, ParseInt64(fields[1]));
    OCULAR_ASSIGN_OR_RETURN(double r, ParseDouble(fields[2]));
    triples.push_back({u, i, r});
  }
  return BuildFromTriples("movielens-100k", triples,
                          options.positive_threshold, options.compact_ids);
}

Result<Dataset> LoadMovieLens1M(const std::string& path,
                                const LoaderOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::vector<RawTriple> triples;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view sv = Trim(line);
    if (sv.empty()) continue;
    auto fields = SplitSeparator(sv, "::");
    if (fields.size() < 3) {
      return Status::ParseError(path + ":" + std::to_string(lineno) +
                                ": expected user::item::rating");
    }
    OCULAR_ASSIGN_OR_RETURN(int64_t u, ParseInt64(fields[0]));
    OCULAR_ASSIGN_OR_RETURN(int64_t i, ParseInt64(fields[1]));
    OCULAR_ASSIGN_OR_RETURN(double r, ParseDouble(fields[2]));
    triples.push_back({u, i, r});
  }
  return BuildFromTriples("movielens-1m", triples, options.positive_threshold,
                          options.compact_ids);
}

Result<Dataset> LoadNetflix(const std::vector<std::string>& paths,
                            const LoaderOptions& options) {
  std::vector<RawTriple> triples;
  for (const auto& path : paths) {
    std::ifstream in(path);
    if (!in) return Status::IOError("cannot open '" + path + "'");
    std::string line;
    int64_t movie = -1;
    size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      std::string_view sv = Trim(line);
      if (sv.empty()) continue;
      if (sv.back() == ':') {
        OCULAR_ASSIGN_OR_RETURN(movie,
                                ParseInt64(sv.substr(0, sv.size() - 1)));
        continue;
      }
      if (movie < 0) {
        return Status::ParseError(path + ":" + std::to_string(lineno) +
                                  ": rating line before movie header");
      }
      auto fields = Split(sv, ',');
      if (fields.size() < 2) {
        return Status::ParseError(path + ":" + std::to_string(lineno) +
                                  ": expected user,rating[,date]");
      }
      OCULAR_ASSIGN_OR_RETURN(int64_t u, ParseInt64(fields[0]));
      OCULAR_ASSIGN_OR_RETURN(double r, ParseDouble(fields[1]));
      triples.push_back({u, movie, r});
    }
  }
  return BuildFromTriples("netflix", triples, options.positive_threshold,
                          options.compact_ids);
}

Result<Dataset> LoadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::string line;
  size_t lineno = 0;

  if (options.line_per_user) {
    // CiteULike users.dat style: line u holds the items of user u. The first
    // token of each line is a count in the original format; we accept both
    // "count item item ..." and plain "item item ..." by treating a first
    // token equal to the remaining token count as a count.
    CooBuilder coo;
    uint32_t user = 0;
    while (std::getline(in, line)) {
      ++lineno;
      std::string_view sv = Trim(line);
      if (!sv.empty() && options.comment_char != '\0' &&
          sv.front() == options.comment_char) {
        continue;
      }
      auto fields = SplitAny(sv, " \t,");
      size_t start = 0;
      if (fields.size() >= 2) {
        auto head = ParseInt64(fields[0]);
        if (head.ok() && static_cast<size_t>(head.value()) ==
                             fields.size() - 1) {
          start = 1;  // leading count token
        }
      }
      for (size_t f = start; f < fields.size(); ++f) {
        OCULAR_ASSIGN_OR_RETURN(int64_t item, ParseInt64(fields[f]));
        if (item < 0) return Status::ParseError("negative item id");
        coo.Add(user, static_cast<uint32_t>(item));
      }
      ++user;  // empty lines still advance the user index
    }
    OCULAR_ASSIGN_OR_RETURN(auto entries, coo.Finalize(user, 0));
    return Dataset("csv:" + path, CsrMatrix::FromCoo(entries));
  }

  std::vector<RawTriple> triples;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view sv = Trim(line);
    if (sv.empty()) continue;
    if (options.comment_char != '\0' && sv.front() == options.comment_char) {
      continue;
    }
    auto fields = options.delimiter == ' ' ? SplitAny(sv, " \t")
                                           : Split(sv, options.delimiter);
    if (fields.size() < 2) {
      return Status::ParseError(path + ":" + std::to_string(lineno) +
                                ": expected at least user, item");
    }
    OCULAR_ASSIGN_OR_RETURN(int64_t u, ParseInt64(fields[0]));
    OCULAR_ASSIGN_OR_RETURN(int64_t i, ParseInt64(fields[1]));
    double r = options.positive_threshold;  // default: row is a positive
    if (options.rating_column >= 0) {
      if (static_cast<size_t>(options.rating_column) >= fields.size()) {
        return Status::ParseError(path + ":" + std::to_string(lineno) +
                                  ": rating column out of range");
      }
      OCULAR_ASSIGN_OR_RETURN(r, ParseDouble(fields[options.rating_column]));
    }
    triples.push_back({u, i, r});
  }
  return BuildFromTriples("csv:" + path, triples, options.positive_threshold,
                          options.compact_ids);
}

Status SaveCsv(const Dataset& dataset, const std::string& path,
               char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  const CsrMatrix& m = dataset.interactions();
  for (uint32_t u = 0; u < m.num_rows(); ++u) {
    for (uint32_t i : m.Row(u)) {
      out << u << delimiter << i << '\n';
    }
  }
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

}  // namespace ocular
