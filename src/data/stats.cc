#include "data/stats.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"

namespace ocular {

DegreeSummary SummarizeDegrees(const std::vector<uint32_t>& degrees) {
  DegreeSummary out;
  if (degrees.empty()) return out;
  std::vector<uint32_t> sorted = degrees;
  std::sort(sorted.begin(), sorted.end());
  out.min = sorted.front();
  out.max = sorted.back();
  double total = 0.0;
  for (uint32_t d : sorted) {
    total += d;
    if (d == 0) ++out.zeros;
  }
  const size_t n = sorted.size();
  out.mean = total / static_cast<double>(n);
  out.median = (n % 2 == 1)
                   ? sorted[n / 2]
                   : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  out.p90 = sorted[static_cast<size_t>(0.9 * (n - 1))];
  // Gini via the sorted-index identity:
  //   G = (2 Σ_i i·x_(i) / (n Σ x)) − (n + 1) / n,  i = 1..n.
  if (total > 0) {
    double weighted = 0.0;
    for (size_t i = 0; i < n; ++i) {
      weighted += static_cast<double>(i + 1) * sorted[i];
    }
    out.gini = 2.0 * weighted / (static_cast<double>(n) * total) -
               (static_cast<double>(n) + 1.0) / static_cast<double>(n);
  }
  return out;
}

DatasetStats ComputeDatasetStats(const CsrMatrix& interactions) {
  DatasetStats out;
  out.num_users = interactions.num_rows();
  out.num_items = interactions.num_cols();
  out.num_positives = interactions.nnz();
  out.density = interactions.Density();
  std::vector<uint32_t> user_degrees(interactions.num_rows());
  for (uint32_t u = 0; u < interactions.num_rows(); ++u) {
    user_degrees[u] = interactions.RowDegree(u);
  }
  out.user_degrees = SummarizeDegrees(user_degrees);
  out.item_degrees = SummarizeDegrees(interactions.ColumnDegrees());
  return out;
}

namespace {

void AppendSummary(std::ostringstream* out, const char* label,
                   const DegreeSummary& s) {
  *out << "  " << label << ": min " << s.min << ", median "
       << FormatDouble(s.median, 1) << ", mean " << FormatDouble(s.mean, 1)
       << ", p90 " << FormatDouble(s.p90, 1) << ", max " << s.max
       << ", gini " << FormatDouble(s.gini, 3) << ", zeros " << s.zeros
       << "\n";
}

}  // namespace

std::string RenderDatasetStats(const DatasetStats& stats) {
  std::ostringstream out;
  out << "users " << FormatCount(stats.num_users) << ", items "
      << FormatCount(stats.num_items) << ", positives "
      << FormatCount(stats.num_positives) << " (density "
      << FormatDouble(stats.density * 100.0, 3) << "%)\n";
  AppendSummary(&out, "user degrees", stats.user_degrees);
  AppendSummary(&out, "item degrees", stats.item_degrees);
  return out.str();
}

}  // namespace ocular
