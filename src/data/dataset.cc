#include "data/dataset.h"

#include "common/strings.h"

namespace ocular {

std::string Dataset::UserLabel(uint32_t u) const {
  if (u < user_labels_.size()) return user_labels_[u];
  return "user " + std::to_string(u);
}

std::string Dataset::ItemLabel(uint32_t i) const {
  if (i < item_labels_.size()) return item_labels_[i];
  return "item " + std::to_string(i);
}

std::string Dataset::Summary() const {
  std::string out = name_.empty() ? std::string("<unnamed>") : name_;
  out += ": " + FormatCount(num_users()) + " users x " +
         FormatCount(num_items()) + " items, " +
         FormatCount(num_interactions()) + " positives (density " +
         FormatDouble(interactions_.Density() * 100.0, 3) + "%)";
  return out;
}

Status Dataset::Validate() const {
  if (!user_labels_.empty() && user_labels_.size() != num_users()) {
    return Status::InvalidArgument("user label count mismatch: " +
                                   std::to_string(user_labels_.size()) +
                                   " labels vs " +
                                   std::to_string(num_users()) + " users");
  }
  if (!item_labels_.empty() && item_labels_.size() != num_items()) {
    return Status::InvalidArgument("item label count mismatch: " +
                                   std::to_string(item_labels_.size()) +
                                   " labels vs " +
                                   std::to_string(num_items()) + " items");
  }
  return Status::OK();
}

}  // namespace ocular
