#ifndef OCULAR_DATA_LOADERS_H_
#define OCULAR_DATA_LOADERS_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace ocular {

/// Options shared by the rating-file loaders.
struct LoaderOptions {
  /// Ratings >= this value become positive examples; everything else is
  /// dropped (the ">= 3 stars" convention of the paper, Section VII-A).
  double positive_threshold = 3.0;
  /// Remap raw ids to dense [0, n) ids (true for public datasets whose ids
  /// are 1-based and sparse).
  bool compact_ids = true;
};

/// Loads MovieLens-100K format: tab-separated `user \t item \t rating \t ts`.
Result<Dataset> LoadMovieLens100K(const std::string& path,
                                  const LoaderOptions& options = {});

/// Loads MovieLens-1M/10M format: `user::item::rating::timestamp`.
Result<Dataset> LoadMovieLens1M(const std::string& path,
                                const LoaderOptions& options = {});

/// Loads a Netflix-prize per-movie file set. `paths` are files of the form
///   <movie id>:\n
///   <user>,<rating>,<date>\n ...
Result<Dataset> LoadNetflix(const std::vector<std::string>& paths,
                            const LoaderOptions& options = {});

/// Loads a generic delimited file of positive pairs (CiteULike-style
/// `users.dat`: line u lists the item ids of user u) when
/// `line_per_user` is true, or `user <delim> item [<delim> rating]` rows
/// otherwise.
struct CsvOptions {
  char delimiter = ' ';
  bool line_per_user = false;
  /// Column holding the rating; -1 means "every row is a positive".
  int rating_column = -1;
  double positive_threshold = 3.0;
  bool compact_ids = true;
  /// Lines starting with this character are skipped ('\0' disables).
  char comment_char = '#';
};
Result<Dataset> LoadCsv(const std::string& path, const CsvOptions& options = {});

/// Writes `dataset` as `user <sep> item` lines (round-trip with LoadCsv).
Status SaveCsv(const Dataset& dataset, const std::string& path,
               char delimiter = '\t');

}  // namespace ocular

#endif  // OCULAR_DATA_LOADERS_H_
