#include "data/scale.h"

#include <cstdint>

namespace ocular {
namespace {

// splitmix64 finalizer (Steele, Lea & Flood) — a full-avalanche mix so
// adjacent (user, dim) pairs land on statistically independent values.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Top 53 bits as a double in [0, 1).
double Unit(uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

// Domain tags keep the user and item streams disjoint even where a user
// index collides with an item index under the same seed.
constexpr uint64_t kUserTag = 0x75736572ULL;  // "user"
constexpr uint64_t kItemTag = 0x6974656dULL;  // "item"

double Draw(const ScaleCatalogSpec& spec, uint64_t tag, uint32_t row,
            uint32_t dim) {
  const uint64_t h = Mix(Mix(spec.seed ^ (tag << 32) ^ row) + dim);
  return spec.min_affinity +
         (spec.max_affinity - spec.min_affinity) * Unit(h);
}

}  // namespace

void ScaleUserRow(const ScaleCatalogSpec& spec, uint32_t user,
                  std::span<double> out) {
  for (uint32_t d = 0; d < spec.k && d < out.size(); ++d) {
    out[d] = Draw(spec, kUserTag, user, d);
  }
}

DenseMatrix ScaleItemFactors(const ScaleCatalogSpec& spec) {
  DenseMatrix items(spec.num_items, spec.k);
  for (uint32_t i = 0; i < spec.num_items; ++i) {
    for (uint32_t d = 0; d < spec.k; ++d) {
      items.At(i, d) = Draw(spec, kItemTag, i, d);
    }
  }
  return items;
}

DenseMatrix ScaleItemFactorsTransposed(const ScaleCatalogSpec& spec) {
  DenseMatrix t(spec.k, spec.num_items);
  for (uint32_t i = 0; i < spec.num_items; ++i) {
    for (uint32_t d = 0; d < spec.k; ++d) {
      t.At(d, i) = Draw(spec, kItemTag, i, d);
    }
  }
  return t;
}

}  // namespace ocular
