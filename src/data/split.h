#ifndef OCULAR_DATA_SPLIT_H_
#define OCULAR_DATA_SPLIT_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "sparse/csr.h"

namespace ocular {

/// A train/test partition of the positive entries of an interaction matrix.
/// Both halves keep the full (num_users x num_items) shape so factor indices
/// line up.
struct TrainTestSplit {
  CsrMatrix train;
  CsrMatrix test;
};

/// Randomly assigns each positive entry to train with probability
/// `train_fraction` (the paper's 75/25 protocol, Section VII-B.2).
/// Users whose positives all land in one side simply have an empty row in
/// the other; the evaluator skips users with no test positives.
Result<TrainTestSplit> SplitInteractions(const CsrMatrix& interactions,
                                         double train_fraction, Rng* rng);

/// Leave-k-out: for each user with more than `k` positives, move exactly
/// `k` uniformly chosen positives to test. Users with <= k positives stay
/// entirely in train.
Result<TrainTestSplit> LeaveKOut(const CsrMatrix& interactions, uint32_t k,
                                 Rng* rng);

/// K disjoint folds over the positive entries, for cross-validation.
/// Fold f's test set is fold f; its train set is everything else.
Result<std::vector<TrainTestSplit>> KFoldSplits(const CsrMatrix& interactions,
                                                uint32_t num_folds, Rng* rng);

/// Uniformly subsamples `fraction` of the positive entries (used by the
/// Fig. 7 scalability experiment: "increasing fractions of the Netflix
/// dataset, chosen uniformly").
Result<CsrMatrix> SampleFraction(const CsrMatrix& interactions,
                                 double fraction, Rng* rng);

}  // namespace ocular

#endif  // OCULAR_DATA_SPLIT_H_
