#include "data/split.h"

#include <algorithm>
#include <numeric>

#include "sparse/coo.h"

namespace ocular {

Result<TrainTestSplit> SplitInteractions(const CsrMatrix& interactions,
                                         double train_fraction, Rng* rng) {
  if (train_fraction < 0.0 || train_fraction > 1.0) {
    return Status::InvalidArgument("train_fraction must be in [0,1], got " +
                                   std::to_string(train_fraction));
  }
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  CooBuilder train_coo, test_coo;
  train_coo.Reserve(static_cast<size_t>(
      static_cast<double>(interactions.nnz()) * train_fraction) + 16);
  for (uint32_t u = 0; u < interactions.num_rows(); ++u) {
    for (uint32_t i : interactions.Row(u)) {
      if (rng->Bernoulli(train_fraction)) {
        train_coo.Add(u, i);
      } else {
        test_coo.Add(u, i);
      }
    }
  }
  OCULAR_ASSIGN_OR_RETURN(
      auto train_entries,
      train_coo.Finalize(interactions.num_rows(), interactions.num_cols()));
  OCULAR_ASSIGN_OR_RETURN(
      auto test_entries,
      test_coo.Finalize(interactions.num_rows(), interactions.num_cols()));
  return TrainTestSplit{CsrMatrix::FromCoo(train_entries),
                        CsrMatrix::FromCoo(test_entries)};
}

Result<TrainTestSplit> LeaveKOut(const CsrMatrix& interactions, uint32_t k,
                                 Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (k == 0) return Status::InvalidArgument("k must be positive");
  CooBuilder train_coo, test_coo;
  for (uint32_t u = 0; u < interactions.num_rows(); ++u) {
    auto row = interactions.Row(u);
    if (row.size() <= k) {
      for (uint32_t i : row) train_coo.Add(u, i);
      continue;
    }
    auto held = rng->SampleWithoutReplacement(row.size(), k);
    size_t h = 0;
    for (size_t idx = 0; idx < row.size(); ++idx) {
      if (h < held.size() && held[h] == idx) {
        test_coo.Add(u, row[idx]);
        ++h;
      } else {
        train_coo.Add(u, row[idx]);
      }
    }
  }
  OCULAR_ASSIGN_OR_RETURN(
      auto train_entries,
      train_coo.Finalize(interactions.num_rows(), interactions.num_cols()));
  OCULAR_ASSIGN_OR_RETURN(
      auto test_entries,
      test_coo.Finalize(interactions.num_rows(), interactions.num_cols()));
  return TrainTestSplit{CsrMatrix::FromCoo(train_entries),
                        CsrMatrix::FromCoo(test_entries)};
}

Result<std::vector<TrainTestSplit>> KFoldSplits(const CsrMatrix& interactions,
                                                uint32_t num_folds, Rng* rng) {
  if (num_folds < 2) {
    return Status::InvalidArgument("num_folds must be >= 2");
  }
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  auto pairs = interactions.ToPairs();
  std::vector<uint32_t> fold_of(pairs.size());
  for (size_t e = 0; e < pairs.size(); ++e) {
    fold_of[e] = static_cast<uint32_t>(e % num_folds);
  }
  rng->Shuffle(&fold_of);

  std::vector<TrainTestSplit> out;
  out.reserve(num_folds);
  for (uint32_t f = 0; f < num_folds; ++f) {
    CooBuilder train_coo, test_coo;
    for (size_t e = 0; e < pairs.size(); ++e) {
      if (fold_of[e] == f) {
        test_coo.Add(pairs[e].first, pairs[e].second);
      } else {
        train_coo.Add(pairs[e].first, pairs[e].second);
      }
    }
    OCULAR_ASSIGN_OR_RETURN(
        auto train_entries,
        train_coo.Finalize(interactions.num_rows(), interactions.num_cols()));
    OCULAR_ASSIGN_OR_RETURN(
        auto test_entries,
        test_coo.Finalize(interactions.num_rows(), interactions.num_cols()));
    out.push_back(TrainTestSplit{CsrMatrix::FromCoo(train_entries),
                                 CsrMatrix::FromCoo(test_entries)});
  }
  return out;
}

Result<CsrMatrix> SampleFraction(const CsrMatrix& interactions,
                                 double fraction, Rng* rng) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in [0,1]");
  }
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  const uint64_t target = static_cast<uint64_t>(
      static_cast<double>(interactions.nnz()) * fraction + 0.5);
  auto keep = rng->SampleWithoutReplacement(interactions.nnz(), target);
  auto pairs = interactions.ToPairs();
  CooBuilder coo;
  coo.Reserve(keep.size());
  for (uint64_t idx : keep) {
    coo.Add(pairs[idx].first, pairs[idx].second);
  }
  OCULAR_ASSIGN_OR_RETURN(
      auto entries,
      coo.Finalize(interactions.num_rows(), interactions.num_cols()));
  return CsrMatrix::FromCoo(entries);
}

}  // namespace ocular
