#ifndef OCULAR_DATA_DATASET_H_
#define OCULAR_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "sparse/csr.h"

namespace ocular {

/// An implicit-feedback (one-class) interaction dataset.
///
/// Holds the binary user-item matrix R plus optional display labels used by
/// the explanation generator (Section IV-C of the paper: in B2B settings the
/// rationale names the actual clients and products).
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, CsrMatrix interactions)
      : name_(std::move(name)), interactions_(std::move(interactions)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const CsrMatrix& interactions() const { return interactions_; }
  uint32_t num_users() const { return interactions_.num_rows(); }
  uint32_t num_items() const { return interactions_.num_cols(); }
  size_t num_interactions() const { return interactions_.nnz(); }

  /// Display label for user `u`; defaults to "user <u>".
  std::string UserLabel(uint32_t u) const;
  /// Display label for item `i`; defaults to "item <i>".
  std::string ItemLabel(uint32_t i) const;

  void set_user_labels(std::vector<std::string> labels) {
    user_labels_ = std::move(labels);
  }
  void set_item_labels(std::vector<std::string> labels) {
    item_labels_ = std::move(labels);
  }
  bool has_user_labels() const { return !user_labels_.empty(); }
  bool has_item_labels() const { return !item_labels_.empty(); }

  /// One-line summary: name, shape, nnz, density.
  std::string Summary() const;

  /// Validates internal consistency (label vector lengths match shape).
  Status Validate() const;

 private:
  std::string name_;
  CsrMatrix interactions_;
  std::vector<std::string> user_labels_;
  std::vector<std::string> item_labels_;
};

}  // namespace ocular

#endif  // OCULAR_DATA_DATASET_H_
