#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "sparse/coo.h"

namespace ocular {

double PlantedCoClusterData::TrueProbability(uint32_t u, uint32_t i) const {
  const double dot = vec::Dot(user_factors.Row(u), item_factors.Row(i));
  return 1.0 - std::exp(-dot);
}

namespace {

/// Draws memberships for one side (users or items) of the planted model.
void DrawMemberships(uint32_t n, uint32_t k, double membership_prob,
                     double strength_min, double strength_max,
                     bool force_membership, double zipf_s, Rng* rng,
                     DenseMatrix* factors,
                     std::vector<std::vector<uint32_t>>* members) {
  *factors = DenseMatrix(n, k, 0.0);
  members->assign(k, {});
  // Optional popularity tilt: entity e's membership probability is scaled by
  // a Zipf weight so low-index entities join more clusters.
  std::vector<double> weight(n, 1.0);
  if (zipf_s > 0.0) {
    double mean = 0.0;
    for (uint32_t e = 0; e < n; ++e) {
      weight[e] = 1.0 / std::pow(static_cast<double>(e + 1), zipf_s);
      mean += weight[e];
    }
    mean /= static_cast<double>(n);
    for (auto& w : weight) w /= mean;  // normalize to mean 1
  }
  for (uint32_t e = 0; e < n; ++e) {
    bool joined = false;
    const double p = std::min(1.0, membership_prob * weight[e]);
    for (uint32_t c = 0; c < k; ++c) {
      if (rng->Bernoulli(p)) {
        factors->At(e, c) = rng->Uniform(strength_min, strength_max);
        (*members)[c].push_back(e);
        joined = true;
      }
    }
    if (!joined && force_membership && k > 0) {
      const uint32_t c = static_cast<uint32_t>(rng->UniformInt(k));
      factors->At(e, c) = rng->Uniform(strength_min, strength_max);
      (*members)[c].push_back(e);
    }
  }
}

}  // namespace

Result<PlantedCoClusterData> GeneratePlantedCoClusters(
    const PlantedCoClusterConfig& config, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (config.num_users == 0 || config.num_items == 0) {
    return Status::InvalidArgument("empty shape");
  }
  if (config.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  if (config.strength_min < 0 || config.strength_max < config.strength_min) {
    return Status::InvalidArgument("invalid strength range");
  }

  PlantedCoClusterData out;
  DrawMemberships(config.num_users, config.num_clusters,
                  config.user_membership_prob, config.strength_min,
                  config.strength_max, config.force_membership,
                  /*zipf_s=*/0.0, rng, &out.user_factors, &out.cluster_users);
  DrawMemberships(config.num_items, config.num_clusters,
                  config.item_membership_prob, config.strength_min,
                  config.strength_max, config.force_membership,
                  config.item_popularity_zipf, rng, &out.item_factors,
                  &out.cluster_items);

  // Sample edges. Iterating co-cluster by co-cluster costs
  // O(Σ_c |U_c||I_c|) instead of O(n_u * n_i); pairs sharing several
  // clusters are handled by sampling per cluster and unioning, which is
  // exactly the paper's "each co-cluster generates a positive example
  // independently" semantics.
  CooBuilder coo;
  for (uint32_t c = 0; c < config.num_clusters; ++c) {
    for (uint32_t u : out.cluster_users[c]) {
      const double fu = out.user_factors.At(u, c);
      for (uint32_t i : out.cluster_items[c]) {
        const double fi = out.item_factors.At(i, c);
        const double p = 1.0 - std::exp(-fu * fi);
        if (rng->Bernoulli(p)) coo.Add(u, i);
      }
    }
  }
  if (config.noise > 0.0) {
    // Sparse background noise: draw the number of noise edges from the
    // expected count and place them uniformly.
    const double cells = static_cast<double>(config.num_users) *
                         static_cast<double>(config.num_items);
    const uint64_t num_noise =
        static_cast<uint64_t>(cells * config.noise + 0.5);
    for (uint64_t e = 0; e < num_noise; ++e) {
      coo.Add(static_cast<uint32_t>(rng->UniformInt(config.num_users)),
              static_cast<uint32_t>(rng->UniformInt(config.num_items)));
    }
  }
  OCULAR_ASSIGN_OR_RETURN(auto entries,
                          coo.Finalize(config.num_users, config.num_items));
  out.dataset = Dataset("planted", CsrMatrix::FromCoo(entries));
  return out;
}

Dataset MakePaperToyDataset() {
  // Reconstructed from Figures 1 and 3:
  //   co-cluster 1: users {0,1,2}   x items {3,4,5,6}
  //   co-cluster 2: users {4,5,6}   x items {1,2,3,4}
  //   co-cluster 3: users {6,7,8,9} x items {4,...,9}
  // Holes (the recommendations): user 1 misses item 6; user 6 misses item 4;
  // users 7-9 each have item 4 (per Fig. 3 they are positives there).
  CooBuilder coo;
  auto add_block = [&coo](std::initializer_list<uint32_t> users,
                          std::initializer_list<uint32_t> items) {
    for (uint32_t u : users) {
      for (uint32_t i : items) coo.Add(u, i);
    }
  };
  add_block({0, 2}, {3, 4, 5, 6});
  add_block({1}, {3, 4, 5});  // user 1 misses item 6 -> candidate rec
  add_block({4, 5}, {1, 2, 3, 4});
  add_block({6}, {1, 2, 3});           // user 6 misses item 4 -> headline rec
  add_block({6}, {5, 6, 7, 8, 9});     // user 6's second pattern
  add_block({7, 8, 9}, {4, 5, 6, 7, 8, 9});
  auto entries = coo.Finalize(12, 12);
  Dataset ds("paper-toy", CsrMatrix::FromCoo(entries.value()));
  std::vector<std::string> users, items;
  for (int n = 0; n < 12; ++n) {
    users.push_back("Client " + std::to_string(n));
    items.push_back("Item " + std::to_string(n));
  }
  ds.set_user_labels(std::move(users));
  ds.set_item_labels(std::move(items));
  return ds;
}

namespace {

/// Builds a dataset whose *evaluation geometry* tracks the real dataset as
/// it shrinks:
///  - users scale linearly with `scale` (they are cheap);
///  - items scale with sqrt(scale), so the catalog stays large relative to
///    the paper's M = 50 cutoff and recall@50 does not saturate;
///  - the average positives-per-user stays at the real dataset's value;
///  - a fixed share of positives (`noise_share`) falls OUTSIDE every
///    planted co-cluster — the idiosyncratic interactions of real data
///    that no co-cluster model can predict, which keeps recall in the
///    paper's 0.3-0.55 band.
/// User membership probability and noise rate are derived from those
/// constraints rather than hand-tuned per scale.
Result<PlantedCoClusterData> MakeShaped(const char* name, uint32_t users,
                                        uint32_t items, uint32_t clusters,
                                        double item_p, double target_degree,
                                        double noise_share, double zipf,
                                        double scale, Rng* rng) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  PlantedCoClusterConfig cfg;
  cfg.num_users = std::max<uint32_t>(
      40, static_cast<uint32_t>(static_cast<double>(users) * scale));
  cfg.num_items = std::max<uint32_t>(
      60, static_cast<uint32_t>(static_cast<double>(items) *
                                std::sqrt(scale)));
  cfg.num_clusters = std::max<uint32_t>(
      4, static_cast<uint32_t>(static_cast<double>(clusters) *
                               std::sqrt(scale)));
  cfg.item_membership_prob = item_p;
  cfg.item_popularity_zipf = zipf;
  // Mean in-cluster edge probability given Uniform(strength) factors.
  const double mid =
      0.5 * (cfg.strength_min + cfg.strength_max);
  const double edge_prob = 1.0 - std::exp(-mid * mid);
  const double items_per_cluster =
      static_cast<double>(cfg.num_items) * item_p;
  // Solve: clusters * u_p * items_per_cluster * edge_prob
  //          = (1 - noise_share) * target_degree.
  const double cluster_edges = (1.0 - noise_share) * target_degree;
  cfg.user_membership_prob = std::min(
      0.9, cluster_edges / (static_cast<double>(cfg.num_clusters) *
                            std::max(1.0, items_per_cluster) * edge_prob));
  cfg.noise =
      noise_share * target_degree / static_cast<double>(cfg.num_items);
  // Idiosyncratic users exist in real data; do not force memberships.
  cfg.force_membership = false;
  OCULAR_ASSIGN_OR_RETURN(auto data, GeneratePlantedCoClusters(cfg, rng));
  data.dataset.set_name(name);
  return data;
}

}  // namespace

Result<PlantedCoClusterData> MakeMovieLensLike(double scale, Rng* rng) {
  // 6,040 x 3,706, ~575k positives -> ~95 positives/user.
  return MakeShaped("movielens-like", 6040, 3706, 24, 0.08, 95.0, 0.35,
                    0.6, scale, rng);
}

Result<PlantedCoClusterData> MakeCiteULikeLike(double scale, Rng* rng) {
  // 5,551 x 16,980, ~205k positives -> ~37 positives/user, long-tail items.
  return MakeShaped("citeulike-like", 5551, 16980, 40, 0.012, 37.0, 0.35,
                    0.8, scale, rng);
}

Result<PlantedCoClusterData> MakeB2BLike(double scale, Rng* rng) {
  // 80,000 clients x 3,000 products; sparse purchase bundles per vertical.
  return MakeShaped("b2b-like", 80000, 3000, 32, 0.07, 15.0, 0.30, 0.5,
                    scale, rng);
}

Result<PlantedCoClusterData> MakeNetflixLike(double scale, Rng* rng) {
  // 480,189 x 17,770, ~56M positives -> ~117 positives/user, heavy skew.
  return MakeShaped("netflix-like", 480189, 17770, 50, 0.04, 117.0, 0.35,
                    0.9, scale, rng);
}

}  // namespace ocular
