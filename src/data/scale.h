#ifndef OCULAR_DATA_SCALE_H_
#define OCULAR_DATA_SCALE_H_

#include <cstdint>
#include <span>

#include "sparse/dense.h"

namespace ocular {

/// \file
/// \brief Deterministic multi-million-user factor catalogs for scale
/// tests and benchmarks.
///
/// A planted-co-cluster draw (data/synthetic.h) materializes the whole
/// interaction matrix, which caps it far below catalog scale. This
/// generator instead defines the *trained* factors directly as a pure
/// hash of (seed, user, dim): any single user row can be regenerated in
/// O(k) at any time, in any order, on any machine. That purity is the
/// point — the writer streams rows to disk one shard at a time (peak
/// memory: one shard), and the verifier later regenerates the exact row
/// for any sampled user to serve as an offline oracle, without either
/// side ever holding the n_u x K matrix.

/// Parameters of a deterministic scale catalog. Factors are Uniform
/// [min_affinity, max_affinity) per (seed, user/item, dim); with the
/// defaults an average inner product sits well inside the
/// 1 - e^{-<f_u,f_i>} probability map's dynamic range.
struct ScaleCatalogSpec {
  uint32_t num_users = 2'000'000;
  uint32_t num_items = 128;
  uint32_t k = 8;
  uint64_t seed = 1;
  double min_affinity = 0.0;
  double max_affinity = 0.6;
};

/// Writes `user`'s factor row into `out` (out.size() must be spec.k).
/// Pure: the same (spec, user) always yields the same row, independent of
/// call order — callers rely on this to re-derive rows as an oracle.
void ScaleUserRow(const ScaleCatalogSpec& spec, uint32_t user,
                  std::span<double> out);

/// The full item factor matrix (num_items x k), deterministic in spec.
/// Items are few (hundreds) even at catalog scale, so materializing them
/// is cheap.
DenseMatrix ScaleItemFactors(const ScaleCatalogSpec& spec);

/// The K x n_i transposed serving layout of ScaleItemFactors — what the
/// OCLR v2 items section stores for the branch-free affinity kernel.
DenseMatrix ScaleItemFactorsTransposed(const ScaleCatalogSpec& spec);

}  // namespace ocular

#endif  // OCULAR_DATA_SCALE_H_
