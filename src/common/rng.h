#ifndef OCULAR_COMMON_RNG_H_
#define OCULAR_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ocular {

/// Deterministic, seedable pseudo-random number generator
/// (xoshiro256++, Blackman & Vigna). All stochastic components of the
/// library (initialization, sampling, splits, generators) take an Rng so
/// experiments are exactly reproducible from a seed.
class Rng {
 public:
  /// Seeds the generator via splitmix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi). Precondition: hi > lo.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Box–Muller, cached spare).
  double Normal();

  /// Normal with given mean / stddev.
  double Normal(double mean, double stddev);

  /// Exponential variate with rate `lambda` (> 0).
  double Exponential(double lambda);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed integer in [0, n) with exponent `s` >= 0.
  /// Uses inverse-CDF on precomputable weights; O(log n) per draw after an
  /// O(n) first-call setup for a given (n, s).
  uint64_t Zipf(uint64_t n, double s);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(static_cast<uint64_t>(i + 1)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in increasing order.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Splits off an independent stream (useful for per-thread RNGs).
  Rng Split();

 private:
  uint64_t state_[4];
  // Zipf cache for repeated draws with identical parameters.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
  // Box–Muller spare.
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace ocular

#endif  // OCULAR_COMMON_RNG_H_
