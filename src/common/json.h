#ifndef OCULAR_COMMON_JSON_H_
#define OCULAR_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace ocular {

/// Minimal streaming JSON writer (no external deps). Produces compact,
/// valid JSON for the structured outputs of the library (explanations for
/// the deployment UI, CLI results, experiment records).
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("user"); w.Int(6);
///   w.Key("items"); w.BeginArray(); w.Int(4); w.EndArray();
///   w.EndObject();
///   std::string out = w.str();
///
/// Invariants are enforced with asserts in debug builds only — this is a
/// programmer-facing API, not a parser of untrusted input.
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key. Must be inside an object, before a value.
  void Key(const std::string& name);

  void String(const std::string& value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  /// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// The accumulated document.
  const std::string& str() const { return out_; }

  /// Escapes a string per RFC 8259 (quotes, backslash, control chars).
  static std::string Escape(const std::string& s);

 private:
  void MaybeComma();

  std::string out_;
  // Stack of container states: true = needs comma before next element.
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

/// Parsed JSON document — the read-side counterpart of JsonWriter, added
/// for the serving daemon's newline-delimited request protocol
/// (serving/daemon.h). A strict RFC 8259 recursive-descent parser over
/// UNTRUSTED input: every malformed document yields a ParseError (no
/// asserts), nesting depth is bounded, numbers are doubles (the only
/// number type JSON has).
///
/// Usage:
///   OCULAR_ASSIGN_OR_RETURN(JsonValue v, JsonValue::Parse(line));
///   const JsonValue* user = v.Find("user");
///   if (user == nullptr || !user->is_number()) ...
class JsonValue {
 public:
  /// Discriminator of the held value.
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one complete JSON document (surrounding whitespace allowed,
  /// trailing garbage rejected).
  static Result<JsonValue> Parse(std::string_view text);

  /// Constructs null.
  JsonValue() = default;

  /// The held type.
  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Value accessors; each is only meaningful for the matching type (a
  /// mismatched access returns the type's zero value).
  bool boolean() const { return number_ != 0.0; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  /// Array elements (empty unless is_array()).
  const std::vector<JsonValue>& array() const { return children_; }
  /// Object members in document order (empty unless is_object()).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object lookup: the value of `key`, or nullptr when absent (or when
  /// this value is not an object). First match wins on duplicate keys.
  const JsonValue* Find(const std::string& key) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  double number_ = 0.0;  // numbers; 0/1 for booleans
  std::string string_;
  std::vector<JsonValue> children_;                         // arrays
  std::vector<std::pair<std::string, JsonValue>> members_;  // objects
};

}  // namespace ocular

#endif  // OCULAR_COMMON_JSON_H_
