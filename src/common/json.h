#ifndef OCULAR_COMMON_JSON_H_
#define OCULAR_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ocular {

/// Minimal streaming JSON writer (no external deps). Produces compact,
/// valid JSON for the structured outputs of the library (explanations for
/// the deployment UI, CLI results, experiment records).
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("user"); w.Int(6);
///   w.Key("items"); w.BeginArray(); w.Int(4); w.EndArray();
///   w.EndObject();
///   std::string out = w.str();
///
/// Invariants are enforced with asserts in debug builds only — this is a
/// programmer-facing API, not a parser of untrusted input.
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key. Must be inside an object, before a value.
  void Key(const std::string& name);

  void String(const std::string& value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  /// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// The accumulated document.
  const std::string& str() const { return out_; }

  /// Escapes a string per RFC 8259 (quotes, backslash, control chars).
  static std::string Escape(const std::string& s);

 private:
  void MaybeComma();

  std::string out_;
  // Stack of container states: true = needs comma before next element.
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

}  // namespace ocular

#endif  // OCULAR_COMMON_JSON_H_
