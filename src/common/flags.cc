#include "common/flags.h"

#include "common/strings.h"

namespace ocular {

Flags Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (!StartsWith(arg, "--")) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not itself a flag; otherwise a
    // bare boolean.
    if (a + 1 < argc && !StartsWith(argv[a + 1], "--")) {
      flags.values_[body] = argv[a + 1];
      ++a;
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  auto parsed = ParseInt64(it->second);
  return parsed.ok() ? parsed.value() : def;
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  auto parsed = ParseDouble(it->second);
  return parsed.ok() ? parsed.value() : def;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return def;
}

Result<std::string> Flags::RequireString(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return Status::InvalidArgument("missing required flag --" + name);
  }
  return it->second;
}

Result<int64_t> Flags::RequireInt(const std::string& name) const {
  OCULAR_ASSIGN_OR_RETURN(std::string raw, RequireString(name));
  return ParseInt64(raw);
}

Result<double> Flags::RequireDouble(const std::string& name) const {
  OCULAR_ASSIGN_OR_RETURN(std::string raw, RequireString(name));
  return ParseDouble(raw);
}

std::vector<std::string> Flags::Names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace ocular
