#ifndef OCULAR_COMMON_TIMER_H_
#define OCULAR_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace ocular {

/// Monotonic stopwatch for measuring wall-clock intervals.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction / Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed microseconds since construction / Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ocular

#endif  // OCULAR_COMMON_TIMER_H_
