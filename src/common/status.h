#ifndef OCULAR_COMMON_STATUS_H_
#define OCULAR_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace ocular {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of a small closed enum plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIOError = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kAlreadyExists = 6,
  kInternal = 7,
  kNotImplemented = 8,
  kParseError = 9,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Value-type status object. Library code never throws; every fallible
/// operation returns a Status (or a Result<T>, see result.h).
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Early-return helper: propagates a non-OK status to the caller.
#define OCULAR_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::ocular::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace ocular

#endif  // OCULAR_COMMON_STATUS_H_
