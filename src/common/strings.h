#ifndef OCULAR_COMMON_STRINGS_H_
#define OCULAR_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace ocular {

/// Splits `s` on `delim`, keeping empty fields. "a,,b" -> {"a","","b"}.
std::vector<std::string_view> Split(std::string_view s, char delim);

/// Splits `s` on any character in `delims`, dropping empty fields
/// (whitespace-tokenizer behavior).
std::vector<std::string_view> SplitAny(std::string_view s,
                                       std::string_view delims);

/// Splits on a multi-character separator (e.g. "::" for MovieLens-1M).
std::vector<std::string_view> SplitSeparator(std::string_view s,
                                             std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Strict integer / floating-point parsers. Reject trailing garbage.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats a double with `digits` significant decimal places (for report
/// tables; avoids std::format dependence).
std::string FormatDouble(double v, int digits = 4);

/// Renders a human-readable count, e.g. 1234567 -> "1,234,567".
std::string FormatCount(uint64_t v);

}  // namespace ocular

#endif  // OCULAR_COMMON_STRINGS_H_
