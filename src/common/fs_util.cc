#include "common/fs_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/fault.h"

namespace ocular {
namespace fs {

namespace {

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    const Status st =
        Status::IOError("fsync " + what + ": " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace

Status FsyncFile(const std::string& path) {
  if (fault::Maybe("store.fsync")) return fault::InjectedError("store.fsync");
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("open for fsync " + path + ": " +
                           std::strerror(errno));
  }
  return FsyncFd(fd, path);
}

Status FsyncParentDir(const std::string& path) {
  if (fault::Maybe("store.dirsync")) {
    return fault::InjectedError("store.dirsync");
  }
  const std::string dir = ParentDir(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("open dir for fsync " + dir + ": " +
                           std::strerror(errno));
  }
  return FsyncFd(fd, dir);
}

Status DurableRename(const std::string& from, const std::string& to) {
  if (fault::Maybe("store.rename")) {
    return fault::InjectedError("store.rename");
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError("rename " + from + " -> " + to + ": " +
                           std::strerror(errno));
  }
  return FsyncParentDir(to);
}

Result<uint64_t> FileFingerprint(const std::string& path, size_t max_bytes) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  uint64_t h = 14695981039346656037ull;
  size_t total = 0;
  unsigned char chunk[4096];
  while (total < max_bytes) {
    const size_t want =
        max_bytes - total < sizeof(chunk) ? max_bytes - total : sizeof(chunk);
    const ssize_t n = ::read(fd, chunk, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st =
          Status::IOError("read " + path + ": " + std::strerror(errno));
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    for (ssize_t i = 0; i < n; ++i) {
      h ^= chunk[i];
      h *= 1099511628211ull;
    }
    total += static_cast<size_t>(n);
  }
  ::close(fd);
  return h;
}

}  // namespace fs
}  // namespace ocular
