#ifndef OCULAR_COMMON_FLAGS_H_
#define OCULAR_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace ocular {

/// Minimal command-line parser for the CLI tool and the bench binaries.
///
/// Accepts "--name=value", "--name value" and bare "--flag" (boolean true).
/// Anything not starting with "--" is a positional argument. No external
/// dependencies, no global state.
class Flags {
 public:
  /// Parses argv; never fails (later duplicates win).
  static Flags Parse(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool Has(const std::string& name) const;

  /// Typed getters with defaults.
  std::string GetString(const std::string& name,
                        const std::string& def = "") const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def = false) const;

  /// Strict typed getters: error when the flag is missing or malformed.
  Result<std::string> RequireString(const std::string& name) const;
  Result<int64_t> RequireInt(const std::string& name) const;
  Result<double> RequireDouble(const std::string& name) const;

  /// Positional (non-flag) arguments in order, excluding argv[0].
  const std::vector<std::string>& positional() const { return positional_; }

  /// All parsed flag names (for unknown-flag checks).
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ocular

#endif  // OCULAR_COMMON_FLAGS_H_
