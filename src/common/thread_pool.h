#ifndef OCULAR_COMMON_THREAD_POOL_H_
#define OCULAR_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace ocular {

/// Fixed-size worker pool with a simple FIFO task queue.
///
/// This is the substrate behind ParallelExecutor (src/parallel), which
/// emulates the paper's GPU kernel decomposition (Section VI) on CPU
/// threads. The pool is intentionally minimal: Submit() for fire-and-forget
/// tasks, ParallelFor() for blocking index-range decomposition, and Wait()
/// to drain.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// Runs fn(i) for i in [begin, end), partitioned into contiguous chunks
  /// across the workers, and blocks until all complete. `grain` is the
  /// minimum chunk size (guards against tiny-task overheads).
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn, size_t grain = 64);

  /// Runs fn(chunk_begin, chunk_end) over a partition of [begin, end) and
  /// blocks. Useful when the body wants to amortize per-chunk setup.
  void ParallelForChunked(
      size_t begin, size_t end,
      const std::function<void(size_t, size_t)>& fn, size_t grain = 64);

  /// Runs fn(lo, hi) for every caller-supplied half-open range and blocks.
  /// This is the entry point for weight-balanced decompositions (e.g.
  /// equal-nnz row ranges from BalancedRowRanges) where uniform chunking
  /// would serialize on a few heavy chunks. A single range runs inline on
  /// the calling thread.
  void ParallelForRanges(
      const std::vector<std::pair<size_t, size_t>>& ranges,
      const std::function<void(size_t, size_t)>& fn);

  /// Index of the calling pool worker in [0, num_threads()), or
  /// kNotAWorker when called from a thread that is not a pool worker (e.g.
  /// the caller of ParallelFor* running a chunk inline). Lets parallel
  /// bodies pick a per-worker scratch slot without locking.
  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);
  static size_t CurrentWorkerIndex();

  /// Scratch slot for the calling thread given a scratch array of
  /// `num_threads` + 1 entries: pool workers use their own index, anything
  /// else — the caller running a single-range phase inline, including a
  /// worker of some OTHER pool whose thread-local index would alias the
  /// array — shares the extra slot at the end. (Only one thread ever runs
  /// inline per fork-join phase, so the shared slot is uncontended.)
  static size_t ScratchSlot(size_t num_threads) {
    const size_t idx = CurrentWorkerIndex();
    return idx < num_threads ? idx : num_threads;
  }

 private:
  void WorkerLoop(size_t worker_index);

  /// Shared waiter for the fork-join entry points: submits fn over the
  /// given ranges and blocks until all complete.
  void RunAndWait(const std::vector<std::pair<size_t, size_t>>& ranges,
                  const std::function<void(size_t, size_t)>& fn);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;   // signalled when a task is available
  std::condition_variable cv_done_;   // signalled when the pool drains
  size_t in_flight_ = 0;              // queued + running tasks
  bool shutdown_ = false;
};

}  // namespace ocular

#endif  // OCULAR_COMMON_THREAD_POOL_H_
