#ifndef OCULAR_COMMON_FAULT_H_
#define OCULAR_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace ocular {
namespace fault {

/// \file
/// \brief Named fault-injection points for the failure-domain tests.
///
/// Production code asks `fault::Maybe("store.rename")` at the places a
/// real failure could strike (disk write, fsync, rename, socket accept,
/// socket send, update apply). When injection is disarmed — the default,
/// and the only state production ever runs in — Maybe() is one relaxed
/// atomic load and an always-false branch, cheap enough to leave compiled
/// into release builds (the daemon bench gates its overhead at <= 1%).
///
/// Tests and the chaos CI job arm points either programmatically
/// (`fault::Configure("store.rename=1")`) or through the environment
/// variable `OCULAR_FAULTS`, read once at process start:
///
///     OCULAR_FAULTS=store.rename=1,daemon.send=1/3
///
/// Spec grammar, comma-separated `point=action` entries:
///   - `point=N`       fail the first N calls of that point, then pass
///   - `point=K/N`     deterministic K-of-every-N: call i (0-based)
///                     fails iff i % N < K — a reproducible stand-in for
///                     probabilistic failure (`1/3` ~ a third of calls)
///   - `point=kill`    SIGKILL the process on the first call — the
///   - `point=kill@C`  crash simulator for durability tests (C-th call)
///
/// The injection-point catalog lives in docs/ARCHITECTURE.md; tests use
/// Calls()/Hits() to assert a point actually fired.

namespace internal {
extern std::atomic<bool> g_armed;
bool MaybeSlow(const char* point);
}  // namespace internal

/// \brief True when this call of `point` should fail. The disarmed fast
/// path is a single relaxed load; once any point is configured, armed
/// calls take a mutex (test-only cost).
inline bool Maybe(const char* point) {
  if (!internal::g_armed.load(std::memory_order_relaxed)) return false;
  return internal::MaybeSlow(point);
}

/// \brief True when any injection point is configured.
inline bool Armed() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

/// \brief Replaces the active configuration with `spec` (the OCULAR_FAULTS
/// grammar above; empty disarms). InvalidArgument on a malformed spec, in
/// which case the previous configuration stays active.
Status Configure(const std::string& spec);

/// \brief Disarms every point and clears all counters.
void Reset();

/// \brief Times `point` was evaluated (armed calls only — the disarmed
/// fast path does not count, by design: counting would make it non-free).
uint64_t Calls(const std::string& point);

/// \brief Times Maybe(`point`) returned true (or would have killed).
uint64_t Hits(const std::string& point);

/// \brief The canonical IOError a production site should return when a
/// point fires, so injected failures are greppable in logs and replies.
Status InjectedError(const char* point);

}  // namespace fault
}  // namespace ocular

#endif  // OCULAR_COMMON_FAULT_H_
