#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cmath>
#include <unordered_set>

namespace ocular {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(hi > lo);
  return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo)));
}

double Rng::Normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  spare_ = mag * std::sin(two_pi * u2);
  has_spare_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double acc = 0.0;
    for (uint64_t k = 0; k < n; ++k) {
      acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
      zipf_cdf_[k] = acc;
    }
    for (auto& v : zipf_cdf_) v /= acc;
  }
  const double u = Uniform();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) return n - 1;
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  assert(k <= n);
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense case: partial Fisher–Yates over an explicit index array.
    std::vector<uint64_t> idx(n);
    for (uint64_t i = 0; i < n; ++i) idx[i] = i;
    for (uint64_t i = 0; i < k; ++i) {
      uint64_t j = i + UniformInt(n - i);
      std::swap(idx[i], idx[j]);
    }
    out.assign(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(k));
  } else {
    // Sparse case: rejection sampling into a hash set.
    std::unordered_set<uint64_t> seen;
    seen.reserve(static_cast<size_t>(k * 2));
    while (seen.size() < k) seen.insert(UniformInt(n));
    out.assign(seen.begin(), seen.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Rng Rng::Split() { return Rng(Next() ^ 0xa0761d6478bd642fULL); }

}  // namespace ocular
