#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace ocular {

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key; no comma
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_.push_back(',');
    needs_comma_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  needs_comma_.pop_back();
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  needs_comma_.pop_back();
}

void JsonWriter::Key(const std::string& name) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_.push_back(',');
    needs_comma_.back() = true;
  }
  out_.push_back('"');
  out_ += Escape(name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  MaybeComma();
  out_.push_back('"');
  out_ += Escape(value);
  out_.push_back('"');
}

void JsonWriter::Int(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
}

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

// ------------------------------------------------------------- JsonValue

// Recursive-descent parser over a string_view cursor. Kept as a class so
// the depth budget and cursor thread through cleanly; JsonValue befriends
// it to let it fill private members without exposing setters.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    OCULAR_RETURN_IF_ERROR(ParseValue(&root, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing content after JSON document");
    }
    return root;
  }

 private:
  // Deep enough for any sane request, small enough that malicious nesting
  // cannot overflow the stack.
  static constexpr int kMaxDepth = 64;

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Fail(const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("JSON nested too deeply");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of JSON");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        OCULAR_RETURN_IF_ERROR(ParseLiteral("true"));
        out->type_ = JsonValue::Type::kBool;
        out->number_ = 1.0;
        return Status::OK();
      case 'f':
        OCULAR_RETURN_IF_ERROR(ParseLiteral("false"));
        out->type_ = JsonValue::Type::kBool;
        out->number_ = 0.0;
        return Status::OK();
      case 'n':
        OCULAR_RETURN_IF_ERROR(ParseLiteral("null"));
        out->type_ = JsonValue::Type::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Fail("malformed JSON literal");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      OCULAR_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      JsonValue value;
      OCULAR_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      OCULAR_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->children_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      // Escape sequence.
      if (++pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char d = text_[pos_ + i];
            code <<= 4;
            if (d >= '0' && d <= '9') code |= static_cast<uint32_t>(d - '0');
            else if (d >= 'a' && d <= 'f') code |= static_cast<uint32_t>(d - 'a' + 10);
            else if (d >= 'A' && d <= 'F') code |= static_cast<uint32_t>(d - 'A' + 10);
            else return Fail("malformed \\u escape");
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences — lossless for round-tripping,
          // and request fields the daemon cares about are ASCII anyway).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape sequence");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      return Fail("malformed JSON value");
    }
    // Leading zeros: "0" ok, "01" not.
    const size_t int_begin = text_[start] == '-' ? start + 1 : start;
    if (text_[int_begin] == '0' && pos_ > int_begin + 1) {
      return Fail("number has leading zero");
    }
    if (Consume('.')) {
      const size_t frac = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac) return Fail("missing digits after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const size_t exp = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp) return Fail("missing digits in exponent");
    }
    OCULAR_ASSIGN_OR_RETURN(
        out->number_,
        ParseDouble(text_.substr(start, pos_ - start)));
    out->type_ = JsonValue::Type::kNumber;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

}  // namespace ocular
