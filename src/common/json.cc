#include "common/json.h"

#include <cmath>
#include <cstdio>

namespace ocular {

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key; no comma
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_.push_back(',');
    needs_comma_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  needs_comma_.pop_back();
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  needs_comma_.pop_back();
}

void JsonWriter::Key(const std::string& name) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_.push_back(',');
    needs_comma_.back() = true;
  }
  out_.push_back('"');
  out_ += Escape(name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  MaybeComma();
  out_.push_back('"');
  out_ += Escape(value);
  out_.push_back('"');
}

void JsonWriter::Int(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
}

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

}  // namespace ocular
