#ifndef OCULAR_COMMON_FS_UTIL_H_
#define OCULAR_COMMON_FS_UTIL_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace ocular {
namespace fs {

/// \file
/// \brief Crash-safe filesystem primitives for artifact publishing.
///
/// The serving stack's durability contract (docs/OPERATIONS.md, "Failure
/// modes & recovery") is built from exactly three operations: fsync the
/// written file, fsync its parent directory, and rename. Each is a named
/// fault-injection point (common/fault.h) so the chaos suite can fail any
/// of them deterministically.

/// \brief fsync(2)s `path` (opened read-only — on Linux that flushes the
/// file's dirty pages). Fault point "store.fsync".
Status FsyncFile(const std::string& path);

/// \brief fsync(2)s the directory containing `path`, making a rename or
/// create of `path` itself durable. Fault point "store.dirsync".
Status FsyncParentDir(const std::string& path);

/// \brief The atomic-publish step: rename(2) `from` over `to`, then fsync
/// the parent directory so the new directory entry survives a power cut.
/// Fault point "store.rename" fails before the rename (nothing moved); a
/// dirsync failure AFTER a successful rename is returned but the rename
/// itself has happened — callers treat that window as published.
Status DurableRename(const std::string& from, const std::string& to);

/// \brief Content fingerprint: FNV-1a over the first `max_bytes` of the
/// file (default 4096 — for OCLR artifacts this covers the entire header
/// including every section checksum, so equal fingerprints mean equal
/// model content). The update journal stamps records with this to decide
/// replay-vs-skip after a crash.
Result<uint64_t> FileFingerprint(const std::string& path,
                                 size_t max_bytes = 4096);

}  // namespace fs
}  // namespace ocular

#endif  // OCULAR_COMMON_FS_UTIL_H_
