#include "common/fault.h"

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/strings.h"

namespace ocular {
namespace fault {

namespace internal {
std::atomic<bool> g_armed{false};
}  // namespace internal

namespace {

struct PointState {
  enum class Mode { kFirstN, kKOfN, kKill };
  Mode mode = Mode::kFirstN;
  // kFirstN: fail while calls < k. kOfN: fail iff calls % n < k.
  // kKill: SIGKILL on call number k (1-based).
  uint64_t k = 0;
  uint64_t n = 1;
  uint64_t calls = 0;
  uint64_t hits = 0;
};

std::mutex& Mu() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::map<std::string, PointState>& Points() {
  static auto* points = new std::map<std::string, PointState>;
  return *points;
}

// Parses one `point=action` entry into (name, state).
Status ParseEntry(std::string_view entry, std::string* name,
                  PointState* state) {
  const size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 == entry.size()) {
    return Status::InvalidArgument("malformed fault spec entry '" +
                                   std::string(entry) +
                                   "' (expected point=action)");
  }
  *name = std::string(entry.substr(0, eq));
  const std::string_view action = entry.substr(eq + 1);
  *state = PointState();
  if (action == "kill" || action.substr(0, 5) == "kill@") {
    state->mode = PointState::Mode::kKill;
    state->k = 1;
    if (action.size() > 5) {
      uint64_t call = 0;
      for (char c : action.substr(5)) {
        if (c < '0' || c > '9') {
          return Status::InvalidArgument("malformed kill@C in fault spec '" +
                                         std::string(entry) + "'");
        }
        call = call * 10 + static_cast<uint64_t>(c - '0');
      }
      if (call == 0) {
        return Status::InvalidArgument("kill@C needs C >= 1 in '" +
                                       std::string(entry) + "'");
      }
      state->k = call;
    }
    return Status::OK();
  }
  uint64_t nums[2] = {0, 1};
  int part = 0;
  bool digits = false;
  for (char c : action) {
    if (c == '/') {
      if (part == 1 || !digits) {
        return Status::InvalidArgument("malformed K/N in fault spec '" +
                                       std::string(entry) + "'");
      }
      part = 1;
      digits = false;
      nums[1] = 0;
      continue;
    }
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("malformed count in fault spec '" +
                                     std::string(entry) + "'");
    }
    nums[part] = nums[part] * 10 + static_cast<uint64_t>(c - '0');
    digits = true;
  }
  if (!digits) {
    return Status::InvalidArgument("malformed count in fault spec '" +
                                   std::string(entry) + "'");
  }
  if (part == 1) {
    if (nums[1] == 0 || nums[0] > nums[1]) {
      return Status::InvalidArgument("K/N needs 0 <= K <= N, N >= 1 in '" +
                                     std::string(entry) + "'");
    }
    state->mode = PointState::Mode::kKOfN;
  } else {
    state->mode = PointState::Mode::kFirstN;
  }
  state->k = nums[0];
  state->n = nums[1];
  return Status::OK();
}

// Reads OCULAR_FAULTS exactly once, at first armed-path use or Configure.
// A static initializer (runs before main) keeps env-armed runs working
// without any explicit init call from tools or tests.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("OCULAR_FAULTS");
    if (env == nullptr || env[0] == '\0') return;
    const Status st = Configure(env);
    if (!st.ok()) {
      // A typo'd env spec must be loud, not silently ignored: the chaos
      // harness depends on the point actually arming.
      std::fprintf(stderr, "OCULAR_FAULTS rejected: %s\n",
                   st.ToString().c_str());
    }
  }
};
EnvInit g_env_init;

}  // namespace

namespace internal {

bool MaybeSlow(const char* point) {
  bool kill = false;
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(Mu());
    auto it = Points().find(point);
    if (it == Points().end()) return false;
    PointState& s = it->second;
    const uint64_t call = s.calls++;
    switch (s.mode) {
      case PointState::Mode::kFirstN:
        hit = call < s.k;
        break;
      case PointState::Mode::kKOfN:
        hit = (call % s.n) < s.k;
        break;
      case PointState::Mode::kKill:
        kill = (call + 1) == s.k;
        hit = kill;
        break;
    }
    if (hit) ++s.hits;
  }
  if (kill) {
    // The crash simulator: no atexit, no stream flush, no unwinding —
    // exactly what a power cut looks like to everything already on disk.
    ::kill(::getpid(), SIGKILL);
  }
  return hit;
}

}  // namespace internal

Status Configure(const std::string& spec) {
  std::map<std::string, PointState> parsed;
  for (std::string_view entry : Split(spec, ',')) {
    if (entry.empty()) continue;
    std::string name;
    PointState state;
    OCULAR_RETURN_IF_ERROR(ParseEntry(entry, &name, &state));
    parsed[name] = state;
  }
  std::lock_guard<std::mutex> lock(Mu());
  Points() = std::move(parsed);
  internal::g_armed.store(!Points().empty(), std::memory_order_relaxed);
  return Status::OK();
}

void Reset() {
  std::lock_guard<std::mutex> lock(Mu());
  Points().clear();
  internal::g_armed.store(false, std::memory_order_relaxed);
}

uint64_t Calls(const std::string& point) {
  std::lock_guard<std::mutex> lock(Mu());
  auto it = Points().find(point);
  return it == Points().end() ? 0 : it->second.calls;
}

uint64_t Hits(const std::string& point) {
  std::lock_guard<std::mutex> lock(Mu());
  auto it = Points().find(point);
  return it == Points().end() ? 0 : it->second.hits;
}

Status InjectedError(const char* point) {
  return Status::IOError(std::string("injected fault at '") + point + "'");
}

}  // namespace fault
}  // namespace ocular
