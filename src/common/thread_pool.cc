#include "common/thread_pool.h"

#include <algorithm>

namespace ocular {

namespace {
/// Slot index of the current thread within the pool that owns it. A thread
/// belongs to at most one pool, so a plain thread_local is unambiguous.
thread_local size_t tls_worker_index = ThreadPool::kNotAWorker;
}  // namespace

size_t ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn,
                             size_t grain) {
  ParallelForChunked(
      begin, end,
      [&fn](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

void ThreadPool::ParallelForChunked(
    size_t begin, size_t end, const std::function<void(size_t, size_t)>& fn,
    size_t grain) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t target_chunks = workers_.size() * 4;
  size_t chunk = std::max(grain, (n + target_chunks - 1) / target_chunks);
  if (chunk == 0) chunk = 1;
  if (n <= chunk) {
    fn(begin, end);  // Run inline; not worth dispatching.
    return;
  }
  std::vector<std::pair<size_t, size_t>> ranges;
  ranges.reserve((n + chunk - 1) / chunk);
  for (size_t lo = begin; lo < end; lo += chunk) {
    ranges.emplace_back(lo, std::min(end, lo + chunk));
  }
  RunAndWait(ranges, fn);
}

void ThreadPool::ParallelForRanges(
    const std::vector<std::pair<size_t, size_t>>& ranges,
    const std::function<void(size_t, size_t)>& fn) {
  if (ranges.empty()) return;
  if (ranges.size() == 1) {
    fn(ranges[0].first, ranges[0].second);
    return;
  }
  RunAndWait(ranges, fn);
}

void ThreadPool::RunAndWait(
    const std::vector<std::pair<size_t, size_t>>& ranges,
    const std::function<void(size_t, size_t)>& fn) {
  std::atomic<size_t> pending{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  for (const auto& [lo, hi] : ranges) {
    pending.fetch_add(1, std::memory_order_relaxed);
    Submit([&, lo = lo, hi = hi] {
      fn(lo, hi);
      if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::unique_lock<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock,
               [&] { return pending.load(std::memory_order_acquire) == 0; });
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace ocular
