#ifndef OCULAR_COMMON_RESULT_H_
#define OCULAR_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ocular {

/// Result<T> holds either a value of type T or a non-OK Status.
/// This is the library's replacement for exceptions on value-returning
/// fallible paths (Arrow's arrow::Result idiom).
///
/// Usage:
///   Result<Dataset> r = LoadMovieLens(path);
///   if (!r.ok()) return r.status();
///   Dataset d = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs a successful result. Intentionally implicit so functions can
  /// `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status. Intentionally implicit
  /// so functions can `return Status::InvalidArgument(...);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// The status; OK when a value is held.
  const Status& status() const { return status_; }

  /// Value accessors. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Early-return helper for Result-returning expressions:
///   OCULAR_ASSIGN_OR_RETURN(auto ds, LoadMovieLens(path));
#define OCULAR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define OCULAR_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define OCULAR_ASSIGN_OR_RETURN_NAME(a, b) OCULAR_ASSIGN_OR_RETURN_CONCAT(a, b)

#define OCULAR_ASSIGN_OR_RETURN(lhs, expr)                                  \
  OCULAR_ASSIGN_OR_RETURN_IMPL(                                             \
      OCULAR_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

}  // namespace ocular

#endif  // OCULAR_COMMON_RESULT_H_
