#ifndef OCULAR_COMMON_LOGGING_H_
#define OCULAR_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ocular {

/// Severity levels for the lightweight logger. Messages below the global
/// threshold are discarded; kFatal aborts the process after logging.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets / reads the global log threshold (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is filtered out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define OCULAR_LOG(level)                                                \
  if (::ocular::LogLevel::level < ::ocular::GetLogLevel()) {             \
  } else                                                                 \
    ::ocular::internal::LogMessage(::ocular::LogLevel::level, __FILE__,  \
                                   __LINE__)                             \
        .stream()

/// CHECK-style invariant macro: active in all build types, aborts with a
/// message on violation. For programmer errors, not user input (user input
/// errors go through Status).
#define OCULAR_CHECK(cond)                                                   \
  if (cond) {                                                                \
  } else                                                                     \
    ::ocular::internal::LogMessage(::ocular::LogLevel::kFatal, __FILE__,     \
                                   __LINE__)                                 \
            .stream()                                                        \
        << "Check failed: " #cond " "

#define OCULAR_CHECK_EQ(a, b) OCULAR_CHECK((a) == (b))
#define OCULAR_CHECK_NE(a, b) OCULAR_CHECK((a) != (b))
#define OCULAR_CHECK_LT(a, b) OCULAR_CHECK((a) < (b))
#define OCULAR_CHECK_LE(a, b) OCULAR_CHECK((a) <= (b))
#define OCULAR_CHECK_GT(a, b) OCULAR_CHECK((a) > (b))
#define OCULAR_CHECK_GE(a, b) OCULAR_CHECK((a) >= (b))

}  // namespace ocular

#endif  // OCULAR_COMMON_LOGGING_H_
