#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ocular {

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> SplitAny(std::string_view s,
                                       std::string_view delims) {
  std::vector<std::string_view> out;
  size_t start = std::string_view::npos;
  for (size_t i = 0; i < s.size(); ++i) {
    const bool is_delim = delims.find(s[i]) != std::string_view::npos;
    if (is_delim) {
      if (start != std::string_view::npos) {
        out.push_back(s.substr(start, i - start));
        start = std::string_view::npos;
      }
    } else if (start == std::string_view::npos) {
      start = i;
    }
  }
  if (start != std::string_view::npos) out.push_back(s.substr(start));
  return out;
}

std::vector<std::string_view> SplitSeparator(std::string_view s,
                                             std::string_view sep) {
  std::vector<std::string_view> out;
  if (sep.empty()) {
    out.push_back(s);
    return out;
  }
  size_t start = 0;
  for (;;) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + sep.size();
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty integer field");
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::ParseError("invalid integer: '" + std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty float field");
  // std::from_chars for double is available in libstdc++ >= 11.
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::ParseError("invalid float: '" + std::string(s) + "'");
  }
  return value;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string FormatDouble(double v, int digits) {
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatCount(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace ocular
