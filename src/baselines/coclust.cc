#include "baselines/coclust.h"

#include <algorithm>
#include <cmath>

namespace ocular {

Status CoclustConfig::Validate() const {
  if (user_clusters == 0 || item_clusters == 0) {
    return Status::InvalidArgument("cluster counts must be positive");
  }
  if (iterations == 0) {
    return Status::InvalidArgument("iterations must be positive");
  }
  return Status::OK();
}

void CoclustRecommender::RecomputeStats(const CsrMatrix& r) {
  const uint32_t g = config_.user_clusters;
  const uint32_t h = config_.item_clusters;
  const uint32_t nu = r.num_rows();
  const uint32_t ni = r.num_cols();

  std::vector<double> block_pos(static_cast<size_t>(g) * h, 0.0);
  std::vector<uint32_t> rows_in(g, 0), cols_in(h, 0);
  std::vector<double> row_cluster_pos(g, 0.0), col_cluster_pos(h, 0.0);

  for (uint32_t u = 0; u < nu; ++u) ++rows_in[user_cluster_[u]];
  for (uint32_t i = 0; i < ni; ++i) ++cols_in[item_cluster_[i]];

  user_mean_.assign(nu, 0.0);
  item_mean_.assign(ni, 0.0);
  auto col_deg = r.ColumnDegrees();
  for (uint32_t i = 0; i < ni; ++i) {
    item_mean_[i] = static_cast<double>(col_deg[i]) / std::max(1u, nu);
    col_cluster_pos[item_cluster_[i]] += col_deg[i];
  }
  for (uint32_t u = 0; u < nu; ++u) {
    user_mean_[u] = static_cast<double>(r.RowDegree(u)) / std::max(1u, ni);
    row_cluster_pos[user_cluster_[u]] += r.RowDegree(u);
    for (uint32_t i : r.Row(u)) {
      block_pos[static_cast<size_t>(user_cluster_[u]) * h +
                item_cluster_[i]] += 1.0;
    }
  }

  block_mean_.assign(static_cast<size_t>(g) * h, 0.0);
  for (uint32_t a = 0; a < g; ++a) {
    for (uint32_t b = 0; b < h; ++b) {
      const double cells =
          static_cast<double>(rows_in[a]) * static_cast<double>(cols_in[b]);
      block_mean_[static_cast<size_t>(a) * h + b] =
          cells > 0 ? block_pos[static_cast<size_t>(a) * h + b] / cells : 0.0;
    }
  }
  row_cluster_mean_.assign(g, 0.0);
  for (uint32_t a = 0; a < g; ++a) {
    const double cells = static_cast<double>(rows_in[a]) * ni;
    row_cluster_mean_[a] = cells > 0 ? row_cluster_pos[a] / cells : 0.0;
  }
  col_cluster_mean_.assign(h, 0.0);
  for (uint32_t b = 0; b < h; ++b) {
    const double cells = static_cast<double>(cols_in[b]) * nu;
    col_cluster_mean_[b] = cells > 0 ? col_cluster_pos[b] / cells : 0.0;
  }
}

Status CoclustRecommender::Fit(const CsrMatrix& interactions) {
  OCULAR_RETURN_IF_ERROR(config_.Validate());
  if (interactions.nnz() == 0) {
    return Status::InvalidArgument("interaction matrix has no positives");
  }
  const uint32_t g = config_.user_clusters;
  const uint32_t h = config_.item_clusters;
  const uint32_t nu = interactions.num_rows();
  const uint32_t ni = interactions.num_cols();

  Rng rng(config_.seed);
  user_cluster_.resize(nu);
  item_cluster_.resize(ni);
  for (auto& c : user_cluster_) c = static_cast<uint32_t>(rng.UniformInt(g));
  for (auto& c : item_cluster_) c = static_cast<uint32_t>(rng.UniformInt(h));

  const CsrMatrix transposed = interactions.Transpose();

  for (uint32_t it = 0; it < config_.iterations; ++it) {
    bool moved = false;

    // ---- Reassign users (row clusters). ----
    RecomputeStats(interactions);
    {
      // Per item-cluster sizes and Σ c_i (c_i = item deviation).
      std::vector<uint32_t> cols_in(h, 0);
      std::vector<double> c_sum(h, 0.0);
      for (uint32_t i = 0; i < ni; ++i) {
        const uint32_t b = item_cluster_[i];
        ++cols_in[b];
        c_sum[b] += item_mean_[i] - col_cluster_mean_[b];
      }
      std::vector<double> pos_uh(h);
      for (uint32_t u = 0; u < nu; ++u) {
        std::fill(pos_uh.begin(), pos_uh.end(), 0.0);
        for (uint32_t i : interactions.Row(u)) {
          pos_uh[item_cluster_[i]] += 1.0;
        }
        // err(a) ∝ Σ_b [ n_b t_ab² − 2 t_ab Sx_b(u) ], with
        //   t_ab = block_mean(a,b) − row_cluster_mean(a),
        //   Sx_b(u) = pos_ub − n_b·user_mean_u − C_b(u),
        //   C_b(u) = Σ_{i∈b} c_i  (but the r_ui part of x_i only sums c_i
        //   over positives; the rest enters via the constant term).
        uint32_t best = user_cluster_[u];
        double best_err = 0.0;
        bool first = true;
        for (uint32_t a = 0; a < g; ++a) {
          double err = 0.0;
          for (uint32_t b = 0; b < h; ++b) {
            const double t =
                block_mean_[static_cast<size_t>(a) * h + b] -
                row_cluster_mean_[a];
            const double sx =
                pos_uh[b] - cols_in[b] * user_mean_[u] - c_sum[b];
            err += cols_in[b] * t * t - 2.0 * t * sx;
          }
          if (first || err < best_err) {
            best_err = err;
            best = a;
            first = false;
          }
        }
        if (best != user_cluster_[u]) {
          user_cluster_[u] = best;
          moved = true;
        }
      }
    }

    // ---- Reassign items (column clusters), symmetric. ----
    RecomputeStats(interactions);
    {
      std::vector<uint32_t> rows_in(g, 0);
      std::vector<double> d_sum(g, 0.0);  // Σ over users of user deviation
      for (uint32_t u = 0; u < nu; ++u) {
        const uint32_t a = user_cluster_[u];
        ++rows_in[a];
        d_sum[a] += user_mean_[u] - row_cluster_mean_[a];
      }
      std::vector<double> pos_ig(g);
      for (uint32_t i = 0; i < ni; ++i) {
        std::fill(pos_ig.begin(), pos_ig.end(), 0.0);
        for (uint32_t u : transposed.Row(i)) {
          pos_ig[user_cluster_[u]] += 1.0;
        }
        uint32_t best = item_cluster_[i];
        double best_err = 0.0;
        bool first = true;
        for (uint32_t b = 0; b < h; ++b) {
          double err = 0.0;
          for (uint32_t a = 0; a < g; ++a) {
            const double t =
                block_mean_[static_cast<size_t>(a) * h + b] -
                col_cluster_mean_[b];
            const double sx =
                pos_ig[a] - rows_in[a] * item_mean_[i] - d_sum[a];
            err += rows_in[a] * t * t - 2.0 * t * sx;
          }
          if (first || err < best_err) {
            best_err = err;
            best = b;
            first = false;
          }
        }
        if (best != item_cluster_[i]) {
          item_cluster_[i] = best;
          moved = true;
        }
      }
    }

    if (!moved) break;
  }

  // Final statistics + reconstruction error.
  RecomputeStats(interactions);
  double err = 0.0;
  for (uint32_t u = 0; u < nu; ++u) {
    // Σ_i (r_ui − r̂_ui)² = Σ_i r̂² − 2 Σ_pos r̂ + deg; evaluate directly
    // for clarity at O(n_i) per user (Fit-time only).
    for (uint32_t i = 0; i < ni; ++i) {
      const double pred = Score(u, i);
      const double truth = interactions.HasEntry(u, i) ? 1.0 : 0.0;
      err += (pred - truth) * (pred - truth);
    }
  }
  final_error_ = err;
  return Status::OK();
}

double CoclustRecommender::BlockMean(uint32_t g, uint32_t h) const {
  return block_mean_[static_cast<size_t>(g) * config_.item_clusters + h];
}

double CoclustRecommender::Score(uint32_t u, uint32_t i) const {
  const uint32_t a = user_cluster_[u];
  const uint32_t b = item_cluster_[i];
  return block_mean_[static_cast<size_t>(a) * config_.item_clusters + b] +
         (user_mean_[u] - row_cluster_mean_[a]) +
         (item_mean_[i] - col_cluster_mean_[b]);
}

void CoclustRecommender::ScoreBlock(uint32_t u, uint32_t item_begin,
                                    uint32_t item_end,
                                    std::span<double> out) const {
  // Same expression as Score with the user-side terms hoisted; the
  // summation order is preserved, so values are bit-identical.
  const uint32_t a = user_cluster_[u];
  const double* block_row =
      block_mean_.data() + static_cast<size_t>(a) * config_.item_clusters;
  const double user_part = user_mean_[u] - row_cluster_mean_[a];
  for (uint32_t i = item_begin; i < item_end; ++i) {
    const uint32_t b = item_cluster_[i];
    out[i - item_begin] =
        block_row[b] + user_part + (item_mean_[i] - col_cluster_mean_[b]);
  }
}

}  // namespace ocular
