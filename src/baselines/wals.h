#ifndef OCULAR_BASELINES_WALS_H_
#define OCULAR_BASELINES_WALS_H_

#include <string>

#include "common/rng.h"
#include "eval/recommender.h"
#include "sparse/dense.h"

namespace ocular {

/// Hyper-parameters of weighted ALS.
struct WalsConfig {
  /// Latent dimension.
  uint32_t k = 50;
  /// Regularization weight.
  double lambda = 0.01;
  /// Weight of unknown (r = 0) cells in the squared loss; positives get
  /// weight 1 (eq. 8 of the paper; the experiments use b = 0.01).
  double b = 0.01;
  uint32_t iterations = 15;
  double init_scale = 0.1;
  uint64_t seed = 1;

  Status Validate() const;
};

/// Weighted Alternating Least Squares for one-class collaborative
/// filtering (Pan et al., ICDM 2008) — the paper's strongest
/// non-interpretable baseline.
///
/// Objective: Σ_ui c_ui (r_ui − <f_u,f_i>)² + λ(Σ‖f_u‖² + Σ‖f_i‖²), with
/// c_ui = 1 for positives and b < 1 for unknowns. Each ALS solve uses the
/// Gram-matrix decomposition
///   F^T C_u F = b·F^T F + (1−b)·Σ_{i∈pos(u)} f_i f_iᵀ,
/// so a full sweep costs O(nnz·K² + (n_u+n_i)·K³) and never touches the
/// zero cells.
class WalsRecommender : public Recommender {
 public:
  explicit WalsRecommender(WalsConfig config) : config_(std::move(config)) {}

  std::string name() const override { return "wALS"; }
  Status Fit(const CsrMatrix& interactions) override;
  double Score(uint32_t u, uint32_t i) const override;
  void ScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                  std::span<double> out) const override;
  uint32_t num_users() const override { return user_factors_.rows(); }
  uint32_t num_items() const override { return item_factors_.rows(); }

  const DenseMatrix& user_factors() const { return user_factors_; }
  const DenseMatrix& item_factors() const { return item_factors_; }

  /// Writes the fitted factors as a binary v2 model file
  /// (BinaryModelKind::kDotProduct), servable by the model-agnostic
  /// ModelStore/StoreRecommender path and the ocular_served daemon.
  /// FailedPrecondition before a successful Fit().
  Status SaveBinary(const std::string& path) const;

 private:
  /// One half-sweep: solves all rows of `target` given `fixed`.
  /// `pattern` lists each target row's positive counterparts.
  Status SolveSide(const CsrMatrix& pattern, const DenseMatrix& fixed,
                   DenseMatrix* target) const;

  WalsConfig config_;
  DenseMatrix user_factors_;
  DenseMatrix item_factors_;
  DenseMatrix item_factors_t_;  // K x n_i, blocked-serving layout
};

}  // namespace ocular

#endif  // OCULAR_BASELINES_WALS_H_
