#ifndef OCULAR_BASELINES_IALS_H_
#define OCULAR_BASELINES_IALS_H_

#include <string>

#include "common/rng.h"
#include "eval/recommender.h"
#include "sparse/dense.h"

namespace ocular {

/// Hyper-parameters of implicit-feedback ALS.
struct IalsConfig {
  uint32_t k = 50;
  double lambda = 0.1;
  /// Confidence boost: positives get weight 1 + alpha, unknowns weight 1
  /// (with targets 1 and 0 respectively).
  double alpha = 20.0;
  uint32_t iterations = 15;
  double init_scale = 0.1;
  uint64_t seed = 1;

  Status Validate() const;
};

/// Implicit-feedback matrix factorization of Hu, Koren & Volinsky
/// (ICDM 2008) — cited by the paper ([17]) as the other major
/// absolute-preference OCCF family next to wALS. Where wALS down-weights
/// the unknowns (c = b < 1), iALS up-weights the positives
/// (c = 1 + alpha); both admit the same Gram-matrix ALS solve:
///   (F^T F + alpha Σ_pos f f^T + lambda I) x = (1 + alpha) Σ_pos f.
class IalsRecommender : public Recommender {
 public:
  explicit IalsRecommender(IalsConfig config) : config_(std::move(config)) {}

  std::string name() const override { return "iALS"; }
  Status Fit(const CsrMatrix& interactions) override;
  double Score(uint32_t u, uint32_t i) const override;
  void ScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                  std::span<double> out) const override;
  uint32_t num_users() const override { return user_factors_.rows(); }
  uint32_t num_items() const override { return item_factors_.rows(); }

  const DenseMatrix& user_factors() const { return user_factors_; }
  const DenseMatrix& item_factors() const { return item_factors_; }

  /// Writes the fitted factors as a binary v2 model file
  /// (BinaryModelKind::kDotProduct); see WalsRecommender::SaveBinary.
  Status SaveBinary(const std::string& path) const;

 private:
  Status SolveSide(const CsrMatrix& pattern, const DenseMatrix& fixed,
                   DenseMatrix* target) const;

  IalsConfig config_;
  DenseMatrix user_factors_;
  DenseMatrix item_factors_;
  DenseMatrix item_factors_t_;  // K x n_i, blocked-serving layout
};

}  // namespace ocular

#endif  // OCULAR_BASELINES_IALS_H_
