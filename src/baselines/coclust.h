#ifndef OCULAR_BASELINES_COCLUST_H_
#define OCULAR_BASELINES_COCLUST_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "eval/recommender.h"

namespace ocular {

/// Hyper-parameters of the non-overlapping co-clustering recommender.
struct CoclustConfig {
  /// Number of user (row) clusters and item (column) clusters.
  uint32_t user_clusters = 8;
  uint32_t item_clusters = 8;
  uint32_t iterations = 20;
  uint64_t seed = 1;

  Status Validate() const;
};

/// Non-overlapping co-clustering collaborative filtering in the style of
/// George & Merugu (ICDM 2005) — the classic co-clustering recommender
/// the paper's related-work section contrasts with (Section II: "the
/// majority of those papers is restricted to non-overlapping
/// co-clusters"). Every user belongs to exactly ONE row cluster and every
/// item to exactly ONE column cluster.
///
/// Fitting alternates hard reassignment of rows and columns to minimize
/// the squared reconstruction error of the binary matrix by
///   r̂_ui = block_mean(ρ(u), γ(i))
///          + (user_mean_u − row_cluster_mean_ρ(u))
///          + (item_mean_i − col_cluster_mean_γ(i)).
/// Each sweep costs O(nnz + n_u·g + n_i·h).
///
/// Its structural inability to represent a user with two interests is
/// exactly the Figure 1/2 story; bench_ablation quantifies the accuracy
/// gap against OCuLaR on overlapping data.
class CoclustRecommender : public Recommender {
 public:
  explicit CoclustRecommender(CoclustConfig config)
      : config_(std::move(config)) {}

  std::string name() const override { return "coclust"; }
  Status Fit(const CsrMatrix& interactions) override;
  double Score(uint32_t u, uint32_t i) const override;
  void ScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                  std::span<double> out) const override;
  uint32_t num_users() const override {
    return static_cast<uint32_t>(user_cluster_.size());
  }
  uint32_t num_items() const override {
    return static_cast<uint32_t>(item_cluster_.size());
  }

  /// Cluster assignments after Fit().
  const std::vector<uint32_t>& user_clusters() const { return user_cluster_; }
  const std::vector<uint32_t>& item_clusters() const { return item_cluster_; }
  /// Mean of block (g, h).
  double BlockMean(uint32_t g, uint32_t h) const;
  /// Squared reconstruction error of the final model (for tests: it must
  /// not increase across sweeps).
  double ReconstructionError() const { return final_error_; }

 private:
  /// Recomputes block/row/column statistics for the current assignment.
  void RecomputeStats(const CsrMatrix& r);

  CoclustConfig config_;
  std::vector<uint32_t> user_cluster_;  // ρ: user -> row cluster
  std::vector<uint32_t> item_cluster_;  // γ: item -> col cluster
  // Statistics of the current assignment.
  std::vector<double> block_mean_;        // g*h, row-major
  std::vector<double> user_mean_;         // per user
  std::vector<double> item_mean_;         // per item
  std::vector<double> row_cluster_mean_;  // per row cluster
  std::vector<double> col_cluster_mean_;  // per col cluster
  double final_error_ = 0.0;
};

}  // namespace ocular

#endif  // OCULAR_BASELINES_COCLUST_H_
