#include "baselines/bpr.h"

#include <cmath>

#include "core/model_store.h"
#include "sparse/linalg.h"

namespace ocular {

Status BprConfig::Validate() const {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  if (epochs == 0) return Status::InvalidArgument("epochs must be positive");
  return Status::OK();
}

Status BprRecommender::Fit(const CsrMatrix& interactions) {
  OCULAR_RETURN_IF_ERROR(config_.Validate());
  if (interactions.nnz() == 0) {
    return Status::InvalidArgument("interaction matrix has no positives");
  }
  if (interactions.num_cols() < 2) {
    return Status::InvalidArgument("BPR needs at least two items");
  }
  Rng rng(config_.seed);
  user_factors_ = DenseMatrix(interactions.num_rows(), config_.k);
  item_factors_ = DenseMatrix(interactions.num_cols(), config_.k);
  // Symmetric small init around zero (BPR scores are unconstrained).
  user_factors_.FillUniform(&rng, -config_.init_scale, config_.init_scale);
  item_factors_.FillUniform(&rng, -config_.init_scale, config_.init_scale);

  // Users that have at least one positive AND at least one unknown item can
  // generate training triplets.
  std::vector<uint32_t> eligible;
  for (uint32_t u = 0; u < interactions.num_rows(); ++u) {
    const uint32_t deg = interactions.RowDegree(u);
    if (deg > 0 && deg < interactions.num_cols()) eligible.push_back(u);
  }
  if (eligible.empty()) {
    return Status::InvalidArgument("no user admits (positive, unknown) pairs");
  }

  const uint32_t k = config_.k;
  const double lr = config_.learning_rate;
  const double reg = config_.lambda;
  const size_t draws_per_epoch = interactions.nnz();
  for (uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (size_t s = 0; s < draws_per_epoch; ++s) {
      const uint32_t u =
          eligible[static_cast<size_t>(rng.UniformInt(eligible.size()))];
      auto pos = interactions.Row(u);
      const uint32_t i = pos[static_cast<size_t>(rng.UniformInt(pos.size()))];
      // Rejection-sample an unknown item j.
      uint32_t j;
      do {
        j = static_cast<uint32_t>(rng.UniformInt(interactions.num_cols()));
      } while (interactions.HasEntry(u, j));

      auto fu = user_factors_.Row(u);
      auto fi = item_factors_.Row(i);
      auto fj = item_factors_.Row(j);
      const double x = vec::Dot(fu, fi) - vec::Dot(fu, fj);
      // dL/dx of ln sigma(x) is sigma(-x).
      const double g = 1.0 / (1.0 + std::exp(x));
      for (uint32_t d = 0; d < k; ++d) {
        const double wu = fu[d], wi = fi[d], wj = fj[d];
        fu[d] += lr * (g * (wi - wj) - reg * wu);
        fi[d] += lr * (g * wu - reg * wi);
        fj[d] += lr * (-g * wu - reg * wj);
      }
    }
  }
  item_factors_t_ = TransposedCopy(item_factors_);
  return Status::OK();
}

double BprRecommender::Score(uint32_t u, uint32_t i) const {
  return vec::Dot(user_factors_.Row(u), item_factors_.Row(i));
}

void BprRecommender::ScoreBlock(uint32_t u, uint32_t item_begin,
                                uint32_t /*item_end*/,
                                std::span<double> out) const {
  vec::AffinityBlock(user_factors_.Row(u), item_factors_t_, item_begin, out);
}

Status BprRecommender::SaveBinary(const std::string& path) const {
  return SaveDotProductFactors(name(), config_.k, config_.lambda,
                               user_factors_, item_factors_, path);
}

}  // namespace ocular
