#include "baselines/knn.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace ocular {

Status KnnConfig::Validate() const {
  if (num_neighbors == 0) {
    return Status::InvalidArgument("num_neighbors must be positive");
  }
  return Status::OK();
}

namespace {

/// Computes top-N cosine neighbors for every row of `rows`, using the
/// transpose to enumerate co-rated pairs: for row r, every other row r'
/// sharing a column contributes to the intersection count.
std::vector<std::vector<ScoredItem>> TopNeighborsByRow(
    const CsrMatrix& rows, const CsrMatrix& transpose, uint32_t n) {
  std::vector<std::vector<ScoredItem>> out(rows.num_rows());
  std::unordered_map<uint32_t, uint32_t> overlap;
  for (uint32_t r = 0; r < rows.num_rows(); ++r) {
    overlap.clear();
    for (uint32_t c : rows.Row(r)) {
      for (uint32_t r2 : transpose.Row(c)) {
        if (r2 != r) ++overlap[r2];
      }
    }
    const double deg_r = rows.RowDegree(r);
    if (deg_r == 0 || overlap.empty()) continue;
    std::vector<ScoredItem> cands;
    cands.reserve(overlap.size());
    for (const auto& [r2, cnt] : overlap) {
      const double deg2 = rows.RowDegree(r2);
      const double sim = static_cast<double>(cnt) / std::sqrt(deg_r * deg2);
      cands.push_back(ScoredItem{r2, sim});
    }
    auto better = [](const ScoredItem& a, const ScoredItem& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.item < b.item;
    };
    if (cands.size() > n) {
      std::nth_element(cands.begin(), cands.begin() + n, cands.end(), better);
      cands.resize(n);
    }
    std::sort(cands.begin(), cands.end(), better);
    out[r] = std::move(cands);
  }
  return out;
}

}  // namespace

Status UserKnnRecommender::Fit(const CsrMatrix& interactions) {
  OCULAR_RETURN_IF_ERROR(config_.Validate());
  interactions_ = interactions;
  const CsrMatrix transposed = interactions.Transpose();
  neighbors_ =
      TopNeighborsByRow(interactions_, transposed, config_.num_neighbors);
  return Status::OK();
}

double UserKnnRecommender::Score(uint32_t u, uint32_t i) const {
  double score = 0.0;
  for (const ScoredItem& nb : neighbors_[u]) {
    if (interactions_.HasEntry(nb.item, i)) score += nb.score;
  }
  return score;
}

void UserKnnRecommender::ScoreBlock(uint32_t u, uint32_t item_begin,
                                    uint32_t item_end,
                                    std::span<double> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  for (const ScoredItem& nb : neighbors_[u]) {
    auto row = interactions_.Row(nb.item);
    auto it = std::lower_bound(row.begin(), row.end(), item_begin);
    for (; it != row.end() && *it < item_end; ++it) {
      out[*it - item_begin] += nb.score;
    }
  }
}

std::vector<ScoredItem> UserKnnRecommender::Recommend(
    uint32_t u, uint32_t m, const CsrMatrix& exclude) const {
  // Accumulate neighbor contributions item-by-item through neighbor rows —
  // O(Σ_neighbors deg) instead of O(n_items * N).
  std::vector<double> scores(num_items(), 0.0);
  for (const ScoredItem& nb : neighbors_[u]) {
    for (uint32_t i : interactions_.Row(nb.item)) scores[i] += nb.score;
  }
  std::span<const uint32_t> ex;
  if (u < exclude.num_rows()) ex = exclude.Row(u);
  return TopM(scores, m, ex);
}

Status ItemKnnRecommender::Fit(const CsrMatrix& interactions) {
  OCULAR_RETURN_IF_ERROR(config_.Validate());
  interactions_ = interactions;
  const CsrMatrix transposed = interactions.Transpose();
  // Item neighbors: rows = items (the transpose), transpose of that = R.
  neighbors_ =
      TopNeighborsByRow(transposed, interactions_, config_.num_neighbors);
  // Reverse adjacency for ScoreBlock: iterate i ascending so each
  // incoming_[j] ends up sorted by source item.
  incoming_.assign(neighbors_.size(), {});
  for (uint32_t i = 0; i < neighbors_.size(); ++i) {
    for (const ScoredItem& nb : neighbors_[i]) {
      incoming_[nb.item].push_back(ScoredItem{i, nb.score});
    }
  }
  return Status::OK();
}

double ItemKnnRecommender::Score(uint32_t u, uint32_t i) const {
  double score = 0.0;
  for (const ScoredItem& nb : neighbors_[i]) {
    if (interactions_.HasEntry(u, nb.item)) score += nb.score;
  }
  return score;
}

void ItemKnnRecommender::ScoreBlock(uint32_t u, uint32_t item_begin,
                                    uint32_t item_end,
                                    std::span<double> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  for (uint32_t j : interactions_.Row(u)) {
    const std::vector<ScoredItem>& in = incoming_[j];
    auto it = std::lower_bound(
        in.begin(), in.end(), item_begin,
        [](const ScoredItem& a, uint32_t begin) { return a.item < begin; });
    for (; it != in.end() && it->item < item_end; ++it) {
      out[it->item - item_begin] += it->score;
    }
  }
}

Status PopularityRecommender::Fit(const CsrMatrix& interactions) {
  num_users_ = interactions.num_rows();
  degrees_ = interactions.ColumnDegrees();
  scores_.assign(degrees_.begin(), degrees_.end());
  return Status::OK();
}

double PopularityRecommender::Score(uint32_t /*u*/, uint32_t i) const {
  return static_cast<double>(degrees_[i]);
}

void PopularityRecommender::ScoreBlock(uint32_t /*u*/, uint32_t item_begin,
                                       uint32_t item_end,
                                       std::span<double> out) const {
  std::copy(scores_.begin() + item_begin, scores_.begin() + item_end,
            out.begin());
}

}  // namespace ocular
