#include "baselines/ials.h"

#include "core/model_store.h"
#include "sparse/linalg.h"

namespace ocular {

Status IalsConfig::Validate() const {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  if (alpha < 0.0) return Status::InvalidArgument("alpha must be >= 0");
  if (iterations == 0) {
    return Status::InvalidArgument("iterations must be positive");
  }
  return Status::OK();
}

Status IalsRecommender::SolveSide(const CsrMatrix& pattern,
                                  const DenseMatrix& fixed,
                                  DenseMatrix* target) const {
  const uint32_t k = config_.k;
  // Base system: F^T F + lambda I (unknowns have confidence 1, target 0).
  std::vector<double> base = GramMatrix(fixed);
  for (uint32_t d = 0; d < k; ++d) {
    base[static_cast<size_t>(d) * k + d] += config_.lambda;
  }
  std::vector<double> a;
  std::vector<double> rhs(k);
  std::vector<double> solution;
  for (uint32_t r = 0; r < pattern.num_rows(); ++r) {
    a = base;
    std::fill(rhs.begin(), rhs.end(), 0.0);
    for (uint32_t n : pattern.Row(r)) {
      auto row = fixed.Row(n);
      // Positive: confidence 1 + alpha, target 1.
      AddOuterProduct(&a, k, config_.alpha, row);
      for (uint32_t d = 0; d < k; ++d) {
        rhs[d] += (1.0 + config_.alpha) * row[d];
      }
    }
    OCULAR_RETURN_IF_ERROR(CholeskySolveInPlace(&a, k, rhs, &solution));
    auto out = target->Row(r);
    std::copy(solution.begin(), solution.end(), out.begin());
  }
  return Status::OK();
}

Status IalsRecommender::Fit(const CsrMatrix& interactions) {
  OCULAR_RETURN_IF_ERROR(config_.Validate());
  if (interactions.nnz() == 0) {
    return Status::InvalidArgument("interaction matrix has no positives");
  }
  Rng rng(config_.seed);
  user_factors_ = DenseMatrix(interactions.num_rows(), config_.k);
  item_factors_ = DenseMatrix(interactions.num_cols(), config_.k);
  user_factors_.FillUniform(&rng, 0.0, config_.init_scale);
  item_factors_.FillUniform(&rng, 0.0, config_.init_scale);
  const CsrMatrix transposed = interactions.Transpose();
  for (uint32_t it = 0; it < config_.iterations; ++it) {
    OCULAR_RETURN_IF_ERROR(
        SolveSide(interactions, item_factors_, &user_factors_));
    OCULAR_RETURN_IF_ERROR(
        SolveSide(transposed, user_factors_, &item_factors_));
  }
  item_factors_t_ = TransposedCopy(item_factors_);
  return Status::OK();
}

double IalsRecommender::Score(uint32_t u, uint32_t i) const {
  return vec::Dot(user_factors_.Row(u), item_factors_.Row(i));
}

void IalsRecommender::ScoreBlock(uint32_t u, uint32_t item_begin,
                                 uint32_t /*item_end*/,
                                 std::span<double> out) const {
  vec::AffinityBlock(user_factors_.Row(u), item_factors_t_, item_begin, out);
}

Status IalsRecommender::SaveBinary(const std::string& path) const {
  return SaveDotProductFactors(name(), config_.k, config_.lambda,
                               user_factors_, item_factors_, path);
}

}  // namespace ocular
