#ifndef OCULAR_BASELINES_BPR_H_
#define OCULAR_BASELINES_BPR_H_

#include <string>

#include "common/rng.h"
#include "eval/recommender.h"
#include "sparse/dense.h"

namespace ocular {

/// Hyper-parameters of BPR matrix factorization.
struct BprConfig {
  uint32_t k = 50;
  double learning_rate = 0.05;
  /// l2 regularization on user factors, positive-item factors and
  /// negative-item factors (a single weight, as in the reference
  /// implementation the paper compares against).
  double lambda = 0.01;
  /// Number of SGD epochs; each epoch draws nnz triplets.
  uint32_t epochs = 30;
  double init_scale = 0.1;
  uint64_t seed = 1;

  Status Validate() const;
};

/// Bayesian Personalized Ranking (Rendle et al., UAI 2009), the paper's
/// relative-preference matrix-factorization baseline.
///
/// Learns <f_u, f_i> by stochastic gradient ascent on
///   Σ_{(u,i,j)∈D_S} ln σ(<f_u,f_i> − <f_u,f_j>) − λ‖Θ‖²
/// with uniformly sampled triplets (positive i, unknown j).
class BprRecommender : public Recommender {
 public:
  explicit BprRecommender(BprConfig config) : config_(std::move(config)) {}

  std::string name() const override { return "BPR"; }
  Status Fit(const CsrMatrix& interactions) override;
  double Score(uint32_t u, uint32_t i) const override;
  void ScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                  std::span<double> out) const override;
  uint32_t num_users() const override { return user_factors_.rows(); }
  uint32_t num_items() const override { return item_factors_.rows(); }

  const DenseMatrix& user_factors() const { return user_factors_; }
  const DenseMatrix& item_factors() const { return item_factors_; }

  /// Writes the fitted factors as a binary v2 model file
  /// (BinaryModelKind::kDotProduct); see WalsRecommender::SaveBinary.
  Status SaveBinary(const std::string& path) const;

 private:
  BprConfig config_;
  DenseMatrix user_factors_;
  DenseMatrix item_factors_;
  DenseMatrix item_factors_t_;  // K x n_i, blocked-serving layout
};

}  // namespace ocular

#endif  // OCULAR_BASELINES_BPR_H_
