#ifndef OCULAR_BASELINES_KNN_H_
#define OCULAR_BASELINES_KNN_H_

#include <string>
#include <vector>

#include "eval/recommender.h"

namespace ocular {

/// Hyper-parameters of the neighborhood baselines.
struct KnnConfig {
  /// Number of nearest neighbors kept per user (user-based) or per item
  /// (item-based). The paper grid-searches this value.
  uint32_t num_neighbors = 50;

  Status Validate() const;
};

/// User-based collaborative filtering with cosine similarity
/// (Sarwar et al.): interpretable via "similar users also bought".
///
/// For binary rows, cosine(u, v) = |R_u ∩ R_v| / sqrt(|R_u| |R_v|).
/// Fit() keeps the top-N neighbors per user (computed through the
/// item->users adjacency, so cost is Σ_i deg(i)², never n_u²·n_i);
/// Score(u, i) = Σ_{v ∈ N(u), r_vi = 1} cosine(u, v).
class UserKnnRecommender : public Recommender {
 public:
  explicit UserKnnRecommender(KnnConfig config) : config_(std::move(config)) {}

  std::string name() const override { return "user-based"; }
  Status Fit(const CsrMatrix& interactions) override;
  double Score(uint32_t u, uint32_t i) const override;
  /// Sparse accumulation over the neighbors' history rows restricted to the
  /// block — O(Σ_neighbors deg∩block) instead of per-pair membership tests.
  void ScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                  std::span<double> out) const override;
  std::vector<ScoredItem> Recommend(uint32_t u, uint32_t m,
                                    const CsrMatrix& exclude) const override;
  uint32_t num_users() const override { return interactions_.num_rows(); }
  uint32_t num_items() const override { return interactions_.num_cols(); }

  /// The kept neighbor list of `u` (neighbor id, similarity), descending.
  const std::vector<ScoredItem>& Neighbors(uint32_t u) const {
    return neighbors_[u];
  }

 private:
  KnnConfig config_;
  CsrMatrix interactions_;
  std::vector<std::vector<ScoredItem>> neighbors_;  // item field = user id
};

/// Item-based collaborative filtering with cosine similarity
/// (Deshpande & Karypis): interpretable via "you bought similar items".
/// Fit() keeps top-N similar items per item; Score(u, i) =
/// Σ_{j ∈ R_u ∩ N(i)} cosine(i, j).
class ItemKnnRecommender : public Recommender {
 public:
  explicit ItemKnnRecommender(KnnConfig config) : config_(std::move(config)) {}

  std::string name() const override { return "item-based"; }
  Status Fit(const CsrMatrix& interactions) override;
  double Score(uint32_t u, uint32_t i) const override;
  /// Sparse accumulation through the reverse neighbor adjacency: each item
  /// j in the user's history scatters its similarity into the block items
  /// that keep j as a neighbor. Sums the same terms as Score (in a
  /// different order, so parity is ~1e-15 relative rather than bit-exact).
  void ScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                  std::span<double> out) const override;
  uint32_t num_users() const override { return interactions_.num_rows(); }
  uint32_t num_items() const override { return interactions_.num_cols(); }

  /// The kept neighbor list of item `i` (neighbor item, similarity).
  const std::vector<ScoredItem>& Neighbors(uint32_t i) const {
    return neighbors_[i];
  }

 private:
  KnnConfig config_;
  CsrMatrix interactions_;
  std::vector<std::vector<ScoredItem>> neighbors_;
  /// Reverse adjacency of `neighbors_`: incoming_[j] lists the items i
  /// (ascending) with j in N(i), paired with cosine(i, j). Built in Fit for
  /// the blocked scoring path.
  std::vector<std::vector<ScoredItem>> incoming_;
};

/// Non-personalized popularity baseline: Score(u, i) = item degree. A
/// sanity floor every personalized method must beat.
class PopularityRecommender : public Recommender {
 public:
  PopularityRecommender() = default;

  std::string name() const override { return "popularity"; }
  Status Fit(const CsrMatrix& interactions) override;
  double Score(uint32_t u, uint32_t i) const override;
  /// The degree vector is user-independent: a block score is a straight
  /// copy out of the precomputed double-valued popularity array.
  void ScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                  std::span<double> out) const override;
  uint32_t num_users() const override { return num_users_; }
  uint32_t num_items() const override {
    return static_cast<uint32_t>(degrees_.size());
  }

 private:
  uint32_t num_users_ = 0;
  std::vector<uint32_t> degrees_;
  std::vector<double> scores_;  // degrees_ as doubles, for block copies
};

}  // namespace ocular

#endif  // OCULAR_BASELINES_KNN_H_
