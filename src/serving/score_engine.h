#ifndef OCULAR_SERVING_SCORE_ENGINE_H_
#define OCULAR_SERVING_SCORE_ENGINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/ocular_model.h"
#include "eval/recommender.h"
#include "sparse/csr.h"

namespace ocular {

/// \file
/// \brief The per-user blocked scoring engine: allocation-free top-M
/// serving through Recommender::ScoreBlock, with optional co-cluster
/// candidate pruning. This is the hot path under ServeTopM, the batch
/// generator (serving/batch.h) and the serving daemon (serving/daemon.h).

/// \brief Options of the per-user blocked scoring engine.
struct ServeOptions {
  /// Recommendations per user.
  uint32_t m = 50;
  /// Drop items scoring below this *during selection* (0 = keep
  /// everything, matching the historical post-ranking filter: only items
  /// with score >= min_score survive). Pushing the floor into the heap
  /// insert means rejected items never touch the heap.
  double min_score = 0.0;
  /// Items per scoring tile. The default keeps the tile L1/L2-resident
  /// across the K accumulation passes of the factor-model kernels.
  uint32_t block_items = kDefaultScoreBlockItems;
};

/// \brief Per-thread reusable serving scratch: the score tile and the
/// bounded top-M selection buffer. After a warm-up call sized every
/// buffer, serving a user performs zero heap allocations (enforced by the
/// operator-new hook test in tests/score_engine_test.cpp).
struct ServeWorkspace {
  std::vector<double> tile;           ///< score tile, block_items doubles
  std::vector<ScoredItem> selection;  ///< bounded best-m selection buffer
  std::vector<uint32_t> candidates;   ///< gathered ids (candidate mode)

  /// \brief Pre-sizes every buffer so subsequent serves never reallocate.
  void Reserve(uint32_t m, uint32_t block_items, size_t max_candidates = 0) {
    tile.reserve(block_items);
    selection.reserve(topm::SelectionCapacity(m));
    candidates.reserve(max_candidates);
  }
};

/// \brief Membership rule of the co-cluster candidate index.
///
/// A row (user or item) belongs to co-cluster c when its factor entry
/// clears the ABSOLUTE floor (`threshold`) or — when `relative` > 0 —
/// the RELATIVE floor `relative * max_entry(row)`. The absolute rule
/// alone degrades as K grows: with the same affinity mass spread over
/// more dimensions, every entry shrinks and rows fall out of every
/// co-cluster (measured on the two-block serve bench: overlap@50 of 0.25
/// at K=50 under the 0.6 absolute rule). The relative rule tracks each
/// row's own scale, so multi-cluster memberships survive at any K.
struct CandidateIndexOptions {
  /// Absolute factor-entry floor: an entry STRICTLY above it is a member
  /// (the historical `>` rule; ignored when <= 0 and `relative` is set).
  double threshold = 0.6;
  /// Relative floor as a fraction of the row's largest entry, in (0, 1]:
  /// an entry at or above `relative * row_max` is a member (`>=`, so the
  /// row's maximal entry always admits itself at 1.0). 0 disables the
  /// relative rule (absolute-only, the historical behavior).
  double relative = 0.0;
  /// Factor dimensions considered, like CoClusterOptions::max_dims
  /// (0 = all; pass config.k for models trained with use_biases).
  uint32_t max_dims = 0;
};

/// \brief OCuLaR-specific candidate pruning index (Section IV-C: a user is
/// only plausibly interested in items it shares a co-cluster with).
/// Dimension c is a co-cluster; membership per CandidateIndexOptions.
/// Candidate serving scores only the union of the user's co-clusters'
/// items instead of the whole catalog — approximate (items outside every
/// shared co-cluster are unreachable) but much cheaper on sparse
/// affiliation structures; CandidateOverlapAtM reports the
/// exact-vs-candidate agreement.
struct CoClusterCandidateIndex {
  /// The membership rule the index was built with.
  CandidateIndexOptions options;
  /// items_per_dim[c] = items affiliated with co-cluster c, ascending.
  std::vector<std::vector<uint32_t>> items_per_dim;
  /// dims_per_user[u] = co-clusters user u belongs to, ascending.
  std::vector<std::vector<uint32_t>> dims_per_user;
  /// Upper bound on one user's gathered candidate count (before dedup) —
  /// what ServeWorkspace::Reserve needs for allocation-free gathering.
  size_t max_candidate_items = 0;
};

/// \brief Builds the candidate index from a fitted model under the given
/// membership rule. Fails unless at least one of
/// `options.threshold` > 0 / `options.relative` in (0, 1] holds.
Result<CoClusterCandidateIndex> BuildCoClusterCandidateIndex(
    const OcularModel& model, const CandidateIndexOptions& options);

/// \brief Absolute-threshold convenience overload (the historical
/// signature): membership = factor entry > `threshold`.
Result<CoClusterCandidateIndex> BuildCoClusterCandidateIndex(
    const OcularModel& model, double threshold = 0.6, uint32_t max_dims = 0);

/// \brief Exact blocked serve: the top-m items for `u` (excluding
/// `exclude_sorted`, ascending ids), scored tile-by-tile through
/// Recommender::ScoreBlock with threshold-pruned heap selection. Returns a
/// best-first span into ws->selection, valid until the workspace is
/// reused.
std::span<const ScoredItem> ServeTopM(const Recommender& rec, uint32_t u,
                                      std::span<const uint32_t> exclude_sorted,
                                      const ServeOptions& options,
                                      ServeWorkspace* ws);

/// \brief Candidate-mode serve: like ServeTopM but scores only the items
/// co-clustered with `u` under `index`. Users outside every co-cluster get
/// an empty list.
std::span<const ScoredItem> ServeTopMCandidates(
    const Recommender& rec, uint32_t u,
    std::span<const uint32_t> exclude_sorted, const ServeOptions& options,
    const CoClusterCandidateIndex& index, ServeWorkspace* ws);

/// \brief Mean per-user overlap |exact top-m ∩ candidate top-m| / |exact
/// top-m| over users with a non-empty exact list (excluding each user's
/// `train` row) — the exact-vs-candidate recall report for a pruning
/// threshold.
Result<double> CandidateOverlapAtM(const Recommender& rec,
                                   const CsrMatrix& train,
                                   const CoClusterCandidateIndex& index,
                                   const ServeOptions& options);

}  // namespace ocular

#endif  // OCULAR_SERVING_SCORE_ENGINE_H_
