#ifndef OCULAR_SERVING_SHARDED_STORE_RECOMMENDER_H_
#define OCULAR_SERVING_SHARDED_STORE_RECOMMENDER_H_

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "core/model_shard.h"
#include "core/model_store.h"
#include "eval/recommender.h"
#include "sparse/linalg.h"

namespace ocular {

/// \brief Recommender over a user-sharded OCLR store set — the serving
/// adapter of core/model_shard.h.
///
/// A request for user u routes through the (pure, O(log shards)) ShardMap
/// to the one shard file holding u's factor row, then runs the exact same
/// vec::AffinityBlock kernel as StoreRecommender over the SHARED items
/// file's K x n_i serving section. Same kernel, same operand layout, same
/// score map — so rankings are bit-identical to a monolithic store of the
/// concatenated user matrix, which is the contract the scale tests pin
/// down. Owns none of the stores; ServableModel (serving/registry.h)
/// keeps the shared_ptr set alive across per-shard generation swaps.
class ShardedStoreRecommender : public Recommender {
 public:
  /// \brief Wraps opened members. `items` and every store in `shards` must
  /// outlive the recommender; `shards[s]` holds the user rows of
  /// `map.begin(s) <= u < map.end(s)`.
  ShardedStoreRecommender(ShardMap map, const ModelStore& items,
                          std::vector<const ModelStore*> shards)
      : map_(std::move(map)),
        items_(&items),
        shards_(std::move(shards)),
        probability_map_(items.meta().kind ==
                         BinaryModelKind::kOcularProbability) {}

  /// \brief The algorithm tag recorded in the shared items file.
  std::string name() const override { return items_->meta().algorithm; }

  /// \brief Always fails: the shardset is a pre-fitted artifact.
  Status Fit(const CsrMatrix& /*interactions*/) override {
    return Status::FailedPrecondition(
        "ShardedStoreRecommender serves a pre-fitted shardset");
  }

  /// \brief Per-pair score off the owning shard's mapped factor row.
  double Score(uint32_t u, uint32_t i) const override {
    const double affinity =
        vec::Dot(UserRow(u), items_->item_factors().Row(i));
    return probability_map_ ? -std::expm1(-affinity) : affinity;
  }

  /// \brief Blocked scoring over the shared serving-layout section.
  void ScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                  std::span<double> out) const override {
    (void)item_end;
    vec::AffinityBlock(UserRow(u), items_->item_factors_t(), item_begin, out);
    if (probability_map_) {
      for (double& s : out) s = -std::expm1(-s);
    }
  }

  /// \brief Raw ranking kernel (see StoreRecommender::RawScoreBlock).
  void RawScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                     std::span<double> out) const override {
    (void)item_end;
    vec::AffinityBlock(UserRow(u), items_->item_factors_t(), item_begin, out);
  }

  /// \brief Maps a kept raw affinity to the public score.
  double ScoreFromRaw(double raw) const override {
    return probability_map_ ? -std::expm1(-raw) : raw;
  }

  /// \brief Users across all shards.
  uint32_t num_users() const override { return map_.num_users(); }
  /// \brief Items of the shared items file.
  uint32_t num_items() const override { return items_->num_items(); }

  /// \brief The shard serving `u` — what the daemon reports as the
  /// request's shard hit. Precondition: u < num_users().
  uint32_t shard_of(uint32_t u) const { return map_.shard_of(u); }

  /// \brief The routing table.
  const ShardMap& shard_map() const { return map_; }

 private:
  std::span<const double> UserRow(uint32_t u) const {
    const uint32_t s = map_.shard_of(u);
    return shards_[s]->user_factors().Row(u - map_.begin(s));
  }

  ShardMap map_;
  const ModelStore* items_;
  std::vector<const ModelStore*> shards_;
  bool probability_map_;
};

}  // namespace ocular

#endif  // OCULAR_SERVING_SHARDED_STORE_RECOMMENDER_H_
