#ifndef OCULAR_SERVING_NET_UTIL_H_
#define OCULAR_SERVING_NET_UTIL_H_

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <string>

namespace ocular {
namespace net {

/// \file
/// \brief The two socket loops everything in the serving stack shares:
/// write-fully and read-one-line. One definition so EINTR handling,
/// MSG_NOSIGNAL, and framing can never drift apart between the daemon
/// (serving/daemon.cc), the load generator (serving/loadgen.cc), and the
/// daemon bench.

/// \brief send(2)s until `size` bytes of `data` are out; false on a
/// non-EINTR error. MSG_NOSIGNAL: a peer that disconnected must surface
/// as EPIPE on this call, never as a process-killing SIGPIPE.
inline bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t w = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  return true;
}

/// \brief Puts `fd` in nonblocking mode (O_NONBLOCK via fcntl); false on
/// failure. The epoll readiness loop requires it on every socket it
/// multiplexes — a blocking read on a readable-then-drained socket would
/// stall the whole IO thread.
inline bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  if ((flags & O_NONBLOCK) != 0) return true;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// How one ReadLineBounded call ended.
enum class ReadEvent {
  kLine,      ///< a complete line was produced
  kClosed,    ///< clean EOF from the peer
  kError,     ///< read(2) failed (errno preserved)
  kOverflow,  ///< `max_line_bytes` accumulated without a newline
};

/// Default framing bound: no well-formed request or reply line in this
/// protocol comes near 1 MiB, but a hostile or broken peer streaming
/// newline-free bytes otherwise grows the buffer without limit until the
/// process OOMs.
inline constexpr size_t kDefaultMaxLineBytes = 1 << 20;

/// \brief Reads one newline-terminated line into `*line` (newline
/// stripped), buffering surplus bytes in `*buffer` across calls, never
/// letting the buffer grow past `max_line_bytes` (0 = unbounded). On
/// kOverflow the oversized prefix stays in `*buffer` so the caller can
/// reply before closing.
inline ReadEvent ReadLineBounded(int fd, std::string* buffer,
                                 std::string* line,
                                 size_t max_line_bytes = kDefaultMaxLineBytes) {
  for (;;) {
    const size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      line->assign(*buffer, 0, newline);
      buffer->erase(0, newline + 1);
      return ReadEvent::kLine;
    }
    if (max_line_bytes != 0 && buffer->size() >= max_line_bytes) {
      return ReadEvent::kOverflow;
    }
    char chunk[16384];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadEvent::kError;
    }
    if (n == 0) return ReadEvent::kClosed;
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

/// \brief Bool shorthand of ReadLineBounded: true only for a complete
/// line. Overflow, EOF and errors all read as "no more lines" — callers
/// that must distinguish use ReadLineBounded directly.
inline bool ReadLine(int fd, std::string* buffer, std::string* line,
                     size_t max_line_bytes = kDefaultMaxLineBytes) {
  return ReadLineBounded(fd, buffer, line, max_line_bytes) == ReadEvent::kLine;
}

}  // namespace net
}  // namespace ocular

#endif  // OCULAR_SERVING_NET_UTIL_H_
