#ifndef OCULAR_SERVING_NET_UTIL_H_
#define OCULAR_SERVING_NET_UTIL_H_

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <string>

namespace ocular {
namespace net {

/// \file
/// \brief The two socket loops everything in the serving stack shares:
/// write-fully and read-one-line. One definition so EINTR handling,
/// MSG_NOSIGNAL, and framing can never drift apart between the daemon
/// (serving/daemon.cc), the load generator (serving/loadgen.cc), and the
/// daemon bench.

/// \brief send(2)s until `size` bytes of `data` are out; false on a
/// non-EINTR error. MSG_NOSIGNAL: a peer that disconnected must surface
/// as EPIPE on this call, never as a process-killing SIGPIPE.
inline bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t w = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  return true;
}

/// \brief Reads one newline-terminated line into `*line` (newline
/// stripped), buffering surplus bytes in `*buffer` across calls. False
/// on EOF or a non-EINTR error.
inline bool ReadLine(int fd, std::string* buffer, std::string* line) {
  for (;;) {
    const size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      line->assign(*buffer, 0, newline);
      buffer->erase(0, newline + 1);
      return true;
    }
    char chunk[16384];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace net
}  // namespace ocular

#endif  // OCULAR_SERVING_NET_UTIL_H_
